"""Quickstart: evaluate a potential with the adaptive-degree treecode.

Builds both the original (fixed-degree) and improved (adaptive-degree,
Theorem 3) Barnes-Hut treecodes on a random charge cloud, compares them
against exact summation, and prints the error / cost / rigorous bound
summary that is the heart of the paper.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import AdaptiveChargeDegree, FixedDegree, Treecode, direct_potential
from repro.analysis import relative_l2_error


def main() -> None:
    rng = np.random.default_rng(0)
    n = 5000
    points = rng.random((n, 3))
    charges = rng.choice([-1.0, 1.0], size=n)  # protein-like mixed signs

    print(f"n = {n} particles, exact reference via direct summation ...")
    exact = direct_potential(points, charges)

    for label, policy in (
        ("original (fixed p=4)", FixedDegree(4)),
        ("improved (Theorem 3, p0=4)", AdaptiveChargeDegree(p0=4, alpha=0.4)),
    ):
        tc = Treecode(points, charges, degree_policy=policy, alpha=0.4)
        result = tc.evaluate(accumulate_bounds=True)
        err = relative_l2_error(result.potential, exact)
        bound = np.linalg.norm(result.error_bound) / np.linalg.norm(exact)
        s = result.stats
        print(f"\n{label}")
        print(f"  {tc.describe()}")
        print(f"  relative 2-norm error : {err:.3e}")
        print(f"  accumulated bound     : {bound:.3e}  (rigorous, per Theorem 1)")
        print(f"  multipole terms       : {s.n_terms:,}")
        print(f"  near-field pairs      : {s.n_pp_pairs:,}")
        print(f"  degrees used          : {sorted(s.interactions_by_degree)}")
        assert np.all(np.abs(result.potential - exact) <= result.error_bound + 1e-12), (
            "bound violated!"
        )
    print("\nEvery per-particle error sits below its accumulated bound. ✓")


if __name__ == "__main__":
    main()
