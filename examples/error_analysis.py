"""Walking through the paper's error analysis numerically.

Demonstrates each theorem of the paper on live data:

* Theorem 1 — the Greengard-Rokhlin truncation bound vs observed error
  for a single cluster;
* Theorem 2 — the per-interaction bound under the α-MAC and its
  linear growth with cluster charge (the problem);
* Theorem 3 — the adaptive degree schedule that equalizes the bound
  (the fix), shown as a per-tree-level degree/charge table;
* Theorem 4/5 — aggregate error bound and cost ratio of the improved
  method vs the original, measured end to end.

Run:  python examples/error_analysis.py
"""

import numpy as np

from repro import AdaptiveChargeDegree, FixedDegree, Treecode, direct_potential
from repro.core.bounds import (
    lemma2_interaction_count,
    theorem1_bound,
    theorem2_interaction_bound,
    theorem5_cost_ratio,
)
from repro.multipole.expansion import m2p, p2m


def demo_theorem1() -> None:
    print("=== Theorem 1: truncation bound for one cluster ===")
    rng = np.random.default_rng(0)
    src = rng.random((100, 3)) * 0.5 - 0.25
    q = rng.choice([-1.0, 1.0], 100)
    a = np.linalg.norm(src, axis=1).max()
    A = np.abs(q).sum()
    tgt = np.array([[1.2, 0.3, -0.2]])
    r = np.linalg.norm(tgt[0])
    exact = np.sum(q / np.linalg.norm(tgt[0] - src, axis=1))
    print(f"cluster: A = {A:.0f}, a = {a:.3f}; target at r = {r:.3f}")
    print(f"{'p':>3} {'observed error':>16} {'Thm 1 bound':>16}")
    for p in range(0, 13, 2):
        approx = m2p(p2m(src, q, p), tgt, p)[0]
        err = abs(approx - exact)
        bound = float(theorem1_bound(A, a, r, p))
        assert err <= bound * (1 + 1e-9)
        print(f"{p:>3} {err:>16.3e} {bound:>16.3e}")


def demo_theorem2_3(tc: Treecode) -> None:
    print("\n=== Theorems 2 & 3: the problem and the fix, per tree level ===")
    tree = tc.tree
    alpha = tc.alpha
    print(
        f"{'level':>5} {'clusters':>9} {'median A':>10} {'Thm2 bound @p0=4':>17}"
        f" {'Thm3 degree':>12}"
    )
    for d in range(tree.height):
        ids = tree.nodes_at_level(d)
        A = np.median(tree.abs_charge[ids])
        rad = np.median(tree.radius[ids])
        r_min = rad / alpha if rad > 0 else np.inf
        bound = float(theorem2_interaction_bound(A, max(r_min, 1e-9), alpha, 4))
        degs = tc.p_eval[ids]
        print(
            f"{d:>5} {ids.size:>9} {A:>10.2f} {bound:>17.3e}"
            f" {int(degs.min()):>5}..{int(degs.max())}"
        )
    print(
        "-> fixed degree lets the bound grow with cluster charge;"
        " Theorem 3 raises the degree instead."
    )


def demo_end_to_end() -> None:
    print("\n=== Theorems 4 & 5: aggregate error and cost, measured ===")
    rng = np.random.default_rng(1)
    n = 6000
    pts = rng.random((n, 3))
    q = rng.choice([-1.0, 1.0], n)
    ref = direct_potential(pts, q)
    alpha = 0.4

    results = {}
    for name, policy in (
        ("original", FixedDegree(4)),
        ("improved", AdaptiveChargeDegree(p0=4, alpha=alpha)),
    ):
        tc = Treecode(pts, q, degree_policy=policy, alpha=alpha)
        res = tc.evaluate(accumulate_bounds=True)
        results[name] = (tc, res)
        err = np.linalg.norm(res.potential - ref) / np.linalg.norm(ref)
        bnd = np.linalg.norm(res.error_bound) / np.linalg.norm(ref)
        print(
            f"{name:>9}: err = {err:.3e}, bound = {bnd:.3e}, "
            f"terms = {res.stats.n_terms/1e6:.1f}M"
        )

    tc, _ = results["improved"]
    ratio = results["improved"][1].stats.n_terms / results["original"][1].stats.n_terms
    predicted = theorem5_cost_ratio(4, alpha, tc.height)
    print(f"terms(new)/terms(orig) = {ratio:.2f} (Theorem 5 envelope: {predicted:.2f})")
    print(f"Lemma 2 interaction-count constant c_max({alpha}) = "
          f"{lemma2_interaction_count(alpha):.0f}")
    if __debug__:
        assert ratio <= predicted * 1.05


def main() -> None:
    demo_theorem1()
    rng = np.random.default_rng(2)
    pts = rng.random((4000, 3))
    q = rng.choice([-1.0, 1.0], 4000)
    tc = Treecode(pts, q, degree_policy=AdaptiveChargeDegree(p0=4, alpha=0.4), alpha=0.4)
    demo_theorem2_3(tc)
    demo_end_to_end()


if __name__ == "__main__":
    main()
