"""Parallel treecode: w-aggregation, Hilbert ordering, and speedups.

Reproduces the paper's parallel methodology: particles sorted into
Peano-Hilbert order, aggregated into w-particle work units, evaluated
by a thread pool (verified identical to serial), and scaled on the
Origin-2000-style machine model driven by the measured per-block work
profile.

Run:  python examples/parallel_scaling.py
"""

import numpy as np

from repro import AdaptiveChargeDegree, FixedDegree, Treecode
from repro.data.distributions import gaussian_blob, uniform_cube, unit_charges
from repro.parallel import (
    MachineModel,
    evaluate_parallel,
    make_blocks,
    profile_blocks,
    simulate,
)


def main() -> None:
    n = 8000
    w = 64
    for label, pts in (
        ("uniform", uniform_cube(n, seed=1)),
        ("non-uniform (gaussian)", gaussian_blob(n, seed=1)),
    ):
        q = unit_charges(n, seed=2, signed=True)
        print(f"=== {label}, n = {n}, w = {w} ===")
        for name, policy in (
            ("original", FixedDegree(4)),
            ("improved", AdaptiveChargeDegree(p0=4, alpha=0.4)),
        ):
            tc = Treecode(pts, q, degree_policy=policy, alpha=0.4)
            serial = tc.evaluate()
            par = evaluate_parallel(tc, n_threads=2, w=w)
            ok = np.allclose(par.potential, serial.potential, rtol=1e-12)
            prof = profile_blocks(tc, make_blocks(pts, w))
            print(f"  {name}: threaded result matches serial: {ok}")
            print(f"    blocks: {prof.n_blocks}, "
                  f"fetch volume: {prof.fetch_terms.sum()/1e6:.2f}M terms")
            print(f"    {'P':>4} {'speedup':>8} {'efficiency':>11}")
            for P in (2, 4, 8, 16, 32):
                sim = simulate(prof, MachineModel(n_procs=P))
                print(f"    {P:>4} {sim.speedup:>8.2f} {sim.efficiency:>10.1%}")
        print()


if __name__ == "__main__":
    main()
