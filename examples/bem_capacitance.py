"""BEM application: capacitance extraction with the treecode solver.

Reproduces the paper's boundary-element workflow end to end: surface
triangulation → 6-point Gauss quadrature per element → dense
first-kind system solved by GMRES(10) with treecode matrix-vector
products.  The unit sphere validates against the analytic capacitance
C = 4π; the propeller and gripper show the solver on the paper's
unstructured industrial geometry class.

Run:  python examples/bem_capacitance.py
"""

import numpy as np

from repro.bem import capacitance, gripper, icosphere, propeller
from repro.core.degree import AdaptiveChargeDegree


def main() -> None:
    print("=== unit sphere (analytic capacitance 4π ≈ 12.5664) ===")
    sphere = icosphere(3)
    C, sol = capacitance(
        sphere,
        n_gauss=6,
        degree_policy=AdaptiveChargeDegree(p0=4, alpha=0.5),
        alpha=0.5,
    )
    err = abs(C - 4 * np.pi) / (4 * np.pi)
    print(
        f"  {sphere.n_triangles} elements, {sphere.n_vertices} nodes: "
        f"C = {C:.4f} (rel err {err:.2e}), "
        f"GMRES(10) iters = {sol.gmres.n_iterations}"
    )
    assert err < 0.01

    for name, mesh in (
        ("propeller", propeller(blade_res=10, hub_res=10)),
        ("gripper", gripper(resolution=5)),
    ):
        print(f"\n=== {name} ===")
        C, sol = capacitance(
            mesh,
            n_gauss=6,
            degree_policy=AdaptiveChargeDegree(p0=4, alpha=0.5),
            alpha=0.5,
        )
        ops = sol.operator
        print(
            f"  {mesh.n_triangles} elements, {mesh.n_vertices} nodes, "
            f"{ops.points.shape[0]} Gauss points"
        )
        print(
            f"  C = {C:.4f}, GMRES(10) "
            f"{'converged' if sol.gmres.converged else 'FAILED'} in "
            f"{sol.gmres.n_iterations} iterations "
            f"({ops.n_matvecs} matvecs, {ops.stats.n_terms/1e6:.1f}M terms total)"
        )
        assert sol.gmres.converged


if __name__ == "__main__":
    main()
