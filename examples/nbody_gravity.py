"""N-body gravity: leapfrog integration of a Plummer cluster.

The paper motivates treecodes with large-scale astrophysics
simulations; this example integrates a self-gravitating Plummer sphere
with treecode accelerations (potential + analytic gradients) and tracks
energy conservation — the standard sanity check of an n-body engine.

Gravity maps onto the library's ``1/r`` convention with "charges" =
masses and ``Φ_grav = -G Φ``; the acceleration of particle i is
``a_i = -G ∇Φ(x_i)`` (mass cancels).  A Plummer softening length
regularizes close encounters, as every production n-body code does.

Run:  python examples/nbody_gravity.py
"""

import numpy as np

from repro import AdaptiveChargeDegree, Treecode
from repro.data.distributions import plummer

G = 1.0  # natural units
EPS = 0.01  # Plummer softening length (~ mean interparticle spacing)


def accelerations_and_potential(points, masses):
    tc = Treecode(
        points,
        masses,
        degree_policy=AdaptiveChargeDegree(p0=4, alpha=0.5),
        alpha=0.5,
        leaf_size=16,
        softening=EPS,
    )
    res = tc.evaluate(compute="both")
    acc = -G * res.gradient
    pot = -G * res.potential
    return acc, pot


def total_energy(points, masses, velocities, potential):
    kinetic = 0.5 * np.sum(masses * np.einsum("ij,ij->i", velocities, velocities))
    # potential energy: 1/2 sum m_i phi_i (phi already excludes self)
    return kinetic + 0.5 * np.sum(masses * potential)


def main() -> None:
    rng = np.random.default_rng(1)
    n = 2000
    pos = plummer(n, seed=2, scale=0.1)
    masses = np.full(n, 1.0 / n)
    # cold-ish start with small virial velocities
    vel = rng.normal(scale=0.05, size=(n, 3))
    vel -= vel.mean(axis=0)

    dt = 2e-4  # the Plummer core's dynamical time is short
    steps = 20

    acc, pot = accelerations_and_potential(pos, masses)
    e0 = total_energy(pos, masses, vel, pot)
    print(f"n = {n} bodies, dt = {dt}, {steps} leapfrog steps")
    print(f"initial energy: {e0:+.6f}")

    for step in range(1, steps + 1):
        # kick-drift-kick leapfrog
        vel += 0.5 * dt * acc
        pos += dt * vel
        acc, pot = accelerations_and_potential(pos, masses)
        vel += 0.5 * dt * acc
        if step % 5 == 0:
            e = total_energy(pos, masses, vel, pot)
            drift = abs((e - e0) / e0)
            print(f"step {step:3d}: E = {e:+.6f}  |ΔE/E| = {drift:.2e}")

    e = total_energy(pos, masses, vel, pot)
    drift = abs((e - e0) / e0)
    print(f"\nfinal relative energy drift: {drift:.2e}")
    assert drift < 5e-2, "energy drift too large — integration or forces broken"
    print("energy conserved to integrator accuracy. ✓")


if __name__ == "__main__":
    main()
