"""Benchmark — E6: Theorem-5 cost-ratio study.

Measures terms(new)/terms(orig) across n and checks it stays inside the
Theorem-5 envelope (the theorem bounds the worst case where every level
contributes its full c_max interactions; measured ratios are lower
because top levels are rarely accepted)."""

import pytest

from repro.analysis.tables import format_table
from repro.experiments import run_cost_ratio

from conftest import save_result


@pytest.fixture(scope="module")
def cost_rows(scale):
    sizes = [2000, 8000, 32000] if scale == "full" else [1000, 4000, 8000]
    headers, rows = run_cost_ratio(sizes, p0=4, alpha=0.4)
    save_result(
        "cost_ratio",
        format_table(headers, rows, title="E6 — Theorem 5 cost-ratio check (p0=4, alpha=0.4)"),
    )
    return rows


def test_measured_ratio_below_theorem5_bound(cost_rows):
    for n, height, t_orig, t_new, measured, predicted in cost_rows:
        assert measured <= predicted * 1.05, (n, measured, predicted)


def test_measured_ratio_moderate(cost_rows):
    """The paper: 'within a small constant' — the improved method costs
    at most ~2.5x the original on these instances."""
    for row in cost_rows:
        assert row[4] < 2.5


def test_bench_cost_ratio_point(benchmark, scale, cost_rows):
    headers, rows = benchmark(lambda: run_cost_ratio([1000], p0=4, alpha=0.4))
    assert rows[0][4] > 0
