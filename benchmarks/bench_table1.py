"""Benchmark — Table 1: errors and multipole terms, original vs improved.

Regenerates the paper's Table 1 rows (structured + unstructured
distributions) and times the serial treecode evaluation of both methods
on a representative instance.
"""

import numpy as np
import pytest

from repro.analysis.tables import format_table
from repro.core.degree import AdaptiveChargeDegree, FixedDegree
from repro.core.treecode import Treecode
from repro.data.distributions import uniform_cube, unit_charges
from repro.experiments import Table1Row, run_table1

from conftest import save_result


@pytest.fixture(scope="module")
def table1_rows(scale):
    if scale == "full":
        structured = [4000, 8000, 16000, 32000, 64000]
        unstructured = [("gaussian", 32000), ("overlapping_gaussians", 48000)]
    else:
        structured = [1000, 2000, 4000, 8000]
        unstructured = [("gaussian", 4000), ("overlapping_gaussians", 6000)]
    rows = run_table1(structured, unstructured, p0=4, alpha=0.4)
    text = format_table(
        Table1Row.HEADERS,
        [r.as_list() for r in rows],
        title="Table 1 — error and multipole terms, original vs improved (p0=4, alpha=0.4)",
    )
    save_result("table1", text)
    return rows


def test_table1_shape(table1_rows):
    """The paper's claims: improved error never worse, bound dramatically
    better and diverging with n, term counts within a small factor."""
    uniform = [r for r in table1_rows if r.distribution == "uniform"]
    for r in table1_rows:
        assert r.err_new <= r.err_orig * 1.1
        assert r.bound_new < r.bound_orig
        assert r.terms_new < 3.0 * r.terms_orig
    # bound gap widens with n on the structured instances
    gaps = [r.bound_orig / r.bound_new for r in uniform]
    assert gaps[-1] > gaps[0]


@pytest.mark.parametrize("method", ["original", "new"])
def test_bench_treecode_evaluate(benchmark, method, table1_rows):
    """Time one serial treecode evaluation (the Table-1 workhorse)."""
    n = 4000
    pts = uniform_cube(n, seed=1)
    q = unit_charges(n, seed=2, signed=True)
    policy = FixedDegree(4) if method == "original" else AdaptiveChargeDegree(p0=4, alpha=0.4)
    tc = Treecode(pts, q, degree_policy=policy, alpha=0.4)
    result = benchmark(lambda: tc.evaluate().potential)
    assert np.all(np.isfinite(result))
