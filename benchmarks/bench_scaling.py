"""Benchmark — complexity scaling study.

The paper's complexity claims: the treecode evaluates
``O(n log n)``-ish multipole terms (against the direct method's
``O(n²)`` pairs), and the improved method stays within a small constant
of the original (Theorem 5).  This benchmark measures term counts over
an n-sweep and fits the growth exponents.
"""

import numpy as np
import pytest

from repro.analysis.convergence import fit_power_law
from repro.analysis.tables import format_table
from repro.core.degree import AdaptiveChargeDegree, FixedDegree
from repro.core.treecode import Treecode
from repro.data.distributions import uniform_cube, unit_charges

from conftest import save_result


@pytest.fixture(scope="module")
def scaling_rows(scale):
    sizes = [2000, 4000, 8000, 16000, 32000] if scale == "full" else [1000, 2000, 4000, 8000]
    rows = []
    for n in sizes:
        pts = uniform_cube(n, seed=n)
        q = unit_charges(n, seed=n + 1, signed=True)
        row = [n]
        for policy in (FixedDegree(4), AdaptiveChargeDegree(p0=4, alpha=0.4)):
            tc = Treecode(pts, q, degree_policy=policy, alpha=0.4)
            s = tc.evaluate().stats
            row += [s.n_terms, s.n_pp_pairs]
        row.append(n * (n - 1))  # direct-method pair count
        rows.append(row)
    save_result(
        "scaling",
        format_table(
            ["n", "terms(orig)", "pp(orig)", "terms(new)", "pp(new)", "direct pairs"],
            rows,
            title="Complexity scaling: treecode vs direct",
        ),
    )
    return rows


def test_treecode_subquadratic(scaling_rows):
    """Treecode total work must grow far slower than the direct method's
    O(n²) — the exponent should be ~1.1-1.4 (n log n territory)."""
    n = [r[0] for r in scaling_rows]
    for col in (1, 3):  # terms(orig), terms(new)
        work = [r[col] + r[col + 1] for r in scaling_rows]
        beta, _ = fit_power_law(n, work)
        assert beta < 1.75, (col, beta)
        assert beta > 0.9


def test_direct_is_quadratic(scaling_rows):
    n = [r[0] for r in scaling_rows]
    beta, _ = fit_power_law(n, [r[5] for r in scaling_rows])
    assert beta == pytest.approx(2.0, abs=0.05)


def test_treecode_beats_direct_at_scale(scaling_rows):
    """Per-interaction costs are comparable (a few flops each), so the
    raw counts show the crossover: at the largest n the treecode does
    less work than the direct method, and its advantage widens with n."""
    last = scaling_rows[-1]
    assert last[1] + last[2] < last[5]
    ratios = [(r[1] + r[2]) / r[5] for r in scaling_rows]
    assert ratios[-1] < ratios[0]


def test_bench_scaling_point(benchmark, scaling_rows):
    n = 2000
    pts = uniform_cube(n, seed=n)
    q = unit_charges(n, seed=n + 1, signed=True)
    tc = Treecode(pts, q, degree_policy=FixedDegree(4), alpha=0.4)
    out = benchmark(lambda: tc.evaluate().stats.n_terms)
    assert out > 0
