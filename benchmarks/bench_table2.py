"""Benchmark — Table 2: parallel runtimes and speedups (P = 32 model)."""

import numpy as np
import pytest

from repro.analysis.tables import format_table
from repro.core.degree import FixedDegree
from repro.core.treecode import Treecode
from repro.data.distributions import uniform_cube, unit_charges
from repro.experiments import Table2Row, run_table2
from repro.parallel import evaluate_parallel

from conftest import save_result


@pytest.fixture(scope="module")
def table2_rows(scale):
    problems = (
        [("uniform40k", "uniform", 40000), ("non-uniform46k", "gaussian", 46000)]
        if scale == "full"
        else [("uniform6k", "uniform", 6000), ("non-uniform8k", "gaussian", 8000)]
    )
    rows = run_table2(problems, n_procs=32, p0=4, alpha=0.4)
    text = format_table(
        Table2Row.HEADERS,
        [r.as_list() for r in rows],
        title="Table 2 — serial runtimes and modeled 32-processor speedups",
    )
    save_result("table2", text)
    return rows


def test_speedups_in_paper_band(table2_rows):
    """The paper reports speedups of ~28-31 at P=32 (80-90+% efficiency);
    the model driven by the measured work profile must land in a
    comparable band."""
    for r in table2_rows:
        assert 20.0 < r.sim_speedup_lpt <= 32.0
        assert r.sim_efficiency > 0.75


def test_parallel_executor_agrees(table2_rows):
    for r in table2_rows:
        assert r.parallel_matches_serial


def test_new_method_fetches_more(table2_rows):
    """Paper: 'the new algorithm fetches longer multipole series'."""
    by_problem = {}
    for r in table2_rows:
        by_problem.setdefault(r.problem, {})[r.method] = r
    for problem, methods in by_problem.items():
        assert methods["new"].fetch_terms > methods["original"].fetch_terms, problem


def test_bench_parallel_evaluate(benchmark, table2_rows):
    """Time the threaded evaluation path (2 workers, w=64)."""
    n = 4000
    pts = uniform_cube(n, seed=1)
    q = unit_charges(n, seed=2, signed=True)
    tc = Treecode(pts, q, degree_policy=FixedDegree(4), alpha=0.4)
    res = benchmark(lambda: evaluate_parallel(tc, n_threads=2, w=64).potential)
    assert np.all(np.isfinite(res))
