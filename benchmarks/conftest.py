"""Shared benchmark configuration.

``pytest benchmarks/ --benchmark-only`` regenerates every table and
figure of the paper at a laptop-friendly scale and times the underlying
kernels with pytest-benchmark.  Set ``REPRO_BENCH_SCALE=full`` for
paper-scale instances (much slower).  Each benchmark writes its table to
``benchmarks/results/<name>.txt`` and echoes it to the terminal
(run with ``-s`` to see tables inline).
"""

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def bench_scale() -> str:
    return os.environ.get("REPRO_BENCH_SCALE", "small")


def save_result(name: str, text: str) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)


@pytest.fixture(scope="session")
def scale() -> str:
    return bench_scale()
