"""Micro-benchmarks of the computational kernels.

Times the building blocks whose costs the paper's complexity analysis
reasons about: key generation, tree construction, P2M/M2P, the
translation operators, and the direct kernel.

Besides the pytest-benchmark suite, this module doubles as the BENCH_6
report generator for the regression ledger: :func:`bench_m2l_backends`
races the dense O((p+1)^4) M2L against the rotation O((p+1)^3)
pipeline at identical degrees over a shared direction set, and::

    PYTHONPATH=src python benchmarks/bench_kernels.py --out BENCH_6.json

writes the rows (per-degree timings, ``m2l_rotation_speedup`` on the
p >= 8 rows, dense/rotation agreement) that ``python -m repro bench
compare`` gates — the speedup floor is 2x and the complex128 agreement
ceiling 1e-12, both history-independent.
"""

import argparse
import json
import pathlib
import sys
import time

import numpy as np

import pytest

if __package__ in (None, ""):
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.direct import direct_potential
from repro.multipole.expansion import m2p_rows, p2m
from repro.multipole.harmonics import ncoef
from repro.multipole.rotations import RotationCache
from repro.multipole.translations import l2l, m2l, m2l_rotated, m2m
from repro.tree.hilbert import hilbert_key
from repro.tree.morton import morton_key
from repro.tree.octree import build_octree

N = 20000
RNG = np.random.default_rng(7)
PTS = RNG.random((N, 3))
Q = RNG.uniform(-1, 1, N)


def test_bench_morton_keys(benchmark):
    keys = benchmark(lambda: morton_key(PTS, np.zeros(3), np.ones(3)))
    assert keys.shape == (N,)


def test_bench_hilbert_keys(benchmark):
    keys = benchmark(lambda: hilbert_key(PTS, np.zeros(3), np.ones(3), bits=16))
    assert keys.shape == (N,)


def test_bench_octree_build(benchmark):
    tree = benchmark(lambda: build_octree(PTS, Q, leaf_size=16))
    assert tree.n_particles == N


@pytest.mark.parametrize("p", [4, 8])
def test_bench_p2m(benchmark, p):
    rel = RNG.random((5000, 3)) - 0.5
    q = RNG.uniform(-1, 1, 5000)
    coeffs = benchmark(lambda: p2m(rel, q, p))
    assert coeffs.shape == (ncoef(p),)


@pytest.mark.parametrize("p", [4, 8])
def test_bench_m2p_rows(benchmark, p):
    npairs = 20000
    rows = (RNG.random((npairs, ncoef(p))) + 1j * RNG.random((npairs, ncoef(p)))).astype(
        np.complex128
    )
    rel = RNG.random((npairs, 3)) + 2.0
    out = benchmark(lambda: m2p_rows(rows, rel, p))
    assert out.shape == (npairs,)


@pytest.mark.parametrize("op_name", ["m2m", "m2l", "l2l"])
def test_bench_translations(benchmark, op_name):
    p = 8
    B = 256
    coeffs = (RNG.random((B, ncoef(p))) + 1j * RNG.random((B, ncoef(p)))).astype(
        np.complex128
    )
    if op_name == "m2m":
        shifts = RNG.random((B, 3)) * 0.5
        out = benchmark(lambda: m2m(coeffs, shifts, p))
    elif op_name == "m2l":
        shifts = RNG.random((B, 3)) + 3.0
        out = benchmark(lambda: m2l(coeffs, shifts, p))
    else:
        shifts = RNG.random((B, 3)) * 0.5
        out = benchmark(lambda: l2l(coeffs, shifts, p))
    assert out.shape == (B, ncoef(p))


def test_bench_direct_small(benchmark):
    pts = PTS[:3000]
    q = Q[:3000]
    out = benchmark(lambda: direct_potential(pts, q))
    assert out.shape == (3000,)


# ---------------------------------------------------------------------------
# BENCH_6 — dense vs rotation M2L backends at identical degrees
# ---------------------------------------------------------------------------

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
MIN_SPEEDUP_P8 = 2.0  #: ledger rule: rotation >= 2x dense at p >= 8
MAX_REL_DIFF = 1e-12  #: complex128 dense/rotation agreement contract


def _m2l_instance(B: int, ndirs: int, seed: int = 11):
    """Well-separated displacements over ``ndirs`` shared directions,
    plus physically valid multipole rows (packed coefficients must obey
    the real-expansion symmetry, so they come from :func:`p2m`)."""
    rng = np.random.default_rng(seed)
    dirs = rng.normal(size=(ndirs, 3))
    dirs /= np.linalg.norm(dirs, axis=1, keepdims=True)
    d = dirs[rng.integers(0, ndirs, B)] * (3.0 + rng.random(B))[:, None]
    rel = rng.random((64, 3)) - 0.5
    q = rng.uniform(-1, 1, 64)

    def coeffs(p: int) -> np.ndarray:
        return np.tile(p2m(rel, q, p), (B, 1)) * (1.0 + rng.random((B, 1)))

    return d, coeffs


def bench_m2l_backends(
    ps: tuple = (4, 6, 8, 10, 12), B: int = 512, ndirs: int = 16, repeats: int = 5
) -> list[dict]:
    """Race dense :func:`m2l` against :func:`m2l_rotated` per degree.

    Both backends see the same coefficients and displacements; the
    rotation side reuses a warm :class:`RotationCache` (the steady state
    a compiled plan runs in — operators are built once per direction at
    compile time).  Rows with ``p >= 8`` carry the rule-gated
    ``m2l_rotation_speedup`` metric; lower degrees report the same ratio
    informationally as ``rotation_speedup``.
    """
    d, make_coeffs = _m2l_instance(B, ndirs)
    rows = []
    for p in ps:
        C = make_coeffs(p)
        cache = RotationCache()
        rot0 = m2l_rotated(C, d, p, cache=cache)  # warm: builds operators
        dense0 = m2l(C, d, p)
        rel_diff = float(np.max(np.abs(rot0 - dense0)) / np.max(np.abs(dense0)))
        best = {"dense": np.inf, "rotation": np.inf}
        for _ in range(repeats):  # alternate sides so drift hits both
            t0 = time.perf_counter()
            m2l(C, d, p)
            best["dense"] = min(best["dense"], time.perf_counter() - t0)
            t0 = time.perf_counter()
            m2l_rotated(C, d, p, cache=cache)
            best["rotation"] = min(best["rotation"], time.perf_counter() - t0)
        speedup = best["dense"] / best["rotation"]
        row = {
            "p": int(p),
            "B": int(B),
            "ndirs": int(ndirs),
            "dense_s": best["dense"],
            "rotation_s": best["rotation"],
            "m2l_backend_rel_diff": rel_diff,
            "rotation_dirs_built": cache.built,
        }
        # only p >= 8 rows carry the rule-gated metric: below the
        # crossover the rotation backend is not the one plans select
        row["m2l_rotation_speedup" if p >= 8 else "rotation_speedup"] = speedup
        rows.append(row)
    return rows


@pytest.mark.parametrize("backend", ["dense", "rotation"])
@pytest.mark.parametrize("p", [4, 8, 12])
def test_bench_m2l_backends(benchmark, p, backend):
    d, make_coeffs = _m2l_instance(B=512, ndirs=16)
    C = make_coeffs(p)
    if backend == "rotation":
        cache = RotationCache()
        m2l_rotated(C, d, p, cache=cache)  # build operators outside the timer
        out = benchmark(lambda: m2l_rotated(C, d, p, cache=cache))
    else:
        out = benchmark(lambda: m2l(C, d, p))
    assert out.shape == (512, ncoef(p))


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        description="BENCH_6: dense vs rotation M2L backend micro-bench"
    )
    ap.add_argument("--batch", type=int, default=512, help="translations per degree")
    ap.add_argument("--ndirs", type=int, default=16, help="distinct directions")
    ap.add_argument("--repeats", type=int, default=5, help="best-of rounds")
    ap.add_argument(
        "--out", type=pathlib.Path, default=None,
        help="write the BENCH_6 JSON report here (for the regression ledger)",
    )
    args = ap.parse_args(argv)

    rows = bench_m2l_backends(B=args.batch, ndirs=args.ndirs, repeats=args.repeats)
    ok = True
    for row in rows:
        speedup = row.get("m2l_rotation_speedup", row.get("rotation_speedup"))
        gated = "m2l_rotation_speedup" in row
        print(
            f"m2l p={row['p']:2d} dense {row['dense_s'] * 1e3:7.2f} ms  "
            f"rotation {row['rotation_s'] * 1e3:7.2f} ms  "
            f"speedup {speedup:5.2f}x{' (gated)' if gated else ''}  "
            f"rel_diff {row['m2l_backend_rel_diff']:.2e}"
        )
        if row["m2l_backend_rel_diff"] > MAX_REL_DIFF:
            print(
                f"FAIL: p={row['p']} dense/rotation disagree "
                f"({row['m2l_backend_rel_diff']:.2e} > {MAX_REL_DIFF:g})",
                file=sys.stderr,
            )
            ok = False
        if gated and speedup < MIN_SPEEDUP_P8:
            print(
                f"FAIL: p={row['p']} rotation speedup {speedup:.2f}x "
                f"< {MIN_SPEEDUP_P8:g}x",
                file=sys.stderr,
            )
            ok = False
    if args.out is not None:
        report = {"bench": "BENCH_6", "mode": "smoke", "m2l_backends": rows}
        args.out.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.out}")
    if ok:
        print("m2l backend bench OK")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
