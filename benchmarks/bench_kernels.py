"""Micro-benchmarks of the computational kernels.

Times the building blocks whose costs the paper's complexity analysis
reasons about: key generation, tree construction, P2M/M2P, the
translation operators, and the direct kernel.
"""

import numpy as np
import pytest

from repro.direct import direct_potential
from repro.multipole.expansion import m2p_rows, p2m
from repro.multipole.harmonics import ncoef
from repro.multipole.translations import l2l, m2l, m2m
from repro.tree.hilbert import hilbert_key
from repro.tree.morton import morton_key
from repro.tree.octree import build_octree

N = 20000
RNG = np.random.default_rng(7)
PTS = RNG.random((N, 3))
Q = RNG.uniform(-1, 1, N)


def test_bench_morton_keys(benchmark):
    keys = benchmark(lambda: morton_key(PTS, np.zeros(3), np.ones(3)))
    assert keys.shape == (N,)


def test_bench_hilbert_keys(benchmark):
    keys = benchmark(lambda: hilbert_key(PTS, np.zeros(3), np.ones(3), bits=16))
    assert keys.shape == (N,)


def test_bench_octree_build(benchmark):
    tree = benchmark(lambda: build_octree(PTS, Q, leaf_size=16))
    assert tree.n_particles == N


@pytest.mark.parametrize("p", [4, 8])
def test_bench_p2m(benchmark, p):
    rel = RNG.random((5000, 3)) - 0.5
    q = RNG.uniform(-1, 1, 5000)
    coeffs = benchmark(lambda: p2m(rel, q, p))
    assert coeffs.shape == (ncoef(p),)


@pytest.mark.parametrize("p", [4, 8])
def test_bench_m2p_rows(benchmark, p):
    npairs = 20000
    rows = (RNG.random((npairs, ncoef(p))) + 1j * RNG.random((npairs, ncoef(p)))).astype(
        np.complex128
    )
    rel = RNG.random((npairs, 3)) + 2.0
    out = benchmark(lambda: m2p_rows(rows, rel, p))
    assert out.shape == (npairs,)


@pytest.mark.parametrize("op_name", ["m2m", "m2l", "l2l"])
def test_bench_translations(benchmark, op_name):
    p = 8
    B = 256
    coeffs = (RNG.random((B, ncoef(p))) + 1j * RNG.random((B, ncoef(p)))).astype(
        np.complex128
    )
    if op_name == "m2m":
        shifts = RNG.random((B, 3)) * 0.5
        out = benchmark(lambda: m2m(coeffs, shifts, p))
    elif op_name == "m2l":
        shifts = RNG.random((B, 3)) + 3.0
        out = benchmark(lambda: m2l(coeffs, shifts, p))
    else:
        shifts = RNG.random((B, 3)) * 0.5
        out = benchmark(lambda: l2l(coeffs, shifts, p))
    assert out.shape == (B, ncoef(p))


def test_bench_direct_small(benchmark):
    pts = PTS[:3000]
    q = Q[:3000]
    out = benchmark(lambda: direct_potential(pts, q))
    assert out.shape == (3000,)
