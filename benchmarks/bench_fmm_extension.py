"""Benchmark — A4: the FMM extension with Theorem-3 degree schedules."""

import numpy as np
import pytest

from repro.analysis.tables import format_table
from repro.data.distributions import uniform_cube, unit_charges
from repro.experiments import run_fmm_extension
from repro.fmm import UniformFMM

from conftest import save_result


@pytest.fixture(scope="module")
def fmm_rows(scale):
    n = 16000 if scale == "full" else 4000
    headers, rows = run_fmm_extension(n=n, level=3, p0=4)
    save_result(
        "fmm_extension",
        format_table(headers, rows, title="A4 — FMM degree-schedule extension"),
    )
    return rows


def test_adaptive_schedule_improves_fmm_error(fmm_rows):
    """Raising coarse-level degrees (Theorem 3 transferred to the FMM)
    reduces the error relative to the fixed-degree FMM."""
    errs = {r[0]: r[2] for r in fmm_rows}
    assert errs["adaptive(c=1)"] < errs["fixed"]
    assert errs["adaptive(c=2)"] < errs["adaptive(c=1)"]


def test_cost_grows_moderately(fmm_rows):
    terms = {r[0]: r[3] for r in fmm_rows}
    assert terms["adaptive(c=2)"] < 6 * terms["fixed"]


def test_bench_fmm_evaluate(benchmark, fmm_rows):
    n = 3000
    pts = uniform_cube(n, seed=1)
    q = unit_charges(n, seed=2, signed=True)
    fmm = UniformFMM(pts, q, level=3, degrees=5)
    out = benchmark(fmm.evaluate)
    assert np.all(np.isfinite(out))
