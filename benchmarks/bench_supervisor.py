"""BENCH_5 — supervision overhead on a clean (fault-free) run.

Supervised execution (:mod:`repro.robust.supervisor`) buys hang/OOM
watchdogs, poison-unit quarantine and the backend degradation ladder;
this benchmark prices it.  The same compiled cluster plan is executed
through :func:`repro.parallel.evaluate_plan_parallel` with supervision
off and on, best-of-``repeats`` each, and the report carries::

    supervision_overhead = t_supervised / t_unsupervised - 1

which the regression ledger gates at an absolute ceiling of 5%
(``python -m repro bench compare``, rule ``supervision_overhead``).
Supervision must also be invisible in the output: the two results are
required to agree bitwise.

Run standalone (pytest-free so CI can gate on the exit code)::

    PYTHONPATH=src python benchmarks/bench_supervisor.py                # gate only
    PYTHONPATH=src python benchmarks/bench_supervisor.py --out BENCH_5.json
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro import AdaptiveChargeDegree, Treecode  # noqa: E402
from repro.data.distributions import make_distribution, unit_charges  # noqa: E402
from repro.parallel import evaluate_plan_parallel  # noqa: E402

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
MAX_OVERHEAD = 0.05


def bench_supervision(
    n: int = 10000, workers: int = 2, n_units: int = 8, repeats: int = 7
) -> dict:
    pts = make_distribution("uniform", n, seed=n)
    q = unit_charges(n, seed=n + 1, signed=True)
    q2 = unit_charges(n, seed=n + 2, signed=True)
    tc = Treecode(
        pts, q, degree_policy=AdaptiveChargeDegree(p0=4, alpha=0.5), alpha=0.5
    )
    plan = tc.compile_plan(mode="cluster", n_units=n_units)

    def run(supervise: bool):
        return evaluate_plan_parallel(
            plan, q2, n_threads=workers, supervise=supervise
        )

    run(False)  # warm caches so neither side pays first-touch costs
    best = {False: np.inf, True: np.inf}
    results = {}
    # alternate the two sides each round so machine drift hits both
    for _ in range(repeats):
        for supervise in (False, True):
            t0 = time.perf_counter()
            results[supervise] = run(supervise)
            best[supervise] = min(best[supervise], time.perf_counter() - t0)

    bitwise = bool(
        np.array_equal(results[False].potential, results[True].potential)
    )
    return {
        "n": n,
        "workers": workers,
        "n_units": plan.n_units,
        "unsupervised_s": best[False],
        "supervised_s": best[True],
        "supervision_overhead": best[True] / best[False] - 1.0,
        "bitwise_identical": bitwise,
        "max_abs_diff": float(
            np.max(np.abs(results[True].potential - results[False].potential))
        ),
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--n", type=int, default=10000, help="particle count")
    ap.add_argument("--workers", type=int, default=2, help="thread-pool width")
    ap.add_argument("--repeats", type=int, default=7, help="best-of rounds")
    ap.add_argument(
        "--out", type=pathlib.Path, default=None,
        help="write the BENCH_5 JSON report here (for the regression ledger)",
    )
    args = ap.parse_args(argv)

    row = bench_supervision(n=args.n, workers=args.workers, repeats=args.repeats)
    print(
        f"supervisor n={row['n']} ({row['n_units']} units, "
        f"{row['workers']} workers): unsupervised {row['unsupervised_s'] * 1e3:.1f} ms, "
        f"supervised {row['supervised_s'] * 1e3:.1f} ms "
        f"(overhead {row['supervision_overhead'] * 100:+.2f}%), "
        f"bitwise {row['bitwise_identical']}"
    )
    if args.out is not None:
        report = {"bench": "BENCH_5", "mode": "smoke", "supervisor": row}
        args.out.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.out}")
    ok = True
    if not row["bitwise_identical"]:
        print("FAIL: supervised result differs from unsupervised", file=sys.stderr)
        ok = False
    if row["supervision_overhead"] > MAX_OVERHEAD:
        print(
            f"FAIL: supervision overhead {row['supervision_overhead'] * 100:.2f}% "
            f"> {MAX_OVERHEAD * 100:.0f}%",
            file=sys.stderr,
        )
        ok = False
    if ok:
        print("supervision overhead OK")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
