"""Benchmark multi-RHS batched execution and plan-store warm starts.

**BENCH_7** measures the two serving-path wins of the batched plan
executor and the persistent plan cache (:mod:`repro.perf.store`):

* **Batched throughput** — executing a ``k = 8`` right-hand-side batch
  through one compiled cluster plan must deliver >= 2x the per-vector
  throughput of eight sequential single-vector applications; every
  kernel (P2M, M2L, L2P, near blocks) runs once as a BLAS-3 GEMM over
  the batch instead of eight BLAS-2 passes.  Correctness is gated too:
  each batch column must match its standalone evaluation to 1e-12.
* **Warm start** — restoring the same plan from the content-addressed
  on-disk store as a zero-copy ``np.memmap`` must be >= 10x faster
  than recompiling it, and the restored plan's matvec must be bitwise
  the fresh plan's.

Run standalone (pytest-free so CI can gate on the exit code)::

    PYTHONPATH=src python benchmarks/bench_batch.py --mode smoke  # CI gate
    PYTHONPATH=src python benchmarks/bench_batch.py --mode full   # BENCH_7.json

The smoke tier runs the acceptance sizes themselves (n=50k, k=8); the
full tier adds a k-sweep at the same scale.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import shutil
import sys
import tempfile
import time

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro import AdaptiveChargeDegree, Treecode  # noqa: E402
from repro.data.distributions import make_distribution, unit_charges  # noqa: E402

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
#: Column-vs-standalone agreement ceiling — matches the repo-wide
#: ``max_abs_diff`` ledger rule (plans agree with the reference
#: evaluator to 1e-11; batch columns inherit that budget).
TOL = 1e-11


def _time_best(fn, repeats: int):
    best = np.inf
    out = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def _build(n: int, alpha: float = 0.5, p0: int = 4) -> Treecode:
    pts = make_distribution("uniform", n, seed=n)
    q = unit_charges(n, seed=n + 1, signed=True)
    return Treecode(
        pts, q, degree_policy=AdaptiveChargeDegree(p0=p0, alpha=alpha), alpha=alpha
    )


def bench_batch(tc: Treecode, plan, k: int, repeats: int) -> dict:
    """Per-vector throughput of one k-column batch vs k single passes."""
    n = tc.tree.points.shape[0]
    cols = [unit_charges(n, seed=100 + j, signed=True) for j in range(k)]
    Q = np.stack(cols, axis=1)

    t_single, _ = _time_best(lambda: [plan.execute(qj) for qj in cols], repeats)
    t_batch, res = _time_best(lambda: plan.execute(Q), repeats)
    singles = [plan.execute(qj) for qj in cols]
    diff = max(
        float(np.max(np.abs(res.potential[:, j] - singles[j].potential)))
        for j in range(k)
    )
    return {
        "n": n,
        "k": k,
        "single_matvec_s": t_single / k,
        "batched_s": t_batch,
        # (time for k sequential singles) / (time for one k-batch):
        # per-vector throughput gain of the BLAS-3 path
        "batched_matvec_throughput": t_single / t_batch,
        "max_abs_diff": diff,
    }


def bench_warmstart(tc: Treecode, repeats: int) -> dict:
    """Cold compile vs zero-copy mmap restore of the same plan."""
    from repro.perf.store import load_plan, plan_digest, save_plan

    n = tc.tree.points.shape[0]
    q2 = unit_charges(n, seed=n + 2, signed=True)
    cache = pathlib.Path(tempfile.mkdtemp(prefix="bench-plan-cache-"))
    try:
        t0 = time.perf_counter()
        plan = tc.compile_plan(mode="cluster", cache_dir="")
        cold = time.perf_counter() - t0
        ref = plan.execute(q2)

        digest = plan_digest(
            tc, None, True, "potential", False, plan.memory_budget,
            "cluster", plan.rows_dtype, None, None, plan.translation_backend,
        )
        path = cache / f"{digest}.plan"
        nbytes = save_plan(plan, path, digest=digest)

        def load():
            return load_plan(path, expected_digest=digest)

        warm, loaded = _time_best(load, repeats)
        got = loaded.execute(q2)
        bitwise = bool(np.array_equal(got.potential, ref.potential))
        return {
            "n": n,
            "cold_compile_s": cold,
            "warm_load_s": warm,
            "plan_cache_warmstart_speedup": cold / warm,
            "plan_file_mb": nbytes / 1e6,
            "max_abs_diff": float(
                np.max(np.abs(got.potential - ref.potential))
            ),
            "warm_matvec_bitwise": bitwise,
        }
    finally:
        shutil.rmtree(cache, ignore_errors=True)


def run(mode: str, out_path: pathlib.Path) -> int:
    n = 50000
    ks = (8,) if mode == "smoke" else (2, 4, 8, 16)
    repeats = 2 if mode == "smoke" else 3
    tc = _build(n)
    plan = tc.compile_plan(mode="cluster", cache_dir="")

    report = {"bench": "BENCH_7", "mode": mode, "batch": [], "plan_cache": None}
    for k in ks:
        row = bench_batch(tc, plan, k, repeats)
        report["batch"].append(row)
        print(
            f"batch n={n} k={k:2d}: single {row['single_matvec_s'] * 1e3:8.1f} "
            f"ms/vec, batch {row['batched_s'] * 1e3:8.1f} ms "
            f"({row['batched_matvec_throughput']:.2f}x per-vector), "
            f"diff {row['max_abs_diff']:.2e}"
        )
    pc = bench_warmstart(tc, repeats=3)
    report["plan_cache"] = pc
    print(
        f"warm-start n={n}: compile {pc['cold_compile_s']:.2f} s, load "
        f"{pc['warm_load_s'] * 1e3:.1f} ms "
        f"({pc['plan_cache_warmstart_speedup']:.0f}x), file "
        f"{pc['plan_file_mb']:.0f} MB, bitwise {pc['warm_matvec_bitwise']}"
    )

    k8 = next(r for r in report["batch"] if r["k"] == 8)
    acceptance = {
        "batched_throughput_2x_at_k8": k8["batched_matvec_throughput"] >= 2.0,
        "batch_columns_match_1e12": all(
            r["max_abs_diff"] <= TOL for r in report["batch"]
        ),
        "warmstart_10x": pc["plan_cache_warmstart_speedup"] >= 10.0,
        "warm_matvec_bitwise": pc["warm_matvec_bitwise"],
    }
    report["acceptance"] = acceptance
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out_path}")
    if not all(acceptance.values()):
        failed = [k for k, v in acceptance.items() if not v]
        print(f"ACCEPTANCE FAILED: {', '.join(failed)}", file=sys.stderr)
        return 1
    print("batch bench OK")
    return 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--mode",
        choices=["smoke", "full"],
        default="smoke",
        help="'smoke' runs the acceptance sizes (CI gate); 'full' adds a "
        "k-sweep",
    )
    ap.add_argument(
        "--out", type=pathlib.Path, default=None,
        help="output path for BENCH_7.json",
    )
    args = ap.parse_args(argv)
    return run(args.mode, args.out or REPO_ROOT / "BENCH_7.json")


if __name__ == "__main__":
    sys.exit(main())
