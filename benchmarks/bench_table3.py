"""Benchmark — Table 3: BEM single-iteration errors and times."""

import numpy as np
import pytest

from repro.analysis.tables import format_table
from repro.bem.geometries import propeller
from repro.bem.operator import SingleLayerOperator
from repro.core.degree import AdaptiveChargeDegree
from repro.experiments import Table3Row, run_table3

from conftest import save_result


@pytest.fixture(scope="module")
def table3(scale):
    res = (14, 7) if scale == "full" else (8, 4)
    rows, gmres_info = run_table3(p0=4, alpha=0.5, propeller_res=res[0], gripper_res=res[1])
    lines = [
        format_table(
            Table3Row.HEADERS,
            [r.as_list() for r in rows],
            title="Table 3 — BEM single-iteration errors vs degree-9 reference",
        )
    ]
    for name, info in gmres_info.items():
        lines.append(
            f"  {name}: {info['elements']} elements, {info['nodes']} nodes; "
            f"GMRES(10) {'converged' if info['converged'] else 'FAILED'} "
            f"in {info['iterations']} iterations"
        )
    save_result("table3", "\n".join(lines))
    return rows, gmres_info


def test_improved_beats_base_degree(table3):
    """At the same anchor degree the improved method's matvec error is
    significantly below the original's (the paper's Table-3 message)."""
    rows, _ = table3
    for geometry in ("propeller", "gripper"):
        geo = [r for r in rows if r.geometry == geometry]
        base = next(r for r in geo if r.algorithm == "original" and r.degree == "4")
        improved = next(r for r in geo if r.algorithm == "improved")
        assert improved.error < base.error
        # ... at a cost well below simply raising the global degree to
        # reference quality
        p7 = next(r for r in geo if r.degree == "7")
        assert improved.terms < p7.terms * 1.2


def test_error_decreases_with_degree(table3):
    rows, _ = table3
    for geometry in ("propeller", "gripper"):
        errs = [
            r.error
            for r in rows
            if r.geometry == geometry and r.algorithm == "original"
        ]
        assert all(b < a for a, b in zip(errs, errs[1:]))


def test_gmres_converges(table3):
    _, gmres_info = table3
    for name, info in gmres_info.items():
        assert info["converged"], name


def test_bench_bem_matvec(benchmark, table3):
    """Time one treecode matvec on the propeller (the GMRES inner op)."""
    mesh = propeller(blade_res=8, hub_res=8)
    op = SingleLayerOperator(
        mesh, n_gauss=6, degree_policy=AdaptiveChargeDegree(p0=4, alpha=0.5), alpha=0.5
    )
    x = np.ones(mesh.n_vertices)
    out = benchmark(lambda: op.matvec(x))
    assert np.all(np.isfinite(out))
