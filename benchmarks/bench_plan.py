"""Benchmark the compiled-plan matvec paths against the un-planned path.

Two benchmark suites share this driver:

* **BENCH_3** (target-major plans) — treecode matvec latency at n in
  {2k, 10k, 50k} plus a BEM block at ~10k panels where the second and
  later applications must be >= 3x faster than the un-planned path.
* **BENCH_4** (cluster-cluster plans) — the dual-traversal
  ``mode="cluster"`` plan at n=50k must beat the un-planned matvec by
  >= 4x inside the 512 MiB default budget with zero far spills, stay
  within its own Theorem-1 ledger of a sampled direct sum, and agree
  with the target-major plan within the two ledgers combined.  The
  suite also measures the variable-order (``tol``-compiled) plan
  against the minimal uniform-degree plan with the same Theorem-1
  guarantee: >= 2x matvec speedup with no memory growth at n=50k, and
  the variable plan's ledger must stay within the target tolerance.

Run standalone (pytest-free so CI can gate on the exit code)::

    PYTHONPATH=src python benchmarks/bench_plan.py               # BENCH_3.json
    PYTHONPATH=src python benchmarks/bench_plan.py --smoke       # BENCH_3 smoke
    PYTHONPATH=src python benchmarks/bench_plan.py --mode full   # BENCH_4.json
    PYTHONPATH=src python benchmarks/bench_plan.py --mode smoke  # BENCH_4 CI gate

``--smoke`` compiles a small target-major plan (n=5000), runs 5 matvecs
through both paths, and exits non-zero unless the compiled path is no
slower than the fallback and agrees to 1e-12.  ``--mode smoke`` compiles
a cluster plan at n=8000, projects its memory to the n=50k scale, and
exits non-zero if the projection exceeds the 512 MiB budget or the
speedup over the un-planned path is below 2x.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro import AdaptiveChargeDegree, Treecode  # noqa: E402
from repro.bem import OperatorGeometry, SingleLayerOperator  # noqa: E402
from repro.bem.geometries import box, icosphere  # noqa: E402
from repro.data.distributions import make_distribution, unit_charges  # noqa: E402

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
TOL = 1e-12


def _time_best(fn, repeats: int):
    best = np.inf
    out = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def bench_treecode(n: int, repeats: int, alpha: float = 0.5, p0: int = 4) -> dict:
    pts = make_distribution("uniform", n, seed=n)
    q = unit_charges(n, seed=n + 1, signed=True)
    q2 = unit_charges(n, seed=n + 2, signed=True)
    tc = Treecode(pts, q, degree_policy=AdaptiveChargeDegree(p0=p0, alpha=alpha), alpha=alpha)
    lists = tc.traverse(tc.tree.points, self_targets=True)

    def fallback():
        tc.set_charges(q2)
        return tc.evaluate_lists(lists, tc.tree.points, self_targets=True)

    t_fb, ref = _time_best(fallback, repeats)
    plan = tc.compile_plan(lists=lists)
    t_plan, res = _time_best(lambda: plan.execute(q2), repeats)
    diff = float(np.max(np.abs(res.potential - ref.potential)))
    return {
        "n": n,
        "compile_s": plan.compile_time,
        "plan_mb": plan.memory_bytes / 1e6,
        "far_spilled": plan.n_far_spilled,
        "near_spilled": plan.n_near_spilled,
        "fallback_matvec_s": t_fb,
        "plan_matvec_s": t_plan,
        "speedup": t_fb / t_plan,
        "max_abs_diff": diff,
    }


def bench_bem(resolution: int, repeats: int, n_gauss: int = 6, alpha: float = 0.5) -> dict:
    # 12 * resolution^2 panels; resolution=29 gives ~10k
    mesh = box(resolution=resolution)
    rng = np.random.default_rng(0)
    x = rng.uniform(0.5, 1.5, mesh.n_vertices)
    geometry = OperatorGeometry(mesh, n_gauss=n_gauss)
    policy = AdaptiveChargeDegree(p0=4, alpha=alpha)
    fb = SingleLayerOperator(
        mesh, n_gauss=n_gauss, degree_policy=policy, alpha=alpha,
        use_plan=False, geometry=geometry,
    )
    op = SingleLayerOperator(
        mesh, n_gauss=n_gauss, degree_policy=policy, alpha=alpha, geometry=geometry,
    )
    fb.matvec(x)  # warm the cached interaction lists
    t_fb, ref = _time_best(lambda: fb.matvec(x), repeats)
    op.matvec(x)  # first application: un-planned (no compile cost yet)
    op.matvec(x)  # second application triggers the compile
    t_plan, v = _time_best(lambda: op.matvec(x), repeats)
    plan = op._plan
    return {
        "panels": mesh.n_triangles,
        "quad_points": mesh.n_triangles * n_gauss,
        "targets": mesh.n_vertices,
        "compile_s": plan.compile_time,
        "plan_mb": plan.memory_bytes / 1e6,
        "far_spilled": plan.n_far_spilled,
        "near_spilled": plan.n_near_spilled,
        "fallback_matvec_s": t_fb,
        "plan_matvec_s": t_plan,
        "speedup": t_fb / t_plan,
        "max_abs_diff": float(np.max(np.abs(v - ref))),
    }


def bench_cluster(
    n: int,
    repeats: int,
    alpha: float = 0.5,
    p0: int = 4,
    sample: int = 200,
    check_vs_pc: bool = False,
) -> dict:
    """Cluster-cluster plan vs the un-planned matvec at one size.

    Timing uses bounds-free runs of both paths; correctness is judged
    separately with bounds-enabled runs — the cluster result must sit
    within its own Theorem-1 ledger of a sampled direct sum, and within
    the combined ledgers of the target-major (particle-cluster) result.
    """
    from repro.direct import pairwise_potential

    pts = make_distribution("uniform", n, seed=n)
    q = unit_charges(n, seed=n + 1, signed=True)
    q2 = unit_charges(n, seed=n + 2, signed=True)
    tc = Treecode(pts, q, degree_policy=AdaptiveChargeDegree(p0=p0, alpha=alpha), alpha=alpha)
    lists = tc.traverse(tc.tree.points, self_targets=True)

    def fallback():
        tc.set_charges(q2)
        return tc.evaluate_lists(lists, tc.tree.points, self_targets=True)

    t_fb, _ = _time_best(fallback, repeats)
    plan = tc.compile_plan(mode="cluster")
    t_plan, _ = _time_best(lambda: plan.execute(q2), repeats)

    # correctness: bounds-enabled cluster run vs a sampled direct sum
    bplan = tc.compile_plan(mode="cluster", accumulate_bounds=True)
    bres = bplan.execute(q2)
    idx = np.unique(np.linspace(0, n - 1, sample).astype(np.int64))
    exact = pairwise_potential(pts[idx], pts, q2, exclude=idx)
    err_direct = np.abs(bres.potential[idx] - exact)
    ok_direct = bool(np.all(err_direct <= bres.error_bound[idx] + TOL))

    row = {
        "n": n,
        "compile_s": plan.compile_time,
        "plan_mb": plan.memory_bytes / 1e6,
        "box_pairs": plan.n_box_pairs,
        "far_spilled": plan.n_far_spilled,
        "near_spilled": plan.n_near_spilled,
        "fallback_matvec_s": t_fb,
        "plan_matvec_s": t_plan,
        "speedup": t_fb / t_plan,
        "direct_sample_within_ledger": ok_direct,
        "direct_sample_max_err": float(np.max(err_direct)),
        "direct_sample_min_headroom": float(
            np.min(bres.error_bound[idx] - err_direct)
        ),
    }
    if check_vs_pc:
        tc.set_charges(q2)
        pc = tc.evaluate_lists(
            lists, tc.tree.points, self_targets=True, accumulate_bounds=True
        )
        gap = np.abs(bres.potential - pc.potential)
        budget = bres.error_bound + pc.error_bound
        row["pc_within_combined_ledgers"] = bool(np.all(gap <= budget + TOL))
        row["pc_max_gap"] = float(np.max(gap))
        row["pc_min_headroom"] = float(np.min(budget - gap))
    return row


def run_full(out_path: pathlib.Path) -> int:
    report = {"bench": "BENCH_3", "mode": "full", "treecode": [], "bem": None}
    for n, repeats in ((2000, 5), (10000, 3), (50000, 1)):
        row = bench_treecode(n, repeats)
        report["treecode"].append(row)
        print(
            f"treecode n={n:6d}: fallback {row['fallback_matvec_s'] * 1e3:8.1f} ms, "
            f"plan {row['plan_matvec_s'] * 1e3:8.1f} ms ({row['speedup']:.1f}x), "
            f"compile {row['compile_s']:.2f} s, {row['plan_mb']:.0f} MB, "
            f"diff {row['max_abs_diff']:.2e}"
        )
    bem = bench_bem(resolution=29, repeats=3)
    report["bem"] = bem
    print(
        f"bem {bem['panels']} panels: fallback {bem['fallback_matvec_s'] * 1e3:.1f} ms, "
        f"plan {bem['plan_matvec_s'] * 1e3:.1f} ms ({bem['speedup']:.1f}x), "
        f"compile {bem['compile_s']:.2f} s, {bem['plan_mb']:.0f} MB, "
        f"diff {bem['max_abs_diff']:.2e}"
    )
    ok_speed = bem["speedup"] >= 3.0
    ok_diff = all(
        r["max_abs_diff"] <= TOL for r in report["treecode"]
    ) and bem["max_abs_diff"] <= TOL
    report["acceptance"] = {"bem_speedup_3x": ok_speed, "max_abs_diff_1e12": ok_diff}
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out_path}")
    if not (ok_speed and ok_diff):
        print("ACCEPTANCE FAILED", file=sys.stderr)
        return 1
    return 0


def run_smoke(out_path: pathlib.Path | None = None) -> int:
    """CI gate: compile a small plan, run 5 matvecs through each path,
    require the compiled path to be no slower and exact to 1e-12.

    With ``out_path`` a BENCH_3-shaped smoke report is written for the
    regression ledger (``python -m repro bench``)."""
    n, n_matvecs = 5000, 5
    pts = make_distribution("uniform", n, seed=1)
    q = unit_charges(n, seed=2, signed=True)
    tc = Treecode(pts, q, degree_policy=AdaptiveChargeDegree(p0=4, alpha=0.5), alpha=0.5)
    lists = tc.traverse(tc.tree.points, self_targets=True)
    charges = [unit_charges(n, seed=10 + i, signed=True) for i in range(n_matvecs)]

    t0 = time.perf_counter()
    refs = []
    for qi in charges:
        tc.set_charges(qi)
        refs.append(tc.evaluate_lists(lists, tc.tree.points, self_targets=True))
    t_fb = time.perf_counter() - t0

    plan = tc.compile_plan(lists=lists)
    t0 = time.perf_counter()
    results = [plan.execute(qi) for qi in charges]
    t_plan = time.perf_counter() - t0

    diff = max(
        float(np.max(np.abs(r.potential - ref.potential)))
        for r, ref in zip(results, refs)
    )
    print(
        f"smoke n={n}, {n_matvecs} matvecs: fallback {t_fb:.2f} s, "
        f"compiled {t_plan:.2f} s (compile {plan.compile_time:.2f} s), "
        f"max diff {diff:.2e}"
    )
    if out_path is not None:
        report = {
            "bench": "BENCH_3",
            "mode": "smoke",
            "treecode": [
                {
                    "n": n,
                    "compile_s": plan.compile_time,
                    "plan_mb": plan.memory_bytes / 1e6,
                    "far_spilled": plan.n_far_spilled,
                    "near_spilled": plan.n_near_spilled,
                    "fallback_matvec_s": t_fb / n_matvecs,
                    "plan_matvec_s": t_plan / n_matvecs,
                    "speedup": t_fb / t_plan,
                    "max_abs_diff": diff,
                }
            ],
            "bem": None,
        }
        out_path.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {out_path}")
    if diff > TOL:
        print(f"FAIL: plan/fallback disagreement {diff:.2e} > {TOL}", file=sys.stderr)
        return 1
    if t_plan > t_fb:
        print(f"FAIL: compiled matvecs slower ({t_plan:.2f} s > {t_fb:.2f} s)", file=sys.stderr)
        return 1
    print("smoke OK")
    return 0


def bench_variable_order(n: int, repeats: int, alpha: float = 0.5, p0: int = 4) -> dict:
    """Variable-order cluster plan vs the minimal uniform-degree plan
    carrying the same Theorem-1 guarantee.

    The target tolerance is the baseline (adaptive-degree) cluster
    plan's own a-posteriori ledger maximum, so every plan in the
    comparison promises the same worst-case accuracy.  The uniform
    plan must hold the selection's maximum degree at every interaction;
    the variable plan holds it only where the bound demands it — the
    speedup and memory ratio measure exactly that waste.
    """
    from repro.core.degree import FixedDegree

    pts = make_distribution("uniform", n, seed=n)
    q = unit_charges(n, seed=n + 1, signed=True)
    q2 = unit_charges(n, seed=n + 2, signed=True)
    tc = Treecode(
        pts, q, degree_policy=AdaptiveChargeDegree(p0=p0, alpha=alpha), alpha=alpha
    )
    base = tc.compile_plan(mode="cluster", accumulate_bounds=True)
    tol = float(base.execute(q2).error_bound.max())

    var = tc.compile_plan(mode="cluster", tol=tol)
    p_max = int(var.pair_degrees.max()) if var.pair_degrees.size else 0
    tcf = Treecode(pts, q, degree_policy=FixedDegree(p_max), alpha=alpha)
    fixed = tcf.compile_plan(mode="cluster")
    t_var, _ = _time_best(lambda: var.execute(q2), repeats)
    t_fixed, _ = _time_best(lambda: fixed.execute(q2), repeats)

    varb = tc.compile_plan(mode="cluster", tol=tol, accumulate_bounds=True)
    ledger = float(varb.execute(q2).error_bound.max())
    return {
        "n": n,
        "tol": tol,
        "degree_min": int(var.pair_degrees.min()) if var.pair_degrees.size else 0,
        "degree_max": p_max,
        "fixed_matvec_s": t_fixed,
        "variable_matvec_s": t_var,
        "variable_order_speedup": t_fixed / t_var,
        "fixed_plan_mb": fixed.memory_bytes / 1e6,
        "variable_plan_mb": var.memory_bytes / 1e6,
        "variable_order_mem_ratio": var.memory_bytes / fixed.memory_bytes,
        "ledger_max": ledger,
        "variable_order_ledger_headroom": tol - ledger,
    }


def run_full_cluster(out_path: pathlib.Path) -> int:
    """BENCH_4: cluster-cluster plans at n in {10k, 50k}."""
    budget_mb = 512 * 1024 * 1024 / 1e6
    report = {"bench": "BENCH_4", "mode": "full", "treecode_cluster": []}
    for n, repeats, vs_pc in ((10000, 2, True), (50000, 1, False)):
        row = bench_cluster(n, repeats, check_vs_pc=vs_pc)
        report["treecode_cluster"].append(row)
        print(
            f"cluster n={n:6d}: fallback {row['fallback_matvec_s'] * 1e3:8.1f} ms, "
            f"plan {row['plan_matvec_s'] * 1e3:8.1f} ms ({row['speedup']:.1f}x), "
            f"compile {row['compile_s']:.2f} s, {row['plan_mb']:.0f} MB, "
            f"{row['box_pairs']} box pairs, "
            f"direct-in-ledger {row['direct_sample_within_ledger']}"
            + (
                f", pc-in-ledgers {row['pc_within_combined_ledgers']}"
                if vs_pc
                else ""
            )
        )
    vo = bench_variable_order(50000, repeats=1)
    report["variable_order"] = vo
    print(
        f"variable-order n=50000 (tol {vo['tol']:.2e}, degrees "
        f"{vo['degree_min']}..{vo['degree_max']}): uniform p={vo['degree_max']} "
        f"{vo['fixed_matvec_s'] * 1e3:8.1f} ms, variable "
        f"{vo['variable_matvec_s'] * 1e3:8.1f} ms "
        f"({vo['variable_order_speedup']:.1f}x), memory "
        f"{vo['variable_plan_mb']:.0f}/{vo['fixed_plan_mb']:.0f} MB "
        f"({vo['variable_order_mem_ratio']:.2f}x), ledger headroom "
        f"{vo['variable_order_ledger_headroom']:.2e}"
    )
    big = report["treecode_cluster"][-1]
    acceptance = {
        "speedup_4x_at_50k": big["speedup"] >= 4.0,
        "memory_within_512mib_at_50k": big["plan_mb"] <= budget_mb,
        "zero_far_spills": all(
            r["far_spilled"] == 0 for r in report["treecode_cluster"]
        ),
        "direct_sample_within_ledger": all(
            r["direct_sample_within_ledger"] for r in report["treecode_cluster"]
        ),
        "pc_within_combined_ledgers": all(
            r.get("pc_within_combined_ledgers", True)
            for r in report["treecode_cluster"]
        ),
        "variable_order_speedup_2x_at_50k": vo["variable_order_speedup"] >= 2.0,
        "variable_order_memory_reduction": vo["variable_order_mem_ratio"] <= 1.0,
        "variable_order_ledger_within_tol": (
            vo["variable_order_ledger_headroom"] >= 0.0
        ),
    }
    report["acceptance"] = acceptance
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out_path}")
    if not all(acceptance.values()):
        failed = [k for k, v in acceptance.items() if not v]
        print(f"ACCEPTANCE FAILED: {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


def run_smoke_cluster(out_path: pathlib.Path | None = None) -> int:
    """CI gate for cluster plans: small instance, projected-memory and
    speedup thresholds.

    Plan memory is dominated by terms linear in the box-pair count and
    the particle count, and for uniform clouds both grow ~linearly in
    n, so scaling the measured footprint by 50k/n is a cheap proxy for
    the n=50k plan the full benchmark builds (approximate — near-field
    block shapes shift with tree depth; the full suite measures the
    real footprint).
    """
    n = 8000
    budget = 512 * 1024 * 1024
    row = bench_cluster(n, repeats=1, check_vs_pc=True)
    projected_mb = row["plan_mb"] * (50000 / n)
    print(
        f"cluster smoke n={n}: fallback {row['fallback_matvec_s']:.2f} s, "
        f"plan {row['plan_matvec_s']:.2f} s ({row['speedup']:.1f}x), "
        f"{row['plan_mb']:.0f} MB -> projected {projected_mb:.0f} MB at n=50k"
    )
    vo = bench_variable_order(5000, repeats=1)
    print(
        f"variable-order smoke n=5000: uniform p={vo['degree_max']} "
        f"{vo['fixed_matvec_s']:.2f} s, variable {vo['variable_matvec_s']:.2f} s "
        f"({vo['variable_order_speedup']:.1f}x), memory ratio "
        f"{vo['variable_order_mem_ratio']:.2f}, ledger headroom "
        f"{vo['variable_order_ledger_headroom']:.2e}"
    )
    if out_path is not None:
        report = {
            "bench": "BENCH_4",
            "mode": "smoke",
            "treecode_cluster": [row],
            "variable_order": vo,
            "projected_mb_50k": projected_mb,
        }
        out_path.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {out_path}")
    ok = True
    if projected_mb > budget / 1e6:
        print(
            f"FAIL: projected plan memory {projected_mb:.0f} MB exceeds "
            f"the {budget / 1e6:.0f} MB budget",
            file=sys.stderr,
        )
        ok = False
    if row["speedup"] < 2.0:
        print(f"FAIL: speedup {row['speedup']:.2f}x < 2x", file=sys.stderr)
        ok = False
    if row["far_spilled"] != 0:
        print(f"FAIL: {row['far_spilled']} far spills (expected 0)", file=sys.stderr)
        ok = False
    if not row["direct_sample_within_ledger"]:
        print("FAIL: sampled direct error exceeds the Theorem-1 ledger", file=sys.stderr)
        ok = False
    if not row["pc_within_combined_ledgers"]:
        print(
            "FAIL: cluster vs target-major gap exceeds the combined ledgers",
            file=sys.stderr,
        )
        ok = False
    if vo["variable_order_speedup"] < 2.0:
        print(
            f"FAIL: variable-order speedup {vo['variable_order_speedup']:.2f}x "
            "< 2x over the uniform-degree plan",
            file=sys.stderr,
        )
        ok = False
    if vo["variable_order_mem_ratio"] > 1.0:
        print(
            f"FAIL: variable-order plan uses {vo['variable_order_mem_ratio']:.2f}x "
            "the uniform plan's memory (expected <= 1.0)",
            file=sys.stderr,
        )
        ok = False
    if vo["variable_order_ledger_headroom"] < 0.0:
        print(
            "FAIL: variable-order ledger exceeds the target tolerance",
            file=sys.stderr,
        )
        ok = False
    if ok:
        print("cluster smoke OK")
    return 0 if ok else 1


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--smoke", action="store_true", help="small CI smoke check (BENCH_3)"
    )
    ap.add_argument(
        "--mode",
        choices=["smoke", "full"],
        default=None,
        help="run the BENCH_4 cluster-plan suite: 'smoke' is the CI gate, "
        "'full' writes BENCH_4.json",
    )
    ap.add_argument(
        "--out", type=pathlib.Path, default=None,
        help="output path for the JSON report (optional for smoke modes)",
    )
    args = ap.parse_args(argv)
    if args.mode == "smoke":
        return run_smoke_cluster(args.out)
    if args.mode == "full":
        return run_full_cluster(args.out or REPO_ROOT / "BENCH_4.json")
    if args.smoke:
        return run_smoke(args.out)
    return run_full(args.out or REPO_ROOT / "BENCH_3.json")


if __name__ == "__main__":
    sys.exit(main())
