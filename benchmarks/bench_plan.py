"""Benchmark the compiled-plan matvec path against the un-planned path.

Writes machine-readable results to ``BENCH_3.json`` at the repo root:
treecode matvec latency at n in {2k, 10k, 50k} (compile time, plan
memory, speedup, max abs difference) plus a BEM block at ~10k panels
where the second and later applications must be >= 3x faster than the
un-planned ``set_charges`` + ``evaluate_lists`` path.

Run standalone (pytest-free so CI can gate on the exit code)::

    PYTHONPATH=src python benchmarks/bench_plan.py           # full, writes BENCH_3.json
    PYTHONPATH=src python benchmarks/bench_plan.py --smoke   # small CI smoke check

``--smoke`` compiles a small plan (n=5000), runs 5 matvecs through both
paths, and exits non-zero unless the compiled path is no slower than the
fallback and agrees to 1e-12.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro import AdaptiveChargeDegree, Treecode  # noqa: E402
from repro.bem import OperatorGeometry, SingleLayerOperator  # noqa: E402
from repro.bem.geometries import box, icosphere  # noqa: E402
from repro.data.distributions import make_distribution, unit_charges  # noqa: E402

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
TOL = 1e-12


def _time_best(fn, repeats: int):
    best = np.inf
    out = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def bench_treecode(n: int, repeats: int, alpha: float = 0.5, p0: int = 4) -> dict:
    pts = make_distribution("uniform", n, seed=n)
    q = unit_charges(n, seed=n + 1, signed=True)
    q2 = unit_charges(n, seed=n + 2, signed=True)
    tc = Treecode(pts, q, degree_policy=AdaptiveChargeDegree(p0=p0, alpha=alpha), alpha=alpha)
    lists = tc.traverse(tc.tree.points, self_targets=True)

    def fallback():
        tc.set_charges(q2)
        return tc.evaluate_lists(lists, tc.tree.points, self_targets=True)

    t_fb, ref = _time_best(fallback, repeats)
    plan = tc.compile_plan(lists=lists)
    t_plan, res = _time_best(lambda: plan.execute(q2), repeats)
    diff = float(np.max(np.abs(res.potential - ref.potential)))
    return {
        "n": n,
        "compile_s": plan.compile_time,
        "plan_mb": plan.memory_bytes / 1e6,
        "far_spilled": plan.n_far_spilled,
        "near_spilled": plan.n_near_spilled,
        "fallback_matvec_s": t_fb,
        "plan_matvec_s": t_plan,
        "speedup": t_fb / t_plan,
        "max_abs_diff": diff,
    }


def bench_bem(resolution: int, repeats: int, n_gauss: int = 6, alpha: float = 0.5) -> dict:
    # 12 * resolution^2 panels; resolution=29 gives ~10k
    mesh = box(resolution=resolution)
    rng = np.random.default_rng(0)
    x = rng.uniform(0.5, 1.5, mesh.n_vertices)
    geometry = OperatorGeometry(mesh, n_gauss=n_gauss)
    policy = AdaptiveChargeDegree(p0=4, alpha=alpha)
    fb = SingleLayerOperator(
        mesh, n_gauss=n_gauss, degree_policy=policy, alpha=alpha,
        use_plan=False, geometry=geometry,
    )
    op = SingleLayerOperator(
        mesh, n_gauss=n_gauss, degree_policy=policy, alpha=alpha, geometry=geometry,
    )
    fb.matvec(x)  # warm the cached interaction lists
    t_fb, ref = _time_best(lambda: fb.matvec(x), repeats)
    op.matvec(x)  # first application: un-planned (no compile cost yet)
    op.matvec(x)  # second application triggers the compile
    t_plan, v = _time_best(lambda: op.matvec(x), repeats)
    plan = op._plan
    return {
        "panels": mesh.n_triangles,
        "quad_points": mesh.n_triangles * n_gauss,
        "targets": mesh.n_vertices,
        "compile_s": plan.compile_time,
        "plan_mb": plan.memory_bytes / 1e6,
        "far_spilled": plan.n_far_spilled,
        "near_spilled": plan.n_near_spilled,
        "fallback_matvec_s": t_fb,
        "plan_matvec_s": t_plan,
        "speedup": t_fb / t_plan,
        "max_abs_diff": float(np.max(np.abs(v - ref))),
    }


def run_full(out_path: pathlib.Path) -> int:
    report = {"bench": "BENCH_3", "mode": "full", "treecode": [], "bem": None}
    for n, repeats in ((2000, 5), (10000, 3), (50000, 1)):
        row = bench_treecode(n, repeats)
        report["treecode"].append(row)
        print(
            f"treecode n={n:6d}: fallback {row['fallback_matvec_s'] * 1e3:8.1f} ms, "
            f"plan {row['plan_matvec_s'] * 1e3:8.1f} ms ({row['speedup']:.1f}x), "
            f"compile {row['compile_s']:.2f} s, {row['plan_mb']:.0f} MB, "
            f"diff {row['max_abs_diff']:.2e}"
        )
    bem = bench_bem(resolution=29, repeats=3)
    report["bem"] = bem
    print(
        f"bem {bem['panels']} panels: fallback {bem['fallback_matvec_s'] * 1e3:.1f} ms, "
        f"plan {bem['plan_matvec_s'] * 1e3:.1f} ms ({bem['speedup']:.1f}x), "
        f"compile {bem['compile_s']:.2f} s, {bem['plan_mb']:.0f} MB, "
        f"diff {bem['max_abs_diff']:.2e}"
    )
    ok_speed = bem["speedup"] >= 3.0
    ok_diff = all(
        r["max_abs_diff"] <= TOL for r in report["treecode"]
    ) and bem["max_abs_diff"] <= TOL
    report["acceptance"] = {"bem_speedup_3x": ok_speed, "max_abs_diff_1e12": ok_diff}
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out_path}")
    if not (ok_speed and ok_diff):
        print("ACCEPTANCE FAILED", file=sys.stderr)
        return 1
    return 0


def run_smoke() -> int:
    """CI gate: compile a small plan, run 5 matvecs through each path,
    require the compiled path to be no slower and exact to 1e-12."""
    n, n_matvecs = 5000, 5
    pts = make_distribution("uniform", n, seed=1)
    q = unit_charges(n, seed=2, signed=True)
    tc = Treecode(pts, q, degree_policy=AdaptiveChargeDegree(p0=4, alpha=0.5), alpha=0.5)
    lists = tc.traverse(tc.tree.points, self_targets=True)
    charges = [unit_charges(n, seed=10 + i, signed=True) for i in range(n_matvecs)]

    t0 = time.perf_counter()
    refs = []
    for qi in charges:
        tc.set_charges(qi)
        refs.append(tc.evaluate_lists(lists, tc.tree.points, self_targets=True))
    t_fb = time.perf_counter() - t0

    plan = tc.compile_plan(lists=lists)
    t0 = time.perf_counter()
    results = [plan.execute(qi) for qi in charges]
    t_plan = time.perf_counter() - t0

    diff = max(
        float(np.max(np.abs(r.potential - ref.potential)))
        for r, ref in zip(results, refs)
    )
    print(
        f"smoke n={n}, {n_matvecs} matvecs: fallback {t_fb:.2f} s, "
        f"compiled {t_plan:.2f} s (compile {plan.compile_time:.2f} s), "
        f"max diff {diff:.2e}"
    )
    if diff > TOL:
        print(f"FAIL: plan/fallback disagreement {diff:.2e} > {TOL}", file=sys.stderr)
        return 1
    if t_plan > t_fb:
        print(f"FAIL: compiled matvecs slower ({t_plan:.2f} s > {t_fb:.2f} s)", file=sys.stderr)
        return 1
    print("smoke OK")
    return 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--smoke", action="store_true", help="small CI smoke check")
    ap.add_argument(
        "--out", type=pathlib.Path, default=REPO_ROOT / "BENCH_3.json",
        help="output path for the full report",
    )
    args = ap.parse_args(argv)
    return run_smoke() if args.smoke else run_full(args.out)


if __name__ == "__main__":
    sys.exit(main())
