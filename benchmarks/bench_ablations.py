"""Benchmarks — ablations A1 (alpha sweep), A2 (leaf size), A3 (ordering)."""

import pytest

from repro.analysis.tables import format_table
from repro.experiments import run_alpha_sweep, run_leaf_sweep, run_ordering_study

from conftest import save_result


@pytest.fixture(scope="module")
def alpha_rows(scale):
    n = 12000 if scale == "full" else 4000
    headers, rows = run_alpha_sweep(n=n, p0=4)
    save_result("ablation_alpha", format_table(headers, rows, title="A1 — MAC parameter sweep"))
    return rows


@pytest.fixture(scope="module")
def leaf_rows(scale):
    n = 12000 if scale == "full" else 4000
    headers, rows = run_leaf_sweep(n=n, p0=4, alpha=0.4)
    save_result("ablation_leaf", format_table(headers, rows, title="A2 — leaf-capacity sweep"))
    return rows


@pytest.fixture(scope="module")
def ordering_rows(scale):
    n = 16000 if scale == "full" else 6000
    headers, rows = run_ordering_study(n=n, alpha=0.4)
    save_result(
        "ablation_ordering", format_table(headers, rows, title="A3 — block-ordering study")
    )
    return rows


def test_error_monotone_in_alpha(alpha_rows):
    """Tighter MAC (smaller alpha) gives smaller error for both methods."""
    err_o = [r[1] for r in alpha_rows]
    err_n = [r[3] for r in alpha_rows]
    assert err_o[0] < err_o[-1]
    assert err_n[0] < err_n[-1]


def test_adaptive_never_worse_across_alpha(alpha_rows):
    for r in alpha_rows:
        assert r[3] <= r[1] * 1.15, r


def test_near_fraction_grows_with_leaf(leaf_rows):
    """Bigger leaves shift work from multipole terms to direct pairs."""
    frac = [r[4] for r in leaf_rows]
    assert all(b > a for a, b in zip(frac, frac[1:]))


def test_far_terms_shrink_with_leaf(leaf_rows):
    far = [r[2] for r in leaf_rows]
    assert far[-1] < far[0]


def test_hilbert_ordering_most_local(ordering_rows):
    """The paper's Peano-Hilbert ordering minimizes the data volume each
    processor touches (the cache/communication proxy); random ordering
    makes every processor touch most of the tree."""
    by_name = {r[0]: r for r in ordering_rows}
    # summed per-block distinct-cluster volume: hilbert clearly smallest
    assert by_name["hilbert"][1] < 0.6 * by_name["random"][1]
    assert by_name["hilbert"][1] <= by_name["morton"][1] * 1.02
    # per-processor unique data volume under contiguous assignment
    assert by_name["hilbert"][2] < by_name["random"][2]


def test_bench_alpha_point(benchmark, alpha_rows, leaf_rows, ordering_rows):
    headers, rows = benchmark(lambda: run_alpha_sweep(alphas=[0.5], n=2000))
    assert len(rows) == 1
