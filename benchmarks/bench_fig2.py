"""Benchmark — Figure 2: error and cost vs n series for both methods."""

import pytest

from repro.analysis.tables import format_series
from repro.experiments import run_fig2

from conftest import save_result


@pytest.fixture(scope="module")
def fig2_data(scale):
    sizes = (
        [2000, 4000, 8000, 16000, 32000]
        if scale == "full"
        else [500, 1000, 2000, 4000, 8000]
    )
    data = run_fig2(sizes, p0=4, alpha=0.4)
    parts = ["Figure 2 — error and computational cost of original vs new method"]
    for name, (xs, ys) in data.series().items():
        parts.append(format_series(name, xs, ys, xlabel="n", ylabel=name))
    save_result("fig2", "\n\n".join(parts))
    return data


def test_fig2_error_series_shape(fig2_data):
    """New method error stays below original at every n."""
    for eo, en in zip(fig2_data.err_orig, fig2_data.err_new):
        assert en <= eo * 1.1


def test_fig2_bound_divergence(fig2_data):
    """The original method's bound grows with n; the improved method's
    bound grows much more slowly (the paper's headline figure)."""
    b_o = fig2_data.bound_orig
    b_n = fig2_data.bound_new
    growth_o = b_o[-1] / b_o[0]
    growth_n = b_n[-1] / b_n[0]
    assert growth_o > 2.0  # clearly growing
    assert growth_n < growth_o / 1.5  # much slower


def test_fig2_terms_similar(fig2_data):
    """Costs of the two methods stay within a small constant factor."""
    for to, tn in zip(fig2_data.terms_orig, fig2_data.terms_new):
        assert tn / to < 3.0


def test_bench_fig2_point(benchmark, fig2_data):
    """Time a single Figure-2 data point (both methods at n=2000)."""
    from repro.experiments import run_case

    row = benchmark(lambda: run_case("uniform", 2000, p0=4, alpha=0.4))
    assert row.err_new <= row.err_orig * 1.1
