"""Additional tests for the parallel executor."""

import numpy as np
import pytest

from repro.core.degree import FixedDegree
from repro.core.treecode import Treecode
from repro.parallel import evaluate_parallel, original_points


@pytest.fixture(scope="module")
def tc():
    rng = np.random.default_rng(99)
    pts = rng.random((600, 3))
    q = rng.uniform(-1, 1, 600)
    return Treecode(pts, q, degree_policy=FixedDegree(4), alpha=0.5)


def test_original_points_roundtrip(tc):
    pts = original_points(tc)
    assert np.allclose(pts[tc.tree.perm], tc.tree.points)


def test_w_invariance(tc):
    """The result must not depend on the aggregation factor."""
    base = tc.evaluate().potential
    for w in (1, 7, 64, 600, 10_000):
        par = evaluate_parallel(tc, n_threads=2, w=w)
        assert np.allclose(par.potential, base, rtol=1e-12), w


def test_ordering_invariance(tc):
    base = tc.evaluate().potential
    for ordering in ("hilbert", "morton", "input", "random"):
        par = evaluate_parallel(tc, n_threads=2, w=32, ordering=ordering)
        assert np.allclose(par.potential, base, rtol=1e-12), ordering


def test_block_count(tc):
    par = evaluate_parallel(tc, n_threads=1, w=100)
    assert par.n_blocks == 6
    assert par.n_threads == 1
    assert par.wall_time > 0


def test_softened_parallel_matches_serial():
    rng = np.random.default_rng(5)
    pts = rng.random((400, 3))
    q = rng.uniform(0.5, 1.5, 400)
    tc = Treecode(pts, q, degree_policy=FixedDegree(4), alpha=0.5, softening=0.02)
    serial = tc.evaluate().potential
    par = evaluate_parallel(tc, n_threads=2, w=48)
    assert np.allclose(par.potential, serial, rtol=1e-12)
