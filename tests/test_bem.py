"""Tests for the single-layer operator and BEM solves."""

import numpy as np
import pytest

from repro.bem import (
    SingleLayerOperator,
    capacitance,
    icosphere,
    nodal_integral,
    solve_dirichlet,
)
from repro.core.degree import AdaptiveChargeDegree, FixedDegree


@pytest.fixture(scope="module")
def sphere():
    return icosphere(2)  # 162 vertices, 320 triangles


def test_operator_shape_and_charges(sphere):
    op = SingleLayerOperator(sphere, n_gauss=3, degree_policy=FixedDegree(5))
    assert op.shape == (162, 162)
    sigma = np.ones(162)
    q = op.charges_for(sigma)
    # total charge = area / 4pi for unit density
    assert q.sum() == pytest.approx(sphere.total_area() / (4 * np.pi), rel=1e-12)
    with pytest.raises(ValueError):
        op.charges_for(np.ones(10))


def test_matvec_matches_dense(sphere, rng):
    op = SingleLayerOperator(sphere, n_gauss=3, degree_policy=FixedDegree(9), alpha=0.4)
    A = op.dense_matrix()
    x = rng.random(sphere.n_vertices)
    tv = op.matvec(x)
    dv = A @ x
    assert np.linalg.norm(tv - dv) / np.linalg.norm(dv) < 1e-5
    assert op.n_matvecs == 1
    assert op.stats.n_terms > 0


def test_exact_potential_matches_dense(sphere, rng):
    op = SingleLayerOperator(sphere, n_gauss=3, degree_policy=FixedDegree(4))
    A = op.dense_matrix()
    x = rng.random(sphere.n_vertices)
    assert np.allclose(op.exact_potential(x), A @ x, rtol=1e-12)


def test_operator_linearity(sphere, rng):
    op = SingleLayerOperator(sphere, n_gauss=3, degree_policy=FixedDegree(6))
    x = rng.random(sphere.n_vertices)
    y = rng.random(sphere.n_vertices)
    lhs = op.matvec(2 * x + 3 * y)
    rhs = 2 * op.matvec(x) + 3 * op.matvec(y)
    assert np.allclose(lhs, rhs, rtol=1e-10)


def test_sphere_capacitance(sphere):
    """Unit sphere capacitance is 4π with the 1/(4π r) kernel."""
    C, sol = capacitance(sphere, n_gauss=6, degree_policy=FixedDegree(6), alpha=0.5)
    assert sol.gmres.converged
    assert C == pytest.approx(4 * np.pi, rel=0.01)


def test_sphere_density_uniform(sphere):
    """The equilibrium density on a sphere is constant (= 1/radius for
    unit potential)."""
    sol = solve_dirichlet(sphere, 1.0, n_gauss=6, degree_policy=FixedDegree(6))
    sigma = sol.sigma
    assert sigma.std() / sigma.mean() < 0.02
    assert sigma.mean() == pytest.approx(1.0, rel=0.02)


def test_capacitance_scales_with_radius():
    m1 = icosphere(1, radius=1.0)
    m2 = icosphere(1, radius=2.0)
    C1, _ = capacitance(m1, n_gauss=3, degree_policy=FixedDegree(5))
    C2, _ = capacitance(m2, n_gauss=3, degree_policy=FixedDegree(5))
    assert C2 / C1 == pytest.approx(2.0, rel=0.01)


def test_adaptive_policy_reaches_reference_accuracy(sphere, rng):
    """Improved method matvec vs degree-9 reference (the paper's Table-3
    methodology): adaptive should be closer to reference than fixed p0."""
    x = rng.random(sphere.n_vertices)
    ref = SingleLayerOperator(sphere, n_gauss=3, degree_policy=FixedDegree(9), alpha=0.5)
    vref = ref.matvec(x)
    fixed = SingleLayerOperator(sphere, n_gauss=3, degree_policy=FixedDegree(4), alpha=0.5)
    adaptive = SingleLayerOperator(
        sphere, n_gauss=3, degree_policy=AdaptiveChargeDegree(p0=4, alpha=0.5), alpha=0.5
    )
    e_fix = np.linalg.norm(fixed.matvec(x) - vref) / np.linalg.norm(vref)
    e_ada = np.linalg.norm(adaptive.matvec(x) - vref) / np.linalg.norm(vref)
    assert e_ada < e_fix


def test_nodal_integral():
    m = icosphere(2)
    # integral of 1 over the surface = total area
    assert nodal_integral(m, np.ones(m.n_vertices)) == pytest.approx(m.total_area())
    with pytest.raises(ValueError):
        nodal_integral(m, np.ones(3))


def test_gmres_history_recorded(sphere):
    sol = solve_dirichlet(sphere, 1.0, n_gauss=3, degree_policy=FixedDegree(5), tol=1e-8)
    assert sol.gmres.converged
    assert sol.gmres.history[-1] <= 1e-8
    assert sol.operator.n_matvecs >= sol.gmres.n_iterations
