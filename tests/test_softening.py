"""Tests for Plummer softening in the direct and treecode kernels."""

import numpy as np
import pytest

from repro import FixedDegree, Treecode, direct_gradient, direct_potential
from repro.direct import pairwise_potential


def test_softened_potential_value():
    pts = np.array([[0.0, 0.0, 0.0], [1.0, 0.0, 0.0]])
    q = np.array([1.0, 1.0])
    eps = 0.5
    phi = direct_potential(pts, q, softening=eps)
    expected = 1.0 / np.sqrt(1.0 + eps**2)
    assert phi[0] == pytest.approx(expected)
    assert phi[1] == pytest.approx(expected)


def test_softening_bounds_close_encounters():
    """Potential of a very close pair is capped at ~q/eps."""
    pts = np.array([[0.0, 0.0, 0.0], [1e-12, 0.0, 0.0]])
    q = np.ones(2)
    phi = direct_potential(pts, q, softening=0.1)
    assert phi[0] == pytest.approx(10.0, rel=1e-6)


def test_softened_gradient_finite_and_matches_fd():
    rng = np.random.default_rng(0)
    pts = rng.random((40, 3))
    q = rng.uniform(-1, 1, 40)
    eps = 0.05
    tgt = rng.random((10, 3))
    g = direct_gradient(pts, q, targets=tgt, softening=eps)
    h = 1e-6
    for i in range(3):
        e = np.zeros(3)
        e[i] = h
        fd = (
            direct_potential(pts, q, targets=tgt + e, softening=eps)
            - direct_potential(pts, q, targets=tgt - e, softening=eps)
        ) / (2 * h)
        assert np.allclose(g[:, i], fd, rtol=1e-5, atol=1e-8)


def test_treecode_softening_matches_direct():
    rng = np.random.default_rng(1)
    pts = rng.random((500, 3))
    q = rng.uniform(0.5, 1.5, 500)
    eps = 0.02
    ref = direct_potential(pts, q, softening=eps)
    tc = Treecode(pts, q, degree_policy=FixedDegree(7), alpha=0.3, softening=eps)
    res = tc.evaluate()
    err = np.linalg.norm(res.potential - ref) / np.linalg.norm(ref)
    # far field is unsoftened: the residual is O(eps^2 / r^3) + truncation
    assert err < 5e-4


def test_treecode_softening_gradient_finite_at_collisions():
    pts = np.concatenate(
        [np.full((5, 3), 0.5), np.random.default_rng(2).random((100, 3))]
    )
    q = np.ones(105)
    tc = Treecode(pts, q, degree_policy=FixedDegree(4), softening=0.01, max_depth=8)
    res = tc.evaluate(compute="both")
    assert np.all(np.isfinite(res.potential))
    assert np.all(np.isfinite(res.gradient))


def test_zero_softening_unchanged():
    rng = np.random.default_rng(3)
    pts = rng.random((200, 3))
    q = rng.uniform(-1, 1, 200)
    a = direct_potential(pts, q)
    b = direct_potential(pts, q, softening=0.0)
    assert np.array_equal(a, b)


def test_pairwise_softening_with_exclusion():
    pts = np.array([[0.0, 0.0, 0.0], [1.0, 0.0, 0.0], [2.0, 0.0, 0.0]])
    q = np.ones(3)
    eps = 0.3
    out = pairwise_potential(
        pts[:1], pts, q, exclude=np.array([0]), softening=eps
    )
    expected = 1 / np.sqrt(1 + eps**2) + 1 / np.sqrt(4 + eps**2)
    assert out[0] == pytest.approx(expected)


def test_negative_softening_rejected():
    pts = np.random.default_rng(0).random((10, 3))
    with pytest.raises(ValueError):
        Treecode(pts, np.ones(10), softening=-0.1)
