"""Detailed tests for the BEM operator internals and solver options."""

import numpy as np
import pytest

from repro.bem import SingleLayerOperator, icosphere, solve_dirichlet
from repro.core.degree import FixedDegree


@pytest.fixture(scope="module")
def sphere():
    return icosphere(1)  # 42 vertices — small enough for dense math


def test_near_diagonal_estimates_dense_diagonal(sphere):
    """The near-field diagonal must approximate the true matrix diagonal
    (the self-element terms dominate A_ii)."""
    op = SingleLayerOperator(sphere, n_gauss=6, degree_policy=FixedDegree(6))
    d_near = op.near_diagonal()
    d_true = np.diag(op.dense_matrix())
    ratio = d_near / d_true
    assert np.all(ratio > 0.5)
    assert np.all(ratio <= 1.0 + 1e-12)  # subset of positive contributions
    assert np.median(ratio) > 0.7


def test_jacobi_and_plain_agree(sphere):
    """Both preconditioning choices must converge to the same density."""
    kwargs = dict(n_gauss=3, degree_policy=FixedDegree(6), tol=1e-9, maxiter=300)
    s_plain = solve_dirichlet(sphere, 1.0, precondition="none", **kwargs)
    s_jac = solve_dirichlet(sphere, 1.0, precondition="jacobi", **kwargs)
    assert s_plain.gmres.converged and s_jac.gmres.converged
    assert np.allclose(s_plain.sigma, s_jac.sigma, rtol=1e-5)


def test_unknown_preconditioner(sphere):
    with pytest.raises(ValueError):
        solve_dirichlet(sphere, 1.0, n_gauss=3, precondition="ilu")


def test_operator_reuse(sphere):
    """A prebuilt operator can be reused across solves (stats accumulate)."""
    op = SingleLayerOperator(sphere, n_gauss=3, degree_policy=FixedDegree(5))
    s1 = solve_dirichlet(sphere, 1.0, operator=op, tol=1e-6)
    n1 = op.n_matvecs
    s2 = solve_dirichlet(sphere, 2.0, operator=op, tol=1e-6)
    assert op.n_matvecs > n1
    # linearity: doubling the boundary value doubles the density
    assert np.allclose(s2.sigma, 2.0 * s1.sigma, rtol=1e-4)


def test_vector_boundary_values(sphere):
    """Non-constant Dirichlet data: potential of an off-center unit
    charge; the solved density must reproduce that potential."""
    src = np.array([0.2, 0.1, 0.0])  # inside the sphere
    g = 1.0 / (4 * np.pi * np.linalg.norm(sphere.vertices - src, axis=1))
    sol = solve_dirichlet(
        sphere, g, n_gauss=6, degree_policy=FixedDegree(7), tol=1e-8, maxiter=300
    )
    assert sol.gmres.converged
    # total induced charge equals the enclosed charge (Gauss's law)
    from repro.bem import nodal_integral

    q_total = nodal_integral(sphere, sol.sigma)
    assert q_total == pytest.approx(1.0, rel=0.05)


def test_matvec_count_tracks_gmres(sphere):
    op = SingleLayerOperator(sphere, n_gauss=3, degree_policy=FixedDegree(5))
    sol = solve_dirichlet(sphere, 1.0, operator=op, tol=1e-7)
    # one matvec per inner iteration plus one residual check per cycle
    assert sol.gmres.n_iterations <= op.n_matvecs <= sol.gmres.n_iterations + sol.gmres.n_restarts + 1


def test_gauss_point_counts(sphere):
    for k in (1, 3, 6, 7):
        op = SingleLayerOperator(sphere, n_gauss=k, degree_policy=FixedDegree(4))
        assert op.points.shape == (sphere.n_triangles * k, 3)
        assert op.gp_nodes.shape == (sphere.n_triangles * k, 3)


def test_quadrature_refinement_converges(sphere):
    """Higher-order quadrature changes the operator less and less."""
    x = np.ones(sphere.n_vertices)
    outs = {}
    for k in (1, 3, 6, 7):
        op = SingleLayerOperator(sphere, n_gauss=k, degree_policy=FixedDegree(9), alpha=0.3)
        outs[k] = op.matvec(x)
    d13 = np.linalg.norm(outs[1] - outs[3])
    d67 = np.linalg.norm(outs[6] - outs[7])
    assert d67 < d13


def test_nonfinite_inputs_rejected():
    pts = np.random.default_rng(0).random((20, 3))
    pts[3, 1] = np.nan
    from repro.tree.octree import build_octree

    with pytest.raises(ValueError):
        build_octree(pts, np.ones(20))
    pts[3, 1] = 0.5
    q = np.ones(20)
    q[7] = np.inf
    with pytest.raises(ValueError):
        build_octree(pts, q)
