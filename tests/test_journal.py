"""Tests for the structured run journal (repro.obs.journal)."""

import json
import os

import numpy as np
import pytest

from repro.obs import REGISTRY, journal, tracing
from repro.obs.journal import Journal, read_journal
from repro.obs.tracing import span
from repro.robust.guards import NumericalCorruptionError, check_finite
from repro.robust.retry import RetryExhausted, RetryPolicy, retry_call


@pytest.fixture(autouse=True)
def clean_obs():
    tracing.disable()
    tracing.get_tracer().clear()
    REGISTRY.reset()
    journal.set_journal(None)
    yield
    tracing.disable()
    tracing.get_tracer().clear()
    REGISTRY.reset()
    journal.set_journal(None)


def test_envelope_and_sequence(tmp_path):
    path = tmp_path / "run.jsonl"
    with Journal(str(path)) as j:
        j.emit("alpha", x=1)
        j.emit("beta", arr=np.float64(2.5), n=np.int64(7))
    events = read_journal(str(path))
    assert [e["event"] for e in events] == ["alpha", "beta"]
    for i, e in enumerate(events):
        assert e["v"] == journal.SCHEMA_VERSION
        assert e["seq"] == i
        assert e["pid"] == os.getpid()
        assert isinstance(e["ts"], float)
    # numpy scalars were coerced to plain JSON numbers
    assert events[1]["data"] == {"arr": 2.5, "n": 7}


def test_emit_noop_without_active_journal():
    journal.emit("ignored", x=1)  # must not raise


def test_append_mode_extends_existing_file(tmp_path):
    path = tmp_path / "run.jsonl"
    with Journal(str(path)) as j:
        j.emit("first")
    with Journal(str(path)) as j:
        j.emit("second")
    assert [e["event"] for e in read_journal(str(path))] == ["first", "second"]


def test_emit_after_close_is_noop(tmp_path):
    path = tmp_path / "run.jsonl"
    j = Journal(str(path))
    j.emit("kept")
    j.close()
    j.emit("dropped")
    assert [e["event"] for e in read_journal(str(path))] == ["kept"]


def test_forked_child_inherits_inert_journal(tmp_path):
    path = tmp_path / "run.jsonl"
    with Journal(str(path)) as j:
        j.emit("parent")
        pid = os.fork()
        if pid == 0:  # child: emit must be a no-op
            j.emit("child")
            os._exit(0)
        os.waitpid(pid, 0)
        j.emit("parent_again")
    assert [e["event"] for e in read_journal(str(path))] == [
        "parent",
        "parent_again",
    ]


def test_phase_spans_journal_through_tracer(tmp_path):
    path = tmp_path / "run.jsonl"
    tracing.enable()
    with Journal(str(path)) as j:
        journal.set_journal(j)
        with span("treecode.build", n=100):
            pass
        with span("not.a.phase"):
            pass
    journal.set_journal(None)
    events = read_journal(str(path))
    assert len(events) == 1
    assert events[0]["event"] == "phase"
    assert events[0]["data"]["name"] == "treecode.build"
    assert events[0]["data"]["args"] == {"n": 100}
    assert events[0]["data"]["dur_s"] >= 0


def test_retry_and_guard_trips_are_journaled(tmp_path):
    path = tmp_path / "run.jsonl"
    with Journal(str(path)) as j:
        journal.set_journal(j)
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 2:
                raise ValueError("boom")
            return "ok"

        value, attempts = retry_call(
            flaky, RetryPolicy(max_retries=2, base_delay=0.0), site="test.site"
        )
        assert value == "ok" and attempts == 2
        with pytest.raises(NumericalCorruptionError):
            check_finite("test.guard", np.array([1.0, np.nan]))
        with pytest.raises(RetryExhausted):
            retry_call(
                lambda: (_ for _ in ()).throw(ValueError("always")),
                RetryPolicy(max_retries=1, base_delay=0.0),
                site="test.site",
            )
    journal.set_journal(None)
    events = read_journal(str(path))
    kinds = [e["event"] for e in events]
    assert kinds.count("retry") == 2
    assert "guard_trip" in kinds
    retry_ev = next(e for e in events if e["event"] == "retry")
    assert retry_ev["data"] == {
        "site": "test.site",
        "attempt": 1,
        "error": "ValueError",
    }
    guard_ev = next(e for e in events if e["event"] == "guard_trip")
    assert guard_ev["data"] == {"site": "test.guard", "reason": "non_finite"}


def test_checkpoint_events_are_journaled(tmp_path):
    from repro.robust import Checkpoint
    from repro.robust.checkpoint import cached_step

    jpath = tmp_path / "run.jsonl"
    cpath = str(tmp_path / "ck.json")
    with Journal(str(jpath)) as j:
        journal.set_journal(j)
        ck = Checkpoint(cpath, meta={"exp": "t"})
        assert cached_step(ck, "step1", lambda: 42) == 42
        ck2 = Checkpoint(cpath, meta={"exp": "t"})
        assert cached_step(ck2, "step1", lambda: 99) == 42  # resumed
    journal.set_journal(None)
    kinds = [e["event"] for e in read_journal(str(jpath))]
    assert "checkpoint_write" in kinds
    assert "checkpoint_resume" in kinds


def test_plan_compile_journaled(tmp_path):
    from repro.core.degree import FixedDegree
    from repro.core.treecode import Treecode
    from repro.data.distributions import make_distribution, unit_charges

    n = 300
    pts = make_distribution("uniform", n, seed=3)
    q = unit_charges(n, seed=4, signed=True)
    tc = Treecode(pts, q, degree_policy=FixedDegree(3), alpha=0.5)
    path = tmp_path / "run.jsonl"
    with Journal(str(path)) as j:
        journal.set_journal(j)
        tc.compile_plan()
    journal.set_journal(None)
    events = [e for e in read_journal(str(path)) if e["event"] == "plan_compile"]
    assert len(events) == 1
    data = events[0]["data"]
    assert data["mode"] == "target"
    assert data["targets"] == n
    assert data["memory_bytes"] > 0
    assert data["compile_s"] >= 0


# ---------------------------------------------------------------------------
# schema v2: the supervisor.* event family
# ---------------------------------------------------------------------------
def test_schema_v1_journal_still_parses(tmp_path):
    """The v2 bump changed no envelope field, so v1 journals written by
    older runs must still parse through read_journal unchanged."""
    path = tmp_path / "old.jsonl"
    v1 = {
        "v": 1,
        "seq": 0,
        "ts": 123.0,
        "pid": 1,
        "event": "retry",
        "data": {"site": "parallel.block", "attempt": 1, "error": "E"},
    }
    path.write_text(json.dumps(v1) + "\n")
    assert read_journal(str(path)) == [v1]
    # ...but a v1 entry can never validate as a supervisor event
    assert not journal.validate_supervisor_event(v1)


def test_every_emitted_supervisor_event_validates(tmp_path):
    """Each supervisor.* event the Supervisor actually emits carries a
    v2 envelope and every required payload key of its type."""
    from repro.robust.supervisor import Supervisor, SupervisorConfig

    path = tmp_path / "run.jsonl"
    with Journal(str(path)) as j:
        journal.set_journal(j)
        sup = Supervisor(SupervisorConfig())
        sup.on_heartbeat_miss(0, 3, 1.5, 1.0)
        sup.on_reap(0, 3, 1.5, 1.0, "hang")
        sup.on_worker_death(1, None)
        sup.record_failure(3)
        sup.record_failure(3)
        sup.on_quarantine(3, "redo")
        sup.on_memory_shed(1024, 2048, 4096)
        sup.trip("worker_mortality")
        sup.on_degrade("process", "thread", "worker_mortality", 5)
    journal.set_journal(None)
    sup_events = [
        e for e in read_journal(str(path)) if e["event"].startswith("supervisor.")
    ]
    # the synthetic run exercised the full v2 event family
    assert {e["event"] for e in sup_events} == set(journal.SUPERVISOR_EVENTS)
    for e in sup_events:
        assert e["v"] == journal.SCHEMA_VERSION == 2
        assert journal.validate_supervisor_event(e)


def test_validate_supervisor_event_rejects_malformed():
    good = {
        "v": 2,
        "event": "supervisor.reap",
        "data": {
            "slot": 0,
            "unit": 1,
            "waited_s": 2.0,
            "deadline_s": 1.0,
            "kind": "hang",
        },
    }
    assert journal.validate_supervisor_event(good)
    assert not journal.validate_supervisor_event({**good, "v": 1})  # old envelope
    assert not journal.validate_supervisor_event(
        {**good, "event": "supervisor.unknown"}
    )
    assert not journal.validate_supervisor_event({**good, "data": {"slot": 0}})
    assert not journal.validate_supervisor_event(
        {"v": 2, "event": "retry", "data": {}}  # not a supervisor event
    )


def test_cli_journal_wraps_run(tmp_path):
    """--journal on a real (tiny) CLI run produces run_start ... run_end."""
    from repro.cli import main

    path = tmp_path / "run.jsonl"
    code = main(
        ["leaf-sweep", "--seed", "0", "--journal", str(path)]
    )
    assert code == 0
    events = read_journal(str(path))
    assert events[0]["event"] == "run_start"
    assert events[0]["data"]["command"] == "leaf-sweep"
    assert events[-1]["event"] == "run_end"
    assert events[-1]["data"] == {"status": "ok", "exit_code": 0}
    # --journal implies observability: compute phases were journaled
    assert any(e["event"] == "phase" for e in events)
    # the active journal was restored afterwards
    assert journal.get_journal() is None
