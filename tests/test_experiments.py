"""Tests for the experiment harness (small instances)."""

import numpy as np
import pytest

from repro.bem.geometries import icosphere
from repro.experiments import (
    run_alpha_sweep,
    run_case,
    run_cost_ratio,
    run_fig2,
    run_fmm_extension,
    run_leaf_sweep,
    run_ordering_study,
    run_table2,
    run_table3_geometry,
)


def test_run_case_fields():
    row = run_case("uniform", 600, p0=3, alpha=0.5)
    assert row.n == 600
    assert row.err_orig > 0 and row.err_new > 0
    assert row.bound_orig > row.bound_new
    assert row.terms_orig > 0 and row.terms_new >= row.terms_orig
    assert row.degrees_new[0] == 3
    assert len(row.as_list()) == len(row.HEADERS)


def test_run_case_deterministic():
    a = run_case("gaussian", 400, seed=9)
    b = run_case("gaussian", 400, seed=9)
    assert a.err_orig == b.err_orig
    assert a.terms_new == b.terms_new


def test_run_fig2_series_aligned():
    data = run_fig2([300, 600], p0=3, alpha=0.5)
    series = data.series()
    assert set(series) == {
        "error(original)",
        "error(new)",
        "bound(original)",
        "bound(new)",
        "terms(original)",
        "terms(new)",
    }
    for xs, ys in series.values():
        assert xs == [300, 600]
        assert len(ys) == 2


def test_run_table2_small():
    rows = run_table2(
        [("tiny", "uniform", 800)], n_procs=8, w=32, p0=3, alpha=0.5, n_threads=2
    )
    assert len(rows) == 2  # original + new
    for r in rows:
        assert r.parallel_matches_serial
        assert 1.0 < r.sim_speedup_lpt <= 8.0
        assert r.serial_time > 0
    assert rows[1].fetch_terms > rows[0].fetch_terms


def test_run_table3_geometry_sphere():
    mesh = icosphere(2)
    rows = run_table3_geometry("sphere", mesh, p0=3, degrees=[3, 4], n_gauss=3)
    assert len(rows) == 3  # two original degrees + improved
    orig = [r for r in rows if r.algorithm == "original"]
    assert orig[1].error < orig[0].error
    improved = next(r for r in rows if r.algorithm == "improved")
    assert improved.error < orig[0].error
    assert improved.degree == "3*"


def test_run_cost_ratio_shape():
    headers, rows = run_cost_ratio([500, 1500], p0=3, alpha=0.5)
    assert len(headers) == 6
    for row in rows:
        n, height, t_o, t_n, measured, predicted = row
        assert t_n >= t_o
        assert measured == pytest.approx(t_n / t_o)
        assert predicted >= 1.0


def test_run_alpha_sweep_shape():
    headers, rows = run_alpha_sweep(alphas=[0.4, 0.6], n=800, p0=3)
    assert len(rows) == 2
    # looser MAC -> fewer terms, more error (for the fixed method)
    assert rows[1][2] < rows[0][2]
    assert rows[1][1] > rows[0][1]


def test_run_leaf_sweep_shape():
    headers, rows = run_leaf_sweep(leaf_sizes=[4, 32], n=800, p0=3, alpha=0.5)
    assert rows[1][3] > rows[0][3]  # near pairs grow with leaf size


def test_run_ordering_study_shape():
    headers, rows = run_ordering_study(n=1000, w=32, n_procs=4, alpha=0.5)
    names = [r[0] for r in rows]
    assert names == ["hilbert", "morton", "input", "random"]
    by = {r[0]: r for r in rows}
    assert by["hilbert"][1] < by["random"][1]  # block fetch volume
    assert by["hilbert"][2] <= by["random"][2]  # per-proc data volume


def test_run_fmm_extension_shape():
    # level >= 3 so there are coarse levels whose degree the schedule raises
    headers, rows = run_fmm_extension(n=1000, level=3, p0=3)
    assert [r[0] for r in rows] == ["fixed", "adaptive(c=1)", "adaptive(c=2)"]
    errs = [r[2] for r in rows]
    assert errs[2] < errs[0]
