"""Tests for the observability layer: tracing, metrics, recorder, and
the instrumentation wired through the compute layers."""

import json
import threading

import numpy as np
import pytest

from repro.bem.gmres import gmres
from repro.core.degree import FixedDegree
from repro.core.treecode import Treecode
from repro.obs import REGISTRY, RunRecorder, metrics, tracing
from repro.obs.tracing import span, stopwatch
from repro.parallel import evaluate_parallel


@pytest.fixture(autouse=True)
def clean_obs():
    """Every test starts and ends with observability off and empty."""
    tracing.disable()
    tracing.get_tracer().clear()
    REGISTRY.reset()
    yield
    tracing.disable()
    tracing.get_tracer().clear()
    REGISTRY.reset()


# ---------------------------------------------------------------------------
# tracing
# ---------------------------------------------------------------------------
def test_disabled_span_is_shared_singleton():
    """The disabled fast path allocates nothing: every span() call
    returns the same no-op object and records no events."""
    a = span("one")
    b = span("two", key="value")
    assert a is b
    with a:
        pass
    assert len(tracing.get_tracer()) == 0


def test_span_nesting_and_export_roundtrip(tmp_path):
    tracing.enable()
    with span("outer", level=1):
        with span("inner", level=2):
            pass
    tracer = tracing.get_tracer()
    events = {e["name"]: e for e in tracer.events()}
    assert set(events) == {"outer", "inner"}
    # nesting is interval containment within the same thread
    assert events["outer"]["tid"] == events["inner"]["tid"]
    assert events["outer"]["start"] <= events["inner"]["start"]
    assert events["inner"]["end"] <= events["outer"]["end"]
    assert events["inner"]["args"] == {"level": 2}

    path = tmp_path / "trace.json"
    tracer.export(str(path))
    loaded = json.loads(path.read_text())
    assert "traceEvents" in loaded
    by_name = {e["name"]: e for e in loaded["traceEvents"]}
    assert set(by_name) == {"outer", "inner"}
    for ev in loaded["traceEvents"]:
        assert ev["ph"] == "X"
        assert ev["dur"] >= 0
        assert {"ts", "pid", "tid", "cat", "args"} <= set(ev)
    # microsecond timestamps preserve the containment
    assert by_name["outer"]["ts"] <= by_name["inner"]["ts"]


def test_stopwatch_times_even_when_disabled():
    with stopwatch("timed") as sw:
        sum(range(1000))
    assert sw.elapsed > 0.0
    assert len(tracing.get_tracer()) == 0  # no event while disabled
    tracing.enable()
    with stopwatch("timed") as sw2:
        pass
    assert sw2.elapsed >= 0.0
    assert len(tracing.get_tracer()) == 1


def test_tracer_thread_safety():
    tracing.enable()
    barrier = threading.Barrier(4)  # keep all threads alive at once

    def worker(i):
        barrier.wait()
        for _ in range(50):
            with span("w", idx=i):
                pass

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    events = tracing.get_tracer().events()
    assert len(events) == 200
    assert len({e["tid"] for e in events}) == 4


def test_tracer_summary_aggregates():
    tracing.enable()
    for _ in range(3):
        with span("phase.a"):
            pass
    with span("phase.b"):
        pass
    summary = {row["name"]: row for row in tracing.get_tracer().summary()}
    assert summary["phase.a"]["count"] == 3
    assert summary["phase.b"]["count"] == 1


# ---------------------------------------------------------------------------
# metrics
# ---------------------------------------------------------------------------
def test_counter_gauge_basics():
    c = REGISTRY.counter("hits", "help text")
    c.inc()
    c.inc(4)
    assert c.value == 5
    with pytest.raises(ValueError):
        c.inc(-1)
    g = REGISTRY.gauge("depth")
    g.set(3.5)
    assert g.value == 3.5
    # get-or-create returns the same instrument
    assert REGISTRY.counter("hits") is c
    # a name cannot change kind
    with pytest.raises(TypeError):
        REGISTRY.gauge("hits")


def test_labeled_counter_text_exposition():
    by_deg = REGISTRY.counter("by_degree", "per-degree", labelnames=("degree",))
    by_deg.labels(degree=4).inc(10)
    by_deg.labels(degree=7).inc(2)
    with pytest.raises(ValueError):
        by_deg.inc()  # labeled family needs .labels()
    text = REGISTRY.render_text()
    assert '# TYPE by_degree counter' in text
    assert 'by_degree{degree="4"} 10' in text
    assert 'by_degree{degree="7"} 2' in text


def test_histogram_log_bucketing():
    h = REGISTRY.histogram("sizes", base=2.0)
    h.observe(1.0)  # -> bucket 2^0
    h.observe(3.0)  # -> bucket 2^2
    h.observe(4.0)  # -> bucket 2^2 (boundary is inclusive)
    h.observe(1000.0)  # -> bucket 2^10
    h.observe(0.0)  # -> the <=0 bucket
    bounds = dict(h.bucket_bounds())
    assert bounds[0.0] == 1
    assert bounds[1.0] == 1
    assert bounds[4.0] == 2
    assert bounds[1024.0] == 1
    assert h.count == 5
    assert h.sum == pytest.approx(1008.0)
    # values spanning many decades stay in sparse buckets
    h2 = REGISTRY.histogram("residuals", base=10.0)
    for r in [1.0, 1e-3, 1e-6, 1e-12]:
        h2.observe(r)
    assert h2.count == 4
    assert len(h2.bucket_bounds()) == 4


def test_histogram_text_is_cumulative():
    h = REGISTRY.histogram("blk", base=2.0)
    for v in [1, 2, 8]:
        h.observe(v)
    text = REGISTRY.render_text()
    assert 'blk_bucket{le="1"} 1' in text
    assert 'blk_bucket{le="2"} 2' in text
    assert 'blk_bucket{le="8"} 3' in text
    assert 'blk_bucket{le="+Inf"} 3' in text
    assert "blk_count 3" in text


def test_registry_json_roundtrip(tmp_path):
    REGISTRY.counter("c").inc(7)
    REGISTRY.gauge("g").set(2.5)
    REGISTRY.histogram("h").observe(5.0)
    path = tmp_path / "metrics.json"
    REGISTRY.export_json(str(path))
    loaded = json.loads(path.read_text())
    assert loaded["counters"]["c"] == 7
    assert loaded["gauges"]["g"] == 2.5
    assert loaded["histograms"]["h"]["count"] == 1


# ---------------------------------------------------------------------------
# instrumented compute layers
# ---------------------------------------------------------------------------
def test_treecode_evaluate_spans_and_counters_match_stats(rng):
    pts = rng.random((500, 3))
    q = rng.uniform(-1, 1, 500)
    rec = RunRecorder("unit")
    with rec:
        tc = Treecode(pts, q, degree_policy=FixedDegree(4), alpha=0.5)
        res = tc.evaluate(accumulate_bounds=True)
        rec.record_treecode("unit", res)
    names = {e["name"] for e in rec.report()["spans"]}
    assert {
        "treecode.build",
        "treecode.upward",
        "treecode.traverse",
        "treecode.eval",
        "treecode.far_field",
        "treecode.near_field",
    } <= names
    counters = rec.report()["metrics"]["counters"]
    s = res.stats
    assert counters["pc_interactions"] == s.n_pc_interactions
    assert counters["pp_pairs"] == s.n_pp_pairs
    assert counters["terms_evaluated"] == s.n_terms
    by_deg = counters["pc_interactions_by_degree"]["series"]
    assert {int(k): v for k, v in by_deg.items()} == s.interactions_by_degree
    # Theorem-1 accounting rides along per level
    tc_runs = rec.report()["treecode_runs"]
    assert tc_runs[0]["stats"]["bound_by_level"]
    assert sum(s.bound_by_level.values()) == pytest.approx(
        float(np.sum(res.error_bound))
    )


def test_parallel_executor_block_spans(rng):
    pts = rng.random((400, 3))
    q = rng.uniform(-1, 1, 400)
    tc = Treecode(pts, q, degree_policy=FixedDegree(3), alpha=0.5)
    tracing.enable()
    res = evaluate_parallel(tc, n_threads=2, w=64)
    events = tracing.get_tracer().events()
    blocks = [e for e in events if e["name"] == "parallel.block"]
    assert len(blocks) == res.n_blocks
    assert sum(e["args"]["targets"] for e in blocks) == 400
    h = REGISTRY.get("parallel_block_seconds")
    assert h is not None and h.count == res.n_blocks
    # counters aggregate across worker threads
    assert REGISTRY.get("pc_interactions").value == res.stats.n_pc_interactions


def test_gmres_residual_metrics_and_spans(rng):
    A = rng.random((30, 30)) + 15 * np.eye(30)
    b = rng.random(30)
    tracing.enable()
    res = gmres(lambda v: A @ v, b, restart=10, tol=1e-10)
    assert res.converged
    assert REGISTRY.get("gmres_iterations").value == res.n_iterations
    assert REGISTRY.get("gmres_residual").value == pytest.approx(res.history[-1])
    hist = REGISTRY.get("gmres_residual_hist")
    assert hist.count == res.n_iterations
    names = [e["name"] for e in tracing.get_tracer().events()]
    assert "gmres.cycle" in names
    assert names.count("gmres.matvec") >= res.n_iterations


def test_recorder_restores_prior_state_and_saves(tmp_path, rng):
    assert not tracing.is_enabled()
    rec = RunRecorder("demo")
    with rec:
        assert tracing.is_enabled()
        with span("only.inside"):
            pass
        rec.record("note", {"k": 1})
    assert not tracing.is_enabled()
    # spans emitted after the block don't leak into the snapshot
    tracing.enable()
    with span("after"):
        pass
    report = rec.report()
    assert [e["name"] for e in report["spans"]] == ["only.inside"]
    assert report["extra"] == {"note": {"k": 1}}
    assert report["wall_time"] > 0
    path = tmp_path / "report.json"
    rec.save(str(path))
    assert json.loads(path.read_text())["name"] == "demo"


def test_recorder_gmres_history(rng):
    A = rng.random((20, 20)) + 10 * np.eye(20)
    b = rng.random(20)
    rec = RunRecorder("solve")
    with rec:
        res = gmres(lambda v: A @ v, b, tol=1e-10)
        rec.record_gmres("solve", res)
    run = rec.report()["gmres_runs"][0]
    assert run["converged"]
    assert run["history"] == res.history
    assert run["n_iterations"] == res.n_iterations


def test_recorder_write_outputs(tmp_path, rng):
    pts = rng.random((200, 3))
    rec = RunRecorder("out")
    with rec:
        tc = Treecode(pts, np.ones(200), degree_policy=FixedDegree(3), alpha=0.5)
        tc.evaluate()
    trace_path = tmp_path / "t.json"
    metrics_path = tmp_path / "m.txt"
    rec.write_trace(str(trace_path))
    rec.write_metrics(str(metrics_path))
    assert json.loads(trace_path.read_text())["traceEvents"]
    text = metrics_path.read_text()
    assert "pc_interactions" in text
    json_path = tmp_path / "m.json"
    rec.write_metrics(str(json_path), fmt="json")
    assert "counters" in json.loads(json_path.read_text())


def test_disabled_run_records_nothing(rng):
    pts = rng.random((300, 3))
    tc = Treecode(pts, np.ones(300), degree_policy=FixedDegree(3), alpha=0.5)
    tc.evaluate()
    assert len(tracing.get_tracer()) == 0
    assert REGISTRY.names() == []
    # stats timing still works without observability
    assert tc.base_stats.build_time > 0
