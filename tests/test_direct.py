"""Tests for the direct O(n²) reference solver."""

import numpy as np
import pytest

from repro.direct import direct_gradient, direct_potential, pairwise_potential


def brute_potential(pts, q):
    n = len(q)
    out = np.zeros(n)
    for i in range(n):
        for j in range(n):
            if i != j:
                out[i] += q[j] / np.linalg.norm(pts[i] - pts[j])
    return out


def test_matches_bruteforce(rng):
    pts = rng.random((40, 3))
    q = rng.uniform(-1, 1, 40)
    assert np.allclose(direct_potential(pts, q), brute_potential(pts, q), rtol=1e-12)


def test_chunking_consistency(rng):
    """Results must not depend on the chunk size."""
    import repro.direct as d

    pts = rng.random((500, 3))
    q = rng.uniform(-1, 1, 500)
    full = direct_potential(pts, q)
    old = d._CHUNK_BUDGET
    try:
        d._CHUNK_BUDGET = 1000  # force many tiny chunks
        small = direct_potential(pts, q)
    finally:
        d._CHUNK_BUDGET = old
    # reduction blocking may differ at the ULP level between chunk shapes
    assert np.allclose(full, small, rtol=1e-13, atol=1e-13)


def test_external_targets(rng):
    pts = rng.random((100, 3))
    q = rng.uniform(-1, 1, 100)
    tgt = rng.random((20, 3)) + 5.0
    out = direct_potential(pts, q, targets=tgt)
    expected = np.array([np.sum(q / np.linalg.norm(t - pts, axis=1)) for t in tgt])
    assert np.allclose(out, expected, rtol=1e-12)


def test_gradient_matches_finite_difference(rng):
    pts = rng.random((60, 3))
    q = rng.uniform(-1, 1, 60)
    tgt = rng.random((10, 3)) + 2.0
    g = direct_gradient(pts, q, targets=tgt)
    h = 1e-6
    for i in range(3):
        e = np.zeros(3)
        e[i] = h
        fd = (
            direct_potential(pts, q, targets=tgt + e)
            - direct_potential(pts, q, targets=tgt - e)
        ) / (2 * h)
        assert np.allclose(g[:, i], fd, rtol=1e-5, atol=1e-8)


def test_self_gradient_excludes_self(rng):
    pts = rng.random((30, 3))
    q = rng.uniform(0.5, 1, 30)
    g = direct_gradient(pts, q)
    assert np.all(np.isfinite(g))


def test_pairwise_exclude(rng):
    pts = rng.random((10, 3))
    q = rng.uniform(0.5, 1, 10)
    # excluding source j for target i removes exactly q_j/r_ij
    full = pairwise_potential(pts[:3], pts, q)
    excl2 = pairwise_potential(pts[:3], pts, q, exclude=np.array([5, 6, -1]))
    assert excl2[0] == pytest.approx(full[0] - q[5] / np.linalg.norm(pts[0] - pts[5]))
    assert excl2[1] == pytest.approx(full[1] - q[6] / np.linalg.norm(pts[1] - pts[6]))
    assert excl2[2] == pytest.approx(full[2])


def test_coincident_points_masked():
    pts = np.array([[0.0, 0.0, 0.0], [0.0, 0.0, 0.0], [1.0, 0.0, 0.0]])
    q = np.array([1.0, 2.0, 3.0])
    out = direct_potential(pts, q)
    # coincident pair contributes nothing to each other
    assert out[0] == pytest.approx(3.0)
    assert out[1] == pytest.approx(3.0)
    assert out[2] == pytest.approx(3.0)


def test_symmetry_energy(rng):
    """Total interaction energy sum q_i phi_i is symmetric: equals
    2 * sum_{i<j} q_i q_j / r_ij."""
    pts = rng.random((50, 3))
    q = rng.uniform(-1, 1, 50)
    phi = direct_potential(pts, q)
    e1 = float(q @ phi)
    e2 = 0.0
    for i in range(50):
        for j in range(i + 1, 50):
            e2 += 2 * q[i] * q[j] / np.linalg.norm(pts[i] - pts[j])
    assert e1 == pytest.approx(e2, rel=1e-10)
