"""Tests for TreecodeStats accounting and merging."""

import numpy as np
import pytest

from repro.core.treecode import Treecode, TreecodeStats
from repro.core.degree import FixedDegree


def test_merge_accumulates():
    a = TreecodeStats(
        n_targets=10,
        n_pc_interactions=5,
        n_pp_pairs=3,
        n_terms=125,
        interactions_by_degree={4: 5},
        interactions_by_level={2: 5},
        bound_by_level={2: 1.5},
        build_time=1.0,
        upward_time=0.5,
        traverse_time=0.1,
        eval_time=0.2,
    )
    b = TreecodeStats(
        n_targets=7,
        n_pc_interactions=2,
        n_pp_pairs=1,
        n_terms=50,
        interactions_by_degree={4: 1, 6: 1},
        interactions_by_level={3: 2},
        bound_by_level={2: 0.5, 3: 2.0},
        build_time=0.25,
        upward_time=0.25,
        traverse_time=0.05,
        eval_time=0.05,
    )
    a.merge(b)
    assert a.n_targets == 17
    assert a.n_pc_interactions == 7
    assert a.n_pp_pairs == 4
    assert a.n_terms == 175
    assert a.interactions_by_degree == {4: 6, 6: 1}
    assert a.interactions_by_level == {2: 5, 3: 2}
    assert a.bound_by_level == {2: pytest.approx(2.0), 3: pytest.approx(2.0)}
    assert a.traverse_time == pytest.approx(0.15)
    assert a.build_time == pytest.approx(1.25)
    assert a.upward_time == pytest.approx(0.75)


def test_merge_preserves_total_time():
    """Regression: merge used to drop build/upward, under-reporting
    total_time for merged multi-batch stats."""
    a = TreecodeStats(build_time=1.0, upward_time=1.0, traverse_time=1.0, eval_time=1.0)
    b = TreecodeStats(build_time=2.0, upward_time=2.0, traverse_time=2.0, eval_time=2.0)
    a.merge(b)
    assert a.total_time == pytest.approx(12.0)


def test_total_time_property():
    s = TreecodeStats(build_time=1.0, upward_time=2.0, traverse_time=3.0, eval_time=4.0)
    assert s.total_time == pytest.approx(10.0)


def test_term_accounting_matches_per_degree(rng):
    """n_terms must equal the sum over degrees of count*(p+1)^2."""
    pts = rng.random((600, 3))
    q = rng.uniform(-1, 1, 600)
    tc = Treecode(pts, q, alpha=0.5)  # default adaptive policy
    s = tc.evaluate().stats
    recomputed = sum(c * (p + 1) ** 2 for p, c in s.interactions_by_degree.items())
    assert s.n_terms == recomputed


def test_base_stats_times_populated(rng):
    pts = rng.random((300, 3))
    tc = Treecode(pts, np.ones(300), degree_policy=FixedDegree(4))
    assert tc.base_stats.build_time > 0
    assert tc.base_stats.upward_time > 0


def test_external_vs_self_target_counts(rng):
    """Self-evaluation excludes exactly n self-pairs relative to
    evaluating the same points as external targets."""
    pts = rng.random((400, 3))
    q = rng.uniform(0.5, 1.5, 400)
    tc = Treecode(pts, q, degree_policy=FixedDegree(4), alpha=0.5)
    s_self = tc.evaluate().stats
    s_ext = tc.evaluate(targets=pts).stats
    assert s_ext.n_pp_pairs == s_self.n_pp_pairs + 400
    assert s_ext.n_pc_interactions == s_self.n_pc_interactions
