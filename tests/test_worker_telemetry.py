"""Cross-process telemetry: worker snapshot/merge, per-event pids in
Chrome traces, and serial/process counter agreement under fault load."""

import json
import os

import numpy as np
import pytest

from repro.core.degree import FixedDegree
from repro.core.treecode import Treecode
from repro.data.distributions import make_distribution, unit_charges
from repro.obs import REGISTRY, tracing
from repro.obs.metrics import MetricsRegistry, bucket_quantiles
from repro.obs.tracing import span
from repro.parallel import evaluate_plan_parallel
from repro.robust import FaultInjector, parse_fault_spec, set_injector


@pytest.fixture(autouse=True)
def clean_obs():
    tracing.disable()
    tracing.get_tracer().clear()
    REGISTRY.reset()
    set_injector(None)
    yield
    tracing.disable()
    tracing.get_tracer().clear()
    REGISTRY.reset()
    set_injector(None)


# ---------------------------------------------------------------------------
# tracer snapshot / ingest
# ---------------------------------------------------------------------------
def test_snapshot_roundtrip_preserves_pid_and_times():
    tracing.enable()
    with span("work", unit=3):
        pass
    snap = tracing.get_tracer().snapshot()
    assert len(snap) == 1
    name, cat, pid, tid, t0, t1, args = snap[0]
    assert name == "work" and pid == os.getpid() and t1 >= t0
    assert args == {"unit": 3}
    json.dumps(snap)  # picklable/serializable payload shape

    # ingest into a cleared tracer under a fake worker pid
    tracing.get_tracer().clear()
    fake = list(snap[0])
    fake[2] = 99999
    tracing.get_tracer().ingest([fake])
    events = tracing.get_tracer().events()
    assert events[0]["pid"] == 99999
    assert events[0]["name"] == "work"


def test_chrome_trace_uses_per_event_pid():
    tracing.enable()
    with span("parent_side"):
        pass
    snap = tracing.get_tracer().snapshot()
    fake = list(snap[0])
    fake[0], fake[2] = "worker_side", 4242
    tracing.get_tracer().ingest([fake])
    chrome = tracing.get_tracer().to_chrome_trace()
    by_name = {e["name"]: e for e in chrome["traceEvents"]}
    assert by_name["parent_side"]["pid"] == os.getpid()
    assert by_name["worker_side"]["pid"] == 4242
    for ev in chrome["traceEvents"]:
        assert ev["ph"] == "X"
        assert {"pid", "tid", "ts", "dur"} <= set(ev)


# ---------------------------------------------------------------------------
# registry merge semantics
# ---------------------------------------------------------------------------
def test_merge_snapshot_counters_gauges_histograms():
    worker = MetricsRegistry()
    worker.counter("pc_interactions").inc(100)
    worker.counter("by_degree", labelnames=("degree",)).labels(degree=4).inc(7)
    worker.gauge("tree_height").set(9)
    h = worker.histogram("block_seconds")
    h.observe(0.5)
    h.observe(3.0)

    parent = MetricsRegistry()
    parent.counter("pc_interactions").inc(11)
    parent.gauge("tree_height").set(2)
    parent.histogram("block_seconds").observe(0.5)

    parent.merge_snapshot(worker.to_dict())
    assert parent.counter("pc_interactions").value == 111  # counters sum
    assert parent.gauge("tree_height").value == 9  # last write wins
    assert (
        parent.counter("by_degree", labelnames=("degree",))
        .labels(degree=4)
        .value
        == 7
    )
    merged = parent.histogram("block_seconds")
    assert merged.count == 3  # bucket-wise merge
    assert merged.sum == pytest.approx(4.0)
    bounds = dict(merged.bucket_bounds())
    assert bounds[0.5] == 2  # both 0.5s observations share a bucket
    assert bounds[4.0] == 1


def test_merge_snapshot_is_associative_with_empty():
    parent = MetricsRegistry()
    parent.merge_snapshot(MetricsRegistry().to_dict())
    assert parent.to_dict() == {"counters": {}, "gauges": {}, "histograms": {}}


# ---------------------------------------------------------------------------
# histogram quantiles
# ---------------------------------------------------------------------------
def test_bucket_quantiles_basic():
    reg = MetricsRegistry()
    h = reg.histogram("h")
    for _ in range(90):
        h.observe(1.0)
    for _ in range(10):
        h.observe(100.0)
    # p50 sits in the value-1 bucket, p99 in the value-100 bucket
    assert h.quantile(0.5) <= 1.0 + 1e-12
    assert h.quantile(0.99) > 64.0
    snap = h._json()
    assert snap["p50"] == h.quantile(0.5)
    assert snap["p95"] is not None and snap["p99"] is not None


def test_bucket_quantiles_empty_and_zero():
    assert bucket_quantiles([], 0)[0.5] is None
    qs = bucket_quantiles([(0.0, 10)], 10, (0.5,))
    assert qs[0.5] == 0.0


# ---------------------------------------------------------------------------
# end to end: process backend == serial backend, with worker pids
# ---------------------------------------------------------------------------
def _run_plan(plan, q, backend, n_workers):
    """One observed evaluate_plan_parallel run; returns (potential,
    counters, distinct span pids)."""
    tracing.get_tracer().clear()
    REGISTRY.reset()
    tracing.enable()
    # fresh injector per run: identical deterministic draw streams.
    # seed 4 makes draw #0 of the block_error stream fire at rate 0.2,
    # so every worker's first unit attempt faults and retries — the
    # recovery telemetry is guaranteed to flow through the merge
    set_injector(FaultInjector(parse_fault_spec("block_error:0.2"), seed=4))
    res = evaluate_plan_parallel(
        plan,
        q,
        n_threads=n_workers,
        backend="thread" if backend == "serial" else backend,
    )
    set_injector(None)
    counters = {
        k: v
        for k, v in REGISTRY.to_dict()["counters"].items()
        if not isinstance(v, dict)
    }
    pids = {e["pid"] for e in tracing.get_tracer().events()}
    chrome = tracing.get_tracer().to_chrome_trace()
    tracing.disable()
    return res.potential, counters, pids, chrome


@pytest.mark.skipif(os.name != "posix", reason="fork-based process pool")
def test_process_backend_matches_serial_under_faults(tmp_path):
    n = 400
    pts = make_distribution("uniform", n, seed=5)
    q = unit_charges(n, seed=6, signed=True)
    q2 = unit_charges(n, seed=7, signed=True)
    tc = Treecode(pts, q, degree_policy=FixedDegree(3), alpha=0.5)
    plan = tc.compile_plan(n_units=6)

    phi_s, counters_s, pids_s, _ = _run_plan(plan, q2, "serial", 1)
    phi_p, counters_p, pids_p, chrome = _run_plan(plan, q2, "process", 2)

    # bitwise-identical result despite retries and a different backend
    np.testing.assert_array_equal(phi_s, phi_p)

    # deterministic work counters agree exactly (fault recovery rereuns
    # identical arithmetic; plan accounting is frozen at compile time)
    for name in ("pc_interactions", "pp_pairs", "terms_evaluated"):
        assert counters_p[name] == counters_s[name], name

    # the armed injector fired and the worker-side recovery telemetry
    # made it back through the snapshot merge
    assert counters_s.get("faults_injected", 0) > 0
    assert counters_p.get("faults_injected", 0) > 0
    assert counters_p.get("block_retries", 0) > 0
    assert counters_p["worker_snapshots_merged"] > 0

    # spans from the workers carry their true pids
    assert pids_s == {os.getpid()}
    assert len(pids_p) > 1 and os.getpid() in pids_p

    # exported Chrome trace is valid and keeps the worker pids distinct
    path = tmp_path / "trace.json"
    path.write_text(json.dumps(chrome))
    loaded = json.loads(path.read_text())
    trace_pids = set()
    for ev in loaded["traceEvents"]:
        assert ev["ph"] == "X"
        assert {"pid", "tid", "ts", "dur", "name"} <= set(ev)
        trace_pids.add(ev["pid"])
    assert len(trace_pids) > 1
    worker_blocks = [
        e
        for e in loaded["traceEvents"]
        if e["name"] == "parallel.block" and e["pid"] != os.getpid()
    ]
    assert worker_blocks, "worker-side unit spans missing from the trace"
