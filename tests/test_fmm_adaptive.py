"""Tests for the charge-driven FMM degree schedule."""

import numpy as np
import pytest

from repro.data.distributions import uniform_cube, unit_charges
from repro.direct import direct_potential
from repro.fmm import UniformFMM


def test_adaptive_degrees_from_charges():
    pts = uniform_cube(2000, seed=0)
    q = unit_charges(2000)
    fmm = UniformFMM(pts, q, level=3, degrees=4)
    degs = fmm.adaptive_degrees(p0=4, alpha=0.5)
    assert len(degs) == 4
    assert degs[-1] == 4  # leaf anchor
    # coarser levels aggregate ~8x charge per level: degrees increase
    assert all(a >= b for a, b in zip(degs, degs[1:]))
    assert degs[0] > degs[-1]


def test_adaptive_degrees_scale_invariant():
    """Rescaling all charges must not change the schedule (ratios only)."""
    pts = uniform_cube(1500, seed=1)
    q = unit_charges(1500)
    f1 = UniformFMM(pts, q, level=3, degrees=4)
    f2 = UniformFMM(pts, 100.0 * q, level=3, degrees=4)
    assert f1.adaptive_degrees(4, 0.5) == f2.adaptive_degrees(4, 0.5)


def test_adaptive_degrees_improve_error():
    pts = uniform_cube(1500, seed=2)
    q = unit_charges(1500, seed=3, signed=True)
    ref = direct_potential(pts, q)
    base = UniformFMM(pts, q, level=3, degrees=4)
    e_fixed = np.linalg.norm(base.evaluate() - ref) / np.linalg.norm(ref)
    degs = base.adaptive_degrees(p0=4, alpha=0.5)
    tuned = UniformFMM(pts, q, level=3, degrees=degs)
    e_adaptive = np.linalg.norm(tuned.evaluate() - ref) / np.linalg.norm(ref)
    assert e_adaptive < e_fixed


def test_adaptive_degrees_p_max_cap():
    pts = uniform_cube(1000, seed=4)
    fmm = UniformFMM(pts, np.ones(1000), level=3, degrees=4)
    degs = fmm.adaptive_degrees(p0=4, alpha=0.7, p_max=6)
    assert max(degs) <= 6


def test_adaptive_degrees_validation():
    pts = uniform_cube(500, seed=5)
    fmm = UniformFMM(pts, np.ones(500), level=2, degrees=4)
    with pytest.raises(ValueError):
        fmm.adaptive_degrees(-1)
    with pytest.raises(ValueError):
        fmm.adaptive_degrees(4, alpha=1.5)
