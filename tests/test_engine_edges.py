"""Edge-case and robustness tests for the treecode engine."""

import numpy as np
import pytest

from repro import AdaptiveChargeDegree, FixedDegree, Treecode, direct_potential


def test_two_particles():
    pts = np.array([[0.0, 0.0, 0.0], [1.0, 1.0, 1.0]])
    q = np.array([2.0, -3.0])
    res = Treecode(pts, q, degree_policy=FixedDegree(2)).evaluate()
    d = np.sqrt(3.0)
    assert res.potential[0] == pytest.approx(-3.0 / d)
    assert res.potential[1] == pytest.approx(2.0 / d)


def test_all_zero_charges(rng):
    pts = rng.random((200, 3))
    res = Treecode(pts, np.zeros(200), degree_policy=FixedDegree(4)).evaluate()
    assert np.allclose(res.potential, 0.0)


def test_mixed_sign_cancellation(rng):
    """A dipole-dominated system: net charge ~0 but potentials finite."""
    n = 300
    pts = rng.random((n, 3))
    q = np.where(pts[:, 0] > 0.5, 1.0, -1.0)
    ref = direct_potential(pts, q)
    res = Treecode(pts, q, degree_policy=FixedDegree(7), alpha=0.4).evaluate()
    assert np.linalg.norm(res.potential - ref) / np.linalg.norm(ref) < 1e-4


def test_highly_anisotropic_cloud(rng):
    """A thin filament (BEM-like geometry) — deep adaptive tree."""
    n = 500
    pts = np.stack(
        [rng.random(n), rng.random(n) * 1e-3, rng.random(n) * 1e-3], axis=1
    )
    q = rng.uniform(0.5, 1.5, n)
    ref = direct_potential(pts, q)
    tc = Treecode(pts, q, degree_policy=AdaptiveChargeDegree(p0=4, alpha=0.4), alpha=0.4)
    res = tc.evaluate()
    assert np.linalg.norm(res.potential - ref) / np.linalg.norm(ref) < 1e-3


def test_huge_charge_outlier(rng):
    """One charge 10^6 times the others must not break the bound or the
    degree schedule."""
    n = 300
    pts = rng.random((n, 3))
    q = np.ones(n)
    q[0] = 1e6
    ref = direct_potential(pts, q)
    tc = Treecode(pts, q, degree_policy=AdaptiveChargeDegree(p0=4, alpha=0.4), alpha=0.4)
    res = tc.evaluate(accumulate_bounds=True)
    assert np.all(np.abs(res.potential - ref) <= res.error_bound + 1e-9 * np.abs(ref))
    assert np.linalg.norm(res.potential - ref) / np.linalg.norm(ref) < 1e-3


def test_distant_target_is_monopole(rng):
    """A target 1000 box-lengths away sees essentially the net charge."""
    pts = rng.random((200, 3))
    q = rng.uniform(0.5, 1.5, 200)
    tgt = np.array([[1000.0, 0.0, 0.0]])
    tc = Treecode(pts, q, degree_policy=FixedDegree(3), alpha=0.5)
    res = tc.evaluate(targets=tgt)
    r = np.linalg.norm(tgt[0] - pts.mean(axis=0))
    assert res.potential[0] == pytest.approx(q.sum() / r, rel=1e-3)
    # and the whole tree collapses into very few interactions
    assert res.stats.n_pc_interactions <= 8


def test_target_exactly_on_particle(rng):
    """An external target coinciding with a source: the coincident pair
    contributes nothing, everything else is summed."""
    pts = rng.random((100, 3))
    q = rng.uniform(0.5, 1.5, 100)
    tgt = pts[:1].copy()
    res = Treecode(pts, q, degree_policy=FixedDegree(6), alpha=0.4).evaluate(targets=tgt)
    expected = direct_potential(pts, q)[0]
    assert res.potential[0] == pytest.approx(expected, rel=1e-4)


def test_leaf_size_one(rng):
    pts = rng.random((150, 3))
    q = rng.uniform(-1, 1, 150)
    ref = direct_potential(pts, q)
    tc = Treecode(pts, q, degree_policy=FixedDegree(6), alpha=0.4, leaf_size=1)
    res = tc.evaluate()
    assert np.linalg.norm(res.potential - ref) / np.linalg.norm(ref) < 1e-3
    leaves = tc.tree.leaf_ids()
    assert (tc.tree.end[leaves] - tc.tree.start[leaves]).max() == 1


def test_alpha_extremes(rng):
    pts = rng.random((200, 3))
    q = rng.uniform(0.5, 1.5, 200)
    ref = direct_potential(pts, q)
    # near-direct regime: alpha so small almost nothing is accepted
    tc = Treecode(pts, q, degree_policy=FixedDegree(2), alpha=0.05)
    res = tc.evaluate()
    assert np.linalg.norm(res.potential - ref) / np.linalg.norm(ref) < 1e-6
    assert res.stats.n_pp_pairs > 0.5 * 200 * 199
    # loose regime still respects its bound
    tc2 = Treecode(pts, q, degree_policy=FixedDegree(2), alpha=0.95)
    res2 = tc2.evaluate(accumulate_bounds=True)
    assert np.all(np.abs(res2.potential - ref) <= res2.error_bound + 1e-12)


def test_empty_far_field_lists(rng):
    """With alpha tiny and a shallow tree, the far list can be empty —
    the engine must handle zero accepted interactions."""
    pts = rng.random((30, 3))
    q = np.ones(30)
    tc = Treecode(pts, q, degree_policy=FixedDegree(3), alpha=0.01, leaf_size=32)
    res = tc.evaluate()
    assert res.stats.n_pc_interactions == 0
    ref = direct_potential(pts, q)
    assert np.allclose(res.potential, ref, rtol=1e-12)
