"""Shared fixtures for the test suite."""

import threading

import numpy as np
import pytest


def pytest_sessionfinish(session, exitstatus):
    """No test may leak a *non-daemon* thread past the session.

    Deadline-abandoned retry attempts deliberately leave daemon threads
    behind (tracked by ``repro.robust.retry.abandoned_threads``); those
    cannot block interpreter exit.  A leaked non-daemon thread would —
    so its presence here is a bug, not noise.
    """
    main = threading.main_thread()
    leaked = [
        t
        for t in threading.enumerate()
        if t is not main and t.is_alive() and not t.daemon
    ]
    if leaked:
        names = ", ".join(t.name for t in leaked)
        raise pytest.UsageError(
            f"non-daemon thread(s) leaked past the test session: {names}"
        )


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def small_cloud(rng):
    """A small random particle cloud with mixed-sign charges."""
    pts = rng.random((300, 3))
    q = rng.uniform(-1.0, 1.0, 300)
    return pts, q


@pytest.fixture
def positive_cloud(rng):
    """A small cloud with strictly positive charges (uniform density)."""
    pts = rng.random((400, 3))
    q = rng.uniform(0.5, 1.5, 400)
    return pts, q
