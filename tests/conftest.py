"""Shared fixtures for the test suite."""

import numpy as np
import pytest


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def small_cloud(rng):
    """A small random particle cloud with mixed-sign charges."""
    pts = rng.random((300, 3))
    q = rng.uniform(-1.0, 1.0, 300)
    return pts, q


@pytest.fixture
def positive_cloud(rng):
    """A small cloud with strictly positive charges (uniform density)."""
    pts = rng.random((400, 3))
    q = rng.uniform(0.5, 1.5, 400)
    return pts, q
