"""Tests for spherical harmonics, packing, and power tables."""

import numpy as np
import pytest
from scipy.special import sph_harm_y

from repro.multipole.harmonics import (
    cart_to_sph,
    coef_index,
    degree_of_index,
    ncoef,
    norm_table,
    power_table,
    sph_harmonics,
    term_count,
)


def test_ncoef_and_index():
    assert ncoef(0) == 1
    assert ncoef(1) == 3
    assert ncoef(4) == 15
    idx = 0
    for n in range(6):
        for m in range(n + 1):
            assert coef_index(n, m) == idx
            idx += 1
    with pytest.raises(ValueError):
        coef_index(2, 3)
    with pytest.raises(ValueError):
        ncoef(-1)


def test_term_count():
    assert term_count(0) == 1
    assert term_count(4) == 25
    with pytest.raises(ValueError):
        term_count(-2)


def test_degree_of_index_consistency():
    ns, ms = degree_of_index(7)
    assert len(ns) == ncoef(7)
    for i, (n, m) in enumerate(zip(ns, ms)):
        assert coef_index(int(n), int(m)) == i


def test_against_scipy_sph_harm():
    """Our Y_n^m = sqrt((n-m)!/(n+m)!) P_n^m e^{imφ} (no Condon-Shortley)
    relates to scipy's orthonormal Y via
    scipy = (-1)^m sqrt((2n+1)/(4π)) * ours."""
    rng = np.random.default_rng(0)
    theta = rng.uniform(0.1, np.pi - 0.1, 20)
    phi = rng.uniform(-np.pi, np.pi, 20)
    p = 8
    Y = sph_harmonics(np.cos(theta), phi, p)
    for n in range(p + 1):
        for m in range(n + 1):
            ours = Y[:, coef_index(n, m)]
            ref = sph_harm_y(n, m, theta, phi)
            factor = (-1.0) ** m * np.sqrt((2 * n + 1) / (4 * np.pi))
            assert np.allclose(factor * ours, ref, rtol=1e-10, atol=1e-12), (n, m)


def test_addition_theorem_legendre():
    """sum_m Y_n^{-m}(u) Y_n^m(v) = P_n(cos γ) with our normalization."""
    rng = np.random.default_rng(1)
    u = rng.normal(size=3)
    v = rng.normal(size=3)
    cosg = u @ v / (np.linalg.norm(u) * np.linalg.norm(v))
    _, ctu, phu = cart_to_sph(u[None, :])
    _, ctv, phv = cart_to_sph(v[None, :])
    p = 6
    Yu = sph_harmonics(ctu, phu, p)[0]
    Yv = sph_harmonics(ctv, phv, p)[0]
    from scipy.special import eval_legendre

    for n in range(p + 1):
        s = Yu[coef_index(n, 0)].conj() * Yv[coef_index(n, 0)]
        for m in range(1, n + 1):
            s += 2 * np.real(np.conj(Yu[coef_index(n, m)]) * Yv[coef_index(n, m)])
        assert np.real(s) == pytest.approx(eval_legendre(n, cosg), rel=1e-10, abs=1e-12)


def test_cart_to_sph_roundtrip():
    rng = np.random.default_rng(2)
    xyz = rng.normal(size=(50, 3))
    r, ct, phi = cart_to_sph(xyz)
    st = np.sqrt(1 - ct**2)
    back = np.stack([r * st * np.cos(phi), r * st * np.sin(phi), r * ct], axis=1)
    assert np.allclose(back, xyz, rtol=1e-12, atol=1e-12)


def test_cart_to_sph_origin():
    r, ct, phi = cart_to_sph(np.zeros((1, 3)))
    assert r[0] == 0.0
    assert np.isfinite(ct[0]) and np.isfinite(phi[0])


def test_norm_table_values():
    from math import factorial

    nt = norm_table(6)
    for n in range(7):
        for m in range(n + 1):
            expected = np.sqrt(factorial(n - m) / factorial(n + m))
            assert nt[coef_index(n, m)] == pytest.approx(expected, rel=1e-12)


def test_power_table():
    x = np.array([0.5, 2.0, -1.5])
    pt = power_table(x, 6)
    for k in range(7):
        assert np.allclose(pt[:, k], x**k)
    # degree 0 edge case
    assert np.allclose(power_table(x, 0), np.ones((3, 1)))
