"""Tests for the Barnes-Hut treecode engine."""

import numpy as np
import pytest

from repro.core.degree import AdaptiveChargeDegree, FixedDegree, LevelDegree
from repro.core.treecode import Treecode
from repro.direct import direct_gradient, direct_potential


def rel_err(a, b):
    return np.linalg.norm(a - b) / np.linalg.norm(b)


def test_potential_accuracy(small_cloud):
    pts, q = small_cloud
    ref = direct_potential(pts, q)
    tc = Treecode(pts, q, degree_policy=FixedDegree(6), alpha=0.5)
    res = tc.evaluate()
    assert rel_err(res.potential, ref) < 1e-3


def test_error_decreases_with_degree(small_cloud):
    pts, q = small_cloud
    ref = direct_potential(pts, q)
    errs = [
        rel_err(Treecode(pts, q, degree_policy=FixedDegree(p), alpha=0.5).evaluate().potential, ref)
        for p in (1, 3, 6, 9)
    ]
    assert errs[0] > errs[1] > errs[2] > errs[3]


def test_error_decreases_with_alpha(small_cloud):
    pts, q = small_cloud
    ref = direct_potential(pts, q)
    errs = [
        rel_err(Treecode(pts, q, degree_policy=FixedDegree(4), alpha=a).evaluate().potential, ref)
        for a in (0.8, 0.5, 0.3)
    ]
    assert errs[0] > errs[1] > errs[2]


def test_adaptive_beats_fixed_at_same_p0(positive_cloud):
    pts, q = positive_cloud
    ref = direct_potential(pts, q)
    e_fix = rel_err(
        Treecode(pts, q, degree_policy=FixedDegree(4), alpha=0.5).evaluate().potential, ref
    )
    e_ada = rel_err(
        Treecode(pts, q, degree_policy=AdaptiveChargeDegree(p0=4, alpha=0.5), alpha=0.5)
        .evaluate()
        .potential,
        ref,
    )
    assert e_ada < e_fix


def test_error_bound_is_rigorous(small_cloud):
    """The accumulated Theorem-1 bound must dominate the observed error
    at every single target."""
    pts, q = small_cloud
    ref = direct_potential(pts, q)
    for policy in (FixedDegree(3), AdaptiveChargeDegree(p0=3, alpha=0.5)):
        tc = Treecode(pts, q, degree_policy=policy, alpha=0.5)
        res = tc.evaluate(accumulate_bounds=True)
        assert np.all(np.abs(res.potential - ref) <= res.error_bound + 1e-12)


def test_upward_modes_agree(small_cloud):
    pts, q = small_cloud
    r_m2m = Treecode(pts, q, degree_policy=AdaptiveChargeDegree(p0=4), upward="m2m").evaluate()
    r_p2m = Treecode(pts, q, degree_policy=AdaptiveChargeDegree(p0=4), upward="p2m").evaluate()
    assert np.allclose(r_m2m.potential, r_p2m.potential, rtol=1e-9, atol=1e-11)


def test_external_targets(positive_cloud, rng):
    pts, q = positive_cloud
    tgt = rng.random((50, 3)) * 0.5 + 2.0  # outside the cloud
    tc = Treecode(pts, q, degree_policy=FixedDegree(7), alpha=0.3)
    res = tc.evaluate(targets=tgt)
    ref = direct_potential(pts, q, targets=tgt)
    assert rel_err(res.potential, ref) < 1e-6


def test_gradient_evaluation(small_cloud):
    pts, q = small_cloud
    tc = Treecode(pts, q, degree_policy=FixedDegree(7), alpha=0.4)
    res = tc.evaluate(compute="both")
    ref = direct_gradient(pts, q)
    assert res.gradient is not None
    assert rel_err(res.gradient, ref) < 1e-4


def test_stats_accounting(small_cloud):
    pts, q = small_cloud
    tc = Treecode(pts, q, degree_policy=FixedDegree(4), alpha=0.5)
    res = tc.evaluate()
    s = res.stats
    assert s.n_targets == len(q)
    assert s.n_pc_interactions > 0
    assert s.n_pp_pairs > 0
    # terms = interactions * (p+1)^2 for a fixed-degree run
    assert s.n_terms == s.n_pc_interactions * 25
    assert sum(s.interactions_by_degree.values()) == s.n_pc_interactions
    assert sum(s.interactions_by_level.values()) == s.n_pc_interactions


def test_adaptive_uses_larger_degrees_up_the_tree(positive_cloud):
    pts, q = positive_cloud
    tc = Treecode(pts, q, degree_policy=AdaptiveChargeDegree(p0=4, alpha=0.5), alpha=0.5)
    res = tc.evaluate()
    degrees = sorted(res.stats.interactions_by_degree)
    assert len(degrees) > 1  # more than one degree actually used
    assert degrees[0] == 4


def test_results_in_original_order(rng):
    """Output must not be in Morton order."""
    pts = rng.random((200, 3))
    q = rng.uniform(0.5, 1, 200)
    ref = direct_potential(pts, q)
    res = Treecode(pts, q, degree_policy=FixedDegree(8), alpha=0.4).evaluate()
    # per-particle agreement only holds if the ordering matches
    assert np.allclose(res.potential, ref, rtol=1e-4)


def test_set_charges_consistency(small_cloud, rng):
    pts, q = small_cloud
    tc = Treecode(pts, q, degree_policy=FixedDegree(6), alpha=0.5)
    lists = tc.traverse(tc.tree.points, self_targets=True)
    q2 = rng.uniform(-1, 1, len(q))
    tc.set_charges(q2)
    res = tc.evaluate_lists(lists, tc.tree.points, self_targets=True)
    ref = direct_potential(pts, q2)
    assert rel_err(res.potential, ref) < 2e-3


def test_set_charges_rebuilds_aggregates(small_cloud):
    pts, q = small_cloud
    tc = Treecode(pts, q, degree_policy=FixedDegree(4))
    tc.set_charges(2.0 * q)
    assert tc.tree.abs_charge[0] == pytest.approx(2.0 * np.abs(q).sum())
    with pytest.raises(ValueError):
        tc.set_charges(np.zeros(3))


def test_evaluate_lists_matches_evaluate(small_cloud):
    pts, q = small_cloud
    tc = Treecode(pts, q, degree_policy=FixedDegree(5), alpha=0.5)
    r1 = tc.evaluate()
    lists = tc.traverse(tc.tree.points, self_targets=True)
    r2 = tc.evaluate_lists(lists, tc.tree.points, self_targets=True)
    assert np.allclose(r1.potential, r2.potential, rtol=1e-14)


def test_traversal_covers_every_source_once(small_cloud):
    """For each target, every source particle contributes exactly once:
    through exactly one accepted cluster or one near-field leaf."""
    pts, q = small_cloud
    tc = Treecode(pts, q, degree_policy=FixedDegree(4), alpha=0.5)
    tree = tc.tree
    tgt = tree.points[:5]
    lists = tc.traverse(tgt, self_targets=False)
    n = tree.n_particles
    for t in range(5):
        covered = np.zeros(n, dtype=int)
        sel = lists.far_targets == t
        for node in lists.far_nodes[sel]:
            covered[tree.start[node] : tree.end[node]] += 1
        for leaf, tids in lists.near:
            if t in tids:
                covered[tree.start[leaf] : tree.end[leaf]] += 1
        assert np.all(covered == 1)


def test_mac_well_separation(small_cloud):
    """Every accepted (cluster, target) pair satisfies radius <= alpha*dist."""
    pts, q = small_cloud
    alpha = 0.6
    tc = Treecode(pts, q, degree_policy=FixedDegree(4), alpha=alpha)
    tree = tc.tree
    lists = tc.traverse(tree.points, self_targets=True)
    d = np.linalg.norm(
        tree.points[lists.far_targets] - tree.center_exp[lists.far_nodes], axis=1
    )
    assert np.all(tree.radius[lists.far_nodes] <= alpha * d * (1 + 1e-12))
    assert np.all(d > 0)


def test_invalid_parameters(small_cloud):
    pts, q = small_cloud
    with pytest.raises(ValueError):
        Treecode(pts, q, alpha=1.0)
    with pytest.raises(ValueError):
        Treecode(pts, q, alpha=0.0)
    with pytest.raises(ValueError):
        Treecode(pts, q, upward="sideways")
    tc = Treecode(pts, q, degree_policy=FixedDegree(3))
    with pytest.raises(ValueError):
        tc.evaluate(compute="everything")
    with pytest.raises(ValueError):
        tc.evaluate(targets=np.zeros((5, 2)))


def test_level_degree_policy_runs(small_cloud):
    pts, q = small_cloud
    ref = direct_potential(pts, q)
    tc = Treecode(pts, q, degree_policy=LevelDegree(p0=4, alpha=0.5), alpha=0.5)
    assert rel_err(tc.evaluate().potential, ref) < 1e-3


def test_describe(small_cloud):
    pts, q = small_cloud
    tc = Treecode(pts, q, degree_policy=FixedDegree(4))
    s = tc.describe()
    assert "FixedDegree" in s and "n=300" in s


def test_tiny_system():
    pts = np.array([[0.0, 0.0, 0.0], [1.0, 0.0, 0.0], [0.0, 1.0, 0.0]])
    q = np.array([1.0, -2.0, 0.5])
    res = Treecode(pts, q, degree_policy=FixedDegree(4)).evaluate()
    ref = direct_potential(pts, q)
    assert np.allclose(res.potential, ref, rtol=1e-12)


def test_coincident_points_do_not_crash():
    pts = np.concatenate([np.full((10, 3), 0.5), np.random.default_rng(0).random((100, 3))])
    q = np.ones(110)
    res = Treecode(pts, q, degree_policy=FixedDegree(4), max_depth=8).evaluate()
    assert np.all(np.isfinite(res.potential))
