"""Supervised execution: heartbeats, watchdogs, quarantine, ladder.

Covers the supervision layer (repro.robust.supervisor) end to end: the
shared-memory heartbeat table, adaptive hang deadlines, hang/OOM reaps
on the process backend, poison-unit quarantine, the memory breaker with
plan shedding, the process -> thread -> serial degradation ladder, the
abandoned-attempt-thread ledger, shared-memory hygiene on abnormal
exit, and the CLI/environment wiring.
"""

import os
import signal
import subprocess
import sys
import textwrap
import time

import numpy as np
import pytest

from repro.core.degree import FixedDegree
from repro.core.treecode import Treecode
from repro.data.distributions import make_distribution, unit_charges
from repro.direct import direct_potential
from repro.obs import REGISTRY, journal, tracing
from repro.obs.journal import Journal, read_journal
from repro.parallel import evaluate_parallel, evaluate_plan_parallel
from repro.parallel.executors import scatter_add
from repro.robust import (
    AttemptTimeout,
    FaultInjector,
    RetryPolicy,
    abandoned_threads,
    parse_fault_spec,
    retry_call,
    set_injector,
)
from repro.robust import supervisor as sup_mod
from repro.robust.supervisor import (
    HeartbeatTable,
    Supervisor,
    SupervisorConfig,
    cleanup_segments,
    create_segment,
    current_rss,
    default_config,
    release_segment,
)

posix_only = pytest.mark.skipif(
    os.name != "posix", reason="fork-based process pool"
)

#: millisecond backoff so failure paths stay fast under test
FAST = RetryPolicy(max_retries=2, base_delay=0.0, max_delay=0.001)


@pytest.fixture(autouse=True)
def clean_obs():
    tracing.disable()
    tracing.get_tracer().clear()
    REGISTRY.reset()
    set_injector(None)
    journal.set_journal(None)
    yield
    tracing.disable()
    tracing.get_tracer().clear()
    REGISTRY.reset()
    set_injector(None)
    journal.set_journal(None)


def small_plan(n=900, n_units=4, leaf_size=96, seed=7):
    """A cluster plan with few, chunky units: hang/reap tests need every
    unit to matter, not thousands of sub-ms near blocks."""
    pts = make_distribution("uniform", n, seed=seed)
    q = unit_charges(n, seed=seed + 1, signed=True)
    tc = Treecode(
        pts, q, degree_policy=FixedDegree(3), alpha=0.6, leaf_size=leaf_size
    )
    return tc.compile_plan(mode="cluster", n_units=n_units), q


def supervisor_counters():
    return {
        k: v
        for k, v in REGISTRY.to_dict()["counters"].items()
        if k.startswith("supervisor_")
    }


# ---------------------------------------------------------------------------
# heartbeat table + shared-memory hygiene
# ---------------------------------------------------------------------------
class TestHeartbeatTable:
    def test_beat_read_clear(self):
        hb = HeartbeatTable(2)
        try:
            assert hb.name.startswith(f"repro-{os.getpid()}-")
            hb.beat(0, 5, rss=12345)
            snap = hb.read()
            assert int(snap[0, 0]) == os.getpid()
            assert int(snap[0, 1]) == 5
            assert snap[0, 2] > 0.0  # monotonic timestamp published last
            assert int(snap[0, 3]) == 12345
            assert int(snap[1, 1]) == -1  # untouched slot reads idle
            hb.clear(0)
            assert int(hb.read()[0, 1]) == -1
        finally:
            hb.close()

    @posix_only
    def test_close_leaves_no_shm_residue(self):
        if not os.path.isdir("/dev/shm"):
            pytest.skip("no /dev/shm on this host")
        hb = HeartbeatTable(3)
        name = hb.name
        assert os.path.exists(f"/dev/shm/{name}")
        hb.close()
        assert not os.path.exists(f"/dev/shm/{name}")

    @posix_only
    def test_cleanup_segments_sweeps_unreleased(self):
        if not os.path.isdir("/dev/shm"):
            pytest.skip("no /dev/shm on this host")
        shm = create_segment(256)
        name = shm.name
        assert os.path.exists(f"/dev/shm/{name}")
        cleanup_segments()  # the atexit/SIGTERM hook, called directly
        assert not os.path.exists(f"/dev/shm/{name}")
        release_segment(shm)  # idempotent on an already-swept segment


# ---------------------------------------------------------------------------
# configuration
# ---------------------------------------------------------------------------
class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"heartbeat_interval": 0.0},
            {"unit_deadline": -1.0},
            {"quarantine_after": 0},
            {"memory_budget": 0},
            {"shed_fraction": 0.0},
            {"shed_fraction": 1.5},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            SupervisorConfig(**kwargs)

    def test_default_config_off_without_env(self, monkeypatch):
        monkeypatch.delenv(sup_mod.ENV_SUPERVISE, raising=False)
        assert default_config() is None
        monkeypatch.setenv(sup_mod.ENV_SUPERVISE, "0")
        assert default_config() is None

    def test_default_config_from_env(self, monkeypatch):
        monkeypatch.setenv(sup_mod.ENV_SUPERVISE, "true")
        monkeypatch.setenv(sup_mod.ENV_HEARTBEAT_INTERVAL, "0.1")
        monkeypatch.setenv(sup_mod.ENV_UNIT_DEADLINE, "2.5")
        monkeypatch.setenv(sup_mod.ENV_MEMORY_BUDGET, "512")  # MiB
        cfg = default_config()
        assert cfg is not None
        assert cfg.heartbeat_interval == 0.1
        assert cfg.unit_deadline == 2.5
        assert cfg.memory_budget == 512 * 1024 * 1024


# ---------------------------------------------------------------------------
# adaptive deadline + failure accounting
# ---------------------------------------------------------------------------
class TestSupervisorState:
    def test_fixed_deadline_wins(self):
        sup = Supervisor(SupervisorConfig(unit_deadline=1.5))
        for _ in range(50):
            sup.record_duration(10.0)
        assert sup.deadline() == 1.5

    def test_warmup_deadline_and_slowest_floor(self):
        sup = Supervisor(SupervisorConfig())
        assert sup.deadline() == SupervisorConfig().warmup_deadline
        sup.record_duration(6.0)  # one slow unit during warmup
        assert sup.deadline() == 12.0  # 2 x max observed beats the warmup

    def test_p95_deadline_with_heterogeneity_floor(self):
        sup = Supervisor(SupervisorConfig())
        for _ in range(100):
            sup.record_duration(0.01)
        # homogeneous: p95 term is tiny, the floor is min_deadline
        assert sup.deadline() == SupervisorConfig().min_deadline
        # one heavy far unit among thousands of near blocks must raise
        # the deadline to 2 x its duration, or it would be falsely
        # reaped on every dispatch
        sup.record_duration(1.0)
        assert sup.deadline() == 2.0

    def test_record_failure_quarantines_exactly_once(self):
        sup = Supervisor(SupervisorConfig(quarantine_after=2))
        assert sup.record_failure(7) is False
        assert sup.record_failure(7) is True  # crosses the threshold
        assert sup.record_failure(7) is False  # but only once
        assert sup.failures_of(7) == 3
        assert sup.total_failures() == 3
        assert sup.quarantined == {7}


# ---------------------------------------------------------------------------
# clean runs: supervision must be invisible
# ---------------------------------------------------------------------------
class TestCleanRuns:
    def test_supervised_thread_run_bitwise_and_eventless(self):
        plan, q = small_plan()
        base = evaluate_plan_parallel(plan, q, n_threads=2, supervise=False)
        sup = evaluate_plan_parallel(
            plan, q, n_threads=2, supervise=SupervisorConfig()
        )
        np.testing.assert_array_equal(sup.potential, base.potential)
        assert sup.n_quarantined == sup.n_reaped == sup.n_degradations == 0
        assert supervisor_counters() == {}  # no events on a healthy run

    def test_supervised_wblock_run_bitwise(self):
        pts = make_distribution("uniform", 500, seed=3)
        q = unit_charges(500, seed=4, signed=True)
        tc = Treecode(pts, q, degree_policy=FixedDegree(3), alpha=0.6)
        base = evaluate_parallel(tc, n_threads=2, w=64, supervise=False)
        sup = evaluate_parallel(
            tc, n_threads=2, w=64, supervise=SupervisorConfig()
        )
        np.testing.assert_array_equal(sup.potential, base.potential)
        assert supervisor_counters() == {}

    @posix_only
    def test_supervised_process_run_bitwise(self):
        plan, q = small_plan()
        base = evaluate_plan_parallel(
            plan, q, n_threads=2, backend="process", supervise=False
        )
        sup = evaluate_plan_parallel(
            plan, q, n_threads=2, backend="process", supervise=SupervisorConfig()
        )
        np.testing.assert_array_equal(sup.potential, base.potential)
        assert sup.n_reaped == 0


# ---------------------------------------------------------------------------
# hang reaping + quarantine (process backend)
# ---------------------------------------------------------------------------
@posix_only
class TestHangReaping:
    def test_hangs_reaped_within_twice_deadline(self, tmp_path):
        plan, q = small_plan()
        serial = plan.execute(q).potential
        deadline = 0.4
        jpath = tmp_path / "run.jsonl"
        # 15% of the 68 units sleep far past the deadline (~10 expected
        # hangs; the chance of a hang-free run is ~1e-5)
        set_injector(
            FaultInjector(parse_fault_spec("block_hang:0.15:5"), seed=2)
        )
        with Journal(str(jpath)) as j:
            journal.set_journal(j)
            res = evaluate_plan_parallel(
                plan,
                q,
                n_threads=2,
                backend="process",
                retry=FAST,
                supervise=SupervisorConfig(
                    unit_deadline=deadline,
                    quarantine_after=1,
                    max_worker_deaths=10_000,  # keep the ladder out of this test
                ),
            )
        journal.set_journal(None)
        set_injector(None)
        np.testing.assert_array_equal(res.potential, serial)
        assert res.n_reaped >= 1
        assert res.n_quarantined >= 1
        reaps = [
            e
            for e in read_journal(str(jpath))
            if e["event"] == "supervisor.reap"
        ]
        assert reaps, "reaps must be journaled"
        for e in reaps:
            assert journal.validate_supervisor_event(e)
            # the watchdog scan period is capped at deadline/2, so a
            # silent worker is reaped within 2x the deadline
            assert e["data"]["waited_s"] <= 2.0 * e["data"]["deadline_s"]
        counters = supervisor_counters()
        assert counters.get("supervisor_reaps", 0) == res.n_reaped
        assert counters.get("supervisor_quarantines", 0) == res.n_quarantined

    def test_worker_mortality_degrades_down_the_ladder(self, tmp_path):
        plan, q = small_plan()
        serial = plan.execute(q).potential
        jpath = tmp_path / "run.jsonl"
        set_injector(
            FaultInjector(parse_fault_spec("block_kill:0.6"), seed=5)
        )
        with Journal(str(jpath)) as j:
            journal.set_journal(j)
            res = evaluate_plan_parallel(
                plan,
                q,
                n_threads=2,
                backend="process",
                retry=FAST,
                supervise=SupervisorConfig(
                    unit_deadline=5.0, max_worker_deaths=2
                ),
            )
        journal.set_journal(None)
        set_injector(None)
        # the thread/serial rungs rerun units with identical arithmetic
        np.testing.assert_array_equal(res.potential, serial)
        assert res.n_degradations >= 1
        events = read_journal(str(jpath))
        trips = [e for e in events if e["event"] == "supervisor.breaker_trip"]
        degraded = [e for e in events if e["event"] == "supervisor.degraded"]
        assert trips and trips[0]["data"]["reason"] == "worker_mortality"
        assert degraded and degraded[0]["data"]["frm"] == "process"
        assert degraded[0]["data"]["to"] == "thread"

    def test_oom_workers_reaped(self, tmp_path):
        plan, q = small_plan(n=600, n_units=2, leaf_size=200)
        serial = plan.execute(q).potential
        jpath = tmp_path / "run.jsonl"
        # every attempt balloons worker RSS by ~96 MiB over a budget set
        # ~48 MiB above the current (soon-to-be-forked) image, then
        # sleeps briefly: the ballast survives into the *next* unit's
        # heartbeat, and the sleep keeps the slot busy long enough for
        # the RSS watchdog to observe it
        budget = current_rss() + 48 * 1024 * 1024
        set_injector(
            FaultInjector(
                parse_fault_spec("block_oom:1.0:96,block_hang:1.0:0.3"), seed=1
            )
        )
        with Journal(str(jpath)) as j:
            journal.set_journal(j)
            res = evaluate_plan_parallel(
                plan,
                q,
                n_threads=2,
                backend="process",
                retry=FAST,
                supervise=SupervisorConfig(
                    unit_deadline=30.0,  # only the RSS watchdog may fire
                    quarantine_after=1,
                    max_worker_deaths=10_000,
                    memory_budget=budget,
                ),
            )
        journal.set_journal(None)
        set_injector(None)
        np.testing.assert_array_equal(res.potential, serial)
        oom_reaps = [
            e
            for e in read_journal(str(jpath))
            if e["event"] == "supervisor.reap" and e["data"]["kind"] == "oom"
        ]
        assert oom_reaps, "over-budget workers must be reaped as oom"
        assert supervisor_counters().get("supervisor_oom_reaps", 0) >= 1


# ---------------------------------------------------------------------------
# memory breaker: shed, then trip, then ladder
# ---------------------------------------------------------------------------
@posix_only
class TestMemoryBreaker:
    def test_parent_sheds_then_trips_then_ladder_completes(self, tmp_path):
        plan, q = small_plan(n=600, n_units=2, leaf_size=200)
        serial = plan.execute(q).potential
        jpath = tmp_path / "run.jsonl"
        with Journal(str(jpath)) as j:
            journal.set_journal(j)
            res = evaluate_plan_parallel(
                plan,
                q,
                n_threads=2,
                backend="process",
                retry=FAST,
                # 1-byte budget: the parent is over it from the start, so
                # it must shed the plan's stages, then trip the breaker,
                # then finish down the ladder.  Workers are over it too
                # and get oom-reaped; mortality must not trip first.
                supervise=SupervisorConfig(
                    unit_deadline=30.0,
                    quarantine_after=1,
                    max_worker_deaths=10_000_000,
                    memory_budget=1,
                ),
            )
        journal.set_journal(None)
        # stage-1 shed casts precomputed operators to float32, so units
        # evaluated between the sheds are approximate — allclose, not
        # bitwise (stage 2 drops to the exact recompute paths)
        scale = max(1.0, float(np.abs(serial).max()))
        np.testing.assert_allclose(
            res.potential, serial, rtol=0, atol=1e-4 * scale
        )
        events = read_journal(str(jpath))
        sheds = [e for e in events if e["event"] == "supervisor.memory_shed"]
        trips = [e for e in events if e["event"] == "supervisor.breaker_trip"]
        assert sheds, "the parent must shed plan memory before breaking"
        assert any(e["data"]["reason"] == "memory_pressure" for e in trips)
        assert res.n_degradations >= 1
        counters = supervisor_counters()
        assert counters.get("supervisor_memory_sheds", 0) >= 1
        assert counters.get("supervisor_memory_shed_bytes", 0) > 0


# ---------------------------------------------------------------------------
# shed stages + quarantine's exact last resort
# ---------------------------------------------------------------------------
class TestShedAndDirect:
    def test_shed_memory_stages_and_accuracy(self):
        # target-major plan: stage 2 drops *all* precomputed operators
        # to the exact recompute paths, so full accuracy returns (the
        # cluster plan keeps float32 L2P rows after stage 1)
        pts = make_distribution("uniform", 900, seed=7)
        q = unit_charges(900, seed=8, signed=True)
        plan = Treecode(
            pts, q, degree_policy=FixedDegree(3), alpha=0.6
        ).compile_plan()
        base = plan.execute(q).potential
        before = plan.memory_bytes
        scale = max(1.0, float(np.abs(base).max()))

        freed1 = plan.shed_memory()  # stage 1: float32 operators
        assert freed1 > 0
        assert plan.memory_bytes == before - freed1
        stage1 = plan.execute(q).potential
        assert np.allclose(stage1, base, rtol=0, atol=1e-4 * scale)

        freed2 = plan.shed_memory()  # stage 2: drop to exact recompute
        assert freed2 > 0
        stage2 = plan.execute(q).potential
        np.testing.assert_allclose(stage2, base, rtol=0, atol=1e-12 * scale)

        assert plan.shed_memory() == 0  # nothing left: breaker's cue

    def test_execute_unit_direct_sums_to_direct_potential(self):
        plan, q = small_plan(n=400)
        pts = make_distribution("uniform", 400, seed=7)
        q_sorted = plan.sort_charges(q)
        phi = np.zeros(plan.n_targets, dtype=np.float64)
        for i in range(plan.n_units):
            tids, vals = plan.execute_unit_direct(q_sorted, i)
            scatter_add(phi, tids, vals)
        phi, _, _ = plan.finalize(phi)
        ref = direct_potential(pts, q)
        scale = max(1.0, float(np.abs(ref).max()))
        # per-pair summation everywhere: no truncation error at all
        np.testing.assert_allclose(phi, ref, rtol=0, atol=1e-10 * scale)


# ---------------------------------------------------------------------------
# the ISSUE acceptance scenario: n=20k under combined hang+kill chaos
# ---------------------------------------------------------------------------
@posix_only
class TestAcceptance:
    def test_20k_chaos_run_bitwise_with_full_ledger(self, tmp_path):
        n = 20000
        pts = make_distribution("uniform", n, seed=11)
        q = unit_charges(n, seed=12, signed=True)
        tc = Treecode(
            pts, q, degree_policy=FixedDegree(2), alpha=0.7, leaf_size=1000
        )
        plan = tc.compile_plan(mode="cluster", n_units=6)  # 6 far + 68 near
        serial = plan.execute(q).potential
        jpath = tmp_path / "run.jsonl"
        tracing.enable()
        set_injector(
            FaultInjector(
                parse_fault_spec("block_hang:0.2:1,block_kill:0.1"), seed=3
            )
        )
        with Journal(str(jpath)) as j:
            journal.set_journal(j)
            res = evaluate_plan_parallel(
                plan,
                q,
                n_threads=2,
                backend="process",
                retry=FAST,
                supervise=SupervisorConfig(
                    unit_deadline=0.4, quarantine_after=1, max_worker_deaths=6
                ),
            )
        journal.set_journal(None)
        set_injector(None)

        np.testing.assert_array_equal(res.potential, serial)
        assert res.n_reaped >= 1
        assert res.n_quarantined >= 1
        assert res.n_degradations >= 1

        # ... and every supervision event is visible in all three sinks
        events = read_journal(str(jpath))
        kinds = {e["event"] for e in events}
        assert {"supervisor.reap", "supervisor.quarantine",
                "supervisor.degraded"} <= kinds
        for e in events:
            if e["event"] == "supervisor.reap" and e["data"]["kind"] == "hang":
                assert e["data"]["waited_s"] <= 2.0 * e["data"]["deadline_s"]
        counters = supervisor_counters()
        assert counters.get("supervisor_reaps", 0) >= 1
        assert counters.get("supervisor_quarantines", 0) >= 1
        assert counters.get("supervisor_degradations", 0) >= 1
        span_names = {e["name"] for e in tracing.get_tracer().events()}
        assert "supervisor.quarantine" in span_names
        assert "supervisor.degraded" in span_names


# ---------------------------------------------------------------------------
# abandoned attempt threads: tracked, counted, daemonic
# ---------------------------------------------------------------------------
class TestAbandonedThreads:
    def test_timeout_tracks_daemon_thread_and_counter(self):
        before = REGISTRY.to_dict()["counters"].get(
            "retry_abandoned_threads", 0
        )
        with pytest.raises(Exception) as excinfo:
            retry_call(
                lambda: time.sleep(1.0),
                RetryPolicy(max_retries=0, base_delay=0.0, deadline=0.05),
                site="test.hang",
            )
        assert isinstance(excinfo.value.__cause__ or excinfo.value,
                          (AttemptTimeout, Exception))
        after = REGISTRY.to_dict()["counters"]["retry_abandoned_threads"]
        assert after == before + 1
        alive = abandoned_threads()
        assert alive, "the hung attempt thread must be tracked"
        assert all(t.daemon for t in alive)
        assert all(t.name.startswith("abandoned-") for t in alive)
        # once the hung call returns, the runner exits and the ledger
        # prunes itself — no permanent thread leak
        for t in alive:
            t.join(timeout=5.0)
        assert abandoned_threads() == []

    def test_runner_reuse_and_replacement(self):
        from repro.robust.retry import _RUNNERS

        pol = RetryPolicy(max_retries=0, base_delay=0.0, deadline=5.0)
        assert retry_call(lambda: 41 + 1, pol, site="t")[0] == 42
        first = getattr(_RUNNERS, "runner", None)
        assert first is not None
        assert retry_call(lambda: 7, pol, site="t")[0] == 7
        assert getattr(_RUNNERS, "runner") is first  # reused, not respawned
        with pytest.raises(Exception):
            retry_call(
                lambda: time.sleep(0.5),
                RetryPolicy(max_retries=0, base_delay=0.0, deadline=0.02),
                site="t",
            )
        # the poisoned runner was dropped; the next call gets a fresh one
        assert retry_call(lambda: 9, pol, site="t")[0] == 9
        assert getattr(_RUNNERS, "runner") is not first
        first.thread.join(timeout=5.0)


# ---------------------------------------------------------------------------
# abnormal-exit hygiene: SIGINT mid-run leaves no /dev/shm residue
# ---------------------------------------------------------------------------
@posix_only
class TestAbnormalExit:
    def test_sigint_leaves_no_shm_residue(self):
        if not os.path.isdir("/dev/shm"):
            pytest.skip("no /dev/shm on this host")
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        child_code = textwrap.dedent(
            """
            import sys
            sys.path.insert(0, sys.argv[1])
            from repro.core.degree import FixedDegree
            from repro.core.treecode import Treecode
            from repro.data.distributions import make_distribution, unit_charges
            from repro.parallel import evaluate_plan_parallel
            from repro.robust import FaultInjector, parse_fault_spec, set_injector
            from repro.robust.supervisor import SupervisorConfig

            n = 600
            pts = make_distribution("uniform", n, seed=0)
            q = unit_charges(n, seed=1, signed=True)
            plan = Treecode(
                pts, q, degree_policy=FixedDegree(3), alpha=0.6, leaf_size=96
            ).compile_plan(mode="cluster", n_units=2)
            set_injector(
                FaultInjector(parse_fault_spec("block_hang:1.0:60"), seed=0)
            )
            print("RUNNING", flush=True)
            evaluate_plan_parallel(
                plan, q, n_threads=2, backend="process",
                supervise=SupervisorConfig(unit_deadline=45.0),
            )
            """
        )
        proc = subprocess.Popen(
            [sys.executable, "-c", child_code, src],
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
        )
        try:
            assert proc.stdout.readline().strip() == "RUNNING"
            time.sleep(1.5)  # let the heartbeat/operand segments appear
            proc.send_signal(signal.SIGINT)
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
        leftover = [
            f
            for f in os.listdir("/dev/shm")
            if f.startswith(f"repro-{proc.pid}-")
        ]
        assert leftover == [], f"SIGINT leaked shared memory: {leftover}"


# ---------------------------------------------------------------------------
# CLI / environment wiring
# ---------------------------------------------------------------------------
class TestCliWiring:
    @pytest.fixture(autouse=True)
    def _restore_env(self):
        keys = (
            sup_mod.ENV_SUPERVISE,
            sup_mod.ENV_HEARTBEAT_INTERVAL,
            sup_mod.ENV_UNIT_DEADLINE,
            sup_mod.ENV_MEMORY_BUDGET,
        )
        saved = {k: os.environ.get(k) for k in keys}
        yield
        for k, v in saved.items():
            if v is None:
                os.environ.pop(k, None)
            else:
                os.environ[k] = v

    def test_supervise_flags_export_env(self):
        from repro.cli import main

        code = main(
            [
                "leaf-sweep",
                "--seed",
                "0",
                "--supervise",
                "--unit-deadline",
                "1.5",
                "--memory-budget",
                "256",
            ]
        )
        assert code == 0
        assert os.environ[sup_mod.ENV_SUPERVISE] == "1"
        assert float(os.environ[sup_mod.ENV_UNIT_DEADLINE]) == 1.5
        assert float(os.environ[sup_mod.ENV_MEMORY_BUDGET]) == 256.0

    def test_tuning_flag_implies_supervise(self):
        from repro.cli import main

        os.environ.pop(sup_mod.ENV_SUPERVISE, None)
        code = main(["leaf-sweep", "--seed", "0", "--heartbeat-interval", "0.2"])
        assert code == 0
        assert os.environ[sup_mod.ENV_SUPERVISE] == "1"
        assert os.environ[sup_mod.ENV_HEARTBEAT_INTERVAL] == "0.2"

    def test_invalid_tuning_rejected(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["leaf-sweep", "--seed", "0", "--unit-deadline", "-1"])

    def test_health_report_lists_supervision_counters(self):
        from repro.cli import _health_report

        report = _health_report(
            {
                "supervisor_reaps": 3,
                "supervisor_quarantines": 1,
                "other_counter": 9,
            }
        )
        assert "supervision health" in report
        assert "3" in report and "workers reaped" in report
        assert "other_counter" not in report
        assert _health_report({"plain": 1}) == ""
