"""Tests for Morton (Z-order) keys."""

import numpy as np
import pytest

from repro.tree.morton import (
    MAX_DEPTH,
    deinterleave3,
    interleave3,
    key_range_of_node,
    morton_decode,
    morton_key,
    octant_at_depth,
    quantize,
)


def test_interleave_roundtrip():
    rng = np.random.default_rng(0)
    x = rng.integers(0, 1 << MAX_DEPTH, 1000, dtype=np.uint64)
    y = rng.integers(0, 1 << MAX_DEPTH, 1000, dtype=np.uint64)
    z = rng.integers(0, 1 << MAX_DEPTH, 1000, dtype=np.uint64)
    keys = interleave3(x, y, z)
    xr, yr, zr = deinterleave3(keys)
    assert np.array_equal(x, xr)
    assert np.array_equal(y, yr)
    assert np.array_equal(z, zr)


def test_interleave_bit_layout():
    # x contributes the most significant bit of each 3-bit group
    key = interleave3(np.array([1], dtype=np.uint64), np.array([0], dtype=np.uint64), np.array([0], dtype=np.uint64))
    assert key[0] == 4
    key = interleave3(np.array([0], dtype=np.uint64), np.array([1], dtype=np.uint64), np.array([0], dtype=np.uint64))
    assert key[0] == 2
    key = interleave3(np.array([0], dtype=np.uint64), np.array([0], dtype=np.uint64), np.array([1], dtype=np.uint64))
    assert key[0] == 1


def test_quantize_clamps_to_box():
    pts = np.array([[-1.0, 0.5, 2.0], [0.0, 0.0, 0.0], [1.0, 1.0, 1.0]])
    g = quantize(pts, np.zeros(3), np.ones(3), depth=4)
    assert g.min() >= 0 and g.max() <= 15
    assert g[0, 0] == 0 and g[0, 2] == 15


def test_quantize_rejects_bad_shapes():
    with pytest.raises(ValueError):
        quantize(np.zeros((3, 2)), np.zeros(3), np.ones(3))
    with pytest.raises(ValueError):
        quantize(np.zeros((3, 3)), np.zeros(3), np.zeros(3))
    with pytest.raises(ValueError):
        quantize(np.zeros((3, 3)), np.zeros(3), np.ones(3), depth=0)


def test_morton_sort_groups_octants():
    """Points in the same octant of the root must be contiguous in key order."""
    rng = np.random.default_rng(1)
    pts = rng.random((500, 3))
    keys = morton_key(pts, np.zeros(3), np.ones(3))
    order = np.argsort(keys)
    octant = (
        (pts[:, 0] >= 0.5).astype(int) * 4
        + (pts[:, 1] >= 0.5).astype(int) * 2
        + (pts[:, 2] >= 0.5).astype(int)
    )
    sorted_oct = octant[order]
    # octant ids must be non-decreasing along the sort
    assert np.all(np.diff(sorted_oct) >= 0)


def test_octant_at_depth_matches_geometry():
    pts = np.array([[0.1, 0.1, 0.1], [0.9, 0.1, 0.1], [0.9, 0.9, 0.9], [0.1, 0.6, 0.2]])
    keys = morton_key(pts, np.zeros(3), np.ones(3))
    octs = octant_at_depth(keys, 1)
    assert list(octs) == [0, 4, 7, 2]


def test_morton_decode_within_cell():
    rng = np.random.default_rng(2)
    pts = rng.random((200, 3))
    depth = 8
    keys = morton_key(pts, np.zeros(3), np.ones(3), depth=depth)
    dec = morton_decode(keys, np.zeros(3), np.ones(3), depth=depth)
    cell = 1.0 / (1 << depth)
    assert np.all(np.abs(dec - pts) <= cell)


def test_key_range_of_node_nesting():
    s0, e0 = key_range_of_node(0, 0)
    assert s0 == 0 and e0 == 1 << (3 * MAX_DEPTH)
    # children partition the parent range
    prev_end = s0
    for oct_ in range(8):
        s, e = key_range_of_node(oct_, 1)
        assert s == prev_end
        prev_end = e
    assert prev_end == e0


def test_key_range_rejects_bad_depth():
    with pytest.raises(ValueError):
        key_range_of_node(0, MAX_DEPTH + 1)
    with pytest.raises(ValueError):
        octant_at_depth(np.array([0], dtype=np.uint64), 0)
