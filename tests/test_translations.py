"""Tests for M2M / M2L / L2L translation operators."""

import numpy as np
import pytest

from repro.multipole.expansion import l2p, m2p, p2l, p2m
from repro.multipole.harmonics import ncoef
from repro.multipole.translations import from_full_grid, l2l, m2l, m2m, to_full_grid


def test_m2m_is_exact(rng):
    """Parent coefficients up to degree p from child coefficients up to p
    must equal direct P2M about the parent center, to machine precision."""
    p = 9
    src = rng.normal(size=(30, 3)) * 0.3
    q = rng.uniform(-1, 1, 30)
    c1 = np.array([0.15, -0.1, 0.2])
    M1 = p2m(src - c1, q, p)
    M0 = m2m(M1, c1[None, :], p)[0]
    assert np.allclose(M0, p2m(src, q, p), rtol=1e-12, atol=1e-12)


def test_m2m_batch(rng):
    p = 6
    src = rng.normal(size=(20, 3)) * 0.2
    q = rng.uniform(-1, 1, 20)
    centers = rng.normal(size=(5, 3)) * 0.3
    coeffs = np.stack([p2m(src - c, q, p) for c in centers])
    out = m2m(coeffs, centers, p)
    direct = p2m(src, q, p)
    for k in range(5):
        assert np.allclose(out[k], direct, rtol=1e-11, atol=1e-12)


def test_m2m_zero_shift_is_identity(rng):
    p = 5
    src = rng.normal(size=(10, 3)) * 0.2
    M = p2m(src, rng.uniform(0, 1, 10), p)
    out = m2m(M, np.zeros((1, 3)), p)[0]
    assert np.allclose(out, M, atol=1e-13)


def test_m2m_composition(rng):
    """Two successive shifts equal one combined shift."""
    p = 7
    src = rng.normal(size=(15, 3)) * 0.2
    q = rng.uniform(-1, 1, 15)
    d1 = np.array([0.3, -0.1, 0.2])
    d2 = np.array([-0.2, 0.25, 0.1])
    M = p2m(src, q, p)
    two = m2m(m2m(M, d1[None], p), d2[None], p)[0]
    one = m2m(M, (d1 + d2)[None], p)[0]
    assert np.allclose(two, one, rtol=1e-11, atol=1e-12)


def test_m2l_approximates_potential(rng):
    p = 10
    center_m = np.array([6.0, 1.0, -1.0])
    src = center_m + rng.normal(size=(25, 3)) * 0.3
    q = rng.uniform(-1, 1, 25)
    M = p2m(src - center_m, q, p)
    L = m2l(M, center_m[None, :], p, p)[0]
    tgt = rng.normal(size=(10, 3)) * 0.3
    d = tgt[:, None, :] - src[None, :, :]
    ref = (1.0 / np.sqrt(np.einsum("tsi,tsi->ts", d, d))) @ q
    assert np.allclose(l2p(L, tgt, p), ref, rtol=1e-5, atol=1e-8)


def test_m2l_converges_with_degree(rng):
    center_m = np.array([5.0, 0.0, 0.0])
    src = center_m + rng.normal(size=(20, 3)) * 0.4
    q = rng.uniform(-1, 1, 20)
    tgt = rng.normal(size=(8, 3)) * 0.4
    d = tgt[:, None, :] - src[None, :, :]
    ref = (1.0 / np.sqrt(np.einsum("tsi,tsi->ts", d, d))) @ q
    errs = []
    for p in (3, 6, 10):
        M = p2m(src - center_m, q, p)
        L = m2l(M, center_m[None, :], p, p)[0]
        errs.append(np.abs(l2p(L, tgt, p) - ref).max())
    assert errs[0] > errs[1] > errs[2]


def test_m2l_mixed_degrees(rng):
    """p_loc < p_src truncates the local side only."""
    center_m = np.array([5.0, 2.0, 1.0])
    src = center_m + rng.normal(size=(15, 3)) * 0.3
    q = rng.uniform(0, 1, 15)
    M = p2m(src - center_m, q, 8)
    L = m2l(M, center_m[None, :], 8, 4)[0]
    assert L.shape == (ncoef(4),)
    tgt = rng.normal(size=(5, 3)) * 0.2
    d = tgt[:, None, :] - src[None, :, :]
    ref = (1.0 / np.sqrt(np.einsum("tsi,tsi->ts", d, d))) @ q
    assert np.allclose(l2p(L, tgt, 4), ref, rtol=1e-2)


def test_l2l_is_exact(rng):
    p = 8
    far = rng.normal(size=(20, 3))
    far = far / np.linalg.norm(far, axis=1, keepdims=True) * 6.0
    q = rng.uniform(-1, 1, 20)
    L = p2l(far, q, p)
    c2 = np.array([0.2, -0.15, 0.1])
    L2 = l2l(L, c2[None, :], p)[0]
    # direct local expansion about the new center
    L2_direct = p2l(far - c2, q, p)
    # l2l is exact as an operator on the (truncated) polynomial, which
    # differs from re-expanding the true field; compare evaluations of
    # the shifted polynomial instead.
    tgt = rng.normal(size=(10, 3)) * 0.1
    assert np.allclose(
        l2p(L2, tgt, p), l2p(L, tgt + c2, p), rtol=1e-11, atol=1e-12
    )
    # and both should be close to the direct local expansion
    assert np.allclose(l2p(L2, tgt, p), l2p(L2_direct, tgt, p), rtol=1e-5, atol=1e-8)


def test_l2l_zero_shift_identity(rng):
    p = 6
    far = rng.normal(size=(10, 3)) + 5.0
    L = p2l(far, rng.uniform(0, 1, 10), p)
    assert np.allclose(l2l(L, np.zeros((1, 3)), p)[0], L, atol=1e-13)


def test_full_grid_roundtrip(rng):
    p = 6
    packed = rng.normal(size=ncoef(p)) + 1j * rng.normal(size=ncoef(p))
    # force m=0 entries real (conjugate-symmetry requirement)
    from repro.multipole.harmonics import coef_index

    for n in range(p + 1):
        i = coef_index(n, 0)
        packed[i] = packed[i].real
    full = to_full_grid(packed, p)
    back = from_full_grid(full, p)
    assert np.allclose(back, packed)
    # negative-m entries are conjugates
    for n in range(p + 1):
        for m in range(1, n + 1):
            assert full[n, p - m] == np.conj(full[n, p + m])


def test_translation_linearity(rng):
    p = 5
    A = rng.normal(size=(1, ncoef(p))) + 1j * rng.normal(size=(1, ncoef(p)))
    B = rng.normal(size=(1, ncoef(p))) + 1j * rng.normal(size=(1, ncoef(p)))
    d = rng.normal(size=(1, 3)) * 0.5
    assert np.allclose(m2m(A + B, d, p), m2m(A, d, p) + m2m(B, d, p))
    d_far = d + 5.0
    assert np.allclose(m2l(A + B, d_far, p), m2l(A, d_far, p) + m2l(B, d_far, p))
    assert np.allclose(l2l(A + B, d, p), l2l(A, d, p) + l2l(B, d, p))
