"""Tests for multi-RHS batched plan execution.

The acceptance contract: a ``k = 1`` batch is bitwise-identical to the
single-vector path (serial, thread and process backends, including
under fault injection), and every column of a ``k > 1`` batch matches
its standalone evaluation to 1e-12 with the per-column Theorem-1
ledger containment chain (measured <= a-posteriori <= predicted <= tol)
intact.
"""

import numpy as np
import pytest

from repro.core.degree import AdaptiveChargeDegree, FixedDegree
from repro.core.treecode import Treecode
from repro.direct import direct_potential
from repro.parallel import evaluate_plan_parallel
from repro.robust import FaultInjector, parse_fault_spec, set_injector

N = 500
MODES = ("target", "cluster")


@pytest.fixture
def built(rng):
    pts = rng.random((N, 3))
    q = rng.uniform(-1, 1, N)
    tc = Treecode(
        pts, q, degree_policy=AdaptiveChargeDegree(p0=4, alpha=0.5), alpha=0.5
    )
    return pts, q, tc


def _batch(q, k):
    scales = np.linspace(1.0, -1.0, k)  # columns within the anchor magnitude
    return q[:, None] * scales[None, :]


@pytest.mark.parametrize("mode", MODES)
def test_k1_batch_bitwise_serial(built, mode):
    pts, q, tc = built
    plan = tc.compile_plan(mode=mode)
    single = plan.execute(q).potential
    col = plan.execute(q[:, None]).potential
    assert col.shape == (N, 1)
    assert np.array_equal(col[:, 0], single)


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_k1_batch_bitwise_parallel(built, backend):
    pts, q, tc = built
    plan = tc.compile_plan(mode="cluster")
    serial = plan.execute(q).potential
    got = evaluate_plan_parallel(plan, q[:, None], n_threads=2, backend=backend)
    assert got.potential.shape == (N, 1)
    assert np.array_equal(got.potential[:, 0], serial)


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_k1_batch_bitwise_under_fault_injection(built, backend):
    """Injected unit failures retry/recover with identical arithmetic,
    so even a faulty run must stay bitwise for k=1 batches."""
    pts, q, tc = built
    plan = tc.compile_plan(mode="cluster")
    serial = plan.execute(q).potential
    set_injector(FaultInjector(parse_fault_spec("block_error:0.2"), seed=7))
    try:
        got = evaluate_plan_parallel(
            plan, q[:, None], n_threads=2, backend=backend
        )
    finally:
        set_injector(None)
    assert np.array_equal(got.potential[:, 0], serial)


@pytest.mark.parametrize("mode", MODES)
def test_batch_columns_match_standalone(built, mode):
    pts, q, tc = built
    plan = tc.compile_plan(mode=mode)
    Q = _batch(q, 4)
    res = plan.execute(Q)
    assert res.potential.shape == (N, 4)
    for j in range(4):
        standalone = plan.execute(np.ascontiguousarray(Q[:, j])).potential
        assert np.max(np.abs(res.potential[:, j] - standalone)) <= 1e-12


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_batch_parallel_matches_serial_batch(built, backend):
    pts, q, tc = built
    plan = tc.compile_plan(mode="cluster")
    Q = _batch(q, 3)
    serial = plan.execute(Q).potential
    got = evaluate_plan_parallel(plan, Q, n_threads=2, backend=backend)
    assert np.array_equal(got.potential, serial)


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("tol", [1e-2, 1e-5])
def test_batch_ledger_containment_per_column(built, mode, tol):
    """measured <= a-posteriori <= predicted <= tol, column by column.

    The variable-order selection anchors on the compile-time charges;
    every batch column here stays within that anchor's magnitude, so
    the guarantee must hold for each column simultaneously."""
    pts, q, tc = built
    plan = tc.compile_plan(mode=mode, tol=tol, accumulate_bounds=True)
    Q = _batch(q, 3)
    res = plan.execute(Q)
    assert res.error_bound.shape == (N, 3)
    exact = direct_potential(pts, Q)
    for j in range(3):
        err = np.abs(res.potential[:, j] - exact[:, j])
        ledger = res.error_bound[:, j]
        assert np.all(err <= ledger + 1e-15)
        assert float(ledger.max()) <= plan.predicted_ledger_max * (1 + 1e-12)
    assert plan.predicted_ledger_max <= tol * (1.0 + 1e-12)


def test_batch_rejects_bad_shapes(built):
    pts, q, tc = built
    plan = tc.compile_plan()
    with pytest.raises(ValueError):
        plan.execute(q[: N - 1])
    with pytest.raises(ValueError):
        plan.execute(np.empty((N, 0)))
    with pytest.raises(ValueError):
        plan.execute(q.reshape(N, 1, 1))


def test_direct_oracle_batched_columns(rng):
    pts = rng.random((200, 3))
    q = rng.uniform(-1, 1, 200)
    k1 = direct_potential(pts, q[:, None])
    assert k1.shape == (200, 1)
    assert np.array_equal(k1[:, 0], direct_potential(pts, q))
    Q = _batch(q, 3)
    batched = direct_potential(pts, Q)
    assert batched.shape == (200, 3)
    for j in range(3):
        single = direct_potential(pts, np.ascontiguousarray(Q[:, j]))
        # GEMM vs GEMV reduction order: agreement, not bitwise
        assert np.max(np.abs(batched[:, j] - single)) <= 1e-13


def test_fmm_batch_columns(rng):
    from repro.fmm.engine import UniformFMM

    pts = rng.random((900, 3))
    q = rng.uniform(-1, 1, 900)
    Q = _batch(q, 3)
    fmm = UniformFMM(pts, q, level=2, degrees=5)
    fmm.evaluate()  # warm: the second evaluate compiles the plan
    single = fmm.evaluate()  # plan path — what the batches run through
    fmm.set_charges(q[:, None])
    k1 = fmm.evaluate()
    assert k1.shape == (900, 1)
    assert np.array_equal(k1[:, 0], single)
    fmm.set_charges(Q)
    batch = fmm.evaluate()
    for j in range(3):
        fmm.set_charges(np.ascontiguousarray(Q[:, j]))
        standalone = fmm.evaluate()
        assert np.max(np.abs(batch[:, j] - standalone)) <= 1e-12


def test_bem_batch_columns(rng):
    from repro.bem.geometries import icosphere
    from repro.bem.operator import SingleLayerOperator

    mesh = icosphere(1)
    sig = rng.uniform(-1, 1, mesh.n_vertices)
    S = _batch(sig, 3)
    op = SingleLayerOperator(mesh)
    batch = op.matvec(S)  # k > 1 compiles the plan immediately
    assert batch.shape == (mesh.n_vertices, 3)
    for j in range(3):
        standalone = op.matvec(np.ascontiguousarray(S[:, j]))
        assert np.max(np.abs(batch[:, j] - standalone)) <= 1e-12
