"""Tests for triangle Gaussian quadrature."""

import numpy as np
import pytest

from repro.bem.geometries import icosphere
from repro.bem.mesh import TriangleMesh
from repro.bem.quadrature import RULES, mesh_quadrature, triangle_rule


def integrate_monomial(rule_pts, rule_w, i, j):
    """Integral of x^i y^j over the reference triangle via a rule mapped
    to the triangle (0,0)-(1,0)-(0,1)."""
    x = rule_pts[:, 1]  # barycentric: (1-u-v, u, v) -> x=u, y=v
    y = rule_pts[:, 2]
    return 0.5 * np.sum(rule_w * x**i * y**j)


def exact_monomial(i, j):
    """∫∫_T x^i y^j dx dy over the unit right triangle = i! j! / (i+j+2)!"""
    from math import factorial

    return factorial(i) * factorial(j) / factorial(i + j + 2)


DEGREE_EXACT = {1: 1, 3: 2, 4: 3, 6: 4, 7: 5}


@pytest.mark.parametrize("k", sorted(RULES))
def test_rule_weights_sum_to_one(k):
    pts, w = triangle_rule(k)
    assert w.sum() == pytest.approx(1.0, rel=1e-12)
    assert pts.shape == (k, 3)
    assert np.allclose(pts.sum(axis=1), 1.0)


@pytest.mark.parametrize("k", sorted(RULES))
def test_rule_points_strictly_interior(k):
    pts, _ = triangle_rule(k)
    assert pts.min() > 0.0  # never on an edge or vertex


@pytest.mark.parametrize("k", sorted(RULES))
def test_polynomial_exactness(k):
    pts, w = triangle_rule(k)
    deg = DEGREE_EXACT[k]
    for i in range(deg + 1):
        for j in range(deg + 1 - i):
            got = integrate_monomial(pts, w, i, j)
            assert got == pytest.approx(exact_monomial(i, j), rel=1e-12, abs=1e-14), (
                k,
                i,
                j,
            )


def test_6_point_rule_not_exact_at_degree_5():
    pts, w = triangle_rule(6)
    got = integrate_monomial(pts, w, 5, 0)
    assert got != pytest.approx(exact_monomial(5, 0), rel=1e-12)


def test_unknown_rule():
    with pytest.raises(ValueError):
        triangle_rule(2)


def test_mesh_quadrature_total_weight():
    """Weights must sum to the total surface area."""
    m = icosphere(2)
    for k in (1, 3, 6):
        _, w, _ = mesh_quadrature(m, k)
        assert w.sum() == pytest.approx(m.total_area(), rel=1e-12)


def test_mesh_quadrature_element_map():
    m = icosphere(1)
    pts, w, elem = mesh_quadrature(m, 6)
    assert pts.shape == (m.n_triangles * 6, 3)
    assert elem.shape == (m.n_triangles * 6,)
    assert np.all(np.bincount(elem) == 6)


def test_mesh_quadrature_points_on_elements():
    """Each quadrature point must lie in the plane of its triangle."""
    v = np.array([[0, 0, 0], [2, 0, 0], [0, 3, 0], [0, 0, 4]], dtype=float)
    t = np.array([[0, 1, 2], [0, 1, 3]])
    m = TriangleMesh(v, t)
    pts, w, elem = mesh_quadrature(m, 3)
    # first element lies in z=0, second in y=0
    assert np.allclose(pts[elem == 0][:, 2], 0.0)
    assert np.allclose(pts[elem == 1][:, 1], 0.0)


def test_quadrature_integrates_linear_field():
    """∫ x dS over a triangle equals area * centroid_x — exact for k>=3."""
    v = np.array([[0, 0, 0], [1, 0, 0], [0, 1, 0]], dtype=float)
    m = TriangleMesh(v, np.array([[0, 1, 2]]))
    pts, w, _ = mesh_quadrature(m, 3)
    got = np.sum(w * pts[:, 0])
    assert got == pytest.approx(0.5 * (1 / 3), rel=1e-12)
