"""Tests for associated Legendre recurrences (vs scipy and identities)."""

import numpy as np
import pytest
from scipy.special import lpmv

from repro.multipole.legendre import legendre_table, legendre_theta_derivative_table


def scipy_pnm(n, m, x):
    """scipy's lpmv includes the Condon-Shortley phase; ours does not."""
    return (-1.0) ** m * lpmv(m, n, x)


def test_against_scipy():
    x = np.linspace(-0.999, 0.999, 41)
    pmax = 10
    P = legendre_table(x, pmax)
    for n in range(pmax + 1):
        for m in range(n + 1):
            expected = scipy_pnm(n, m, x)
            assert np.allclose(P[:, n, m], expected, rtol=1e-10, atol=1e-12), (n, m)


def test_values_at_poles():
    P = legendre_table(np.array([1.0, -1.0]), 6)
    # P_n^0(±1) = (±1)^n ; P_n^m(±1) = 0 for m > 0
    for n in range(7):
        assert P[0, n, 0] == pytest.approx(1.0)
        assert P[1, n, 0] == pytest.approx((-1.0) ** n)
        for m in range(1, n + 1):
            assert P[0, n, m] == 0.0
            assert P[1, n, m] == 0.0


def test_low_order_closed_forms():
    x = np.linspace(-1, 1, 21)
    s = np.sqrt(1 - x**2)
    P = legendre_table(x, 3)
    assert np.allclose(P[:, 0, 0], 1.0)
    assert np.allclose(P[:, 1, 0], x)
    assert np.allclose(P[:, 1, 1], s)
    assert np.allclose(P[:, 2, 0], 0.5 * (3 * x**2 - 1))
    assert np.allclose(P[:, 2, 1], 3 * x * s)
    assert np.allclose(P[:, 2, 2], 3 * (1 - x**2))


def test_upper_triangle_zero():
    P = legendre_table(np.array([0.3]), 5)
    for n in range(6):
        for m in range(n + 1, 6):
            assert P[0, n, m] == 0.0


def test_theta_derivative_vs_finite_difference():
    theta = np.linspace(0.05, np.pi - 0.05, 25)
    pmax = 8
    h = 1e-6
    P, dP = legendre_theta_derivative_table(np.cos(theta), pmax)
    Pp = legendre_table(np.cos(theta + h), pmax)
    Pm = legendre_table(np.cos(theta - h), pmax)
    fd = (Pp - Pm) / (2 * h)
    for n in range(pmax + 1):
        for m in range(n + 1):
            assert np.allclose(dP[:, n, m], fd[:, n, m], rtol=1e-5, atol=1e-6), (n, m)


def test_theta_derivative_pole_limit():
    """dP_n^1/dθ at θ=0 is n(n+1)/2, at θ=π it is (-1)^n n(n+1)/2."""
    P, dP = legendre_theta_derivative_table(np.array([1.0, -1.0]), 5)
    for n in range(1, 6):
        assert dP[0, n, 1] == pytest.approx(n * (n + 1) / 2)
        assert dP[1, n, 1] == pytest.approx((-1.0) ** n * n * (n + 1) / 2)
    # all other orders vanish at the poles
    for n in range(6):
        for m in range(n + 1):
            if m != 1:
                assert dP[0, n, m] == 0.0


def test_rejects_negative_degree():
    with pytest.raises(ValueError):
        legendre_table(np.array([0.0]), -1)
