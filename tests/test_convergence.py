"""Tests for growth-rate fitting helpers."""

import numpy as np
import pytest

from repro.analysis.convergence import fit_log_growth, fit_power_law, growth_factor


def test_power_law_exact():
    x = np.array([1e3, 4e3, 1.6e4, 6.4e4])
    y = 2.5 * x**0.67
    beta, c = fit_power_law(x, y)
    assert beta == pytest.approx(0.67, rel=1e-10)
    assert c == pytest.approx(2.5, rel=1e-10)


def test_power_law_noisy():
    rng = np.random.default_rng(0)
    x = np.logspace(2, 5, 12)
    y = 0.3 * x**1.5 * np.exp(rng.normal(scale=0.05, size=12))
    beta, _ = fit_power_law(x, y)
    assert beta == pytest.approx(1.5, abs=0.1)


def test_log_growth_exact():
    x = np.array([10.0, 100.0, 1000.0])
    y = 3.0 * np.log(x) + 7.0
    a, b = fit_log_growth(x, y)
    assert a == pytest.approx(3.0)
    assert b == pytest.approx(7.0)


def test_log_vs_power_discrimination():
    """A log-growing series fits a tiny power-law exponent."""
    x = np.logspace(3, 6, 10)
    y_log = np.log(x)
    beta, _ = fit_power_law(x, y_log)
    assert beta < 0.3  # much flatter than any polynomial growth


def test_growth_factor():
    assert growth_factor([2.0, 4.0, 8.0]) == pytest.approx(4.0)
    with pytest.raises(ValueError):
        growth_factor([1.0])
    with pytest.raises(ValueError):
        growth_factor([0.0, 1.0])


def test_validation():
    with pytest.raises(ValueError):
        fit_power_law([1.0], [2.0])
    with pytest.raises(ValueError):
        fit_power_law([1.0, -2.0], [1.0, 2.0])
    with pytest.raises(ValueError):
        fit_log_growth([1.0, 2.0], [1.0])
    with pytest.raises(ValueError):
        fit_log_growth([0.0, 2.0], [1.0, 2.0])
