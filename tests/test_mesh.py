"""Tests for triangle meshes and synthetic geometries."""

import numpy as np
import pytest

from repro.bem.geometries import (
    box,
    cylinder,
    gripper,
    icosphere,
    parametric_patch,
    propeller,
)
from repro.bem.mesh import TriangleMesh, merge_meshes, weld_vertices


def test_mesh_validation():
    v = np.array([[0, 0, 0], [1, 0, 0], [0, 1, 0]], dtype=float)
    t = np.array([[0, 1, 2]])
    m = TriangleMesh(v, t)
    m.validate()
    assert m.n_vertices == 3 and m.n_triangles == 1
    assert m.areas()[0] == pytest.approx(0.5)
    assert np.allclose(m.normals()[0], [0, 0, 1])
    assert np.allclose(m.centroids()[0], [1 / 3, 1 / 3, 0])
    with pytest.raises(ValueError):
        TriangleMesh(v, np.array([[0, 1, 5]]))
    with pytest.raises(ValueError):
        TriangleMesh(v[:, :2], t)


def test_merge_and_weld():
    v = np.array([[0, 0, 0], [1, 0, 0], [0, 1, 0]], dtype=float)
    t = np.array([[0, 1, 2]])
    m1 = TriangleMesh(v, t)
    m2 = TriangleMesh(v + np.array([1.0, 0, 0]), t)
    merged = merge_meshes([m1, m2])
    assert merged.n_vertices == 6 and merged.n_triangles == 2
    welded = weld_vertices(merged)
    # vertex (1,0,0) is shared
    assert welded.n_vertices == 5
    assert welded.n_triangles == 2
    with pytest.raises(ValueError):
        merge_meshes([])


def test_weld_drops_degenerate():
    v = np.array([[0, 0, 0], [1e-12, 0, 0], [1, 0, 0], [0, 1, 0]], dtype=float)
    t = np.array([[0, 1, 3], [0, 2, 3]])  # first becomes degenerate after welding
    w = weld_vertices(TriangleMesh(v, t), tol=1e-9)
    assert w.n_triangles == 1


def test_icosphere_properties():
    for sub in (0, 1, 2):
        m = icosphere(sub, radius=2.0)
        m.validate()
        assert m.n_triangles == 20 * 4**sub
        r = np.linalg.norm(m.vertices, axis=1)
        assert np.allclose(r, 2.0, rtol=1e-12)
    # surface area converges to 4 pi r^2
    m = icosphere(3, radius=1.0)
    assert m.total_area() == pytest.approx(4 * np.pi, rel=0.01)


def test_icosphere_closed_surface():
    """Closed orientable surface: V - E + F = 2 and every edge shared by
    exactly two triangles."""
    m = icosphere(2)
    edges = set()
    edge_count = {}
    for tri in m.triangles:
        for a, b in ((0, 1), (1, 2), (2, 0)):
            e = tuple(sorted((tri[a], tri[b])))
            edges.add(e)
            edge_count[e] = edge_count.get(e, 0) + 1
    assert all(c == 2 for c in edge_count.values())
    assert m.n_vertices - len(edges) + m.n_triangles == 2


def test_parametric_patch_plane():
    m = parametric_patch(
        lambda u, v: np.stack([u, v, np.zeros_like(u)], axis=-1), 4, 5
    )
    m.validate()
    assert m.n_triangles == 2 * 4 * 5
    assert m.total_area() == pytest.approx(1.0)
    with pytest.raises(ValueError):
        parametric_patch(lambda u, v: np.stack([u, v, u], axis=-1), 0, 3)


def test_box_area():
    m = box(size=(1.0, 2.0, 3.0), resolution=3)
    m.validate()
    assert m.total_area() == pytest.approx(2 * (1 * 2 + 2 * 3 + 1 * 3))


def test_cylinder_area():
    m = cylinder(radius=1.0, height=2.0, n_around=64, n_along=8)
    m.validate()
    expected = 2 * np.pi * 1.0 * 2.0 + 2 * np.pi * 1.0**2
    assert m.total_area() == pytest.approx(expected, rel=0.01)
    with pytest.raises(ValueError):
        cylinder(axis="w")


def test_propeller_scales_with_resolution():
    small = propeller(blade_res=6, hub_res=8)
    large = propeller(blade_res=12, hub_res=16)
    small.validate()
    large.validate()
    assert large.n_triangles > 2 * small.n_triangles
    # blades make it much wider than tall
    ext = small.vertices.max(axis=0) - small.vertices.min(axis=0)
    assert ext[0] > 2 * ext[2] and ext[1] > 2 * ext[2]


def test_propeller_blade_count():
    m2 = propeller(n_blades=2, blade_res=6)
    m4 = propeller(n_blades=4, blade_res=6)
    assert m4.n_triangles > m2.n_triangles
    with pytest.raises(ValueError):
        propeller(n_blades=0)


def test_gripper_structure():
    m = gripper(n_fingers=3, resolution=4)
    m.validate()
    # fingers extend in +z beyond the palm
    assert m.vertices[:, 2].max() > 0.5
    with pytest.raises(ValueError):
        gripper(n_fingers=0)


def test_surface_distribution_is_hollow():
    """The BEM point clouds must be surface-concentrated (paper: 'a bulk
    of the volume is empty')."""
    m = icosphere(3)
    r = np.linalg.norm(m.vertices, axis=1)
    assert r.min() > 0.99  # no interior vertices
