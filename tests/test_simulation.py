"""Tests for the leapfrog n-body driver."""

import numpy as np
import pytest

from repro import FixedDegree, LeapfrogIntegrator, SimulationState
from repro.data.distributions import plummer


def make_state(n=300, seed=0):
    rng = np.random.default_rng(seed)
    pos = plummer(n, seed=seed + 1, scale=0.1).copy()
    vel = rng.normal(scale=0.05, size=(n, 3))
    vel -= vel.mean(axis=0)
    return SimulationState(
        positions=pos, velocities=vel, masses=np.full(n, 1.0 / n)
    )


def test_energy_conservation_gravity():
    state = make_state()
    integ = LeapfrogIntegrator(
        degree_policy=FixedDegree(6), alpha=0.4, softening=0.01, sign=-1.0
    )
    integ.run(state, dt=2e-4, n_steps=10)
    drift = LeapfrogIntegrator.relative_energy_drift(state)
    assert drift < 1e-2
    assert state.step == 10
    assert state.time == pytest.approx(10 * 2e-4)
    assert len(state.energy_history) == 11


def test_gravitational_energy_negative_for_bound_system():
    state = make_state()
    integ = LeapfrogIntegrator(degree_policy=FixedDegree(6), softening=0.01)
    integ.forces(state)
    kin, pot, tot = integ.energy(state)
    assert pot < 0  # attractive self-gravity
    assert kin > 0
    assert tot == pytest.approx(kin + pot)


def test_time_reversibility():
    """Leapfrog is time-reversible: integrate forward then backward
    (negated velocities) and recover the initial positions."""
    state = make_state(n=150)
    pos0 = state.positions.copy()
    integ = LeapfrogIntegrator(degree_policy=FixedDegree(8), alpha=0.3, softening=0.02)
    integ.run(state, dt=5e-4, n_steps=5, record_every=0)
    state.velocities *= -1.0
    integ.run(state, dt=5e-4, n_steps=5, record_every=0)
    assert np.allclose(state.positions, pos0, atol=1e-7)


def test_momentum_conservation():
    """Treecode forces are not exactly pairwise-antisymmetric, but total
    momentum must stay near zero for a balanced system."""
    state = make_state(n=200)
    integ = LeapfrogIntegrator(degree_policy=FixedDegree(6), alpha=0.4, softening=0.01)
    p0 = np.abs((state.masses[:, None] * state.velocities).sum(axis=0)).max()
    integ.run(state, dt=2e-4, n_steps=5, record_every=0)
    p1 = np.abs((state.masses[:, None] * state.velocities).sum(axis=0)).max()
    assert p1 < p0 + 1e-4


def test_repulsive_sign():
    """sign=+1 (electrostatics, like charges): particles fly apart —
    mean pairwise distance grows."""
    rng = np.random.default_rng(3)
    pos = 0.5 + rng.normal(scale=0.02, size=(50, 3))
    state = SimulationState(
        positions=pos.copy(),
        velocities=np.zeros((50, 3)),
        masses=np.ones(50),
    )
    integ = LeapfrogIntegrator(degree_policy=FixedDegree(6), sign=+1.0, softening=0.005)
    d0 = np.linalg.norm(pos - pos.mean(axis=0), axis=1).mean()
    integ.run(state, dt=1e-5, n_steps=5, record_every=0)
    d1 = np.linalg.norm(state.positions - state.positions.mean(axis=0), axis=1).mean()
    assert d1 > d0


def test_validation():
    state = make_state(n=50)
    integ = LeapfrogIntegrator()
    with pytest.raises(ValueError):
        integ.run(state, dt=0.0, n_steps=1)
    with pytest.raises(ValueError):
        integ.run(state, dt=1e-3, n_steps=-1)
    with pytest.raises(ValueError):
        LeapfrogIntegrator(sign=0.5)


def test_zero_steps_noop():
    state = make_state(n=50)
    pos0 = state.positions.copy()
    LeapfrogIntegrator(degree_policy=FixedDegree(4)).run(state, dt=1e-3, n_steps=0)
    assert np.array_equal(state.positions, pos0)
    assert state.step == 0
