"""Tests for the fault-tolerance layer: injection, retry, guards, checkpoints."""

import json
import time

import numpy as np
import pytest

from repro import AdaptiveChargeDegree, Treecode
from repro.bem.gmres import gmres
from repro.experiments.table3 import run_table3
from repro.parallel.executors import _direct_block, evaluate_parallel
from repro.robust import faults as faults_mod
from repro.robust.checkpoint import Checkpoint, CheckpointMismatch, cached_step
from repro.robust.faults import (
    FaultInjector,
    FaultRule,
    InjectedFault,
    parse_fault_spec,
    set_injector,
    suppress_faults,
)
from repro.robust.guards import (
    BoundAccountingError,
    NumericalCorruptionError,
    check_bound_accounting,
    check_finite,
    solve_with_recovery,
)
from repro.robust.retry import AttemptTimeout, RetryExhausted, RetryPolicy, retry_call

FAST = RetryPolicy(max_retries=3, base_delay=0.0, max_delay=0.0)


@pytest.fixture
def injector_guard():
    """Snapshot the active injector and restore it afterwards.

    Restoring (rather than clearing) keeps env-driven injection from the
    CI fault-injection job intact for whatever tests run next.
    """
    prev = faults_mod.active_injector()
    yield
    set_injector(prev)


@pytest.fixture
def clean_injector(injector_guard):
    set_injector(None)


@pytest.fixture
def cloud_and_serial(small_cloud):
    pts, q = small_cloud
    tc = Treecode(pts, q, degree_policy=AdaptiveChargeDegree(p0=3, alpha=0.7))
    serial = tc.evaluate()
    return tc, serial


# ----------------------------------------------------------------------
# Fault spec parsing and injector determinism
# ----------------------------------------------------------------------


class TestFaultSpec:
    def test_parse_basic(self):
        rules = parse_fault_spec("block_error:0.5")
        assert rules == [FaultRule(mode="block_error", rate=0.5, param=0.0)]
        assert rules[0].site == "parallel.block"
        assert rules[0].kind == "error"

    def test_parse_param_and_multiple(self):
        rules = parse_fault_spec("block_hang:0.1:0.05, coeff_nan:1.0")
        assert len(rules) == 2
        assert rules[0].param == pytest.approx(0.05)
        assert rules[1].site == "treecode.coeffs"

    @pytest.mark.parametrize(
        "bad",
        ["nosuchmode:0.5", "block_error", "block_error:1.5", "block_error:-0.1",
         "block_hang:0.5:-1"],
    )
    def test_parse_rejects(self, bad):
        with pytest.raises(ValueError):
            parse_fault_spec(bad)

    def test_draws_deterministic_across_injectors(self):
        spec = parse_fault_spec("block_error:0.5")
        a = FaultInjector(spec, seed=7)
        b = FaultInjector(spec, seed=7)

        def fires(inj):
            out = []
            for _ in range(50):
                try:
                    inj.maybe_fault("parallel.block")
                    out.append(False)
                except InjectedFault:
                    out.append(True)
            return out

        seq_a, seq_b = fires(a), fires(b)
        assert seq_a == seq_b
        assert any(seq_a) and not all(seq_a)
        assert fires(FaultInjector(spec, seed=8)) != seq_a

    def test_suppress_faults(self, clean_injector):
        set_injector(FaultInjector(parse_fault_spec("block_error:1.0"), seed=0))
        with pytest.raises(InjectedFault):
            faults_mod.maybe_fault("parallel.block")
        with suppress_faults():
            faults_mod.maybe_fault("parallel.block")  # no raise
        x = np.ones(8)
        set_injector(FaultInjector(parse_fault_spec("block_nan:1.0"), seed=0))
        bad = faults_mod.maybe_corrupt("parallel.block", x)
        assert np.isnan(bad).any() and np.isfinite(x).all()

    def test_sites_not_armed_are_untouched(self, clean_injector):
        set_injector(FaultInjector(parse_fault_spec("block_error:1.0"), seed=0))
        faults_mod.maybe_fault("gmres.matvec")  # different site: no raise
        x = np.ones(4)
        assert faults_mod.maybe_corrupt("fmm.potential", x) is x


# ----------------------------------------------------------------------
# Retry policy
# ----------------------------------------------------------------------


class TestRetry:
    def test_succeeds_after_transient_failures(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise RuntimeError("transient")
            return 42

        value, attempts = retry_call(flaky, FAST, site="t")
        assert value == 42 and attempts == 3

    def test_exhaustion_chains_last_error(self):
        def always():
            raise ValueError("boom")

        with pytest.raises(RetryExhausted) as ei:
            retry_call(always, FAST, site="t")
        assert ei.value.attempts == 4
        assert isinstance(ei.value.last, ValueError)
        assert isinstance(ei.value.__cause__, ValueError)

    def test_deadline_times_out_hung_attempt(self):
        policy = RetryPolicy(max_retries=0, base_delay=0.0, max_delay=0.0, deadline=0.05)

        def hang():
            time.sleep(5.0)

        t0 = time.time()
        with pytest.raises(RetryExhausted) as ei:
            retry_call(hang, policy, site="t")
        assert time.time() - t0 < 2.0
        assert isinstance(ei.value.last, AttemptTimeout)

    def test_hang_then_recover(self):
        calls = []

        def slow_once():
            calls.append(1)
            if len(calls) == 1:
                time.sleep(5.0)
            return "ok"

        policy = RetryPolicy(max_retries=2, base_delay=0.0, max_delay=0.0, deadline=0.05)
        value, attempts = retry_call(slow_once, policy, site="t")
        assert value == "ok" and attempts == 2

    @pytest.mark.parametrize(
        "kwargs",
        [dict(max_retries=-1), dict(base_delay=-0.1), dict(base_delay=1.0, max_delay=0.5),
         dict(deadline=0.0)],
    )
    def test_policy_validation(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


# ----------------------------------------------------------------------
# Parallel evaluation under injected faults (acceptance criterion)
# ----------------------------------------------------------------------


class TestParallelRecovery:
    def _assert_matches_serial(self, par, serial):
        scale = np.linalg.norm(serial.potential)
        assert np.linalg.norm(par.potential - serial.potential) <= 1e-12 * scale
        assert par.stats.n_pp_pairs == serial.stats.n_pp_pairs
        assert par.stats.n_pc_interactions == serial.stats.n_pc_interactions

    def test_block_errors_retried_to_exact_result(self, clean_injector, cloud_and_serial):
        tc, serial = cloud_and_serial
        set_injector(FaultInjector(parse_fault_spec("block_error:0.5"), seed=3))
        par = evaluate_parallel(tc, n_threads=4, retry=FAST)
        self._assert_matches_serial(par, serial)
        assert par.n_retries > 0

    def test_total_failure_falls_back_serially(self, clean_injector, cloud_and_serial):
        tc, serial = cloud_and_serial
        set_injector(FaultInjector(parse_fault_spec("block_error:1.0"), seed=0))
        par = evaluate_parallel(tc, n_threads=4, retry=FAST)
        self._assert_matches_serial(par, serial)
        assert par.n_fallbacks == par.n_blocks

    def test_corrupted_blocks_caught_and_recovered(self, clean_injector, cloud_and_serial):
        tc, serial = cloud_and_serial
        set_injector(FaultInjector(parse_fault_spec("block_nan:0.5"), seed=1))
        par = evaluate_parallel(tc, n_threads=4, retry=FAST)
        self._assert_matches_serial(par, serial)
        assert par.n_retries > 0 or par.n_fallbacks > 0

    def test_hung_blocks_abandoned_and_recovered(self, clean_injector, cloud_and_serial):
        tc, serial = cloud_and_serial
        set_injector(FaultInjector(parse_fault_spec("block_hang:0.3:0.2"), seed=2))
        policy = RetryPolicy(max_retries=2, base_delay=0.0, max_delay=0.0, deadline=0.02)
        par = evaluate_parallel(tc, n_threads=4, retry=policy)
        self._assert_matches_serial(par, serial)

    def test_direct_block_stats_and_exactness(self, clean_injector, cloud_and_serial):
        tc, serial = cloud_and_serial
        n = tc.tree.n_particles
        sub = np.arange(17, dtype=np.int64)
        phi, stats = _direct_block(tc, sub)
        assert stats.n_targets == sub.size
        assert stats.n_pp_pairs == sub.size * (n - 1)
        # direct summation is exact: within the treecode's own error bound
        res = tc.evaluate()
        sorted_phi = res.potential[tc.tree.perm] if hasattr(tc.tree, "perm") else None
        if sorted_phi is not None:
            rel = np.abs(phi - sorted_phi[sub]) / np.abs(phi).max()
            assert rel.max() < 1e-2  # treecode approximates the exact direct value


# ----------------------------------------------------------------------
# Numerical guards
# ----------------------------------------------------------------------


class TestGuards:
    def test_check_finite_passes_through(self):
        x = np.arange(4.0)
        assert check_finite("t", x) is x

    def test_check_finite_diagnostic(self):
        x = np.ones(10)
        x[3] = np.nan
        x[7] = np.inf
        with pytest.raises(NumericalCorruptionError) as ei:
            check_finite("unit.test", x, context="unit vector")
        msg = str(ei.value)
        assert "unit.test" in msg and "unit vector" in msg
        assert "2" in msg and "3" in msg  # bad count and first bad index

    def test_nan_charges_rejected_at_construction(self, small_cloud):
        pts, q = small_cloud
        q = q.copy()
        q[5] = np.nan
        with pytest.raises(NumericalCorruptionError):
            Treecode(pts, q)

    def test_coeff_injection_fails_loudly(self, clean_injector, small_cloud):
        pts, q = small_cloud
        set_injector(FaultInjector(parse_fault_spec("coeff_nan:1.0"), seed=0))
        with pytest.raises(NumericalCorruptionError, match="treecode.coeffs"):
            Treecode(pts, q, degree_policy=AdaptiveChargeDegree(p0=3, alpha=0.7))

    def test_bound_accounting_agrees(self):
        check_bound_accounting("t", np.array([1.0, 2.0]), {0: 1.5, 1: 1.5})

    def test_bound_accounting_mismatch_raises(self):
        with pytest.raises(BoundAccountingError):
            check_bound_accounting("t", np.array([1.0, 2.0]), {0: 5.0})

    def test_bound_accounting_rejects_nonfinite(self):
        with pytest.raises(NumericalCorruptionError):
            check_bound_accounting("t", np.array([np.nan]), {0: 0.0})

    def test_evaluation_bounds_still_consistent(self, clean_injector, small_cloud):
        """The Theorem-1 ledger check is exercised by a bounded evaluation."""
        pts, q = small_cloud
        tc = Treecode(pts, q, degree_policy=AdaptiveChargeDegree(p0=3, alpha=0.7))
        res = tc.evaluate(accumulate_bounds=True)
        assert res.error_bound is not None


# ----------------------------------------------------------------------
# GMRES breakdown, stagnation, and recovery
# ----------------------------------------------------------------------


def _spd_system(n=60, seed=0):
    rng = np.random.default_rng(seed)
    A = rng.standard_normal((n, n))
    A = A @ A.T + n * np.eye(n)
    b = rng.standard_normal(n)
    return A, b


class TestGmresRecovery:
    def test_breakdown_flag_on_injected_nan(self, clean_injector):
        A, b = _spd_system()
        set_injector(FaultInjector(parse_fault_spec("gmres_nan:1.0"), seed=0))
        res = gmres(lambda v: A @ v, b, restart=10, tol=1e-10)
        assert res.breakdown and not res.converged
        assert np.isfinite(res.x).all()

    def test_healthy_solve_takes_no_recovery_action(self, clean_injector):
        A, b = _spd_system()
        out = solve_with_recovery(lambda v: A @ v, b, restart=20, tol=1e-10)
        assert out.result.converged and not out.recovered

    def test_recovery_from_persistent_breakdown_via_dense(self, clean_injector):
        """Injection poisons every Krylov matvec; only the dense fallback,
        which calls the raw operator, can finish the solve."""
        A, b = _spd_system()
        set_injector(FaultInjector(parse_fault_spec("gmres_nan:1.0"), seed=0))
        out = solve_with_recovery(lambda v: A @ v, b, restart=5, tol=1e-8)
        assert out.result.converged
        assert any(a.startswith("dense_solve") for a in out.actions)
        assert any("escalate_restart" in a for a in out.actions)
        x_exact = np.linalg.solve(A, b)
        assert np.linalg.norm(out.result.x - x_exact) < 1e-6 * np.linalg.norm(x_exact)

    def test_escalation_rescues_tight_restart(self, clean_injector):
        A, b = _spd_system(n=80, seed=1)
        out = solve_with_recovery(lambda v: A @ v, b, restart=1, tol=1e-12, maxiter=3)
        assert out.result.converged
        assert out.recovered

    def test_stagnation_flag(self, clean_injector):
        """Restarted GMRES on a cyclic shift makes exactly zero progress
        per cycle, tripping the stagnation detector."""
        n = 40
        A = np.roll(np.eye(n), 1, axis=0)
        b = np.zeros(n)
        b[0] = 1.0
        res = gmres(lambda v: A @ v, b, restart=1, tol=1e-12, maxiter=200)
        assert not res.converged
        assert res.stagnated


# ----------------------------------------------------------------------
# Checkpoint / resume
# ----------------------------------------------------------------------


class TestCheckpoint:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "ck.json"
        ck = Checkpoint(path, meta={"exp": "t", "seed": 0})
        ck.save("a", {"x": 1.5})
        ck.save("b", [1, 2, 3])
        again = Checkpoint(path, meta={"exp": "t", "seed": 0})
        assert len(again) == 2 and "a" in again
        assert again.get("a") == {"x": 1.5} and again.get("b") == [1, 2, 3]

    def test_meta_mismatch_rejected(self, tmp_path):
        path = tmp_path / "ck.json"
        Checkpoint(path, meta={"seed": 0}).save("a", 1)
        with pytest.raises(CheckpointMismatch, match="fingerprint"):
            Checkpoint(path, meta={"seed": 1})

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_text(json.dumps({"version": 99, "meta": {}, "rows": {}}))
        with pytest.raises(CheckpointMismatch, match="version"):
            Checkpoint(path)

    def test_no_tmp_droppings(self, tmp_path):
        path = tmp_path / "ck.json"
        ck = Checkpoint(path)
        for i in range(5):
            ck.save(f"k{i}", i)
        assert [p.name for p in tmp_path.iterdir()] == ["ck.json"]

    def test_clear(self, tmp_path):
        path = tmp_path / "ck.json"
        ck = Checkpoint(path)
        ck.save("a", 1)
        ck.clear()
        assert not path.exists() and len(ck) == 0

    def test_cached_step_replays(self, tmp_path):
        path = tmp_path / "ck.json"
        calls = []

        def step():
            calls.append(1)
            return {"v": 7}

        ck = Checkpoint(path)
        assert cached_step(ck, "s", step) == {"v": 7}
        assert cached_step(ck, "s", step) == {"v": 7}
        assert len(calls) == 1
        fresh = Checkpoint(path)
        assert cached_step(fresh, "s", step) == {"v": 7}
        assert len(calls) == 1

    def test_cached_step_without_checkpoint(self):
        assert cached_step(None, "s", lambda: 3) == 3


class TestTable3Resume:
    RES = dict(propeller_res=4, gripper_res=3)

    def test_interrupted_sweep_resumes_byte_identical(self, tmp_path, monkeypatch,
                                                      clean_injector):
        import repro.experiments.table3 as t3

        path = tmp_path / "table3.json"
        real = t3.run_table3_geometry

        def dies_on_gripper(name, *args, **kwargs):
            if name == "gripper":
                raise KeyboardInterrupt
            return real(name, *args, **kwargs)

        monkeypatch.setattr(t3, "run_table3_geometry", dies_on_gripper)
        with pytest.raises(KeyboardInterrupt):
            run_table3(checkpoint=Checkpoint(path, meta={"s": 1}), **self.RES)
        monkeypatch.setattr(t3, "run_table3_geometry", real)

        saved = json.loads(path.read_text())
        assert list(saved["rows"]) == ["geometry:propeller"]
        stored_prop = saved["rows"]["geometry:propeller"]

        rows, info = run_table3(checkpoint=Checkpoint(path, meta={"s": 1}), **self.RES)
        assert {r.geometry for r in rows} == {"propeller", "gripper"}
        # resumed rows replay the stored payload exactly — including the
        # measured wall times, which a recomputation could never reproduce
        prop_rows = [r for r in rows if r.geometry == "propeller"]
        assert [vars(r) for r in prop_rows] == stored_prop["rows"]
        assert info["propeller"] == stored_prop["gmres"]

        final = json.loads(path.read_text())
        assert set(final["rows"]) == {"geometry:propeller", "geometry:gripper"}
        assert final["rows"]["geometry:propeller"] == stored_prop
