"""Cross-module integration tests: full pipelines on every workload."""

import numpy as np
import pytest

from repro import AdaptiveChargeDegree, FixedDegree, Treecode, direct_potential
from repro.analysis.metrics import relative_l2_error
from repro.data.distributions import (
    gaussian_blob,
    overlapping_gaussians,
    plummer,
    sphere_shell,
    uniform_cube,
    unit_charges,
)
from repro.fmm import UniformFMM


@pytest.mark.parametrize(
    "gen",
    [uniform_cube, gaussian_blob, overlapping_gaussians, sphere_shell, plummer],
    ids=["uniform", "gaussian", "overlap", "shell", "plummer"],
)
def test_treecode_on_all_distributions(gen):
    n = 700
    pts = gen(n, seed=5)
    q = unit_charges(n, seed=6, signed=True)
    ref = direct_potential(pts, q)
    for policy in (FixedDegree(5), AdaptiveChargeDegree(p0=5, alpha=0.5)):
        tc = Treecode(pts, q, degree_policy=policy, alpha=0.5)
        err = relative_l2_error(tc.evaluate().potential, ref)
        assert err < 5e-3, f"{gen.__name__}/{policy.name}: {err}"


def test_adaptive_never_worse_than_fixed_same_p0():
    """Across all workloads, the improved method's error is at most the
    original method's (same p0, same alpha)."""
    for gen in (uniform_cube, gaussian_blob, overlapping_gaussians):
        pts = gen(900, seed=11)
        q = unit_charges(900, seed=12, signed=True)
        ref = direct_potential(pts, q)
        e_fix = relative_l2_error(
            Treecode(pts, q, degree_policy=FixedDegree(4), alpha=0.5).evaluate().potential,
            ref,
        )
        e_ada = relative_l2_error(
            Treecode(pts, q, degree_policy=AdaptiveChargeDegree(p0=4, alpha=0.5), alpha=0.5)
            .evaluate()
            .potential,
            ref,
        )
        assert e_ada <= e_fix * 1.05, gen.__name__


def test_treecode_and_fmm_agree():
    pts = uniform_cube(1200, seed=3)
    q = unit_charges(1200, seed=4, signed=True)
    tc = Treecode(pts, q, degree_policy=FixedDegree(8), alpha=0.4).evaluate().potential
    fm = UniformFMM(pts, q, level=3, degrees=8).evaluate()
    ref = direct_potential(pts, q)
    assert relative_l2_error(tc, ref) < 2e-4
    assert relative_l2_error(fm, ref) < 2e-4
    assert relative_l2_error(tc, fm) < 4e-4


def test_terms_grow_nlogn_like():
    """Treecode terms per particle should grow ~log n, far below O(n)."""
    counts = []
    for n in (500, 2000, 8000):
        pts = uniform_cube(n, seed=n)
        q = unit_charges(n)
        tc = Treecode(pts, q, degree_policy=FixedDegree(4), alpha=0.5)
        s = tc.evaluate().stats
        counts.append(s.n_terms / n)
    # per-particle terms grow, but by far less than the 4x/16x of O(n)
    assert counts[1] / counts[0] < 3.0
    assert counts[2] / counts[1] < 3.0


def test_paper_shape_bound_growth():
    """The Table-1/Fig-2 shape: the aggregate error *bound* of the fixed-
    degree method grows with n while the improved method's stays nearly
    flat (both at the same p0)."""
    ratios = []
    for n in (1000, 4000):
        pts = uniform_cube(n, seed=n)
        q = unit_charges(n, seed=n + 1, signed=True)
        b = {}
        for name, policy in (
            ("orig", FixedDegree(4)),
            ("new", AdaptiveChargeDegree(p0=4, alpha=0.4)),
        ):
            tc = Treecode(pts, q, degree_policy=policy, alpha=0.4)
            res = tc.evaluate(accumulate_bounds=True)
            b[name] = np.linalg.norm(res.error_bound) / np.sqrt(n)
        ratios.append(b["orig"] / b["new"])
    # the gap widens with n
    assert ratios[1] > ratios[0] > 1.0
