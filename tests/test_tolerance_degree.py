"""Tests for degree_for_tolerance and the ToleranceDegree policy."""

import numpy as np
import pytest

from repro import FixedDegree, ToleranceDegree, Treecode, direct_potential
from repro.core.bounds import degree_for_tolerance, theorem1_bound
from repro.tree.octree import build_octree


def test_degree_for_tolerance_meets_bound():
    rng = np.random.default_rng(0)
    for _ in range(30):
        A = rng.uniform(0.1, 100)
        a = rng.uniform(0.01, 1.0)
        r = a * rng.uniform(1.5, 5.0)
        tol = 10.0 ** rng.uniform(-10, -2)
        p = int(degree_for_tolerance(A, a, r, tol))
        if p < 60:
            assert theorem1_bound(A, a, r, p) <= tol * (1 + 1e-9)
            if p > 0:
                # minimality: one degree less does not meet the tolerance
                assert theorem1_bound(A, a, r, p - 1) > tol


def test_degree_for_tolerance_edge_cases():
    # unreachable geometry -> p_max
    assert degree_for_tolerance(1.0, 1.0, 0.9, 1e-6, p_max=20) == 20
    # zero radius -> monopole exact
    assert degree_for_tolerance(1.0, 0.0, 1.0, 1e-12) == 0
    # loose tolerance -> low degree
    assert degree_for_tolerance(1.0, 0.1, 1.0, 10.0) == 0
    with pytest.raises(ValueError):
        degree_for_tolerance(1.0, 0.1, 1.0, 0.0)


def test_degree_for_tolerance_monotone_in_tol():
    ps = [
        int(degree_for_tolerance(5.0, 0.2, 1.0, tol))
        for tol in (1e-2, 1e-4, 1e-6, 1e-8)
    ]
    assert all(b >= a for a, b in zip(ps, ps[1:]))


def test_tolerance_policy_controls_error(rng):
    pts = rng.random((800, 3))
    q = rng.uniform(0.5, 1.5, 800)
    ref = direct_potential(pts, q)
    errs = []
    for tol in (1e-1, 1e-3, 1e-5):
        tc = Treecode(
            pts, q, degree_policy=ToleranceDegree(tol=tol, alpha=0.5), alpha=0.5
        )
        res = tc.evaluate(accumulate_bounds=True)
        errs.append(np.abs(res.potential - ref).max())
        # bound still rigorous
        assert np.all(np.abs(res.potential - ref) <= res.error_bound + 1e-12)
    assert errs[0] > errs[1] > errs[2]


def test_tolerance_policy_per_interaction_bound(rng):
    """Every accepted interaction's Theorem-1 bound at the worst legal
    distance is below tol (up to the p_max clamp)."""
    pts = rng.random((500, 3))
    q = rng.uniform(0.5, 1.5, 500)
    tol = 1e-4
    pol = ToleranceDegree(tol=tol, alpha=0.5, p_max=40)
    tree = build_octree(pts, q)
    p = pol.degrees(tree)
    ok = p < 40
    a = tree.radius[ok]
    bound = theorem1_bound(tree.abs_charge[ok], a, np.maximum(a / 0.5, 1e-300), p[ok])
    inner = a > 0
    assert np.all(bound[inner] <= tol * (1 + 1e-9))


def test_tolerance_policy_validation():
    with pytest.raises(ValueError):
        ToleranceDegree(tol=-1.0)
    with pytest.raises(ValueError):
        ToleranceDegree(alpha=1.5)
    with pytest.raises(ValueError):
        ToleranceDegree(p_min=5, p_max=3)
