"""Focused tests for the machine-model internals."""

import numpy as np
import pytest

from repro.parallel.machine import MachineModel, SimulationResult, schedule_blocks, simulate
from repro.parallel.partition import BlockProfile


def toy_profile(nb=10, seed=0):
    rng = np.random.default_rng(seed)
    terms = rng.uniform(1e4, 1e5, nb)
    pairs = rng.uniform(1e2, 1e3, nb)
    # each block touches 3 clusters out of 20, with 25 terms each
    pb, pn = [], []
    for b in range(nb):
        for node in rng.choice(20, 3, replace=False):
            pb.append(b)
            pn.append(node)
    pb = np.asarray(pb)
    pn = np.asarray(pn)
    return BlockProfile(
        blocks=[np.arange(4)] * nb,
        compute_terms=terms,
        compute_pairs=pairs,
        fetch_terms=np.full(nb, 75.0),
        pair_blocks=pb,
        pair_nodes=pn,
        pair_terms=np.full(pb.size, 25.0),
    )


def test_single_proc_is_identity():
    sim = simulate(toy_profile(), MachineModel(n_procs=1))
    assert sim.speedup == 1.0
    assert sim.efficiency == 1.0
    assert sim.load_imbalance == 1.0


def test_serial_time_independent_of_procs():
    prof = toy_profile()
    times = {P: simulate(prof, MachineModel(n_procs=P)).serial_time for P in (1, 4, 16)}
    assert len(set(times.values())) == 1


def test_fetch_cost_lowers_speedup():
    prof = toy_profile()
    cheap = simulate(prof, MachineModel(n_procs=4, t_fetch_remote=0.0))
    dear = simulate(prof, MachineModel(n_procs=4, t_fetch_remote=1000.0, cache_reuse=0.0))
    assert dear.speedup < cheap.speedup


def test_cache_reuse_recovers_speedup():
    prof = toy_profile()
    cold = simulate(prof, MachineModel(n_procs=4, t_fetch_remote=100.0, cache_reuse=0.0))
    warm = simulate(prof, MachineModel(n_procs=4, t_fetch_remote=100.0, cache_reuse=0.99))
    assert warm.speedup > cold.speedup


def test_shared_clusters_fetched_once_per_proc():
    """If all blocks touch the same clusters, the per-proc fetch volume
    must not scale with the number of blocks."""
    nb = 12
    pb = np.repeat(np.arange(nb), 2)
    pn = np.tile(np.array([0, 1]), nb)
    prof = BlockProfile(
        blocks=[np.arange(2)] * nb,
        compute_terms=np.full(nb, 1000.0),
        compute_pairs=np.zeros(nb),
        fetch_terms=np.full(nb, 50.0),
        pair_blocks=pb,
        pair_nodes=pn,
        pair_terms=np.full(pb.size, 25.0),
    )
    model = MachineModel(n_procs=2, t_fetch_remote=1.0, cache_reuse=0.0, t_block_overhead=0.0)
    sim = simulate(prof, model, strategy="cyclic")
    # per proc: compute 6*1000 + fetch of 2 clusters * 25 * (1/2 remote)
    expected = 6000.0 + 2 * 25.0 * 0.5
    assert sim.parallel_time == pytest.approx(expected)


def test_schedule_cyclic_round_robin():
    a = schedule_blocks(np.ones(7), 3, "cyclic")
    assert list(a) == [0, 1, 2, 0, 1, 2, 0]


def test_schedule_contiguous_ranges():
    a = schedule_blocks(np.ones(9), 3, "contiguous")
    assert list(a) == [0, 0, 0, 1, 1, 1, 2, 2, 2]


def test_schedule_lpt_optimal_here():
    costs = np.array([7.0, 5.0, 4.0, 4.0, 2.0])
    a = schedule_blocks(costs, 2, "lpt")
    loads = np.bincount(a, weights=costs, minlength=2)
    assert loads.max() == pytest.approx(11.0)  # optimal makespan


def test_result_properties():
    sim = SimulationResult(
        n_procs=4,
        serial_time=100.0,
        parallel_time=40.0,
        proc_times=np.array([40.0, 30.0, 20.0, 10.0]),
        assignment=np.zeros(1, dtype=np.int64),
    )
    assert sim.speedup == pytest.approx(2.5)
    assert sim.efficiency == pytest.approx(0.625)
    assert sim.load_imbalance == pytest.approx(40.0 / 25.0)
