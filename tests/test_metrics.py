"""Tests for error metrics and table formatting."""

import numpy as np
import pytest

from repro.analysis.metrics import (
    absolute_l2_error,
    error_report,
    max_relative_error,
    relative_l2_error,
)
from repro.analysis.tables import fmt_count, format_series, format_table


def test_relative_l2():
    a = np.array([1.0, 2.0, 2.0])
    b = np.array([1.0, 2.0, 3.0])
    assert relative_l2_error(b, b) == 0.0
    assert relative_l2_error(a, b) == pytest.approx(1.0 / np.sqrt(14))


def test_relative_l2_zero_reference():
    assert relative_l2_error(np.array([3.0, 4.0]), np.zeros(2)) == pytest.approx(5.0)


def test_max_relative():
    a = np.array([1.0, 2.0])
    b = np.array([1.5, 2.0])
    assert max_relative_error(a, b) == pytest.approx(0.25)


def test_absolute_l2():
    assert absolute_l2_error(np.array([3.0, 0.0]), np.array([0.0, 4.0])) == 5.0


def test_shape_mismatch():
    with pytest.raises(ValueError):
        relative_l2_error(np.zeros(3), np.zeros(4))
    with pytest.raises(ValueError):
        max_relative_error(np.zeros(3), np.zeros(4))
    with pytest.raises(ValueError):
        absolute_l2_error(np.zeros((2, 2)), np.zeros(4))


def test_error_report_keys(rng):
    a = rng.random(10)
    b = a + 1e-6
    rep = error_report(b, a)
    assert set(rep) == {"rel_l2", "max_rel", "abs_l2"}
    assert all(v >= 0 for v in rep.values())


def test_fmt_count():
    assert fmt_count(12) == "12"
    assert fmt_count(4500) == "4.5K"
    assert fmt_count(12_300_000) == "12.3M"
    assert fmt_count(2.5e9) == "2.50B"


def test_format_table_alignment():
    out = format_table(["n", "err"], [[1000, 1.234e-5], [20000, 5.6e-7]], title="T1")
    lines = out.splitlines()
    assert lines[0] == "T1"
    assert "n" in lines[2] and "err" in lines[2]
    assert len(lines) == 6
    # all rows same width
    widths = {len(l) for l in lines[2:]}
    assert len(widths) == 1


def test_format_series():
    out = format_series("err", [1, 2], [0.1, 0.01], xlabel="n", ylabel="e")
    assert "err" in out and "0.1" in out
    assert len(out.splitlines()) == 3
