"""Tests for the rotation-accelerated translation pipeline: Wigner-d
rotation operators, axial O(p^3) kernels, the cluster/FMM backend knob,
and the bounded translation operator caches."""

import numpy as np
import pytest

from repro import FixedDegree, Treecode
from repro.direct import pairwise_potential
from repro.multipole.harmonics import cart_to_sph, ncoef, sph_harmonics
from repro.multipole.rotations import (
    RotationCache,
    build_rotation_operators,
    canonical_directions,
    direction_keys,
    rotate_packed,
    wigner_d,
)
from repro.multipole.translations import (
    axial_l2l,
    axial_m2l,
    axial_m2m,
    l2l,
    l2l_rotated,
    m2l,
    m2l_rotated,
    m2m,
    m2m_rotated,
    translation_cache_stats,
)
from repro.parallel import evaluate_plan_parallel
from repro.parallel.partition import (
    ROTATION_CROSSOVER_P,
    resolve_backend,
    translation_cost,
)
from repro.perf.cluster import batched_m2l
from repro.robust import faults as faults_mod
from repro.robust.faults import FaultInjector, parse_fault_spec, set_injector
from repro.robust.retry import RetryPolicy

FAST = RetryPolicy(max_retries=3, base_delay=0.0, max_delay=0.0)


@pytest.fixture
def injector_guard():
    prev = faults_mod.active_injector()
    yield
    set_injector(prev)


def _unit_dirs(rng, k):
    u = rng.standard_normal((k, 3))
    return u / np.linalg.norm(u, axis=1, keepdims=True)


def _conj_symmetric_rows(rng, b, p):
    """Random packed rows with real m=0 columns (physical expansions)."""
    C = rng.standard_normal((b, ncoef(p))) + 1j * rng.standard_normal(
        (b, ncoef(p))
    )
    for n in range(p + 1):
        C[:, n * (n + 1) // 2] = C[:, n * (n + 1) // 2].real
    return C


# ----------------------------------------------------------------------
# Wigner-d construction and packed rotation operators
# ----------------------------------------------------------------------


class TestWignerD:
    def test_degree_one_closed_form(self):
        beta = np.array([0.3, 1.2, 2.7])
        d = wigner_d(beta, 1)[1]
        c, s = np.cos(beta), np.sin(beta)
        ref = np.empty((3, 3, 3))
        ref[:, 2, 2] = (1 + c) / 2
        ref[:, 2, 1] = -s / np.sqrt(2)
        ref[:, 2, 0] = (1 - c) / 2
        ref[:, 1, 2] = s / np.sqrt(2)
        ref[:, 1, 1] = c
        ref[:, 1, 0] = -s / np.sqrt(2)
        ref[:, 0, 2] = (1 - c) / 2
        ref[:, 0, 1] = s / np.sqrt(2)
        ref[:, 0, 0] = (1 + c) / 2
        np.testing.assert_allclose(d, ref, atol=1e-15)

    def test_blocks_orthogonal(self):
        beta = np.array([0.1, 0.9, 2.2, 3.0])
        mats = wigner_d(beta, 8)
        for n, blk in enumerate(mats):
            eye = np.eye(2 * n + 1)
            for M in blk:
                np.testing.assert_allclose(M @ M.T, eye, atol=1e-12)

    def test_rotation_matches_brute_force_operator(self, rng):
        """Packed rotation == least-squares operator fitted from the
        harmonics themselves (pins the phase/transpose convention)."""
        p = 4
        u = _unit_dirs(rng, 1)[0]
        ct = np.clip(u[2], -1, 1)
        th, ph = np.arccos(ct), np.arctan2(u[1], u[0])
        cz, sz = np.cos(-ph), np.sin(-ph)
        Rz = np.array([[cz, -sz, 0], [sz, cz, 0], [0, 0, 1.0]])
        cy, sy = np.cos(-th), np.sin(-th)
        Ry = np.array([[cy, 0, sy], [0, 1, 0], [-sy, 0, cy]])
        R = Ry @ Rz  # maps u onto +z

        def full_row(v, n):
            _, c, f = cart_to_sph(np.asarray(v, float).reshape(1, 3))
            Yp = sph_harmonics(c, f, n)[0]
            row = np.empty(2 * n + 1, complex)
            for m in range(n + 1):
                row[n + m] = Yp[n * (n + 1) // 2 + m]
                row[n - m] = np.conj(row[n + m])
            return row

        ops = build_rotation_operators(u[None, :], p)[0]
        C = _conj_symmetric_rows(rng, 1, p)
        Cr = rotate_packed(C, ops, p)
        for n in range(1, p + 1):
            V = rng.standard_normal((6 * n + 8, 3))
            V /= np.linalg.norm(V, axis=1, keepdims=True)
            M1 = np.array([np.conj(full_row(v, n)) for v in V])
            M2 = np.array([np.conj(full_row(R @ v, n)) for v in V])
            AT, *_ = np.linalg.lstsq(M1, M2, rcond=None)
            lo = n * (n + 1) // 2
            full = np.empty(2 * n + 1, complex)
            for m in range(n + 1):
                full[n + m] = C[0, lo + m]
                full[n - m] = np.conj(C[0, lo + m])
            want = AT.T @ full
            got = Cr[0, lo : lo + n + 1]
            np.testing.assert_allclose(got, want[n:], atol=1e-10)

    @pytest.mark.parametrize("p", range(2, 13))
    def test_round_trip_identity(self, rng, p):
        """rotate -> inverse-rotate returns the input to <= 1e-14."""
        for u in _unit_dirs(rng, 3):
            ops = build_rotation_operators(u[None, :], p)[0]
            C = _conj_symmetric_rows(rng, 5, p)
            back = rotate_packed(rotate_packed(C, ops, p), ops, p, inverse=True)
            assert np.abs(back - C).max() <= 1e-14 * max(1.0, np.abs(C).max())

    def test_lower_degree_reuses_higher_operator(self, rng):
        u = _unit_dirs(rng, 1)
        hi = build_rotation_operators(u, 9)[0]
        lo = build_rotation_operators(u, 4)[0]
        C = _conj_symmetric_rows(rng, 3, 4)
        np.testing.assert_array_equal(
            rotate_packed(C, hi, 4), rotate_packed(C, lo, 4)
        )
        with pytest.raises(ValueError, match="operator built for"):
            rotate_packed(_conj_symmetric_rows(rng, 1, 11), hi, 11)


class TestRotationCache:
    def test_quantized_dedup_and_rebuild(self, rng):
        cache = RotationCache()
        u = _unit_dirs(rng, 4)
        ids = cache.ids_for(u, 3)
        # directions differing by < quantum share an id and an operator
        jit = u + rng.standard_normal(u.shape) * 1e-16
        jit /= np.linalg.norm(jit, axis=1, keepdims=True)
        np.testing.assert_array_equal(cache.ids_for(jit, 3), ids)
        assert len(cache) == 4 and cache.built == 4
        assert cache.max_p == 3
        # a higher-degree request rebuilds in place, ids stay stable
        np.testing.assert_array_equal(cache.ids_for(u, 7), ids)
        assert len(cache) == 4 and cache.max_p == 7
        assert cache.nbytes > 0

    def test_canonical_directions_are_deterministic_units(self, rng):
        u = _unit_dirs(rng, 16)
        v = canonical_directions(direction_keys(u))
        np.testing.assert_allclose(np.linalg.norm(v, axis=1), 1.0, atol=1e-12)
        assert np.abs(v - u).max() <= 1e-12


# ----------------------------------------------------------------------
# Axial kernels and the rotated drop-in wrappers
# ----------------------------------------------------------------------


class TestAxialKernels:
    @pytest.mark.parametrize("p_src,p_loc", [(4, 4), (6, 3), (3, 7)])
    def test_axial_m2l_matches_dense_on_axis(self, rng, p_src, p_loc):
        C = _conj_symmetric_rows(rng, 6, p_src)
        rho = rng.uniform(2.0, 5.0, 6)
        got = axial_m2l(C, rho, p_src, p_loc)
        want = np.stack(
            [
                m2l(C[i], np.array([0.0, 0.0, rho[i]]), p_src, p_loc).reshape(-1)
                for i in range(6)
            ]
        )
        np.testing.assert_allclose(got, want, rtol=1e-12, atol=1e-12)

    @pytest.mark.parametrize(
        "axial,dense", [(axial_m2m, m2m), (axial_l2l, l2l)], ids=["m2m", "l2l"]
    )
    def test_axial_shifts_match_dense_on_axis(self, rng, axial, dense):
        p = 6
        C = _conj_symmetric_rows(rng, 5, p)
        rho = rng.uniform(0.5, 2.0, 5)
        got = axial(C, rho, p)
        want = np.stack(
            [
                dense(C[i], np.array([0.0, 0.0, rho[i]]), p).reshape(-1)
                for i in range(5)
            ]
        )
        scale = np.abs(want).max()
        assert np.abs(got - want).max() <= 1e-12 * max(1.0, scale)

    @pytest.mark.parametrize("p", [3, 6, 10])
    def test_m2l_rotated_matches_dense(self, rng, p):
        B = 7
        C = _conj_symmetric_rows(rng, B, p)
        d = rng.standard_normal((B, 3)) * 2.0 + 3.0
        want = np.stack([m2l(C[i], d[i], p).reshape(-1) for i in range(B)])
        got = m2l_rotated(C, d, p)
        scale = np.abs(want).max()
        assert np.abs(got - want).max() <= 1e-12 * max(1.0, scale)

    def test_m2l_rotated_rectangular_degrees(self, rng):
        p_src, p_loc = 6, 3
        C = _conj_symmetric_rows(rng, 4, p_src)
        d = rng.standard_normal((4, 3)) + 3.0
        want = np.stack(
            [m2l(C[i], d[i], p_src, p_loc).reshape(-1) for i in range(4)]
        )
        got = m2l_rotated(C, d, p_src, p_loc)
        scale = np.abs(want).max()
        assert np.abs(got - want).max() <= 1e-12 * max(1.0, scale)

    @pytest.mark.parametrize(
        "rotated,dense", [(m2m_rotated, m2m), (l2l_rotated, l2l)],
        ids=["m2m", "l2l"],
    )
    def test_shift_wrappers_match_dense(self, rng, rotated, dense):
        p = 8
        B = 6
        C = _conj_symmetric_rows(rng, B, p)
        t = rng.standard_normal((B, 3))
        want = np.stack([dense(C[i], t[i], p).reshape(-1) for i in range(B)])
        got = rotated(C, t, p)
        scale = np.abs(want).max()
        assert np.abs(got - want).max() <= 1e-12 * max(1.0, scale)

    def test_zero_shift_is_identity(self, rng):
        p = 5
        C = _conj_symmetric_rows(rng, 3, p)
        t = np.zeros((3, 3))
        t[1] = [0.1, -0.2, 0.3]
        got = m2m_rotated(C, t, p)
        np.testing.assert_array_equal(got[0], C[0])
        np.testing.assert_array_equal(got[2], C[2])
        want1 = m2m(C[1], t[1], p).reshape(-1)
        assert np.abs(got[1] - want1).max() <= 1e-12 * np.abs(want1).max()

    def test_shared_cache_reused_across_calls(self, rng):
        cache = RotationCache()
        p = 4
        C = _conj_symmetric_rows(rng, 5, p)
        d = np.tile(np.array([[1.0, 2.0, 2.0]]), (5, 1))
        m2l_rotated(C, d, p, cache=cache)
        built = cache.built
        assert built == 1  # five identical directions -> one operator
        m2l_rotated(C, d, p, cache=cache)
        assert cache.built == built  # second call builds nothing


# ----------------------------------------------------------------------
# Satellite: bounded FIFO operator caches with hit/miss telemetry
# ----------------------------------------------------------------------


class TestTranslationCacheBounds:
    def test_cache_stays_bounded_with_stats(self):
        from repro.multipole import translations as tr

        before = translation_cache_stats()
        assert set(before) >= {"size", "max_size", "hits", "misses"}
        # drive more distinct keys than the cap through the grid caches
        for p in range(1, 60):
            tr._sq_grid(p)
            tr._iphase_grid(p, +1)
            tr._iphase_grid(p, -1)
            tr._valid_mask(p)
        after = translation_cache_stats()
        assert after["size"] <= after["max_size"]
        assert after["misses"] > before["misses"]
        # re-request a hot key: pure hit, no growth
        tr._sq_grid(59)
        final = translation_cache_stats()
        assert final["hits"] > after["hits"]
        assert final["size"] == after["size"]

    def test_eviction_preserves_values(self):
        """Evicted entries are rebuilt identically (cache is transparent)."""
        from repro.multipole import translations as tr

        a = tr._sq_grid(7).copy()
        for p in range(60, 60 + tr._TRANSLATION_CACHE_MAX):
            tr._valid_mask(p)
        np.testing.assert_array_equal(tr._sq_grid(7), a)


# ----------------------------------------------------------------------
# Cost model / crossover selection
# ----------------------------------------------------------------------


class TestBackendSelection:
    def test_translation_cost_models(self):
        p = np.array([2, ROTATION_CROSSOVER_P, 20])
        np.testing.assert_array_equal(translation_cost(p, "dense"), (p + 1.0) ** 4)
        np.testing.assert_array_equal(
            translation_cost(p, "rotation"), (p + 1.0) ** 3
        )
        auto = translation_cost(p, "auto")
        assert auto[0] == (p[0] + 1.0) ** 4
        assert auto[1] == (p[1] + 1.0) ** 3
        assert auto[2] == (p[2] + 1.0) ** 3
        with pytest.raises(ValueError, match="backend"):
            translation_cost(p, "fft")

    def test_resolve_backend(self):
        assert resolve_backend("dense", 40) == "dense"
        assert resolve_backend("rotation", 1) == "rotation"
        assert resolve_backend("auto", ROTATION_CROSSOVER_P) == "rotation"
        assert resolve_backend("auto", ROTATION_CROSSOVER_P - 1) == "dense"
        with pytest.raises(ValueError, match="backend"):
            resolve_backend("fft", 4)


# ----------------------------------------------------------------------
# Cluster plan rotation backend
# ----------------------------------------------------------------------


class TestClusterRotationBackend:
    def test_c128_agrees_with_dense_and_ledger_unchanged(self, small_cloud):
        """tol-mode (complex128) rotation plans must agree with dense to
        1e-12 and leave the a-posteriori ledger bitwise identical."""
        pts, q = small_cloud
        tc = Treecode(pts, q, degree_policy=FixedDegree(4), alpha=0.5)
        tol = 2e-4
        dense = tc.compile_plan(
            mode="cluster", tol=tol, accumulate_bounds=True,
            translation_backend="dense",
        ).execute(q)
        rot = tc.compile_plan(
            mode="cluster", tol=tol, accumulate_bounds=True,
            translation_backend="rotation",
        ).execute(q)
        scale = np.abs(dense.potential).max()
        assert np.abs(dense.potential - rot.potential).max() <= 1e-12 * scale
        np.testing.assert_array_equal(dense.error_bound, rot.error_bound)
        # containment chain holds under the rotation backend
        exact = pairwise_potential(pts, pts, q, exclude=np.arange(len(q)))
        err = np.abs(rot.potential - exact).max()
        assert err <= rot.error_bound.max() <= tol

    def test_fixed_degree_c64_parity_within_rounding(self, small_cloud):
        pts, q = small_cloud
        tc = Treecode(pts, q, degree_policy=FixedDegree(6), alpha=0.5)
        dense = tc.compile_plan(
            mode="cluster", translation_backend="dense"
        ).execute(q)
        rot = tc.compile_plan(
            mode="cluster", translation_backend="rotation"
        ).execute(q)
        scale = np.abs(dense.potential).max()
        assert np.abs(dense.potential - rot.potential).max() <= 1e-5 * scale

    def test_gradient_parity(self, small_cloud):
        pts, q = small_cloud
        tc = Treecode(pts, q, degree_policy=FixedDegree(5), alpha=0.5)
        dense = tc.compile_plan(
            mode="cluster", compute="both", translation_backend="dense"
        ).execute(q)
        rot = tc.compile_plan(
            mode="cluster", compute="both", translation_backend="rotation"
        ).execute(q)
        gs = np.abs(dense.gradient).max()
        assert np.abs(dense.gradient - rot.gradient).max() <= 1e-5 * gs

    def test_auto_falls_back_on_irregular_directions(self, small_cloud):
        """abs_com-centered boxes give ~unique directions per pair; auto
        must decline to build a per-pair operator cache."""
        pts, q = small_cloud
        tc = Treecode(pts, q, degree_policy=FixedDegree(9), alpha=0.5)
        auto = tc.compile_plan(mode="cluster", translation_backend="auto")
        dense = tc.compile_plan(mode="cluster", translation_backend="dense")
        assert len(auto._rot_cache) == 0
        np.testing.assert_array_equal(
            auto.execute(q).potential, dense.execute(q).potential
        )

    def test_forced_rotation_populates_shared_cache(self, small_cloud):
        pts, q = small_cloud
        tc = Treecode(pts, q, degree_policy=FixedDegree(5), alpha=0.5)
        plan = tc.compile_plan(mode="cluster", translation_backend="rotation")
        assert len(plan._rot_cache) > 0
        assert plan._rot_cache.requested >= plan._rot_cache.built
        assert plan.memory_bytes >= plan._rot_cache.nbytes

    def test_backend_validation(self, small_cloud):
        pts, q = small_cloud
        tc = Treecode(pts, q, degree_policy=FixedDegree(3), alpha=0.5)
        with pytest.raises(ValueError, match="translation_backend"):
            tc.compile_plan(mode="cluster", translation_backend="fft")

    def test_serial_thread_process_identical(self, small_cloud):
        plan = Treecode(
            *small_cloud, degree_policy=FixedDegree(5), alpha=0.5
        ).compile_plan(mode="cluster", translation_backend="rotation")
        q = small_cloud[1]
        serial = plan.execute(q)
        thr = evaluate_plan_parallel(plan, q, n_threads=3, retry=FAST)
        prc = evaluate_plan_parallel(
            plan, q, n_threads=2, retry=FAST, backend="process"
        )
        np.testing.assert_array_equal(serial.potential, thr.potential)
        np.testing.assert_array_equal(thr.potential, prc.potential)

    def test_block_errors_recovered_exactly(self, small_cloud, injector_guard):
        pts, q = small_cloud
        plan = Treecode(
            pts, q, degree_policy=FixedDegree(5), alpha=0.5
        ).compile_plan(mode="cluster", translation_backend="rotation")
        set_injector(None)
        clean = evaluate_plan_parallel(plan, q, n_threads=2, backend="process")
        set_injector(FaultInjector(parse_fault_spec("block_error:0.2"), seed=3))
        faulty = evaluate_plan_parallel(
            plan, q, n_threads=2, retry=FAST, backend="process"
        )
        np.testing.assert_array_equal(faulty.potential, clean.potential)
        assert faulty.n_retries + faulty.n_fallbacks > 0


class TestBatchedM2LDedup:
    def test_duplicated_rows_bitwise_equal_unique_build(self, rng):
        """The unique-row singular-grid gather must be bitwise identical
        to building the grid row by row."""
        p = 5
        base = rng.standard_normal((4, 3)) + 3.0
        idx = rng.integers(0, 4, size=48)
        d = base[idx]
        C = rng.standard_normal((48, ncoef(p))) + 1j * rng.standard_normal(
            (48, ncoef(p))
        )
        got = batched_m2l(C, d, p, dtype=np.complex128)
        want = np.concatenate(
            [
                batched_m2l(C[i : i + 1], d[i : i + 1], p, np.complex128)
                for i in range(48)
            ]
        )
        np.testing.assert_array_equal(got, want)

    def test_small_batches_skip_dedup(self, rng):
        p = 3
        d = np.tile(rng.standard_normal((1, 3)) + 3.0, (8, 1))
        C = rng.standard_normal((8, ncoef(p))) + 1j * rng.standard_normal(
            (8, ncoef(p))
        )
        got = batched_m2l(C, d, p, dtype=np.complex128)
        want = np.concatenate(
            [
                batched_m2l(C[i : i + 1], d[i : i + 1], p, np.complex128)
                for i in range(8)
            ]
        )
        np.testing.assert_array_equal(got, want)


# ----------------------------------------------------------------------
# FMM engine backend
# ----------------------------------------------------------------------


class TestFMMRotationBackend:
    def test_dense_rotation_parity_both_paths(self, rng):
        from repro.fmm.engine import UniformFMM

        pts = rng.random((600, 3))
        q = rng.uniform(-1.0, 1.0, 600)
        fd = UniformFMM(pts, q, level=2, degrees=6, translation_backend="dense")
        fr = UniformFMM(
            pts, q, level=2, degrees=6, translation_backend="rotation"
        )
        d1, r1 = fd.evaluate(), fr.evaluate()  # direct path
        d2, r2 = fd.evaluate(), fr.evaluate()  # planned path
        scale = np.abs(d1).max()
        assert np.abs(d1 - r1).max() <= 1e-12 * scale
        assert np.abs(d2 - r2).max() <= 1e-12 * scale
        # the uniform grid's offset directions are shared: <= 316 V-list
        # directions + 8 octants, across *all* levels
        assert 0 < len(fr._rot_cache) <= 324
        assert fr.plan_memory_bytes < fd.plan_memory_bytes

    def test_validation(self, rng):
        from repro.fmm.engine import UniformFMM

        with pytest.raises(ValueError, match="translation_backend"):
            UniformFMM(
                rng.random((32, 3)),
                np.ones(32),
                level=2,
                translation_backend="fft",
            )
