"""Tests for target-accuracy variable-order plans: per-interaction
degree selection from Theorem-1 bounds (``compile_plan(tol=...)`` and
the :class:`VariableDegree` policy)."""

import numpy as np
import pytest

from repro import DegreeSelectionError, FixedDegree, Treecode, VariableDegree
from repro.direct import pairwise_potential
from repro.obs import REGISTRY, tracing
from repro.parallel import evaluate_plan_parallel
from repro.robust import faults as faults_mod
from repro.robust.faults import FaultInjector, parse_fault_spec, set_injector
from repro.robust.retry import RetryPolicy

FAST = RetryPolicy(max_retries=3, base_delay=0.0, max_delay=0.0)

MODES = ["target", "cluster"]


@pytest.fixture
def injector_guard():
    prev = faults_mod.active_injector()
    yield
    set_injector(prev)


def _direct_potential(pts, q):
    return pairwise_potential(pts, pts, q, exclude=np.arange(pts.shape[0]))


# ----------------------------------------------------------------------
# Degree selection extremes
# ----------------------------------------------------------------------


class TestDegreeSelection:
    @pytest.mark.parametrize("mode", MODES)
    def test_loose_tol_collapses_to_monopole(self, small_cloud, mode):
        """A tolerance looser than every interaction's p=0 Theorem-1
        bound must produce an all-monopole plan — the selector picks the
        *minimal* sufficient degree, and 0 suffices everywhere."""
        pts, q = small_cloud
        tc = Treecode(pts, q, degree_policy=FixedDegree(4), alpha=0.5)
        plan = tc.compile_plan(mode=mode, tol=1e9, accumulate_bounds=True)
        assert plan.pair_degrees.size > 0
        assert int(plan.pair_degrees.max()) == 0
        res = plan.execute(q)
        assert float(res.error_bound.max()) <= 1e9

    @pytest.mark.parametrize("mode", MODES)
    def test_infeasible_tol_raises_with_diagnostics(self, small_cloud, mode):
        """A tolerance tighter than ``p_max`` can achieve must raise
        :class:`DegreeSelectionError` carrying located diagnostics —
        never silently clamp (clamping would break ``ledger <= tol``)."""
        pts, q = small_cloud
        tc = Treecode(
            pts, q, degree_policy=VariableDegree(tol=1e-12, p_max=2), alpha=0.5
        )
        with pytest.raises(DegreeSelectionError, match="p_max=2") as exc:
            tc.compile_plan(mode=mode, tol=1e-12)
        err = exc.value
        assert err.p_max == 2
        assert err.pair_idx.size > 0
        # the worst offender is fully located: which pair, which source
        # node, its geometry, and how far over budget it lands
        for key in ("pair", "node", "A", "a", "r", "achieved_bound", "budget"):
            assert key in err.worst
        assert err.worst["achieved_bound"] > err.worst["budget"]

    @pytest.mark.parametrize("mode", MODES)
    def test_tol_defaults_from_policy(self, small_cloud, mode):
        pts, q = small_cloud
        tc = Treecode(
            pts, q, degree_policy=VariableDegree(tol=2e-4), alpha=0.5
        )
        plan = tc.compile_plan(mode=mode)
        assert plan.tol == pytest.approx(2e-4)
        assert plan.predicted_ledger_max is not None
        assert plan.predicted_ledger_max <= 2e-4

    @pytest.mark.parametrize("mode", MODES)
    def test_tol_none_matches_fixed_plan_bitwise(self, small_cloud, mode):
        """``tol=None`` must leave the fixed-degree compile path exactly
        as it was — identical potentials and interaction stats."""
        pts, q = small_cloud
        tc = Treecode(pts, q, degree_policy=FixedDegree(4), alpha=0.5)
        a = tc.compile_plan(mode=mode)
        b = tc.compile_plan(mode=mode, tol=None)
        ra, rb = a.execute(q), b.execute(q)
        np.testing.assert_array_equal(ra.potential, rb.potential)
        assert (
            ra.stats.interactions_by_degree == rb.stats.interactions_by_degree
        )
        assert ra.stats.n_pp_pairs == rb.stats.n_pp_pairs


# ----------------------------------------------------------------------
# Containment: measured error <= a-posteriori ledger <= tol
# ----------------------------------------------------------------------


class TestContainment:
    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("tol", [1e-2, 1e-5])
    def test_error_within_ledger_within_tol(self, small_cloud, mode, tol):
        pts, q = small_cloud
        tc = Treecode(pts, q, degree_policy=FixedDegree(4), alpha=0.5)
        plan = tc.compile_plan(mode=mode, tol=tol, accumulate_bounds=True)
        res = plan.execute(q)
        exact = _direct_potential(pts, q)
        max_err = float(np.abs(res.potential - exact).max())
        max_ledger = float(res.error_bound.max())
        assert max_err <= max_ledger + 1e-15
        assert max_ledger <= tol * (1.0 + 1e-12)

    @pytest.mark.parametrize("mode", MODES)
    def test_degree_histogram_counter(self, small_cloud, mode):
        """Compiling a tol plan with obs on populates the per-degree
        interaction histogram (``plan_degree_bucket_pairs``) and the
        predicted-ledger gauge."""
        pts, q = small_cloud
        tc = Treecode(pts, q, degree_policy=FixedDegree(4), alpha=0.5)
        tracing.enable()
        REGISTRY.reset()
        try:
            plan = tc.compile_plan(mode=mode, tol=1e-4)
            hist = REGISTRY.get("plan_degree_bucket_pairs")
            assert hist is not None
            total = sum(
                child.value for _, child in hist._items()
            )
            assert total == plan.pair_degrees.size
            gauge = REGISTRY.get("plan_predicted_ledger_max")
            assert gauge is not None
            assert 0.0 < gauge.value <= 1e-4
        finally:
            tracing.disable()
            REGISTRY.reset()


# ----------------------------------------------------------------------
# Regression: leaves that only inherit local content
# ----------------------------------------------------------------------


@pytest.mark.parametrize("tol", [None, 1e-4])
def test_inherit_only_leaves_compile_and_bound(tol):
    """Collinear clouds produce leaves that are never direct M2L targets
    but inherit local content from ancestor boxes.  The local-degree
    push-down used to be silently discarded (``out=`` into a fancy-index
    temporary), which crashed compilation on such leaves — and, where it
    did not crash, truncated inherited locals below their content degree.
    Both the fixed and the variable-order compiler must handle them."""
    rng = np.random.default_rng(0)
    n = 250
    t = np.sort(rng.random(n))
    pts = np.ascontiguousarray(
        np.column_stack([t, np.full(n, 0.5), np.full(n, 0.5)])
    )
    q = rng.uniform(-1.0, 1.0, n)
    tc = Treecode(pts, q, degree_policy=FixedDegree(4), alpha=0.5)
    plan = tc.compile_plan(mode="cluster", tol=tol, accumulate_bounds=True)
    res = plan.execute(q)
    exact = _direct_potential(pts, q)
    err = np.abs(res.potential - exact)
    assert np.all(err <= res.error_bound + 1e-12)
    if tol is not None:
        assert float(res.error_bound.max()) <= tol * (1.0 + 1e-12)


# ----------------------------------------------------------------------
# Executor parity on degree-bucketed units
# ----------------------------------------------------------------------


class TestExecutorParity:
    def _variable_plan(self, small_cloud):
        pts, q = small_cloud
        tc = Treecode(pts, q, degree_policy=FixedDegree(4), alpha=0.5)
        return tc.compile_plan(mode="cluster", tol=1e-5), q

    def test_serial_thread_process_identical(self, small_cloud):
        plan, q = self._variable_plan(small_cloud)
        serial = plan.execute(q)
        thr = evaluate_plan_parallel(plan, q, n_threads=3, retry=FAST)
        prc = evaluate_plan_parallel(
            plan, q, n_threads=2, retry=FAST, backend="process"
        )
        np.testing.assert_array_equal(thr.potential, serial.potential)
        np.testing.assert_array_equal(prc.potential, serial.potential)

    def test_block_errors_recovered_exactly(self, small_cloud, injector_guard):
        plan, q = self._variable_plan(small_cloud)
        set_injector(None)
        clean = evaluate_plan_parallel(plan, q, n_threads=2, backend="process")
        set_injector(FaultInjector(parse_fault_spec("block_error:0.2"), seed=3))
        faulty = evaluate_plan_parallel(
            plan, q, n_threads=2, retry=FAST, backend="process"
        )
        np.testing.assert_array_equal(faulty.potential, clean.potential)
        assert faulty.n_retries + faulty.n_fallbacks > 0

    def test_killed_workers_recovered_exactly(self, small_cloud, injector_guard):
        """block_kill hard-kills workers (os._exit); the parent must
        finish the degree-bucketed units serially and still match."""
        plan, q = self._variable_plan(small_cloud)
        set_injector(None)
        clean = evaluate_plan_parallel(plan, q, n_threads=2, backend="process")
        set_injector(FaultInjector(parse_fault_spec("block_kill:0.5"), seed=5))
        faulty = evaluate_plan_parallel(
            plan, q, n_threads=2, retry=FAST, backend="process"
        )
        np.testing.assert_array_equal(faulty.potential, clean.potential)
        assert faulty.n_fallbacks > 0
