"""Tests for the benchmark regression ledger (repro.bench)."""

import json

import pytest

from repro import bench
from repro.bench import compare, extract_series, load_history, markdown_table, record

BENCH3 = {
    "bench": "BENCH_3",
    "mode": "smoke",
    "treecode": [
        {
            "n": 5000,
            "compile_s": 2.0,
            "plan_mb": 250.0,
            "far_spilled": 0,
            "near_spilled": 2,
            "fallback_matvec_s": 3.0,
            "plan_matvec_s": 0.15,
            "speedup": 20.0,
            "max_abs_diff": 1e-13,
        }
    ],
    "bem": None,
}

BENCH4 = {
    "bench": "BENCH_4",
    "mode": "smoke",
    "treecode_cluster": [
        {
            "n": 8000,
            "compile_s": 4.0,
            "plan_mb": 300.0,
            "far_spilled": 0,
            "speedup": 5.0,
            "plan_matvec_s": 0.4,
            "fallback_matvec_s": 2.0,
            "direct_sample_within_ledger": True,
            "direct_sample_min_headroom": 1e-4,
            "pc_min_headroom": 2e-4,
        }
    ],
    "projected_mb_50k": 1800.0,
}


def _write(tmp_path, name, report):
    path = tmp_path / name
    path.write_text(json.dumps(report))
    return str(path)


def test_extract_series_names_encode_instance():
    s3 = extract_series(BENCH3)
    assert s3["treecode/n5000/speedup"] == 20.0
    assert s3["treecode/n5000/plan_mb"] == 250.0
    assert s3["treecode/n5000/max_abs_diff"] == 1e-13
    # booleans and non-numerics are not series
    assert not any("within_ledger" in k for k in extract_series(BENCH4))
    s4 = extract_series(BENCH4)
    assert s4["cluster/n8000/direct_sample_min_headroom"] == 1e-4
    assert s4["cluster/projected_mb_50k"] == 1800.0
    assert extract_series({"bench": "unknown"}) == {}


def test_record_appends_and_loads(tmp_path):
    hist = str(tmp_path / "history.jsonl")
    r = _write(tmp_path, "b3.json", BENCH3)
    record([r], hist)
    record([r], hist)
    entries = load_history(hist)
    assert len(entries) == 2
    assert entries[0]["bench"] == "BENCH_3"
    assert entries[0]["series"]["treecode/n5000/speedup"] == 20.0
    assert entries[0]["v"] == bench.LEDGER_VERSION


def test_compare_against_empty_history_is_ok(tmp_path):
    r = _write(tmp_path, "b3.json", BENCH3)
    rows, ok = compare([r], str(tmp_path / "missing.jsonl"))
    assert ok
    by = {x["series"]: x for x in rows}
    # history-dependent rules report "new"; absolute rules still judge
    assert by["treecode/n5000/speedup"]["status"] == "new"
    assert by["treecode/n5000/max_abs_diff"]["status"] == "ok"
    assert by["treecode/n5000/compile_s"]["status"] == "info"


def test_compare_flags_regressions(tmp_path):
    hist = str(tmp_path / "history.jsonl")
    record([_write(tmp_path, "base.json", BENCH3)], hist)
    bad = json.loads(json.dumps(BENCH3))
    row = bad["treecode"][0]
    row["speedup"] = 20.0 * 0.4  # below the 50% floor
    row["plan_mb"] = 250.0 * 1.3  # above the 25% ceiling
    row["max_abs_diff"] = 1e-10  # above the absolute 1e-11 ceiling
    rows, ok = compare([_write(tmp_path, "bad.json", bad)], hist)
    assert not ok
    status = {x["series"]: x["status"] for x in rows}
    assert status["treecode/n5000/speedup"] == "REGRESSION"
    assert status["treecode/n5000/plan_mb"] == "REGRESSION"
    assert status["treecode/n5000/max_abs_diff"] == "REGRESSION"
    assert status["treecode/n5000/plan_matvec_s"] == "info"  # timings never gate


def test_compare_tolerates_noise_within_bounds(tmp_path):
    hist = str(tmp_path / "history.jsonl")
    record([_write(tmp_path, "base.json", BENCH3)], hist)
    noisy = json.loads(json.dumps(BENCH3))
    noisy["treecode"][0]["speedup"] = 20.0 * 0.6  # noisy but above floor
    noisy["treecode"][0]["plan_mb"] = 250.0 * 1.1
    rows, ok = compare([_write(tmp_path, "noisy.json", noisy)], hist)
    assert ok


def test_headroom_floor_is_absolute(tmp_path):
    hist = str(tmp_path / "history.jsonl")
    record([_write(tmp_path, "base.json", BENCH4)], hist)
    bad = json.loads(json.dumps(BENCH4))
    bad["treecode_cluster"][0]["direct_sample_min_headroom"] = -1e-6
    rows, ok = compare([_write(tmp_path, "bad.json", bad)], hist)
    assert not ok
    status = {x["series"]: x["status"] for x in rows}
    assert status["cluster/n8000/direct_sample_min_headroom"] == "REGRESSION"


def test_baseline_is_median_of_recent_window(tmp_path):
    hist = str(tmp_path / "history.jsonl")
    for speedup in (10.0, 11.0, 12.0, 13.0, 14.0, 100.0):
        rep = json.loads(json.dumps(BENCH3))
        rep["treecode"][0]["speedup"] = speedup
        record([_write(tmp_path, "r.json", rep)], hist)
    # window of 5 -> (11, 12, 13, 14, 100), median 13; 10.0 is outside
    rows, _ = compare([_write(tmp_path, "new.json", BENCH3)], hist)
    by = {x["series"]: x for x in rows}
    assert by["treecode/n5000/speedup"]["baseline"] == 13.0


def test_disjoint_sizes_never_mix(tmp_path):
    hist = str(tmp_path / "history.jsonl")
    record([_write(tmp_path, "b3.json", BENCH3)], hist)
    other = json.loads(json.dumps(BENCH3))
    other["treecode"][0]["n"] = 2000
    other["treecode"][0]["speedup"] = 1.0  # would regress if sizes mixed
    rows, ok = compare([_write(tmp_path, "o.json", other)], hist)
    assert ok
    by = {x["series"]: x for x in rows}
    assert by["treecode/n2000/speedup"]["status"] == "new"


def test_markdown_table_shape():
    rows = [
        {
            "series": "treecode/n5000/speedup",
            "baseline": 20.0,
            "value": 10.0,
            "delta": -0.5,
            "status": "REGRESSION",
        }
    ]
    table = markdown_table(rows)
    lines = table.splitlines()
    assert lines[0].startswith("| series |")
    assert "**REGRESSION**" in lines[2]
    assert "-50.0%" in lines[2]


def test_bench_main_exit_codes(tmp_path, capsys):
    hist = str(tmp_path / "history.jsonl")
    good = _write(tmp_path, "good.json", BENCH3)
    assert bench.bench_main(["record", good, "--history", hist]) == 0
    md = str(tmp_path / "delta.md")
    assert (
        bench.bench_main(["compare", good, "--history", hist, "--markdown", md])
        == 0
    )
    assert "| series |" in open(md).read()
    bad = json.loads(json.dumps(BENCH3))
    bad["treecode"][0]["speedup"] = 0.1
    badp = _write(tmp_path, "bad.json", bad)
    assert bench.bench_main(["compare", badp, "--history", hist]) == 1
    capsys.readouterr()


def test_bench_main_record_on_green_compare(tmp_path):
    hist = str(tmp_path / "history.jsonl")
    good = _write(tmp_path, "good.json", BENCH3)
    assert (
        bench.bench_main(["compare", good, "--history", hist, "--record"]) == 0
    )
    assert len(load_history(hist)) == 1


def test_cli_dispatches_bench(tmp_path, capsys):
    """'python -m repro bench ...' reaches bench_main through cli.main."""
    from repro.cli import main

    hist = str(tmp_path / "history.jsonl")
    good = _write(tmp_path, "good.json", BENCH3)
    assert main(["bench", "record", good, "--history", hist]) == 0
    assert len(load_history(hist)) == 1
    with pytest.raises(SystemExit):
        main(["bench", "record", str(tmp_path / "nope.json"), "--history", hist])
    capsys.readouterr()
