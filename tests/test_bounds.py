"""Tests for the error-bound theory module (Theorems 1-5, Lemmas 1-2)."""

import numpy as np
import pytest

from repro.core.bounds import (
    degree_increment_per_level,
    lemma1_ratio_bounds,
    lemma2_interaction_count,
    theorem1_bound,
    theorem2_interaction_bound,
    theorem3_degree,
    theorem4_aggregate_error,
    theorem5_cost_ratio,
)


def test_theorem1_basic_values():
    # A=1, a=0.5, r=2, p=3: 1/(1.5) * (0.25)^4
    b = theorem1_bound(1.0, 0.5, 2.0, 3)
    assert b == pytest.approx((0.25**4) / 1.5)


def test_theorem1_invalid_geometry_is_inf():
    assert np.isinf(theorem1_bound(1.0, 1.0, 0.5, 3))
    assert np.isinf(theorem1_bound(1.0, 1.0, 1.0, 3))


def test_theorem1_monotone_in_p():
    ps = np.arange(0, 10)
    bounds = theorem1_bound(2.0, 0.3, 1.0, ps)
    assert np.all(np.diff(bounds) < 0)


def test_theorem1_linear_in_A():
    assert theorem1_bound(4.0, 0.3, 1.0, 5) == pytest.approx(
        4 * theorem1_bound(1.0, 0.3, 1.0, 5)
    )


def test_theorem2_reduces_from_theorem1():
    """At the MAC boundary a = alpha*r, Thm 2 equals Thm 1."""
    alpha, r, p, A = 0.5, 2.0, 4, 3.0
    t1 = theorem1_bound(A, alpha * r, r, p)
    t2 = theorem2_interaction_bound(A, r, alpha, p)
    assert t1 == pytest.approx(t2)


def test_theorem2_dominates_theorem1_inside_mac():
    """For any accepted geometry (a <= alpha*r) Thm 2 >= Thm 1."""
    rng = np.random.default_rng(0)
    for _ in range(50):
        alpha = rng.uniform(0.2, 0.9)
        r = rng.uniform(0.5, 10)
        a = rng.uniform(0, alpha * r)
        p = rng.integers(0, 12)
        assert theorem2_interaction_bound(1.0, r, alpha, p) >= theorem1_bound(
            1.0, a, r, p
        ) * (1 - 1e-12)


def test_theorem2_rejects_bad_alpha():
    with pytest.raises(ValueError):
        theorem2_interaction_bound(1.0, 1.0, 1.0, 3)
    with pytest.raises(ValueError):
        theorem2_interaction_bound(1.0, 1.0, -0.1, 3)


def test_lemma1_bounds():
    lo, hi = lemma1_ratio_bounds(0.5)
    assert lo == pytest.approx(2.0)
    assert hi == pytest.approx(5.0)
    # bounds tighten (ratio -> 2) as alpha -> 0
    lo2, hi2 = lemma1_ratio_bounds(0.01)
    assert hi2 / lo2 < hi / lo
    with pytest.raises(ValueError):
        lemma1_ratio_bounds(1.5)


def test_lemma2_count_positive_and_monotone():
    c1 = lemma2_interaction_count(0.3)
    c2 = lemma2_interaction_count(0.6)
    assert c1 > 0 and c2 > 0
    # larger alpha -> nearer interactions allowed -> thinner annulus in
    # units of the box, but 1/alpha shell radius shrinks; just sanity-check
    # the magnitudes are "constants" (not astronomically large)
    assert c1 < 1e5 and c2 < 1e4


def test_theorem3_degree_anchor():
    """Anchor cluster gets exactly p0."""
    p = theorem3_degree(np.array([1.0]), 1.0, 4, 0.5)
    assert p[0] == 4


def test_theorem3_degree_octuple_charge():
    """8x the charge at alpha=1/2 needs 3 more degrees (ceil(log2 8))."""
    p = theorem3_degree(np.array([8.0]), 1.0, 4, 0.5)
    assert p[0] == 7


def test_theorem3_monotone_and_clamped():
    A = np.array([0.1, 1.0, 10.0, 1e6, 1e30])
    p = theorem3_degree(A, 1.0, 3, 0.5, p_max=12)
    assert np.all(np.diff(p) >= 0)
    assert p[0] == 3  # below anchor charge never drops below p0
    assert p[-1] == 12  # clamped
    with pytest.raises(ValueError):
        theorem3_degree(A, 0.0, 3, 0.5)
    with pytest.raises(ValueError):
        theorem3_degree(A, 1.0, 3, 1.2)


def test_theorem3_equalizes_bound():
    """The selected degrees make A * alpha^(p+1) roughly equal (within one
    degree's worth of slack, from the ceiling)."""
    alpha = 0.5
    A = np.array([1.0, 5.0, 40.0, 300.0])
    p = theorem3_degree(A, 1.0, 4, alpha, p_max=40)
    vals = A * alpha ** (p + 1.0)
    anchor = 1.0 * alpha ** 5.0
    assert np.all(vals <= anchor * (1 + 1e-12))
    assert np.all(vals >= anchor * alpha * (1 - 1e-12))


def test_degree_increment_per_level():
    # alpha = 1/2: 3 ln2/ln2 = 3 per level
    assert degree_increment_per_level(0.5) == pytest.approx(3.0)
    # alpha = 1/8: 1 per level
    assert degree_increment_per_level(0.125) == pytest.approx(1.0)


def test_theorem4_scales_with_height():
    e1 = theorem4_aggregate_error(1e-6, 5, 0.5)
    e2 = theorem4_aggregate_error(1e-6, 10, 0.5)
    assert e2 == pytest.approx(2 * e1)


def test_theorem5_cost_ratio_regimes():
    """The ratio is ~1 for shallow trees and stays below ~7/3 in the
    paper's practical regime (p0 = 6-7, heights up to ~p0+1)."""
    assert theorem5_cost_ratio(6, 0.125, 1) == pytest.approx(1.0)
    for p0 in (6, 7):
        for h in range(2, p0 + 2):
            assert theorem5_cost_ratio(p0, 0.125, h) < 7.0 / 3.0 + 1e-9
    # ratio grows with height
    r = [theorem5_cost_ratio(6, 0.125, h) for h in (2, 5, 8, 12)]
    assert np.all(np.diff(r) > 0)
