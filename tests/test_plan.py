"""Tests for compiled evaluation plans: plan-vs-direct equivalence,
memory-budget spill, BEM/FMM/parallel wiring, fault-injection parity,
and the bincount scatter kernel."""

import numpy as np
import pytest

from repro import AdaptiveChargeDegree, FixedDegree, Treecode
from repro.bem import OperatorGeometry, SingleLayerOperator
from repro.bem.geometries import icosphere
from repro.fmm import UniformFMM
from repro.parallel import evaluate_plan_parallel
from repro.perf import scatter_add
from repro.perf.plan import CompiledPlan
from repro.robust import faults as faults_mod
from repro.robust.faults import FaultInjector, parse_fault_spec, set_injector
from repro.robust.guards import NumericalCorruptionError
from repro.robust.retry import RetryPolicy
from repro.tree.octree import build_octree

FAST = RetryPolicy(max_retries=3, base_delay=0.0, max_delay=0.0)


@pytest.fixture
def injector_guard():
    """Snapshot the active injector and restore it afterwards (keeps the
    CI fault-injection env intact for whatever tests run next)."""
    prev = faults_mod.active_injector()
    yield
    set_injector(prev)


def assert_stats_equal(a, b):
    """Interaction counts are frozen at compile time and must match the
    un-planned evaluation *exactly* (they are integers, not floats)."""
    assert a.n_targets == b.n_targets
    assert a.n_pc_interactions == b.n_pc_interactions
    assert a.n_pp_pairs == b.n_pp_pairs
    assert a.n_terms == b.n_terms
    assert a.interactions_by_degree == b.interactions_by_degree
    assert a.interactions_by_level == b.interactions_by_level


# ----------------------------------------------------------------------
# Plan vs direct equivalence
# ----------------------------------------------------------------------


class TestPlanEquivalence:
    @pytest.mark.parametrize(
        "policy",
        [FixedDegree(4), AdaptiveChargeDegree(p0=3, alpha=0.6)],
        ids=["fixed", "adaptive"],
    )
    def test_self_eval_matches_direct(self, small_cloud, policy):
        pts, q = small_cloud
        tc = Treecode(pts, q, degree_policy=policy, alpha=0.6)
        direct = tc.evaluate(compute="both", accumulate_bounds=True)
        plan = tc.compile_plan(compute="both", accumulate_bounds=True)
        res = plan.execute(q)
        assert np.max(np.abs(res.potential - direct.potential)) <= 1e-12
        np.testing.assert_allclose(res.gradient, direct.gradient, rtol=1e-9, atol=1e-12)
        np.testing.assert_allclose(
            res.error_bound, direct.error_bound, rtol=1e-9, atol=1e-12
        )
        assert_stats_equal(res.stats, direct.stats)
        assert set(res.stats.bound_by_level) == set(direct.stats.bound_by_level)
        for L, v in direct.stats.bound_by_level.items():
            assert res.stats.bound_by_level[L] == pytest.approx(v, rel=1e-9)

    def test_external_targets(self, small_cloud, rng):
        pts, q = small_cloud
        tgt = rng.random((150, 3)) * 1.5 - 0.25
        tc = Treecode(pts, q, degree_policy=FixedDegree(5), alpha=0.5)
        direct = tc.evaluate(tgt, compute="both", accumulate_bounds=True)
        plan = tc.compile_plan(targets=tgt, compute="both", accumulate_bounds=True)
        res = plan.execute(q)
        assert np.max(np.abs(res.potential - direct.potential)) <= 1e-12
        np.testing.assert_allclose(res.gradient, direct.gradient, rtol=1e-9, atol=1e-12)
        np.testing.assert_allclose(
            res.error_bound, direct.error_bound, rtol=1e-9, atol=1e-12
        )
        assert_stats_equal(res.stats, direct.stats)

    def test_plan_is_pure_across_charge_swaps(self, small_cloud, rng):
        """One plan serves many charge vectors; the treecode's own state
        (set_charges) neither feeds nor invalidates it."""
        pts, q = small_cloud
        tc = Treecode(pts, q, degree_policy=FixedDegree(4), alpha=0.5)
        plan = tc.compile_plan()
        for seed in range(3):
            q2 = np.random.default_rng(seed).uniform(-1, 1, pts.shape[0])
            tc.set_charges(q2)
            direct = tc.evaluate()
            res = plan.execute(q2)
            assert np.max(np.abs(res.potential - direct.potential)) <= 1e-12

    def test_spill_matches_precomputed(self, small_cloud):
        """A zero budget spills every far chunk and near block to
        on-the-fly evaluation; results must not change."""
        pts, q = small_cloud
        tc = Treecode(pts, q, degree_policy=FixedDegree(4), alpha=0.6)
        lists = tc.traverse(tc.tree.points, self_targets=True)
        full = tc.compile_plan(compute="both", accumulate_bounds=True, lists=lists)
        spilled = tc.compile_plan(
            compute="both", accumulate_bounds=True, memory_budget=0, lists=lists
        )
        assert full.n_far_spilled == 0 and full.n_near_spilled == 0
        assert spilled.n_far_precomputed == 0 and spilled.n_near_precomputed == 0
        assert spilled.memory_bytes < full.memory_bytes
        a, b = full.execute(q), spilled.execute(q)
        assert np.max(np.abs(a.potential - b.potential)) <= 1e-12
        np.testing.assert_allclose(a.gradient, b.gradient, rtol=1e-9, atol=1e-12)
        np.testing.assert_allclose(
            a.error_bound, b.error_bound, rtol=1e-9, atol=1e-12
        )
        assert_stats_equal(a.stats, b.stats)

    def test_validation_errors(self, small_cloud):
        pts, q = small_cloud
        tc = Treecode(pts, q, degree_policy=FixedDegree(3), alpha=0.5)
        lists = tc.traverse(tc.tree.points, self_targets=True)
        with pytest.raises(ValueError, match="compute"):
            CompiledPlan(tc, lists, tc.tree.points, compute="bogus")
        with pytest.raises(ValueError, match="shape"):
            CompiledPlan(tc, lists, np.zeros((5, 2)))
        plan = tc.compile_plan()
        with pytest.raises(ValueError, match="charges"):
            plan.execute(np.zeros(7))

    def test_describe_mentions_structure(self, small_cloud):
        pts, q = small_cloud
        plan = Treecode(pts, q, degree_policy=FixedDegree(3), alpha=0.5).compile_plan()
        text = plan.describe()
        assert "CompiledPlan" in text and "MB" in text
        assert plan.n_units == len(plan._far_chunks) + len(plan._near_blocks)
        assert plan.compile_time >= 0.0


# ----------------------------------------------------------------------
# Shared trees and shared BEM geometry
# ----------------------------------------------------------------------


class TestSharedGeometry:
    def test_tree_reuse_matches_fresh_build(self, small_cloud):
        pts, q = small_cloud
        tree = build_octree(pts, q)
        fresh = Treecode(pts, q, degree_policy=FixedDegree(4), alpha=0.5)
        shared = Treecode(pts, q, degree_policy=FixedDegree(4), alpha=0.5, tree=tree)
        assert shared.tree is tree
        np.testing.assert_array_equal(
            fresh.evaluate().potential, shared.evaluate().potential
        )

    def test_tree_reuse_rejects_mismatched_points(self, small_cloud, rng):
        pts, q = small_cloud
        tree = build_octree(pts, q)
        other = rng.random((pts.shape[0], 3))
        with pytest.raises(ValueError, match="reused tree"):
            Treecode(other, q, degree_policy=FixedDegree(4), alpha=0.5, tree=tree)
        with pytest.raises(ValueError):
            Treecode(
                pts[:-1], q[:-1], degree_policy=FixedDegree(4), alpha=0.5, tree=tree
            )

    def test_operator_geometry_shared(self, rng):
        mesh = icosphere(1)
        x = rng.uniform(0.5, 1.5, mesh.n_vertices)
        geometry = OperatorGeometry(mesh, n_gauss=3)
        solo = SingleLayerOperator(
            mesh, n_gauss=3, degree_policy=FixedDegree(5), use_plan=False
        )
        shared = SingleLayerOperator(
            mesh,
            n_gauss=3,
            degree_policy=FixedDegree(5),
            use_plan=False,
            geometry=geometry,
        )
        np.testing.assert_allclose(shared.matvec(x), solo.matvec(x), rtol=1e-12)
        # a second operator on the same geometry object shares the octree
        other = SingleLayerOperator(
            mesh,
            n_gauss=3,
            degree_policy=AdaptiveChargeDegree(p0=4, alpha=0.5),
            use_plan=False,
            geometry=geometry,
        )
        assert other.treecode.tree is shared.treecode.tree

    def test_operator_geometry_mismatch(self):
        geometry = OperatorGeometry(icosphere(1), n_gauss=3)
        with pytest.raises(ValueError):
            SingleLayerOperator(
                icosphere(2), n_gauss=3, degree_policy=FixedDegree(4),
                geometry=geometry,
            )
        with pytest.raises(ValueError):
            SingleLayerOperator(
                geometry.mesh, n_gauss=6, degree_policy=FixedDegree(4),
                geometry=geometry,
            )


# ----------------------------------------------------------------------
# BEM operator plan path
# ----------------------------------------------------------------------


class TestBemPlan:
    def test_matvec_matches_unplanned(self, rng):
        mesh = icosphere(2)
        x = rng.uniform(0.5, 1.5, mesh.n_vertices)
        y = rng.uniform(-1.0, 1.0, mesh.n_vertices)
        planned = SingleLayerOperator(
            mesh, n_gauss=3, degree_policy=FixedDegree(5), alpha=0.5
        )
        fallback = SingleLayerOperator(
            mesh, n_gauss=3, degree_policy=FixedDegree(5), alpha=0.5, use_plan=False
        )
        # first application pays no compile (one-shot callers unaffected)
        v1 = planned.matvec(x)
        assert planned._plan is None
        np.testing.assert_allclose(v1, fallback.matvec(x), rtol=0, atol=1e-12)
        # the second application compiles; later ones reuse the plan
        v2 = planned.matvec(y)
        assert planned._plan is not None
        np.testing.assert_allclose(v2, fallback.matvec(y), rtol=0, atol=1e-12)
        v3 = planned.matvec(x)
        np.testing.assert_allclose(v3, v1, rtol=0, atol=1e-12)
        assert planned.n_matvecs == 3


# ----------------------------------------------------------------------
# FMM plan path
# ----------------------------------------------------------------------


class TestFmmPlan:
    def test_repeat_evaluate_matches(self, rng):
        pts = rng.random((700, 3))
        q = rng.uniform(-1.0, 1.0, 700)
        fmm = UniformFMM(pts, q, level=2, degrees=5)
        first = fmm.evaluate()  # un-planned
        second = fmm.evaluate()  # compiles and runs the plan
        assert fmm._plan is not None
        np.testing.assert_allclose(second, first, rtol=0, atol=1e-11)
        assert set(fmm.stats.times) == {"upward", "m2l", "l2l", "near"}
        assert fmm.plan_compile_time > 0.0

    def test_set_charges_matches_fresh(self, rng):
        pts = rng.random((700, 3))
        q = rng.uniform(-1.0, 1.0, 700)
        q2 = rng.uniform(-1.0, 1.0, 700)
        fmm = UniformFMM(pts, q, level=2, degrees=5)
        fmm.evaluate()
        fmm.evaluate()
        fmm.set_charges(q2)
        planned = fmm.evaluate()
        reference = UniformFMM(pts, q2, level=2, degrees=5, use_plan=False).evaluate()
        np.testing.assert_allclose(planned, reference, rtol=0, atol=1e-11)

    def test_use_plan_false_never_compiles(self, rng):
        pts = rng.random((300, 3))
        q = rng.uniform(-1.0, 1.0, 300)
        fmm = UniformFMM(pts, q, level=2, degrees=4, use_plan=False)
        fmm.evaluate()
        fmm.evaluate()
        assert fmm._plan is None


# ----------------------------------------------------------------------
# Parallel execution of plan units
# ----------------------------------------------------------------------


class TestParallelPlan:
    def test_matches_serial_plan(self, small_cloud):
        pts, q = small_cloud
        tc = Treecode(pts, q, degree_policy=FixedDegree(4), alpha=0.6)
        plan = tc.compile_plan()
        serial = plan.execute(q)
        par = evaluate_plan_parallel(plan, q, n_threads=3, retry=FAST)
        np.testing.assert_allclose(
            par.potential, serial.potential, rtol=0, atol=1e-13
        )
        assert par.n_blocks == plan.n_units
        assert_stats_equal(par.stats, serial.stats)

    def test_thread_count_invariance(self, small_cloud):
        pts, q = small_cloud
        plan = Treecode(
            pts, q, degree_policy=AdaptiveChargeDegree(p0=3, alpha=0.6), alpha=0.6
        ).compile_plan()
        one = evaluate_plan_parallel(plan, q, n_threads=1, retry=FAST)
        four = evaluate_plan_parallel(plan, q, n_threads=4, retry=FAST)
        np.testing.assert_array_equal(one.potential, four.potential)

    def test_block_faults_recovered_exactly(self, small_cloud, injector_guard):
        pts, q = small_cloud
        plan = Treecode(pts, q, degree_policy=FixedDegree(4), alpha=0.6).compile_plan()
        set_injector(None)
        clean = evaluate_plan_parallel(plan, q, n_threads=2, retry=FAST)
        set_injector(FaultInjector(parse_fault_spec("block_error:0.5"), seed=3))
        faulty = evaluate_plan_parallel(plan, q, n_threads=2, retry=FAST)
        np.testing.assert_array_equal(faulty.potential, clean.potential)
        assert faulty.n_retries + faulty.n_fallbacks > 0


# ----------------------------------------------------------------------
# Fault-injection parity with the un-planned path
# ----------------------------------------------------------------------


class TestPlanFaultParity:
    def test_coeff_corruption_degrades_identically(self, small_cloud, injector_guard):
        """A NaN injected at the coefficient site must trip the same
        guard in the planned and un-planned upward passes."""
        pts, q = small_cloud
        tc = Treecode(pts, q, degree_policy=FixedDegree(4), alpha=0.5)
        plan = tc.compile_plan()
        set_injector(FaultInjector(parse_fault_spec("coeff_nan:1.0"), seed=0))
        with pytest.raises(NumericalCorruptionError):
            plan.execute(q)
        with pytest.raises(NumericalCorruptionError):
            tc.set_charges(q)


# ----------------------------------------------------------------------
# scatter_add
# ----------------------------------------------------------------------


class TestScatterAdd:
    def test_empty_is_noop(self):
        out = np.ones(5)
        res = scatter_add(out, np.array([], dtype=np.int64), np.array([]))
        assert res is out
        np.testing.assert_array_equal(out, np.ones(5))

    def test_duplicates_accumulate(self, rng):
        idx = rng.integers(0, 10, 200)
        vals = rng.standard_normal(200)
        expect = np.zeros(10)
        np.add.at(expect, idx, vals)
        got = scatter_add(np.zeros(10), idx, vals)
        np.testing.assert_allclose(got, expect, rtol=0, atol=1e-14)

    def test_sparse_path_matches_dense(self, rng):
        # few indices into a large output → np.add.at branch
        n = 1000
        idx = rng.integers(0, n, 20)
        vals = rng.standard_normal(20)
        expect = np.zeros(n)
        np.add.at(expect, idx, vals)
        np.testing.assert_array_equal(scatter_add(np.zeros(n), idx, vals), expect)

    def test_two_dimensional(self, rng):
        idx = rng.integers(0, 8, 100)
        vals = rng.standard_normal((100, 3))
        expect = np.zeros((8, 3))
        np.add.at(expect, idx, vals)
        got = scatter_add(np.zeros((8, 3)), idx, vals)
        np.testing.assert_allclose(got, expect, rtol=0, atol=1e-14)

    def test_accumulates_onto_existing(self):
        out = np.arange(4, dtype=np.float64)
        scatter_add(out, np.array([1, 1, 3]), np.array([1.0, 2.0, 5.0]))
        np.testing.assert_array_equal(out, [0.0, 4.0, 2.0, 8.0])
