"""Additional geometry and mesh-quality tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bem.geometries import box, cylinder, gripper, icosphere, propeller
from repro.bem.mesh import TriangleMesh, weld_vertices


def test_box_closed_surface():
    m = box(resolution=3)
    edge_count = {}
    for tri in m.triangles:
        for a, b in ((0, 1), (1, 2), (2, 0)):
            e = tuple(sorted((int(tri[a]), int(tri[b]))))
            edge_count[e] = edge_count.get(e, 0) + 1
    assert all(c == 2 for c in edge_count.values())


def test_box_euler_characteristic():
    m = box(resolution=4)
    edges = set()
    for tri in m.triangles:
        for a, b in ((0, 1), (1, 2), (2, 0)):
            edges.add(tuple(sorted((int(tri[a]), int(tri[b])))))
    assert m.n_vertices - len(edges) + m.n_triangles == 2


def test_cylinder_axes():
    for axis, dim in (("x", 0), ("y", 1), ("z", 2)):
        m = cylinder(radius=0.5, height=3.0, axis=axis, n_around=12, n_along=4)
        ext = m.vertices.max(axis=0) - m.vertices.min(axis=0)
        assert ext[dim] == pytest.approx(3.0, rel=1e-9)
        other = [d for d in range(3) if d != dim]
        assert ext[other[0]] == pytest.approx(1.0, rel=1e-6)


def test_propeller_symmetry():
    """k-fold rotational symmetry about z: rotating the vertex cloud by
    2π/k maps it onto itself (as a set)."""
    m = propeller(n_blades=3, blade_res=6, hub_res=9)
    ang = 2 * np.pi / 3
    c, s = np.cos(ang), np.sin(ang)
    R = np.array([[c, -s, 0], [s, c, 0], [0, 0, 1]])
    rotated = m.vertices @ R.T
    # match rotated vertices against originals with a tolerance
    from scipy.spatial import cKDTree

    tree = cKDTree(m.vertices)
    d, _ = tree.query(rotated)
    assert d.max() < 1e-6


def test_gripper_finger_count_scales():
    m2 = gripper(n_fingers=2, resolution=3)
    m5 = gripper(n_fingers=5, resolution=3)
    assert m5.n_triangles > m2.n_triangles
    assert m5.vertices[:, 0].max() > m2.vertices[:, 0].max()


def test_icosphere_normals_outward():
    m = icosphere(2)
    outward = np.einsum("ij,ij->i", m.normals(), m.centroids())
    assert np.all(outward > 0)


def test_weld_idempotent():
    m = propeller(blade_res=5, hub_res=6)
    again = weld_vertices(m)
    assert again.n_vertices == m.n_vertices
    assert again.n_triangles == m.n_triangles


@given(st.integers(2, 6), st.integers(2, 6))
@settings(max_examples=10, deadline=None)
def test_box_area_property(rx, ry):
    m = box(size=(float(rx), float(ry), 1.0), resolution=2)
    expected = 2 * (rx * ry + rx + ry)
    assert m.total_area() == pytest.approx(expected, rel=1e-9)


def test_triangle_mesh_empty_rejected():
    with pytest.raises(Exception):
        TriangleMesh(np.zeros((3, 3)), np.array([[0, 1, 5]]))
