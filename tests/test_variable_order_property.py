"""Property test for variable-order plans: over random geometries and
random tolerances, the containment chain

    measured max error  <=  a-posteriori Theorem-1 ledger  <=  tol

must hold for every feasible compile, and infeasible tolerances must
refuse (raise :class:`DegreeSelectionError`) rather than clamp.  The
per-level ledger accounting must stay exact either way."""

import numpy as np
import pytest

from repro import DegreeSelectionError, FixedDegree, Treecode
from repro.data.distributions import make_distribution
from repro.direct import pairwise_potential


def _geometry(kind: str, n: int, rng):
    if kind == "collinear":
        # points on a line — degenerate boxes stress the a/r geometry
        # terms of the bound and the budget push-down
        t = np.sort(rng.random(n))
        pts = np.column_stack([t, np.full(n, 0.5), np.full(n, 0.5)])
        return np.ascontiguousarray(pts)
    return make_distribution(kind, n, seed=int(rng.integers(1 << 30)))


CASES = [
    ("uniform", "target"),
    ("uniform", "cluster"),
    ("gaussian", "target"),
    ("gaussian", "cluster"),
    ("collinear", "target"),
    ("collinear", "cluster"),
]


@pytest.mark.parametrize("seed,kind,mode", [
    (1000 + i, kind, mode) for i, (kind, mode) in enumerate(CASES)
])
def test_containment_over_random_tolerances(seed, kind, mode):
    rng = np.random.default_rng(seed)
    n = 250
    pts = _geometry(kind, n, rng)
    q = rng.uniform(-1.0, 1.0, n)
    exact = pairwise_potential(pts, pts, q, exclude=np.arange(n))
    tc = Treecode(pts, q, degree_policy=FixedDegree(4), alpha=0.5)

    feasible = 0
    for _ in range(6):
        tol = float(10.0 ** rng.uniform(-10, -2))
        try:
            plan = tc.compile_plan(mode=mode, tol=tol, accumulate_bounds=True)
        except DegreeSelectionError as err:
            # refusal is the contract for infeasible budgets: the worst
            # offender really is over budget at the cap, and no plan
            # object leaks out half-compiled
            assert err.worst["achieved_bound"] > err.worst["budget"]
            continue
        feasible += 1
        res = plan.execute(q)
        max_err = float(np.abs(res.potential - exact).max())
        max_ledger = float(res.error_bound.max())
        assert max_err <= max_ledger + 1e-15, (
            f"{kind}/{mode} tol={tol:.3e}: measured {max_err:.3e} "
            f"escapes ledger {max_ledger:.3e}"
        )
        assert max_ledger <= tol * (1.0 + 1e-12), (
            f"{kind}/{mode} tol={tol:.3e}: ledger {max_ledger:.3e} > tol"
        )
        # compile-time prediction bounds the a-posteriori ledger too
        assert max_ledger <= plan.predicted_ledger_max * (1.0 + 1e-9)
        # per-level ledger accounting is exact: the level decomposition
        # sums back to the total per-target ledger
        by_level = sum(res.stats.bound_by_level.values())
        assert by_level == pytest.approx(
            float(np.sum(res.error_bound)), rel=1e-9
        )
    assert feasible > 0, f"{kind}/{mode}: no feasible tolerance sampled"
