"""Tests for cluster-cluster compiled plans (dual-traversal far field
accumulated through local expansions) and the shared-memory process
backend of the plan executor."""

import numpy as np
import pytest

from repro import AdaptiveChargeDegree, FixedDegree, Treecode
from repro.direct import pairwise_potential
from repro.parallel import evaluate_plan_parallel, resolve_workers
from repro.perf import ClusterPlan, batched_m2l
from repro.robust import faults as faults_mod
from repro.robust.faults import FaultInjector, parse_fault_spec, set_injector
from repro.robust.retry import RetryPolicy

FAST = RetryPolicy(max_retries=3, base_delay=0.0, max_delay=0.0)


@pytest.fixture
def injector_guard():
    prev = faults_mod.active_injector()
    yield
    set_injector(prev)


def _direct_potential(pts, q):
    return pairwise_potential(pts, pts, q, exclude=np.arange(pts.shape[0]))


# ----------------------------------------------------------------------
# Cluster plan correctness
# ----------------------------------------------------------------------


class TestClusterPlan:
    @pytest.mark.parametrize(
        "policy",
        [FixedDegree(4), AdaptiveChargeDegree(p0=3, alpha=0.6)],
        ids=["fixed", "adaptive"],
    )
    def test_within_own_bound_of_direct(self, small_cloud, policy):
        """The cluster plan's Theorem-1 ledger (with the dual-MAC pair
        radius a_src + a_tgt) must bound the true error per target."""
        pts, q = small_cloud
        tc = Treecode(pts, q, degree_policy=policy, alpha=0.5)
        plan = tc.compile_plan(mode="cluster", accumulate_bounds=True)
        assert isinstance(plan, ClusterPlan)
        res = plan.execute(q)
        exact = _direct_potential(pts, q)
        err = np.abs(res.potential - exact)
        assert np.all(err <= res.error_bound + 1e-12)

    def test_matches_pc_plan_within_combined_ledgers(self, small_cloud):
        pts, q = small_cloud
        tc = Treecode(pts, q, degree_policy=FixedDegree(4), alpha=0.5)
        pc = tc.compile_plan(compute="both", accumulate_bounds=True)
        cc = tc.compile_plan(
            mode="cluster", compute="both", accumulate_bounds=True
        )
        a, b = pc.execute(q), cc.execute(q)
        diff = np.abs(a.potential - b.potential)
        assert np.all(diff <= a.error_bound + b.error_bound + 1e-12)
        # gradients agree to truncation accuracy (same degrees, different
        # expansion points -> not bitwise, but the same order of error)
        rel = np.linalg.norm(a.gradient - b.gradient) / np.linalg.norm(a.gradient)
        assert rel <= 1e-2

    def test_bound_ledger_accounts_exactly(self, small_cloud):
        """Sum of the per-level ledger == sum of per-target bounds (the
        finalize guard enforces this; check the numbers directly too)."""
        pts, q = small_cloud
        tc = Treecode(pts, q, degree_policy=AdaptiveChargeDegree(p0=3), alpha=0.5)
        res = tc.compile_plan(mode="cluster", accumulate_bounds=True).execute(q)
        ledger = sum(res.stats.bound_by_level.values())
        assert ledger == pytest.approx(float(np.sum(res.error_bound)), rel=1e-6)

    def test_never_spills_far_field(self, small_cloud):
        """Cluster far field is O(pairs + boxes·p^2) — it precomputes no
        row matrices, so even a 1 MiB budget spills only near blocks."""
        pts, q = small_cloud
        tc = Treecode(pts, q, degree_policy=FixedDegree(4), alpha=0.5)
        tight = tc.compile_plan(mode="cluster", memory_budget=1 << 20)
        assert tight.n_far_spilled == 0
        full = tc.compile_plan(mode="cluster")
        diff = np.abs(tight.execute(q).potential - full.execute(q).potential)
        assert np.max(diff) <= 1e-12

    def test_stats_frozen_from_global_pairs(self, small_cloud):
        """Unit duplication (a target box appearing in several units)
        must not inflate the frozen interaction counts."""
        pts, q = small_cloud
        tc = Treecode(pts, q, degree_policy=FixedDegree(4), alpha=0.5)
        plan = tc.compile_plan(mode="cluster")
        s = plan.execute(q).stats
        assert s.n_pc_interactions == plan.n_box_pairs
        assert sum(s.interactions_by_degree.values()) == plan.n_box_pairs
        assert sum(s.interactions_by_level.values()) == plan.n_box_pairs

    def test_validation(self, small_cloud, rng):
        pts, q = small_cloud
        tc = Treecode(pts, q, degree_policy=FixedDegree(3), alpha=0.5)
        with pytest.raises(ValueError, match="source particles"):
            tc.compile_plan(mode="cluster", targets=rng.random((10, 3)))
        with pytest.raises(ValueError, match="mode"):
            tc.compile_plan(mode="bogus")
        with pytest.raises(ValueError, match="n_units"):
            tc.compile_plan(mode="cluster", n_units=0)

    def test_describe(self, small_cloud):
        pts, q = small_cloud
        tc = Treecode(pts, q, degree_policy=FixedDegree(3), alpha=0.5)
        plan = tc.compile_plan(mode="cluster")
        text = plan.describe()
        assert "ClusterPlan" in text and "box_pairs" in text
        assert plan.n_units > 0


class TestBatchedM2L:
    def test_matches_reference_m2l(self, rng):
        from repro.multipole.harmonics import ncoef
        from repro.multipole.translations import m2l

        for p in (2, 4, 6):
            B = 17
            C = rng.standard_normal((B, ncoef(p))) + 1j * rng.standard_normal(
                (B, ncoef(p))
            )
            d = rng.standard_normal((B, 3)) * 2.0 + 3.0
            want = np.stack([m2l(C[i], d[i], p).reshape(-1) for i in range(B)])
            got64 = batched_m2l(C, d, p, dtype=np.complex128)
            np.testing.assert_allclose(got64, want, rtol=1e-12, atol=1e-12)
            got32 = batched_m2l(C, d, p, dtype=np.complex64)
            np.testing.assert_allclose(got32, want, rtol=2e-5, atol=2e-5)


# ----------------------------------------------------------------------
# Satellite: float32 far rows (pc plan)
# ----------------------------------------------------------------------


class TestFloat32Rows:
    def test_error_within_10x_of_f64_ledger(self, small_cloud):
        pts, q = small_cloud
        tc = Treecode(pts, q, degree_policy=FixedDegree(4), alpha=0.5)
        f64 = tc.compile_plan(accumulate_bounds=True)
        f32 = tc.compile_plan(accumulate_bounds=True, rows_dtype=np.float32)
        assert f32.memory_bytes < f64.memory_bytes
        exact = _direct_potential(pts, q)
        r64, r32 = f64.execute(q), f32.execute(q)
        err32 = np.abs(r32.potential - exact)
        # single-precision rows only perturb within the truncation-error
        # budget the float64 plan already certifies
        assert np.all(err32 <= 10.0 * (r64.error_bound + 1e-12))

    def test_rejects_other_dtypes(self, small_cloud):
        pts, q = small_cloud
        tc = Treecode(pts, q, degree_policy=FixedDegree(3), alpha=0.5)
        with pytest.raises(ValueError, match="rows_dtype"):
            tc.compile_plan(rows_dtype=np.int32)


# ----------------------------------------------------------------------
# Satellite: 1 MiB spill path (pc plan) vs un-planned evaluation
# ----------------------------------------------------------------------


class TestSpillPath:
    def test_spilled_plan_matches_unplanned(self, small_cloud):
        pts, q = small_cloud
        tc = Treecode(pts, q, degree_policy=FixedDegree(4), alpha=0.5)
        plan = tc.compile_plan(
            compute="both", accumulate_bounds=True, memory_budget=1 << 20
        )
        assert plan.n_far_spilled + plan.n_near_spilled > 0
        assert plan.memory_bytes <= 1 << 20
        direct = tc.evaluate(compute="both", accumulate_bounds=True)
        res = plan.execute(q)
        assert np.max(np.abs(res.potential - direct.potential)) <= 1e-12
        np.testing.assert_allclose(
            res.gradient, direct.gradient, rtol=1e-9, atol=1e-12
        )
        np.testing.assert_allclose(
            res.error_bound, direct.error_bound, rtol=1e-9, atol=1e-12
        )


# ----------------------------------------------------------------------
# Process backend
# ----------------------------------------------------------------------


class TestProcessBackend:
    @pytest.mark.parametrize("mode", ["target", "cluster"])
    def test_matches_serial(self, small_cloud, mode):
        pts, q = small_cloud
        tc = Treecode(pts, q, degree_policy=FixedDegree(4), alpha=0.5)
        plan = tc.compile_plan(mode=mode)
        serial = plan.execute(q)
        proc = evaluate_plan_parallel(
            plan, q, n_threads=2, retry=FAST, backend="process"
        )
        assert np.max(np.abs(proc.potential - serial.potential)) <= 1e-12
        assert proc.n_blocks == plan.n_units
        assert proc.stats.n_pc_interactions == serial.stats.n_pc_interactions
        assert proc.stats.n_pp_pairs == serial.stats.n_pp_pairs
        assert proc.stats.interactions_by_degree == serial.stats.interactions_by_degree

    def test_thread_process_invariance(self, small_cloud):
        pts, q = small_cloud
        plan = Treecode(
            pts, q, degree_policy=AdaptiveChargeDegree(p0=3), alpha=0.5
        ).compile_plan(mode="cluster")
        thr = evaluate_plan_parallel(plan, q, n_threads=3, retry=FAST)
        prc = evaluate_plan_parallel(
            plan, q, n_threads=2, retry=FAST, backend="process"
        )
        np.testing.assert_array_equal(thr.potential, prc.potential)

    def test_block_errors_recovered_exactly(self, small_cloud, injector_guard):
        pts, q = small_cloud
        plan = Treecode(pts, q, degree_policy=FixedDegree(4), alpha=0.5).compile_plan(
            mode="cluster"
        )
        set_injector(None)
        clean = evaluate_plan_parallel(plan, q, n_threads=2, backend="process")
        set_injector(FaultInjector(parse_fault_spec("block_error:0.2"), seed=3))
        faulty = evaluate_plan_parallel(
            plan, q, n_threads=2, retry=FAST, backend="process"
        )
        np.testing.assert_array_equal(faulty.potential, clean.potential)
        assert faulty.n_retries + faulty.n_fallbacks > 0

    def test_killed_workers_recovered_exactly(self, small_cloud, injector_guard):
        """block_kill hard-kills workers (os._exit) — the parent must
        complete the remaining units serially and still match."""
        pts, q = small_cloud
        plan = Treecode(pts, q, degree_policy=FixedDegree(4), alpha=0.5).compile_plan(
            mode="cluster"
        )
        set_injector(None)
        clean = evaluate_plan_parallel(plan, q, n_threads=2, backend="process")
        set_injector(FaultInjector(parse_fault_spec("block_kill:0.5"), seed=5))
        faulty = evaluate_plan_parallel(
            plan, q, n_threads=2, retry=FAST, backend="process"
        )
        np.testing.assert_array_equal(faulty.potential, clean.potential)
        assert faulty.n_fallbacks > 0

    def test_backend_validation(self, small_cloud):
        pts, q = small_cloud
        plan = Treecode(pts, q, degree_policy=FixedDegree(3), alpha=0.5).compile_plan()
        with pytest.raises(ValueError, match="backend"):
            evaluate_plan_parallel(plan, q, backend="mpi")


# ----------------------------------------------------------------------
# Satellite: worker-count resolution
# ----------------------------------------------------------------------


class TestResolveWorkers:
    def test_precedence(self, monkeypatch):
        monkeypatch.delenv("REPRO_NUM_WORKERS", raising=False)
        assert resolve_workers(None) == 4
        assert resolve_workers(None, default=2) == 2
        monkeypatch.setenv("REPRO_NUM_WORKERS", "3")
        assert resolve_workers(None) == 3
        assert resolve_workers(7) == 7  # explicit beats the env
        with pytest.raises(ValueError):
            resolve_workers(0)
        monkeypatch.setenv("REPRO_NUM_WORKERS", "0")
        with pytest.raises(ValueError):
            resolve_workers(None)

    def test_env_reaches_plan_executor(self, small_cloud, monkeypatch):
        pts, q = small_cloud
        plan = Treecode(pts, q, degree_policy=FixedDegree(3), alpha=0.5).compile_plan()
        monkeypatch.setenv("REPRO_NUM_WORKERS", "2")
        res = evaluate_plan_parallel(plan, q, retry=FAST)
        assert res.n_threads == 2

    def test_cli_workers_flag(self, monkeypatch, capsys):
        import os as _os

        from repro import cli

        monkeypatch.delenv("REPRO_NUM_WORKERS", raising=False)
        monkeypatch.setitem(cli._COMMANDS, "ordering", lambda args: "stub")
        rc = cli.main(["ordering", "--workers", "2"])
        assert rc == 0
        assert _os.environ.get("REPRO_NUM_WORKERS") == "2"
        monkeypatch.delenv("REPRO_NUM_WORKERS", raising=False)
        with pytest.raises(SystemExit):
            cli.main(["ordering", "--workers", "0"])
