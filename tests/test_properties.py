"""Property-based tests (hypothesis) for core invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.bounds import theorem1_bound, theorem3_degree
from repro.core.degree import AdaptiveChargeDegree, FixedDegree
from repro.core.treecode import Treecode
from repro.direct import direct_potential
from repro.multipole.expansion import m2p, p2m
from repro.multipole.translations import m2m
from repro.tree.hilbert import grid_from_hilbert_key, hilbert_key_from_grid
from repro.tree.morton import deinterleave3, interleave3
from repro.tree.octree import build_octree

finite_coords = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)


@given(
    arrays(np.uint64, (20, 3), elements=st.integers(0, (1 << 20) - 1)),
)
@settings(max_examples=50, deadline=None)
def test_morton_roundtrip_property(grid):
    keys = interleave3(grid[:, 0], grid[:, 1], grid[:, 2])
    x, y, z = deinterleave3(keys)
    assert np.array_equal(np.stack([x, y, z], axis=1), grid)


@given(
    arrays(np.uint64, (10, 3), elements=st.integers(0, (1 << 12) - 1)),
    st.integers(12, 16),
)
@settings(max_examples=50, deadline=None)
def test_hilbert_roundtrip_property(grid, bits):
    keys = hilbert_key_from_grid(grid, bits)
    assert np.array_equal(grid_from_hilbert_key(keys, bits), grid)


@given(st.integers(10, 120), st.integers(1, 16), st.integers(0, 2**31 - 1))
@settings(max_examples=30, deadline=None)
def test_octree_partition_property(n, leaf_size, seed):
    rng = np.random.default_rng(seed)
    pts = rng.random((n, 3))
    q = rng.uniform(-1, 1, n)
    tree = build_octree(pts, q, leaf_size=leaf_size)
    tree.validate()
    leaves = tree.leaf_ids()
    assert (tree.end[leaves] - tree.start[leaves]).sum() == n
    # aggregates at the root
    assert np.isclose(tree.abs_charge[0], np.abs(q).sum())


@given(st.integers(0, 2**31 - 1), st.integers(2, 8))
@settings(max_examples=20, deadline=None)
def test_multipole_bound_property(seed, p):
    """Theorem 1 dominates the observed truncation error for arbitrary
    random clusters and targets."""
    rng = np.random.default_rng(seed)
    src = rng.normal(size=(15, 3)) * 0.3
    q = rng.uniform(-1, 1, 15)
    a = float(np.linalg.norm(src, axis=1).max())
    if a == 0:
        return
    A = float(np.abs(q).sum())
    tgt = rng.normal(size=(5, 3))
    nrm = np.linalg.norm(tgt, axis=1, keepdims=True)
    tgt = tgt / np.maximum(nrm, 1e-12) * (a * rng.uniform(1.5, 4.0))
    r = np.linalg.norm(tgt, axis=1)
    M = p2m(src, q, p)
    approx = m2p(M, tgt, p)
    d = tgt[:, None, :] - src[None, :, :]
    exact = (1.0 / np.sqrt(np.einsum("tsi,tsi->ts", d, d))) @ q
    bound = theorem1_bound(A, a, r, p)
    assert np.all(np.abs(approx - exact) <= bound * (1 + 1e-9) + 1e-13)


@given(st.integers(0, 2**31 - 1))
@settings(max_examples=20, deadline=None)
def test_m2m_exactness_property(seed):
    rng = np.random.default_rng(seed)
    p = int(rng.integers(1, 9))
    src = rng.normal(size=(10, 3)) * 0.3
    q = rng.uniform(-1, 1, 10)
    c = rng.normal(size=3) * 0.5
    shifted = m2m(p2m(src - c, q, p), c[None, :], p)[0]
    direct = p2m(src, q, p)
    scale = max(1.0, float(np.abs(direct).max()))
    assert np.allclose(shifted, direct, rtol=1e-9, atol=1e-11 * scale)


@given(
    st.floats(0.2, 0.8),
    st.integers(1, 8),
    st.floats(0.1, 1000.0),
)
@settings(max_examples=100, deadline=None)
def test_theorem3_floor_and_monotonicity(alpha, p0, ratio):
    """Degree is >= p0 always, and monotone in the charge ratio."""
    A = np.array([ratio, ratio * 2])
    p = theorem3_degree(A, 1.0, p0, alpha)
    assert p[0] >= p0
    assert p[1] >= p[0]


@given(st.integers(0, 2**31 - 1), st.floats(0.3, 0.7))
@settings(max_examples=10, deadline=None)
def test_treecode_bound_property(seed, alpha):
    """End-to-end: accumulated bound dominates observed error for random
    small systems and both policies."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(50, 150))
    pts = rng.random((n, 3))
    q = rng.uniform(-1, 1, n)
    ref = direct_potential(pts, q)
    for policy in (FixedDegree(3), AdaptiveChargeDegree(p0=3, alpha=alpha)):
        tc = Treecode(pts, q, degree_policy=policy, alpha=alpha, leaf_size=4)
        res = tc.evaluate(accumulate_bounds=True)
        assert np.all(np.abs(res.potential - ref) <= res.error_bound + 1e-11)


# ---------------------------------------------------------------------------
# degenerate geometry: the treecode must either evaluate within its
# Theorem-1 ledger or fail loudly through the guards — never hang and
# never return NaN silently
# ---------------------------------------------------------------------------


def _check_ledger(pts, q, policy, alpha=0.5, leaf_size=4):
    tc = Treecode(pts, q, degree_policy=policy, alpha=alpha, leaf_size=leaf_size)
    res = tc.evaluate(accumulate_bounds=True)
    assert np.all(np.isfinite(res.potential)), "silent NaN/Inf in potential"
    assert np.all(np.isfinite(res.error_bound)), "silent NaN/Inf in bound"
    ref = direct_potential(pts, q)
    scale = max(1.0, float(np.abs(ref).max()))
    assert np.all(
        np.abs(res.potential - ref) <= res.error_bound + 1e-11 * scale
    )
    return res


@given(st.integers(0, 2**31 - 1), st.integers(2, 6))
@settings(max_examples=15, deadline=None)
def test_coincident_particles_property(seed, n_dup):
    """Clusters of exactly coincident points (zero-extent leaves) stay
    within the ledger — r-a denominators must not blow up."""
    rng = np.random.default_rng(seed)
    base = rng.random((20, 3))
    pts = np.concatenate([base, np.repeat(base[:n_dup], 3, axis=0)])
    q = rng.uniform(-1, 1, len(pts))
    _check_ledger(pts, q, AdaptiveChargeDegree(p0=3, alpha=0.5))


@given(st.integers(0, 2**31 - 1))
@settings(max_examples=10, deadline=None)
def test_all_zero_charges_property(seed):
    """q = 0 everywhere: the potential and the bound are exactly zero
    (A_j = 0 collapses Theorem 1), with no 0/0 NaN."""
    rng = np.random.default_rng(seed)
    pts = rng.random((80, 3))
    q = np.zeros(80)
    res = _check_ledger(pts, q, AdaptiveChargeDegree(p0=3, alpha=0.5))
    assert np.all(res.potential == 0.0)
    assert np.all(res.error_bound == 0.0)


@given(st.integers(0, 2**31 - 1), st.integers(2, 40))
@settings(max_examples=15, deadline=None)
def test_single_leaf_tree_property(seed, n):
    """Instances that fit in one leaf (root == leaf, no far field at
    all) reduce to the exact direct sum with a zero bound."""
    rng = np.random.default_rng(seed)
    pts = rng.random((n, 3))
    q = rng.uniform(-1, 1, n)
    res = _check_ledger(
        pts, q, AdaptiveChargeDegree(p0=3, alpha=0.5), leaf_size=64
    )
    ref = direct_potential(pts, q)
    scale = max(1.0, float(np.abs(ref).max()))
    assert np.allclose(res.potential, ref, rtol=0, atol=1e-12 * scale)


@given(st.integers(0, 2**31 - 1))
@settings(max_examples=10, deadline=None)
def test_extreme_charge_contrast_property(seed):
    """|q| spanning 12 decades: Theorem-3 degree selection sees A_j
    ratios of 1e12 and the ledger must still dominate the error."""
    rng = np.random.default_rng(seed)
    n = 100
    pts = rng.random((n, 3))
    mag = 10.0 ** rng.uniform(-6, 6, n)
    q = mag * np.where(rng.random(n) < 0.5, -1.0, 1.0)
    for policy in (
        FixedDegree(4),
        AdaptiveChargeDegree(p0=3, alpha=0.5),
    ):
        _check_ledger(pts, q, policy)


@given(st.integers(0, 2**31 - 1))
@settings(max_examples=10, deadline=None)
def test_treecode_translation_invariance(seed):
    """Shifting all particles rigidly must not change potentials (beyond
    tiny floating-point differences)."""
    rng = np.random.default_rng(seed)
    pts = rng.random((120, 3))
    q = rng.uniform(-1, 1, 120)
    shift = rng.normal(size=3) * 10
    r1 = Treecode(pts, q, degree_policy=FixedDegree(5)).evaluate().potential
    r2 = Treecode(pts + shift, q, degree_policy=FixedDegree(5)).evaluate().potential
    assert np.allclose(r1, r2, rtol=1e-6, atol=1e-9)
