"""Tests for the FMM extension."""

import numpy as np
import pytest

from repro.direct import direct_potential
from repro.fmm import UniformFMM, level_degrees


def rel_err(a, b):
    return np.linalg.norm(a - b) / np.linalg.norm(b)


@pytest.fixture(scope="module")
def cloud():
    rng = np.random.default_rng(42)
    pts = rng.random((1500, 3))
    q = rng.uniform(-1, 1, 1500)
    return pts, q, direct_potential(pts, q)


def test_accuracy(cloud):
    pts, q, ref = cloud
    fmm = UniformFMM(pts, q, level=3, degrees=8)
    assert rel_err(fmm.evaluate(), ref) < 5e-5


def test_error_decreases_with_degree(cloud):
    pts, q, ref = cloud
    errs = [
        rel_err(UniformFMM(pts, q, level=3, degrees=p).evaluate(), ref)
        for p in (2, 5, 9)
    ]
    assert errs[0] > errs[1] > errs[2]


def test_level_invariance(cloud):
    """Different leaf levels must agree to within truncation error."""
    pts, q, ref = cloud
    e2 = rel_err(UniformFMM(pts, q, level=2, degrees=7).evaluate(), ref)
    e3 = rel_err(UniformFMM(pts, q, level=3, degrees=7).evaluate(), ref)
    assert e2 < 1e-3 and e3 < 1e-3


def test_adaptive_level_degrees_improve_error(cloud):
    """Theorem-3 schedule in the FMM: raising coarse-level degrees beats
    the fixed-degree FMM of the same leaf degree."""
    pts, q, ref = cloud
    L = 3
    fixed = UniformFMM(pts, q, level=L, degrees=4)
    sched = level_degrees(4, L + 1, c=1.5)
    adaptive = UniformFMM(pts, q, level=L, degrees=sched)
    e_fixed = rel_err(fixed.evaluate(), ref)
    e_adaptive = rel_err(adaptive.evaluate(), ref)
    assert e_adaptive < e_fixed


def test_level_degrees_schedule():
    assert level_degrees(4, 5, c=0.0) == [4, 4, 4, 4, 4]
    assert level_degrees(4, 5, c=1.0) == [8, 7, 6, 5, 4]
    assert level_degrees(4, 5, c=2.0, p_max=9) == [9, 9, 8, 6, 4]
    with pytest.raises(ValueError):
        level_degrees(-1, 4)


def test_stats_populated(cloud):
    pts, q, _ = cloud
    fmm = UniformFMM(pts, q, level=3, degrees=5)
    fmm.evaluate()
    assert fmm.stats.n_m2l > 0
    assert fmm.stats.n_pp_pairs > 0
    assert fmm.stats.n_terms_m2l == fmm.stats.n_m2l * 36
    assert set(fmm.stats.times) == {"upward", "m2l", "l2l", "near"}


def test_auto_level_selection():
    rng = np.random.default_rng(0)
    pts = rng.random((5000, 3))
    fmm = UniformFMM(pts, np.ones(5000))
    assert fmm.L >= 2


def test_original_order_restored():
    rng = np.random.default_rng(1)
    pts = rng.random((600, 3))
    q = rng.uniform(0.5, 1, 600)
    ref = direct_potential(pts, q)
    phi = UniformFMM(pts, q, level=2, degrees=10).evaluate()
    # strong per-particle agreement only if ordering correct
    assert np.allclose(phi, ref, rtol=1e-5)


def test_validation():
    pts = np.random.default_rng(0).random((50, 3))
    with pytest.raises(ValueError):
        UniformFMM(pts, np.ones(50), level=1)
    with pytest.raises(ValueError):
        UniformFMM(pts, np.ones(49))
    with pytest.raises(ValueError):
        UniformFMM(pts, np.ones(50), level=3, degrees=[4, 4])
    with pytest.raises(ValueError):
        UniformFMM(np.zeros((0, 3)), np.zeros(0))


def test_clustered_distribution(cloud):
    """Empty cells must be handled (Gaussian leaves most cells empty)."""
    rng = np.random.default_rng(3)
    pts = rng.normal(0.5, 0.05, (800, 3))
    q = rng.uniform(-1, 1, 800)
    ref = direct_potential(pts, q)
    phi = UniformFMM(pts, q, level=3, degrees=8).evaluate()
    assert rel_err(phi, ref) < 1e-3
