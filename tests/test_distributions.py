"""Tests for the workload generators."""

import numpy as np
import pytest

from repro.data.distributions import (
    DISTRIBUTIONS,
    gaussian_blob,
    make_distribution,
    overlapping_gaussians,
    plummer,
    sphere_shell,
    uniform_charges,
    uniform_cube,
    unit_charges,
)


def test_shapes_and_determinism():
    for name in DISTRIBUTIONS:
        a = make_distribution(name, 500, seed=7)
        b = make_distribution(name, 500, seed=7)
        c = make_distribution(name, 500, seed=8)
        assert a.shape == (500, 3)
        assert np.array_equal(a, b)
        if name != "lattice":  # the unjittered lattice ignores the seed
            assert not np.array_equal(a, c)


def test_uniform_cube_bounds():
    pts = uniform_cube(2000, seed=0, edge=3.0)
    assert pts.min() >= 0 and pts.max() <= 3.0
    # roughly uniform: each octant holds ~1/8 of the mass
    oct_counts = np.histogramdd(pts, bins=(2, 2, 2), range=[(0, 3)] * 3)[0]
    assert oct_counts.min() > 150


def test_gaussian_concentration():
    pts = gaussian_blob(2000, seed=0, sigma=0.1)
    d = np.linalg.norm(pts - 0.5, axis=1)
    assert np.median(d) < 0.3  # concentrated near the center


def test_overlapping_gaussians_multimodal():
    pts = overlapping_gaussians(3000, seed=1, n_blobs=4, sigma=0.05)
    assert pts.shape == (3000, 3)
    # spread should exceed a single blob's sigma by a lot
    assert pts.std(axis=0).max() > 0.1


def test_sphere_shell_radius():
    pts = sphere_shell(1000, seed=0, radius=0.5, thickness=0.01)
    r = np.linalg.norm(pts - 0.5, axis=1)
    assert abs(np.median(r) - 0.5) < 0.02
    assert r.std() < 0.05


def test_plummer_profile():
    pts = plummer(5000, seed=0, scale=0.1)
    r = np.linalg.norm(pts - 0.5, axis=1)
    # half-mass radius of a Plummer sphere is ~1.3 scale lengths
    assert 0.05 < np.median(r) < 0.3
    assert r.max() <= 1.0 + 1e-9  # capped at 10 scale lengths


def test_charges():
    q = unit_charges(100)
    assert np.all(q == 1.0)
    qs = unit_charges(1000, seed=0, signed=True)
    assert set(np.unique(qs)) == {-1.0, 1.0}
    assert abs(qs.sum()) < 200  # roughly balanced
    qu = uniform_charges(1000, seed=0, lo=0.5, hi=1.5)
    assert qu.min() >= 0.5 and qu.max() <= 1.5


def test_invalid_inputs():
    with pytest.raises(ValueError):
        make_distribution("nope", 10)
    with pytest.raises(ValueError):
        uniform_cube(0)
    with pytest.raises(ValueError):
        overlapping_gaussians(10, n_blobs=0)
    with pytest.raises(ValueError):
        unit_charges(0)
