"""Tests for the persistent plan store (repro.perf.store).

Covers the satellite contract: content-digest invalidation on perturbed
points / tol / backend / dtype, corruption and truncation falling back
to a fresh compile with the ``plan_cache_misses{reason}`` counter
incremented, and mmap-loaded plans matching freshly compiled ones —
bitwise through the serial, thread and process executors.
"""

import os

import numpy as np
import pytest

import repro
from repro.core.degree import AdaptiveChargeDegree, FixedDegree
from repro.core.treecode import Treecode
from repro.obs import REGISTRY, tracing
from repro.perf.store import (
    ENV_PLAN_CACHE,
    PlanStoreError,
    load_plan,
    plan_digest,
    resolve_cache_dir,
    save_plan,
)

N = 600


@pytest.fixture
def built(rng):
    pts = rng.random((N, 3))
    q = rng.uniform(-1, 1, N)
    tc = Treecode(pts, q, degree_policy=FixedDegree(4), alpha=0.5)
    return pts, q, tc


def _digest(tc, plan, **over):
    kw = dict(
        tgt=None,
        self_targets=True,
        compute="potential",
        accumulate_bounds=False,
        memory_budget=plan.memory_budget,
        mode="target",
        rows_dtype=plan.rows_dtype,
        n_units=None,
        tol=None,
        translation_backend=plan.translation_backend,
    )
    kw.update(over)
    return plan_digest(tc, **kw)


def test_roundtrip_bitwise(built, tmp_path):
    pts, q, tc = built
    for mode in ("target", "cluster"):
        plan = tc.compile_plan(mode=mode, accumulate_bounds=True, cache_dir="")
        ref = plan.execute(q)
        path = tmp_path / f"{mode}.plan"
        save_plan(plan, path, digest="d")
        loaded = load_plan(path, expected_digest="d")
        got = loaded.execute(q)
        assert np.array_equal(got.potential, ref.potential)
        assert np.array_equal(got.error_bound, ref.error_bound)


def test_loaded_arrays_are_readonly_views(built, tmp_path):
    pts, q, tc = built
    plan = tc.compile_plan(cache_dir="")
    path = tmp_path / "p.plan"
    save_plan(plan, path)
    loaded = load_plan(path)
    tree_pts = loaded.tc.tree.points
    assert not tree_pts.flags.writeable
    with pytest.raises((ValueError, RuntimeError)):
        tree_pts[0, 0] = 0.0


def test_digest_invalidation(built, rng):
    """Perturbed points, a different tol, backend or dtype each change
    the content digest — the cache key the store addresses plans by."""
    pts, q, tc = built
    plan = tc.compile_plan(cache_dir="")
    base = _digest(tc, plan)
    assert base == _digest(tc, plan)  # deterministic

    pts2 = pts.copy()
    pts2[0, 0] += 1e-9
    tc2 = Treecode(pts2, q, degree_policy=FixedDegree(4), alpha=0.5)
    assert _digest(tc2, plan) != base

    assert _digest(tc, plan, tol=1e-6) != base
    assert _digest(tc, plan, translation_backend="rotation") != base
    assert _digest(tc, plan, rows_dtype=np.float32) != base
    assert _digest(tc, plan, mode="cluster") != base

    # policy parameters feed the digest too
    tc3 = Treecode(
        pts, q, degree_policy=AdaptiveChargeDegree(p0=4, alpha=0.5), alpha=0.5
    )
    assert _digest(tc3, plan) != base


def test_cached_compile_hits_and_is_bitwise(built, tmp_path):
    pts, q, tc = built
    ref = tc.compile_plan(cache_dir="").execute(q)
    p1 = tc.compile_plan(cache_dir=str(tmp_path))  # miss (absent) + store
    assert len(list(tmp_path.glob("*.plan"))) == 1
    p2 = tc.compile_plan(cache_dir=str(tmp_path))  # hit
    assert len(list(tmp_path.glob("*.plan"))) == 1
    for p in (p1, p2):
        assert np.array_equal(p.execute(q).potential, ref.potential)


def _miss_counts() -> dict:
    counter = REGISTRY.counter(
        "plan_cache_misses",
        "plan-store lookups that fell back to a fresh compile",
        labelnames=("reason",),
    )
    return {key[0]: inst.value for key, inst in counter._items()}


def test_truncated_and_corrupt_fall_back(built, tmp_path):
    """Damaged cache files must not fail the compile: the load error is
    counted under its reason and a fresh plan is compiled (and the
    cache healed by re-storing it)."""
    pts, q, tc = built
    ref = tc.compile_plan(cache_dir="").execute(q)
    tc.compile_plan(cache_dir=str(tmp_path))
    (path,) = tmp_path.glob("*.plan")

    REGISTRY.reset()
    tracing.enable()
    try:
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])  # truncate
        plan = tc.compile_plan(cache_dir=str(tmp_path))
        assert np.array_equal(plan.execute(q).potential, ref.potential)
        assert _miss_counts().get("truncated") == 1

        # the fallback compile re-stored a loadable file (byte equality
        # is not guaranteed — compile-time stats ride in the header)
        assert np.array_equal(
            load_plan(path).execute(q).potential, ref.potential
        )
        path.write_bytes(b"\x00garbage" * 64)
        plan = tc.compile_plan(cache_dir=str(tmp_path))
        assert np.array_equal(plan.execute(q).potential, ref.potential)
        assert _miss_counts() == {"truncated": 1, "corrupt": 1}

        assert REGISTRY.counter("plan_cache_stores").value == 2
        assert REGISTRY.counter("plan_cache_hits").value == 0
        plan = tc.compile_plan(cache_dir=str(tmp_path))
        assert REGISTRY.counter("plan_cache_hits").value == 1
    finally:
        tracing.set_enabled(False)
        REGISTRY.reset()


def test_stale_digest_and_version_mismatch(built, tmp_path, monkeypatch):
    pts, q, tc = built
    plan = tc.compile_plan(cache_dir="")
    path = tmp_path / "p.plan"
    save_plan(plan, path, digest="aaaa")
    with pytest.raises(PlanStoreError) as exc:
        load_plan(path, expected_digest="bbbb")
    assert exc.value.reason == "stale"

    monkeypatch.setattr(repro, "__version__", "0.0.0-other")
    with pytest.raises(PlanStoreError) as exc:
        load_plan(path, expected_digest="aaaa")
    assert exc.value.reason == "version"


def test_absent_file_raises_absent(tmp_path):
    with pytest.raises(PlanStoreError) as exc:
        load_plan(tmp_path / "nope.plan")
    assert exc.value.reason == "absent"


def test_resolve_cache_dir(monkeypatch, tmp_path):
    monkeypatch.delenv(ENV_PLAN_CACHE, raising=False)
    assert resolve_cache_dir(None) is None
    assert resolve_cache_dir("") is None
    assert resolve_cache_dir(str(tmp_path)) == tmp_path
    monkeypatch.setenv(ENV_PLAN_CACHE, str(tmp_path / "env"))
    assert resolve_cache_dir(None) == tmp_path / "env"
    assert resolve_cache_dir("") is None  # explicit empty beats the env var
    monkeypatch.setenv(ENV_PLAN_CACHE, "")
    assert resolve_cache_dir(None) is None


def test_mmap_loaded_plan_bitwise_across_executors(built, tmp_path, rng):
    """The warm-started (read-only, mmap-backed) plan must be
    indistinguishable from the fresh one under every executor."""
    from repro.parallel import evaluate_plan_parallel

    pts, q, tc = built
    fresh = tc.compile_plan(mode="cluster", cache_dir="")
    path = tmp_path / "c.plan"
    save_plan(fresh, path)
    loaded = load_plan(path)

    q2 = rng.uniform(-1, 1, N)
    ref = fresh.execute(q2).potential
    assert np.array_equal(loaded.execute(q2).potential, ref)
    for backend in ("thread", "process"):
        got = evaluate_plan_parallel(
            loaded, q2, n_threads=2, backend=backend
        ).potential
        assert np.array_equal(got, ref), backend

    # and a batch through the loaded plan, per-column bitwise with the
    # fresh plan's batch
    Q = np.stack([q2, -q2, 0.5 * q2], axis=1)
    assert np.array_equal(loaded.execute(Q).potential, fresh.execute(Q).potential)


def test_fmm_plan_cache_roundtrip(rng, tmp_path):
    from repro.fmm.engine import UniformFMM

    pts = rng.random((800, 3))
    q = rng.uniform(-1, 1, 800)
    f1 = UniformFMM(pts, q, level=2, degrees=4, plan_cache=str(tmp_path))
    f1.evaluate()
    a = f1.evaluate()  # compiles + stores
    assert len(list(tmp_path.glob("*.plan"))) == 1
    f2 = UniformFMM(pts, q, level=2, degrees=4, plan_cache=str(tmp_path))
    f2.evaluate()
    b = f2.evaluate()  # warm load
    assert len(list(tmp_path.glob("*.plan"))) == 1
    assert np.array_equal(a, b)


def test_bem_plan_cache_roundtrip(rng, tmp_path):
    from repro.bem.geometries import icosphere
    from repro.bem.operator import SingleLayerOperator

    mesh = icosphere(1)
    sig = rng.uniform(-1, 1, mesh.n_vertices)
    op1 = SingleLayerOperator(mesh, plan_cache=str(tmp_path))
    op1.matvec(sig)
    a = op1.matvec(sig)  # compiles + stores
    op2 = SingleLayerOperator(mesh, plan_cache=str(tmp_path))
    op2.matvec(sig)
    b = op2.matvec(sig)  # warm load
    assert len(list(tmp_path.glob("*.plan"))) == 1
    assert np.array_equal(a, b)


def test_unwritable_cache_dir_still_compiles(built, monkeypatch, tmp_path):
    pts, q, tc = built
    blocked = tmp_path / "blocked"
    blocked.mkdir()
    blocked.chmod(0o400)
    if os.access(blocked, os.W_OK):  # running as root: chmod is a no-op
        pytest.skip("cannot create an unwritable directory here")
    plan = tc.compile_plan(cache_dir=str(blocked / "cache"))
    ref = tc.compile_plan(cache_dir="")
    assert np.array_equal(plan.execute(q).potential, ref.execute(q).potential)
