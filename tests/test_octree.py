"""Tests for the adaptive octree."""

import numpy as np
import pytest

from repro.tree.octree import build_octree


def test_structural_invariants(rng):
    pts = rng.random((1000, 3))
    q = rng.uniform(-1, 1, 1000)
    tree = build_octree(pts, q, leaf_size=8)
    tree.validate()


def test_every_particle_in_exactly_one_leaf(rng):
    pts = rng.random((500, 3))
    tree = build_octree(pts, np.ones(500), leaf_size=4)
    seen = np.zeros(500, dtype=int)
    for leaf in tree.leaf_ids():
        seen[tree.start[leaf] : tree.end[leaf]] += 1
    assert np.all(seen == 1)


def test_leaf_capacity_respected(rng):
    pts = rng.random((2000, 3))
    tree = build_octree(pts, np.ones(2000), leaf_size=16)
    leaves = tree.leaf_ids()
    counts = tree.end[leaves] - tree.start[leaves]
    assert counts.max() <= 16
    assert counts.min() >= 1


def test_children_partition_particles(rng):
    pts = rng.random((800, 3))
    tree = build_octree(pts, np.ones(800), leaf_size=8)
    for i in range(tree.n_nodes):
        if tree.n_children[i]:
            ch = tree.children(i)
            total = (tree.end[ch] - tree.start[ch]).sum()
            assert total == tree.end[i] - tree.start[i]


def test_particles_inside_node_boxes(rng):
    pts = rng.random((600, 3))
    tree = build_octree(pts, np.ones(600), leaf_size=8)
    for i in range(tree.n_nodes):
        sl = tree.particles_of(i)
        d = np.abs(tree.points[sl] - tree.center_geom[i])
        assert np.all(d <= tree.half_size[i] * (1 + 1e-9))


def test_radius_encloses_particles(rng):
    pts = rng.random((600, 3))
    q = rng.uniform(-2, 2, 600)
    tree = build_octree(pts, q, leaf_size=8)
    for i in range(tree.n_nodes):
        sl = tree.particles_of(i)
        d = np.linalg.norm(tree.points[sl] - tree.center_exp[i], axis=1)
        assert d.max() <= tree.radius[i] * (1 + 1e-12) + 1e-15


def test_charge_aggregates(rng):
    pts = rng.random((400, 3))
    q = rng.uniform(-1, 1, 400)
    tree = build_octree(pts, q, leaf_size=8)
    for i in range(0, tree.n_nodes, 7):
        sl = tree.particles_of(i)
        assert tree.abs_charge[i] == pytest.approx(np.abs(tree.charges[sl]).sum())
        assert tree.net_charge[i] == pytest.approx(tree.charges[sl].sum())
    # root totals
    assert tree.abs_charge[0] == pytest.approx(np.abs(q).sum())
    assert tree.net_charge[0] == pytest.approx(q.sum())


def test_expansion_center_modes(rng):
    pts = rng.random((300, 3))
    q = rng.uniform(0.1, 1, 300)
    t_box = build_octree(pts, q, expansion_center="box")
    t_com = build_octree(pts, q, expansion_center="abs_com")
    assert np.allclose(t_box.center_exp, t_box.center_geom)
    # abs_com differs from box center in general, and lies inside the box
    assert not np.allclose(t_com.center_exp, t_com.center_geom)
    d = np.abs(t_com.center_exp - t_com.center_geom)
    assert np.all(d <= t_com.half_size[:, None] * (1 + 1e-9))


def test_level_ranges_cover_all_nodes(rng):
    pts = rng.random((500, 3))
    tree = build_octree(pts, np.ones(500), leaf_size=4)
    total = sum(hi - lo for lo, hi in tree.level_ranges)
    assert total == tree.n_nodes
    for d, (lo, hi) in enumerate(tree.level_ranges):
        assert np.all(tree.level[lo:hi] == d)


def test_morton_order_preserved(rng):
    """perm must map the sorted arrays back to the caller's input."""
    pts = rng.random((200, 3))
    q = rng.uniform(-1, 1, 200)
    tree = build_octree(pts, q)
    assert np.allclose(pts[tree.perm], tree.points)
    assert np.allclose(q[tree.perm], tree.charges)


def test_duplicate_points_handled():
    pts = np.tile(np.array([[0.5, 0.5, 0.5]]), (50, 1))
    pts = np.concatenate([pts, np.random.default_rng(0).random((50, 3))])
    tree = build_octree(pts, np.ones(100), leaf_size=4, max_depth=6)
    tree.validate()
    # duplicates end up in one deep leaf that may exceed leaf_size
    leaves = tree.leaf_ids()
    assert (tree.end[leaves] - tree.start[leaves]).sum() == 100


def test_single_particle():
    tree = build_octree(np.array([[0.3, 0.4, 0.5]]), np.array([2.0]))
    assert tree.n_nodes == 1
    assert tree.radius[0] == pytest.approx(0.0, abs=1e-12)
    assert tree.abs_charge[0] == 2.0


def test_invalid_inputs():
    with pytest.raises(ValueError):
        build_octree(np.zeros((0, 3)), np.zeros(0))
    with pytest.raises(ValueError):
        build_octree(np.zeros((5, 2)), np.zeros(5))
    with pytest.raises(ValueError):
        build_octree(np.zeros((5, 3)), np.zeros(4))
    with pytest.raises(ValueError):
        build_octree(np.zeros((5, 3)), np.zeros(5), leaf_size=0)
    with pytest.raises(ValueError):
        build_octree(np.zeros((5, 3)), np.zeros(5), expansion_center="bogus")


def test_gaussian_distribution_adaptivity(rng):
    """A concentrated distribution should produce a deeper tree than a
    uniform one with the same n and leaf size."""
    n = 2000
    uni = rng.random((n, 3))
    gau = rng.normal(0.5, 0.02, (n, 3))
    t_uni = build_octree(uni, np.ones(n), leaf_size=8)
    t_gau = build_octree(gau, np.ones(n), leaf_size=8)
    assert t_gau.height > t_uni.height
