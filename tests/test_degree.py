"""Tests for degree-selection policies."""

import numpy as np
import pytest

from repro.core.degree import AdaptiveChargeDegree, FixedDegree, LevelDegree
from repro.tree.octree import build_octree


@pytest.fixture
def tree(rng):
    pts = rng.random((1500, 3))
    q = rng.uniform(0.5, 1.5, 1500)
    return build_octree(pts, q, leaf_size=8)


def test_fixed_degree(tree):
    d = FixedDegree(5).degrees(tree)
    assert d.shape == (tree.n_nodes,)
    assert np.all(d == 5)
    with pytest.raises(ValueError):
        FixedDegree(-1)


def test_adaptive_monotone_up_the_tree(tree):
    """A parent aggregates at least a child's charge, so with the 'charge'
    normalization its degree is >= every child's."""
    pol = AdaptiveChargeDegree(p0=4, alpha=0.5, mode="charge", anchor="leaf_min")
    d = pol.degrees(tree)
    for i in range(tree.n_nodes):
        if tree.n_children[i]:
            assert np.all(d[i] >= d[tree.children(i)])


def test_adaptive_floor_is_p0(tree):
    d = AdaptiveChargeDegree(p0=3, alpha=0.5).degrees(tree)
    assert d.min() >= 3
    leaves = tree.leaf_ids()
    # some leaf must sit at the floor (at or below the anchor)
    assert d[leaves].min() == 3


def test_adaptive_cap(tree):
    d = AdaptiveChargeDegree(p0=4, alpha=0.5, p_max=6, mode="charge", anchor="leaf_min").degrees(tree)
    assert d.max() <= 6


def test_adaptive_root_grows_with_system_charge(rng):
    """Same geometry, 100x charges: anchor scales too, so degrees are
    invariant to a global charge rescale (the bound ratio is what matters)."""
    pts = rng.random((800, 3))
    q = rng.uniform(0.5, 1.5, 800)
    t1 = build_octree(pts, q)
    t2 = build_octree(pts, 100.0 * q)
    pol = AdaptiveChargeDegree(p0=4, alpha=0.5)
    assert np.array_equal(pol.degrees(t1), pol.degrees(t2))


def test_adaptive_alpha_effect(tree):
    """Smaller alpha means faster-converging series: fewer extra degrees."""
    d_tight = AdaptiveChargeDegree(p0=4, alpha=0.3).degrees(tree)
    d_loose = AdaptiveChargeDegree(p0=4, alpha=0.7).degrees(tree)
    assert d_tight.max() <= d_loose.max()
    assert d_tight.sum() <= d_loose.sum()


def test_adaptive_zero_charges(rng):
    pts = rng.random((100, 3))
    tree0 = build_octree(pts, np.zeros(100))
    d = AdaptiveChargeDegree(p0=4, alpha=0.5).degrees(tree0)
    assert np.all(d == 4)


def test_adaptive_single_particle_leaves_not_inflated(rng):
    """Near-zero-radius clusters must not hit the degree cap (regression:
    single-particle leaves have radius ~1e-17 from center round-off)."""
    pts = rng.random((300, 3))
    q = np.ones(300)
    tree = build_octree(pts, q, leaf_size=1)
    d = AdaptiveChargeDegree(p0=4, alpha=0.5, p_max=30).degrees(tree)
    leaves = tree.leaf_ids()
    assert d[leaves].max() <= 8  # leaves are all ~unit charge


def test_adaptive_validation():
    with pytest.raises(ValueError):
        AdaptiveChargeDegree(p0=-1)
    with pytest.raises(ValueError):
        AdaptiveChargeDegree(alpha=1.0)
    with pytest.raises(ValueError):
        AdaptiveChargeDegree(p0=5, p_max=4)
    with pytest.raises(ValueError):
        AdaptiveChargeDegree(anchor="nope")
    with pytest.raises(ValueError):
        AdaptiveChargeDegree(mode="nope")


def test_level_degree_schedule(tree):
    pol = LevelDegree(p0=4, alpha=0.5)
    d = pol.degrees(tree)
    # leaves at the deepest level get exactly p0
    deepest = tree.nodes_at_level(tree.height - 1)
    assert np.all(d[deepest] == 4)
    # root gets p0 + ceil(c*(height-1))
    from repro.core.bounds import degree_increment_per_level

    c = degree_increment_per_level(0.5)
    assert d[0] == min(30, 4 + int(np.ceil(c * (tree.height - 1))))


def test_level_degree_validation():
    with pytest.raises(ValueError):
        LevelDegree(p0=-2)
    with pytest.raises(ValueError):
        LevelDegree(alpha=0.0)
    with pytest.raises(ValueError):
        LevelDegree(p0=9, p_max=5)
