"""Tests for the parallel runtime: partitioning, executors, machine model."""

import numpy as np
import pytest

from repro.core.degree import AdaptiveChargeDegree, FixedDegree
from repro.core.treecode import Treecode
from repro.parallel import (
    MachineModel,
    evaluate_parallel,
    make_blocks,
    profile_blocks,
    schedule_blocks,
    simulate,
)


@pytest.fixture
def built(rng):
    pts = rng.random((800, 3))
    q = rng.uniform(-1, 1, 800)
    return pts, q, Treecode(pts, q, degree_policy=FixedDegree(4), alpha=0.5)


def test_make_blocks_partition(rng):
    pts = rng.random((503, 3))
    blocks = make_blocks(pts, 64)
    assert len(blocks) == 8
    all_idx = np.concatenate(blocks)
    assert sorted(all_idx.tolist()) == list(range(503))


def test_make_blocks_orderings(rng):
    pts = rng.random((256, 3))
    for ordering in ("hilbert", "morton", "input", "random"):
        blocks = make_blocks(pts, 32, ordering=ordering)
        assert sorted(np.concatenate(blocks).tolist()) == list(range(256))
    with pytest.raises(ValueError):
        make_blocks(pts, 32, ordering="zigzag")
    with pytest.raises(ValueError):
        make_blocks(pts, 0)


def test_hilbert_blocks_are_compact(rng):
    """Hilbert blocks must have much smaller spatial extent than random."""
    pts = rng.random((4096, 3))

    def mean_extent(blocks):
        return np.mean([pts[b].std(axis=0).sum() for b in blocks])

    assert mean_extent(make_blocks(pts, 64, "hilbert")) < 0.5 * mean_extent(
        make_blocks(pts, 64, "random")
    )


def test_profile_matches_engine_stats(built):
    pts, q, tc = built
    res = tc.evaluate()
    prof = profile_blocks(tc, make_blocks(pts, 32))
    assert prof.compute_terms.sum() == pytest.approx(res.stats.n_terms)
    assert prof.compute_pairs.sum() == pytest.approx(res.stats.n_pp_pairs)
    assert np.all(prof.fetch_terms <= prof.compute_terms + 1e-9)


def test_parallel_matches_serial(built):
    pts, q, tc = built
    serial = tc.evaluate().potential
    for nt in (1, 3):
        par = evaluate_parallel(tc, n_threads=nt, w=48)
        assert np.allclose(par.potential, serial, rtol=1e-12, atol=1e-14)
        assert par.stats.n_targets == len(q)
    with pytest.raises(ValueError):
        evaluate_parallel(tc, n_threads=0)


def test_parallel_stats_conserved(built):
    pts, q, tc = built
    serial = tc.evaluate()
    par = evaluate_parallel(tc, n_threads=2, w=64)
    assert par.stats.n_terms == serial.stats.n_terms
    assert par.stats.n_pp_pairs == serial.stats.n_pp_pairs


def test_schedule_strategies():
    costs = np.array([5.0, 1.0, 1.0, 1.0, 4.0, 4.0])
    for strat in ("cyclic", "lpt", "contiguous"):
        a = schedule_blocks(costs, 3, strat)
        assert a.shape == (6,)
        assert a.min() >= 0 and a.max() < 3
    # LPT must balance better than contiguous here
    def makespan(a):
        return np.bincount(a, weights=costs, minlength=3).max()

    assert makespan(schedule_blocks(costs, 3, "lpt")) <= makespan(
        schedule_blocks(costs, 3, "contiguous")
    )
    with pytest.raises(ValueError):
        schedule_blocks(costs, 3, "magic")


def test_simulation_invariants(built):
    pts, q, tc = built
    prof = profile_blocks(tc, make_blocks(pts, 32))
    s1 = simulate(prof, MachineModel(n_procs=1))
    assert s1.speedup == pytest.approx(1.0)
    for P in (4, 16, 32):
        s = simulate(prof, MachineModel(n_procs=P))
        assert 0 < s.speedup <= P
        assert 0 < s.efficiency <= 1.0
        assert s.proc_times.shape == (P,)
        # work conservation: parallel compute+fetch >= serial compute
        assert s.proc_times.sum() >= s.serial_time * (1 - 1e-12)


def test_speedup_grows_with_procs(built):
    pts, q, tc = built
    prof = profile_blocks(tc, make_blocks(pts, 16))
    sp = [simulate(prof, MachineModel(n_procs=P)).speedup for P in (2, 4, 8, 16)]
    assert all(b > a for a, b in zip(sp, sp[1:]))


def test_adaptive_fetches_more_data(rng):
    """The paper: 'the new algorithm fetches longer multipole series' —
    adaptive degrees increase the per-block fetch volume."""
    pts = rng.random((1500, 3))
    q = rng.uniform(0.5, 1.5, 1500)
    blocks = make_blocks(pts, 64)
    tc_f = Treecode(pts, q, degree_policy=FixedDegree(4), alpha=0.5)
    tc_a = Treecode(pts, q, degree_policy=AdaptiveChargeDegree(p0=4, alpha=0.5), alpha=0.5)
    f = profile_blocks(tc_f, blocks).fetch_terms.sum()
    a = profile_blocks(tc_a, blocks).fetch_terms.sum()
    assert a > f


def test_machine_model_validation():
    with pytest.raises(ValueError):
        MachineModel(n_procs=0)
    with pytest.raises(ValueError):
        MachineModel(cache_reuse=1.5)
