"""Tests for analytic multipole/local gradients."""

import numpy as np
import pytest

from repro.multipole.expansion import l2p, m2p, p2l, p2m
from repro.multipole.gradient import l2p_grad, m2p_grad, m2p_grad_rows


def fd_grad(f, pts, h=1e-6):
    g = np.zeros_like(pts)
    for i in range(3):
        e = np.zeros(3)
        e[i] = h
        g[:, i] = (f(pts + e) - f(pts - e)) / (2 * h)
    return g


def test_m2p_grad_matches_finite_difference(rng):
    p = 8
    src = rng.normal(size=(30, 3)) * 0.3
    q = rng.uniform(-1, 1, 30)
    M = p2m(src, q, p)
    tgt = rng.normal(size=(12, 3))
    tgt = tgt / np.linalg.norm(tgt, axis=1, keepdims=True) * 2.5
    g = m2p_grad(M, tgt, p)
    gfd = fd_grad(lambda x: m2p(M, x, p), tgt)
    assert np.allclose(g, gfd, rtol=1e-6, atol=1e-9)


def test_m2p_grad_matches_exact_force(rng):
    """At high degree the multipole gradient converges to the true force."""
    p = 14
    src = rng.normal(size=(20, 3)) * 0.2
    q = rng.uniform(-1, 1, 20)
    M = p2m(src, q, p)
    tgt = rng.normal(size=(8, 3))
    tgt = tgt / np.linalg.norm(tgt, axis=1, keepdims=True) * 3.0

    def exact(t):
        d = t - src
        r = np.linalg.norm(d, axis=1)
        return -(q / r**3) @ d

    g = m2p_grad(M, tgt, p)
    ref = np.array([exact(t) for t in tgt])
    assert np.allclose(g, ref, rtol=1e-7, atol=1e-10)


def test_l2p_grad_matches_finite_difference(rng):
    p = 8
    far = rng.normal(size=(20, 3))
    far = far / np.linalg.norm(far, axis=1, keepdims=True) * 5.0
    q = rng.uniform(-1, 1, 20)
    L = p2l(far, q, p)
    tgt = rng.normal(size=(10, 3)) * 0.3
    g = l2p_grad(L, tgt, p)
    gfd = fd_grad(lambda x: l2p(L, x, p), tgt)
    assert np.allclose(g, gfd, rtol=1e-6, atol=1e-9)


def test_grad_rows_matches_shared(rng):
    p = 6
    src = rng.normal(size=(15, 3)) * 0.2
    q = rng.uniform(0, 1, 15)
    M = p2m(src, q, p)
    tgt = rng.normal(size=(7, 3)) + 2.5
    rows = np.tile(M, (7, 1))
    assert np.allclose(m2p_grad_rows(rows, tgt, p), m2p_grad(M, tgt, p), rtol=1e-12)


def test_grad_near_polar_axis(rng):
    """Targets very close to the z-axis must not blow up."""
    p = 8
    src = rng.normal(size=(20, 3)) * 0.2
    q = rng.uniform(-1, 1, 20)
    M = p2m(src, q, p)
    # note: within ~sqrt(eps)*r of the axis the transverse component is
    # unrecoverable from cos(theta) alone (1 - ct^2 cancels); 1e-6 is
    # "near the pole" while staying in the representable regime
    tgt = np.array([[1e-6, 0.0, 2.0], [0.0, -1e-6, -2.0], [1e-6, 1e-6, 2.5]])
    g = m2p_grad(M, tgt, p)
    assert np.all(np.isfinite(g))
    # exactly on the axis: finite output required (accuracy is not)
    on_axis = m2p_grad(M, np.array([[0.0, 0.0, 2.0]]), p)
    assert np.all(np.isfinite(on_axis))

    def exact(t):
        d = t - src
        r = np.linalg.norm(d, axis=1)
        return -(q / r**3) @ d

    ref = np.array([exact(t) for t in tgt])
    # relative tolerance loose: truncation at p=8 plus pole guard
    assert np.allclose(g, ref, rtol=1e-3, atol=1e-6)


def test_monopole_gradient(rng):
    """A degree-0 expansion gives the Coulomb field of the total charge."""
    src = rng.normal(size=(10, 3)) * 1e-6
    q = rng.uniform(0.5, 1.5, 10)
    M = p2m(src, q, 0)
    tgt = np.array([[2.0, 1.0, -1.0]])
    g = m2p_grad(M, tgt, 0)
    r = np.linalg.norm(tgt[0])
    expected = -q.sum() * tgt[0] / r**3
    assert np.allclose(g[0], expected, rtol=1e-5)
