"""Tests for Peano-Hilbert keys."""

import numpy as np
import pytest

from repro.tree.hilbert import (
    axes_to_transpose,
    grid_from_hilbert_key,
    hilbert_key,
    hilbert_key_from_grid,
    hilbert_order,
    transpose_to_axes,
)


def test_transpose_roundtrip():
    rng = np.random.default_rng(0)
    for bits in (1, 3, 8, 16):
        g = rng.integers(0, 1 << bits, (500, 3), dtype=np.uint64)
        tr = axes_to_transpose(g, bits)
        back = transpose_to_axes(tr, bits)
        assert np.array_equal(g, back), f"bits={bits}"


def test_key_roundtrip():
    rng = np.random.default_rng(1)
    bits = 10
    g = rng.integers(0, 1 << bits, (300, 3), dtype=np.uint64)
    keys = hilbert_key_from_grid(g, bits)
    back = grid_from_hilbert_key(keys, bits)
    assert np.array_equal(g, back)


def test_keys_are_a_bijection_small_grid():
    """On a full 8x8x8 grid the keys must be a permutation of 0..511."""
    bits = 3
    coords = np.array(
        [(x, y, z) for x in range(8) for y in range(8) for z in range(8)],
        dtype=np.uint64,
    )
    keys = hilbert_key_from_grid(coords, bits)
    assert sorted(keys.tolist()) == list(range(512))


def test_consecutive_keys_are_adjacent_cells():
    """The defining Hilbert property: consecutive curve positions are
    grid neighbors (Manhattan distance exactly 1)."""
    bits = 3
    keys = np.arange(512, dtype=np.uint64)
    grid = grid_from_hilbert_key(keys, bits).astype(np.int64)
    steps = np.abs(np.diff(grid, axis=0)).sum(axis=1)
    assert np.all(steps == 1)


def test_hilbert_locality_beats_random():
    """Average 3-D distance between order-neighbors should be far smaller
    for Hilbert order than for random order."""
    rng = np.random.default_rng(2)
    pts = rng.random((2000, 3))
    h = hilbert_order(pts)
    d_h = np.linalg.norm(np.diff(pts[h], axis=0), axis=1).mean()
    r = rng.permutation(2000)
    d_r = np.linalg.norm(np.diff(pts[r], axis=0), axis=1).mean()
    assert d_h < 0.25 * d_r


def test_hilbert_order_is_permutation():
    rng = np.random.default_rng(3)
    pts = rng.random((777, 3))
    order = hilbert_order(pts)
    assert sorted(order.tolist()) == list(range(777))


def test_hilbert_order_degenerate_planar_data():
    """Planar/collinear data (zero extent in some dimension) must not crash."""
    rng = np.random.default_rng(4)
    pts = rng.random((100, 3))
    pts[:, 2] = 0.25
    order = hilbert_order(pts)
    assert sorted(order.tolist()) == list(range(100))


def test_bad_shapes_rejected():
    with pytest.raises(ValueError):
        axes_to_transpose(np.zeros((5, 2), dtype=np.uint64), 4)
    with pytest.raises(ValueError):
        hilbert_key_from_grid(np.zeros((5, 3), dtype=np.uint64), 0)
