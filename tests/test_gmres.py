"""Tests for the from-scratch GMRES solver."""

import numpy as np
import pytest
from scipy.sparse.linalg import gmres as scipy_gmres

from repro.bem.gmres import gmres


def test_identity_converges_immediately(rng):
    b = rng.random(20)
    res = gmres(lambda v: v, b, tol=1e-12)
    assert res.converged
    assert np.allclose(res.x, b)
    assert res.n_iterations <= 1


def test_diagonal_system(rng):
    d = rng.uniform(1, 10, 50)
    b = rng.random(50)
    res = gmres(lambda v: d * v, b, restart=10, tol=1e-12)
    assert res.converged
    assert np.allclose(res.x, b / d, rtol=1e-9)


def test_dense_spd_system(rng):
    A = rng.random((80, 80))
    A = A @ A.T + 80 * np.eye(80)
    b = rng.random(80)
    res = gmres(lambda v: A @ v, b, restart=10, tol=1e-10, maxiter=500)
    assert res.converged
    assert np.allclose(res.x, np.linalg.solve(A, b), rtol=1e-6)


def test_nonsymmetric_system(rng):
    A = rng.random((60, 60)) + 30 * np.eye(60)
    b = rng.random(60)
    res = gmres(lambda v: A @ v, b, restart=15, tol=1e-10)
    assert res.converged
    assert np.linalg.norm(A @ res.x - b) / np.linalg.norm(b) < 1e-9


def test_matches_scipy(rng):
    A = rng.random((40, 40)) + 20 * np.eye(40)
    b = rng.random(40)
    ours = gmres(lambda v: A @ v, b, restart=10, tol=1e-10)
    theirs, info = scipy_gmres(A, b, restart=10, rtol=1e-10)
    assert info == 0
    assert np.allclose(ours.x, theirs, rtol=1e-6, atol=1e-8)


def test_restart_cycles_counted(rng):
    """A hard system with tiny restart should need multiple cycles."""
    A = rng.random((50, 50)) + 5 * np.eye(50)
    b = rng.random(50)
    res = gmres(lambda v: A @ v, b, restart=3, tol=1e-10, maxiter=1000)
    assert res.converged
    assert res.n_restarts > 1


def test_residual_history_decreases_overall(rng):
    A = rng.random((40, 40)) + 20 * np.eye(40)
    b = rng.random(40)
    res = gmres(lambda v: A @ v, b, restart=10, tol=1e-12)
    assert res.history[0] >= res.history[-1]
    assert res.history[-1] <= 1e-12
    # inside one Krylov cycle the residual is non-increasing
    assert all(b <= a * (1 + 1e-12) for a, b in zip(res.history[:10], res.history[1:11]))


def test_callback_invoked(rng):
    A = rng.random((20, 20)) + 10 * np.eye(20)
    b = rng.random(20)
    calls = []
    res = gmres(lambda v: A @ v, b, callback=calls.append, tol=1e-10)
    assert len(calls) == res.n_iterations
    assert all(isinstance(c, float) for c in calls)
    # the callback sees exactly the recorded residual trajectory
    # (history additionally holds the initial residual at index 0)
    assert calls == res.history[1 : 1 + len(calls)]


def test_zero_rhs():
    res = gmres(lambda v: 2 * v, np.zeros(10))
    assert res.converged
    assert np.all(res.x == 0)


def test_maxiter_cap(rng):
    """An ill-conditioned system with a tiny budget reports non-convergence."""
    n = 60
    A = np.diag(np.linspace(1e-6, 1, n))
    b = np.ones(n)
    res = gmres(lambda v: A @ v, b, restart=5, tol=1e-14, maxiter=10)
    assert not res.converged
    assert res.n_iterations == 10
    assert np.isfinite(res.residual_norm)


def test_initial_guess(rng):
    A = rng.random((30, 30)) + 15 * np.eye(30)
    b = rng.random(30)
    x_exact = np.linalg.solve(A, b)
    res = gmres(lambda v: A @ v, b, x0=x_exact, tol=1e-10)
    assert res.converged
    assert res.n_iterations == 0


def test_bad_restart():
    with pytest.raises(ValueError):
        gmres(lambda v: v, np.ones(5), restart=0)
