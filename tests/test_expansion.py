"""Tests for P2M / M2P / P2L / L2P against direct summation and Theorem 1."""

import numpy as np
import pytest

from repro.core.bounds import theorem1_bound
from repro.multipole.expansion import (
    extend,
    l2p,
    m2p,
    m2p_rows,
    p2l,
    p2m,
    p2m_terms,
    truncate,
)
from repro.multipole.harmonics import ncoef


def exact_potential(tgt, src, q):
    d = tgt[:, None, :] - src[None, :, :]
    r = np.sqrt(np.einsum("tsi,tsi->ts", d, d))
    return (1.0 / r) @ q


def test_monopole_limit(rng):
    """Degree 0 at a distant point equals total charge over distance."""
    src = rng.normal(size=(10, 3)) * 0.01
    q = rng.uniform(0.5, 1.0, 10)
    M = p2m(src, q, 0)
    tgt = np.array([[10.0, 0.0, 0.0]])
    phi = m2p(M, tgt, 0)
    assert phi[0] == pytest.approx(q.sum() / 10.0, rel=1e-3)


def test_m2p_converges_with_degree(rng):
    src = rng.normal(size=(40, 3))
    src = src / np.linalg.norm(src, axis=1, keepdims=True) * rng.uniform(0, 0.35, (40, 1))
    q = rng.uniform(-1, 1, 40)
    tgt = rng.normal(size=(15, 3))
    tgt = tgt / np.linalg.norm(tgt, axis=1, keepdims=True) * 2.0
    ref = exact_potential(tgt, src, q)
    errs = []
    for p in (2, 5, 9, 14):
        M = p2m(src, q, p)
        errs.append(np.abs(m2p(M, tgt, p) - ref).max())
    assert errs[0] > errs[1] > errs[2] > errs[3]
    assert errs[3] < 1e-9


def test_theorem1_bound_holds(rng):
    """Observed truncation error must respect the Greengard-Rokhlin bound."""
    for trial in range(5):
        src = rng.normal(size=(30, 3)) * 0.25
        q = rng.uniform(-1, 1, 30)
        a = np.linalg.norm(src, axis=1).max()
        A = np.abs(q).sum()
        tgt = rng.normal(size=(10, 3))
        tgt = tgt / np.linalg.norm(tgt, axis=1, keepdims=True) * (a * 2.5)
        r = np.linalg.norm(tgt, axis=1)
        ref = exact_potential(tgt, src, q)
        for p in (2, 4, 7):
            M = p2m(src, q, p)
            err = np.abs(m2p(M, tgt, p) - ref)
            bound = theorem1_bound(A, a, r, p)
            assert np.all(err <= bound * (1 + 1e-9))


def test_p2m_terms_sums_to_p2m(rng):
    src = rng.normal(size=(25, 3)) * 0.2
    q = rng.uniform(-1, 1, 25)
    terms = p2m_terms(src, q, 6)
    assert terms.shape == (25, ncoef(6))
    assert np.allclose(terms.sum(axis=0), p2m(src, q, 6))


def test_m2p_rows_matches_m2p(rng):
    src = rng.normal(size=(30, 3)) * 0.2
    q = rng.uniform(-1, 1, 30)
    p = 7
    M = p2m(src, q, p)
    tgt = rng.normal(size=(12, 3)) + 3.0
    rows = np.tile(M, (12, 1))
    assert np.allclose(m2p_rows(rows, tgt, p), m2p(M, tgt, p), rtol=1e-12)


def test_m2p_rows_distinct_expansions(rng):
    p = 5
    src1 = rng.normal(size=(10, 3)) * 0.2
    src2 = rng.normal(size=(10, 3)) * 0.2
    q = rng.uniform(0.1, 1, 10)
    M1, M2 = p2m(src1, q, p), p2m(src2, q, p)
    tgt = rng.normal(size=(2, 3)) + 4.0
    rows = np.stack([M1, M2])
    out = m2p_rows(rows, tgt, p)
    assert out[0] == pytest.approx(m2p(M1, tgt[:1], p)[0], rel=1e-12)
    assert out[1] == pytest.approx(m2p(M2, tgt[1:], p)[0], rel=1e-12)


def test_local_expansion_roundtrip(rng):
    """P2L + L2P approximates the far-source potential near the center."""
    src = rng.normal(size=(20, 3))
    src = src / np.linalg.norm(src, axis=1, keepdims=True) * 5.0
    q = rng.uniform(-1, 1, 20)
    p = 10
    L = p2l(src, q, p)
    tgt = rng.normal(size=(10, 3)) * 0.3
    ref = exact_potential(tgt, src, q)
    assert np.allclose(l2p(L, tgt, p), ref, rtol=1e-6, atol=1e-9)


def test_truncate_extend(rng):
    src = rng.normal(size=(10, 3)) * 0.2
    q = rng.uniform(0, 1, 10)
    M8 = p2m(src, q, 8)
    M5 = truncate(M8, 8, 5)
    assert np.allclose(M5, p2m(src, q, 5))
    M8b = extend(M5, 5, 8)
    assert M8b.shape[-1] == ncoef(8)
    assert np.allclose(M8b[: ncoef(5)], M5)
    assert np.all(M8b[ncoef(5) :] == 0)
    with pytest.raises(ValueError):
        truncate(M8, 8, 9)
    with pytest.raises(ValueError):
        extend(M8, 8, 7)


def test_multipole_linearity(rng):
    """p2m is linear in the charges."""
    src = rng.normal(size=(15, 3)) * 0.2
    q1 = rng.uniform(-1, 1, 15)
    q2 = rng.uniform(-1, 1, 15)
    p = 6
    assert np.allclose(
        p2m(src, 2.0 * q1 + 3.0 * q2, p), 2.0 * p2m(src, q1, p) + 3.0 * p2m(src, q2, p)
    )


def test_conjugate_symmetry_realness(rng):
    """m=0 coefficients must be real for real charges."""
    src = rng.normal(size=(20, 3)) * 0.3
    q = rng.uniform(-1, 1, 20)
    M = p2m(src, q, 6)
    from repro.multipole.harmonics import coef_index

    for n in range(7):
        assert abs(M[coef_index(n, 0)].imag) < 1e-12
