"""Tests for the command-line experiment runner."""

import pytest

import repro.cli as cli


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        cli.main(["does-not-exist"])


def test_missing_argument_rejected():
    with pytest.raises(SystemExit):
        cli.main([])


def test_bad_scale_rejected():
    with pytest.raises(SystemExit):
        cli.main(["table1", "--scale", "gigantic"])


def test_all_commands_registered():
    assert set(cli._COMMANDS) == {
        "table1",
        "fig2",
        "table2",
        "table3",
        "cost-ratio",
        "alpha-sweep",
        "leaf-sweep",
        "ordering",
        "fmm",
    }


def test_dispatch_and_options(monkeypatch, capsys):
    """main() parses options, dispatches, and prints the command output."""
    seen = {}

    def fake(args):
        seen["scale"] = args.scale
        seen["p0"] = args.p0
        seen["alpha"] = args.alpha
        return "FAKE-TABLE-OUTPUT"

    monkeypatch.setitem(cli._COMMANDS, "table1", fake)
    rc = cli.main(["table1", "--scale", "full", "--p0", "5", "--alpha", "0.3"])
    assert rc == 0
    assert seen == {"scale": "full", "p0": 5, "alpha": 0.3}
    assert "FAKE-TABLE-OUTPUT" in capsys.readouterr().out


def test_all_runs_every_command(monkeypatch, capsys):
    calls = []
    for name in list(cli._COMMANDS):
        monkeypatch.setitem(
            cli._COMMANDS, name, lambda args, n=name: calls.append(n) or f"out-{n}"
        )
    rc = cli.main(["all"])
    assert rc == 0
    assert sorted(calls) == sorted(cli._COMMANDS)
    out = capsys.readouterr().out
    for name in cli._COMMANDS:
        assert f"out-{name}" in out
