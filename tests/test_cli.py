"""Tests for the command-line experiment runner."""

import json

import pytest

import repro.cli as cli


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        cli.main(["does-not-exist"])


def test_missing_argument_rejected():
    with pytest.raises(SystemExit):
        cli.main([])


def test_bad_scale_rejected():
    with pytest.raises(SystemExit):
        cli.main(["table1", "--scale", "gigantic"])


def test_all_commands_registered():
    assert set(cli._COMMANDS) == {
        "table1",
        "fig2",
        "table2",
        "table3",
        "cost-ratio",
        "alpha-sweep",
        "leaf-sweep",
        "ordering",
        "fmm",
    }


def test_dispatch_and_options(monkeypatch, capsys):
    """main() parses options, dispatches, and prints the command output."""
    seen = {}

    def fake(args):
        seen["scale"] = args.scale
        seen["p0"] = args.p0
        seen["alpha"] = args.alpha
        return "FAKE-TABLE-OUTPUT"

    monkeypatch.setitem(cli._COMMANDS, "table1", fake)
    rc = cli.main(["table1", "--scale", "full", "--p0", "5", "--alpha", "0.3"])
    assert rc == 0
    assert seen == {"scale": "full", "p0": 5, "alpha": 0.3}
    assert "FAKE-TABLE-OUTPUT" in capsys.readouterr().out


def test_all_runs_every_command(monkeypatch, capsys):
    calls = []
    for name in list(cli._COMMANDS):
        monkeypatch.setitem(
            cli._COMMANDS, name, lambda args, n=name: calls.append(n) or f"out-{n}"
        )
    rc = cli.main(["all"])
    assert rc == 0
    assert sorted(calls) == sorted(cli._COMMANDS)
    out = capsys.readouterr().out
    for name in cli._COMMANDS:
        assert f"out-{name}" in out


def test_profile_requires_valid_target():
    with pytest.raises(SystemExit):
        cli.main(["profile"])
    with pytest.raises(SystemExit):
        cli.main(["profile", "not-an-experiment"])


def test_target_rejected_without_profile():
    with pytest.raises(SystemExit):
        cli.main(["table1", "fig2"])


def test_profile_runs_observed_and_exports(monkeypatch, capsys, tmp_path):
    """profile enables observability around the experiment, prints a
    span/counter summary, and writes trace + metrics files."""
    from repro.obs import tracing

    def fake(args):
        assert tracing.is_enabled()
        with tracing.span("fake.phase"):
            pass
        return "FAKE-OUT"

    monkeypatch.setitem(cli._COMMANDS, "table1", fake)
    trace = tmp_path / "t.json"
    mets = tmp_path / "m.txt"
    report = tmp_path / "r.json"
    rc = cli.main(
        ["profile", "table1", "--trace", str(trace), "--metrics", str(mets),
         "--report", str(report)]
    )
    assert rc == 0
    assert not tracing.is_enabled()  # restored afterwards
    out = capsys.readouterr().out
    assert "FAKE-OUT" in out
    assert "profile: table1" in out
    assert "fake.phase" in out
    events = json.loads(trace.read_text())["traceEvents"]
    assert any(e["name"] == "fake.phase" for e in events)
    assert json.loads(report.read_text())["name"] == "table1"
    assert mets.exists()


def test_trace_flag_on_plain_subcommand(monkeypatch, tmp_path):
    from repro.obs import tracing

    def fake(args):
        assert tracing.is_enabled()
        with tracing.span("plain.phase"):
            pass
        return "OUT"

    monkeypatch.setitem(cli._COMMANDS, "fig2", fake)
    trace = tmp_path / "t.json"
    rc = cli.main(["fig2", "--trace", str(trace)])
    assert rc == 0
    assert not tracing.is_enabled()
    events = json.loads(trace.read_text())["traceEvents"]
    assert any(e["name"] == "plain.phase" for e in events)


def test_bad_fault_spec_rejected():
    with pytest.raises(SystemExit):
        cli.main(["table1", "--inject-faults", "nosuchmode:0.5"])


def test_checkpoint_limited_to_resumable_commands():
    with pytest.raises(SystemExit):
        cli.main(["table1", "--checkpoint", "/tmp/nope.json"])


def test_inject_faults_scoped_to_the_run(monkeypatch):
    from repro.robust import faults

    seen = []

    def fake(args):
        inj = faults.active_injector()
        seen.append({r.mode for r in inj.rules} if inj else None)
        return "OUT"

    monkeypatch.setitem(cli._COMMANDS, "fig2", fake)
    prev = faults.active_injector()
    rc = cli.main(["fig2", "--inject-faults", "block_error:0.1"])
    assert rc == 0
    assert seen == [{"block_error"}]
    assert faults.active_injector() is prev  # restored after the run


def test_seed_flag_reaches_command(monkeypatch):
    seen = {}

    def fake(args):
        seen["seed"] = args.seed
        return "OUT"

    monkeypatch.setitem(cli._COMMANDS, "fig2", fake)
    assert cli.main(["fig2", "--seed", "42"]) == 0
    assert seen["seed"] == 42


def test_backend_flag_reaches_table2(monkeypatch):
    seen = {}

    def fake(args):
        seen["backend"] = args.backend
        return "OUT"

    monkeypatch.setitem(cli._COMMANDS, "table2", fake)
    assert cli.main(["table2", "--backend", "process", "--workers", "2"]) == 0
    assert seen["backend"] == "process"
    assert cli.main(["profile", "table2", "--backend", "serial"]) == 0


def test_backend_flag_rejected_off_table2():
    with pytest.raises(SystemExit):
        cli.main(["table1", "--backend", "process"])
    with pytest.raises(SystemExit):
        cli.main(["profile", "fig2", "--backend", "serial"])
    with pytest.raises(SystemExit):
        cli.main(["table2", "--backend", "nosuch"])


def test_journal_flag_wraps_failing_run(monkeypatch, tmp_path):
    """run_end is journaled with an error status even when the command
    raises, and the active journal is restored."""
    from repro.obs import journal
    from repro.obs.journal import read_journal

    def boom(args):
        raise RuntimeError("exploded")

    monkeypatch.setitem(cli._COMMANDS, "fig2", boom)
    path = tmp_path / "run.jsonl"
    with pytest.raises(RuntimeError):
        cli.main(["fig2", "--journal", str(path)])
    events = read_journal(str(path))
    assert events[0]["event"] == "run_start"
    assert events[-1]["event"] == "run_end"
    assert events[-1]["data"]["status"] == "error"
    assert journal.get_journal() is None
