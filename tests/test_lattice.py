"""Tests for the lattice (structured grid) workload."""

import numpy as np
import pytest

from repro import FixedDegree, Treecode, direct_potential
from repro.core.degree import LevelDegree
from repro.data.distributions import lattice


def test_lattice_shape_and_bounds():
    pts = lattice(1000)
    assert pts.shape == (1000, 3)
    assert pts.min() >= 0 and pts.max() <= 1.0


def test_lattice_exact_cube_count():
    pts = lattice(512)  # 8^3 exactly
    assert pts.shape == (512, 3)
    # all 8 per-axis coordinates present
    assert len(np.unique(pts[:, 0])) == 8


def test_lattice_jitter():
    a = lattice(343, jitter=0.0)
    b = lattice(343, jitter=0.3, seed=1)
    assert not np.allclose(a, b)
    # jitter stays within half a cell
    assert np.abs(a - b).max() < 0.5 / 7


def test_lattice_determinism():
    assert np.array_equal(lattice(200, jitter=0.2, seed=5), lattice(200, jitter=0.2, seed=5))


def test_lattice_validation():
    with pytest.raises(ValueError):
        lattice(0)
    with pytest.raises(ValueError):
        lattice(10, jitter=-1)


def test_treecode_on_lattice():
    """The structured case the paper's Theorem 4/5 analysis targets:
    level-based and charge-based schedules coincide on a uniform grid."""
    pts = lattice(1728, jitter=0.05, seed=0)  # 12^3
    q = np.ones(1728)
    ref = direct_potential(pts, q)
    tc = Treecode(pts, q, degree_policy=LevelDegree(p0=4, alpha=0.4), alpha=0.4)
    res = tc.evaluate()
    err = np.linalg.norm(res.potential - ref) / np.linalg.norm(ref)
    assert err < 1e-4
    # a perfectly balanced octree
    assert tc.tree.height >= 3
    fixed = Treecode(pts, q, degree_policy=FixedDegree(4), alpha=0.4).evaluate()
    err_fixed = np.linalg.norm(fixed.potential - ref) / np.linalg.norm(ref)
    assert err <= err_fixed * 1.05
