"""Setup shim: enables legacy editable installs (``pip install -e .
--no-build-isolation --no-use-pep517``) on machines without the
``wheel`` package; all metadata lives in pyproject.toml."""

from setuptools import setup

setup()
