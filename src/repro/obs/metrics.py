"""Process-wide metrics registry: counters, gauges, log-bucketed histograms.

The paper's cost metric is a set of *counts* — multipole terms
evaluated, particle-cluster interactions by degree and by tree level,
near-field pairs — and this module makes those counts first-class
runtime telemetry instead of fields scattered across per-run stats
objects.  Three instrument types:

* :class:`Counter` — monotonically increasing totals
  (``pc_interactions``, ``terms_evaluated``, ``gmres_iterations``);
* :class:`Gauge` — last-value observations (``tree_height``,
  ``gmres_residual``);
* :class:`Histogram` — log-bucketed distributions (far-chunk sizes,
  per-leaf near-field block sizes, the GMRES residual trajectory).
  Buckets are powers of a configurable ``base`` (default 2), so values
  spanning many orders of magnitude — residuals from 1 to 1e-12, block
  sizes from 1 to 1e6 — land in a compact, fixed set of buckets.

Instruments support Prometheus-style labels
(``registry.counter("pc_interactions_by_degree", labelnames=("degree",))
.labels(degree=5).inc(n)``) and two expositions: Prometheus text format
(:meth:`MetricsRegistry.render_text`) and a JSON-friendly dict
(:meth:`MetricsRegistry.to_dict`).

All mutation is lock-protected, so the parallel executor's worker
threads can update shared instruments; get-or-create registration makes
call sites self-contained (``REGISTRY.counter("x").inc()``).
"""

from __future__ import annotations

import json
import math
import threading

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "bucket_quantiles",
]


def bucket_quantiles(
    buckets: list, count: int, qs: tuple = (0.5, 0.95, 0.99)
) -> dict[float, float | None]:
    """Estimate quantiles from ``(upper_bound, count)`` log buckets.

    The rank-``q`` observation is located in its bucket by cumulative
    count; within the bucket the value is geometrically interpolated
    between the bucket's bounds (log buckets make ratios, not
    differences, the natural distance).  Observations in the ``<= 0``
    bucket (bound ``0.0``) estimate as 0.  Returns ``{q: estimate}``
    with ``None`` entries when there are no observations.
    """
    if count <= 0 or not buckets:
        return {q: None for q in qs}
    out: dict[float, float | None] = {}
    for q in qs:
        target = max(1, math.ceil(q * count))
        cum = 0
        prev_bound = 0.0
        est: float | None = None
        for bound, cnt in buckets:
            if cnt and cum + cnt >= target:
                if bound <= 0.0:
                    est = 0.0
                elif prev_bound <= 0.0:
                    est = float(bound)
                else:
                    frac = (target - cum) / cnt
                    est = float(prev_bound * (bound / prev_bound) ** frac)
                break
            cum += cnt
            prev_bound = float(bound)
        if est is None:  # ranks past the last bucket (shouldn't happen)
            est = float(buckets[-1][0])
        out[q] = est
    return out


def _label_key(labelnames: tuple, kv: dict) -> tuple:
    if set(kv) != set(labelnames):
        raise ValueError(f"expected labels {labelnames}, got {tuple(kv)}")
    return tuple(str(kv[name]) for name in labelnames)


def _label_str(labelnames: tuple, key: tuple) -> str:
    if not labelnames:
        return ""
    inner = ",".join(f'{n}="{v}"' for n, v in zip(labelnames, key))
    return "{" + inner + "}"


class _Instrument:
    """Shared machinery: name, help text, labels, child management."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", labelnames: tuple = ()):
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._children: dict[tuple, "_Instrument"] = {}

    def labels(self, **kv) -> "_Instrument":
        """The child instrument for one label combination (created on
        first use)."""
        if not self.labelnames:
            raise ValueError(f"{self.name} has no labels")
        key = _label_key(self.labelnames, kv)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = type(self)(self.name, self.help)
                self._children[key] = child
            return child

    def _check_unlabeled(self) -> None:
        if self.labelnames:
            raise ValueError(f"{self.name} requires labels {self.labelnames}")

    def _items(self) -> list[tuple[tuple, "_Instrument"]]:
        """(label-key, instrument) pairs to render — children if labeled,
        self otherwise."""
        if self.labelnames:
            with self._lock:
                return sorted(self._children.items())
        return [((), self)]


class Counter(_Instrument):
    """Monotonic counter."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", labelnames: tuple = ()):
        super().__init__(name, help, labelnames)
        self._value = 0.0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self._check_unlabeled()
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def _render(self, labels: str) -> list[str]:
        v = self._value
        return [f"{self.name}{labels} {int(v) if v == int(v) else v}"]

    def _json(self):
        v = self._value
        return int(v) if v == int(v) else v


class Gauge(_Instrument):
    """Last-value gauge."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "", labelnames: tuple = ()):
        super().__init__(name, help, labelnames)
        self._value = 0.0

    def set(self, value: float) -> None:
        self._check_unlabeled()
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1) -> None:
        self._check_unlabeled()
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def _render(self, labels: str) -> list[str]:
        return [f"{self.name}{labels} {self._value}"]

    def _json(self):
        return self._value


class Histogram(_Instrument):
    """Log-bucketed histogram.

    A positive observation ``v`` lands in the bucket with upper bound
    ``base**k`` for the smallest integer ``k`` with ``v <= base**k``;
    non-positive observations land in a dedicated ``le="0"`` bucket.
    Buckets are sparse (a dict keyed by exponent), so the instrument
    costs O(occupied buckets) regardless of the value range.
    """

    kind = "histogram"

    def __init__(
        self, name: str, help: str = "", labelnames: tuple = (), base: float = 2.0
    ):
        super().__init__(name, help, labelnames)
        if base <= 1.0:
            raise ValueError(f"base must be > 1, got {base}")
        self.base = float(base)
        self._buckets: dict[int, int] = {}  # exponent -> count
        self._zero = 0  # observations <= 0
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    def labels(self, **kv):
        if not self.labelnames:
            raise ValueError(f"{self.name} has no labels")
        key = _label_key(self.labelnames, kv)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = Histogram(self.name, self.help, base=self.base)
                self._children[key] = child
            return child

    def observe(self, value: float, n: int = 1) -> None:
        """Record ``n`` observations of ``value``."""
        self._check_unlabeled()
        value = float(value)
        with self._lock:
            self._count += n
            self._sum += value * n
            self._min = min(self._min, value)
            self._max = max(self._max, value)
            if value <= 0.0:
                self._zero += n
            else:
                k = math.ceil(math.log(value, self.base))
                # guard rounding: ensure value <= base**k
                if value > self.base**k:
                    k += 1
                self._buckets[k] = self._buckets.get(k, 0) + n

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def bucket_bounds(self) -> list[tuple[float, int]]:
        """(upper_bound, count) per occupied bucket, ascending;
        the ``<= 0`` bucket reports bound ``0.0``."""
        with self._lock:
            out = [(0.0, self._zero)] if self._zero else []
            out += [(self.base**k, c) for k, c in sorted(self._buckets.items())]
        return out

    def _render(self, labels: str) -> list[str]:
        # Prometheus histograms are cumulative over `le` bounds.
        base_labels = labels[1:-1] if labels else ""
        lines = []
        cum = 0
        for bound, cnt in self.bucket_bounds():
            cum += cnt
            le = f"{bound:g}"
            sep = "," if base_labels else ""
            lines.append(f'{self.name}_bucket{{{base_labels}{sep}le="{le}"}} {cum}')
        sep = "," if base_labels else ""
        lines.append(f'{self.name}_bucket{{{base_labels}{sep}le="+Inf"}} {self._count}')
        lines.append(f"{self.name}_sum{labels} {self._sum}")
        lines.append(f"{self.name}_count{labels} {self._count}")
        return lines

    def quantile(self, q: float) -> float | None:
        """Bucket-estimated quantile (see :func:`bucket_quantiles`)."""
        return bucket_quantiles(self.bucket_bounds(), self._count, (q,))[q]

    def merge_json(self, snap: dict) -> None:
        """Merge a :meth:`_json` snapshot bucket-wise into this
        histogram (the cross-process telemetry merge: counts and sums
        add, min/max widen, bucket counts add by matching bound)."""
        count = int(snap.get("count", 0))
        if count <= 0:
            return
        base = float(snap.get("base", self.base))
        with self._lock:
            self._count += count
            self._sum += float(snap.get("sum", 0.0))
            if snap.get("min") is not None:
                self._min = min(self._min, float(snap["min"]))
            if snap.get("max") is not None:
                self._max = max(self._max, float(snap["max"]))
            for bound, cnt in snap.get("buckets", []):
                cnt = int(cnt)
                if bound <= 0.0:
                    self._zero += cnt
                else:
                    k = round(math.log(bound) / math.log(base))
                    # guard rounding: the stored bound must reproduce
                    if not math.isclose(self.base**k, bound, rel_tol=1e-9):
                        k = math.ceil(math.log(bound, self.base))
                    self._buckets[k] = self._buckets.get(k, 0) + cnt

    def _json(self):
        buckets = self.bucket_bounds()
        quantiles = bucket_quantiles(buckets, self._count)
        return {
            "count": self._count,
            "sum": self._sum,
            "min": None if self._count == 0 else self._min,
            "max": None if self._count == 0 else self._max,
            "base": self.base,
            "buckets": [[b, c] for b, c in buckets],
            "p50": quantiles[0.5],
            "p95": quantiles[0.95],
            "p99": quantiles[0.99],
        }


class MetricsRegistry:
    """Named collection of instruments with get-or-create semantics."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, _Instrument] = {}

    def _get_or_create(self, cls, name, help, labelnames, **kw):
        with self._lock:
            inst = self._metrics.get(name)
            if inst is None:
                inst = cls(name, help, labelnames=tuple(labelnames), **kw)
                self._metrics[name] = inst
            elif not isinstance(inst, cls):
                raise TypeError(
                    f"metric {name!r} already registered as {inst.kind}"
                )
            return inst

    def counter(self, name: str, help: str = "", labelnames: tuple = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "", labelnames: tuple = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(
        self, name: str, help: str = "", labelnames: tuple = (), base: float = 2.0
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, labelnames, base=base)

    def get(self, name: str) -> _Instrument | None:
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def reset(self) -> None:
        """Drop every instrument (a fresh run starts from zero)."""
        with self._lock:
            self._metrics.clear()

    def render_text(self) -> str:
        """Prometheus-style text exposition."""
        lines: list[str] = []
        with self._lock:
            metrics = [self._metrics[k] for k in sorted(self._metrics)]
        for m in metrics:
            if m.help:
                lines.append(f"# HELP {m.name} {m.help}")
            lines.append(f"# TYPE {m.name} {m.kind}")
            for key, child in m._items():
                lines.extend(child._render(_label_str(m.labelnames, key)))
        return "\n".join(lines) + ("\n" if lines else "")

    def to_dict(self) -> dict:
        """JSON-friendly snapshot grouped by instrument kind."""
        out: dict = {"counters": {}, "gauges": {}, "histograms": {}}
        with self._lock:
            metrics = [self._metrics[k] for k in sorted(self._metrics)]
        for m in metrics:
            group = out[m.kind + "s"]
            if m.labelnames:
                group[m.name] = {
                    "labels": list(m.labelnames),
                    "series": {
                        ",".join(key): child._json() for key, child in m._items()
                    },
                }
            else:
                group[m.name] = m._json()
        return out

    def merge_snapshot(self, snapshot: dict) -> None:
        """Merge a :meth:`to_dict` snapshot from another registry —
        typically serialized out of a forked process-pool worker.

        Merge semantics per instrument kind: **counters sum** (worker
        work adds to the parent's totals), **gauges take the snapshot's
        value** (last write wins), **histograms merge bucket-wise**
        (counts and sums add, min/max widen).  Instruments absent from
        this registry are created, so a worker-only metric still
        surfaces in the parent's exposition.
        """

        def entries(kind_key):
            for name, val in snapshot.get(kind_key, {}).items():
                if isinstance(val, dict) and "series" in val and "labels" in val:
                    labels = tuple(val["labels"])
                    for key, v in val["series"].items():
                        yield name, labels, dict(zip(labels, key.split(","))), v
                else:
                    yield name, (), None, val

        for name, labels, kv, v in entries("counters"):
            fam = self.counter(name, labelnames=labels)
            inst = fam.labels(**kv) if kv else fam
            inst.inc(v)
        for name, labels, kv, v in entries("gauges"):
            fam = self.gauge(name, labelnames=labels)
            inst = fam.labels(**kv) if kv else fam
            inst.set(v)
        for name, labels, kv, v in entries("histograms"):
            fam = self.histogram(
                name, labelnames=labels, base=float(v.get("base", 2.0))
            )
            inst = fam.labels(**kv) if kv else fam
            inst.merge_json(v)

    def export_json(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=2)

    def export_text(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.render_text())


#: The process-wide registry used by the instrumentation hooks.
REGISTRY = MetricsRegistry()
