"""Nestable span tracing with Chrome-trace-format export.

The paper's analysis is an *accounting* argument — cost and error are
budgeted per phase, per degree, per tree level — and this module gives
the runtime the same ledger: every compute phase (tree build, upward
pass, traversal, far/near evaluation, M2L, GMRES cycles, parallel
worker blocks) opens a :func:`span`, and the resulting timeline exports
to the Chrome trace event format, viewable in Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing``.

Design constraints:

* **Near-zero overhead when disabled.**  Tracing is off by default;
  :func:`span` then returns a shared singleton no-op context manager —
  one global-flag check and *no allocation* on the hot path.
* **Thread-safe.**  Spans carry the recording thread's id, and the
  tracer appends completed spans under a lock, so the parallel executor
  can trace worker blocks concurrently; nesting is expressed by
  interval containment within a thread, which is exactly how the Chrome
  ``"X"`` (complete) event phase renders flame graphs.
* **Process-aware.**  Every event records the pid of the process that
  produced it at *record* time (not export time), so span snapshots
  serialized out of forked pool workers and merged into the parent via
  :meth:`Tracer.ingest` keep their true worker pid — the exported
  Chrome trace renders a multi-process flame graph in Perfetto, one
  process lane per worker.  ``perf_counter`` timestamps are kept
  absolute internally (the epoch is subtracted only at export), and on
  the platforms where the process executor exists (fork) the monotonic
  clock is shared across parent and children, so merged worker events
  land on the parent's timeline without any clock translation.
* **Duration available to the caller.**  :func:`stopwatch` is the
  always-timing variant: it measures ``elapsed`` whether or not tracing
  is enabled (emitting a trace event only when it is), so code that
  needs wall times for its own reporting — :class:`TreecodeStats`,
  experiment tables — uses one primitive instead of ad-hoc
  ``time.perf_counter()`` pairs.

Usage::

    from repro.obs import tracing

    tracing.enable()
    with tracing.span("treecode.evaluate", n=len(points)):
        ...
    tracing.get_tracer().export("trace.json")
"""

from __future__ import annotations

import json
import os
import threading
import time

from . import journal

__all__ = [
    "Span",
    "Tracer",
    "enable",
    "disable",
    "set_enabled",
    "is_enabled",
    "span",
    "stopwatch",
    "get_tracer",
]

_enabled: bool = False


def is_enabled() -> bool:
    """Whether tracing (and gated metrics collection) is on."""
    return _enabled


def enable() -> None:
    global _enabled
    _enabled = True


def disable() -> None:
    global _enabled
    _enabled = False


def set_enabled(flag: bool) -> None:
    global _enabled
    _enabled = bool(flag)


class _NullSpan:
    """Shared no-op span returned while tracing is disabled.

    A single module-level instance serves every disabled :func:`span`
    call, so the disabled fast path allocates nothing.
    """

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **args) -> "_NullSpan":
        return self

    @property
    def elapsed(self) -> float:
        return 0.0


_NULL_SPAN = _NullSpan()


class Span:
    """One timed interval; records itself into a tracer on exit.

    ``tracer`` may be ``None`` (the :func:`stopwatch` case with tracing
    disabled): the span still times itself but records nothing.
    """

    __slots__ = ("name", "cat", "args", "t0", "t1", "_tracer")

    def __init__(self, tracer: "Tracer | None", name: str, cat: str, args: dict):
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.args = args
        self.t0 = 0.0
        self.t1 = 0.0

    def __enter__(self) -> "Span":
        self.t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        self.t1 = time.perf_counter()
        if self._tracer is not None:
            self._tracer._record(self)
        return False

    def set(self, **args) -> "Span":
        """Attach/update key-value arguments shown in the trace viewer."""
        self.args.update(args)
        return self

    @property
    def elapsed(self) -> float:
        """Duration in seconds (valid after ``__exit__``; live if inside)."""
        if self.t1:
            return self.t1 - self.t0
        return time.perf_counter() - self.t0 if self.t0 else 0.0


class Tracer:
    """Thread-safe collector of completed spans."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        # (name, cat, pid, tid, t0, t1, args) — pid captured per event so
        # snapshots merged from forked workers keep their true process id
        self._events: list[tuple] = []
        self._epoch = time.perf_counter()

    def _record(self, sp: Span) -> None:
        pid = os.getpid()
        tid = threading.get_ident()
        with self._lock:
            self._events.append((sp.name, sp.cat, pid, tid, sp.t0, sp.t1, sp.args))
        journal.maybe_phase(sp.name, sp.t1 - sp.t0, sp.args)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def clear(self) -> None:
        with self._lock:
            self._events.clear()
            self._epoch = time.perf_counter()

    def events(self) -> list[dict]:
        """Completed spans as dicts (seconds relative to the epoch)."""
        with self._lock:
            snap = list(self._events)
            epoch = self._epoch
        return [
            {
                "name": name,
                "cat": cat,
                "pid": pid,
                "tid": tid,
                "start": t0 - epoch,
                "end": t1 - epoch,
                "dur": t1 - t0,
                "args": dict(args),
            }
            for name, cat, pid, tid, t0, t1, args in snap
        ]

    def snapshot(self) -> list[list]:
        """Serializable raw events for cross-process merging.

        Timestamps stay absolute (``perf_counter`` values), so a parent
        tracer can :meth:`ingest` the list and export everything on its
        own epoch.  The payload is plain lists, picklable through a
        process pool's result channel.
        """
        with self._lock:
            return [
                [name, cat, pid, tid, t0, t1, dict(args)]
                for name, cat, pid, tid, t0, t1, args in self._events
            ]

    def ingest(self, events: list) -> None:
        """Merge a :meth:`snapshot` from another process (or tracer).

        Events keep the pid/tid they were recorded under, so a merged
        export shows each worker in its own process lane.
        """
        rows = [
            (str(name), str(cat), int(pid), int(tid), float(t0), float(t1), dict(args))
            for name, cat, pid, tid, t0, t1, args in events
        ]
        with self._lock:
            self._events.extend(rows)

    def summary(self) -> list[dict]:
        """Aggregate spans by name: call count and total seconds,
        sorted by descending total time."""
        agg: dict[str, list] = {}
        for ev in self.events():
            rec = agg.setdefault(ev["name"], [0, 0.0])
            rec[0] += 1
            rec[1] += ev["dur"]
        rows = [
            {"name": name, "count": c, "total_s": t} for name, (c, t) in agg.items()
        ]
        rows.sort(key=lambda r: -r["total_s"])
        return rows

    def to_chrome_trace(self) -> dict:
        """Chrome trace event format (the ``"X"`` complete-event phase);
        load the exported JSON in Perfetto or ``chrome://tracing``.

        Each event carries the pid recorded when the span closed, so a
        trace holding ingested worker snapshots renders as a
        multi-process flame graph (one lane per worker pid)."""
        with self._lock:
            snap = list(self._events)
            epoch = self._epoch
        trace_events = [
            {
                "name": name,
                "cat": cat,
                "ph": "X",
                "pid": pid,
                "tid": tid,
                "ts": (t0 - epoch) * 1e6,  # microseconds
                "dur": (t1 - t0) * 1e6,
                "args": dict(args),
            }
            for name, cat, pid, tid, t0, t1, args in snap
        ]
        return {"traceEvents": trace_events, "displayTimeUnit": "ms"}

    def export(self, path: str) -> None:
        """Write the Chrome-trace JSON to ``path``."""
        with open(path, "w") as fh:
            json.dump(self.to_chrome_trace(), fh)


_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-wide tracer."""
    return _TRACER


def span(name: str, cat: str = "repro", **args) -> Span | _NullSpan:
    """Open a traced span; a shared no-op when tracing is disabled.

    Use on hot paths: the disabled case is one flag check, zero
    allocation.  The returned object is a context manager::

        with span("treecode.far_field", pairs=n):
            ...
    """
    if not _enabled:
        return _NULL_SPAN
    return Span(_TRACER, name, cat, args)


def stopwatch(name: str, cat: str = "repro", **args) -> Span:
    """A span that always measures ``elapsed``, tracing only if enabled.

    For code that consumes the duration itself (stats fields, experiment
    tables) — the single replacement for ad-hoc ``perf_counter`` pairs.
    """
    return Span(_TRACER if _enabled else None, name, cat, args)
