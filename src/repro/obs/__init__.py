"""Unified observability: span tracing, metrics, and run recording.

Three cooperating pieces, all off by default and near-free when off:

* :mod:`repro.obs.tracing` — nestable, thread-safe spans with
  Chrome-trace JSON export (view in Perfetto);
* :mod:`repro.obs.metrics` — a process-wide registry of counters,
  gauges, and log-bucketed histograms with Prometheus-text and JSON
  exposition;
* :mod:`repro.obs.recorder` — :class:`RunRecorder`, snapshotting one
  evaluation (spans + metrics + per-level Theorem-1 bound accounting)
  into a single serializable report;
* :mod:`repro.obs.journal` — :class:`Journal`, an append-only JSONL
  event log (schema-versioned envelope) recording run lifecycle,
  phase transitions, plan compiles, robustness events and bound-ledger
  summaries as they happen (the CLI's ``--journal FILE``).

Enable globally with :func:`repro.obs.enable` (or the CLI's
``profile`` subcommand / ``--trace`` / ``--metrics`` flags); the
compute layers — treecode, FMM, BEM/GMRES, parallel executor — are
pre-instrumented.
"""

from .journal import Journal, get_journal, set_journal
from .metrics import REGISTRY, Counter, Gauge, Histogram, MetricsRegistry
from .recorder import RunRecorder
from .tracing import (
    Tracer,
    disable,
    enable,
    get_tracer,
    is_enabled,
    set_enabled,
    span,
    stopwatch,
)

__all__ = [
    "REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "Journal",
    "MetricsRegistry",
    "RunRecorder",
    "Tracer",
    "get_journal",
    "set_journal",
    "disable",
    "enable",
    "get_tracer",
    "is_enabled",
    "set_enabled",
    "span",
    "stopwatch",
]
