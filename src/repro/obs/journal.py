"""Structured run journal: an append-only JSONL event log.

The tracer and metrics registry answer "where did the time go" and
"how much work was done" *after* a run finishes; the journal is the
durable, incremental record of *what happened while it ran*.  Every
significant state transition — run start/end, compute phase
completions, plan compiles with their memory footprint, every
retry/fallback/guard trip absorbed by :mod:`repro.robust`, checkpoint
writes and resumes, per-level Theorem-1 bound-ledger summaries — is
appended as one JSON line the moment it happens, so an interrupted or
crashed run leaves a readable forensic trail up to the failure instant.

Envelope
--------
Each line is one event wrapped in a schema-versioned envelope::

    {"v": 1, "seq": 12, "ts": 1754550000.123, "pid": 4242,
     "event": "retry", "data": {"site": "parallel.block", ...}}

* ``v`` — schema version (:data:`SCHEMA_VERSION`), bumped on any
  incompatible envelope change so downstream tooling can dispatch;
* ``seq`` — monotonically increasing per journal instance, making gaps
  (lost writes) detectable;
* ``ts`` — Unix epoch seconds (wall clock, cross-run comparable);
* ``pid`` — the writing process;
* ``event`` / ``data`` — the event type and its payload.

Concurrency
-----------
Writes are serialized by a lock and flushed per line; the file is
opened in append mode, so a journal can be pointed at an existing file
to extend it.  A journal inherited by a *forked* process-pool worker is
inert there: the owning pid is recorded at construction and
:meth:`Journal.emit` in any other process is a no-op, preventing
interleaved half-lines from workers (worker activity reaches the
parent's journal through the merged telemetry snapshots instead).

Usage::

    from repro.obs import journal

    with journal.Journal("run.jsonl") as j:
        journal.set_journal(j)
        j.emit("run_start", name="table2", argv=sys.argv[1:])
        ...                      # instrumented code emits as it runs
        j.emit("run_end", status="ok", exit_code=0)
    journal.set_journal(None)

Instrumented call sites use the module-level :func:`emit`, which is a
single ``is None`` check when no journal is active.
"""

from __future__ import annotations

import json
import os
import threading
import time

__all__ = [
    "SCHEMA_VERSION",
    "PHASE_SPANS",
    "SUPERVISOR_EVENTS",
    "Journal",
    "set_journal",
    "get_journal",
    "emit",
    "maybe_phase",
    "read_journal",
    "validate_supervisor_event",
]

#: v1: original envelope.  v2: adds the ``supervisor.*`` event family
#: (:data:`SUPERVISOR_EVENTS`); the envelope itself is unchanged, so v1
#: journals still parse with :func:`read_journal`.
SCHEMA_VERSION = 2

#: Supervision event types (schema v2) -> required payload keys.  The
#: payloads may carry additional keys; these are the stable contract
#: that tooling (and the schema test) may rely on.
SUPERVISOR_EVENTS: dict[str, frozenset] = {
    "supervisor.heartbeat_miss": frozenset(
        {"slot", "unit", "waited_s", "deadline_s"}
    ),
    "supervisor.reap": frozenset(
        {"slot", "unit", "waited_s", "deadline_s", "kind"}
    ),
    "supervisor.worker_death": frozenset({"slot", "unit"}),
    "supervisor.quarantine": frozenset({"unit", "failures", "kind"}),
    "supervisor.breaker_trip": frozenset({"reason"}),
    "supervisor.degraded": frozenset({"frm", "to", "reason", "units_left"}),
    "supervisor.memory_shed": frozenset({"freed_bytes", "rss", "budget"}),
}


def validate_supervisor_event(entry: dict) -> bool:
    """True iff a parsed journal entry is a well-formed ``supervisor.*``
    event: known type, v2+ envelope, all required payload keys present."""
    event = entry.get("event")
    required = SUPERVISOR_EVENTS.get(event)
    if required is None:
        return False
    if entry.get("v", 0) < 2:
        return False
    return required <= set(entry.get("data", {}))

#: Span names significant enough to journal as ``phase`` events when a
#: journal is active.  The full span stream stays in the tracer; the
#: journal records only these coarse compute-phase completions.
PHASE_SPANS = frozenset(
    {
        "treecode.build",
        "treecode.upward",
        "treecode.traverse",
        "treecode.eval",
        "treecode.evaluate",
        "fmm.evaluate",
        "plan.compile",
        "plan.eval",
        "parallel.evaluate",
        "parallel.plan_execute",
        "bem.matvec",
        "gmres.cycle",
    }
)


def _jsonable(obj):
    """Best-effort JSON coercion for event payloads (numpy scalars,
    paths, anything with a sensible str)."""
    for caster in (int, float):
        try:
            return caster(obj)
        except (TypeError, ValueError):
            continue
    return str(obj)


class Journal:
    """Append-only JSONL event log with a schema-versioned envelope."""

    def __init__(self, path: str):
        self.path = str(path)
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        self._fh = open(self.path, "a")
        self._lock = threading.Lock()
        self._seq = 0
        self._owner_pid = os.getpid()
        self._closed = False

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        with self._lock:
            if not self._closed and os.getpid() == self._owner_pid:
                self._fh.close()
            self._closed = True

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    # -- writing -------------------------------------------------------
    def emit(self, event: str, **data) -> None:
        """Append one event (no-op after close or in a forked child)."""
        if self._closed or os.getpid() != self._owner_pid:
            return
        with self._lock:
            line = json.dumps(
                {
                    "v": SCHEMA_VERSION,
                    "seq": self._seq,
                    "ts": time.time(),
                    "pid": self._owner_pid,
                    "event": event,
                    "data": data,
                },
                default=_jsonable,
            )
            self._seq += 1
            self._fh.write(line + "\n")
            self._fh.flush()


#: The active journal used by the module-level :func:`emit` hooks.
_active: Journal | None = None


def set_journal(journal: Journal | None) -> Journal | None:
    """Install ``journal`` as the active journal; returns the previous
    one so callers can restore it."""
    global _active
    previous = _active
    _active = journal
    return previous


def get_journal() -> Journal | None:
    return _active


def emit(event: str, **data) -> None:
    """Emit to the active journal; one ``is None`` check when inactive."""
    if _active is not None:
        _active.emit(event, **data)


def maybe_phase(name: str, dur_s: float, args: dict) -> None:
    """Tracer hook: journal a completed span iff it is a known phase."""
    if _active is not None and name in PHASE_SPANS:
        _active.emit("phase", name=name, dur_s=dur_s, args=dict(args))


def read_journal(path: str) -> list[dict]:
    """Parse a journal file back into event dicts (testing/tooling)."""
    events = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events
