"""RunRecorder — snapshot one evaluation into a serializable report.

The tracer answers "where did the time go", the metrics registry
answers "how much work was done"; the recorder ties them to *one run*:
it enables observability for the duration of a ``with`` block, captures
the spans and metrics produced inside it, and attaches the structured
accounting the paper's theorems reason about — interaction counts by
degree and tree level, and the per-level accumulation of Theorem-1
error bounds — into a single JSON-serializable report.

This module deliberately imports nothing from the compute layers (it is
imported *by* them via the ``repro.obs`` package), so results and stats
objects are consumed duck-typed: anything with ``TreecodeStats``-shaped
attributes or a ``GMRESResult``-shaped history works.

Usage::

    from repro.obs import RunRecorder

    rec = RunRecorder("fig2")
    with rec:
        res = treecode.evaluate(accumulate_bounds=True)
        rec.record_treecode("fig2/u1000", res)
    rec.save("report.json")       # spans + metrics + accounting
    rec.write_trace("trace.json") # Chrome-trace view of the same run
"""

from __future__ import annotations

import json
import time

from . import journal, metrics, tracing

__all__ = ["RunRecorder"]


def _stats_dict(stats) -> dict:
    """TreecodeStats-shaped object -> plain dict (duck-typed)."""
    out = {}
    for name in (
        "n_targets",
        "n_pc_interactions",
        "n_pp_pairs",
        "n_terms",
        "build_time",
        "upward_time",
        "traverse_time",
        "eval_time",
    ):
        if hasattr(stats, name):
            out[name] = getattr(stats, name)
    for name in ("interactions_by_degree", "interactions_by_level", "bound_by_level"):
        d = getattr(stats, name, None)
        if d:
            out[name] = {str(k): v for k, v in d.items()}
    if hasattr(stats, "total_time"):
        out["total_time"] = stats.total_time
    return out


class RunRecorder:
    """Capture one observed run: spans, metrics, per-run accounting.

    Entering the recorder enables tracing/metrics (restoring the prior
    state on exit) and, by default, clears the process-wide tracer and
    registry so the report covers exactly this run.
    """

    def __init__(self, name: str, clear: bool = True):
        self.name = name
        self.clear = clear
        self.wall_time: float | None = None
        self._t0: float | None = None
        self._was_enabled: bool | None = None
        self._treecode_runs: list[dict] = []
        self._gmres_runs: list[dict] = []
        self._extra: dict = {}
        self._spans: list[dict] | None = None
        self._metrics: dict | None = None
        self._chrome: dict | None = None

    # -- lifecycle -----------------------------------------------------
    def __enter__(self) -> "RunRecorder":
        self._was_enabled = tracing.is_enabled()
        if self.clear:
            tracing.get_tracer().clear()
            metrics.REGISTRY.reset()
        tracing.enable()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        self.wall_time = time.perf_counter() - self._t0
        # snapshot before restoring, so later runs don't leak in
        self._spans = tracing.get_tracer().events()
        self._chrome = tracing.get_tracer().to_chrome_trace()
        self._metrics = metrics.REGISTRY.to_dict()
        tracing.set_enabled(self._was_enabled)
        journal.emit(
            "run_summary",
            name=self.name,
            wall_s=float(self.wall_time),
            spans=len(self._spans),
            counters=dict(self._metrics.get("counters", {})),
            treecode_runs=len(self._treecode_runs),
            gmres_runs=len(self._gmres_runs),
        )
        return False

    # -- structured accounting -----------------------------------------
    def record_treecode(self, label: str, result) -> None:
        """Attach one treecode evaluation's accounting.

        ``result`` is a ``TreecodeResult``-shaped object; its stats
        (including ``bound_by_level`` when the run accumulated
        Theorem-1 bounds) are flattened into the report.
        """
        stats = getattr(result, "stats", result)
        flat = _stats_dict(stats)
        self._treecode_runs.append({"label": label, "stats": flat})
        by_level = flat.get("bound_by_level")
        if by_level:
            journal.emit(
                "bound_ledger",
                label=label,
                total=float(sum(by_level.values())),
                by_level={k: float(v) for k, v in by_level.items()},
            )

    def record_gmres(self, label: str, result) -> None:
        """Attach one GMRES solve's residual trajectory."""
        self._gmres_runs.append(
            {
                "label": label,
                "converged": bool(getattr(result, "converged", False)),
                "n_iterations": int(getattr(result, "n_iterations", 0)),
                "n_restarts": int(getattr(result, "n_restarts", 0)),
                "residual_norm": float(getattr(result, "residual_norm", 0.0)),
                "history": [float(r) for r in getattr(result, "history", [])],
            }
        )

    def record(self, key: str, value) -> None:
        """Attach a freeform JSON-serializable value."""
        self._extra[key] = value

    # -- output --------------------------------------------------------
    def report(self) -> dict:
        """The complete serializable report for this run."""
        if self._spans is None:
            # still inside the with-block (or never entered): live view
            spans = tracing.get_tracer().events()
            mets = metrics.REGISTRY.to_dict()
        else:
            spans, mets = self._spans, self._metrics
        return {
            "name": self.name,
            "wall_time": self.wall_time,
            "spans": spans,
            "metrics": mets,
            "treecode_runs": self._treecode_runs,
            "gmres_runs": self._gmres_runs,
            "extra": self._extra,
        }

    def save(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.report(), fh, indent=2)

    def write_trace(self, path: str) -> None:
        """Chrome-trace JSON of the captured spans (open in Perfetto)."""
        chrome = (
            self._chrome
            if self._chrome is not None
            else tracing.get_tracer().to_chrome_trace()
        )
        with open(path, "w") as fh:
            json.dump(chrome, fh)

    def write_metrics(self, path: str, fmt: str = "text") -> None:
        """Metrics exposition: Prometheus text (default) or JSON."""
        mets = (
            self._metrics if self._metrics is not None else metrics.REGISTRY.to_dict()
        )
        if fmt == "json":
            with open(path, "w") as fh:
                json.dump(mets, fh, indent=2)
            return
        if self._metrics is None:
            metrics.REGISTRY.export_text(path)
        else:
            # re-render from the snapshot is lossy; rebuild minimal text
            with open(path, "w") as fh:
                fh.write(_snapshot_text(mets))


def _snapshot_text(snapshot: dict) -> str:
    """Minimal Prometheus-style rendering of a `to_dict` snapshot."""
    lines: list[str] = []
    for kind_key, kind in (("counters", "counter"), ("gauges", "gauge")):
        for name, val in sorted(snapshot.get(kind_key, {}).items()):
            lines.append(f"# TYPE {name} {kind}")
            if isinstance(val, dict) and "series" in val:
                labels = val["labels"]
                for key, v in sorted(val["series"].items()):
                    parts = key.split(",")
                    lab = ",".join(f'{n}="{p}"' for n, p in zip(labels, parts))
                    lines.append(f"{name}{{{lab}}} {v}")
            else:
                lines.append(f"{name} {val}")
    for name, val in sorted(snapshot.get("histograms", {}).items()):
        lines.append(f"# TYPE {name} histogram")
        series = (
            val["series"].items()
            if isinstance(val, dict) and "series" in val
            else [("", val)]
        )
        labels = val.get("labels", []) if isinstance(val, dict) else []
        for key, v in series:
            parts = key.split(",") if key else []
            lab = ",".join(f'{n}="{p}"' for n, p in zip(labels, parts))
            cum = 0
            for bound, cnt in v["buckets"]:
                cum += cnt
                sep = "," if lab else ""
                lines.append(f'{name}_bucket{{{lab}{sep}le="{bound:g}"}} {cum}')
            sep = "," if lab else ""
            lines.append(f'{name}_bucket{{{lab}{sep}le="+Inf"}} {v["count"]}')
            suffix = f"{{{lab}}}" if lab else ""
            lines.append(f"{name}_sum{suffix} {v['sum']}")
            lines.append(f"{name}_count{suffix} {v['count']}")
    return "\n".join(lines) + ("\n" if lines else "")
