"""Plain-text table/series formatting for the benchmark harness.

The benchmarks print the same rows/series the paper reports; these
helpers keep the formatting uniform (fixed-width columns, scientific
notation for errors, millions for term counts).
"""

from __future__ import annotations

__all__ = ["format_table", "format_series", "fmt_count"]


def fmt_count(x: float) -> str:
    """Human-scale count: ``12.3M``, ``45.1K``, or plain."""
    if x >= 1e9:
        return f"{x / 1e9:.2f}B"
    if x >= 1e6:
        return f"{x / 1e6:.1f}M"
    if x >= 1e3:
        return f"{x / 1e3:.1f}K"
    return f"{x:.0f}"


def _render(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        a = abs(value)
        if a < 1e-3 or a >= 1e5:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(headers: list, rows: list, title: str = "") -> str:
    """Render rows as a fixed-width text table."""
    cells = [[_render(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    out = []
    if title:
        out.append(title)
        out.append("=" * len(title))
    out.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    out.append("  ".join("-" * w for w in widths))
    for r in cells:
        out.append("  ".join(c.rjust(w) for c, w in zip(r, widths)))
    return "\n".join(out)


def format_series(name: str, xs: list, ys: list, xlabel: str = "x", ylabel: str = "y") -> str:
    """Render an (x, y) series as the paper's figures would plot it."""
    lines = [f"series: {name}  ({xlabel} -> {ylabel})"]
    for x, y in zip(xs, ys):
        lines.append(f"  {_render(x):>12}  {_render(y):>14}")
    return "\n".join(lines)
