"""Growth-rate fitting for convergence/complexity studies.

The paper's claims are asymptotic ("error grows linearly with charge",
"aggregate error O(log n)", "complexity within a small constant"); these
helpers turn measured series into fitted exponents/rates so experiments
can assert growth *shapes* instead of absolute values.
"""

from __future__ import annotations

import numpy as np

__all__ = ["fit_power_law", "fit_log_growth", "growth_factor"]


def fit_power_law(x, y) -> tuple[float, float]:
    """Least-squares fit ``y ≈ C x^beta``; returns ``(beta, C)``.

    Both series must be positive.  Used e.g. to verify the original
    method's error bound grows ~``n^(2/3)``.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape or x.ndim != 1 or x.size < 2:
        raise ValueError("need two 1-D series of equal length >= 2")
    if np.any(x <= 0) or np.any(y <= 0):
        raise ValueError("power-law fit requires positive data")
    lx, ly = np.log(x), np.log(y)
    beta, logc = np.polyfit(lx, ly, 1)
    return float(beta), float(np.exp(logc))


def fit_log_growth(x, y) -> tuple[float, float]:
    """Least-squares fit ``y ≈ a log(x) + b``; returns ``(a, b)``.

    Used to check the improved method's O(log n) aggregate bound.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape or x.ndim != 1 or x.size < 2:
        raise ValueError("need two 1-D series of equal length >= 2")
    if np.any(x <= 0):
        raise ValueError("log fit requires positive x")
    a, b = np.polyfit(np.log(x), y, 1)
    return float(a), float(b)


def growth_factor(y) -> float:
    """``y[-1] / y[0]`` — the end-to-end growth of a positive series."""
    y = np.asarray(y, dtype=np.float64)
    if y.ndim != 1 or y.size < 2:
        raise ValueError("need a 1-D series of length >= 2")
    if y[0] == 0:
        raise ValueError("first element must be nonzero")
    return float(y[-1] / y[0])
