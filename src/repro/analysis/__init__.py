"""Error metrics and table formatting for experiments."""

from .convergence import fit_log_growth, fit_power_law, growth_factor
from .metrics import (
    absolute_l2_error,
    error_report,
    max_relative_error,
    relative_l2_error,
)
from .tables import fmt_count, format_series, format_table

__all__ = [
    "relative_l2_error",
    "max_relative_error",
    "absolute_l2_error",
    "error_report",
    "format_table",
    "format_series",
    "fmt_count",
    "fit_power_law",
    "fit_log_growth",
    "growth_factor",
]
