"""Error metrics and cost accounting used by every experiment.

The paper defines the simulation error from the vector ``a`` of accurate
potentials and the treecode's ``a'``; we provide the relative 2-norm
(the headline metric), the max-norm (worst particle), the absolute
2-norm, and helpers for summarizing treecode cost statistics.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "relative_l2_error",
    "max_relative_error",
    "absolute_l2_error",
    "error_report",
]


def relative_l2_error(approx: np.ndarray, exact: np.ndarray) -> float:
    """``||a' - a||_2 / ||a||_2`` — the paper's simulation error."""
    approx = np.asarray(approx, dtype=np.float64)
    exact = np.asarray(exact, dtype=np.float64)
    if approx.shape != exact.shape:
        raise ValueError(f"shape mismatch: {approx.shape} vs {exact.shape}")
    denom = np.linalg.norm(exact)
    if denom == 0.0:
        return float(np.linalg.norm(approx))
    return float(np.linalg.norm(approx - exact) / denom)


def max_relative_error(approx: np.ndarray, exact: np.ndarray) -> float:
    """``max_i |a'_i - a_i| / max_i |a_i|`` — worst-particle error."""
    approx = np.asarray(approx, dtype=np.float64)
    exact = np.asarray(exact, dtype=np.float64)
    if approx.shape != exact.shape:
        raise ValueError(f"shape mismatch: {approx.shape} vs {exact.shape}")
    denom = np.abs(exact).max()
    if denom == 0.0:
        return float(np.abs(approx).max())
    return float(np.abs(approx - exact).max() / denom)


def absolute_l2_error(approx: np.ndarray, exact: np.ndarray) -> float:
    """``||a' - a||_2`` — the aggregate (unnormalized) error the paper's
    bounds are stated in."""
    approx = np.asarray(approx, dtype=np.float64)
    exact = np.asarray(exact, dtype=np.float64)
    if approx.shape != exact.shape:
        raise ValueError(f"shape mismatch: {approx.shape} vs {exact.shape}")
    return float(np.linalg.norm(approx - exact))


def error_report(approx: np.ndarray, exact: np.ndarray) -> dict:
    """All three metrics in one dict (used by the benchmark tables)."""
    return {
        "rel_l2": relative_l2_error(approx, exact),
        "max_rel": max_relative_error(approx, exact),
        "abs_l2": absolute_l2_error(approx, exact),
    }
