"""Atomic JSON checkpoints for long-running experiment drivers.

A geometry sweep (``python -m repro table3``) or an ablation can run for
a long time at full scale; an interruption — SIGINT, OOM kill, a fault
the retry layer could not absorb — should cost only the step in flight,
not the whole sweep.  The unit of durability is one completed *step*
(a table3 geometry block, one ablation row): after each step the driver
stores its JSON-serializable payload under a string key, and a resumed
run replays stored payloads instead of recomputing them, making the
resumed output byte-identical to what the interrupted run had already
produced.

Write protocol: serialize to a sibling temp file, ``fsync``, then
``os.replace`` — the checkpoint on disk is always a complete, valid
JSON document, never a torn write.  Each file carries a ``meta``
fingerprint (experiment parameters, seed, scale); loading a checkpoint
whose fingerprint disagrees with the current run raises
:class:`CheckpointMismatch` rather than silently mixing results from
different configurations.

Resumes and writes increment the ``checkpoint_rows_resumed`` /
``checkpoint_rows_written`` counters and open ``robust.resume`` spans,
so ``python -m repro profile`` shows what a resumed run skipped.
"""

from __future__ import annotations

import json
import os
import tempfile

from ..obs import journal
from ..obs.metrics import REGISTRY
from ..obs.tracing import span

__all__ = ["Checkpoint", "CheckpointMismatch", "cached_step"]

_FORMAT_VERSION = 1


class CheckpointMismatch(RuntimeError):
    """Existing checkpoint was written by an incompatible run."""


class Checkpoint:
    """Keyed store of completed-step payloads in one atomic JSON file.

    Parameters
    ----------
    path:
        Checkpoint file location; created on the first save.
    meta:
        Fingerprint of the run configuration.  If the file already
        exists its stored fingerprint must match exactly, else
        :class:`CheckpointMismatch` is raised (pass the same parameters
        to resume, or delete the file to start over).
    """

    def __init__(self, path: str, meta: dict | None = None):
        self.path = str(path)
        self.meta = dict(meta or {})
        self._rows: dict[str, object] = {}
        if os.path.exists(self.path):
            with open(self.path) as fh:
                doc = json.load(fh)
            if doc.get("version") != _FORMAT_VERSION:
                raise CheckpointMismatch(
                    f"{self.path}: unsupported checkpoint version "
                    f"{doc.get('version')!r}"
                )
            stored = doc.get("meta", {})
            if stored != self.meta:
                raise CheckpointMismatch(
                    f"{self.path}: checkpoint fingerprint {stored!r} does not "
                    f"match this run {self.meta!r}; delete the file to restart"
                )
            self._rows = dict(doc.get("rows", {}))

    def __contains__(self, key: str) -> bool:
        return key in self._rows

    def __len__(self) -> int:
        return len(self._rows)

    def keys(self) -> list[str]:
        return list(self._rows)

    def get(self, key: str):
        """The stored payload for a completed step (KeyError if absent)."""
        return self._rows[key]

    def save(self, key: str, payload) -> None:
        """Record a completed step and atomically rewrite the file."""
        self._rows[key] = payload
        self._flush()
        REGISTRY.counter(
            "checkpoint_rows_written", "experiment steps persisted to checkpoints"
        ).inc()
        journal.emit("checkpoint_write", path=self.path, key=key, rows=len(self._rows))

    def _flush(self) -> None:
        doc = {"version": _FORMAT_VERSION, "meta": self.meta, "rows": self._rows}
        directory = os.path.dirname(os.path.abspath(self.path)) or "."
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=directory, prefix=os.path.basename(self.path) + ".", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(doc, fh, indent=1)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    def clear(self) -> None:
        """Forget all steps and delete the file."""
        self._rows.clear()
        if os.path.exists(self.path):
            os.unlink(self.path)


def cached_step(checkpoint: Checkpoint | None, key: str, fn):
    """Run one resumable step: replay ``key`` from the checkpoint if
    present, else compute ``fn()`` and persist it.  With no checkpoint
    this is just ``fn()``."""
    if checkpoint is not None and key in checkpoint:
        REGISTRY.counter(
            "checkpoint_rows_resumed", "experiment steps replayed from checkpoints"
        ).inc()
        journal.emit("checkpoint_resume", path=checkpoint.path, key=key)
        with span("robust.resume", key=key):
            return checkpoint.get(key)
    value = fn()
    if checkpoint is not None:
        checkpoint.save(key, value)
    return value
