"""Fault-tolerant execution layer.

Four cooperating pieces, wired through the parallel executor, GMRES,
the FMM engine and the experiment drivers:

* :mod:`~repro.robust.faults` — deterministic, seeded fault injection
  (worker-block errors/hangs, NaN corruption) from a spec string, the
  ``--inject-faults`` CLI flag, or ``REPRO_INJECT_FAULTS``;
* :mod:`~repro.robust.retry` — bounded retry with decorrelated-jitter
  backoff and per-attempt deadlines for parallel worker blocks;
* :mod:`~repro.robust.guards` — NaN/Inf guards at the treecode/FMM
  boundaries, the Theorem-1 bound-accounting sanity check, and GMRES
  breakdown/stagnation recovery (restart escalation, dense fallback);
* :mod:`~repro.robust.checkpoint` — atomic JSON checkpoint/resume for
  long experiment sweeps;
* :mod:`~repro.robust.supervisor` — supervised execution: worker
  heartbeats in shared memory, hang/OOM watchdogs, poison-unit
  quarantine, and the ``process -> thread -> serial`` degradation
  ladder (see DESIGN.md §12).

Every recovery action (retry, fallback, guard trip, resume) increments
a metrics counter and opens a span, so ``python -m repro profile``
shows exactly what a run absorbed.  See DESIGN.md §8 for the failure
model and per-failure recovery policy.
"""

from .checkpoint import Checkpoint, CheckpointMismatch, cached_step
from .faults import (
    FaultInjector,
    FaultRule,
    InjectedFault,
    active_injector,
    clear_ballast,
    maybe_corrupt,
    maybe_fault,
    parse_fault_spec,
    set_injector,
    suppress_faults,
)
from .guards import (
    BoundAccountingError,
    NumericalCorruptionError,
    RobustSolveResult,
    check_bound_accounting,
    check_finite,
    solve_with_recovery,
)
from .retry import (
    AttemptTimeout,
    RetryExhausted,
    RetryPolicy,
    abandoned_threads,
    retry_call,
)
from .supervisor import (
    BackendDegraded,
    HeartbeatTable,
    Supervisor,
    SupervisorConfig,
    cleanup_segments,
    current_rss,
    default_config,
)

__all__ = [
    "FaultInjector",
    "FaultRule",
    "InjectedFault",
    "parse_fault_spec",
    "active_injector",
    "set_injector",
    "maybe_fault",
    "maybe_corrupt",
    "suppress_faults",
    "RetryPolicy",
    "RetryExhausted",
    "AttemptTimeout",
    "retry_call",
    "NumericalCorruptionError",
    "BoundAccountingError",
    "check_finite",
    "check_bound_accounting",
    "solve_with_recovery",
    "RobustSolveResult",
    "Checkpoint",
    "CheckpointMismatch",
    "cached_step",
    "clear_ballast",
    "abandoned_threads",
    "Supervisor",
    "SupervisorConfig",
    "HeartbeatTable",
    "BackendDegraded",
    "default_config",
    "current_rss",
    "cleanup_segments",
]
