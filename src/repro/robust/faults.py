"""Deterministic, seeded fault injection for the execution layer.

The fault-tolerance machinery (retry/backoff in the parallel executor,
numerical guards at the treecode/FMM/GMRES boundaries, checkpoint
resume) is only trustworthy if its recovery paths are *exercised*, and
real worker crashes, hangs and NaN corruption are too rare to test
against.  This module makes them cheap and reproducible: a
:class:`FaultInjector` configured from a compact spec string fires
faults at named *sites* in the codebase, with every decision drawn from
a seeded counter-keyed RNG stream so a given ``(spec, seed)`` produces
the same fault schedule per site on every run (exactly deterministic
under ``n_threads=1``; under real concurrency the draw *sequence* per
site is fixed but its assignment to blocks follows scheduling order).

Spec strings are comma-separated ``mode:rate[:param]`` entries::

    block_error:0.2                 # 20% of worker-block attempts raise
    block_hang:0.1:0.5              # 10% of attempts sleep 0.5 s first
    block_nan:0.05                  # 5% of block outputs get NaN entries
    block_kill:0.1                  # 10% of process-pool units kill their worker
    block_oom:0.05:256              # 5% of attempts balloon RSS by 256 MiB
    coeff_nan:1.0                   # corrupt multipole coefficients
    gmres_nan:0.1                   # corrupt GMRES matvec results
    fmm_nan:0.5                     # corrupt the FMM output potential

Injection is reached through three module-level hooks — :func:`maybe_fault`
(raise / hang), :func:`maybe_corrupt` (NaN-poison an array) — which are
no-ops unless an injector is active.  The active injector comes from
:func:`set_injector` (tests, the ``--inject-faults`` CLI flag) or, on
first use, from the ``REPRO_INJECT_FAULTS`` / ``REPRO_FAULT_SEED``
environment variables (the CI fault-injection job).  Recovery code runs
its fallbacks inside :func:`suppress_faults` so a fallback re-evaluation
is never re-poisoned.

Every injected fault increments the ``faults_injected`` counter in the
metrics registry, so ``python -m repro profile`` shows how many faults a
run absorbed alongside the retry/fallback counters.
"""

from __future__ import annotations

import os
import threading
import time
import zlib
from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np

from ..obs import journal
from ..obs.metrics import REGISTRY

__all__ = [
    "InjectedFault",
    "FaultRule",
    "FaultInjector",
    "parse_fault_spec",
    "active_injector",
    "set_injector",
    "maybe_fault",
    "maybe_corrupt",
    "suppress_faults",
    "clear_ballast",
    "ENV_SPEC",
    "ENV_SEED",
]

ENV_SPEC = "REPRO_INJECT_FAULTS"
ENV_SEED = "REPRO_FAULT_SEED"


class InjectedFault(RuntimeError):
    """A deliberately injected failure (raised only by the harness)."""

    def __init__(self, site: str, mode: str, draw: int):
        super().__init__(f"injected fault at {site!r} (mode={mode}, draw #{draw})")
        self.site = site
        self.mode = mode
        self.draw = draw


#: mode name -> (site it fires at, behavior kind, default param)
_MODES: dict[str, tuple[str, str, float]] = {
    "block_error": ("parallel.block", "error", 0.0),
    "block_hang": ("parallel.block", "hang", 0.25),
    "block_nan": ("parallel.block", "corrupt", 0.01),
    "block_kill": ("parallel.kill", "error", 0.0),
    "block_oom": ("parallel.block", "oom", 64.0),
    "coeff_nan": ("treecode.coeffs", "corrupt", 0.001),
    "gmres_nan": ("gmres.matvec", "corrupt", 0.01),
    "fmm_nan": ("fmm.potential", "corrupt", 0.01),
}


@dataclass(frozen=True)
class FaultRule:
    """One armed fault mode: fire with probability ``rate`` at ``site``."""

    mode: str
    rate: float
    param: float  #: hang seconds, ballast MiB, or corrupt fraction

    @property
    def site(self) -> str:
        return _MODES[self.mode][0]

    @property
    def kind(self) -> str:
        return _MODES[self.mode][1]


def parse_fault_spec(spec: str) -> list[FaultRule]:
    """Parse ``"mode:rate[:param],..."`` into :class:`FaultRule` s."""
    rules: list[FaultRule] = []
    for entry in spec.split(","):
        entry = entry.strip()
        if not entry:
            continue
        parts = entry.split(":")
        if len(parts) not in (2, 3):
            raise ValueError(
                f"bad fault entry {entry!r}: expected mode:rate[:param]"
            )
        mode = parts[0]
        if mode not in _MODES:
            raise ValueError(
                f"unknown fault mode {mode!r}; known: {', '.join(sorted(_MODES))}"
            )
        rate = float(parts[1])
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1], got {rate}")
        param = float(parts[2]) if len(parts) == 3 else _MODES[mode][2]
        if param < 0.0:
            raise ValueError(f"fault param must be >= 0, got {param}")
        rules.append(FaultRule(mode=mode, rate=rate, param=param))
    return rules


class FaultInjector:
    """Fires the configured rules from seeded per-mode RNG streams.

    Draw ``k`` of mode ``m`` uses ``default_rng([seed, crc32(m), k])``
    (CRC, not ``hash()``, so streams survive interpreter hash
    randomization); a per-mode counter hands out ``k`` under a lock.
    """

    def __init__(self, rules: list[FaultRule], seed: int = 0):
        self.rules = list(rules)
        self.seed = int(seed)
        self._lock = threading.Lock()
        self._counts: dict[str, int] = {}
        self._by_site: dict[str, list[FaultRule]] = {}
        for r in self.rules:
            self._by_site.setdefault(r.site, []).append(r)

    def sites(self) -> set[str]:
        return set(self._by_site)

    def _draw(self, rule: FaultRule) -> tuple[bool, int, np.random.Generator]:
        with self._lock:
            k = self._counts.get(rule.mode, 0)
            self._counts[rule.mode] = k + 1
        rng = np.random.default_rng(
            [self.seed, zlib.crc32(rule.mode.encode()), k]
        )
        return bool(rng.random() < rule.rate), k, rng

    def _record(self, rule: FaultRule, site: str) -> None:
        REGISTRY.counter(
            "faults_injected", "faults fired by the injection harness"
        ).inc()
        journal.emit("fault_injected", site=site, mode=rule.mode)

    def maybe_fault(self, site: str) -> None:
        """Fire error/hang/oom rules armed at ``site`` (may raise, sleep
        or balloon this process's RSS)."""
        for rule in self._by_site.get(site, ()):
            if rule.kind == "hang":
                fired, _, _ = self._draw(rule)
                if fired:
                    self._record(rule, site)
                    time.sleep(rule.param)
            elif rule.kind == "oom":
                fired, _, _ = self._draw(rule)
                if fired:
                    self._record(rule, site)
                    # one live ballast per process: repeated fires swap
                    # rather than accumulate, so the injected pressure is
                    # bounded at `param` MiB (np.ones forces page commit)
                    n = int(rule.param * 1024 * 1024 / 8)
                    _BALLAST[os.getpid()] = np.ones(max(1, n), dtype=np.float64)
            elif rule.kind == "error":
                fired, k, _ = self._draw(rule)
                if fired:
                    self._record(rule, site)
                    raise InjectedFault(site, rule.mode, k)

    def maybe_corrupt(self, site: str, arr: np.ndarray) -> np.ndarray:
        """Return ``arr``, NaN-poisoned if a corrupt rule fires at ``site``."""
        for rule in self._by_site.get(site, ()):
            if rule.kind != "corrupt":
                continue
            fired, _, rng = self._draw(rule)
            if fired and arr.size:
                self._record(rule, site)
                arr = np.array(arr, copy=True)
                n_bad = max(1, int(round(rule.param * arr.size)))
                idx = rng.choice(arr.size, size=min(n_bad, arr.size), replace=False)
                arr.reshape(-1)[idx] = np.nan
        return arr


_UNSET = object()
_active: object = _UNSET
_state = threading.local()

#: pid -> live oom-ballast array.  Keyed by pid so a forked worker's
#: ballast never aliases the parent's; bounded because each fire swaps
#: the previous ballast of this process instead of appending.
_BALLAST: dict[int, np.ndarray] = {}


def clear_ballast() -> None:
    """Drop any oom ballast held by this process."""
    _BALLAST.pop(os.getpid(), None)


def active_injector() -> FaultInjector | None:
    """The process-wide injector; initialized from the environment
    (``REPRO_INJECT_FAULTS``) on first use."""
    global _active
    if _active is _UNSET:
        spec = os.environ.get(ENV_SPEC, "").strip()
        if spec:
            seed = int(os.environ.get(ENV_SEED, "0") or 0)
            _active = FaultInjector(parse_fault_spec(spec), seed=seed)
        else:
            _active = None
    return _active  # type: ignore[return-value]


def set_injector(injector: FaultInjector | None) -> None:
    """Install (or with ``None`` disable) the process-wide injector."""
    global _active
    _active = injector
    clear_ballast()


def _suppressed() -> bool:
    return getattr(_state, "depth", 0) > 0


@contextmanager
def suppress_faults():
    """Disable injection on this thread — recovery/fallback paths run
    inside this so a re-evaluation cannot be poisoned again."""
    _state.depth = getattr(_state, "depth", 0) + 1
    try:
        yield
    finally:
        _state.depth -= 1


def maybe_fault(site: str) -> None:
    """Site hook: raise/hang per the active injector (no-op otherwise)."""
    inj = active_injector()
    if inj is not None and not _suppressed():
        inj.maybe_fault(site)


def maybe_corrupt(site: str, arr: np.ndarray) -> np.ndarray:
    """Site hook: possibly NaN-poison ``arr`` (identity otherwise)."""
    inj = active_injector()
    if inj is None or _suppressed():
        return arr
    return inj.maybe_corrupt(site, arr)
