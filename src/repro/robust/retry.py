"""Retry with per-attempt deadlines and decorrelated-jitter backoff.

The policy follows the standard exponential-backoff-with-decorrelated-
jitter recipe (sleep ~ U(base, 3·previous), capped), which avoids the
synchronized retry storms of plain exponential backoff when many worker
blocks fail at once.  Deadlines are enforced by running the attempt in a
daemon thread and abandoning it on timeout — a hung NumPy kernel cannot
be interrupted from Python, so the only safe recovery is to stop
waiting, count the timeout, and retry (the abandoned thread exits with
the process).  The deadline thread is a *reusable* per-caller runner,
not a spawn per attempt: supervised plan executions arm a deadline on
every one of thousands of sub-millisecond units, and a thread spawn per
unit would cost more than the units themselves.

Every performed retry increments the ``block_retries`` counter and opens
a ``robust.retry`` span, so recovery behavior is visible in
``python -m repro profile`` output and exported traces.
"""

from __future__ import annotations

import queue
import random
import threading
import time
from dataclasses import dataclass

from ..obs import journal
from ..obs.metrics import REGISTRY
from ..obs.tracing import span

__all__ = [
    "RetryPolicy",
    "RetryExhausted",
    "AttemptTimeout",
    "retry_call",
    "abandoned_threads",
]

#: Attempt threads abandoned at their deadline.  The threads are daemons
#: (they can never block interpreter exit), but keeping explicit handles
#: makes the leak observable: ``abandoned_threads()`` prunes finished
#: ones and returns those still running a hung kernel.
_ABANDONED: list[threading.Thread] = []
_ABANDONED_LOCK = threading.Lock()


def abandoned_threads() -> list[threading.Thread]:
    """Attempt threads abandoned at a deadline and still alive."""
    with _ABANDONED_LOCK:
        _ABANDONED[:] = [t for t in _ABANDONED if t.is_alive()]
        return list(_ABANDONED)


class AttemptTimeout(RuntimeError):
    """An attempt exceeded its per-attempt deadline."""

    def __init__(self, site: str, deadline: float, attempt: int):
        super().__init__(
            f"{site}: attempt {attempt} exceeded the {deadline:g}s deadline"
        )
        self.site = site
        self.deadline = deadline
        self.attempt = attempt


class RetryExhausted(RuntimeError):
    """All attempts (initial + retries) failed; chains the last error."""

    def __init__(self, site: str, attempts: int, last: BaseException):
        super().__init__(
            f"{site}: all {attempts} attempts failed "
            f"(last: {type(last).__name__}: {last})"
        )
        self.site = site
        self.attempts = attempts
        self.last = last


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with decorrelated jitter and optional deadlines."""

    max_retries: int = 3  #: retries after the first attempt
    base_delay: float = 0.002  #: backoff floor (seconds)
    max_delay: float = 0.25  #: backoff cap (seconds)
    deadline: float | None = None  #: per-attempt timeout; None = unbounded

    def __post_init__(self):
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.base_delay < 0 or self.max_delay < self.base_delay:
            raise ValueError(
                f"need 0 <= base_delay <= max_delay, got "
                f"{self.base_delay}, {self.max_delay}"
            )
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError(f"deadline must be > 0, got {self.deadline}")


class _AttemptRunner:
    """A reusable daemon thread executing attempts for one caller thread.

    One runner serves every deadline-armed attempt its caller makes, so
    arming a deadline costs a queue round-trip (~µs) instead of a thread
    spawn (~100 µs) per attempt.  On timeout the runner is *abandoned* —
    its thread may be stuck inside an uninterruptible kernel — and the
    caller lazily creates a fresh one; the abandoned loop exits as soon
    as the stuck call returns, restoring the old one-shot semantics
    (an abandoned thread dies with its hung kernel, not with the
    process).  Fresh queues per runner also mean a late result from an
    abandoned attempt can never be mistaken for a later attempt's.
    """

    __slots__ = ("tasks", "results", "thread", "_abandoned")

    def __init__(self):
        self.tasks: queue.SimpleQueue = queue.SimpleQueue()
        self.results: queue.SimpleQueue = queue.SimpleQueue()
        self._abandoned = False
        self.thread = threading.Thread(
            target=self._loop, daemon=True, name="attempt-runner"
        )
        self.thread.start()

    def _loop(self) -> None:
        while True:
            fn = self.tasks.get()
            try:
                out = ("ok", fn())
            except BaseException as exc:  # noqa: BLE001 — re-raised in caller
                out = ("err", exc)
            self.results.put(out)
            if self._abandoned:
                return

    def abandon(self) -> None:
        self._abandoned = True


_RUNNERS = threading.local()


def _call_with_deadline(fn, deadline: float | None, site: str, attempt: int):
    if deadline is None:
        return fn()
    runner: _AttemptRunner | None = getattr(_RUNNERS, "runner", None)
    if runner is None or not runner.thread.is_alive():
        runner = _AttemptRunner()
        _RUNNERS.runner = runner
    runner.tasks.put(fn)
    try:
        status, payload = runner.results.get(timeout=deadline)
    except queue.Empty:
        # the attempt cannot be interrupted from Python; abandon the
        # runner (renamed, tracked, counted) instead of dropping the
        # handle on the floor — its thread exits once the hung call does
        runner.abandon()
        _RUNNERS.runner = None
        t = runner.thread
        t.name = f"abandoned-{site}-a{attempt}"
        with _ABANDONED_LOCK:
            _ABANDONED[:] = [a for a in _ABANDONED if a.is_alive()]
            _ABANDONED.append(t)
        REGISTRY.counter(
            "block_timeouts", "worker-block attempts abandoned at the deadline"
        ).inc()
        REGISTRY.counter(
            "retry_abandoned_threads",
            "attempt threads left running past their deadline",
        ).inc()
        journal.emit("retry_abandoned", site=site, attempt=attempt)
        raise AttemptTimeout(site, deadline, attempt)
    if status == "err":
        raise payload
    return payload


def retry_call(fn, policy: RetryPolicy, site: str, seed: int = 0):
    """Call ``fn()`` under ``policy``; returns ``(value, attempts_used)``.

    Retries on any :class:`Exception` (not ``KeyboardInterrupt``);
    raises :class:`RetryExhausted` chaining the last failure once
    ``max_retries`` retries are spent.
    """
    jitter = random.Random(seed)
    delay = policy.base_delay
    last: Exception | None = None
    for attempt in range(1, policy.max_retries + 2):
        try:
            return _call_with_deadline(fn, policy.deadline, site, attempt), attempt
        except Exception as exc:
            last = exc
            if attempt > policy.max_retries:
                break
            REGISTRY.counter(
                "block_retries", "worker-block attempts retried after a failure"
            ).inc()
            journal.emit(
                "retry", site=site, attempt=attempt, error=type(exc).__name__
            )
            delay = min(policy.max_delay, jitter.uniform(policy.base_delay, delay * 3))
            with span(
                "robust.retry", site=site, attempt=attempt, error=type(exc).__name__
            ):
                if delay > 0:
                    time.sleep(delay)
    raise RetryExhausted(site, policy.max_retries + 1, last) from last
