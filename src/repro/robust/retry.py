"""Retry with per-attempt deadlines and decorrelated-jitter backoff.

The policy follows the standard exponential-backoff-with-decorrelated-
jitter recipe (sleep ~ U(base, 3·previous), capped), which avoids the
synchronized retry storms of plain exponential backoff when many worker
blocks fail at once.  Deadlines are enforced by running the attempt in a
daemon thread and abandoning it on timeout — a hung NumPy kernel cannot
be interrupted from Python, so the only safe recovery is to stop
waiting, count the timeout, and retry (the abandoned thread exits with
the process).

Every performed retry increments the ``block_retries`` counter and opens
a ``robust.retry`` span, so recovery behavior is visible in
``python -m repro profile`` output and exported traces.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass

from ..obs import journal
from ..obs.metrics import REGISTRY
from ..obs.tracing import span

__all__ = ["RetryPolicy", "RetryExhausted", "AttemptTimeout", "retry_call"]


class AttemptTimeout(RuntimeError):
    """An attempt exceeded its per-attempt deadline."""

    def __init__(self, site: str, deadline: float, attempt: int):
        super().__init__(
            f"{site}: attempt {attempt} exceeded the {deadline:g}s deadline"
        )
        self.site = site
        self.deadline = deadline
        self.attempt = attempt


class RetryExhausted(RuntimeError):
    """All attempts (initial + retries) failed; chains the last error."""

    def __init__(self, site: str, attempts: int, last: BaseException):
        super().__init__(
            f"{site}: all {attempts} attempts failed "
            f"(last: {type(last).__name__}: {last})"
        )
        self.site = site
        self.attempts = attempts
        self.last = last


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with decorrelated jitter and optional deadlines."""

    max_retries: int = 3  #: retries after the first attempt
    base_delay: float = 0.002  #: backoff floor (seconds)
    max_delay: float = 0.25  #: backoff cap (seconds)
    deadline: float | None = None  #: per-attempt timeout; None = unbounded

    def __post_init__(self):
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.base_delay < 0 or self.max_delay < self.base_delay:
            raise ValueError(
                f"need 0 <= base_delay <= max_delay, got "
                f"{self.base_delay}, {self.max_delay}"
            )
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError(f"deadline must be > 0, got {self.deadline}")


def _call_with_deadline(fn, deadline: float | None, site: str, attempt: int):
    if deadline is None:
        return fn()
    box: list = []

    def target():
        try:
            box.append(("ok", fn()))
        except BaseException as exc:  # noqa: BLE001 — re-raised in caller
            box.append(("err", exc))

    t = threading.Thread(target=target, daemon=True, name=f"attempt-{site}")
    t.start()
    t.join(deadline)
    if not box:
        REGISTRY.counter(
            "block_timeouts", "worker-block attempts abandoned at the deadline"
        ).inc()
        raise AttemptTimeout(site, deadline, attempt)
    status, payload = box[0]
    if status == "err":
        raise payload
    return payload


def retry_call(fn, policy: RetryPolicy, site: str, seed: int = 0):
    """Call ``fn()`` under ``policy``; returns ``(value, attempts_used)``.

    Retries on any :class:`Exception` (not ``KeyboardInterrupt``);
    raises :class:`RetryExhausted` chaining the last failure once
    ``max_retries`` retries are spent.
    """
    jitter = random.Random(seed)
    delay = policy.base_delay
    last: Exception | None = None
    for attempt in range(1, policy.max_retries + 2):
        try:
            return _call_with_deadline(fn, policy.deadline, site, attempt), attempt
        except Exception as exc:
            last = exc
            if attempt > policy.max_retries:
                break
            REGISTRY.counter(
                "block_retries", "worker-block attempts retried after a failure"
            ).inc()
            journal.emit(
                "retry", site=site, attempt=attempt, error=type(exc).__name__
            )
            delay = min(policy.max_delay, jitter.uniform(policy.base_delay, delay * 3))
            with span(
                "robust.retry", site=site, attempt=attempt, error=type(exc).__name__
            ):
                if delay > 0:
                    time.sleep(delay)
    raise RetryExhausted(site, policy.max_retries + 1, last) from last
