"""Numerical guards at the treecode / FMM / GMRES boundaries.

Cruz & Barba's characterization of FMM error sources shows how a
silently degraded approximation corrupts everything downstream, so the
policy here is *fail loudly at the boundary*: every guard either passes
the data through untouched or raises a diagnostic error naming the
site, the corruption count and the first offending index — poisoned
potentials never escape into tables or solver iterates.

Three guard families:

* :func:`check_finite` — NaN/Inf detection on coefficient and potential
  arrays (treecode upward pass, worker-block outputs, FMM output,
  assembled parallel potentials).
* :func:`check_bound_accounting` — the Theorem-1 sanity check: an
  evaluation that accumulates per-target bounds also buckets the same
  bound mass per tree level, and the two ledgers must agree; finite,
  non-negative bounds whose per-level sum matches the per-target sum is
  the accounting identity the paper's theorems rest on.
* :func:`solve_with_recovery` — GMRES breakdown/stagnation handling:
  restart-parameter escalation (a stagnating GMRES(10) often converges
  with a larger Krylov space) and, for small systems, a dense
  direct-solve fallback built by applying the operator to the identity.

Every guard trip increments the ``guard_trips`` counter and records a
``robust.guard_trip`` span, so recovery behavior shows up in
``python -m repro profile``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..obs import journal
from ..obs.metrics import REGISTRY
from ..obs.tracing import span

__all__ = [
    "NumericalCorruptionError",
    "BoundAccountingError",
    "check_finite",
    "check_bound_accounting",
    "solve_with_recovery",
    "RobustSolveResult",
]


class NumericalCorruptionError(FloatingPointError):
    """NaN/Inf detected at a guarded boundary."""


class BoundAccountingError(NumericalCorruptionError):
    """The Theorem-1 bound ledger is internally inconsistent."""


def _trip(site: str, reason: str) -> None:
    REGISTRY.counter("guard_trips", "numerical guard violations detected").inc()
    journal.emit("guard_trip", site=site, reason=reason)
    with span("robust.guard_trip", site=site, reason=reason):
        pass


def check_finite(site: str, arr: np.ndarray, context: str = "") -> np.ndarray:
    """Return ``arr`` unchanged iff every entry is finite; otherwise
    raise :class:`NumericalCorruptionError` with a located diagnostic."""
    finite = np.isfinite(arr)
    if finite.all():
        return arr
    flat = np.asarray(finite).reshape(-1)
    bad = int(flat.size - np.count_nonzero(flat))
    first = int(np.argmin(flat))
    vals = np.asarray(arr).reshape(-1)
    n_nan = int(np.count_nonzero(np.isnan(vals)))
    _trip(site, "non_finite")
    suffix = f" ({context})" if context else ""
    raise NumericalCorruptionError(
        f"{site}: {bad}/{flat.size} non-finite entries "
        f"({n_nan} NaN, {bad - n_nan} Inf), first at flat index {first}{suffix}"
    )


def check_bound_accounting(
    site: str, error_bound: np.ndarray, bound_by_level: dict, rtol: float = 1e-6
) -> None:
    """Theorem-1 sanity check on one evaluation's bound ledger.

    The per-target accumulated bounds and the per-level bucket sums are
    two views of the same sum over accepted interactions; they must be
    finite, non-negative, and agree to rounding.
    """
    if not np.isfinite(error_bound).all():
        _trip(site, "bound_non_finite")
        raise BoundAccountingError(f"{site}: non-finite Theorem-1 bound entries")
    if error_bound.size and float(error_bound.min()) < 0.0:
        _trip(site, "bound_negative")
        raise BoundAccountingError(
            f"{site}: negative Theorem-1 bound {float(error_bound.min()):.3e}"
        )
    total = float(error_bound.sum())
    by_level = float(sum(bound_by_level.values()))
    if not np.isfinite(by_level) or abs(by_level - total) > rtol * max(
        1.0, abs(total)
    ):
        _trip(site, "bound_ledger_mismatch")
        raise BoundAccountingError(
            f"{site}: Theorem-1 bound ledgers disagree — per-target sum "
            f"{total:.6e} vs per-level sum {by_level:.6e}"
        )


# ----------------------------------------------------------------------
# GMRES recovery
# ----------------------------------------------------------------------


@dataclass
class RobustSolveResult:
    """A recovered linear solve: final result plus the actions taken."""

    result: object  #: the winning :class:`~repro.bem.gmres.GMRESResult`
    actions: list[str] = field(default_factory=list)  #: recovery log

    @property
    def recovered(self) -> bool:
        return bool(self.actions)


def _dense_matrix(matvec, n: int) -> np.ndarray:
    """Materialize the operator column by column (small systems only)."""
    A = np.empty((n, n), dtype=np.float64)
    e = np.zeros(n)
    for j in range(n):
        e[j] = 1.0
        A[:, j] = matvec(e)
        e[j] = 0.0
    return A


def solve_with_recovery(
    matvec,
    b: np.ndarray,
    restart: int = 10,
    tol: float = 1e-8,
    maxiter: int = 1000,
    x0: np.ndarray | None = None,
    escalations: tuple = (2, 4),
    dense_limit: int = 800,
) -> RobustSolveResult:
    """GMRES with automatic escalation and a dense fallback.

    Runs plain GMRES first; on breakdown/stagnation/non-convergence the
    restart parameter is escalated through ``restart * f`` for each
    factor in ``escalations`` (warm-started from the best iterate so
    far), and if the system is still unsolved and small enough
    (``n <= dense_limit``) the operator is materialized and solved
    directly.  The default path of a healthy solve is byte-identical to
    calling :func:`~repro.bem.gmres.gmres`.
    """
    from ..bem.gmres import GMRESResult, gmres  # local: avoid an import cycle

    b = np.asarray(b, dtype=np.float64)
    n = b.shape[0]
    actions: list[str] = []

    res = gmres(matvec, b, x0=x0, restart=restart, tol=tol, maxiter=maxiter)
    best = res
    if res.converged:
        return RobustSolveResult(result=res, actions=actions)

    for f in escalations:
        m = restart * int(f)
        REGISTRY.counter(
            "gmres_restart_escalations",
            "GMRES restart-parameter escalations after stagnation",
        ).inc()
        reason = (
            "breakdown"
            if getattr(best, "breakdown", False)
            else "stagnation" if getattr(best, "stagnated", False) else "no_convergence"
        )
        actions.append(f"escalate_restart:{m}({reason})")
        with span("robust.gmres_escalation", restart=m, reason=reason):
            # a breakdown iterate may be poisoned — restart cold then
            warm = None if getattr(best, "breakdown", False) else best.x
            res = gmres(matvec, b, x0=warm, restart=m, tol=tol, maxiter=maxiter)
        if np.isfinite(res.residual_norm) and (
            not np.isfinite(best.residual_norm)
            or res.residual_norm < best.residual_norm
        ):
            best = res
        if res.converged:
            return RobustSolveResult(result=res, actions=actions)

    if n <= dense_limit:
        REGISTRY.counter(
            "gmres_dense_fallbacks", "dense direct solves after GMRES failure"
        ).inc()
        actions.append(f"dense_solve:n={n}")
        with span("robust.dense_fallback", n=n):
            A = _dense_matrix(matvec, n)
            x, *_ = np.linalg.lstsq(A, b, rcond=None)
            rnorm = float(np.linalg.norm(b - A @ x))
        bnorm = float(np.linalg.norm(b))
        dense = GMRESResult(
            x=x,
            converged=bool(rnorm <= tol * max(bnorm, 1e-300)),
            n_iterations=best.n_iterations,
            n_restarts=best.n_restarts,
            residual_norm=rnorm,
            history=list(best.history),
        )
        if dense.converged or not np.isfinite(best.residual_norm) or (
            rnorm < best.residual_norm
        ):
            best = dense
    return RobustSolveResult(result=best, actions=actions)
