"""Supervised execution: heartbeats, watchdogs, quarantine, degradation.

The process backend (see :mod:`repro.parallel.executors`) recovers from
worker *errors* (in-worker retries + parent redo) and *deaths* (broken
pool + serial completion), but two failure classes still stall or sink a
long run: a worker that silently **hangs** (a stuck kernel never returns,
never raises) and a worker that **balloons memory** until the OS kills
something unrelated.  This module closes both holes with a supervision
layer the executors opt into:

* **Heartbeat table** — a preallocated ``multiprocessing.shared_memory``
  segment of per-worker slots.  Each worker writes ``[pid, unit,
  CLOCK_MONOTONIC, rss]`` at unit start and at every retry attempt; the
  parent reads the table lock-free.  ``CLOCK_MONOTONIC`` is system-wide
  on Linux, so parent and forked children share the clock.
* **Hang watchdog** — the parent's dispatch loop doubles as the
  watchdog: every ``heartbeat_interval`` it compares each busy slot's
  last beat against a deadline (fixed via ``unit_deadline``, or adaptive
  ``max(min_deadline, multiplier · observed-per-unit-p95)``), SIGKILLs a
  silent worker, respawns the slot, and re-dispatches the unit.  The
  scan period is capped at half the deadline, so a hang is always reaped
  within 2x the deadline.
* **Poison-unit quarantine** — a unit that fails or hangs
  ``quarantine_after`` times is quarantined: the parent completes it
  with fault injection suppressed (identical arithmetic — bitwise equal
  to serial), falling back to exact per-pair direct summation
  (``plan.execute_unit_direct``) if even the suppressed redo fails.
  Interaction-count stats are frozen at compile time, so quarantine
  never perturbs them.
* **Memory watchdog** — heartbeat rows carry each worker's RSS; a worker
  over the per-process ``memory_budget`` is reaped (kind ``"oom"``).
  When the *parent* crosses the budget it first triggers the compiled
  plan's staged :meth:`shed_memory` (float32 rows, then drop-to-spill);
  only when there is nothing left to shed does the breaker trip.
* **Circuit breaker / degradation ladder** — accumulated worker deaths
  (``max_worker_deaths``) or exhausted memory shedding trips the
  breaker: :class:`BackendDegraded` is raised with partial results kept,
  and the caller completes the remaining units one rung down the ladder
  (``process -> thread -> serial``).  The thread rung trips its own
  breaker on ``max_unit_failures`` accumulated unit failures.

Every supervision event is counted in the metrics registry
(``supervisor_*`` counters), spanned in traces (``supervisor.*`` spans)
and journaled (``supervisor.*`` events, journal schema v2), so ``python
-m repro profile`` shows a health report of what a run absorbed.

Robustness notes: workers are plain ``mp.Process`` objects with one
task queue each (never more than one unit in flight per worker), so
SIGKILLing one cannot corrupt another's assignment; a worker killed
mid-``Queue.put`` can at worst wedge the shared result pipe, which the
hang watchdog then detects on the remaining workers and the ladder
degrades past.  All shared-memory segments (operands and the heartbeat
table) are registered with an ``atexit`` + ``SIGTERM`` cleanup hook, so
an interrupted run leaves no ``/dev/shm`` residue.
"""

from __future__ import annotations

import atexit
import itertools
import os
import queue as queue_mod
import signal
import threading
import time
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from ..obs import journal
from ..obs.metrics import REGISTRY
from ..obs.tracing import get_tracer, is_enabled, span
from .faults import InjectedFault, maybe_corrupt, maybe_fault, suppress_faults
from .guards import check_finite
from .retry import retry_call

__all__ = [
    "SupervisorConfig",
    "Supervisor",
    "HeartbeatTable",
    "BackendDegraded",
    "default_config",
    "current_rss",
    "complete_quarantined",
    "run_supervised_plan_process",
    "create_segment",
    "release_segment",
    "cleanup_segments",
    "ENV_SUPERVISE",
    "ENV_HEARTBEAT_INTERVAL",
    "ENV_UNIT_DEADLINE",
    "ENV_MEMORY_BUDGET",
]

ENV_SUPERVISE = "REPRO_SUPERVISE"
ENV_HEARTBEAT_INTERVAL = "REPRO_HEARTBEAT_INTERVAL"
ENV_UNIT_DEADLINE = "REPRO_UNIT_DEADLINE"
ENV_MEMORY_BUDGET = "REPRO_MEMORY_BUDGET"  #: MiB


# ---------------------------------------------------------------------------
# RSS measurement
# ---------------------------------------------------------------------------
try:
    _PAGE_SIZE = os.sysconf("SC_PAGE_SIZE")
except (AttributeError, ValueError, OSError):  # pragma: no cover
    _PAGE_SIZE = 4096


def current_rss() -> int:
    """This process's resident set size in bytes (``/proc/self/statm``,
    falling back to ``getrusage`` peak-RSS on hosts without procfs)."""
    try:
        with open("/proc/self/statm") as fh:
            return int(fh.read().split()[1]) * _PAGE_SIZE
    except (OSError, IndexError, ValueError):  # pragma: no cover
        import resource

        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024


# ---------------------------------------------------------------------------
# shared-memory segment tracking: no /dev/shm residue on abnormal exit
# ---------------------------------------------------------------------------
#: id(shm) -> (shm, owner pid).  Only the creating process may unlink —
#: forked children inherit this dict but their hooks skip foreign pids.
_TRACKED: dict[int, tuple] = {}
_TRACK_LOCK = threading.Lock()
_HOOKS_INSTALLED = False
_SEG_COUNTER = itertools.count()


def cleanup_segments() -> None:
    """Close and unlink every tracked segment owned by this process.

    Registered with ``atexit`` and chained onto SIGTERM; also safe to
    call directly.  ``unlink`` works even while numpy views of the
    buffer are still alive (it only removes the ``/dev/shm`` name).
    """
    with _TRACK_LOCK:
        items = list(_TRACKED.values())
        _TRACKED.clear()
    for shm, owner in items:
        if owner != os.getpid():
            continue
        try:
            shm.close()
        except Exception:
            pass
        try:
            shm.unlink()
        except Exception:
            pass


def _install_cleanup_hooks() -> None:
    global _HOOKS_INSTALLED
    if _HOOKS_INSTALLED:
        return
    _HOOKS_INSTALLED = True
    atexit.register(cleanup_segments)
    # SIGINT surfaces as KeyboardInterrupt and unwinds through the
    # executors' finally blocks (and the atexit hook); SIGTERM by
    # default skips both, so chain a handler that cleans up first.
    if threading.current_thread() is not threading.main_thread():
        return  # signal handlers can only be set from the main thread
    try:
        previous = signal.getsignal(signal.SIGTERM)

        def _on_term(signum, frame):
            cleanup_segments()
            if callable(previous):
                previous(signum, frame)
            else:
                signal.signal(signum, signal.SIG_DFL)
                os.kill(os.getpid(), signum)

        signal.signal(signal.SIGTERM, _on_term)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass


def create_segment(nbytes: int):
    """Create a tracked, named ``SharedMemory`` segment.

    The name encodes the owning pid (``repro-<pid>-<seq>-<nonce>``), so
    leak checks can scan ``/dev/shm`` for a specific process's residue.
    """
    from multiprocessing import shared_memory

    name = f"repro-{os.getpid()}-{next(_SEG_COUNTER)}-{os.urandom(3).hex()}"
    shm = shared_memory.SharedMemory(create=True, size=max(1, int(nbytes)), name=name)
    _install_cleanup_hooks()
    with _TRACK_LOCK:
        _TRACKED[id(shm)] = (shm, os.getpid())
    return shm


def release_segment(shm) -> None:
    """Close, unlink and untrack one segment (idempotent)."""
    with _TRACK_LOCK:
        _TRACKED.pop(id(shm), None)
    try:
        shm.close()
    except Exception:
        pass
    try:
        shm.unlink()
    except Exception:
        pass


# ---------------------------------------------------------------------------
# heartbeat table
# ---------------------------------------------------------------------------
_IDLE = -1.0  #: unit field of a slot with no unit in flight


class HeartbeatTable:
    """Fixed-slot worker-to-parent heartbeat channel in shared memory.

    Layout: float64 ``(n_slots, 4)`` rows of ``[pid, unit, monotonic_ts,
    rss_bytes]``.  Exactly one writer per slot (the worker owning it)
    and one reader (the parent watchdog); the timestamp is written last,
    and the watchdog tolerates torn reads because it compares timestamps
    with at least a full heartbeat interval of slack and cross-checks
    the pid field against its own bookkeeping.
    """

    FIELDS = 4

    def __init__(self, n_slots: int):
        self.n_slots = int(n_slots)
        self._shm = create_segment(self.n_slots * self.FIELDS * 8)
        self.table = np.ndarray(
            (self.n_slots, self.FIELDS), dtype=np.float64, buffer=self._shm.buf
        )
        self.table[:] = 0.0
        self.table[:, 1] = _IDLE

    @property
    def name(self) -> str:
        return self._shm.name

    def beat(self, slot: int, unit: int | float, rss: int = 0) -> None:
        """Publish one heartbeat for ``slot`` (called by the worker)."""
        row = self.table[slot]
        row[0] = float(os.getpid())
        row[1] = float(unit)
        row[3] = float(rss)
        row[2] = time.monotonic()  # ts last: fresh ts implies fresh fields

    def clear(self, slot: int) -> None:
        self.table[slot, 1] = _IDLE

    def read(self) -> np.ndarray:
        """A snapshot copy of the table (parent watchdog side)."""
        return np.array(self.table, copy=True)

    def close(self) -> None:
        self.table = None
        release_segment(self._shm)


# ---------------------------------------------------------------------------
# configuration
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class SupervisorConfig:
    """Thresholds and timings of the supervision layer."""

    heartbeat_interval: float = 0.05  #: watchdog scan period (seconds)
    unit_deadline: float | None = None  #: fixed hang deadline; None = adaptive
    deadline_multiplier: float = 4.0  #: adaptive: multiplier x observed p95
    min_deadline: float = 0.25  #: adaptive floor (seconds)
    #: deadline before enough samples exist.  Deliberately generous: a
    #: false timeout on a legitimately slow first unit wastes the whole
    #: attempt and leaves a CPU-burning abandoned thread, while a real
    #: hang merely waits this long once before statistics take over.
    warmup_deadline: float = 10.0
    warmup_samples: int = 5  #: completed units before p95 is trusted
    quarantine_after: int = 2  #: failures/hangs before a unit quarantines
    max_worker_deaths: int = 4  #: breaker: process -> thread
    max_unit_failures: int = 16  #: breaker: thread -> serial
    memory_budget: int | None = None  #: per-process RSS budget (bytes)
    shed_fraction: float = 0.8  #: parent sheds plan memory at this x budget

    def __post_init__(self):
        if self.heartbeat_interval <= 0:
            raise ValueError(
                f"heartbeat_interval must be > 0, got {self.heartbeat_interval}"
            )
        if self.unit_deadline is not None and self.unit_deadline <= 0:
            raise ValueError(f"unit_deadline must be > 0, got {self.unit_deadline}")
        if self.quarantine_after < 1:
            raise ValueError(
                f"quarantine_after must be >= 1, got {self.quarantine_after}"
            )
        if self.memory_budget is not None and self.memory_budget <= 0:
            raise ValueError(f"memory_budget must be > 0, got {self.memory_budget}")
        if not 0.0 < self.shed_fraction <= 1.0:
            raise ValueError(
                f"shed_fraction must be in (0, 1], got {self.shed_fraction}"
            )


def default_config() -> SupervisorConfig | None:
    """Supervision settings from the environment, or ``None`` when
    ``REPRO_SUPERVISE`` is not truthy.

    The CLI flags export these variables rather than passing objects, so
    forked workers and nested entry points see one consistent config.
    """
    flag = os.environ.get(ENV_SUPERVISE, "").strip().lower()
    if flag not in ("1", "true", "yes", "on"):
        return None
    kwargs: dict = {}
    hb = os.environ.get(ENV_HEARTBEAT_INTERVAL, "").strip()
    if hb:
        kwargs["heartbeat_interval"] = float(hb)
    dl = os.environ.get(ENV_UNIT_DEADLINE, "").strip()
    if dl:
        kwargs["unit_deadline"] = float(dl)
    mb = os.environ.get(ENV_MEMORY_BUDGET, "").strip()
    if mb:
        kwargs["memory_budget"] = int(float(mb) * 1024 * 1024)
    return SupervisorConfig(**kwargs)


class BackendDegraded(RuntimeError):
    """The circuit breaker tripped: abandon the current backend and
    complete the remaining units one rung down the ladder."""

    def __init__(self, backend: str, reason: str):
        super().__init__(f"{backend} backend degraded: {reason}")
        self.backend = backend
        self.reason = reason


# ---------------------------------------------------------------------------
# parent-side bookkeeping + event emission
# ---------------------------------------------------------------------------
_DURATION_WINDOW = 256  #: recent per-unit durations kept for the p95
_DEADLINE_REFRESH = 16  #: samples between adaptive-deadline recomputes


class Supervisor:
    """Shared supervision state across the ladder's rungs.

    Tracks per-unit durations (for the adaptive deadline), per-unit
    failure counts (for quarantine), worker mortality and the breaker,
    and emits every supervision event to the metrics registry, the
    tracer and the journal.
    """

    def __init__(self, config: SupervisorConfig | None = None):
        self.cfg = config if config is not None else SupervisorConfig()
        self.quarantined: set[int] = set()
        self.worker_deaths = 0
        self.tripped = False
        self.trip_reason: str | None = None
        self.n_reaps = 0
        self.n_quarantines = 0
        self.n_degradations = 0
        # adaptive-deadline state: a bounded window of recent durations
        # plus a cached p95-derived deadline refreshed every
        # _DEADLINE_REFRESH samples — deadline() is called once per unit,
        # so it must not sort the history every time
        self._durations: deque = deque(maxlen=_DURATION_WINDOW)
        self._max_duration = 0.0
        self._deadline_cache: float | None = None
        self._since_refresh = 0
        self._failures: dict[int, int] = {}
        self._lock = threading.Lock()

    # -- adaptive deadline ---------------------------------------------
    def record_duration(self, seconds: float) -> None:
        with self._lock:
            seconds = float(seconds)
            self._durations.append(seconds)
            if seconds > self._max_duration:
                self._max_duration = seconds
                self._deadline_cache = None
            self._since_refresh += 1
            if self._since_refresh >= _DEADLINE_REFRESH:
                self._deadline_cache = None
                self._since_refresh = 0

    def deadline(self) -> float:
        """Current hang deadline: fixed, or adaptive from observed p95.

        The p95 term calibrates homogeneous workloads; the
        ``2 x max-observed`` floor protects heterogeneous unit mixes
        (a few heavy far units among thousands of sub-ms near blocks),
        where a p95-only deadline would falsely time out every heavy
        unit — each false timeout wastes the whole attempt *and* leaves
        an abandoned thread burning CPU.  A genuine hang never
        completes, so it can never raise the floor.
        """
        cfg = self.cfg
        if cfg.unit_deadline is not None:
            return cfg.unit_deadline
        with self._lock:
            slowest = 2.0 * self._max_duration
            if len(self._durations) < cfg.warmup_samples:
                return max(cfg.min_deadline, cfg.warmup_deadline, slowest)
            if self._deadline_cache is None:
                durs = sorted(self._durations)
                p95 = durs[min(len(durs) - 1, int(0.95 * len(durs)))]
                self._deadline_cache = max(
                    cfg.min_deadline, cfg.deadline_multiplier * p95, slowest
                )
            return self._deadline_cache

    # -- failure accounting --------------------------------------------
    def record_failure(self, unit: int) -> bool:
        """Count one failure of ``unit``; True once it crosses the
        quarantine threshold (exactly once per unit)."""
        with self._lock:
            k = self._failures.get(unit, 0) + 1
            self._failures[unit] = k
            if k >= self.cfg.quarantine_after and unit not in self.quarantined:
                self.quarantined.add(unit)
                return True
        return False

    def failures_of(self, unit: int) -> int:
        with self._lock:
            return self._failures.get(unit, 0)

    def total_failures(self) -> int:
        with self._lock:
            return sum(self._failures.values())

    # -- events ---------------------------------------------------------
    def on_heartbeat_miss(
        self, slot: int, unit: int, waited: float, deadline: float
    ) -> None:
        REGISTRY.counter(
            "supervisor_heartbeat_misses",
            "busy worker slots whose heartbeat went stale past the deadline",
        ).inc()
        journal.emit(
            "supervisor.heartbeat_miss",
            slot=slot,
            unit=unit,
            waited_s=waited,
            deadline_s=deadline,
        )

    def on_reap(
        self, slot: int, unit: int, waited: float, deadline: float, kind: str
    ) -> None:
        self.n_reaps += 1
        self.worker_deaths += 1
        REGISTRY.counter(
            "supervisor_reaps", "stuck or over-budget workers SIGKILLed"
        ).inc()
        if kind == "oom":
            REGISTRY.counter(
                "supervisor_oom_reaps", "workers reaped for exceeding the RSS budget"
            ).inc()
        journal.emit(
            "supervisor.reap",
            slot=slot,
            unit=unit,
            waited_s=waited,
            deadline_s=deadline,
            kind=kind,
        )

    def on_worker_death(self, slot: int, unit: int | None) -> None:
        self.worker_deaths += 1
        REGISTRY.counter(
            "supervisor_worker_deaths", "workers that died without being reaped"
        ).inc()
        journal.emit("supervisor.worker_death", slot=slot, unit=unit)

    def on_quarantine(self, unit: int, kind: str) -> None:
        self.n_quarantines += 1
        REGISTRY.counter(
            "supervisor_quarantines", "poison units completed on the parent"
        ).inc()
        journal.emit(
            "supervisor.quarantine",
            unit=unit,
            failures=self.failures_of(unit),
            kind=kind,
        )

    def on_memory_shed(self, freed: int, rss: int, budget: int) -> None:
        REGISTRY.counter(
            "supervisor_memory_sheds", "plan memory sheds under RSS pressure"
        ).inc()
        REGISTRY.counter(
            "supervisor_memory_shed_bytes", "plan bytes released under RSS pressure"
        ).inc(int(freed))
        journal.emit(
            "supervisor.memory_shed", freed_bytes=int(freed), rss=int(rss),
            budget=int(budget),
        )
        with span("supervisor.memory_shed", freed_bytes=int(freed)):
            pass

    def trip(self, reason: str) -> None:
        if self.tripped:
            return
        self.tripped = True
        self.trip_reason = reason
        REGISTRY.counter(
            "supervisor_breaker_trips", "circuit-breaker trips (any rung)"
        ).inc()
        journal.emit(
            "supervisor.breaker_trip",
            reason=reason,
            deaths=self.worker_deaths,
            failures=self.total_failures(),
        )
        with span("supervisor.breaker_trip", reason=reason):
            pass

    def on_degrade(self, frm: str, to: str, reason: str, units_left: int) -> None:
        self.n_degradations += 1
        # the next rung gets a fresh breaker
        self.tripped = False
        REGISTRY.counter(
            "supervisor_degradations", "backend downgrades along the ladder"
        ).inc()
        journal.emit(
            "supervisor.degraded", frm=frm, to=to, reason=reason,
            units_left=units_left,
        )
        with span("supervisor.degraded", frm=frm, to=to, reason=reason):
            pass


def complete_quarantined(plan, ctx, q_sorted, unit: int, sup: Supervisor):
    """Complete a quarantined unit on the supervising process.

    First the suppressed-fault redo (identical arithmetic — bitwise
    equal to a healthy worker); exact per-pair direct summation
    (:meth:`execute_unit_direct`) only if even that fails, e.g. on
    corrupted plan state.
    """
    with span("supervisor.quarantine", unit=unit):
        with suppress_faults():
            try:
                tids, vals = plan.execute_unit(ctx, q_sorted, unit)
                check_finite(
                    "parallel.quarantine", vals, context="quarantined unit redo"
                )
                kind = "redo"
            except Exception:
                tids, vals = plan.execute_unit_direct(q_sorted, unit)
                check_finite(
                    "parallel.quarantine",
                    vals,
                    context="quarantined unit direct summation",
                )
                kind = "direct"
    sup.on_quarantine(unit, kind)
    return tids, vals


# ---------------------------------------------------------------------------
# supervised process fleet
# ---------------------------------------------------------------------------
#: Pre-fork state inherited by supervised workers (shared-memory views
#: plus the plan's copy-on-write geometry); set by
#: :func:`run_supervised_plan_process` immediately before spawning.
_WORKER_STATE: dict = {}


def _supervised_worker(slot: int, task_q, result_q) -> None:
    """Body of one supervised worker process.

    One unit in flight at a time: the parent puts unit ids on this
    worker's private task queue and results come back on the shared
    result queue.  Heartbeats are published at unit start and at every
    retry attempt — an injected (or real) hang inside an attempt stops
    the beats, which is exactly what the parent watchdog detects.
    """
    st = _WORKER_STATE
    plan, ctx, q_sorted, policy = st["plan"], st["ctx"], st["q"], st["policy"]
    hb: HeartbeatTable = st["hb"]
    obs_on = st["obs"]
    while True:
        unit = task_q.get()
        if unit is None:
            hb.clear(slot)
            return
        hb.beat(slot, unit, current_rss())
        try:
            maybe_fault("parallel.kill")
        except InjectedFault:
            os._exit(3)  # simulated hard crash: no cleanup, no exception
        if obs_on:
            get_tracer().clear()
            REGISTRY.reset()

        def attempt(unit=unit):
            hb.beat(slot, unit, current_rss())
            maybe_fault("parallel.block")
            tids, vals = plan.execute_unit(ctx, q_sorted, unit)
            vals = maybe_corrupt("parallel.block", vals)
            check_finite("parallel.block", vals, context="plan unit output")
            return tids, vals

        try:
            with span("parallel.block", unit=unit) as sp:
                (tids, vals), attempts = retry_call(
                    attempt, policy, site="parallel.block", seed=unit
                )
            telemetry = None
            if obs_on:
                REGISTRY.histogram(
                    "parallel_block_seconds", "wall time per worker block"
                ).observe(sp.elapsed)
                telemetry = {
                    "spans": get_tracer().snapshot(),
                    "metrics": REGISTRY.to_dict(),
                }
            ok, payload = True, (tids, vals, attempts, telemetry)
        except Exception as exc:  # retries exhausted or guards tripped
            ok, payload = False, f"{type(exc).__name__}: {exc}"
        hb.beat(slot, _IDLE, current_rss())
        result_q.put((slot, unit, ok, payload))


@dataclass
class _WorkerHandle:
    slot: int
    proc: object
    queue: object
    busy: int | None = None
    assigned_at: float = field(default=0.0)


def run_supervised_plan_process(
    plan,
    ctx_shared: dict,
    q_shared: np.ndarray,
    ctx_local: dict,
    q_local: np.ndarray,
    n_workers: int,
    policy,
    sup: Supervisor,
    results: dict,
    recovery: dict,
    merge_telemetry,
) -> None:
    """Supervised process-backend execution of a plan's units.

    Fills ``results`` (``{unit: (tids, vals)}``) in place; raises
    :class:`BackendDegraded` when the circuit breaker trips, with every
    completed unit's result kept so the next rung only runs the rest.

    ``ctx_shared``/``q_shared`` are the shared-memory operand views the
    workers read; ``ctx_local``/``q_local`` back the parent-side
    quarantine completions (identical values either way).
    """
    import multiprocessing as mp

    global _WORKER_STATE
    cfg = sup.cfg
    mpctx = mp.get_context("fork")
    n_units = plan.n_units
    pending: deque = deque(i for i in range(n_units) if i not in results)
    hb = HeartbeatTable(n_workers)
    result_q = mpctx.Queue()
    handles: list[_WorkerHandle] = []
    plan_shed_exhausted = False
    _WORKER_STATE = {
        "plan": plan,
        "ctx": ctx_shared,
        "q": q_shared,
        "policy": policy,
        "hb": hb,
        "obs": is_enabled(),
    }

    def spawn(slot: int) -> _WorkerHandle:
        # fork inherits _WORKER_STATE, the shm mappings and the armed
        # injector; one private task queue per worker keeps assignments
        # isolated from SIGKILLs of its siblings
        q = mpctx.Queue()
        proc = mpctx.Process(
            target=_supervised_worker, args=(slot, q, result_q), daemon=True
        )
        proc.start()
        return _WorkerHandle(slot=slot, proc=proc, queue=q)

    def retire(h: _WorkerHandle) -> None:
        try:
            h.proc.join(timeout=5.0)
        except Exception:
            pass
        try:
            h.queue.cancel_join_thread()
            h.queue.close()
        except Exception:
            pass

    def fail_unit(unit: int) -> None:
        """One failure strike; quarantine-complete or re-dispatch."""
        if sup.record_failure(unit):
            results[unit] = complete_quarantined(plan, ctx_local, q_local, unit, sup)
            recovery["fallbacks"] += 1
        elif unit not in results:
            pending.appendleft(unit)

    def check_breaker() -> None:
        if not sup.tripped and sup.worker_deaths >= cfg.max_worker_deaths:
            sup.trip("worker_mortality")

    try:
        handles = [spawn(s) for s in range(n_workers)]
        while len(results) < n_units:
            if sup.tripped:
                raise BackendDegraded("process", sup.trip_reason or "breaker")
            # dispatch: at most one unit in flight per worker
            for h in handles:
                if h.busy is None:
                    while pending and pending[0] in results:
                        pending.popleft()
                    if pending and h.proc.is_alive():
                        h.busy = pending.popleft()
                        h.assigned_at = time.monotonic()
                        h.queue.put(h.busy)
            # collect: the bounded wait doubles as the watchdog tick
            deadline_s = sup.deadline()
            wait = min(cfg.heartbeat_interval, deadline_s / 2.0)
            try:
                msg = result_q.get(timeout=wait)
            except queue_mod.Empty:
                msg = None
            except Exception:
                # a worker killed mid-put can leave a torn pickle in the
                # shared pipe; drop it — the unit strikes out via its
                # missing result and the watchdog
                msg = None
            while msg is not None:
                slot, unit, ok, payload = msg
                h = handles[slot]
                if h.busy == unit:
                    sup.record_duration(time.monotonic() - h.assigned_at)
                    h.busy = None
                if unit not in results:
                    if ok:
                        tids, vals, attempts, telemetry = payload
                        results[unit] = (tids, vals)
                        recovery["retries"] += attempts - 1
                        merge_telemetry(telemetry)
                    else:
                        # in-worker retries exhausted or guards tripped
                        recovery["retries"] += policy.max_retries
                        fail_unit(unit)
                try:
                    msg = result_q.get_nowait()
                except (queue_mod.Empty, Exception):
                    msg = None
            # watchdog scan: hangs, silent deaths, memory pressure
            now = time.monotonic()
            snap = hb.read()
            for h in list(handles):
                alive = h.proc.is_alive()
                if h.busy is None:
                    if not alive:  # died between units (e.g. idle SIGKILL)
                        sup.on_worker_death(h.slot, None)
                        retire(h)
                        handles[h.slot] = spawn(h.slot)
                        check_breaker()
                    continue
                row = snap[h.slot]
                last = h.assigned_at
                if int(row[0]) == h.proc.pid and row[2] > last:
                    last = float(row[2])
                if not alive:
                    unit = h.busy
                    h.busy = None
                    sup.on_worker_death(h.slot, unit)
                    retire(h)
                    handles[h.slot] = spawn(h.slot)
                    fail_unit(unit)
                    check_breaker()
                    continue
                waited = now - last
                if waited > deadline_s:
                    unit = h.busy
                    h.busy = None
                    sup.on_heartbeat_miss(h.slot, unit, waited, deadline_s)
                    with span(
                        "supervisor.reap", slot=h.slot, unit=unit, kind="hang"
                    ):
                        h.proc.kill()
                    sup.on_reap(h.slot, unit, waited, deadline_s, "hang")
                    retire(h)
                    handles[h.slot] = spawn(h.slot)
                    fail_unit(unit)
                    check_breaker()
                    continue
                if (
                    cfg.memory_budget
                    and int(row[0]) == h.proc.pid
                    and row[3] > cfg.memory_budget
                ):
                    unit = h.busy
                    h.busy = None
                    with span(
                        "supervisor.reap", slot=h.slot, unit=unit, kind="oom"
                    ):
                        h.proc.kill()
                    sup.on_reap(h.slot, unit, waited, deadline_s, "oom")
                    retire(h)
                    handles[h.slot] = spawn(h.slot)
                    fail_unit(unit)
                    check_breaker()
                    continue
            # parent memory pressure: shed plan memory before breaking
            if cfg.memory_budget and not sup.tripped:
                rss = current_rss()
                threshold = cfg.shed_fraction * cfg.memory_budget
                if rss > threshold and not plan_shed_exhausted:
                    freed = plan.shed_memory()
                    if freed > 0:
                        sup.on_memory_shed(freed, rss, cfg.memory_budget)
                    else:
                        plan_shed_exhausted = True
                if rss > cfg.memory_budget and plan_shed_exhausted:
                    sup.trip("memory_pressure")
    finally:
        _WORKER_STATE = {}
        for h in handles:
            if h.proc.is_alive():
                try:
                    h.queue.put(None)
                except Exception:
                    pass
        for h in handles:
            try:
                h.proc.join(timeout=1.0)
                if h.proc.is_alive():
                    h.proc.kill()
                    h.proc.join(timeout=5.0)
            except Exception:
                pass
            try:
                h.queue.cancel_join_thread()
                h.queue.close()
            except Exception:
                pass
        try:
            result_q.cancel_join_thread()
            result_q.close()
        except Exception:
            pass
        hb.close()
