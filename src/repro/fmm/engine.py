"""Uniform-grid Fast Multipole Method.

The paper closes with "the results presented in this paper can easily be
extended to the Fast Multipole Method as well.  We are currently
exploring this" — this module is that extension: a complete FMM
(P2M → M2M → M2L → L2L → L2P plus near field) over a uniform octree,
with the multipole/local degree selectable *per level* so that
Theorem 3's adaptive-degree idea transfers: for uniform charge density,
level ``l`` clusters carry ``8^(L-l)`` times the leaf charge, so the
improved schedule raises the degree by ``c`` per level above the leaves.

Vectorization strategy: cells are linearized in Morton order so the
children of cell ``c`` are ``8c .. 8c+7``; every translation at a level
is grouped by its *relative offset* (8 offsets for M2M/L2L, ≤316 for
M2L), and each group is one batched operator application — the shared
shift broadcasts against all cell coefficient rows at once.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.bounds import degree_for_tolerance, degree_increment_per_level
from ..multipole.expansion import l2p, m_weights, p2m_terms
from ..multipole.harmonics import (
    cart_to_sph,
    degree_of_index,
    ncoef,
    power_table,
    sph_harmonics,
    term_count,
)
from ..multipole.rotations import RotationCache, rotate_packed
from ..multipole.translations import (
    axial_l2l,
    axial_m2l,
    axial_m2m,
    l2l,
    m2l,
    m2l_operator,
    m2m,
)
from ..obs import journal
from ..obs.metrics import REGISTRY
from ..obs.tracing import is_enabled, span, stopwatch
from ..robust.faults import maybe_corrupt
from ..robust.guards import check_finite
from ..tree.morton import deinterleave3, interleave3

__all__ = ["UniformFMM", "FMMStats", "level_degrees"]


@dataclass
class FMMStats:
    """Operation counts of one FMM evaluation."""

    n_m2l: int = 0
    n_pp_pairs: int = 0
    n_terms_m2l: int = 0  #: sum over M2L applications of (p+1)^2
    times: dict = field(default_factory=dict)


def level_degrees(p0: int, n_levels: int, c: float = 0.0, p_max: int = 30) -> list[int]:
    """Degree schedule per level (index 0 = root .. index L = leaves).

    ``c = 0`` is the classic fixed-degree FMM; ``c > 0`` raises the
    degree of coarser levels by ``ceil(c * levels_above_leaf)`` — the
    Theorem-3 schedule for uniform charge density.
    """
    if p0 < 0:
        raise ValueError("p0 must be >= 0")
    L = n_levels - 1
    return [min(p_max, p0 + int(np.ceil(c * (L - l)))) for l in range(n_levels)]


class UniformFMM:
    """FMM over a uniform octree of depth ``level``.

    Parameters
    ----------
    points, charges:
        Sources, ``(n, 3)`` / ``(n,)``; charges may also be an
        ``(n, k)`` batch of stacked vectors (see :meth:`set_charges`).
    level:
        Leaf level ``L`` (``8^L`` cells); ``None`` picks
        ``~log8(n / 8)`` so leaves hold a handful of particles.
    degrees:
        Per-level degree list (root..leaf), e.g. from
        :func:`level_degrees`; an int means fixed degree.
    tol:
        Target far-field accuracy.  When set, the degree schedule is
        derived from the actual charges via :meth:`tolerance_degrees`
        (overriding ``degrees``): the leaf degree solves the Theorem-1
        inverse at the worst V-list geometry and coarser levels grow by
        :func:`~repro.core.bounds.degree_increment_per_level`.
    tol_p_max:
        Degree cap of the ``tol``-derived schedule.
    use_plan:
        Freeze the geometry into a plan (P2M rows, probed M2L operator
        matrices per offset group, L2P rows, near pair lists) at the
        *second* :meth:`evaluate`, so repeated evaluations over the same
        grid — e.g. after :meth:`set_charges` — skip all geometry
        recomputation.  The first evaluation always runs the direct
        path, so one-shot uses pay nothing.
    translation_backend:
        ``"dense"``, ``"rotation"`` or ``"auto"``: kernel family for the
        M2M/M2L/L2L sweeps.  The rotation pipeline
        (rotate-translate-rotate, O((p+1)^3) per translation) shines on
        the uniform grid: the ≤316 V-list offsets have the *same* unit
        directions at every level (offsets scale with the cell edge), so
        one small shared operator cache covers the whole hierarchy —
        and, in the planned path, replaces the per-offset dense
        ``(Tr, Ti)`` operator matrices, shrinking plan memory from
        O(offsets · p^4) to O(dirs · p^3).  ``"auto"`` rotates at
        degrees >=
        :data:`~repro.parallel.partition.ROTATION_CROSSOVER_P`.
    plan_cache:
        Persistent plan-cache directory (see :mod:`repro.perf.store`).
        ``None`` consults the ``REPRO_PLAN_CACHE`` environment
        variable; ``""`` disables.  When the plan would compile (second
        :meth:`evaluate`), a warm cache restores the frozen geometry —
        P2M/L2P rows, M2L operator matrices, rotation operators, near
        pair lists — as a zero-copy ``mmap`` instead.
    """

    def __init__(
        self,
        points: np.ndarray,
        charges: np.ndarray,
        level: int | None = None,
        degrees: int | list[int] = 6,
        tol: float | None = None,
        tol_p_max: int = 30,
        use_plan: bool = True,
        translation_backend: str = "auto",
        plan_cache: str | None = None,
    ) -> None:
        self.use_plan = bool(use_plan)
        if translation_backend not in ("dense", "rotation", "auto"):
            raise ValueError(
                "translation_backend must be 'dense', 'rotation' or "
                f"'auto', got {translation_backend!r}"
            )
        self.translation_backend = translation_backend
        #: shared rotation operators — directions repeat across levels
        self._rot_cache = RotationCache()
        points = np.ascontiguousarray(points, dtype=np.float64)
        charges = np.ascontiguousarray(charges, dtype=np.float64)
        if points.ndim != 2 or points.shape[1] != 3:
            raise ValueError(f"points must be (n, 3), got {points.shape}")
        n = points.shape[0]
        self._col_batch = charges.ndim == 2
        if charges.ndim not in (1, 2) or charges.shape[0] != n:
            raise ValueError(
                f"charges must be ({n},) or ({n}, k), got {charges.shape}"
            )
        if self._col_batch and charges.shape[1] == 0:
            raise ValueError("charge batch must have at least one column")
        if self._col_batch and charges.shape[1] == 1:
            # single-column batch: run the 1-D path (bitwise-identical to
            # a plain vector); evaluate() restores the column axis
            charges = charges[:, 0]
        if n == 0:
            raise ValueError("need at least one particle")

        if level is None:
            level = max(2, int(np.round(np.log(max(n, 64) / 8.0) / np.log(8.0))))
        if level < 2:
            raise ValueError("level must be >= 2 (no well-separated cells above)")
        self.L = int(level)

        if isinstance(degrees, int):
            degrees = [degrees] * (self.L + 1)
        if len(degrees) != self.L + 1:
            raise ValueError(f"need {self.L + 1} degrees, got {len(degrees)}")
        self.degrees = [int(p) for p in degrees]

        # cubic domain
        lo = points.min(axis=0)
        hi = points.max(axis=0)
        edge = float((hi - lo).max())
        edge = edge * (1 + 1e-9) if edge > 0 else 1.0
        self.lo = (lo + hi) / 2.0 - edge / 2.0
        self.edge = edge

        # assign particles to leaf cells (Morton-linearized)
        ncell = 1 << self.L
        grid = np.clip(
            ((points - self.lo) / edge * ncell).astype(np.int64), 0, ncell - 1
        ).astype(np.uint64)
        cell = interleave3(grid[:, 0], grid[:, 1], grid[:, 2]).astype(np.int64)
        self.perm = np.argsort(cell, kind="stable")
        self.points = points[self.perm]
        self.charges = charges[self.perm]
        cell = cell[self.perm]
        self.cell_of = cell
        n_cells = 8**self.L
        self.cell_start = np.searchsorted(cell, np.arange(n_cells), side="left")
        self.cell_end = np.searchsorted(cell, np.arange(n_cells), side="right")
        self.tol = None if tol is None else float(tol)
        if self.tol is not None:
            self.degrees = self.tolerance_degrees(self.tol, p_max=tol_p_max)
        self.stats = FMMStats()
        # frozen-geometry plan (P2M rows, M2L operator matrices, L2P
        # rows, near pair lists) — built lazily at the second evaluate()
        self._plan = None
        self._n_evals = 0
        self.plan_cache = plan_cache
        self.plan_memory_bytes = 0
        self.plan_compile_time = 0.0

    def set_charges(self, charges: np.ndarray) -> None:
        """Replace the charges, keeping the grid and the frozen plan.

        The geometry operators depend on positions and degrees only, so
        repeated ``set_charges`` + :meth:`evaluate` pays just the linear
        algebra — the FMM analogue of the treecode's compiled matvec.

        ``charges`` may be an ``(n, k)`` batch of stacked charge
        vectors: :meth:`evaluate` then returns an ``(n, k)`` potential
        with every translation sweep folded over the batch (one BLAS-3
        pass per operator group), and ``k=1`` stays bitwise-identical to
        the plain-vector path.
        """
        charges = np.ascontiguousarray(charges, dtype=np.float64)
        n = self.points.shape[0]
        self._col_batch = charges.ndim == 2
        if charges.ndim not in (1, 2) or charges.shape[0] != n:
            raise ValueError(
                f"charges must be ({n},) or ({n}, k), got {charges.shape}"
            )
        if self._col_batch and charges.shape[1] == 0:
            raise ValueError("charge batch must have at least one column")
        if self._col_batch and charges.shape[1] == 1:
            charges = charges[:, 0]
        self.charges = charges[self.perm]

    def _abs_charges(self) -> np.ndarray:
        """Per-particle absolute charge, reduced over batch columns.

        For an ``(n, k)`` batch the column-wise maximum is used: cluster
        masses built from it upper-bound every individual column's, so a
        degree schedule derived from it keeps the Theorem-1 guarantee
        for each column simultaneously.
        """
        a = np.abs(self.charges)
        return a if a.ndim == 1 else a.max(axis=1)

    @staticmethod
    def _kfold(X: np.ndarray, fn):
        """Apply a row-batched ``(B, nc) -> (B, nc')`` translation kernel
        to plain or ``(B, k, nc)`` batched coefficients by folding the
        batch axis into the rows (shared shifts broadcast unchanged)."""
        if X.ndim == 2:
            return fn(X)
        B, k = X.shape[0], X.shape[1]
        out = fn(X.reshape(B * k, X.shape[2]))
        return out.reshape(B, k, out.shape[1])

    # ------------------------------------------------------------------
    def _rot_id(self, d: np.ndarray, p: int) -> tuple[int, float]:
        """Rotation-cache id and distance for one translation vector."""
        d = np.asarray(d, dtype=np.float64).reshape(3)
        rho = float(np.sqrt(d @ d))
        kid = int(self._rot_cache.ids_for((d / rho)[None, :], p)[0])
        return kid, rho

    def _apply_rotated(self, X, kid: int, rho: float, p: int, axial):
        """Rotate-translate-rotate with one shared-direction operator."""
        ops = self._rot_cache.get(kid)
        Cr = rotate_packed(X, ops, p)
        La = axial(Cr, rho, p)
        return rotate_packed(La, ops, p, inverse=True)

    def _use_rotation(self, p: int) -> bool:
        from ..parallel.partition import resolve_backend

        return resolve_backend(self.translation_backend, p) == "rotation"

    # ------------------------------------------------------------------
    def _cell_centers(self, l: int) -> np.ndarray:
        """Centers of all cells at level ``l`` in Morton order, (8^l, 3)."""
        ids = np.arange(8**l, dtype=np.uint64)
        x, y, z = deinterleave3(ids)
        h = self.edge / (1 << l)
        g = np.stack([x, y, z], axis=1).astype(np.float64)
        return self.lo + (g + 0.5) * h

    def _coords(self, l: int) -> np.ndarray:
        ids = np.arange(8**l, dtype=np.uint64)
        x, y, z = deinterleave3(ids)
        return np.stack([x, y, z], axis=1).astype(np.int64)

    def adaptive_degrees(self, p0: int, alpha: float = 0.5, p_max: int = 30) -> list[int]:
        """Theorem-3 degree schedule from the *actual* per-level charges.

        For each level the median absolute cell charge (over occupied
        cells) is compared to the leaf level's; the degree increment is
        ``ceil(ln(A_l/A_leaf) / ln(1/alpha))`` — the charge-driven form
        of Theorem 3 rather than the uniform-density shortcut of
        :func:`level_degrees`.  Returns a root..leaf list usable as the
        ``degrees`` argument.
        """
        if p0 < 0:
            raise ValueError("p0 must be >= 0")
        if not 0.0 < alpha < 1.0:
            raise ValueError("alpha must be in (0, 1)")
        absq = self._abs_charges()
        cell_abs = np.bincount(self.cell_of, weights=absq, minlength=8**self.L)
        med = {}
        ids = np.arange(8**self.L)
        for l in range(self.L, -1, -1):
            occ = cell_abs[cell_abs > 0]
            med[l] = float(np.median(occ)) if occ.size else 0.0
            if l > 0:
                cell_abs = np.bincount(ids[: 8**l] >> 3, weights=cell_abs, minlength=8 ** (l - 1))
        a_leaf = med[self.L] if med[self.L] > 0 else 1.0
        degs = []
        for l in range(self.L + 1):
            if med[l] <= 0:
                degs.append(p0)
                continue
            inc = int(np.ceil(max(0.0, np.log(med[l] / a_leaf) / np.log(1.0 / alpha))))
            degs.append(min(p_max, p0 + inc))
        return degs

    def tolerance_degrees(self, tol: float, p_max: int = 30) -> list[int]:
        """Target-accuracy degree schedule (root..leaf) for ``tol``.

        The leaf degree solves the Theorem-1 inverse
        (:func:`~repro.core.bounds.degree_for_tolerance`) at the worst
        V-list geometry of the uniform grid — source sphere
        ``a = (sqrt(3)/2) h`` (``h`` the leaf cell edge) against the
        nearest well-separated center ``r = 2h``, ratio ``a/r ~ 0.433``
        — for the largest occupied leaf charge, with the per-interaction
        budget ``tol`` split over the at most 189 V-list sources on each
        of the ``L - 1`` active levels.  Coarser levels add
        ``ceil(c * (L - l))`` with
        ``c = degree_increment_per_level(a/r)``: one level up multiplies
        the worst cell charge by at most 8 while ``a/r`` is
        scale-invariant on the uniform grid, which is exactly the
        Theorem-3/Theorem-5 schedule.  Degrees are clamped to ``p_max``
        (the M2L operator cost grows as ``p^4``; the schedule is a
        guide, the a-posteriori check is comparison against direct
        summation).
        """
        tol = float(tol)
        if tol <= 0:
            raise ValueError(f"tol must be > 0, got {tol}")
        L = self.L
        h = self.edge / (1 << L)
        a = np.sqrt(3.0) / 2.0 * h
        r = 2.0 * h
        cell_abs = np.bincount(
            self.cell_of, weights=self._abs_charges(), minlength=8**L
        )
        A_leaf = float(cell_abs.max())
        if A_leaf <= 0.0:
            return [0] * (L + 1)
        n_active = max(L - 1, 1)
        eps0 = tol / (n_active * 189.0)
        p_leaf = int(degree_for_tolerance(A_leaf, a, r, eps0, p_max=p_max))
        c = degree_increment_per_level(a / r)
        return [
            min(p_max, p_leaf + int(np.ceil(c * (L - l))))
            for l in range(L + 1)
        ]

    # ------------------------------------------------------------------
    def _ensure_plan(self) -> dict:
        """Freeze the grid geometry into reusable operators.

        * **P2M rows** ``G``: per-particle ``rho^n conj(Y)`` relative to
          its leaf center, so the leaf upward pass is one segmented GEMV.
        * **M2L operator matrices**: the translation is real-linear (not
          complex-linear — conjugate symmetry enters), so each
          (level, offset) group's operator is probed once with the basis
          ``[I; iI]`` into a pair of complex matrices ``(Tr, Ti)``;
          applying it is ``M.real @ Tr + M.imag @ Ti``, two BLAS GEMMs.
        * **L2P rows** ``R``: per-particle ``w · Y rho^n`` at the leaf
          degree; the downward leaf pass is one row-wise contraction.
        * **Near pair lists**: the (target cell, source cell) pairs per
          neighbor offset, in the direct path's traversal order.

        With a plan cache (``plan_cache`` / ``REPRO_PLAN_CACHE``), the
        frozen geometry is looked up by a content digest over the
        Morton-sorted points, the degree schedule and the grid/backend
        configuration; a hit restores the plan *and* the rotation
        operator cache it references as zero-copy mmap views.
        """
        if self._plan is not None:
            return self._plan
        from ..perf.store import cached_plan, content_digest, resolve_cache_dir

        cache = resolve_cache_dir(self.plan_cache)
        if cache is None:
            self._plan = self._compile_plan()
            return self._plan
        digest = content_digest(
            {
                "kind": "fmm",
                "level": int(self.L),
                "degrees": [int(p) for p in self.degrees],
                "edge": float(self.edge),
                "lo": [float(v) for v in self.lo],
                "translation_backend": self.translation_backend,
            },
            [self.points],
        )
        bundle = cached_plan(
            cache,
            digest,
            lambda: {"plan": self._compile_plan(), "rot": self._rot_cache},
            kind="fmm",
        )
        # the plan's rotation group ids index the cache it was saved
        # with — adopt it (id-stably rebuilt on a warm load)
        self._rot_cache = bundle["rot"]
        self._plan = bundle["plan"]
        if self.plan_memory_bytes == 0:  # warm load: report the mapped size
            try:
                self.plan_memory_bytes = int(
                    (cache / f"{digest}.plan").stat().st_size
                )
            except OSError:
                pass
        return self._plan

    def _compile_plan(self) -> dict:
        with stopwatch("plan.compile", engine="fmm", level=self.L) as sw:
            L, degs = self.L, self.degrees
            p_store = max(degs[2:]) if L >= 2 else degs[-1]
            centers_L = self._cell_centers(L)
            occupied = np.nonzero(self.cell_end > self.cell_start)[0]
            rel = self.points - centers_L[self.cell_of]
            rho, ct, ph = cart_to_sph(rel)
            ns, _ = degree_of_index(p_store)
            G = power_table(rho, p_store)[:, ns] * np.conj(
                sph_harmonics(ct, ph, p_store)
            )
            pL = degs[L]
            nsL, _ = degree_of_index(pL)
            R = (
                sph_harmonics(ct, ph, pL)
                * power_table(rho, pL)[:, nsL]
                * m_weights(pL)
            )
            mem = G.nbytes + R.nbytes

            m2l_groups: dict[int, list] = {}
            for l in range(2, L + 1):
                p = degs[l]
                use_rot = self._use_rotation(p)
                pos = self._coords(l)
                ncell = 1 << l
                h = self.edge / ncell
                order = np.arange(8**l)
                groups = []
                for dx in range(-3, 4):
                    for dy in range(-3, 4):
                        for dz in range(-3, 4):
                            if max(abs(dx), abs(dy), abs(dz)) <= 1:
                                continue
                            src_x = pos[:, 0] + dx
                            src_y = pos[:, 1] + dy
                            src_z = pos[:, 2] + dz
                            valid = (
                                (src_x >= 0) & (src_x < ncell)
                                & (src_y >= 0) & (src_y < ncell)
                                & (src_z >= 0) & (src_z < ncell)
                            )
                            if l > 2:
                                valid &= (
                                    (np.abs((src_x >> 1) - (pos[:, 0] >> 1)) <= 1)
                                    & (np.abs((src_y >> 1) - (pos[:, 1] >> 1)) <= 1)
                                    & (np.abs((src_z >> 1) - (pos[:, 2] >> 1)) <= 1)
                                )
                            tgt = order[valid]
                            if tgt.size == 0:
                                continue
                            src = interleave3(
                                src_x[valid].astype(np.uint64),
                                src_y[valid].astype(np.uint64),
                                src_z[valid].astype(np.uint64),
                            ).astype(np.int64)
                            d = np.array([[dx * h, dy * h, dz * h]])
                            if use_rot:
                                # offsets scale with h, so their unit
                                # directions repeat at every level — the
                                # cache holds <= 316 operators total
                                kid, rho = self._rot_id(d[0], p)
                                groups.append(("rot", tgt, src, kid, rho))
                                mem += tgt.nbytes + src.nbytes
                            else:
                                Tr, Ti = m2l_operator(d, p, p)
                                groups.append(("dense", tgt, src, Tr, Ti))
                                mem += (
                                    tgt.nbytes + src.nbytes
                                    + Tr.nbytes + Ti.nbytes
                                )
                m2l_groups[l] = groups
            mem += self._rot_cache.nbytes

            near_pairs = []
            coordsL = self._coords(L)
            ncell = 1 << L
            for dx in range(-1, 2):
                for dy in range(-1, 2):
                    for dz in range(-1, 2):
                        tgt_pos = coordsL[occupied]
                        sx = tgt_pos[:, 0] + dx
                        sy = tgt_pos[:, 1] + dy
                        sz = tgt_pos[:, 2] + dz
                        valid = (
                            (sx >= 0) & (sx < ncell)
                            & (sy >= 0) & (sy < ncell)
                            & (sz >= 0) & (sz < ncell)
                        )
                        tcells = occupied[valid]
                        if tcells.size == 0:
                            continue
                        scells = interleave3(
                            sx[valid].astype(np.uint64),
                            sy[valid].astype(np.uint64),
                            sz[valid].astype(np.uint64),
                        ).astype(np.int64)
                        nonempty = self.cell_end[scells] > self.cell_start[scells]
                        tcells, scells = tcells[nonempty], scells[nonempty]
                        if tcells.size:
                            near_pairs.append((tcells, scells))
                            mem += tcells.nbytes + scells.nbytes
            self._plan = {
                "G": G,
                "R": R,
                "starts": self.cell_start[occupied],
                "occupied": occupied,
                "m2l": m2l_groups,
                "near": near_pairs,
            }
        self.plan_compile_time = sw.elapsed
        self.plan_memory_bytes = int(mem)
        if is_enabled():
            REGISTRY.counter("plan_compiles", "evaluation plans compiled").inc()
            REGISTRY.gauge(
                "plan_memory_bytes", "materialized bytes of the most recent plan"
            ).set(self.plan_memory_bytes)
        journal.emit(
            "plan_compile",
            mode="fmm",
            targets=int(self.points.shape[0]),
            memory_bytes=self.plan_memory_bytes,
            compile_s=float(self.plan_compile_time),
            level=int(self.L),
            translation_backend=self.translation_backend,
        )
        return self._plan

    # ------------------------------------------------------------------
    def evaluate(self) -> np.ndarray:
        """Potential at every source particle (original order),
        self-interaction excluded.

        With an ``(n, k)`` charge batch (see :meth:`set_charges`) the
        result is ``(n, k)``: column ``j`` is the potential due to
        ``charges[:, j]``, with every translation group applied once
        over the folded batch."""
        L = self.L
        degs = self.degrees
        p_store = max(degs[2:]) if L >= 2 else degs[-1]
        nc_store = ncoef(p_store)
        kdim = self.charges.shape[1:]  # () for a vector, (k,) for a batch
        obs_on = is_enabled()
        plan = None
        if self.use_plan and (self._plan is not None or self._n_evals >= 1):
            plan = self._ensure_plan()
        outer = span("fmm.evaluate", n=int(self.points.shape[0]), level=L).__enter__()
        m2l_before = self.stats.n_m2l
        terms_before = self.stats.n_terms_m2l
        pp_before = self.stats.n_pp_pairs

        # ---- upward: P2M at leaves, then M2M ----
        sw = stopwatch("fmm.upward", level=L).__enter__()
        centers_L = self._cell_centers(L)
        M = {L: np.zeros((8**L,) + kdim + (nc_store,), dtype=np.complex128)}
        if plan is not None:
            occupied = plan["occupied"]
            if self.charges.ndim == 1:
                M[L][occupied] = np.add.reduceat(
                    self.charges[:, None] * plan["G"], plan["starts"], axis=0
                )
            else:
                M[L][occupied] = np.add.reduceat(
                    self.charges[:, :, None] * plan["G"][:, None, :],
                    plan["starts"],
                    axis=0,
                )
        else:
            occupied = np.nonzero(self.cell_end > self.cell_start)[0]
            for c in occupied:
                s, e = self.cell_start[c], self.cell_end[c]
                rel = self.points[s:e] - centers_L[c]
                if self.charges.ndim == 1:
                    M[L][c] = p2m_terms(rel, self.charges[s:e], p_store).sum(axis=0)
                else:
                    M[L][c] = np.stack(
                        [
                            p2m_terms(rel, self.charges[s:e, j], p_store).sum(axis=0)
                            for j in range(self.charges.shape[1])
                        ]
                    )
        rot_up = self._use_rotation(p_store)
        for l in range(L - 1, 1, -1):
            child_centers = self._cell_centers(l + 1)
            parent_centers = self._cell_centers(l)
            Ml = np.zeros((8**l,) + kdim + (nc_store,), dtype=np.complex128)
            child_ids = np.arange(8 ** (l + 1))
            parent_ids = child_ids >> 3
            # group children by their octant: each octant shares one shift
            for oct_ in range(8):
                sel = child_ids[(child_ids & 7) == oct_]
                par = parent_ids[sel]
                shift = (child_centers[sel[0]] - parent_centers[par[0]])[None, :]
                if rot_up:
                    kid, rho = self._rot_id(shift[0], p_store)
                    Ml[par] += self._kfold(
                        M[l + 1][sel],
                        lambda X: self._apply_rotated(
                            X, kid, rho, p_store, axial_m2m
                        ),
                    )
                else:
                    Ml[par] += self._kfold(
                        M[l + 1][sel], lambda X: m2m(X, shift, p_store)
                    )
            M[l] = Ml
        sw.__exit__(None, None, None)
        self.stats.times["upward"] = sw.elapsed

        # ---- M2L at every level (V-lists grouped by offset) ----
        sw = stopwatch("fmm.m2l").__enter__()
        Llocal = {
            l: np.zeros((8**l,) + kdim + (ncoef(degs[l]),), dtype=np.complex128)
            for l in range(2, L + 1)
        }
        if plan is not None:
            for l in range(2, L + 1):
                p = degs[l]
                nc_p = ncoef(p)
                Ll = Llocal[l]
                Ml = M[l]
                for kind, tgt, src, a, b in plan["m2l"][l]:
                    X = Ml[src][..., :nc_p]
                    if kind == "rot":
                        Ll[tgt] += self._kfold(
                            X, lambda C: self._apply_rotated(C, a, b, p, axial_m2l)
                        )
                    else:
                        # matmul broadcasts over the batch axis natively
                        Ll[tgt] += X.real @ a + X.imag @ b
                    self.stats.n_m2l += tgt.size
                    self.stats.n_terms_m2l += tgt.size * term_count(p)
            sw.__exit__(None, None, None)
            self.stats.times["m2l"] = sw.elapsed
        else:
            self._m2l_direct(M, Llocal, sw)

        # ---- downward: L2L ----
        sw = stopwatch("fmm.l2l").__enter__()
        for l in range(2, L):
            p_par, p_child = degs[l], degs[l + 1]
            rot_down = self._use_rotation(p_par)
            child_centers = self._cell_centers(l + 1)
            parent_centers = self._cell_centers(l)
            child_ids = np.arange(8 ** (l + 1))
            parent_ids = child_ids >> 3
            for oct_ in range(8):
                sel = child_ids[(child_ids & 7) == oct_]
                par = parent_ids[sel]
                shift = (child_centers[sel[0]] - parent_centers[par[0]])[None, :]
                if rot_down:
                    kid, rho = self._rot_id(shift[0], p_par)
                    shifted = self._kfold(
                        Llocal[l][par],
                        lambda X: self._apply_rotated(
                            X, kid, rho, p_par, axial_l2l
                        ),
                    )
                else:
                    shifted = self._kfold(
                        Llocal[l][par], lambda X: l2l(X, shift, p_par)
                    )
                Llocal[l + 1][sel] += shifted[..., : ncoef(p_child)]
        sw.__exit__(None, None, None)
        self.stats.times["l2l"] = sw.elapsed

        # ---- leaf: L2P + near field ----
        sw = stopwatch("fmm.near").__enter__()
        n = self.points.shape[0]
        phi = np.zeros((n,) + kdim, dtype=np.float64)
        pL = degs[L]
        if plan is not None:
            Lgather = Llocal[L][self.cell_of]
            if Lgather.ndim == 2:
                phi += np.einsum(
                    "tc,tc->t", plan["R"].real, Lgather.real
                ) - np.einsum("tc,tc->t", plan["R"].imag, Lgather.imag)
            else:
                phi += np.einsum(
                    "tc,tkc->tk", plan["R"].real, Lgather.real
                ) - np.einsum("tc,tkc->tk", plan["R"].imag, Lgather.imag)
            for tcells, scells in plan["near"]:
                for tc, sc in zip(tcells, scells):
                    ts, te = self.cell_start[tc], self.cell_end[tc]
                    ss, se = self.cell_start[sc], self.cell_end[sc]
                    d = self.points[ts:te, None, :] - self.points[None, ss:se, :]
                    r2 = np.einsum("tsi,tsi->ts", d, d)
                    with np.errstate(divide="ignore"):
                        inv = 1.0 / np.sqrt(r2)
                    inv[r2 == 0.0] = 0.0
                    phi[ts:te] += inv @ self.charges[ss:se]
                    self.stats.n_pp_pairs += (te - ts) * (se - ss)
        else:
            for c in occupied:
                s, e = self.cell_start[c], self.cell_end[c]
                rel = self.points[s:e] - centers_L[c]
                Lc = Llocal[L][c]
                if Lc.ndim == 1:
                    phi[s:e] += l2p(Lc, rel, pL)
                else:
                    phi[s:e] += np.stack(
                        [l2p(Lc[j], rel, pL) for j in range(Lc.shape[0])],
                        axis=1,
                    )
            self._near_direct(phi, occupied)
        sw.__exit__(None, None, None)
        self.stats.times["near"] = sw.elapsed
        return self._finish(phi, obs_on, outer, m2l_before, terms_before, pp_before)

    def _m2l_direct(self, M, Llocal, sw) -> None:
        """Direct (un-planned) M2L sweep, one batched translation per
        (level, offset) group."""
        L, degs = self.L, self.degrees
        for l in range(2, L + 1):
            p = degs[l]
            use_rot = self._use_rotation(p)
            coords = self._coords(l)
            ncell = 1 << l
            h = self.edge / ncell
            order = np.arange(8**l)
            pos = coords  # integer coords per linear id
            for dx in range(-3, 4):
                for dy in range(-3, 4):
                    for dz in range(-3, 4):
                        if max(abs(dx), abs(dy), abs(dz)) <= 1:
                            continue
                        # well-separated at this level; for l > 2 the
                        # sources must also be children of the parent's
                        # neighborhood (the classic V-list condition)
                        src_x = pos[:, 0] + dx
                        src_y = pos[:, 1] + dy
                        src_z = pos[:, 2] + dz
                        valid = (
                            (src_x >= 0) & (src_x < ncell)
                            & (src_y >= 0) & (src_y < ncell)
                            & (src_z >= 0) & (src_z < ncell)
                        )
                        if l > 2:
                            valid &= (
                                (np.abs((src_x >> 1) - (pos[:, 0] >> 1)) <= 1)
                                & (np.abs((src_y >> 1) - (pos[:, 1] >> 1)) <= 1)
                                & (np.abs((src_z >> 1) - (pos[:, 2] >> 1)) <= 1)
                            )
                        tgt = order[valid]
                        if tgt.size == 0:
                            continue
                        src = interleave3(
                            src_x[valid].astype(np.uint64),
                            src_y[valid].astype(np.uint64),
                            src_z[valid].astype(np.uint64),
                        ).astype(np.int64)
                        d = np.array([[dx * h, dy * h, dz * h]])
                        X = M[l][src][..., : ncoef(p)]
                        if use_rot:
                            kid, rho = self._rot_id(d[0], p)
                            Llocal[l][tgt] += self._kfold(
                                X,
                                lambda C: self._apply_rotated(
                                    C, kid, rho, p, axial_m2l
                                ),
                            )
                        else:
                            Llocal[l][tgt] += self._kfold(
                                X, lambda C: m2l(C, d, p, p)
                            )
                        self.stats.n_m2l += tgt.size
                        self.stats.n_terms_m2l += tgt.size * term_count(p)
        sw.__exit__(None, None, None)
        self.stats.times["m2l"] = sw.elapsed

    def _near_direct(self, phi: np.ndarray, occupied: np.ndarray) -> None:
        """Direct (un-planned) near-field sweep over neighbor offsets."""
        L = self.L
        coordsL = self._coords(L)
        ncell = 1 << L
        for dx in range(-1, 2):
            for dy in range(-1, 2):
                for dz in range(-1, 2):
                    tgt_pos = coordsL[occupied]
                    sx = tgt_pos[:, 0] + dx
                    sy = tgt_pos[:, 1] + dy
                    sz = tgt_pos[:, 2] + dz
                    valid = (
                        (sx >= 0) & (sx < ncell)
                        & (sy >= 0) & (sy < ncell)
                        & (sz >= 0) & (sz < ncell)
                    )
                    tcells = occupied[valid]
                    if tcells.size == 0:
                        continue
                    scells = interleave3(
                        sx[valid].astype(np.uint64),
                        sy[valid].astype(np.uint64),
                        sz[valid].astype(np.uint64),
                    ).astype(np.int64)
                    nonempty = self.cell_end[scells] > self.cell_start[scells]
                    tcells, scells = tcells[nonempty], scells[nonempty]
                    for tc, sc in zip(tcells, scells):
                        ts, te = self.cell_start[tc], self.cell_end[tc]
                        ss, se = self.cell_start[sc], self.cell_end[sc]
                        d = self.points[ts:te, None, :] - self.points[None, ss:se, :]
                        r2 = np.einsum("tsi,tsi->ts", d, d)
                        with np.errstate(divide="ignore"):
                            inv = 1.0 / np.sqrt(r2)
                        inv[r2 == 0.0] = 0.0
                        phi[ts:te] += inv @ self.charges[ss:se]
                        self.stats.n_pp_pairs += (te - ts) * (se - ss)

    def _finish(self, phi, obs_on, outer, m2l_before, terms_before, pp_before):
        """Metrics, un-sorting and output guards shared by both paths."""
        n = phi.shape[0]
        self._n_evals += 1
        if obs_on:
            REGISTRY.counter("fmm_m2l_ops", "M2L translations applied").inc(
                self.stats.n_m2l - m2l_before
            )
            REGISTRY.counter(
                "fmm_terms_m2l", "multipole terms evaluated in M2L"
            ).inc(self.stats.n_terms_m2l - terms_before)
            REGISTRY.counter(
                "fmm_pp_pairs", "FMM near-field particle pairs evaluated"
            ).inc(self.stats.n_pp_pairs - pp_before)

        outer.__exit__(None, None, None)
        out = np.empty(phi.shape, dtype=np.float64)
        out[self.perm] = phi
        # fault-injection site + guard: a corrupted FMM potential must
        # fail loudly at the engine boundary, never reach an experiment
        out = maybe_corrupt("fmm.potential", out)
        check_finite("fmm.potential", out, context="FMM output potential")
        if self._col_batch and out.ndim == 1:
            out = out[:, None]  # (n, 1) request ran the bitwise 1-D path
        return out
