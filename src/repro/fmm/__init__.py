"""Fast Multipole Method extension (uniform octree, per-level degrees)."""

from .engine import FMMStats, UniformFMM, level_degrees

__all__ = ["UniformFMM", "FMMStats", "level_degrees"]
