"""N-body simulation driver on top of the treecode.

The paper's motivating application ("large scale simulations in
astrophysics ... and molecular dynamics") needs more than a potential
evaluator: a time integrator whose force engine is rebuilt every step.
This module provides a kick-drift-kick leapfrog
(:class:`LeapfrogIntegrator`) with energy diagnostics, so the treecode
is usable as a drop-in n-body engine.

Conventions: "charges" are masses for gravity (``sign = -1``) or real
charges for electrostatics (``sign = +1``); the pairwise interaction
energy is ``sign * G * q_i q_j / r_ij`` and the force is its negative
gradient.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .core.degree import DegreePolicy
from .core.treecode import Treecode

__all__ = ["SimulationState", "LeapfrogIntegrator"]


@dataclass
class SimulationState:
    """Positions, velocities, and diagnostics of an n-body system."""

    positions: np.ndarray
    velocities: np.ndarray
    masses: np.ndarray
    time: float = 0.0
    step: int = 0
    #: per-snapshot (time, kinetic, potential, total) rows
    energy_history: list = field(default_factory=list)

    def kinetic_energy(self) -> float:
        v2 = np.einsum("ij,ij->i", self.velocities, self.velocities)
        return float(0.5 * np.sum(self.masses * v2))


class LeapfrogIntegrator:
    """Kick-drift-kick leapfrog with treecode forces.

    Parameters
    ----------
    degree_policy, alpha, leaf_size, softening:
        Treecode configuration, rebuilt every step (particles move).
    G:
        Coupling constant.
    sign:
        ``-1`` for gravity (attractive, the default), ``+1`` for
        electrostatics.

    The integrator is symplectic: for a stable timestep the total energy
    oscillates but does not drift secularly (up to the treecode force
    error), which :meth:`energy` lets callers verify.
    """

    def __init__(
        self,
        degree_policy: DegreePolicy | None = None,
        alpha: float = 0.5,
        leaf_size: int = 16,
        softening: float = 0.0,
        G: float = 1.0,
        sign: float = -1.0,
    ) -> None:
        if sign not in (-1.0, 1.0, -1, 1):
            raise ValueError(f"sign must be +1 or -1, got {sign}")
        self.degree_policy = degree_policy
        self.alpha = alpha
        self.leaf_size = leaf_size
        self.softening = softening
        self.G = float(G)
        self.sign = float(sign)
        self._last_potential: np.ndarray | None = None

    def _treecode(self, state: SimulationState) -> Treecode:
        return Treecode(
            state.positions,
            state.masses,
            degree_policy=self.degree_policy,
            alpha=self.alpha,
            leaf_size=self.leaf_size,
            softening=self.softening,
        )

    def forces(self, state: SimulationState) -> np.ndarray:
        """Accelerations at the current positions (also caches the
        per-particle potential for :meth:`energy`)."""
        res = self._treecode(state).evaluate(compute="both")
        self._last_potential = res.potential
        # interaction energy sign: gravity = -G q q / r
        return self.sign * (-self.G) * res.gradient

    def energy(self, state: SimulationState) -> tuple[float, float, float]:
        """(kinetic, potential, total) at the current state.

        Uses the cached potential from the last force evaluation (the
        leapfrog evaluates forces exactly at integer steps).
        """
        if self._last_potential is None:
            res = self._treecode(state).evaluate()
            self._last_potential = res.potential
        kin = state.kinetic_energy()
        pot = float(0.5 * self.sign * self.G * np.sum(state.masses * self._last_potential))
        return kin, pot, kin + pot

    def run(
        self,
        state: SimulationState,
        dt: float,
        n_steps: int,
        record_every: int = 1,
    ) -> SimulationState:
        """Advance ``n_steps`` of size ``dt`` (in place) and return the state."""
        if dt <= 0:
            raise ValueError(f"dt must be > 0, got {dt}")
        if n_steps < 0:
            raise ValueError(f"n_steps must be >= 0, got {n_steps}")
        acc = self.forces(state)
        if not state.energy_history:
            kin, pot, tot = self.energy(state)
            state.energy_history.append((state.time, kin, pot, tot))
        for k in range(n_steps):
            state.velocities += 0.5 * dt * acc
            state.positions += dt * state.velocities
            acc = self.forces(state)
            state.velocities += 0.5 * dt * acc
            state.time += dt
            state.step += 1
            if record_every and state.step % record_every == 0:
                kin, pot, tot = self.energy(state)
                state.energy_history.append((state.time, kin, pot, tot))
        return state

    @staticmethod
    def relative_energy_drift(state: SimulationState) -> float:
        """|E(t) - E(0)| / |E(0)| over the recorded history."""
        if len(state.energy_history) < 2:
            return 0.0
        e0 = state.energy_history[0][3]
        e1 = state.energy_history[-1][3]
        return abs(e1 - e0) / max(abs(e0), 1e-300)
