"""Core treecode: error-bound theory, degree policies, and the engine."""

from .bounds import (
    degree_for_tolerance,
    degree_increment_per_level,
    lemma1_ratio_bounds,
    lemma2_interaction_count,
    theorem1_bound,
    theorem2_interaction_bound,
    theorem3_degree,
    theorem4_aggregate_error,
    theorem5_cost_ratio,
)
from .degree import (
    AdaptiveChargeDegree,
    DegreePolicy,
    DegreeSelectionError,
    FixedDegree,
    LevelDegree,
    ToleranceDegree,
    VariableDegree,
    select_pair_degrees,
)
from .treecode import InteractionLists, Treecode, TreecodeResult, TreecodeStats

__all__ = [
    "Treecode",
    "TreecodeResult",
    "TreecodeStats",
    "InteractionLists",
    "DegreePolicy",
    "FixedDegree",
    "AdaptiveChargeDegree",
    "LevelDegree",
    "ToleranceDegree",
    "VariableDegree",
    "DegreeSelectionError",
    "select_pair_degrees",
    "degree_for_tolerance",
    "theorem1_bound",
    "theorem2_interaction_bound",
    "theorem3_degree",
    "theorem4_aggregate_error",
    "theorem5_cost_ratio",
    "lemma1_ratio_bounds",
    "lemma2_interaction_count",
    "degree_increment_per_level",
]
