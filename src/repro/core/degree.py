"""Multipole-degree selection policies.

The *original* Barnes-Hut method uses one global degree
(:class:`FixedDegree`).  The paper's improved method
(:class:`AdaptiveChargeDegree`, Theorem 3) raises the degree of
high-charge clusters so that every particle-cluster interaction carries
the same error; :class:`LevelDegree` is the structured-distribution
special case where charge is uniform and the degree depends only on the
tree level.

A policy maps a built :class:`~repro.tree.octree.Octree` to an integer
evaluation degree per node.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..tree.octree import Octree
from .bounds import (
    degree_for_tolerance,
    degree_increment_per_level,
    theorem1_bound,
    theorem3_degree,
)

__all__ = [
    "DegreePolicy",
    "FixedDegree",
    "AdaptiveChargeDegree",
    "LevelDegree",
    "ToleranceDegree",
    "VariableDegree",
    "DegreeSelectionError",
    "select_pair_degrees",
]


class DegreeSelectionError(ValueError):
    """A per-interaction error budget is infeasible at the degree cap.

    Raised by :func:`select_pair_degrees` when some interaction's
    Theorem-1 bound still exceeds its budget at ``p_max`` — variable-
    order compilation refuses to silently clamp (which would break the
    ``ledger <= tol`` contract).  Carries located diagnostics: the
    offending pair indices, source node ids, geometry and the achieved
    bound vs. the budget at the worst pair.
    """

    def __init__(
        self, pair_idx, nodes, A, a, r, achieved, budgets, p_max: int
    ) -> None:
        self.pair_idx = np.asarray(pair_idx)
        self.nodes = np.asarray(nodes)
        self.p_max = int(p_max)
        worst = int(np.argmax(np.asarray(achieved) / np.asarray(budgets)))
        self.worst = {
            "pair": int(self.pair_idx[worst]),
            "node": int(self.nodes[worst]),
            "A": float(np.asarray(A)[worst]),
            "a": float(np.asarray(a)[worst]),
            "r": float(np.asarray(r)[worst]),
            "achieved_bound": float(np.asarray(achieved)[worst]),
            "budget": float(np.asarray(budgets)[worst]),
        }
        w = self.worst
        super().__init__(
            f"{self.pair_idx.size} interaction(s) cannot meet their error "
            f"budget at p_max={p_max}; worst: pair {w['pair']} "
            f"(source node {w['node']}, A={w['A']:.3e}, a={w['a']:.3e}, "
            f"r={w['r']:.3e}) achieves bound {w['achieved_bound']:.3e} "
            f"> budget {w['budget']:.3e}. Loosen tol or raise p_max."
        )


def select_pair_degrees(A, a, r, budgets, p_max: int = 30, nodes=None):
    """Minimal per-interaction degrees meeting per-interaction budgets.

    For each interaction (cluster absolute charge ``A``, effective
    radius ``a`` — the source radius, or ``a_src + a_tgt`` under the
    dual MAC — and center distance ``r``) return the smallest ``p`` with
    ``theorem1_bound(A, a, r, p) <= budget``.  All arguments broadcast.

    Raises :class:`DegreeSelectionError` where even ``p_max`` cannot
    meet the budget (infeasible tolerance), rather than clamping;
    ``nodes`` (source node ids) sharpens the diagnostics.
    """
    A = np.asarray(A, dtype=np.float64)
    a = np.asarray(a, dtype=np.float64)
    r = np.asarray(r, dtype=np.float64)
    budgets = np.asarray(budgets, dtype=np.float64)
    p = degree_for_tolerance(A, a, r, budgets, p_max=p_max)
    b = theorem1_bound(A, a, r, p)
    # the closed form can undershoot by one degree at float precision;
    # bump and re-check before declaring a budget infeasible
    short = (b > budgets) & (p < p_max)
    if np.any(short):
        p = np.where(short, p + 1, p)
        b = theorem1_bound(A, a, r, p)
    # zero-charge clusters contribute no error at any degree
    p = np.where(A <= 0.0, 0, p)
    bad = (b > budgets * (1.0 + 1e-12)) & (A > 0.0)
    if np.any(bad):
        idx = np.nonzero(bad)[0]
        nid = np.asarray(nodes)[idx] if nodes is not None else idx
        raise DegreeSelectionError(
            idx, nid,
            np.broadcast_to(A, bad.shape)[idx],
            np.broadcast_to(a, bad.shape)[idx],
            np.broadcast_to(r, bad.shape)[idx],
            b[idx], np.broadcast_to(budgets, bad.shape)[idx], p_max,
        )
    return p.astype(np.int64)


class DegreePolicy:
    """Base class: assigns an evaluation degree to every tree node."""

    def degrees(self, tree: Octree) -> np.ndarray:  # pragma: no cover - interface
        """Return an ``(n_nodes,)`` int array of evaluation degrees."""
        raise NotImplementedError

    @property
    def name(self) -> str:
        return type(self).__name__


@dataclass(frozen=True)
class FixedDegree(DegreePolicy):
    """The original method: the same degree ``p`` for every cluster."""

    p: int = 4

    def __post_init__(self) -> None:
        if self.p < 0:
            raise ValueError(f"degree must be >= 0, got {self.p}")

    def degrees(self, tree: Octree) -> np.ndarray:
        return np.full(tree.n_nodes, self.p, dtype=np.int64)


@dataclass(frozen=True)
class AdaptiveChargeDegree(DegreePolicy):
    """Theorem 3: per-cluster degree that equalizes interaction error.

    Forcing the Theorem-2 bound to be equal across clusters gives

    ``p_j = p0 + ceil( ln(rho_j / rho_0) / ln(1/alpha) )``

    where ``rho_j`` measures how error-prone cluster ``j`` is and
    ``rho_0`` is the anchor value at which degree ``p0`` suffices.  Two
    normalizations are provided:

    ``mode="bound"`` (default)
        ``rho_j = A_j / a_j`` — the Theorem-2 bound evaluated at each
        cluster's *worst accepted distance* ``r_j = a_j / alpha``
        (``a_j`` is the enclosing radius): the bound becomes
        ``A_j alpha^{p+2} / (a_j (1-alpha))``, so equalizing it uses the
        charge *per radius*.  For uniform charge density ``A ∝ a^3``,
        the degree grows by ``2 ln2 / ln(1/alpha)`` per level — this is
        the schedule behind the paper's "within 7/3" cost claim.

    ``mode="charge"``
        ``rho_j = A_j`` — the literal statement of Theorem 3 (common
        ``r`` factored out).  More conservative: degrees grow by
        ``3 ln2 / ln(1/alpha)`` per level.

    Parameters
    ----------
    p0:
        Minimum degree (degree of the anchor cluster).
    alpha:
        The MAC parameter the treecode will run with; the degree
        schedule depends on it through the error bound.
    p_max:
        Hard cap on the degree (the paper notes unstructured domains can
        otherwise demand very large degrees; the cap corresponds to its
        "threshold value" mitigation).
    anchor:
        ``"leaf_min"`` — the paper's "smallest net charge cluster at
        lowest level": every interaction is pushed down to the error of
        the best-resolved leaf interaction.  ``"leaf_median"``
        (default) — the median leaf, robust to a single tiny outlier
        leaf inflating every degree in unstructured distributions.
    """

    p0: int = 4
    alpha: float = 0.5
    p_max: int = 30
    anchor: str = "leaf_median"
    mode: str = "bound"

    def __post_init__(self) -> None:
        if self.p0 < 0:
            raise ValueError(f"p0 must be >= 0, got {self.p0}")
        if not 0.0 < self.alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {self.alpha}")
        if self.p_max < self.p0:
            raise ValueError("p_max must be >= p0")
        if self.anchor not in ("leaf_min", "leaf_median"):
            raise ValueError(f"unknown anchor {self.anchor!r}")
        if self.mode not in ("bound", "charge"):
            raise ValueError(f"unknown mode {self.mode!r}")

    def _rho(self, tree: Octree) -> np.ndarray:
        """Error-proneness measure per node (see class docstring)."""
        if self.mode == "charge":
            return tree.abs_charge.astype(np.float64)
        # Floor the radius at the typical leaf radius: a cluster tighter
        # than an ordinary leaf is never harder to approximate than the
        # anchor (near-degenerate radii — e.g. single-particle leaves —
        # would otherwise send A/a, and hence the degree, to the cap).
        leaves = tree.leaf_ids()
        lr = tree.radius[leaves]
        lr = lr[lr > 0]
        a_floor = float(np.median(lr)) if lr.size else 1.0
        rho = tree.abs_charge / np.maximum(tree.radius, a_floor)
        return rho

    def anchor_value(self, tree: Octree) -> float:
        leaves = tree.leaf_ids()
        rho = self._rho(tree)[leaves]
        rho = rho[rho > 0]
        if rho.size == 0:
            return 1.0  # all-zero charges: degrees collapse to p0
        return float(np.min(rho) if self.anchor == "leaf_min" else np.median(rho))

    def degrees(self, tree: Octree) -> np.ndarray:
        rho0 = self.anchor_value(tree)
        return theorem3_degree(self._rho(tree), rho0, self.p0, self.alpha, self.p_max)


@dataclass(frozen=True)
class LevelDegree(DegreePolicy):
    """Structured-distribution schedule: degree grows with box size.

    For uniform charge density, ``A_j`` grows by 8× per level so
    Theorem 3 reduces to ``p = p0 + ceil(c * (height-1 - level))`` with
    ``c = 3 ln2 / ln(1/alpha)``.  Unlike
    :class:`AdaptiveChargeDegree` this ignores the actual charges, which
    makes it exactly reproducible for grid studies and cheap to compute.
    """

    p0: int = 4
    alpha: float = 0.5
    p_max: int = 30

    def __post_init__(self) -> None:
        if self.p0 < 0:
            raise ValueError(f"p0 must be >= 0, got {self.p0}")
        if not 0.0 < self.alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {self.alpha}")
        if self.p_max < self.p0:
            raise ValueError("p_max must be >= p0")

    def degrees(self, tree: Octree) -> np.ndarray:
        c = degree_increment_per_level(self.alpha)
        depth_above_leaf = (tree.height - 1) - tree.level
        p = self.p0 + np.ceil(c * np.maximum(depth_above_leaf, 0)).astype(np.int64)
        return np.clip(p, self.p0, self.p_max)


@dataclass(frozen=True)
class ToleranceDegree(DegreePolicy):
    """Pick each cluster's degree from an absolute error tolerance.

    The user-facing inverse of the analysis: given a per-interaction
    tolerance ``tol``, each cluster gets the smallest degree whose
    Theorem-1 bound at its worst accepted distance (``r = a/alpha``)
    meets it.  This subsumes Theorem 3 (equal per-interaction error)
    while letting callers specify the error budget directly instead of
    anchoring at a leaf.

    Parameters
    ----------
    tol:
        Absolute per-interaction error tolerance.
    alpha:
        MAC parameter the treecode will run with.
    p_min, p_max:
        Degree clamps.
    """

    tol: float = 1e-6
    alpha: float = 0.5
    p_min: int = 1
    p_max: int = 30

    def __post_init__(self) -> None:
        if self.tol <= 0:
            raise ValueError(f"tol must be > 0, got {self.tol}")
        if not 0.0 < self.alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {self.alpha}")
        if not 0 <= self.p_min <= self.p_max:
            raise ValueError("need 0 <= p_min <= p_max")

    def degrees(self, tree: Octree) -> np.ndarray:
        a = tree.radius
        r = np.maximum(a / self.alpha, 1e-300)
        p = degree_for_tolerance(tree.abs_charge, a, r, self.tol, p_max=self.p_max)
        return np.clip(p, self.p_min, self.p_max)


@dataclass(frozen=True)
class VariableDegree(DegreePolicy):
    """Target-accuracy policy behind ``compile_plan(tol=...)``.

    As a plain node policy it behaves like :class:`ToleranceDegree`
    with ``p_min=0`` (smallest degree whose Theorem-1 bound at the
    worst accepted distance meets ``tol``).  Its real role is carrying
    the target accuracy into plan compilation: when a treecode built
    with this policy is compiled (``Treecode.compile_plan``), ``tol``
    defaults from the policy and the compiler re-selects the degree
    **per interaction** — each far pair gets the minimal degree whose
    Theorem-1 (particle-cluster) or dual-MAC (cluster-cluster) bound
    keeps the aggregate per-target ledger at or under ``tol`` — then
    buckets interactions by degree so every kernel stays a GEMM.

    Parameters
    ----------
    tol:
        Aggregate per-target error budget (absolute potential error).
    alpha:
        MAC parameter the treecode will run with.
    p_max:
        Degree cap; an infeasible budget at ``p_max`` raises
        :class:`DegreeSelectionError` instead of clamping.
    """

    tol: float = 1e-6
    alpha: float = 0.5
    p_max: int = 60

    def __post_init__(self) -> None:
        if self.tol <= 0:
            raise ValueError(f"tol must be > 0, got {self.tol}")
        if not 0.0 < self.alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {self.alpha}")
        if self.p_max < 0:
            raise ValueError(f"p_max must be >= 0, got {self.p_max}")

    def degrees(self, tree: Octree) -> np.ndarray:
        a = tree.radius
        r = np.maximum(a / self.alpha, 1e-300)
        return degree_for_tolerance(
            tree.abs_charge, a, r, self.tol, p_max=self.p_max
        )
