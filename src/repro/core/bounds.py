"""Error-bound theory from the paper, as executable formulas.

Every theorem and lemma of the paper's analysis section is implemented
here so that experiments can compare *observed* errors and costs against
the *predicted* ones:

* :func:`theorem1_bound` — Greengard-Rokhlin truncation bound for one
  multipole evaluation.
* :func:`theorem2_interaction_bound` — per-interaction bound under the
  α-MAC; linear in the cluster's absolute charge ``A`` (the quantity the
  paper identifies as the problem with fixed-degree Barnes-Hut).
* :func:`lemma1_ratio_bounds` — bounds on ``r/a`` for an accepted box
  whose parent was rejected.
* :func:`lemma2_interaction_count` — constant bound ``c_max(α)`` on the
  number of same-size boxes any particle interacts with.
* :func:`theorem3_degree` — the adaptive degree choice that equalizes
  per-interaction error.
* :func:`theorem4_aggregate_error` — aggregate error estimate
  ``O(ε₀ · height · c_max)`` of the improved method.
* :func:`theorem5_cost_ratio` — predicted terms(new)/terms(orig) ratio,
  the "within 7/3 for practical sizes" claim.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "theorem1_bound",
    "theorem2_interaction_bound",
    "lemma1_ratio_bounds",
    "lemma2_interaction_count",
    "theorem3_degree",
    "theorem4_aggregate_error",
    "theorem5_cost_ratio",
    "degree_increment_per_level",
    "degree_for_tolerance",
]

#: Ratio of a cube's bounding-sphere radius to its side: ``sqrt(3)/2``.
KAPPA = float(np.sqrt(3.0) / 2.0)


def theorem1_bound(A, a, r, p):
    """Greengard-Rokhlin truncation error of a degree-``p`` multipole series.

    ``|Φ - Φ_p| <= A / (r - a) * (a / r)^(p+1)`` for charges of total
    absolute magnitude ``A`` inside a sphere of radius ``a``, evaluated
    at distance ``r > a``.  All arguments broadcast.
    """
    A = np.asarray(A, dtype=np.float64)
    a = np.asarray(a, dtype=np.float64)
    r = np.asarray(r, dtype=np.float64)
    p = np.asarray(p)
    with np.errstate(divide="ignore", invalid="ignore"):
        out = A / (r - a) * (a / r) ** (p + 1)
    return np.where(r > a, out, np.inf)


def theorem2_interaction_bound(A, r, alpha, p):
    """Per-interaction error bound under the α-MAC.

    The MAC guarantees ``a/r <= alpha``, so Theorem 1 becomes
    ``|err| <= A * alpha^(p+1) / (r (1 - alpha))`` — linear in the
    cluster charge ``A``, which is what the adaptive degree selection
    (Theorem 3) compensates for.
    """
    A = np.asarray(A, dtype=np.float64)
    r = np.asarray(r, dtype=np.float64)
    if np.any(np.asarray(alpha) >= 1.0) or np.any(np.asarray(alpha) <= 0.0):
        raise ValueError("alpha must be in (0, 1)")
    return A * np.power(alpha, np.asarray(p) + 1) / (r * (1.0 - alpha))


def lemma1_ratio_bounds(alpha: float) -> tuple[float, float]:
    """Bounds on ``r/a`` for a box accepted when its parent was rejected.

    Acceptance of box ``b`` gives ``r_b >= a_b / alpha``; rejection of
    the parent ``B`` (with ``a_B = 2 a_b`` and center at most ``a_b``
    away) gives, via the triangle inequality,
    ``r_b <= r_B + a_b <= 2 a_b / alpha + a_b``.  Hence

    ``1/alpha <= r/a <= (2 + alpha) / alpha``.

    As ``alpha -> 0`` both bounds tend to ``~1/alpha`` apart by a factor
    of 2 + o(1): a tight annulus (the paper's observation).
    """
    if not 0.0 < alpha < 1.0:
        raise ValueError("alpha must be in (0, 1)")
    return 1.0 / alpha, (2.0 + alpha) / alpha


def lemma2_interaction_count(alpha: float) -> float:
    """Upper bound ``c_max(α)`` on accepted same-size boxes per particle.

    All boxes of side ``s`` accepted by one particle lie entirely inside
    the annulus ``[r_lo * a - a, r_hi * a + a]`` (with ``a = κ s`` the
    box bounding-sphere radius and ``r_lo, r_hi`` the Lemma-1 bounds on
    ``r/a``); dividing the annulus volume by the box volume ``s^3``
    bounds their number.
    """
    r_lo, r_hi = lemma1_ratio_bounds(alpha)
    a_over_s = KAPPA
    inner = max(0.0, (r_lo - 1.0) * a_over_s)
    outer = (r_hi + 1.0) * a_over_s
    vol = 4.0 / 3.0 * np.pi * (outer**3 - inner**3)
    return float(vol)


def theorem3_degree(A, A0: float, p0: int, alpha: float, p_max: int = 40):
    """Adaptive multipole degree for clusters of absolute charge ``A``.

    Equalizing the Theorem-2 bound ``A_j alpha^(p_j+1)`` with the anchor
    cluster's ``A_0 alpha^(p_0+1)`` gives

    ``p_j = p_0 + ceil( ln(A_j / A_0) / ln(1/alpha) )``

    clamped to ``[p_0, p_max]``.  Vectorized over ``A``.
    """
    if not 0.0 < alpha < 1.0:
        raise ValueError("alpha must be in (0, 1)")
    if A0 <= 0:
        raise ValueError("anchor charge A0 must be positive")
    A = np.asarray(A, dtype=np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        inc = np.ceil(np.log(np.maximum(A, A0) / A0) / np.log(1.0 / alpha))
    inc = np.where(np.isfinite(inc), inc, 0.0)
    p = p0 + np.maximum(inc, 0.0)
    return np.clip(p, p0, p_max).astype(np.int64)


def degree_for_tolerance(A, a, r, tol, p_max: int = 60):
    """Smallest degree whose Theorem-1 bound meets an error tolerance.

    The inverse problem of Theorem 1: given a cluster (``A``, ``a``) and
    evaluation distance ``r > a``, return the minimal ``p`` with
    ``A/(r-a) (a/r)^(p+1) <= tol`` — i.e.

    ``p = ceil( ln(A / (tol (r-a))) / ln(r/a) ) - 1``

    clamped to ``[0, p_max]``.  Vectorized over every argument
    including ``tol`` (per-interaction error budgets); returns ``p_max``
    where even that degree cannot meet the tolerance (``r <= a``) and 0
    where the monopole already suffices.
    """
    tol = np.asarray(tol, dtype=np.float64)
    if np.any(tol <= 0):
        raise ValueError(f"tol must be > 0, got {tol if tol.ndim == 0 else tol.min()}")
    A = np.asarray(A, dtype=np.float64)
    a = np.asarray(a, dtype=np.float64)
    r = np.asarray(r, dtype=np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        need = np.log(A / (tol * (r - a))) / np.log(r / np.maximum(a, 1e-300))
    p = np.ceil(need) - 1
    p = np.where(np.isfinite(need), p, p_max)
    p = np.where(r > a, p, p_max)
    # zero-radius clusters: the monopole is exact
    p = np.where(a <= 0, 0, p)
    return np.clip(p, 0, p_max).astype(np.int64)


def degree_increment_per_level(alpha: float) -> float:
    """Degree growth per tree level for uniform charge density.

    One level up multiplies the cluster charge by 8, so Theorem 3 adds
    ``ln 8 / ln(1/alpha) = 3 ln 2 / ln(1/alpha)`` to the degree per
    level (the constant ``c`` of Theorem 5).
    """
    if not 0.0 < alpha < 1.0:
        raise ValueError("alpha must be in (0, 1)")
    return 3.0 * np.log(2.0) / np.log(1.0 / alpha)


def theorem4_aggregate_error(eps0: float, height: int, alpha: float) -> float:
    """Aggregate per-particle error estimate of the improved method.

    With per-interaction error fixed at ``eps0`` (Thm 3), at most
    ``c_max(α)`` interactions per box size (Lemma 2), and ``height``
    distinct box sizes, the error at any point is at most
    ``eps0 * c_max * height = O(eps0 log n)`` for uniform distributions.
    """
    return eps0 * lemma2_interaction_count(alpha) * height


def theorem5_cost_ratio(p0: int, alpha: float, height: int) -> float:
    """Predicted terms(new) / terms(orig) for uniform charge density.

    The fixed-degree method evaluates ``(p0+1)^2`` terms per interaction
    at every one of the ``height`` box sizes; the improved method
    evaluates ``(p0 + c·j + 1)^2`` at the size that is ``j`` levels
    above the leaves (``c`` from
    :func:`degree_increment_per_level`).  The ratio

    ``sum_j (p0 + c j + 1)^2 / (height (p0+1)^2)``

    stays below 7/3 for the practical regimes quoted in the paper
    (p ~ 6-7, up to tens of millions of particles).
    """
    c = degree_increment_per_level(alpha)
    j = np.arange(height, dtype=np.float64)
    new = np.sum((p0 + c * j + 1.0) ** 2)
    orig = height * (p0 + 1.0) ** 2
    return float(new / orig)
