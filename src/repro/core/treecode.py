"""Barnes-Hut treecode with pluggable multipole-degree selection.

This is the paper's experimental vehicle: a Barnes-Hut evaluator over an
adaptive octree, using spherical-harmonic multipole expansions and the
α multipole acceptance criterion, with the degree of each accepted
particle-cluster interaction chosen by a
:class:`~repro.core.degree.DegreePolicy` — :class:`FixedDegree` gives
the *original* method, :class:`AdaptiveChargeDegree` the *improved*
method of Theorem 3.

Evaluation is organized in two phases:

1. **Traversal** — a preorder walk producing explicit interaction
   lists: far (cluster, target) pairs accepted by the MAC and near
   (leaf, target-block) pairs.  The walk is vectorized over the target
   frontier of each node, so its cost is a few NumPy calls per tree
   node.
2. **Evaluation** — far pairs are grouped by degree and evaluated in
   large vectorized batches (:func:`repro.multipole.expansion.m2p_rows`);
   near pairs are dense kernel blocks.

The two-phase structure also yields, for free, the paper's
instrumentation ("number of multipole terms evaluated", interactions
per level) and the per-target accumulation of Theorem-1 error bounds.

The multipole acceptance criterion
----------------------------------
A cluster with enclosing-sphere radius ``a`` (about its expansion
center) is accepted for a target at distance ``r`` iff ``a <= α r``
with ``α < 1``; Theorem 1 then bounds the interaction error by
``A α^(p+1) / (r (1-α))`` (Theorem 2).  We use the *exact* enclosing
radius rather than the box half-diagonal, which tightens both the MAC
and the bound without changing the theory.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..direct import pairwise_potential
from ..multipole.expansion import m2p_rows, p2m_terms
from ..multipole.gradient import m2p_grad_rows
from ..multipole.harmonics import ncoef, term_count
from ..multipole.translations import m2m
from ..obs.metrics import REGISTRY
from ..obs.tracing import is_enabled, span, stopwatch
from ..perf.scatter import scatter_add
from ..robust.faults import maybe_corrupt
from ..robust.guards import check_bound_accounting, check_finite
from ..tree.octree import Octree, build_octree
from .bounds import theorem1_bound
from .degree import AdaptiveChargeDegree, DegreePolicy, FixedDegree

__all__ = [
    "Treecode",
    "TreecodeResult",
    "TreecodeStats",
    "InteractionLists",
    "record_eval_metrics",
]

#: Maximum far-field pairs evaluated in one vectorized batch.
_FAR_CHUNK = 200_000
#: Maximum target×source products per near-field dense block.
_NEAR_BUDGET = 4_000_000


@dataclass
class TreecodeStats:
    """Cost accounting matching the paper's serial-complexity metric."""

    n_targets: int = 0
    #: particle-cluster interactions accepted by the MAC
    n_pc_interactions: int = 0
    #: particle-particle near-field pairs evaluated
    n_pp_pairs: int = 0
    #: total multipole terms evaluated: sum over interactions of (p+1)^2
    n_terms: int = 0
    #: interactions keyed by evaluation degree
    interactions_by_degree: dict = field(default_factory=dict)
    #: interactions keyed by tree level of the accepted cluster
    interactions_by_level: dict = field(default_factory=dict)
    #: accumulated Theorem-1 bound keyed by tree level (populated only
    #: when the evaluation accumulates bounds)
    bound_by_level: dict = field(default_factory=dict)
    build_time: float = 0.0
    upward_time: float = 0.0
    traverse_time: float = 0.0
    eval_time: float = 0.0

    @property
    def total_time(self) -> float:
        return self.build_time + self.upward_time + self.traverse_time + self.eval_time

    def merge(self, other: "TreecodeStats") -> None:
        """Accumulate another evaluation's counters into this one."""
        self.n_targets += other.n_targets
        self.n_pc_interactions += other.n_pc_interactions
        self.n_pp_pairs += other.n_pp_pairs
        self.n_terms += other.n_terms
        for k, v in other.interactions_by_degree.items():
            self.interactions_by_degree[k] = self.interactions_by_degree.get(k, 0) + v
        for k, v in other.interactions_by_level.items():
            self.interactions_by_level[k] = self.interactions_by_level.get(k, 0) + v
        for k, v in other.bound_by_level.items():
            self.bound_by_level[k] = self.bound_by_level.get(k, 0.0) + v
        self.build_time += other.build_time
        self.upward_time += other.upward_time
        self.traverse_time += other.traverse_time
        self.eval_time += other.eval_time


def record_eval_metrics(stats: "TreecodeStats") -> None:
    """Publish one evaluation's counters into the process metrics
    registry (call sites gate on ``repro.obs.is_enabled()``)."""
    m = REGISTRY
    m.counter(
        "pc_interactions", "particle-cluster interactions accepted by the MAC"
    ).inc(stats.n_pc_interactions)
    m.counter("pp_pairs", "near-field particle-particle pairs evaluated").inc(
        stats.n_pp_pairs
    )
    m.counter(
        "terms_evaluated", "multipole terms evaluated (the paper's cost metric)"
    ).inc(stats.n_terms)
    if stats.interactions_by_degree:
        by_deg = m.counter(
            "pc_interactions_by_degree",
            "accepted interactions keyed by evaluation degree",
            labelnames=("degree",),
        )
        for p, c in stats.interactions_by_degree.items():
            by_deg.labels(degree=p).inc(c)
    if stats.interactions_by_level:
        by_lvl = m.counter(
            "pc_interactions_by_level",
            "accepted interactions keyed by cluster tree level",
            labelnames=("level",),
        )
        for lvl, c in stats.interactions_by_level.items():
            by_lvl.labels(level=lvl).inc(c)
    if stats.bound_by_level:
        bnd = m.counter(
            "theorem1_bound_by_level",
            "accumulated Theorem-1 error bound keyed by cluster tree level",
            labelnames=("level",),
        )
        for lvl, b in stats.bound_by_level.items():
            bnd.labels(level=lvl).inc(b)


@dataclass
class TreecodeResult:
    """Output of one treecode evaluation."""

    potential: np.ndarray
    gradient: np.ndarray | None
    error_bound: np.ndarray | None
    stats: TreecodeStats


@dataclass
class InteractionLists:
    """Explicit interaction lists produced by the traversal.

    ``far_nodes[i]``/``far_targets[i]`` is an accepted (cluster, target)
    pair, in deterministic preorder; ``near`` is a list of
    ``(leaf_id, target_indices)`` blocks.
    """

    far_nodes: np.ndarray
    far_targets: np.ndarray
    near: list


class Treecode:
    """Barnes-Hut treecode for the 3-D Laplace kernel.

    Parameters
    ----------
    points, charges:
        Source particles, ``(n, 3)`` and ``(n,)``.
    degree_policy:
        A :class:`~repro.core.degree.DegreePolicy`; defaults to the
        improved method ``AdaptiveChargeDegree(p0=4, alpha=alpha)``.
    alpha:
        MAC parameter in ``(0, 1)``.
    leaf_size:
        Octree leaf capacity.
    expansion_center:
        Passed to :func:`~repro.tree.octree.build_octree`.
    upward:
        ``"m2m"`` (default) builds internal expansions by translating
        children upward, exactly as the paper describes ("multipole
        series are computed a-priori to the maximum required degree");
        ``"p2m"`` forms each node's expansion directly from its particle
        slice — mathematically identical, kept as a cross-check and for
        very heterogeneous degree schedules.
    softening:
        Plummer softening length ε applied to the *near-field* kernel
        (``1/sqrt(r²+ε²)``), as gravitational n-body codes do; the far
        field is unchanged (for ε well below the leaf scale the
        far-field difference is O(ε²/r³), far under the truncation
        error).
    tree:
        An already-built :class:`~repro.tree.octree.Octree` over the
        *same* points, to share across several treecodes (sweep drivers
        vary only ``alpha`` or the degree policy).  The tree's spatial
        structure and expansion centers are reused as-is; its charge
        aggregates are recomputed from ``charges`` (matching the
        :meth:`set_charges` semantics), so a reused tree may carry stale
        charges from a previous owner without affecting correctness.

    Examples
    --------
    >>> import numpy as np
    >>> from repro import Treecode, FixedDegree
    >>> rng = np.random.default_rng(0)
    >>> pts = rng.random((500, 3)); q = rng.random(500)
    >>> tc = Treecode(pts, q, degree_policy=FixedDegree(5), alpha=0.6)
    >>> res = tc.evaluate()
    >>> res.potential.shape
    (500,)
    """

    def __init__(
        self,
        points: np.ndarray,
        charges: np.ndarray,
        degree_policy: DegreePolicy | None = None,
        alpha: float = 0.5,
        leaf_size: int = 16,
        expansion_center: str = "abs_com",
        upward: str = "m2m",
        max_depth: int = 20,
        softening: float = 0.0,
        tree: Octree | None = None,
    ) -> None:
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        if upward not in ("m2m", "p2m"):
            raise ValueError(f"upward must be 'm2m' or 'p2m', got {upward!r}")
        if softening < 0.0:
            raise ValueError(f"softening must be >= 0, got {softening}")
        self.alpha = float(alpha)
        self.softening = float(softening)
        self.degree_policy = (
            degree_policy
            if degree_policy is not None
            else AdaptiveChargeDegree(p0=4, alpha=alpha)
        )
        self.upward = upward
        check_finite("treecode.points", np.asarray(points), context="input positions")
        check_finite("treecode.charges", np.asarray(charges), context="input charges")

        with stopwatch("treecode.build", n=int(points.shape[0])) as sw_build:
            if tree is not None:
                pts = np.asarray(points, dtype=np.float64)
                if tree.n_particles != pts.shape[0] or not np.array_equal(
                    tree.points, pts[tree.perm]
                ):
                    raise ValueError("reused tree does not match the given points")
                self.tree: Octree = tree
                self._set_charge_aggregates(
                    np.asarray(charges, dtype=np.float64)
                )
            else:
                self.tree = build_octree(
                    points,
                    charges,
                    leaf_size=leaf_size,
                    expansion_center=expansion_center,
                    max_depth=max_depth,
                )

        with stopwatch("treecode.upward", upward=upward) as sw_up:
            self.p_eval = np.asarray(
                self.degree_policy.degrees(self.tree), dtype=np.int64
            )
            if self.p_eval.shape != (self.tree.n_nodes,):
                raise ValueError("degree policy returned wrong-shaped array")
            self._build_expansions()

        self.base_stats = TreecodeStats(
            build_time=sw_build.elapsed, upward_time=sw_up.elapsed
        )
        if is_enabled():
            REGISTRY.counter("tree_builds", "octrees constructed").inc()
            REGISTRY.gauge("tree_height", "height of the most recent octree").set(
                self.tree.height
            )
            REGISTRY.gauge("tree_nodes", "node count of the most recent octree").set(
                self.tree.n_nodes
            )

    # ------------------------------------------------------------------
    # upward pass
    # ------------------------------------------------------------------
    def _store_degrees(self) -> np.ndarray:
        """Degree to which each node's expansion must be computed.

        With the m2m upward pass a node's coefficients feed its parent's
        translation, so they must reach the maximum evaluation degree of
        any ancestor: ``p_store[i] = max(p_eval[i], p_store[parent])``.
        """
        tree = self.tree
        p_store = self.p_eval.copy()
        for d in range(1, tree.height):
            ids = tree.nodes_at_level(d)
            p_store[ids] = np.maximum(p_store[ids], p_store[tree.parent[ids]])
        return p_store

    def _build_expansions(self) -> None:
        tree = self.tree
        if self.upward == "p2m":
            p_store = self.p_eval.copy()
        else:
            p_store = self._store_degrees()
        self.p_store = p_store
        pmax = int(p_store.max())
        nc = ncoef(pmax)
        coeffs = np.zeros((tree.n_nodes, nc), dtype=np.complex128)

        if self.upward == "p2m":
            self._p2m_nodes(np.arange(tree.n_nodes), p_store, coeffs)
        else:
            # Leaves: direct P2M at the stored degree.
            self._p2m_nodes(tree.leaf_ids(), p_store, coeffs)
            # Internal nodes: translate children upward, one batched m2m
            # per (level, parent-degree) group.
            for d in range(tree.height - 1, 0, -1):
                ids = tree.nodes_at_level(d)
                parents = tree.parent[ids]
                pdeg = p_store[parents]
                for p in np.unique(pdeg):
                    sel = ids[pdeg == p]
                    par = tree.parent[sel]
                    shifts = tree.center_exp[sel] - tree.center_exp[par]
                    contrib = m2m(coeffs[sel, : ncoef(int(p))], shifts, int(p))
                    np.add.at(coeffs[:, : ncoef(int(p))], par, contrib)
        # fault-injection site + NaN/Inf guard: corrupted expansions
        # must fail loudly here, not as poisoned far-field potentials
        coeffs = maybe_corrupt("treecode.coeffs", coeffs)
        check_finite("treecode.coeffs", coeffs, context="multipole coefficients")
        self.coeffs = coeffs

    def _p2m_nodes(self, node_ids: np.ndarray, p_store: np.ndarray, coeffs: np.ndarray) -> None:
        """Form multipole expansions for the given nodes directly from
        their particle slices, vectorized across nodes.

        Nodes are grouped by stored degree; within a group the ragged
        per-node particle slices are flattened into one segmented array
        and reduced with ``add.reduceat`` — one harmonics evaluation for
        the whole group instead of one per node.
        """
        tree = self.tree
        pts, q = tree.points, tree.charges
        for p in np.unique(p_store[node_ids]):
            p = int(p)
            group = node_ids[p_store[node_ids] == p]
            counts = (tree.end[group] - tree.start[group]).astype(np.int64)
            # chunk so the flattened (rows, ncoef) block stays bounded
            row_budget = max(1, 4_000_000 // max(ncoef(p), 1))
            lo = 0
            while lo < group.size:
                hi = lo
                rows = 0
                while hi < group.size and (rows == 0 or rows + counts[hi] <= row_budget):
                    rows += counts[hi]
                    hi += 1
                sub = group[lo:hi]
                cnts = counts[lo:hi]
                cum = np.concatenate([[0], np.cumsum(cnts)])
                total = int(cum[-1])
                pidx = (
                    np.arange(total)
                    - np.repeat(cum[:-1], cnts)
                    + np.repeat(tree.start[sub], cnts)
                )
                owner = np.repeat(np.arange(sub.size), cnts)
                rel = pts[pidx] - tree.center_exp[sub][owner]
                contrib = p2m_terms(rel, q[pidx], p)
                segsum = np.add.reduceat(contrib, cum[:-1], axis=0)
                coeffs[sub, : ncoef(p)] = segsum
                lo = hi

    # ------------------------------------------------------------------
    # traversal
    # ------------------------------------------------------------------
    def traverse(self, targets: np.ndarray, self_targets: bool) -> InteractionLists:
        """Produce interaction lists for the given targets.

        ``self_targets=True`` means the targets *are* the (Morton-sorted)
        source particles, enabling exact self-exclusion in the near field.
        """
        tree = self.tree
        alpha2 = self.alpha * self.alpha
        far_nodes: list[np.ndarray] = []
        far_tids: list[np.ndarray] = []
        near: list[tuple[int, np.ndarray]] = []

        stack: list[tuple[int, np.ndarray]] = [(0, np.arange(targets.shape[0]))]
        while stack:
            node, idx = stack.pop()
            delta = targets[idx] - tree.center_exp[node]
            d2 = np.einsum("ij,ij->i", delta, delta)
            rad = tree.radius[node]
            if rad == 0.0:
                acc = d2 > 0.0
            else:
                acc = (rad * rad) <= alpha2 * d2
            acc_idx = idx[acc]
            if acc_idx.size:
                far_nodes.append(np.full(acc_idx.size, node, dtype=np.int64))
                far_tids.append(acc_idx)
            rest = idx[~acc]
            if rest.size == 0:
                continue
            if tree.n_children[node] == 0:
                near.append((node, rest))
            else:
                # reversed push -> preorder pop, deterministic per target
                for c in tree.children(node)[::-1]:
                    stack.append((int(c), rest))

        fn = np.concatenate(far_nodes) if far_nodes else np.empty(0, dtype=np.int64)
        ft = np.concatenate(far_tids) if far_tids else np.empty(0, dtype=np.int64)
        return InteractionLists(far_nodes=fn, far_targets=ft, near=near)

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def evaluate(
        self,
        targets: np.ndarray | None = None,
        compute: str = "potential",
        accumulate_bounds: bool = False,
    ) -> TreecodeResult:
        """Evaluate the potential (and optionally gradient) at targets.

        Parameters
        ----------
        targets:
            ``(t, 3)`` evaluation points, or ``None`` to evaluate at the
            source particles themselves (self-interaction excluded;
            results returned in the original input ordering).
        compute:
            ``"potential"`` or ``"both"`` (potential + gradient).
        accumulate_bounds:
            If true, also return the per-target sum of Theorem-1 bounds
            over all accepted interactions — a rigorous a-posteriori
            error bound on the returned potential.

        Returns
        -------
        :class:`TreecodeResult`
        """
        if compute not in ("potential", "both"):
            raise ValueError(f"compute must be 'potential' or 'both', got {compute!r}")
        tree = self.tree
        self_targets = targets is None
        tgt = tree.points if self_targets else np.asarray(targets, dtype=np.float64)
        if tgt.ndim != 2 or tgt.shape[1] != 3:
            raise ValueError(f"targets must have shape (t, 3), got {tgt.shape}")

        with span("treecode.evaluate", targets=int(tgt.shape[0]), compute=compute):
            with stopwatch("treecode.traverse", targets=int(tgt.shape[0])) as sw:
                lists = self.traverse(tgt, self_targets)
            result = self.evaluate_lists(
                lists,
                tgt,
                self_targets=self_targets,
                compute=compute,
                accumulate_bounds=accumulate_bounds,
            )
        result.stats.traverse_time = sw.elapsed
        return result

    def evaluate_lists(
        self,
        lists: InteractionLists,
        tgt: np.ndarray,
        self_targets: bool = False,
        compute: str = "potential",
        accumulate_bounds: bool = False,
    ) -> TreecodeResult:
        """Evaluate pre-computed interaction lists at the given targets.

        The geometry-dependent traversal and the charge-dependent
        arithmetic are separated so that callers with fixed geometry but
        changing charges — the BEM matrix-vector product inside GMRES —
        can cache the lists and pay only for the arithmetic on every
        application (after :meth:`set_charges`).
        """
        tree = self.tree
        obs_on = is_enabled()
        sw_eval = stopwatch("treecode.eval").__enter__()
        nt = tgt.shape[0]
        phi = np.zeros(nt, dtype=np.float64)
        grad = np.zeros((nt, 3), dtype=np.float64) if compute == "both" else None
        bound = np.zeros(nt, dtype=np.float64) if accumulate_bounds else None
        stats = TreecodeStats(n_targets=nt)

        # ---- far field: group pairs by degree, evaluate in chunks ----
        fn, ft = lists.far_nodes, lists.far_targets
        with span("treecode.far_field", pairs=int(fn.size)):
            if fn.size:
                pdeg = self.p_eval[fn]
                order = np.argsort(pdeg, kind="stable")
                fn, ft, pdeg = fn[order], ft[order], pdeg[order]
                uniq, starts = np.unique(pdeg, return_index=True)
                bnds = list(starts) + [fn.size]
                for u, (lo, hi) in zip(uniq, zip(bnds[:-1], bnds[1:])):
                    p = int(u)
                    npairs = hi - lo
                    stats.n_pc_interactions += npairs
                    stats.n_terms += npairs * term_count(p)
                    stats.interactions_by_degree[p] = (
                        stats.interactions_by_degree.get(p, 0) + npairs
                    )
                    for clo in range(lo, hi, _FAR_CHUNK):
                        chi = min(clo + _FAR_CHUNK, hi)
                        nodes = fn[clo:chi]
                        tids = ft[clo:chi]
                        if obs_on:
                            REGISTRY.histogram(
                                "far_chunk_size",
                                "far-field pairs per vectorized batch",
                            ).observe(chi - clo)
                        rel = tgt[tids] - tree.center_exp[nodes]
                        vals = m2p_rows(self.coeffs[nodes], rel, p)
                        scatter_add(phi, tids, vals)
                        if grad is not None:
                            gv = m2p_grad_rows(self.coeffs[nodes], rel, p)
                            scatter_add(grad, tids, gv)
                        if bound is not None:
                            r = np.sqrt(
                                np.einsum("ij,ij->i", rel, rel)
                            )
                            b = theorem1_bound(
                                tree.abs_charge[nodes], tree.radius[nodes], r, p
                            )
                            scatter_add(bound, tids, b)
                            # Theorem-1 budget per tree level — the
                            # accounting the paper's theorems sum over
                            lsum = np.bincount(tree.level[nodes], weights=b)
                            for L, s_ in enumerate(lsum):
                                if s_:
                                    stats.bound_by_level[L] = (
                                        stats.bound_by_level.get(L, 0.0) + float(s_)
                                    )
                # per-level accounting (cheap bincount over all pairs)
                lev = tree.level[fn]
                cnt = np.bincount(lev)
                for L, c in enumerate(cnt):
                    if c:
                        stats.interactions_by_level[L] = (
                            stats.interactions_by_level.get(L, 0) + int(c)
                        )

        # ---- near field: dense blocks per leaf ----
        with span("treecode.near_field", blocks=len(lists.near)):
            for leaf, tids in lists.near:
                s, e = int(tree.start[leaf]), int(tree.end[leaf])
                cnt = e - s
                if cnt == 0:
                    continue
                step = max(1, _NEAR_BUDGET // cnt)
                src = tree.points[s:e]
                qs = tree.charges[s:e]
                for lo in range(0, tids.size, step):
                    blk = tids[lo : lo + step]
                    if obs_on:
                        REGISTRY.histogram(
                            "near_block_size",
                            "target x source products per near-field dense block",
                        ).observe(blk.size * cnt)
                    if self_targets:
                        excl = np.where((blk >= s) & (blk < e), blk - s, -1)
                    else:
                        excl = None
                    phi[blk] += pairwise_potential(
                        tgt[blk], src, qs, exclude=excl, softening=self.softening
                    )
                    if grad is not None:
                        grad[blk] += _near_gradient(
                            tgt[blk], src, qs, excl, softening=self.softening
                        )
                    n_excl = int(np.count_nonzero(excl >= 0)) if excl is not None else 0
                    stats.n_pp_pairs += blk.size * cnt - n_excl
        sw_eval.__exit__(None, None, None)
        stats.eval_time = sw_eval.elapsed
        if obs_on:
            record_eval_metrics(stats)

        if self_targets:
            # un-sort back to the caller's original particle order
            inv = self.tree.perm
            out_phi = np.empty_like(phi)
            out_phi[inv] = phi
            phi = out_phi
            if grad is not None:
                og = np.empty_like(grad)
                og[inv] = grad
                grad = og
            if bound is not None:
                ob = np.empty_like(bound)
                ob[inv] = bound
                bound = ob

        check_finite("treecode.potential", phi, context="evaluated potential")
        if bound is not None:
            check_bound_accounting(
                "treecode.bounds", bound, stats.bound_by_level
            )
        return TreecodeResult(potential=phi, gradient=grad, error_bound=bound, stats=stats)

    def set_charges(self, charges: np.ndarray) -> None:
        """Replace the source charges and rebuild the expansions.

        The tree structure, expansion centers and degree schedule are
        kept (the paper fixes all degree-selection parameters at tree
        construction time); only the coefficient arrays and the charge
        aggregates are recomputed.  This is the fast path for iterative
        solvers where the geometry is fixed but the density changes on
        every matrix-vector product.
        """
        charges = np.asarray(charges, dtype=np.float64)
        self._set_charge_aggregates(charges)
        with span("treecode.set_charges", n=int(charges.shape[0])):
            self._build_expansions()

    def _set_charge_aggregates(self, charges: np.ndarray) -> None:
        """Re-sort charges into Morton order and recompute the per-node
        charge aggregates (``abs_charge``/``net_charge``) on the shared
        tree — everything :meth:`set_charges` does short of rebuilding
        the expansions."""
        tree = self.tree
        if charges.shape != (tree.n_particles,):
            raise ValueError(
                f"charges must have shape ({tree.n_particles},), got {charges.shape}"
            )
        q_sorted = charges[tree.perm]
        tree.charges = q_sorted
        cs_abs = np.concatenate([[0.0], np.cumsum(np.abs(q_sorted))])
        cs_net = np.concatenate([[0.0], np.cumsum(q_sorted)])
        tree.abs_charge = cs_abs[tree.end] - cs_abs[tree.start]
        tree.net_charge = cs_net[tree.end] - cs_net[tree.start]

    def compile_plan(
        self,
        targets: np.ndarray | None = None,
        compute: str = "potential",
        accumulate_bounds: bool = False,
        memory_budget: int | None = None,
        lists: InteractionLists | None = None,
        mode: str = "target",
        rows_dtype=np.float64,
        n_units: int | None = None,
        tol: float | None = None,
        translation_backend: str = "auto",
        cache_dir=None,
    ):
        """Freeze this treecode's geometry into a compiled plan for
        repeated matvecs.

        ``targets=None`` compiles a self-evaluation plan (targets are the
        source particles, self-interaction excluded, results in input
        order), matching :meth:`evaluate`.  Pass cached ``lists`` to skip
        the traversal.  ``plan.execute(q)`` then equals
        ``set_charges(q)`` + :meth:`evaluate_lists` to rounding, without
        touching this treecode's state.

        ``mode="target"`` builds the target-major
        :class:`~repro.perf.plan.CompiledPlan` (per-pair far rows);
        ``mode="cluster"`` builds the dual-traversal
        :class:`~repro.perf.cluster.ClusterPlan` (box-box M2L into
        per-leaf local expansions; requires ``targets=None``; ``lists``
        is not used).  ``rows_dtype=np.float32`` stores far/L2P row
        matrices in single precision, roughly halving plan memory at the
        cost of ~1e-7 relative rounding — well inside the Theorem-1
        truncation ledger.  ``n_units`` controls the number of far work
        units a cluster plan is split into (parallelism granularity).

        ``tol`` switches the compiler to **variable-order** mode: each
        far interaction gets the minimal degree whose Theorem-1 (or
        dual-MAC) bound keeps every target's aggregate error ledger at
        or below ``tol``, and interactions are bucketed by degree so
        every kernel stays a GEMM.  When this treecode was built with a
        :class:`~repro.core.degree.VariableDegree` policy, ``tol``
        defaults to the policy's tolerance.  The budget is anchored at
        the charges held when the plan is compiled (``set_charges``
        before compiling to re-anchor); the a-posteriori ledger the plan
        reports always bounds the true error regardless.

        ``translation_backend`` selects the M2L kernels of a cluster
        plan: ``"dense"`` (O((p+1)^4) grid correlation), ``"rotation"``
        (rotate-translate-rotate, O((p+1)^3)), or ``"auto"`` (rotation
        at degrees >=
        :data:`~repro.parallel.partition.ROTATION_CROSSOVER_P`, dense
        below).  The two backends agree to ~1e-12 in complex128.

        ``cache_dir`` enables the persistent content-addressed plan
        store (:mod:`repro.perf.store`): matching plans are restored
        zero-copy from disk instead of compiled, and fresh compiles are
        written back.  ``None`` defers to the ``REPRO_PLAN_CACHE``
        environment variable (the CLI's ``--plan-cache``); ``""``
        force-disables caching.
        """
        from ..perf.plan import DEFAULT_MEMORY_BUDGET, compile_plan
        from .degree import VariableDegree

        if tol is None and isinstance(self.degree_policy, VariableDegree):
            tol = self.degree_policy.tol
        self_targets = targets is None
        tgt = (
            self.tree.points if self_targets else np.asarray(targets, dtype=np.float64)
        )
        if mode == "cluster":
            if not self_targets:
                raise ValueError(
                    "mode='cluster' evaluates at the source particles; "
                    "pass targets=None"
                )
        elif lists is None:
            lists = self.traverse(tgt, self_targets)
        return compile_plan(
            self,
            lists,
            tgt,
            self_targets=self_targets,
            compute=compute,
            accumulate_bounds=accumulate_bounds,
            memory_budget=(
                DEFAULT_MEMORY_BUDGET if memory_budget is None else memory_budget
            ),
            mode=mode,
            rows_dtype=rows_dtype,
            n_units=n_units,
            tol=tol,
            translation_backend=translation_backend,
            cache_dir=cache_dir,
        )

    # convenience ------------------------------------------------------
    @property
    def height(self) -> int:
        return self.tree.height

    def describe(self) -> str:
        """One-line summary of the built structure."""
        t = self.tree
        return (
            f"Treecode(n={t.n_particles}, nodes={t.n_nodes}, height={t.height}, "
            f"alpha={self.alpha}, policy={self.degree_policy.name}, "
            f"degrees {self.p_eval.min()}..{self.p_eval.max()})"
        )


def _near_gradient(targets, sources, charges, exclude, softening: float = 0.0):
    """Dense near-field gradient block (∇ of sum q/|x-s|, optionally
    Plummer-softened)."""
    d = targets[:, None, :] - sources[None, :, :]
    r2 = np.einsum("tsi,tsi->ts", d, d) + softening * softening
    with np.errstate(divide="ignore"):
        w = charges / (r2 * np.sqrt(r2))
    w[r2 == 0.0] = 0.0
    if exclude is not None:
        rows = np.nonzero(exclude >= 0)[0]
        w[rows, exclude[rows]] = 0.0
    return -np.einsum("ts,tsi->ti", w, d)
