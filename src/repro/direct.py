"""Exact O(n²) summation for the ``1/r`` kernel — the accuracy reference.

The paper defines simulation error against "the vector corresponding to
the accurate potentials at n particles"; this module produces that
vector.  Evaluation is chunked so memory stays bounded for large n, and
both potential and gradient (force) are available.
"""

from __future__ import annotations

import numpy as np

__all__ = ["direct_potential", "direct_gradient", "pairwise_potential"]

#: Maximum number of target × source kernel evaluations per chunk.
_CHUNK_BUDGET = 4_000_000


def pairwise_potential(
    targets: np.ndarray,
    sources: np.ndarray,
    charges: np.ndarray,
    exclude: np.ndarray | None = None,
    softening: float = 0.0,
) -> np.ndarray:
    """Potential at ``targets`` due to ``sources`` in one dense block.

    Parameters
    ----------
    targets : ``(t, 3)``
    sources : ``(s, 3)``
    charges : ``(s,)`` or ``(s, k)``
        A 2-D charge array is a batch of ``k`` stacked charge vectors;
        the result then has shape ``(t, k)`` with column ``j`` the
        potential due to ``charges[:, j]``.
    exclude:
        Optional ``(t,)`` integer array: for target ``i``, the source
        index ``exclude[i]`` is skipped (self-interaction); ``-1`` skips
        nothing.  Used when targets *are* the sources.
    softening:
        Plummer softening length ε: the kernel becomes
        ``1/sqrt(r² + ε²)`` — standard in gravitational n-body codes to
        regularize close encounters.

    Intended for small blocks (near field); use
    :func:`direct_potential` for full problems.
    """
    targets = np.asarray(targets, dtype=np.float64)
    sources = np.asarray(sources, dtype=np.float64)
    charges = np.asarray(charges, dtype=np.float64)
    d = targets[:, None, :] - sources[None, :, :]
    r2 = np.einsum("tsi,tsi->ts", d, d) + softening * softening
    with np.errstate(divide="ignore"):
        inv = 1.0 / np.sqrt(r2)
    inv[r2 == 0.0] = 0.0  # coincident points contribute nothing
    if exclude is not None:
        t_idx = np.nonzero(exclude >= 0)[0]
        inv[t_idx, exclude[t_idx]] = 0.0
    return inv @ charges


def direct_potential(
    points: np.ndarray,
    charges: np.ndarray,
    targets: np.ndarray | None = None,
    softening: float = 0.0,
) -> np.ndarray:
    """Exact potential ``Φ_i = sum_{j != i} q_j / |x_i - x_j|``
    (optionally Plummer-softened, see :func:`pairwise_potential`).

    If ``targets`` is ``None``, evaluates at the source points with
    self-interaction excluded; otherwise at the given targets with only
    exactly-coincident pairs excluded.

    ``charges`` may be a ``(n, k)`` batch of stacked charge vectors
    (see :func:`pairwise_potential`); the result is then ``(t, k)``,
    column ``j`` the single-vector result for ``charges[:, j]`` up to
    the BLAS GEMM-vs-GEMV reduction order (a ``(n, 1)`` batch is
    bitwise).
    """
    points = np.asarray(points, dtype=np.float64)
    charges = np.asarray(charges, dtype=np.float64)
    self_eval = targets is None
    tgt = points if self_eval else np.asarray(targets, dtype=np.float64)
    t = tgt.shape[0]
    s = points.shape[0]
    out = np.empty((t,) + charges.shape[1:], dtype=np.float64)
    step = max(1, _CHUNK_BUDGET // max(s, 1))
    for lo in range(0, t, step):
        hi = min(lo + step, t)
        excl = np.arange(lo, hi) if self_eval else None
        out[lo:hi] = pairwise_potential(
            tgt[lo:hi], points, charges, exclude=excl, softening=softening
        )
    return out


def direct_gradient(
    points: np.ndarray,
    charges: np.ndarray,
    targets: np.ndarray | None = None,
    softening: float = 0.0,
) -> np.ndarray:
    """Exact gradient ``∇Φ`` at targets (or at sources, self excluded),
    optionally Plummer-softened.

    The force on a particle of charge ``q_i`` is ``F_i = -q_i ∇Φ_i``.
    """
    points = np.asarray(points, dtype=np.float64)
    charges = np.asarray(charges, dtype=np.float64)
    self_eval = targets is None
    tgt = points if self_eval else np.asarray(targets, dtype=np.float64)
    t = tgt.shape[0]
    s = points.shape[0]
    out = np.empty((t, 3), dtype=np.float64)
    step = max(1, _CHUNK_BUDGET // max(s, 1))
    for lo in range(0, t, step):
        hi = min(lo + step, t)
        d = tgt[lo:hi, None, :] - points[None, :, :]
        r2 = np.einsum("tsi,tsi->ts", d, d) + softening * softening
        with np.errstate(divide="ignore"):
            w = charges / (r2 * np.sqrt(r2))
        w[r2 == 0.0] = 0.0
        if self_eval:
            rows = np.arange(hi - lo)
            w[rows, np.arange(lo, hi)] = 0.0
        # grad of q/|x-s| wrt x is -q (x-s)/r^3
        out[lo:hi] = -np.einsum("ts,tsi->ti", w, d)
    return out
