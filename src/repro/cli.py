"""Command-line experiment runner: ``python -m repro <experiment>``.

Each subcommand regenerates one of the paper's tables/figures (or an
ablation) and prints it in the format of
:mod:`repro.analysis.tables`.  ``--scale full`` runs paper-scale
instances (slow); the default ``small`` scale reproduces every shape in
minutes on a laptop.

Observability (see :mod:`repro.obs`):

* ``python -m repro profile <experiment>`` runs an experiment with
  tracing and metrics enabled and prints a phase/counter summary;
* ``--trace FILE`` writes a Chrome-trace JSON of the run (open it in
  Perfetto, https://ui.perfetto.dev);
* ``--metrics FILE`` writes the metrics registry (Prometheus text, or
  JSON when FILE ends in ``.json``);
* ``--report FILE`` (profile only) writes the full
  :class:`~repro.obs.RunRecorder` JSON report;
* ``--journal FILE`` appends a structured JSONL run journal (see
  :mod:`repro.obs.journal`): run start/end, phase completions, plan
  compiles, retries/fallbacks/guard trips, checkpoint writes.

The flags also work on plain subcommands, implicitly enabling
observability for that run.

``--backend {serial,thread,process}`` selects the table2 verification
executor (plan-based for serial/process, so a profiled process run
reports the same deterministic counters as a serial one).

``python -m repro bench {record,compare}`` maintains the benchmark
regression ledger (see :mod:`repro.bench`): ``record`` ingests
``BENCH_*.json`` reports into ``benchmarks/history.jsonl``, ``compare``
checks the newest report against history with per-series tolerances and
exits nonzero on regression.

Parallelism: ``--workers N`` is the single worker-count knob for the
thread and process executors (it sets ``REPRO_NUM_WORKERS``, which
:func:`repro.parallel.resolve_workers` reads everywhere).

Supervised execution (see :mod:`repro.robust.supervisor`):

* ``--supervise`` arms worker heartbeats, the hang/OOM watchdog,
  poison-unit quarantine and the ``process -> thread -> serial``
  degradation ladder on the parallel executors;
* ``--heartbeat-interval SECONDS`` / ``--unit-deadline SECONDS`` /
  ``--memory-budget MIB`` tune it (each implies ``--supervise``).

``profile`` output gains a "supervision health" section whenever a
supervised run absorbed any event (reaps, quarantines, degradations,
memory sheds, breaker trips).

Fault tolerance (see :mod:`repro.robust`):

* ``--seed N`` makes every subcommand's random instances reproducible
  end to end (fault-injection runs, checkpointed resumes);
* ``--inject-faults SPEC`` arms the deterministic fault-injection
  harness (e.g. ``block_error:0.5,block_nan:0.1``) to exercise the
  retry/fallback/guard machinery;
* ``--checkpoint FILE`` (table3, alpha-sweep, cost-ratio) persists each
  completed step atomically; an interrupted sweep rerun with the same
  command resumes instead of restarting.
"""

from __future__ import annotations

import argparse
import os
import sys

from .analysis.tables import fmt_count, format_series, format_table

__all__ = ["main"]


def _seed0(args) -> int:
    return 0 if args.seed is None else args.seed


def _make_checkpoint(args, experiment: str):
    if not args.checkpoint:
        return None
    from .robust import Checkpoint

    return Checkpoint(
        args.checkpoint,
        meta={
            "experiment": experiment,
            "scale": args.scale,
            "p0": args.p0,
            "alpha": args.alpha,
            "seed": args.seed,
        },
    )


def _table1(args) -> str:
    from .experiments import Table1Row, run_table1

    if args.scale == "full":
        structured = [4000, 8000, 16000, 32000, 64000]
        unstructured = [("gaussian", 32000), ("overlapping_gaussians", 48000)]
    elif args.scale == "smoke":
        # tiny instances sized for CI gates: a forced rotation backend
        # builds one operator per far pair on these irregular trees, so
        # the usual 'small' sizes would take minutes per case
        structured = [1000]
        unstructured = [("gaussian", 1500)]
    else:
        structured = [1000, 2000, 4000, 8000]
        unstructured = [("gaussian", 4000), ("overlapping_gaussians", 6000)]
    rows = run_table1(
        structured, unstructured, p0=args.p0, alpha=args.alpha, seed=args.seed
    )
    out = [format_table(Table1Row.HEADERS, [r.as_list() for r in rows],
                        title="Table 1 — error and multipole terms, original vs improved")]
    for r in rows:
        out.append(
            f"  {r.distribution} n={r.n}: terms(new)/terms(orig) = "
            f"{r.terms_new / r.terms_orig:.2f}, bound improvement = "
            f"{r.bound_orig / r.bound_new:.1f}x"
        )
    tol = getattr(args, "tol", None)
    if tol is not None:
        from .experiments import run_variable_order_case

        backend = getattr(args, "translation_backend", "auto")
        # a forced backend is exercised by the cluster plan's M2L
        # pipeline; the target-major plan stores no translations
        vo_mode = "target" if backend == "auto" else "cluster"
        out.append(
            f"variable-order plans at tol={tol:g} (err <= ledger <= tol), "
            f"translation backend {backend}:"
        )
        cases = [("uniform", n) for n in structured] + unstructured
        for dist, n in cases:
            s = None if args.seed is None else args.seed + n
            vo = run_variable_order_case(
                dist, n, tol, alpha=args.alpha, seed=s, mode=vo_mode,
                translation_backend=backend,
            )
            flag = "ok" if vo["contained"] else "VIOLATED"
            out.append(
                f"  {dist} n={n}: err {vo['max_err']:.3e} <= ledger "
                f"{vo['max_ledger']:.3e} <= tol [{flag}], degrees "
                f"{vo['p_min']}..{vo['p_max']}, terms {vo['terms']}"
            )
    return "\n".join(out)


def _fig2(args) -> str:
    from .experiments import run_fig2

    sizes = (
        [2000, 4000, 8000, 16000, 32000]
        if args.scale == "full"
        else [500, 1000, 2000, 4000, 8000]
    )
    data = run_fig2(sizes, p0=args.p0, alpha=args.alpha, seed=args.seed)
    parts = ["Figure 2 — error and computational cost vs n"]
    for name, (xs, ys) in data.series().items():
        parts.append(format_series(name, xs, ys, xlabel="n", ylabel=name))
    return "\n\n".join(parts)


def _table2(args) -> str:
    from .experiments import Table2Row, run_table2

    problems = (
        [("uniform40k", "uniform", 40000), ("non-uniform46k", "gaussian", 46000)]
        if args.scale == "full"
        else [("uniform8k", "uniform", 8000), ("non-uniform10k", "gaussian", 10000)]
    )
    rows = run_table2(
        problems,
        n_procs=32,
        p0=args.p0,
        alpha=args.alpha,
        seed=_seed0(args),
        backend=getattr(args, "backend", None) or "thread",
    )
    return format_table(
        Table2Row.HEADERS,
        [r.as_list() for r in rows],
        title="Table 2 — runtimes and modeled speedups (P=32)",
    )


def _table3(args) -> str:
    from .experiments import Table3Row, run_table3

    res = (14, 7) if args.scale == "full" else (8, 4)
    rows, gmres_info = run_table3(
        p0=args.p0,
        alpha=0.5,
        propeller_res=res[0],
        gripper_res=res[1],
        seed=_seed0(args),
        checkpoint=_make_checkpoint(args, "table3"),
        tol=getattr(args, "tol", None),
    )
    out = [
        format_table(
            Table3Row.HEADERS,
            [r.as_list() for r in rows],
            title="Table 3 — BEM single-iteration errors vs degree-9 reference",
        )
    ]
    for name, info in gmres_info.items():
        out.append(
            f"  {name}: {info['elements']} elements, {info['nodes']} nodes; "
            f"GMRES(10) {'converged' if info['converged'] else 'DID NOT converge'} "
            f"in {info['iterations']} iterations"
        )
    return "\n".join(out)


def _simple(runner, title):
    def run(args) -> str:
        headers, rows = runner()
        return format_table(headers, rows, title=title)

    return run


def _cost_ratio(args) -> str:
    from .experiments import run_cost_ratio

    sizes = [2000, 8000, 32000] if args.scale == "full" else [1000, 4000, 8000]
    headers, rows = run_cost_ratio(
        sizes,
        p0=args.p0,
        alpha=args.alpha,
        seed=_seed0(args),
        checkpoint=_make_checkpoint(args, "cost-ratio"),
    )
    return format_table(headers, rows, title="E6 — Theorem 5 cost-ratio check")


def _alpha(args) -> str:
    from .experiments import run_alpha_sweep

    headers, rows = run_alpha_sweep(
        p0=args.p0, seed=_seed0(args), checkpoint=_make_checkpoint(args, "alpha-sweep")
    )
    return format_table(headers, rows, title="A1 — MAC parameter sweep")


def _leaf(args) -> str:
    from .experiments import run_leaf_sweep

    headers, rows = run_leaf_sweep(p0=args.p0, alpha=args.alpha, seed=_seed0(args))
    return format_table(headers, rows, title="A2 — leaf-capacity sweep")


def _ordering(args) -> str:
    from .experiments import run_ordering_study

    headers, rows = run_ordering_study(alpha=args.alpha, seed=_seed0(args))
    return format_table(headers, rows, title="A3 — block-ordering study")


def _fmm(args) -> str:
    from .experiments import run_fmm_extension

    headers, rows = run_fmm_extension(p0=args.p0, seed=_seed0(args))
    return format_table(headers, rows, title="A4 — FMM degree-schedule extension")


_COMMANDS = {
    "table1": _table1,
    "fig2": _fig2,
    "table2": _table2,
    "table3": _table3,
    "cost-ratio": _cost_ratio,
    "alpha-sweep": _alpha,
    "leaf-sweep": _leaf,
    "ordering": _ordering,
    "fmm": _fmm,
}


def _metrics_format(path: str) -> str:
    return "json" if path.endswith(".json") else "text"


def _profile_summary(report: dict) -> str:
    """Human-readable phase/counter summary of a recorded run."""
    agg: dict[str, list] = {}
    for ev in report["spans"]:
        rec = agg.setdefault(ev["name"], [0, 0.0])
        rec[0] += 1
        rec[1] += ev["dur"]
    lines = [f"== profile: {report['name']} (wall {report['wall_time']:.3f}s) =="]
    lines.append(f"{'span':<28} {'calls':>8} {'total(s)':>10}")
    for name, (calls, total) in sorted(agg.items(), key=lambda kv: -kv[1][1]):
        lines.append(f"{name:<28} {calls:>8} {total:>10.4f}")
    counters = report["metrics"].get("counters", {})
    flat = [
        f"{name}={val}"
        for name, val in sorted(counters.items())
        if not isinstance(val, dict) and not name.startswith("supervisor_")
    ]
    if flat:
        lines.append("counters: " + ", ".join(flat))
    health = _health_report(counters)
    if health:
        lines.append(health)
    degree_section = _degree_histogram_report(
        counters, report["metrics"].get("gauges", {})
    )
    if degree_section:
        lines.append(degree_section)
    hist_lines = []
    for name, val in sorted(report["metrics"].get("histograms", {}).items()):
        if isinstance(val, dict) and "series" in val:
            items = [(f"{name}{{{k}}}", v) for k, v in sorted(val["series"].items())]
        else:
            items = [(name, val)]
        for label, h in items:
            if not h.get("count"):
                continue
            qs = " ".join(
                f"{q}={h[q]:.3g}" for q in ("p50", "p95", "p99") if q in h
            )
            hist_lines.append(f"  {label:<32} n={h['count']:<6} {qs}")
    if hist_lines:
        lines.append("histogram quantiles:")
        lines.extend(hist_lines)
    return "\n".join(lines)


#: supervision counters -> health-report labels, in display order
_HEALTH_ROWS = [
    ("supervisor_heartbeat_misses", "heartbeat misses"),
    ("supervisor_reaps", "workers reaped (hang)"),
    ("supervisor_oom_reaps", "workers reaped (oom)"),
    ("supervisor_worker_deaths", "worker deaths"),
    ("supervisor_quarantines", "units quarantined"),
    ("supervisor_memory_sheds", "memory sheds"),
    ("supervisor_memory_shed_bytes", "bytes shed"),
    ("supervisor_breaker_trips", "breaker trips"),
    ("supervisor_degradations", "backend degradations"),
]


def _health_report(counters: dict) -> str:
    """Supervision health section of the profile summary: one line per
    nonzero ``supervisor_*`` counter, empty string when the run was
    unsupervised or absorbed nothing."""
    rows = [
        (label, counters[name])
        for name, label in _HEALTH_ROWS
        if counters.get(name)
    ]
    extra = sorted(
        name
        for name, val in counters.items()
        if name.startswith("supervisor_")
        and val
        and name not in dict(_HEALTH_ROWS)
    )
    rows.extend((name, counters[name]) for name in extra)
    if not rows:
        return ""
    lines = ["supervision health:"]
    for label, val in rows:
        lines.append(f"  {label:<28} {val}")
    return "\n".join(lines)


def _degree_histogram_report(counters: dict, gauges: dict) -> str:
    """Variable-order section of the profile summary: the per-degree far
    interaction histogram (``plan_degree_bucket_pairs``) with a text
    bar per bucket, plus the compile-time ledger prediction when a
    tolerance-compiled plan ran.  Empty string when no plan recorded
    degree buckets."""
    hist = counters.get("plan_degree_bucket_pairs")
    if not isinstance(hist, dict) or not hist.get("series"):
        return ""
    series = {int(k): v for k, v in hist["series"].items()}
    total = sum(series.values())
    peak = max(series.values())
    lines = [f"degree buckets ({int(total)} far interactions):"]
    for p in sorted(series):
        cnt = series[p]
        bar = "#" * max(1, int(round(24 * cnt / peak)))
        lines.append(f"  p={p:<3} {int(cnt):>10}  {bar}")
    pred = gauges.get("plan_predicted_ledger_max")
    if pred is not None:
        lines.append(f"  predicted ledger max: {pred:.3e}")
    return "\n".join(lines)


def _run_profile(args) -> int:
    """The ``profile`` subcommand: run one experiment fully observed."""
    from .obs import RunRecorder

    rec = RunRecorder(args.target)
    with rec:
        out = _COMMANDS[args.target](args)
    print(out)
    print()
    print(_profile_summary(rec.report()))
    if args.trace:
        rec.write_trace(args.trace)
        print(f"trace written to {args.trace} (open in Perfetto)")
    if args.metrics:
        rec.write_metrics(args.metrics, fmt=_metrics_format(args.metrics))
        print(f"metrics written to {args.metrics}")
    if args.report:
        rec.save(args.report)
        print(f"report written to {args.report}")
    return 0


def _interrupted(args) -> int:
    if args.checkpoint and os.path.exists(args.checkpoint):
        print(
            f"\ninterrupted — completed steps saved to {args.checkpoint}; "
            "rerun the same command to resume",
            file=sys.stderr,
        )
    elif args.checkpoint:
        print(
            "\ninterrupted — no step completed yet, nothing checkpointed",
            file=sys.stderr,
        )
    else:
        print("\ninterrupted", file=sys.stderr)
    return 130


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    argv = list(argv)
    if argv and argv[0] == "bench":
        # the bench ledger has its own record/compare grammar; dispatch
        # before the experiment parser sees (and rejects) it
        from .bench import bench_main

        return bench_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the paper's tables, figures and ablations.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(_COMMANDS) + ["all", "profile"],
        help="which experiment to run, or 'profile' to run one observed",
    )
    parser.add_argument(
        "target",
        nargs="?",
        metavar="TARGET",
        help="experiment to profile (only with the 'profile' subcommand)",
    )
    parser.add_argument(
        "--scale",
        choices=["smoke", "small", "full"],
        default="small",
        help="instance sizes: 'small' (minutes), 'full' (paper scale), or "
        "'smoke' (seconds; table1 shrinks to two tiny instances for CI "
        "gates, other experiments fall back to 'small' sizes)",
    )
    parser.add_argument("--p0", type=int, default=4, help="base multipole degree")
    parser.add_argument("--alpha", type=float, default=0.4, help="MAC parameter")
    parser.add_argument(
        "--tol",
        type=float,
        default=None,
        metavar="TOL",
        help="target far-field accuracy: compile variable-order plans whose "
        "per-interaction degrees keep every target's Theorem-1 error "
        "ledger <= TOL (table1 appends per-case containment checks; "
        "table3 adds a target-tol operator row)",
    )
    parser.add_argument(
        "--translation-backend",
        choices=("dense", "rotation", "auto"),
        default="auto",
        help="multipole translation kernels for compiled plans: 'dense' "
        "(O(p^4) grid correlation), 'rotation' (rotate-translate-rotate, "
        "O(p^3)), or 'auto' (rotation at degrees >= the calibrated "
        "crossover; REPRO_M2L_CROSSOVER overrides)",
    )
    parser.add_argument(
        "--plan-cache",
        metavar="DIR",
        default=None,
        help="persistent content-addressed plan cache: compiled evaluation "
        "plans are stored under DIR keyed by a digest of their inputs and "
        "restored on later runs as zero-copy mmap loads (sets "
        "REPRO_PLAN_CACHE for every engine in this run)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="base seed for every random instance (default: per-instance "
        "historical seeds); makes fault-injection runs and checkpointed "
        "resumes reproducible end to end",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker count for the parallel executors (thread and process "
        "backends); overrides REPRO_NUM_WORKERS",
    )
    parser.add_argument(
        "--backend",
        choices=["serial", "thread", "process"],
        default=None,
        help="table2 verification executor: block-based threads (default), "
        "or a compiled plan run serially / on a forked process pool",
    )
    parser.add_argument(
        "--supervise",
        action="store_true",
        help="arm supervised execution on the parallel executors: worker "
        "heartbeats, hang/OOM watchdogs, poison-unit quarantine, and the "
        "process->thread->serial degradation ladder",
    )
    parser.add_argument(
        "--heartbeat-interval",
        type=float,
        default=None,
        metavar="SECONDS",
        help="supervised workers publish a heartbeat at least this often "
        "(default 0.05; implies --supervise)",
    )
    parser.add_argument(
        "--unit-deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="fixed per-unit hang deadline for the watchdog (default: "
        "adaptive from observed p95 duration; implies --supervise)",
    )
    parser.add_argument(
        "--memory-budget",
        type=float,
        default=None,
        metavar="MIB",
        help="per-process RSS budget: workers above it are reaped, and the "
        "parent sheds compiled-plan memory before tripping the breaker "
        "(implies --supervise)",
    )
    parser.add_argument(
        "--inject-faults",
        metavar="SPEC",
        default=None,
        help="arm the fault-injection harness, e.g. "
        "'block_error:0.5,block_nan:0.1' (see repro.robust.faults)",
    )
    parser.add_argument(
        "--checkpoint",
        metavar="FILE",
        default=None,
        help="atomic JSON checkpoint for resumable sweeps "
        "(table3, alpha-sweep, cost-ratio): rerun the same command to resume",
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        help="write a Chrome-trace JSON of the run (view in Perfetto)",
    )
    parser.add_argument(
        "--metrics",
        metavar="FILE",
        help="write a metrics dump (Prometheus text; JSON if FILE ends in .json)",
    )
    parser.add_argument(
        "--report",
        metavar="FILE",
        help="with 'profile': write the full RunRecorder JSON report",
    )
    parser.add_argument(
        "--journal",
        metavar="FILE",
        help="append a structured JSONL run journal (run start/end, phases, "
        "plan compiles, recovery events, checkpoint writes)",
    )
    args = parser.parse_args(argv)

    if args.backend and args.experiment not in ("table2", "all") and not (
        args.experiment == "profile" and args.target == "table2"
    ):
        parser.error("--backend applies to table2 (directly, via profile, or 'all')")

    if args.tol is not None:
        if args.tol <= 0:
            parser.error(f"--tol must be > 0, got {args.tol}")
        if args.experiment not in ("table1", "table3", "all") and not (
            args.experiment == "profile" and args.target in ("table1", "table3")
        ):
            parser.error(
                "--tol applies to table1 and table3 (directly, via profile, "
                "or 'all')"
            )

    if args.workers is not None:
        if args.workers < 1:
            parser.error(f"--workers must be >= 1, got {args.workers}")
        from .parallel import ENV_WORKERS

        # one knob for every executor: resolve_workers() reads this env
        # var in this process and in forked pool workers alike
        os.environ[ENV_WORKERS] = str(args.workers)

    if args.plan_cache is not None:
        from .perf.store import ENV_PLAN_CACHE

        # like --workers: the env var is the wire format, read by
        # resolve_cache_dir() wherever a plan compiles
        os.environ[ENV_PLAN_CACHE] = args.plan_cache

    supervise = args.supervise or any(
        v is not None
        for v in (args.heartbeat_interval, args.unit_deadline, args.memory_budget)
    )
    if supervise:
        for tune in ("heartbeat_interval", "unit_deadline", "memory_budget"):
            val = getattr(args, tune)
            if val is not None and val <= 0:
                parser.error(f"--{tune.replace('_', '-')} must be > 0, got {val}")
        from .robust import supervisor as _sup

        # like --workers: env vars are the wire format, read by
        # default_config() wherever an executor resolves supervision
        os.environ[_sup.ENV_SUPERVISE] = "1"
        if args.heartbeat_interval is not None:
            os.environ[_sup.ENV_HEARTBEAT_INTERVAL] = str(args.heartbeat_interval)
        if args.unit_deadline is not None:
            os.environ[_sup.ENV_UNIT_DEADLINE] = str(args.unit_deadline)
        if args.memory_budget is not None:
            os.environ[_sup.ENV_MEMORY_BUDGET] = str(args.memory_budget)

    def run() -> int:
        if args.inject_faults is not None:
            from .robust import FaultInjector, parse_fault_spec, set_injector
            from .robust.faults import active_injector

            try:
                rules = parse_fault_spec(args.inject_faults)
            except ValueError as exc:
                parser.error(str(exc))
            previous = active_injector()
            set_injector(FaultInjector(rules, seed=_seed0(args)))
            try:
                return _dispatch(parser, args)
            finally:
                set_injector(previous)
        return _dispatch(parser, args)

    if not args.journal:
        return run()

    from .obs import journal

    code: int | None = None
    with journal.Journal(args.journal) as j:
        previous_journal = journal.set_journal(j)
        j.emit(
            "run_start",
            command=args.experiment,
            target=args.target,
            argv=argv,
            scale=args.scale,
            seed=args.seed,
            workers=args.workers,
            backend=args.backend,
            supervise=supervise,
            inject_faults=args.inject_faults,
        )
        try:
            code = run()
            return code
        finally:
            status = (
                "ok" if code == 0
                else "interrupted" if code == 130
                else "error"
            )
            j.emit("run_end", status=status, exit_code=code)
            journal.set_journal(previous_journal)


def _dispatch(parser, args) -> int:
    checkpointable = {"table3", "alpha-sweep", "cost-ratio"}
    if args.checkpoint and args.experiment not in checkpointable and (
        args.experiment != "profile" or args.target not in checkpointable
    ):
        parser.error(
            "--checkpoint is supported for: " + ", ".join(sorted(checkpointable))
        )

    if args.experiment == "profile":
        if args.target not in _COMMANDS:
            parser.error(
                "profile requires one experiment to run: "
                + ", ".join(sorted(_COMMANDS))
            )
        try:
            return _run_profile(args)
        except KeyboardInterrupt:
            return _interrupted(args)
    if args.target is not None:
        parser.error("TARGET is only valid with the 'profile' subcommand")

    names = sorted(_COMMANDS) if args.experiment == "all" else [args.experiment]
    # --journal implies observability: phase events come from the tracer
    observe = bool(args.trace or args.metrics or args.journal)
    if observe:
        from .obs import metrics as obs_metrics
        from .obs import tracing

        was_enabled = tracing.is_enabled()
        tracing.get_tracer().clear()
        obs_metrics.REGISTRY.reset()
        tracing.enable()
    try:
        for name in names:
            print(_COMMANDS[name](args))
            print()
    except KeyboardInterrupt:
        return _interrupted(args)
    finally:
        if observe:
            tracing.set_enabled(was_enabled)
            if args.trace:
                tracing.get_tracer().export(args.trace)
            if args.metrics:
                if _metrics_format(args.metrics) == "json":
                    obs_metrics.REGISTRY.export_json(args.metrics)
                else:
                    obs_metrics.REGISTRY.export_text(args.metrics)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
