"""Command-line experiment runner: ``python -m repro <experiment>``.

Each subcommand regenerates one of the paper's tables/figures (or an
ablation) and prints it in the format of
:mod:`repro.analysis.tables`.  ``--scale full`` runs paper-scale
instances (slow); the default ``small`` scale reproduces every shape in
minutes on a laptop.
"""

from __future__ import annotations

import argparse
import sys

from .analysis.tables import fmt_count, format_series, format_table

__all__ = ["main"]


def _table1(args) -> str:
    from .experiments import Table1Row, run_table1

    if args.scale == "full":
        structured = [4000, 8000, 16000, 32000, 64000]
        unstructured = [("gaussian", 32000), ("overlapping_gaussians", 48000)]
    else:
        structured = [1000, 2000, 4000, 8000]
        unstructured = [("gaussian", 4000), ("overlapping_gaussians", 6000)]
    rows = run_table1(structured, unstructured, p0=args.p0, alpha=args.alpha)
    out = [format_table(Table1Row.HEADERS, [r.as_list() for r in rows],
                        title="Table 1 — error and multipole terms, original vs improved")]
    for r in rows:
        out.append(
            f"  {r.distribution} n={r.n}: terms(new)/terms(orig) = "
            f"{r.terms_new / r.terms_orig:.2f}, bound improvement = "
            f"{r.bound_orig / r.bound_new:.1f}x"
        )
    return "\n".join(out)


def _fig2(args) -> str:
    from .experiments import run_fig2

    sizes = (
        [2000, 4000, 8000, 16000, 32000]
        if args.scale == "full"
        else [500, 1000, 2000, 4000, 8000]
    )
    data = run_fig2(sizes, p0=args.p0, alpha=args.alpha)
    parts = ["Figure 2 — error and computational cost vs n"]
    for name, (xs, ys) in data.series().items():
        parts.append(format_series(name, xs, ys, xlabel="n", ylabel=name))
    return "\n\n".join(parts)


def _table2(args) -> str:
    from .experiments import Table2Row, run_table2

    problems = (
        [("uniform40k", "uniform", 40000), ("non-uniform46k", "gaussian", 46000)]
        if args.scale == "full"
        else [("uniform8k", "uniform", 8000), ("non-uniform10k", "gaussian", 10000)]
    )
    rows = run_table2(problems, n_procs=32, p0=args.p0, alpha=args.alpha)
    return format_table(
        Table2Row.HEADERS,
        [r.as_list() for r in rows],
        title="Table 2 — runtimes and modeled speedups (P=32)",
    )


def _table3(args) -> str:
    from .experiments import Table3Row, run_table3

    res = (14, 7) if args.scale == "full" else (8, 4)
    rows, gmres_info = run_table3(
        p0=args.p0, alpha=0.5, propeller_res=res[0], gripper_res=res[1]
    )
    out = [
        format_table(
            Table3Row.HEADERS,
            [r.as_list() for r in rows],
            title="Table 3 — BEM single-iteration errors vs degree-9 reference",
        )
    ]
    for name, info in gmres_info.items():
        out.append(
            f"  {name}: {info['elements']} elements, {info['nodes']} nodes; "
            f"GMRES(10) {'converged' if info['converged'] else 'DID NOT converge'} "
            f"in {info['iterations']} iterations"
        )
    return "\n".join(out)


def _simple(runner, title):
    def run(args) -> str:
        headers, rows = runner()
        return format_table(headers, rows, title=title)

    return run


def _cost_ratio(args) -> str:
    from .experiments import run_cost_ratio

    sizes = [2000, 8000, 32000] if args.scale == "full" else [1000, 4000, 8000]
    headers, rows = run_cost_ratio(sizes, p0=args.p0, alpha=args.alpha)
    return format_table(headers, rows, title="E6 — Theorem 5 cost-ratio check")


def _alpha(args) -> str:
    from .experiments import run_alpha_sweep

    headers, rows = run_alpha_sweep(p0=args.p0)
    return format_table(headers, rows, title="A1 — MAC parameter sweep")


def _leaf(args) -> str:
    from .experiments import run_leaf_sweep

    headers, rows = run_leaf_sweep(p0=args.p0, alpha=args.alpha)
    return format_table(headers, rows, title="A2 — leaf-capacity sweep")


def _ordering(args) -> str:
    from .experiments import run_ordering_study

    headers, rows = run_ordering_study(alpha=args.alpha)
    return format_table(headers, rows, title="A3 — block-ordering study")


def _fmm(args) -> str:
    from .experiments import run_fmm_extension

    headers, rows = run_fmm_extension(p0=args.p0)
    return format_table(headers, rows, title="A4 — FMM degree-schedule extension")


_COMMANDS = {
    "table1": _table1,
    "fig2": _fig2,
    "table2": _table2,
    "table3": _table3,
    "cost-ratio": _cost_ratio,
    "alpha-sweep": _alpha,
    "leaf-sweep": _leaf,
    "ordering": _ordering,
    "fmm": _fmm,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the paper's tables, figures and ablations.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(_COMMANDS) + ["all"],
        help="which experiment to run",
    )
    parser.add_argument(
        "--scale",
        choices=["small", "full"],
        default="small",
        help="instance sizes: 'small' (minutes) or 'full' (paper scale)",
    )
    parser.add_argument("--p0", type=int, default=4, help="base multipole degree")
    parser.add_argument("--alpha", type=float, default=0.4, help="MAC parameter")
    args = parser.parse_args(argv)

    names = sorted(_COMMANDS) if args.experiment == "all" else [args.experiment]
    for name in names:
        print(_COMMANDS[name](args))
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
