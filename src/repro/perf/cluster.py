r"""Cluster-cluster compiled plans: dual-traversal M2L into leaf locals.

The target-major :class:`~repro.perf.plan.CompiledPlan` freezes one
evaluation row per (cluster, target) pair — O(pairs · p²) memory, which
at n ≈ 50k outgrows any reasonable budget and forces most far chunks to
spill back to on-the-fly evaluation.  A :class:`ClusterPlan` changes the
*algorithm*, not just the storage: a dual-tree traversal
(:func:`~repro.tree.dualtree.dual_traverse`) decomposes the interaction
into **box-box** pairs under the two-sided MAC
``(a_src + a_tgt)/r <= alpha``, each applied as a single M2L translation
into the target box's *local expansion*; locals are pushed to the
leaves with L2L and evaluated with one frozen L2P GEMM per leaf.  Plan
memory is O(box pairs + n · p²) — index arrays, displacement vectors
and per-target L2P rows; there are **no** per-pair row matrices and
therefore no far spills, ever.

Per accepted pair the combined M2L → L2L → L2P pipeline truncated at
the source degree ``p`` obeys the dual Theorem-1 bound

.. math::

    |\Phi - \Phi_p| \le
    \frac{A}{r - a_s - a_t} \left(\frac{a_s + a_t}{r}\right)^{p+1},

i.e. :func:`~repro.core.bounds.theorem1_bound` with the *combined*
radius ``a_s + a_t`` — the same geometric series argument with the
target offset absorbed into the effective cluster radius.  The plan
accumulates this per-target when compiled with ``accumulate_bounds``
and books it into ``bound_by_level`` under the source box's level, so
:func:`~repro.robust.guards.check_bound_accounting` holds exactly as in
the un-planned path.

The far field is split into ``n_units`` *work units*, each owning a
contiguous range of Morton-sorted targets (whole leaves).  A unit
carries every box pair whose target box overlaps its range and its own
L2L push-down edges, so units are fully independent — the parallel
executors schedule them like target-major far chunks, and a unit's
contribution never touches targets outside its range.  Box pairs whose
target box spans several units are translated once per overlapping unit
(cheap: M2L cost is per *box*, amortized over the unit's targets).

The batched M2L kernel (:func:`batched_m2l`) is a layout-optimized
re-derivation of :func:`~repro.multipole.translations.m2l`: batch-last
grids, index-array packing instead of per-(n, m) Python loops, and a
``complex64`` accumulation path (relative rounding ~1e-7 — three orders
below the Theorem-1 truncation ledger it is accounted against).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.bounds import theorem1_bound
from ..core.degree import select_pair_degrees
from ..core.treecode import (
    _NEAR_BUDGET,
    Treecode,
    TreecodeResult,
    TreecodeStats,
    record_eval_metrics,
)
from ..multipole.expansion import m_weights
from ..multipole.gradient import _angular_tables
from ..multipole.harmonics import (
    cart_to_sph,
    degree_of_index,
    ncoef,
    power_table,
    sph_harmonics,
    term_count,
)
from ..multipole.rotations import RotationCache, direction_keys, rotate_packed
from ..multipole.translations import (
    _iphase_grid,
    _sq_grid,
    _valid_mask,
    axial_m2l,
    l2l,
)
from ..obs.metrics import REGISTRY
from ..obs.tracing import is_enabled, span, stopwatch
from ..parallel.partition import (
    ROTATION_CROSSOVER_P,
    resolve_backend,
    translation_cost,
)
from ..tree.dualtree import dual_traverse
from .plan import (
    DEFAULT_MEMORY_BUDGET,
    CompiledPlan,
    _build_p2m_storage,
    _gather_abs,
    _gather_coeffs,
    _near_kernel,
    _sph_to_cart,
)

__all__ = ["ClusterPlan", "batched_m2l"]

#: Rows per inner batched-M2L pass — bounds the transient full-grid
#: memory (at p=8 the ``shat`` grid is ~0.5 kB/row in complex64).
_M2L_CHUNK = 32768

#: Default number of far work units (parallelism granularity).  Each
#: unit re-translates the box pairs that straddle its target range, so
#: more units mean more duplicated M2L work; 8 keeps the duplication a
#: few percent while giving the executors enough units to schedule.
_DEFAULT_UNITS = 8

#: Hard degree ceiling of the batched M2L kernel: ``sqrt((4p)!)``
#: itself overflows float64 once ``4p > 170``.  Variable-order degree
#: selection is capped here (and raises, never clamps, when a budget
#: would need more).
_M2L_MAX_P = 42

#: log2 headroom kept below the float32 overflow threshold (2^128) when
#: deciding whether a group's scaled singular grid fits the complex64
#: M2L path; the margin absorbs the multipole-coefficient magnitude the
#: grid is multiplied with during accumulation.
_M2L_C64_MARGIN_BITS = 110.0


def _m2l_c64_safe(p: int, rho_min: float) -> bool:
    """Whether the ``complex64`` M2L path can represent degree ``p`` at
    minimum pair center distance ``rho_min``.

    The largest scaled singular-grid entry is ``sqrt((2n)!) /
    rho^(n+1)`` at order ``n <= 2p``; this checks its log2 against the
    float32 exponent range minus :data:`_M2L_C64_MARGIN_BITS` headroom.
    """
    if rho_min <= 0.0:
        return False
    lg_rho = np.log2(rho_min)
    lf = 0.0  # log2((2n)!) accumulated incrementally
    worst = -np.inf
    for n in range(1, 2 * p + 1):
        lf += np.log2(2 * n - 1) + np.log2(2 * n)
        worst = max(worst, 0.5 * lf - (n + 1) * lg_rho)
    return worst < _M2L_C64_MARGIN_BITS


def _pack_idx(p: int) -> tuple[np.ndarray, np.ndarray]:
    """Packed-index → (n, m>=0) coordinate arrays for degree ``p``."""
    ns, ms = degree_of_index(p)
    return np.asarray(ns), np.asarray(ms)


def _singular_grid(d_u: np.ndarray, p: int, dtype) -> np.ndarray:
    """Scaled singular grid ``(2p+1, 4p+1, len(d_u))`` of displacement
    rows ``d_u``, batch-last — the translation operator half of
    :func:`batched_m2l`, a pure elementwise function of each row."""
    ptot = 2 * p
    rdt = np.float32 if dtype == np.complex64 else np.float64
    rho, ct, phi = cart_to_sph(d_u)
    Yt = np.ascontiguousarray(sph_harmonics(ct, phi, ptot).T).astype(dtype)
    npow = (
        (1.0 / rho)[None, :] ** (np.arange(ptot + 1)[:, None] + 1)
    ).astype(rdt)
    scale_t = (_iphase_grid(ptot, +1) * _sq_grid(ptot)) * _valid_mask(ptot)
    nt, mt = _pack_idx(ptot)
    shat = np.zeros((ptot + 1, 2 * ptot + 1, d_u.shape[0]), dtype=dtype)
    shat[nt, ptot + mt] = (
        Yt * scale_t[nt, ptot + mt].astype(dtype)[:, None] * npow[nt]
    )
    negt = mt > 0
    shat[nt[negt], ptot - mt[negt]] = (
        np.conj(Yt[negt])
        * scale_t[nt[negt], ptot - mt[negt]].astype(dtype)[:, None]
        * npow[nt[negt]]
    )
    return shat


def _dedup_rows(d: np.ndarray) -> tuple[np.ndarray, np.ndarray | None]:
    """Displacement dedup: ``(unique_rows, inverse)`` when at least half
    the rows are duplicates, ``(d, None)`` otherwise."""
    if d.shape[0] >= 16:
        uq, uinv = np.unique(d, axis=0, return_inverse=True)
        if 2 * uq.shape[0] <= d.shape[0]:
            return uq, uinv
    return d, None


def batched_m2l(
    C: np.ndarray, d: np.ndarray, p: int, dtype=np.complex64, grid=None
) -> np.ndarray:
    """Batched same-degree M2L: ``(B, ncoef(p))`` multipoles × ``(B, 3)``
    displacements → ``(B, ncoef(p))`` locals, or ``(B, k, ncoef(p))``
    multi-RHS multipoles → ``(B, k, ncoef(p))`` locals.

    Numerically equivalent to :func:`repro.multipole.translations.m2l`
    with ``p_src = p_loc = p`` (to ~1e-7 relative in the default
    ``complex64`` path, exact structure in ``complex128``), but an order
    of magnitude faster on large batches: batch-last memory layout, the
    packed↔full grid conversions done with index arrays instead of
    per-order loops, and the translation accumulated in reduced
    precision.  A multi-RHS batch shares each pair's singular grid (and
    the displacement dedup/gather) across its ``k`` columns — the
    per-pair translation cost is the only part that scales with ``k``.

    ``grid`` optionally supplies a precomputed ``(shat_u, inv)`` pair —
    a :func:`_singular_grid` of deduplicated rows plus the inverse map
    selecting this call's rows (``inv=None``: ``shat_u`` is already
    row-aligned with ``d``). Chunked callers build the grid once per
    group; the gathered grid is bitwise the directly-built one.
    """
    kb = None
    if C.ndim == 3:
        kb = C.shape[1]
        C = C.reshape(C.shape[0] * kb, C.shape[2])
    B = d.shape[0]  # pairs: sizes the singular grid and its dedup
    R = C.shape[0]  # coefficient rows (= B * kb when batched)
    ptot = 2 * p
    # Uniform grids emit many identical displacement rows; the singular
    # grid (by far the largest per-row build cost) is a pure elementwise
    # function of its row, so computing it once per distinct row and
    # gathering is bitwise-identical to the direct build.
    if grid is None:
        d_u, inv = _dedup_rows(d)
        shat = _singular_grid(d_u, p, dtype)
    else:
        shat, inv = grid
    if inv is not None:
        shat = np.ascontiguousarray(shat[:, :, inv])
    ns, ms = _pack_idx(p)
    # rescaled multipole grid, batch-last, with conjugate mirror
    scale_s = (
        (_iphase_grid(p, -1) / _sq_grid(p))
        * ((-1.0) ** np.arange(p + 1))[:, None]
        * _valid_mask(p)
    )
    Ct = np.ascontiguousarray(C.T).astype(dtype)
    mhat = np.zeros((p + 1, 2 * p + 1, R), dtype=dtype)
    mhat[ns, p + ms] = Ct * scale_s[ns, p + ms].astype(dtype)[:, None]
    neg = ms > 0
    mhat[ns[neg], p - ms[neg]] = (
        np.conj(Ct[neg]) * scale_s[ns[neg], p - ms[neg]].astype(dtype)[:, None]
    )
    # translation: correlation of the two grids, batch-last.  Only the
    # m >= 0 half of the local grid is accumulated — the packed layout
    # never reads m < 0 (conjugate symmetry), which halves the work.
    # Multi-RHS batches broadcast the pair-indexed singular slice over
    # the trailing column axis, so each element sees the identical
    # scalar multiply-add as the single-vector path (bitwise for k=1).
    Lhat = np.zeros((p + 1, p + 1, R), dtype=dtype)
    mh = mhat if kb is None else mhat.reshape(p + 1, 2 * p + 1, B, kb)
    Lh = Lhat if kb is None else Lhat.reshape(p + 1, p + 1, B, kb)
    for n in range(p + 1):
        for m in range(-n, n + 1):
            a = mh[n, m + p]
            sl = shat[n : n + p + 1, m - p + ptot : m + ptot + 1][:, ::-1]
            Lh += a[None, None] * (sl if kb is None else sl[..., None])
    scale_l = (_iphase_grid(p, -1) / _sq_grid(p)) * _valid_mask(p)
    out = Lhat[ns, ms] * scale_l[ns, p + ms].astype(dtype)[:, None]
    out = out.T
    return out if kb is None else out.reshape(B, kb, -1)


def _batched_m2l_chunked(C, d, p, dtype) -> np.ndarray:
    """Memory-bounded wrapper around :func:`batched_m2l`.

    Batch chunks are sized to ``_M2L_CHUNK / 2`` coefficient *rows*
    (``_M2L_CHUNK / (2k)`` pairs) — measured fastest on the correlation
    loop's working set. When the group needs several chunks and its
    displacements dedup, the grid is built once here and every chunk
    gathers its rows — bitwise-identical to per-chunk builds (the grid
    is a pure per-row function)."""
    B = C.shape[0]
    kb = C.shape[1] if C.ndim == 3 else None
    chunk = _M2L_CHUNK if kb is None else max(1, _M2L_CHUNK // (2 * kb))
    if B <= chunk:
        return batched_m2l(C, d, p, dtype)
    out = np.empty(C.shape[:-1] + (ncoef(p),), dtype=dtype)
    d_u, inv = _dedup_rows(d)
    shat_u = _singular_grid(d_u, p, dtype) if inv is not None else None
    for lo in range(0, B, chunk):
        hi = min(lo + chunk, B)
        grid = None if shat_u is None else (shat_u, inv[lo:hi])
        out[lo:hi] = batched_m2l(C[lo:hi], d[lo:hi], p, dtype, grid=grid)
    return out


@dataclass
class _FarGroup:
    """Box pairs of one source degree inside one work unit, sorted by
    target box (``add.reduceat`` segments)."""

    p: int
    rows: np.ndarray  #: coefficient row per pair within its storage group
    sP: np.ndarray  #: storage degree per pair (``ctx`` key; >= ``p``)
    d: np.ndarray  #: (B, 3) source center - target center
    seg: np.ndarray  #: reduceat segment starts
    utgt: np.ndarray  #: target box id per segment
    bgeom: np.ndarray | None  #: dual Theorem-1 factor at unit |q|
    levels: np.ndarray | None  #: source box level per pair
    cnt_t: np.ndarray | None  #: unit targets under the target box
    c64_ok: bool = True  #: complex64 M2L safe at this degree/distance
    #: rotation-backend schedule ``(perm, starts, stops, op_ids, rho)``:
    #: ``perm`` sorts the pairs by rotation-operator id, ``starts``/
    #: ``stops`` delimit the equal-direction runs, ``rho`` is the center
    #: distance per sorted pair.  ``None`` selects the dense kernel.
    rot: tuple | None = None


@dataclass
class _L2PGroup:
    """Frozen local-evaluation rows for the unit leaves of one degree."""

    p: int
    tidx: np.ndarray  #: target indices (Morton-sorted space)
    leaf_of: np.ndarray  #: leaf node id per target (locals gather)
    Ure: np.ndarray  #: w·Re(Y)·r^n rows
    Uim: np.ndarray
    grad: tuple | None  #: (A, B, D, st, ct, cp, sp) gradient rows


@dataclass
class _FarUnit:
    """One independent far-field work unit: a contiguous target range
    with its box pairs, L2L push-down edges and L2P rows."""

    tlo: int
    thi: int
    n_pairs: int
    groups: list = field(default_factory=list)
    push_par: list = field(default_factory=list)  #: per level: parents
    push_chi: list = field(default_factory=list)  #: per level: children
    push_shift: list = field(default_factory=list)
    l2p: list = field(default_factory=list)


@dataclass
class _ClusterNearBlock:
    """Dense near block of one target leaf (or a row slice of it)
    against the concatenated particles of its near-listed source
    leaves."""

    tlo: int
    thi: int
    sidx: np.ndarray  #: source particle indices (Morton-sorted space)
    n_excluded: int
    excl: np.ndarray | None  #: per-target excluded column, -1 = none
    K: np.ndarray | None = None  #: (t, s) 1/r kernel (None = spilled)
    D3: np.ndarray | None = None  #: (t, s, 3) gradient kernel


class ClusterPlan(CompiledPlan):
    """Dual-traversal cluster-cluster evaluation plan.

    Compile with :func:`repro.perf.plan.compile_plan` (``mode="cluster"``)
    or :meth:`repro.core.treecode.Treecode.compile_plan`; the interface
    — :meth:`execute`, :meth:`form_coefficients` / :meth:`execute_unit`
    for the parallel executors, :meth:`finalize` — is that of
    :class:`~repro.perf.plan.CompiledPlan`.  Cluster plans always
    evaluate at the treecode's own points (``self_targets``).

    ``n_far_spilled`` is always 0: the far field stores no row matrices,
    only index/displacement arrays and the per-target L2P rows, all
    resident.  Near blocks are budget-gated exactly like the
    target-major plan.
    """

    def __init__(
        self,
        tc: Treecode,
        tgt: np.ndarray,
        self_targets: bool = True,
        compute: str = "potential",
        accumulate_bounds: bool = False,
        memory_budget: int = DEFAULT_MEMORY_BUDGET,
        rows_dtype=np.float64,
        n_units: int | None = None,
        tol: float | None = None,
        translation_backend: str = "auto",
    ) -> None:
        if not self_targets:
            raise ValueError(
                "cluster plans evaluate at the treecode's own points; "
                "self_targets must be True"
            )
        if n_units is not None and n_units < 1:
            raise ValueError(f"n_units must be >= 1, got {n_units}")
        self._n_units_req = n_units
        super().__init__(
            tc,
            None,
            tgt,
            self_targets=True,
            compute=compute,
            accumulate_bounds=accumulate_bounds,
            memory_budget=memory_budget,
            rows_dtype=rows_dtype,
            tol=tol,
            translation_backend=translation_backend,
        )

    # -- compilation ---------------------------------------------------
    def _compile(self, lists) -> None:  # noqa: ARG002 - dual walk, no lists
        tc, tree, tgt = self.tc, self.tc.tree, self.tgt
        grad_wanted = self.compute == "both"
        want_bounds = self.accumulate_bounds
        mem = 0
        budget_used = 0
        stats = TreecodeStats(n_targets=int(tgt.shape[0]))
        # complex64 M2L accumulation: ~1e-7 relative rounding, accounted
        # against a truncation ledger orders of magnitude larger.  That
        # accounting only holds for fixed-degree plans: a tol-compiled
        # plan promises error <= ledger <= tol, and the rounding noise
        # (relative to the potential's magnitude, not the ledger's)
        # breaks the chain once tol approaches 1e-6 — so variable-order
        # plans always translate in complex128.  Groups whose scaled
        # singular grid would overflow float32 also fall back per group
        # (see _m2l_c64_safe).
        self._m2l_dtype = np.complex128 if self.tol is not None else np.complex64
        self._tol_p_max = min(self._tol_p_max, _M2L_MAX_P)
        #: rotation operators shared by every unit's rotation-backend
        #: groups, deduplicated by quantized unit direction (uniform
        #: grids repeat the same few hundred well-separated offsets)
        self._rot_cache = RotationCache()

        pairs = dual_traverse(tree, tc.alpha)
        fs, ft = pairs.far_src, pairs.far_tgt
        r_pair = pairs.far_r
        if not fs.size:
            p_pair = np.empty(0, dtype=np.int64)
        elif self.tol is None:
            p_pair = tc.p_eval[fs]
        else:
            p_pair = self._select_pair_degrees(tree, fs, ft, r_pair)
        self.n_box_pairs = pairs.n_far
        self.n_near_pairs = pairs.n_near
        #: per-box-pair degree in dual-traversal emission order
        self.pair_degrees = np.asarray(p_pair, dtype=np.int64)

        # ---- frozen stats from the global pair decomposition ----------
        # (per-unit duplication of straddling pairs must not inflate
        # the interaction counts)
        stats.n_pc_interactions = int(fs.size)
        if fs.size:
            for p in np.unique(p_pair):
                k = int(np.count_nonzero(p_pair == p))
                stats.interactions_by_degree[int(p)] = k
                stats.n_terms += k * term_count(int(p))
            for L, c in enumerate(np.bincount(tree.level[fs])):
                if c:
                    stats.interactions_by_level[int(L)] = int(c)

        # ---- P2M storage: one operator per source node at its max
        # pair degree; lower-degree pairs slice leading coefficients ----
        self._p2m_groups = []
        self._rowmap: dict[int, np.ndarray] = {}
        self._Psrc = np.full(tree.n_nodes, -1, dtype=np.int64)
        self._srow = np.full(tree.n_nodes, -1, dtype=np.int64)
        if fs.size:
            self._Psrc, self._srow, self._p2m_groups, self._rowmap, p2m_mem = (
                _build_p2m_storage(tree, fs, p_pair)
            )
            mem += p2m_mem

        # ---- local degree per box: max over incoming pairs, pushed
        # down so every descendant can absorb inherited locals ---------
        Ploc = np.full(tree.n_nodes, -1, dtype=np.int64)
        if fs.size:
            np.maximum.at(Ploc, ft, p_pair)
            for dlev in range(1, tree.height):
                # basic slices: ``out=`` on a fancy-indexed view would
                # write into a temporary and drop the push-down
                lo, hi = tree.level_ranges[dlev]
                np.maximum(
                    Ploc[lo:hi], Ploc[tree.parent[lo:hi]], out=Ploc[lo:hi]
                )
        self._Pmax = int(Ploc.max()) if fs.size else 0

        # ---- partition Morton-sorted targets into far work units ------
        leaves = tree.leaf_ids()
        leaves = leaves[np.argsort(tree.start[leaves])]
        n_leaves = int(leaves.size)
        self._units: list[_FarUnit] = []
        if fs.size:
            # balance on estimated M2L work per leaf — (p+1)^4 dense,
            # (p+1)^3 rotation, per the selected backend — at its target
            # box, inherited by every leaf below
            wk = np.zeros(tree.n_nodes)
            np.add.at(
                wk, ft, translation_cost(p_pair, self.translation_backend)
            )
            for dlev in range(1, tree.height):
                lo, hi = tree.level_ranges[dlev]
                ids = np.arange(lo, hi)
                wk[ids] += wk[tree.parent[ids]]
            cumw = np.cumsum(wk[leaves] + 1.0)
            req = self._n_units_req or _DEFAULT_UNITS
            req = max(1, min(req, n_leaves))
            ends = np.searchsorted(
                cumw, cumw[-1] * np.arange(1, req + 1) / req, side="left"
            )
            ends = np.unique(np.minimum(ends + 1, n_leaves))
            starts_u = np.concatenate([[0], ends[:-1]])
            bs_all, be_all = tree.start[ft], tree.end[ft]
            for ls, le in zip(starts_u, ends):
                mem += self._compile_far_unit(
                    leaves[ls:le],
                    fs,
                    ft,
                    p_pair,
                    r_pair,
                    bs_all,
                    be_all,
                    Ploc,
                    grad_wanted,
                    want_bounds,
                )
            mem += self._rot_cache.nbytes

        # ---- near field: dense blocks per target leaf -----------------
        self._near_blocks: list[_ClusterNearBlock] = []
        nsrc, ntgt = pairs.near_src, pairs.near_tgt
        if nsrc.size:
            cs = tree.end[nsrc] - tree.start[nsrc]
            ctn = tree.end[ntgt] - tree.start[ntgt]
            stats.n_pp_pairs = int(np.sum(cs * ctn)) - int(
                np.sum(np.where(nsrc == ntgt, ctn, 0))
            )
            order = np.lexsort((nsrc, ntgt))
            nsrc, ntgt = nsrc[order], ntgt[order]
            utl, tstarts = np.unique(ntgt, return_index=True)
            bnds = list(tstarts) + [nsrc.size]
            for leaf, lo, hi in zip(utl, bnds[:-1], bnds[1:]):
                nb_mem, nb_budget = self._compile_near_leaf(
                    int(leaf), nsrc[lo:hi], grad_wanted, budget_used
                )
                mem += nb_mem
                budget_used = nb_budget

        self._static_stats = stats
        self.memory_bytes = int(mem)
        self.n_far_precomputed = sum(len(u.groups) for u in self._units)
        self.n_far_spilled = 0
        if is_enabled():
            # degree at/above which this plan's groups rotate: 0 when
            # forced on, past the degree cap when forced off
            cross = {
                "rotation": 0,
                "auto": ROTATION_CROSSOVER_P,
                "dense": _M2L_MAX_P + 1,
            }[self.translation_backend]
            REGISTRY.gauge(
                "plan_m2l_crossover_p",
                "degree threshold selecting the rotation M2L backend in "
                "the most recent cluster plan",
            ).set(cross)
            REGISTRY.gauge(
                "plan_m2l_rotation_dirs",
                "distinct quantized rotation directions cached by the "
                "most recent cluster plan",
            ).set(len(self._rot_cache))
        self.n_near_precomputed = sum(
            1 for b in self._near_blocks if b.K is not None
        )
        self.n_near_spilled = len(self._near_blocks) - self.n_near_precomputed

    def _select_pair_degrees(self, tree, fs, ft, r_pair) -> np.ndarray:
        """Variable order: per-pair degrees from the dual-MAC bound.

        Each particle's far-field ledger sums the bounds of the pairs on
        its leaf's ancestor path, so the budget of a pair divides ``tol``
        by the *most loaded leaf* beneath its target box: the pair-count
        along any root-to-leaf path (``cnt_down``), maximized over the
        box's descendant leaves (``maxcnt``).  Every leaf then satisfies
        ``sum of bounds <= cnt_down * (tol / maxcnt) <= tol``.
        """
        incoming = np.bincount(ft, minlength=tree.n_nodes).astype(np.float64)
        cnt_down = incoming
        for dlev in range(1, tree.height):
            lo, hi = tree.level_ranges[dlev]
            ids = np.arange(lo, hi)
            cnt_down[ids] += cnt_down[tree.parent[ids]]
        maxcnt = cnt_down.copy()
        for dlev in range(tree.height - 1, 0, -1):
            lo, hi = tree.level_ranges[dlev]
            ids = np.arange(lo, hi)
            np.maximum.at(maxcnt, tree.parent[ids], maxcnt[ids])
        A = tree.abs_charge[fs]
        asum = tree.radius[fs] + tree.radius[ft]
        p_pair = select_pair_degrees(
            A,
            asum,
            r_pair,
            self.tol / maxcnt[ft],
            p_max=self._tol_p_max,
            nodes=fs,
        )
        # predicted ledger: per-box bound sums pushed down to the leaves
        bsum = np.zeros(tree.n_nodes)
        np.add.at(bsum, ft, theorem1_bound(A, asum, r_pair, p_pair))
        for dlev in range(1, tree.height):
            lo, hi = tree.level_ranges[dlev]
            ids = np.arange(lo, hi)
            bsum[ids] += bsum[tree.parent[ids]]
        leaves = tree.leaf_ids()
        occupied = tree.end[leaves] > tree.start[leaves]
        if np.any(occupied):
            self.predicted_ledger_max = float(bsum[leaves[occupied]].max())
        return p_pair

    def _compile_far_unit(
        self, uleaves, fs, ft, p_pair, r_pair, bs_all, be_all, Ploc,
        grad_wanted, want_bounds,
    ) -> int:
        """Build one far work unit over the contiguous leaf run
        ``uleaves``; returns materialized bytes."""
        tree, tgt = self.tc.tree, self.tgt
        tlo = int(tree.start[uleaves[0]])
        thi = int(tree.end[uleaves[-1]])
        mem = 0

        # pairs whose target box overlaps the unit's particle range
        sel = np.nonzero((bs_all < thi) & (be_all > tlo))[0]
        if sel.size == 0:
            return 0
        ps_u, src_u, tgt_u = p_pair[sel], fs[sel], ft[sel]
        ordu = np.lexsort((tgt_u, ps_u))
        ps_u, src_u, tgt_u = ps_u[ordu], src_u[ordu], tgt_u[ordu]
        bs_u, be_u = bs_all[sel][ordu], be_all[sel][ordu]
        r_u = r_pair[sel][ordu]
        unit = _FarUnit(tlo=tlo, thi=thi, n_pairs=int(sel.size))

        uniqp, pstarts = np.unique(ps_u, return_index=True)
        bnds = list(pstarts) + [ps_u.size]
        for p, lo, hi in zip(uniqp, bnds[:-1], bnds[1:]):
            p = int(p)
            srcs, tgts = src_u[lo:hi], tgt_u[lo:hi]
            rows = self._srow[srcs]
            d = tree.center_exp[srcs] - tree.center_exp[tgts]
            utgt, seg = np.unique(tgts, return_index=True)
            rot = None
            want = resolve_backend(self.translation_backend, p)
            if want == "rotation" and self.translation_backend == "auto":
                # the rotation pipeline only pays when operators are
                # shared: geometric-center trees repeat a few hundred
                # directions, but abs_com-centered boxes give (nearly)
                # one direction per pair, and building + caching an
                # operator per pair costs more than it saves — gate on
                # the dedup ratio before committing to any builds
                rho = np.sqrt(np.einsum("ij,ij->i", d, d))
                keys = direction_keys(d / rho[:, None])
                if 4 * np.unique(keys, axis=0).shape[0] > keys.shape[0]:
                    want = "dense"
            if want == "rotation":
                rho = np.sqrt(np.einsum("ij,ij->i", d, d))
                ids = self._rot_cache.ids_for(d / rho[:, None], p)
                perm = np.argsort(ids, kind="stable")
                ids_sorted = ids[perm]
                rbnd = np.flatnonzero(np.diff(ids_sorted)) + 1
                rstarts = np.concatenate([[0], rbnd])
                rstops = np.concatenate([rbnd, [ids_sorted.size]])
                rot = (perm, rstarts, rstops, ids_sorted[rstarts], rho[perm])
                mem += perm.nbytes + rho.nbytes + 3 * rstarts.nbytes
            bgeom = levels = cnt_t = None
            if want_bounds:
                r = r_u[lo:hi]
                asum = tree.radius[srcs] + tree.radius[tgts]
                bgeom = theorem1_bound(1.0, asum, r, p)
                levels = tree.level[srcs]
                cnt_t = np.minimum(be_u[lo:hi], thi) - np.maximum(
                    bs_u[lo:hi], tlo
                )
            g = _FarGroup(
                p=p, rows=rows, sP=self._Psrc[srcs], d=d, seg=seg,
                utgt=utgt, bgeom=bgeom, levels=levels, cnt_t=cnt_t,
                c64_ok=_m2l_c64_safe(p, float(r_u[lo:hi].min())),
                rot=rot,
            )
            unit.groups.append(g)
            mem += rows.nbytes + g.sP.nbytes + d.nbytes + seg.nbytes
            mem += utgt.nbytes
            if want_bounds:
                mem += bgeom.nbytes + levels.nbytes + cnt_t.nbytes

        # L2L push-down: edges from boxes holding local content down to
        # the unit's leaves (level order, so parents are final before
        # their children are filled)
        need = np.zeros(tree.n_nodes, dtype=bool)
        need[uleaves] = True
        for dlev in range(tree.height - 1, 0, -1):
            lo, hi = tree.level_ranges[dlev]
            ids = np.arange(lo, hi)
            need[tree.parent[ids[need[ids]]]] = True
        content = np.zeros(tree.n_nodes, dtype=bool)
        content[tgt_u] = True
        for dlev in range(1, tree.height):
            lo, hi = tree.level_ranges[dlev]
            ids = np.arange(lo, hi)
            chi = ids[need[ids] & content[tree.parent[ids]]]
            if chi.size:
                par = tree.parent[chi]
                shift = tree.center_exp[chi] - tree.center_exp[par]
                unit.push_par.append(par)
                unit.push_chi.append(chi)
                unit.push_shift.append(shift)
                content[chi] = True
                mem += par.nbytes + chi.nbytes + shift.nbytes

        # frozen L2P rows per leaf degree
        lleaves = uleaves[content[uleaves]]
        pl = Ploc[lleaves]
        cdt = np.complex64 if self.rows_dtype == np.float32 else np.complex128
        for pd in np.unique(pl):
            pd = int(pd)
            sel_l = lleaves[pl == pd]
            cnts = (tree.end[sel_l] - tree.start[sel_l]).astype(np.int64)
            cum = np.concatenate([[0], np.cumsum(cnts)])
            tidx = (
                np.arange(int(cum[-1]))
                - np.repeat(cum[:-1], cnts)
                + np.repeat(tree.start[sel_l], cnts)
            )
            leaf_of = np.repeat(sel_l, cnts)
            rel = tgt[tidx] - tree.center_exp[leaf_of]
            r, ctheta, phi = cart_to_sph(rel)
            ns, ms = degree_of_index(pd)
            w = m_weights(pd)
            r_safe = np.maximum(r, 1e-300)
            rpow = power_table(r_safe, pd)[:, ns]
            grad_rows = None
            if grad_wanted:
                Y, dY, _, _ = _angular_tables(ctheta, phi, pd)
                st = np.sqrt(np.maximum(0.0, 1.0 - ctheta * ctheta))
                st_safe = np.maximum(st, 1e-12)
                rinv = 1.0 / r_safe
                A = (Y * rpow * ns * w * rinv[:, None]).astype(cdt)
                Bm = (dY * rpow * w * rinv[:, None]).astype(cdt)
                D = (Y * rpow * (ms * w) * (rinv / st_safe)[:, None]).astype(
                    cdt
                )
                grad_rows = (A, Bm, D, st, ctheta, np.cos(phi), np.sin(phi))
                mem += 3 * A.nbytes + 4 * st.nbytes
            else:
                Y = sph_harmonics(ctheta, phi, pd)
            Ure = (Y.real * rpow * w).astype(self.rows_dtype)
            Uim = (Y.imag * rpow * w).astype(self.rows_dtype)
            mem += Ure.nbytes + Uim.nbytes + tidx.nbytes + leaf_of.nbytes
            unit.l2p.append(
                _L2PGroup(
                    p=pd, tidx=tidx, leaf_of=leaf_of, Ure=Ure, Uim=Uim,
                    grad=grad_rows,
                )
            )
        self._units.append(unit)
        return mem

    def _compile_near_leaf(
        self, leaf: int, srcs: np.ndarray, grad_wanted: bool, budget_used: int
    ) -> tuple[int, int]:
        """Dense near blocks for one target leaf against its near-listed
        source leaves; returns (bytes, updated budget_used)."""
        tree, tgt = self.tc.tree, self.tgt
        s, e = int(tree.start[leaf]), int(tree.end[leaf])
        if e == s:
            return 0, budget_used
        srcs = np.sort(srcs)
        cnts = (tree.end[srcs] - tree.start[srcs]).astype(np.int64)
        cum = np.concatenate([[0], np.cumsum(cnts)])
        sidx = (
            np.arange(int(cum[-1]))
            - np.repeat(cum[:-1], cnts)
            + np.repeat(tree.start[srcs], cnts)
        )
        # self exclusion: the target leaf appears among its own sources
        pos = np.nonzero(srcs == leaf)[0]
        if pos.size:
            off = int(cum[pos[0]])
            excl_full = off + np.arange(e - s)
        else:
            excl_full = None
        mem = sidx.nbytes
        step = max(1, _NEAR_BUDGET // max(1, int(sidx.size)))
        for lo in range(0, e - s, step):
            hi = min(lo + step, e - s)
            excl = excl_full[lo:hi] if excl_full is not None else None
            nb = _ClusterNearBlock(
                tlo=s + lo,
                thi=s + hi,
                sidx=sidx,
                n_excluded=(hi - lo) if excl is not None else 0,
                excl=excl,
            )
            cost = (hi - lo) * sidx.size * 8
            if grad_wanted:
                cost += (hi - lo) * sidx.size * 3 * 8
            if budget_used + cost <= self.memory_budget:
                K, dvec, r2 = _near_kernel(
                    tgt[s + lo : s + hi],
                    tree.points[sidx],
                    excl,
                    self.tc.softening,
                )
                nb.K = K
                if grad_wanted:
                    with np.errstate(divide="ignore"):
                        wg = 1.0 / (r2 * np.sqrt(r2))
                    wg[r2 == 0.0] = 0.0
                    if excl is not None:
                        rws = np.nonzero(excl >= 0)[0]
                        wg[rws, excl[rws]] = 0.0
                    nb.D3 = wg[..., None] * dvec
                budget_used += cost
                mem += cost
            self._near_blocks.append(nb)
        return mem, budget_used

    # -- execution -----------------------------------------------------
    @property
    def n_units(self) -> int:
        return len(self._units) + len(self._near_blocks)

    def _rotated_m2l(self, C, g: _FarGroup, dtype) -> np.ndarray:
        """Rotation-accelerated group M2L (O((p+1)^3) per pair).

        Pairs are pre-sorted into equal-direction runs at compile time
        (``g.rot``); each run rotates its multipoles axial, applies the
        m-conserving translation, and rotates back with one shared
        operator.  Rows return in the group's target-sorted order so the
        caller's ``add.reduceat`` segments apply unchanged.

        Batched ``(B, k, nc)`` coefficients fold the batch axis into the
        row axis — each pair expands to ``k`` consecutive rows, which
        preserves the equal-direction runs, so every rotation/axial
        kernel still sees one contiguous row block per operator.
        """
        perm, starts, stops, kids, rho = g.rot
        p = g.p
        kb = None
        if C.ndim == 3:
            kb = C.shape[1]
            C = C.reshape(C.shape[0] * kb, C.shape[2])
            perm = (perm[:, None] * kb + np.arange(kb)).ravel()
            rho = np.repeat(rho, kb)
            starts, stops = starts * kb, stops * kb
        with span(
            "plan.m2l_rotate", pairs=int(perm.size), dirs=int(kids.size)
        ):
            Cs = np.ascontiguousarray(C[perm]).astype(dtype, copy=False)
            out = np.empty((Cs.shape[0], ncoef(p)), dtype=dtype)
            for lo, hi, kid in zip(starts, stops, kids):
                ops = self._rot_cache.get(int(kid))
                for clo in range(lo, hi, _M2L_CHUNK):
                    chi = min(clo + _M2L_CHUNK, hi)
                    Cr = rotate_packed(Cs[clo:chi], ops, p)
                    La = axial_m2l(Cr, rho[clo:chi], p)
                    out[clo:chi] = rotate_packed(La, ops, p, inverse=True)
            Lp = np.empty_like(out)
            Lp[perm] = out
        if kb is not None:
            Lp = Lp.reshape(-1, kb, ncoef(p))
        return Lp

    def _far_unit_eval(self, ctx, u: _FarUnit, phi, grad, bound, stats):
        """Evaluate one far unit: batched M2L into box locals, L2L
        push-down, frozen L2P.  Writes only to ``[u.tlo, u.thi)``."""
        tree = self.tc.tree
        ncmax = ncoef(self._Pmax)
        first = next(iter(ctx.values()), None)
        kb = (
            first[0].shape[1]
            if first is not None and first[0].ndim == 3
            else None
        )
        lshape = (tree.n_nodes, ncmax) if kb is None else (tree.n_nodes, kb, ncmax)
        L = np.zeros(lshape, dtype=np.complex128)
        bsc = None
        if bound is not None:
            bsc = np.zeros(tree.n_nodes if kb is None else (tree.n_nodes, kb))
        pair_ctr = (
            REGISTRY.counter(
                "plan_m2l_pairs",
                "box-pair translations applied, by kernel backend",
                labelnames=("backend",),
            )
            if is_enabled()
            else None
        )
        with span("plan.m2l", pairs=u.n_pairs, groups=len(u.groups)):
            for g in u.groups:
                nc = ncoef(g.p)
                C = _gather_coeffs(ctx, g.sP, g.rows, nc)
                dt = self._m2l_dtype if g.c64_ok else np.complex128
                if g.rot is not None:
                    Lp = self._rotated_m2l(C, g, dt)
                else:
                    Lp = _batched_m2l_chunked(C, g.d, g.p, dt)
                if pair_ctr is not None:
                    pair_ctr.labels(
                        backend="rotation" if g.rot is not None else "dense"
                    ).inc(g.d.shape[0])
                L[g.utgt, ..., :nc] += np.add.reduceat(Lp, g.seg, axis=0)
                if bound is not None:
                    Ab = _gather_abs(ctx, g.sP, g.rows)
                    b = Ab * (g.bgeom if kb is None else g.bgeom[:, None])
                    bsc[g.utgt] += np.add.reduceat(b, g.seg)
                    if stats is not None:
                        bm = b if kb is None else b.sum(axis=1)
                        lsum = np.bincount(g.levels, weights=bm * g.cnt_t)
                        for Lv, s_ in enumerate(lsum):
                            if s_:
                                stats.bound_by_level[Lv] = (
                                    stats.bound_by_level.get(Lv, 0.0)
                                    + float(s_)
                                )
        with span("plan.l2l", levels=len(u.push_chi)):
            for par, chi, sh in zip(u.push_par, u.push_chi, u.push_shift):
                if kb is None:
                    L[chi] += l2l(L[par], sh, self._Pmax)
                else:  # fold the batch into the rows, shifts repeated
                    L[chi] += l2l(
                        L[par].reshape(-1, ncmax),
                        np.repeat(sh, kb, axis=0),
                        self._Pmax,
                    ).reshape(-1, kb, ncmax)
                if bsc is not None:
                    bsc[chi] += bsc[par]
        with span("plan.l2p", groups=len(u.l2p)):
            for gl in u.l2p:
                nc = ncoef(gl.p)
                Lg = L[..., :nc][gl.leaf_of]
                if kb is None:
                    vals = np.einsum("tc,tc->t", gl.Ure, Lg.real) - np.einsum(
                        "tc,tc->t", gl.Uim, Lg.imag
                    )
                else:
                    vals = np.einsum(
                        "tc,tkc->tk", gl.Ure, Lg.real
                    ) - np.einsum("tc,tkc->tk", gl.Uim, Lg.imag)
                phi[gl.tidx] += vals
                if grad is not None:
                    A, Bm, D, st, ctheta, cp, sp = gl.grad
                    d_r = np.real(np.einsum("tc,tc->t", A, Lg))
                    d_th = np.real(np.einsum("tc,tc->t", Bm, Lg))
                    d_ph = -np.imag(np.einsum("tc,tc->t", D, Lg))
                    grad[gl.tidx] += _sph_to_cart(
                        d_r, d_th, d_ph, st, ctheta, cp, sp
                    )
                if bound is not None:
                    bound[gl.tidx] += bsc[gl.leaf_of]

    def _near_unit_eval(self, q_sorted, nb: _ClusterNearBlock, phi, grad):
        qs = q_sorted[nb.sidx]
        if nb.K is not None:
            phi[nb.tlo : nb.thi] += nb.K @ qs
            if grad is not None:
                grad[nb.tlo : nb.thi] += -np.einsum("tsi,s->ti", nb.D3, qs)
        else:  # spilled: dense block on the fly
            from ..core.treecode import _near_gradient
            from ..direct import pairwise_potential

            src = self.tc.tree.points[nb.sidx]
            blk = self.tgt[nb.tlo : nb.thi]
            phi[nb.tlo : nb.thi] += pairwise_potential(
                blk, src, qs, exclude=nb.excl, softening=self.tc.softening
            )
            if grad is not None:
                grad[nb.tlo : nb.thi] += _near_gradient(
                    blk, src, qs, nb.excl, softening=self.tc.softening
                )

    def execute_unit(self, ctx, q_sorted, i):
        """Evaluate one work unit (far unit or near block) in isolation;
        returns ``(target_indices, values)`` for the parallel executor.
        Target ranges of far units are disjoint, as are near blocks'."""
        nfu = len(self._units)
        if i < nfu:
            u = self._units[i]
            phi = np.zeros((self.n_targets,) + q_sorted.shape[1:])
            self._far_unit_eval(ctx, u, phi, None, None, None)
            return np.arange(u.tlo, u.thi), phi[u.tlo : u.thi]
        nb = self._near_blocks[i - nfu]
        qs = q_sorted[nb.sidx]
        if nb.K is not None:
            return np.arange(nb.tlo, nb.thi), nb.K @ qs
        from ..direct import pairwise_potential

        vals = pairwise_potential(
            self.tgt[nb.tlo : nb.thi],
            self.tc.tree.points[nb.sidx],
            qs,
            exclude=nb.excl,
            softening=self.tc.softening,
        )
        return np.arange(nb.tlo, nb.thi), vals

    def execute_unit_direct(self, q_sorted, i):
        """Evaluate one work unit by exact per-pair summation (the
        supervisor's quarantine of last resort).  Each of a far unit's
        box pairs is replaced by the exact contribution of the source
        box's particles to the target box's particles clipped to the
        unit's range — within the dual Theorem-1 bound of the M2L
        pipeline's value."""
        from ..direct import pairwise_potential

        tree = self.tc.tree
        nfu = len(self._units)
        if i < nfu:
            u = self._units[i]
            vals = np.zeros(
                (u.thi - u.tlo,) + q_sorted.shape[1:], dtype=np.float64
            )
            for g in u.groups:
                srcs = np.empty(g.rows.size, dtype=np.int64)
                for P in np.unique(g.sP):
                    m = g.sP == P
                    srcs[m] = self._rowmap[int(P)][g.rows[m]]
                seg_ends = np.append(g.seg[1:], g.rows.size)
                for tb, lo, hi in zip(g.utgt, g.seg, seg_ends):
                    ts = max(int(tree.start[tb]), u.tlo)
                    te = min(int(tree.end[tb]), u.thi)
                    if te <= ts:
                        continue
                    blk = self.tgt[ts:te]
                    acc = np.zeros(
                        (te - ts,) + q_sorted.shape[1:], dtype=np.float64
                    )
                    # two-sided MAC: source boxes never overlap their
                    # target box, so no self-exclusion is needed
                    for sb in srcs[lo:hi]:
                        s, e = int(tree.start[sb]), int(tree.end[sb])
                        acc += pairwise_potential(
                            blk,
                            tree.points[s:e],
                            q_sorted[s:e],
                            softening=self.tc.softening,
                        )
                    vals[ts - u.tlo : te - u.tlo] += acc
            return np.arange(u.tlo, u.thi), vals
        nb = self._near_blocks[i - nfu]
        vals = pairwise_potential(
            self.tgt[nb.tlo : nb.thi],
            tree.points[nb.sidx],
            q_sorted[nb.sidx],
            exclude=nb.excl,
            softening=self.tc.softening,
        )
        return np.arange(nb.tlo, nb.thi), vals

    # -- memory shedding -----------------------------------------------
    def _shed_stage1(self) -> int:
        """float32 L2P rows and near kernels (M2L displacement/index
        arrays are already minimal and stay resident)."""
        freed = 0
        for u in self._units:
            for gl in u.l2p:
                if gl.Ure.dtype == np.float64:
                    freed += (gl.Ure.nbytes + gl.Uim.nbytes) // 2
                    gl.Ure = gl.Ure.astype(np.float32)
                    gl.Uim = gl.Uim.astype(np.float32)
                if gl.grad is not None and gl.grad[0].dtype == np.complex128:
                    A, Bm, D, st, ct, cp, sp = gl.grad
                    freed += (A.nbytes + Bm.nbytes + D.nbytes) // 2
                    gl.grad = (
                        A.astype(np.complex64),
                        Bm.astype(np.complex64),
                        D.astype(np.complex64),
                        st, ct, cp, sp,
                    )
        for nb in self._near_blocks:
            if nb.K is not None and nb.K.dtype == np.float64:
                freed += nb.K.nbytes // 2
                nb.K = nb.K.astype(np.float32)
            if nb.D3 is not None and nb.D3.dtype == np.float64:
                freed += nb.D3.nbytes // 2
                nb.D3 = nb.D3.astype(np.float32)
        return freed

    def _shed_stage2(self) -> int:
        """Drop near kernels to the exact spilled path.  L2P rows have
        no on-the-fly fallback, so they stay (float32 after stage 1)."""
        freed = 0
        for nb in self._near_blocks:
            if nb.K is not None:
                freed += nb.K.nbytes
                nb.K = None
            if nb.D3 is not None:
                freed += nb.D3.nbytes
                nb.D3 = None
        return freed

    def _refresh_spill_counts(self) -> None:
        self.n_far_precomputed = sum(len(u.groups) for u in self._units)
        self.n_far_spilled = 0
        self.n_near_precomputed = sum(
            1 for b in self._near_blocks if b.K is not None
        )
        self.n_near_spilled = len(self._near_blocks) - self.n_near_precomputed

    def execute(self, charges: np.ndarray) -> TreecodeResult:
        """Apply the cluster plan to a charge vector.

        Matches the target-major plan (and the un-planned evaluator)
        within the Theorem-1 truncation ledger: the cluster path adds
        the target-side truncation, which the dual bound accounts for.

        ``(n, k)`` charge batches behave as in
        :meth:`~repro.perf.plan.CompiledPlan.execute`: every M2L/L2L/L2P
        kernel contracts the whole batch, outputs gain a trailing batch
        axis, and ``k=1`` stays bitwise on the single-vector path.
        """
        charges = np.asarray(charges, dtype=np.float64)
        batch = charges.ndim == 2
        if batch and self.compute == "both":
            raise ValueError(
                "batched charges support compute='potential' plans only"
            )
        if batch and charges.shape[1] == 1:
            res = self.execute(charges[:, 0])
            return TreecodeResult(
                potential=res.potential[:, None],
                gradient=res.gradient,
                error_bound=(
                    None if res.error_bound is None else res.error_bound[:, None]
                ),
                stats=res.stats,
            )
        q_sorted = self.sort_charges(charges)
        obs_on = is_enabled()
        nt = self.n_targets
        shape = (nt, charges.shape[1]) if batch else (nt,)
        with span(
            "plan.execute", targets=nt, units=self.n_units, mode="cluster"
        ):
            sw = stopwatch("plan.eval").__enter__()
            phi = np.zeros(shape, dtype=np.float64)
            grad = (
                np.zeros((nt, 3), dtype=np.float64)
                if self.compute == "both"
                else None
            )
            bound = (
                np.zeros(shape, dtype=np.float64)
                if self.accumulate_bounds
                else None
            )
            stats = self._clone_stats()
            ctx = self.form_coefficients(q_sorted)
            with span("plan.far_field", units=len(self._units)):
                for u in self._units:
                    self._far_unit_eval(ctx, u, phi, grad, bound, stats)
            with span("plan.near_field", blocks=len(self._near_blocks)):
                for nb in self._near_blocks:
                    self._near_unit_eval(q_sorted, nb, phi, grad)
            sw.__exit__(None, None, None)
            stats.eval_time = sw.elapsed
            if obs_on:
                REGISTRY.counter(
                    "plan_executes", "compiled-plan applications"
                ).inc()
                record_eval_metrics(stats)
            phi, grad, bound = self.finalize(phi, grad, bound, stats)
        return TreecodeResult(
            potential=phi, gradient=grad, error_bound=bound, stats=stats
        )

    def describe(self) -> str:
        """One-line summary of the compiled structure."""
        return (
            f"ClusterPlan(targets={self.n_targets}, "
            f"box_pairs={self.n_box_pairs}, units={len(self._units)}, "
            f"near={self.n_near_precomputed}+{self.n_near_spilled} spilled, "
            f"{self.memory_bytes / 1e6:.1f} MB, "
            f"compile {self.compile_time * 1e3:.1f} ms)"
        )
