"""Performance layer: compiled evaluation plans and fast scatter.

``scatter_add`` is imported eagerly (it is dependency-free and used by
the core evaluator); the plan compiler is exposed lazily via module
``__getattr__`` because :mod:`repro.perf.plan` imports
:mod:`repro.core.treecode`, which itself imports this package — the
deferral breaks the cycle.
"""

from __future__ import annotations

from .scatter import scatter_add

__all__ = [
    "scatter_add",
    "CompiledPlan",
    "compile_plan",
    "DEFAULT_MEMORY_BUDGET",
    "ClusterPlan",
    "batched_m2l",
    "ENV_PLAN_CACHE",
    "PlanStoreError",
    "plan_digest",
    "save_plan",
    "load_plan",
    "resolve_cache_dir",
]

_PLAN_SYMBOLS = {"CompiledPlan", "compile_plan", "DEFAULT_MEMORY_BUDGET"}
_CLUSTER_SYMBOLS = {"ClusterPlan", "batched_m2l"}
_STORE_SYMBOLS = {
    "ENV_PLAN_CACHE",
    "PlanStoreError",
    "plan_digest",
    "save_plan",
    "load_plan",
    "resolve_cache_dir",
}


def __getattr__(name: str):
    if name in _PLAN_SYMBOLS:
        from . import plan

        return getattr(plan, name)
    if name in _CLUSTER_SYMBOLS:
        from . import cluster

        return getattr(cluster, name)
    if name in _STORE_SYMBOLS:
        from . import store

        return getattr(store, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
