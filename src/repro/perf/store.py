r"""Persistent content-addressed plan store with zero-copy mmap loads.

Compiling an evaluation plan (:mod:`repro.perf.plan` /
:mod:`repro.perf.cluster`) costs seconds at scale — spherical-harmonic
row materialization, dual-tree traversal, rotation-operator builds —
while *applying* one costs milliseconds.  Serving workloads (a BEM
solve restarted with a new right-hand side, a sweep driver re-launched
per configuration, CI re-running the same table) pay that compile on
every process start even though the geometry is byte-identical.

This module persists compiled plans to disk and restores them by
memory-mapping:

* **Versioned container** — one file per plan: a fixed magic/version
  prefix, a JSON header describing the object graph, then the raw
  bytes of every ``ndarray`` as 64-byte-aligned segments.  Bulk data is
  **never pickled**: the header stores dtype/shape/offset triples and
  the object tree as plain JSON, so the format is inspectable with a
  hex editor and stable across Python versions.
* **Content addressing** — the cache key is a SHA-256 digest over the
  inputs the compiler is a pure function of: particle positions and
  charges (Morton-sorted), the degree policy and its parameters, the
  MAC ``alpha``/softening/leaf size, ``tol``, the translation backend,
  the row dtype, plan mode/compute flags, and the library version.
  Any change — a perturbed point, a different tolerance, a library
  upgrade — changes the digest and misses the cache.
* **Zero-copy loads** — the file is mapped read-only once
  (``np.memmap``) and every array in the restored plan is a view into
  that mapping; nothing is copied until (and unless) a kernel reads
  it, so warm-start cost is metadata parsing plus page faults.
  Rotation operators (:class:`~repro.multipole.rotations.RotationCache`)
  are not stored as bytes — they are rebuilt deterministically from
  their quantized directions and degrees, preserving operator ids.
* **Corruption and staleness detection** — a truncated file, a
  garbled header, an unknown format version or a digest mismatch all
  raise :class:`PlanStoreError` with a machine-readable ``reason``;
  the cache front-end (:func:`cached_plan`) falls back to a fresh
  compile and counts the miss in ``plan_cache_misses{reason}``.

Enable via ``compile_plan(..., cache_dir=...)``, the
``REPRO_PLAN_CACHE`` environment variable, or the CLI's
``--plan-cache DIR`` flag.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path

import numpy as np

from ..obs import journal
from ..obs.metrics import REGISTRY
from ..obs.tracing import is_enabled, stopwatch

__all__ = [
    "ENV_PLAN_CACHE",
    "STORE_FORMAT_VERSION",
    "PlanStoreError",
    "content_digest",
    "plan_digest",
    "save_pytree",
    "load_pytree",
    "save_plan",
    "load_plan",
    "resolve_cache_dir",
    "cached_plan",
]

#: Environment variable naming the plan-cache directory (the CLI's
#: ``--plan-cache`` flag sets it; an empty value disables caching).
ENV_PLAN_CACHE = "REPRO_PLAN_CACHE"

#: On-disk container version; bumped on any incompatible layout change.
STORE_FORMAT_VERSION = 1

_MAGIC = b"REPROPLN"
_ALIGN = 64


class PlanStoreError(Exception):
    """A stored plan could not be used.

    ``reason`` is one of ``"absent"`` (no file), ``"truncated"`` (file
    shorter than its header promises), ``"corrupt"`` (bad magic or
    unparseable header), ``"version"`` (format or library version
    mismatch) or ``"stale"`` (content digest mismatch) — the label the
    cache miss is counted under.
    """

    def __init__(self, reason: str, detail: str = ""):
        self.reason = reason
        super().__init__(f"plan store miss ({reason})" + (f": {detail}" if detail else ""))


# ---------------------------------------------------------------------------
# type registry: object graphs are encoded as JSON trees referencing the
# array segment table; registered classes round-trip via __new__ + attrs
# ---------------------------------------------------------------------------


def _registry() -> dict:
    # late imports: plan/cluster import this module's siblings
    from ..core.degree import (
        AdaptiveChargeDegree,
        FixedDegree,
        LevelDegree,
        ToleranceDegree,
        VariableDegree,
    )
    from ..core.treecode import InteractionLists, Treecode, TreecodeStats
    from ..tree.octree import Octree
    from .cluster import (
        ClusterPlan,
        _ClusterNearBlock,
        _FarGroup,
        _FarUnit,
        _L2PGroup,
    )
    from .plan import CompiledPlan, _FarChunk, _NearBlock, _P2MGroup

    classes = [
        Treecode,
        TreecodeStats,
        InteractionLists,
        Octree,
        FixedDegree,
        AdaptiveChargeDegree,
        LevelDegree,
        ToleranceDegree,
        VariableDegree,
        CompiledPlan,
        ClusterPlan,
        _P2MGroup,
        _FarChunk,
        _NearBlock,
        _FarGroup,
        _L2PGroup,
        _FarUnit,
        _ClusterNearBlock,
    ]
    return {c.__name__: c for c in classes}


def _encode(obj, arrays: list, ids: dict, registry: dict):
    """Encode a Python object graph as a JSON-able tree.

    ``ndarray``s are appended to ``arrays`` (deduplicated by identity,
    so views/aliases restore as shared buffers) and referenced by
    index; registered objects carry their class name plus encoded
    attributes; containers recurse.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        if np.isfinite(obj):
            return obj
        return {"__f__": repr(obj)}
    if isinstance(obj, np.ndarray):
        key = id(obj)
        idx = ids.get(key)
        if idx is None:
            idx = len(arrays)
            arrays.append(obj)
            ids[key] = idx
        return {"__a__": idx}
    if isinstance(obj, np.dtype):
        return {"__dt__": obj.str}
    if isinstance(obj, type) and issubclass(obj, np.generic):
        return {"__nt__": obj.__name__}
    if isinstance(obj, np.generic):
        return {"__np__": np.dtype(type(obj)).str, "v": obj.item()}
    if isinstance(obj, tuple):
        return {"__tu__": [_encode(v, arrays, ids, registry) for v in obj]}
    if isinstance(obj, list):
        return [_encode(v, arrays, ids, registry) for v in obj]
    if isinstance(obj, dict):
        return {
            "__d__": [
                [
                    _encode(k, arrays, ids, registry),
                    _encode(v, arrays, ids, registry),
                ]
                for k, v in obj.items()
            ]
        }
    # RotationCache: store directions + degrees, rebuild operators on load
    from ..multipole.rotations import RotationCache

    if isinstance(obj, RotationCache):
        dirs = (
            np.stack(obj._dirs, axis=0)
            if obj._dirs
            else np.empty((0, 3), dtype=np.float64)
        )
        ps = [(-1 if op is None else int(op.p)) for op in obj._ops]
        return {
            "__rc__": {
                "dirs": _encode(np.ascontiguousarray(dirs), arrays, ids, registry),
                "ps": ps,
            }
        }
    cname = type(obj).__name__
    cls = registry.get(cname)
    if cls is None or type(obj) is not cls:
        raise TypeError(
            f"cannot serialize {type(obj)!r}: not a registered plan-store type"
        )
    return {
        "__o__": cname,
        "f": {
            k: _encode(v, arrays, ids, registry) for k, v in vars(obj).items()
        },
    }


def _decode(node, arrays: list, registry: dict):
    if node is None or isinstance(node, (bool, int, float, str)):
        return node
    if isinstance(node, list):
        return [_decode(v, arrays, registry) for v in node]
    if "__f__" in node:
        return float(node["__f__"])
    if "__a__" in node:
        return arrays[node["__a__"]]
    if "__dt__" in node:
        return np.dtype(node["__dt__"])
    if "__nt__" in node:
        return getattr(np, node["__nt__"])
    if "__np__" in node:
        return np.dtype(node["__np__"]).type(node["v"])
    if "__tu__" in node:
        return tuple(_decode(v, arrays, registry) for v in node["__tu__"])
    if "__d__" in node:
        return {
            _decode(k, arrays, registry): _decode(v, arrays, registry)
            for k, v in node["__d__"]
        }
    if "__rc__" in node:
        return _rebuild_rotation_cache(
            _decode(node["__rc__"]["dirs"], arrays, registry),
            node["__rc__"]["ps"],
        )
    if "__o__" in node:
        cls = registry.get(node["__o__"])
        if cls is None:
            raise PlanStoreError("corrupt", f"unknown type {node['__o__']!r}")
        obj = cls.__new__(cls)
        for k, v in node["f"].items():
            # object.__setattr__: frozen dataclasses forbid plain setattr
            object.__setattr__(obj, k, _decode(v, arrays, registry))
        return obj
    raise PlanStoreError("corrupt", f"unknown node {sorted(node)!r}")


def _rebuild_rotation_cache(dirs: np.ndarray, ps: list):
    """Reconstruct a :class:`RotationCache` id-stably.

    Operators are rebuilt from their canonical quantized directions in
    per-degree batches — :func:`build_rotation_operators` evaluates
    each direction independently, so the rebuilt matrices are bitwise
    those of the original compile.
    """
    from ..multipole.rotations import (
        RotationCache,
        build_rotation_operators,
        direction_keys,
    )

    cache = RotationCache()
    dirs = np.asarray(dirs, dtype=np.float64).reshape(-1, 3)
    keys = direction_keys(dirs) if dirs.shape[0] else dirs.astype(np.int64)
    for i in range(dirs.shape[0]):
        cache._ids[keys[i].tobytes()] = i
        cache._dirs.append(dirs[i])
        cache._ops.append(None)
    ps_arr = np.asarray(ps, dtype=np.int64)
    for p in np.unique(ps_arr[ps_arr >= 0]):
        sel = np.nonzero(ps_arr == p)[0]
        built = build_rotation_operators(dirs[sel], int(p))
        for k, op in zip(sel, built):
            cache._ops[int(k)] = op
    cache.built = int(np.count_nonzero(ps_arr >= 0))
    cache.requested = cache.built
    return cache


# ---------------------------------------------------------------------------
# container I/O
# ---------------------------------------------------------------------------


def _pad(n: int) -> int:
    return (-n) % _ALIGN


def save_pytree(obj, path, digest: str = "", kind: str = "plan") -> int:
    """Serialize an object graph to ``path``; returns bytes written.

    The write is atomic (temp file + rename), so a concurrent reader
    never observes a half-written plan.
    """
    registry = _registry()
    arrays: list[np.ndarray] = []
    root = _encode(obj, arrays, {}, registry)
    segs = []
    off = 0  # relative to the segment base; rebased after the header
    for a in arrays:
        c = np.ascontiguousarray(a)
        segs.append(c)
        off += _pad(off)
        off += c.nbytes
    # two-pass header: the array table needs absolute offsets, which
    # depend on the header's own length — iterate until stable
    meta = {
        "format": STORE_FORMAT_VERSION,
        "library": _library_version(),
        "digest": digest,
        "kind": kind,
        "root": root,
    }
    hdr_len = 0
    for _ in range(4):
        base = len(_MAGIC) + 4 + 8 + hdr_len
        base += _pad(base)
        table = []
        off = base
        for c in segs:
            off += _pad(off)
            table.append(
                {"o": off, "n": c.nbytes, "d": c.dtype.str, "s": list(c.shape)}
            )
            off += c.nbytes
        meta["arrays"] = table
        meta["total_bytes"] = off
        hdr = json.dumps(meta, separators=(",", ":")).encode("utf-8")
        if len(hdr) == hdr_len:
            break
        hdr_len = len(hdr)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as f:
            f.write(_MAGIC)
            f.write(np.uint32(STORE_FORMAT_VERSION).tobytes())
            f.write(np.uint64(len(hdr)).tobytes())
            f.write(hdr)
            pos = len(_MAGIC) + 4 + 8 + len(hdr)
            f.write(b"\x00" * _pad(pos))
            pos += _pad(pos)
            for c, t in zip(segs, table):
                f.write(b"\x00" * (t["o"] - pos))
                f.write(c.tobytes())
                pos = t["o"] + t["n"]
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return meta["total_bytes"]


def load_pytree(path, expected_digest: str | None = None):
    """Restore an object graph saved by :func:`save_pytree`.

    Every array in the result is a read-only zero-copy view into one
    ``np.memmap`` of the file.  Raises :class:`PlanStoreError` on any
    structural problem (see the class docstring for reasons).
    """
    path = Path(path)
    if not path.is_file():
        raise PlanStoreError("absent", str(path))
    try:
        mm = np.memmap(path, dtype=np.uint8, mode="r")
    except (OSError, ValueError) as e:
        raise PlanStoreError("corrupt", str(e)) from e
    prefix = len(_MAGIC) + 4 + 8
    if mm.size < prefix or bytes(mm[: len(_MAGIC)]) != _MAGIC:
        raise PlanStoreError("corrupt", "bad magic")
    fmt = int(np.frombuffer(mm, dtype=np.uint32, count=1, offset=len(_MAGIC))[0])
    if fmt != STORE_FORMAT_VERSION:
        raise PlanStoreError("version", f"format {fmt} != {STORE_FORMAT_VERSION}")
    hdr_len = int(
        np.frombuffer(mm, dtype=np.uint64, count=1, offset=len(_MAGIC) + 4)[0]
    )
    if mm.size < prefix + hdr_len:
        raise PlanStoreError("truncated", "header extends past end of file")
    try:
        meta = json.loads(bytes(mm[prefix : prefix + hdr_len]).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as e:
        raise PlanStoreError("corrupt", f"header: {e}") from e
    if meta.get("library") != _library_version():
        raise PlanStoreError(
            "version",
            f"written by {meta.get('library')}, running {_library_version()}",
        )
    if expected_digest is not None and meta.get("digest") != expected_digest:
        raise PlanStoreError("stale", "content digest mismatch")
    if mm.size < meta.get("total_bytes", 0):
        raise PlanStoreError(
            "truncated", f"{mm.size} bytes on disk, header promises {meta['total_bytes']}"
        )
    arrays = []
    for t in meta["arrays"]:
        dt = np.dtype(t["d"])
        if t["o"] + t["n"] > mm.size:
            raise PlanStoreError("truncated", "segment extends past end of file")
        count = t["n"] // dt.itemsize
        a = np.frombuffer(mm, dtype=dt, count=count, offset=t["o"]).reshape(t["s"])
        arrays.append(a)
    return _decode(meta["root"], arrays, _registry())


def save_plan(plan, path, digest: str = "") -> int:
    """Persist a compiled plan (target-major or cluster) to ``path``."""
    return save_pytree(plan, path, digest=digest, kind="plan")


def load_plan(path, expected_digest: str | None = None):
    """Load a compiled plan saved by :func:`save_plan` (zero-copy)."""
    return load_pytree(path, expected_digest=expected_digest)


# ---------------------------------------------------------------------------
# content digests
# ---------------------------------------------------------------------------


def _library_version() -> str:
    from .. import __version__

    return __version__


def content_digest(meta: dict, arrays: list) -> str:
    """SHA-256 over a canonical encoding of scalar metadata + arrays."""
    h = hashlib.sha256()
    h.update(b"repro-plan-store|")
    h.update(_library_version().encode())
    h.update(b"|")
    h.update(str(STORE_FORMAT_VERSION).encode())
    h.update(json.dumps(meta, sort_keys=True, default=str).encode("utf-8"))
    for a in arrays:
        if a is None:
            h.update(b"<none>")
            continue
        c = np.ascontiguousarray(a)
        h.update(c.dtype.str.encode())
        h.update(str(c.shape).encode())
        h.update(c.tobytes())
    return h.hexdigest()


def plan_digest(
    tc,
    tgt,
    self_targets: bool,
    compute: str,
    accumulate_bounds: bool,
    memory_budget: int,
    mode: str,
    rows_dtype,
    n_units,
    tol,
    translation_backend: str,
) -> str:
    """Cache key for one ``compile_plan`` invocation.

    Covers every input the compiler is a pure function of: the
    Morton-sorted points *and charges* (degree policies and
    variable-order selection anchor on the charges held at compile
    time), the policy class and parameters, geometric knobs, the full
    plan configuration, and the library version (via
    :func:`content_digest`).
    """
    tree = tc.tree
    policy = tc.degree_policy
    meta = {
        "policy": type(policy).__name__,
        "policy_fields": {k: v for k, v in sorted(vars(policy).items())},
        "alpha": tc.alpha,
        "softening": tc.softening,
        "upward": tc.upward,
        "leaf_size": int(tree.leaf_size),
        "expansion_center": tree.expansion_center,
        "mode": mode,
        "compute": compute,
        "accumulate_bounds": bool(accumulate_bounds),
        "memory_budget": int(memory_budget),
        "rows_dtype": np.dtype(rows_dtype).str,
        "n_units": None if n_units is None else int(n_units),
        "tol": None if tol is None else float(tol),
        "translation_backend": translation_backend,
        "self_targets": bool(self_targets),
    }
    arrays = [tree.points, tree.charges]
    if not self_targets:
        arrays.append(np.asarray(tgt, dtype=np.float64))
    return content_digest(meta, arrays)


# ---------------------------------------------------------------------------
# cache front-end
# ---------------------------------------------------------------------------


def resolve_cache_dir(cache_dir=None) -> Path | None:
    """Explicit ``cache_dir`` wins; ``None`` falls back to the
    ``REPRO_PLAN_CACHE`` environment variable; empty disables."""
    if cache_dir is not None:
        return Path(cache_dir) if str(cache_dir) else None
    env = os.environ.get(ENV_PLAN_CACHE, "")
    return Path(env) if env else None


def _count_miss(reason: str) -> None:
    if is_enabled():
        REGISTRY.counter(
            "plan_cache_misses",
            "plan-store lookups that fell back to a fresh compile",
            labelnames=("reason",),
        ).labels(reason=reason).inc()


def cached_plan(cache_dir, digest: str, compile_fn, kind: str = "plan"):
    """Load the plan stored under ``digest`` from ``cache_dir``, or
    compile and store it.

    Misses never fail the computation: any load or store problem falls
    back to ``compile_fn()`` (counted by reason in
    ``plan_cache_misses``; unwritable cache directories are ignored).
    """
    cache_dir = Path(cache_dir)
    path = cache_dir / f"{digest}.plan"
    try:
        with stopwatch("plan.cache_load", kind=kind) as sw:
            obj = load_pytree(path, expected_digest=digest)
        if is_enabled():
            REGISTRY.counter(
                "plan_cache_hits", "plans restored from the on-disk store"
            ).inc()
        journal.emit(
            "plan_cache",
            outcome="hit",
            kind=kind,
            digest=digest,
            path=str(path),
            load_s=float(sw.elapsed),
        )
        return obj
    except PlanStoreError as e:
        _count_miss(e.reason)
        journal.emit(
            "plan_cache", outcome="miss", kind=kind, digest=digest, reason=e.reason
        )
    obj = compile_fn()
    try:
        nbytes = save_plan(obj, path, digest=digest)
        if is_enabled():
            REGISTRY.counter(
                "plan_cache_stores", "plans persisted to the on-disk store"
            ).inc()
        journal.emit(
            "plan_cache",
            outcome="store",
            kind=kind,
            digest=digest,
            path=str(path),
            bytes=int(nbytes),
        )
    except (OSError, TypeError) as e:
        journal.emit(
            "plan_cache", outcome="store_failed", kind=kind, digest=digest,
            error=str(e),
        )
    return obj
