r"""Compiled evaluation plans: geometry-frozen GEMM matvecs.

The treecode's evaluation cost per application splits into a
*geometry-dependent* part (spherical harmonics, Legendre recurrences,
power tables, near-field ``1/r`` kernels — functions of positions only)
and a *charge-dependent* part (multiplying those tables by the charges
and summing).  Iterative callers — the BEM matvec inside GMRES, charge
sweeps over a fixed cloud — re-derive the geometry part on every
application even though only the charges change.

A :class:`CompiledPlan` freezes a built :class:`~repro.core.treecode.Treecode`
plus cached :class:`~repro.core.treecode.InteractionLists` into dense
operators so each subsequent application is pure linear algebra:

* **P2M transfer operators** — for every node referenced by the far
  list, the geometry rows ``rho^n conj(Y_n^m)`` of its particle slice
  are materialized once; ``execute`` forms all multipole coefficients
  with one segmented GEMV (``q``-scale + ``add.reduceat``) per degree
  group, replacing the full harmonics recomputation of
  :meth:`~repro.core.treecode.Treecode.set_charges`.
* **Far-field row matrices** — per degree group, the evaluation rows
  ``w · Y_n^m(x) / r^{n+1}`` of every (cluster, target) pair are
  precomputed; a matvec reduces to a coefficient gather plus one
  row-wise contraction per chunk.  Rows are materialized under a
  configurable **memory budget**; chunks over budget *spill* to
  on-the-fly evaluation (still reusing the planned coefficients).
* **Near-field block kernels** — each leaf/target block's dense
  ``1/r`` matrix (self-exclusion and softening baked in) is assembled
  once into a block-CSR-style list; a matvec does one small GEMV per
  block.  Also budget-gated.
* **Bincount scatter** — per-target accumulation uses
  :func:`~repro.perf.scatter.scatter_add` instead of ``np.add.at``.

Results agree with the un-planned path to rounding (``<= 1e-12``),
including gradients, Theorem-1 bound accumulation and
:class:`~repro.core.treecode.TreecodeStats` interaction counts (which
are exactly equal — they are frozen at compile time).

Invalidation rules: a plan is tied to the identity of its
:class:`~repro.core.treecode.Treecode` (whose geometry is immutable
after construction) and to the lists/targets it was compiled from.
``set_charges`` on the treecode does **not** invalidate a plan —
``execute`` takes the charge vector explicitly and touches no treecode
state.  Any geometry change means a new ``Treecode`` and therefore a
new plan.

Fault-tolerance parity: planned coefficient formation passes through
the same ``treecode.coeffs`` injection site and NaN/Inf guard as the
upward pass, and the output potential runs the same final guards, so a
fault injected during plan execution degrades exactly like the
un-planned path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.bounds import theorem1_bound
from ..core.degree import select_pair_degrees
from ..core.treecode import (
    _FAR_CHUNK,
    _NEAR_BUDGET,
    InteractionLists,
    Treecode,
    TreecodeResult,
    TreecodeStats,
    record_eval_metrics,
)
from ..multipole.expansion import m2p_rows, m_weights
from ..multipole.gradient import m2p_grad_rows
from ..multipole.harmonics import (
    cart_to_sph,
    degree_of_index,
    ncoef,
    norm_table,
    power_table,
    sph_harmonics,
    term_count,
)
from ..multipole.legendre import legendre_theta_derivative_table
from ..obs import journal
from ..obs.metrics import REGISTRY
from ..obs.tracing import is_enabled, span, stopwatch
from ..robust.faults import maybe_corrupt
from ..robust.guards import check_bound_accounting, check_finite
from .scatter import scatter_add

__all__ = ["CompiledPlan", "compile_plan", "DEFAULT_MEMORY_BUDGET"]

#: Default cap on precomputed far-row + near-kernel bytes; beyond it,
#: chunks spill to on-the-fly evaluation.  P2M transfer operators are
#: always resident (they are what makes ``set_charges`` cheap) and are
#: counted in :attr:`CompiledPlan.memory_bytes` but not budget-gated.
DEFAULT_MEMORY_BUDGET = 512 * 1024 * 1024


def _p2m_geometry(rel: np.ndarray, p: int) -> np.ndarray:
    """Per-particle P2M rows ``rho^n conj(Y_n^m)`` — the geometry factor
    of :func:`repro.multipole.expansion.p2m_terms`."""
    rho, ct, phi = cart_to_sph(rel)
    Y = sph_harmonics(ct, phi, p)
    ns, _ = degree_of_index(p)
    rpow = power_table(rho, p)[:, ns]
    return rpow * np.conj(Y)


@dataclass
class _P2MGroup:
    """Segmented P2M transfer operator for one degree group."""

    p: int
    nodes: np.ndarray  #: node ids, sorted (coefficient row order)
    pidx: np.ndarray  #: flattened particle indices (Morton-sorted space)
    seg: np.ndarray  #: ``add.reduceat`` segment starts, one per node
    G: np.ndarray  #: (rows, ncoef(p)) complex geometry rows


@dataclass
class _FarChunk:
    """One far-field evaluation chunk (<= ``_FAR_CHUNK`` pairs)."""

    p: int
    tids: np.ndarray  #: target index per pair
    rows: np.ndarray  #: coefficient row per pair within its storage group
    sP: np.ndarray  #: storage degree per pair (``ctx`` key; >= ``p``)
    nodes: np.ndarray  #: node id per pair (lazy eval + bound geometry)
    Rre: np.ndarray | None = None  #: w·Re(Y)/r^{n+1} rows (None = spilled)
    Rim: np.ndarray | None = None
    grad: tuple | None = None  #: (A, B, D, st, ct, cp, sp) gradient rows
    bgeom: np.ndarray | None = None  #: Theorem-1 factor at unit charge
    levels: np.ndarray | None = None  #: cluster tree level per pair


@dataclass
class _NearBlock:
    """One near-field dense block (<= ``_NEAR_BUDGET`` products)."""

    tids: np.ndarray  #: target indices of the block
    s: int  #: source slice start (Morton-sorted space)
    e: int  #: source slice end
    n_excluded: int  #: self-pairs excluded (frozen into the kernels)
    K: np.ndarray | None = None  #: (t, e-s) 1/r kernel (None = spilled)
    D3: np.ndarray | None = None  #: (t, e-s, 3) gradient kernel
    excl: np.ndarray | None = None  #: per-target excluded source (lazy)


def _far_chunk_geometry(rel: np.ndarray, p: int, want_grad: bool = False):
    """Row matrices for one far chunk in a single geometry pass.

    Returns ``(Rre, Rim, r, grad)`` — the geometry factors of
    :func:`~repro.multipole.expansion.m2p_rows` with the real-part
    weights folded in, and (when ``want_grad``) the factors of
    :func:`~repro.multipole.gradient.m2p_grad_rows` with the weights,
    ``1/r`` scales and azimuthal ``1/sinθ`` guard folded in.  The
    spherical transform, power table and harmonics are computed once and
    shared between the potential and gradient rows (the gradient path
    derives ``Y`` from the Legendre/θ-derivative tables it needs
    anyway).
    """
    r, ct, phi = cart_to_sph(rel)
    ns, ms = degree_of_index(p)
    w = m_weights(p)
    rinv = 1.0 / r
    rpow = rinv[:, None] * power_table(rinv, p)[:, ns]
    grad = None
    if want_grad:
        norms = norm_table(p)
        P, dP = legendre_theta_derivative_table(ct, p)
        e = np.exp(1j * phi[:, None] * np.arange(p + 1))
        Y = P[:, ns, ms] * norms * e[:, ms]
        dY = dP[:, ns, ms] * norms * e[:, ms]
        st = np.sqrt(np.maximum(0.0, 1.0 - ct * ct))
        st_safe = np.maximum(st, 1e-12)
        A = Y * rpow * (-(ns + 1)) * w * rinv[:, None]
        B = dY * rpow * w * rinv[:, None]
        D = Y * rpow * (ms * w) * (rinv / st_safe)[:, None]
        grad = (A, B, D, st, ct, np.cos(phi), np.sin(phi))
    else:
        Y = sph_harmonics(ct, phi, p)
    return Y.real * rpow * w, Y.imag * rpow * w, r, grad


def _m2p_rows_any(C: np.ndarray, rel: np.ndarray, p: int) -> np.ndarray:
    """:func:`m2p_rows` accepting batched ``(pairs, k, nc)`` coefficients.

    Spilled chunks only — the geometry rows are recomputed per column
    here, so precomputed chunks (which contract the whole batch in one
    GEMM) remain the fast path for batches.
    """
    if C.ndim == 2:
        return m2p_rows(C, rel, p)
    return np.stack(
        [m2p_rows(C[:, j], rel, p) for j in range(C.shape[1])], axis=1
    )


def _build_p2m_group(tree, p: int, un: np.ndarray) -> tuple[_P2MGroup, int]:
    """Segmented P2M transfer operator over the unique nodes ``un`` of
    one degree group; returns the group and its materialized bytes.
    Shared between the target-major and cluster-cluster compilers."""
    nc = ncoef(p)
    counts = (tree.end[un] - tree.start[un]).astype(np.int64)
    cum = np.concatenate([[0], np.cumsum(counts)])
    total = int(cum[-1])
    pidx = (
        np.arange(total)
        - np.repeat(cum[:-1], counts)
        + np.repeat(tree.start[un], counts)
    )
    owner = np.repeat(np.arange(un.size), counts)
    G = np.empty((total, nc), dtype=np.complex128)
    row_budget = max(1, 4_000_000 // max(nc, 1))
    centers = tree.center_exp[un]
    for glo in range(0, total, row_budget):
        ghi = min(glo + row_budget, total)
        rel = tree.points[pidx[glo:ghi]] - centers[owner[glo:ghi]]
        G[glo:ghi] = _p2m_geometry(rel, p)
    seg = cum[:-1]
    group = _P2MGroup(p=p, nodes=un, pidx=pidx, seg=seg, G=G)
    return group, G.nbytes + pidx.nbytes + seg.nbytes + un.nbytes


def _build_p2m_storage(tree, fn: np.ndarray, pdeg: np.ndarray):
    """P2M transfer operators keyed by each source node's *maximum*
    pair degree.

    A node referenced by pairs at several degrees (variable-order
    plans) gets one operator at the largest of them: the multipole
    coefficient packing is degree-major, so the coefficients a
    lower-degree pair needs are exactly the leading ``ncoef(p)``
    entries of the stored vector — consumers slice instead of holding a
    duplicate operator per degree.  Fixed-degree plans assign one
    degree per source node, so this reduces to the historical
    one-group-per-degree layout with bit-identical coefficients.

    Returns ``(Psrc, srow, groups, rowmap, bytes)`` where ``Psrc`` maps
    node id -> storage degree (-1 when the node sources no far pair)
    and ``srow`` maps node id -> its coefficient row within the
    ``Psrc[node]`` storage group.
    """
    Psrc = np.full(tree.n_nodes, -1, dtype=np.int64)
    np.maximum.at(Psrc, fn, pdeg)
    srow = np.full(tree.n_nodes, -1, dtype=np.int64)
    groups, rowmap, mem = [], {}, 0
    for P in np.unique(Psrc[fn]):
        un = np.nonzero(Psrc == P)[0]
        group, gbytes = _build_p2m_group(tree, int(P), un)
        groups.append(group)
        rowmap[int(P)] = un
        srow[un] = np.arange(un.size)
        mem += gbytes
    return Psrc, srow, groups, rowmap, mem


def _gather_coeffs(ctx, sP: np.ndarray, rows: np.ndarray, nc: int) -> np.ndarray:
    """Multipole coefficients for a pair batch, truncated to ``nc``
    entries, gathered from per-storage-degree coefficient tables.

    Coefficient tables are ``(nodes, nc)`` for a single charge vector or
    ``(nodes, k, nc)`` for a batch; the gather preserves the batch axis.
    """
    uP = np.unique(sP)
    if uP.size == 1:
        return ctx[int(uP[0])][0][rows, ..., :nc]
    tbl = ctx[int(uP[0])][0]
    C = np.empty((rows.size,) + tbl.shape[1:-1] + (nc,), dtype=np.complex128)
    for P in uP:
        m = sP == P
        C[m] = ctx[int(P)][0][rows[m], ..., :nc]
    return C


def _gather_abs(ctx, sP: np.ndarray, rows: np.ndarray) -> np.ndarray:
    """Absolute cluster charges for a pair batch (bounds accounting);
    ``(pairs,)`` single-vector or ``(pairs, k)`` batched."""
    uP = np.unique(sP)
    if uP.size == 1:
        return ctx[int(uP[0])][1][rows]
    tbl = ctx[int(uP[0])][1]
    A = np.empty((rows.size,) + tbl.shape[1:], dtype=np.float64)
    for P in uP:
        m = sP == P
        A[m] = ctx[int(P)][1][rows[m]]
    return A


def _sph_to_cart(dr, dth, dph, st, ct, cp, sp):
    gx = dr * st * cp + dth * ct * cp - dph * sp
    gy = dr * st * sp + dth * ct * sp + dph * cp
    gz = dr * ct - dth * st
    return np.stack([gx, gy, gz], axis=-1)


def _near_kernel(tgt_blk, src, excl, softening):
    """Dense ``1/sqrt(r²+ε²)`` block with self-exclusion baked in —
    the frozen matrix behind :func:`repro.direct.pairwise_potential`."""
    d = tgt_blk[:, None, :] - src[None, :, :]
    r2 = np.einsum("tsi,tsi->ts", d, d) + softening * softening
    with np.errstate(divide="ignore"):
        inv = 1.0 / np.sqrt(r2)
    inv[r2 == 0.0] = 0.0
    if excl is not None:
        rows = np.nonzero(excl >= 0)[0]
        inv[rows, excl[rows]] = 0.0
    return inv, d, r2


class CompiledPlan:
    """Frozen geometry operators for repeated charge applications.

    Build with :func:`compile_plan` or
    :meth:`repro.core.treecode.Treecode.compile_plan`; apply with
    :meth:`execute`.  The plan holds *no* charge state: ``execute`` is a
    pure function of the charge vector, so one plan serves any number of
    interleaved matvecs (GMRES iterations, sweep points) on the same
    geometry.

    Attributes
    ----------
    memory_bytes:
        Total bytes of materialized operators (P2M transfer rows,
        far-field row matrices, near-field kernels, index arrays).
    n_far_precomputed, n_far_spilled:
        Far chunks materialized vs. spilled to on-the-fly evaluation
        under the memory budget.
    n_near_precomputed, n_near_spilled:
        Same split for near-field blocks.
    compile_time:
        Wall seconds spent compiling.
    """

    def __init__(
        self,
        tc: Treecode,
        lists: InteractionLists,
        tgt: np.ndarray,
        self_targets: bool = False,
        compute: str = "potential",
        accumulate_bounds: bool = False,
        memory_budget: int = DEFAULT_MEMORY_BUDGET,
        rows_dtype=np.float64,
        tol: float | None = None,
        translation_backend: str = "auto",
    ) -> None:
        if compute not in ("potential", "both"):
            raise ValueError(f"compute must be 'potential' or 'both', got {compute!r}")
        if translation_backend not in ("dense", "rotation", "auto"):
            raise ValueError(
                "translation_backend must be 'dense', 'rotation' or 'auto', "
                f"got {translation_backend!r}"
            )
        rows_dtype = np.dtype(rows_dtype)
        if rows_dtype not in (np.dtype(np.float64), np.dtype(np.float32)):
            raise ValueError(
                f"rows_dtype must be float64 or float32, got {rows_dtype}"
            )
        if tol is not None and tol <= 0:
            raise ValueError(f"tol must be > 0, got {tol}")
        tgt = np.asarray(tgt, dtype=np.float64)
        if tgt.ndim != 2 or tgt.shape[1] != 3:
            raise ValueError(f"targets must have shape (t, 3), got {tgt.shape}")
        self.tc = tc
        self.tgt = tgt
        self.self_targets = bool(self_targets)
        self.compute = compute
        self.accumulate_bounds = bool(accumulate_bounds)
        self.memory_budget = int(memory_budget)
        self.rows_dtype = rows_dtype
        self.tol = None if tol is None else float(tol)
        #: translation kernel selection ("dense", "rotation" or "auto");
        #: consumed by the cluster plan's M2L pipeline — the target-major
        #: plan stores no translations, so it only records the knob
        self.translation_backend = translation_backend
        #: degree cap of per-pair selection — the VariableDegree policy's
        #: cap when that policy drives the plan; other policies' p_max
        #: attributes cap *their own* schedules, not pair selection
        from ..core.degree import VariableDegree

        self._tol_p_max = (
            int(tc.degree_policy.p_max)
            if isinstance(tc.degree_policy, VariableDegree)
            else 60
        )
        #: compile-time max per-target Theorem-1 ledger (tol plans only;
        #: anchored at the charges the treecode held at compile time)
        self.predicted_ledger_max: float | None = None if tol is None else 0.0
        with stopwatch("plan.compile", targets=int(tgt.shape[0])) as sw:
            self._compile(lists)
        self.compile_time = sw.elapsed
        degree_hist = dict(self._static_stats.interactions_by_degree)
        if is_enabled():
            REGISTRY.counter("plan_compiles", "evaluation plans compiled").inc()
            REGISTRY.gauge(
                "plan_memory_bytes", "materialized bytes of the most recent plan"
            ).set(self.memory_bytes)
            if degree_hist:
                buckets = REGISTRY.counter(
                    "plan_degree_bucket_pairs",
                    "far interactions per selected degree bucket",
                    labelnames=("degree",),
                )
                for pd in sorted(degree_hist):
                    buckets.labels(degree=pd).inc(degree_hist[pd])
            if self.predicted_ledger_max is not None:
                REGISTRY.gauge(
                    "plan_predicted_ledger_max",
                    "compile-time max per-target Theorem-1 ledger of the "
                    "most recent tol-compiled plan",
                ).set(self.predicted_ledger_max)
        journal.emit(
            "plan_compile",
            mode="cluster" if type(self).__name__ == "ClusterPlan" else "target",
            targets=int(tgt.shape[0]),
            memory_bytes=int(self.memory_bytes),
            compile_s=float(self.compile_time),
            units=int(self.n_units),
            far_spilled=int(self.n_far_spilled),
            tol=self.tol,
            predicted_ledger_max=self.predicted_ledger_max,
            translation_backend=self.translation_backend,
            degree_hist={str(k): int(v) for k, v in sorted(degree_hist.items())},
        )

    # -- compilation ---------------------------------------------------
    def _compile(self, lists: InteractionLists) -> None:
        tc, tree, tgt = self.tc, self.tc.tree, self.tgt
        grad_wanted = self.compute == "both"
        mem = 0
        budget_used = 0

        # ---- far field: degree grouping identical to evaluate_lists ----
        fn, ft = lists.far_nodes, lists.far_targets
        self._p2m_groups: list[_P2MGroup] = []
        self._rowmap: dict[int, np.ndarray] = {}
        self._far_chunks: list[_FarChunk] = []
        stats = TreecodeStats(n_targets=int(tgt.shape[0]))
        #: per-far-pair degree in traversal emission order (for
        #: degree-aware work profiling, e.g. profile_blocks)
        self.pair_degrees = np.empty(0, dtype=np.int64)
        if fn.size:
            if self.tol is None:
                pdeg = tc.p_eval[fn]
            else:
                # Variable order: split the aggregate budget tol evenly
                # over each target's far pairs, then give every pair the
                # minimal degree whose Theorem-1 bound meets its share —
                # the per-target ledger sums to <= cnt * (tol/cnt) = tol.
                cnt = np.bincount(ft, minlength=int(tgt.shape[0]))
                budgets = self.tol / cnt[ft]
                rel_all = tgt[ft] - tree.center_exp[fn]
                r_all = np.sqrt(np.einsum("ij,ij->i", rel_all, rel_all))
                A_all = tree.abs_charge[fn]
                pdeg = select_pair_degrees(
                    A_all,
                    tree.radius[fn],
                    r_all,
                    budgets,
                    p_max=self._tol_p_max,
                    nodes=fn,
                )
                bnd = theorem1_bound(A_all, tree.radius[fn], r_all, pdeg)
                pred = np.zeros(int(tgt.shape[0]))
                scatter_add(pred, ft, bnd)
                self.predicted_ledger_max = float(pred.max())
            self.pair_degrees = np.asarray(pdeg, dtype=np.int64)
            # one P2M operator per source node at its max pair degree;
            # lower-degree pairs slice the leading coefficients
            Psrc, srow, self._p2m_groups, self._rowmap, p2m_mem = (
                _build_p2m_storage(tree, fn, pdeg)
            )
            mem += p2m_mem
            order = np.argsort(pdeg, kind="stable")
            fn, ft, pdeg = fn[order], ft[order], pdeg[order]
            uniq, starts = np.unique(pdeg, return_index=True)
            bnds = list(starts) + [fn.size]
            for u, (lo, hi) in zip(uniq, zip(bnds[:-1], bnds[1:])):
                p = int(u)
                nodes_g, tids_g = fn[lo:hi], ft[lo:hi]
                npairs = hi - lo
                stats.n_pc_interactions += npairs
                stats.n_terms += npairs * term_count(p)
                stats.interactions_by_degree[p] = (
                    stats.interactions_by_degree.get(p, 0) + npairs
                )
                rows_g = srow[nodes_g]
                sP_g = Psrc[nodes_g]
                nc = ncoef(p)

                fsize = self.rows_dtype.itemsize
                for clo in range(0, npairs, _FAR_CHUNK):
                    chi = min(clo + _FAR_CHUNK, npairs)
                    k = chi - clo
                    tids_c = tids_g[clo:chi]
                    rows_c = rows_g[clo:chi]
                    nodes_c = nodes_g[clo:chi]
                    mem += tids_c.nbytes + rows_c.nbytes + nodes_c.nbytes
                    cost = 2 * k * nc * fsize
                    if grad_wanted:
                        cost += 3 * k * nc * 2 * fsize + 4 * k * 8
                    if self.accumulate_bounds:
                        cost += k * 8 + k * tree.level.dtype.itemsize
                    ch = _FarChunk(
                        p=p, tids=tids_c, rows=rows_c, sP=sP_g[clo:chi],
                        nodes=nodes_c,
                    )
                    if budget_used + cost <= self.memory_budget:
                        rel = tgt[tids_c] - tree.center_exp[nodes_c]
                        Rre, Rim, r, gr = _far_chunk_geometry(
                            rel, p, want_grad=grad_wanted
                        )
                        ch.Rre = Rre.astype(self.rows_dtype, copy=False)
                        ch.Rim = Rim.astype(self.rows_dtype, copy=False)
                        if grad_wanted:
                            A, B, D, st, ct, cp, sp = gr
                            cdt = (
                                np.complex64
                                if self.rows_dtype == np.float32
                                else np.complex128
                            )
                            ch.grad = (
                                A.astype(cdt, copy=False),
                                B.astype(cdt, copy=False),
                                D.astype(cdt, copy=False),
                                st, ct, cp, sp,
                            )
                        if self.accumulate_bounds:
                            ch.bgeom = theorem1_bound(
                                1.0, tree.radius[nodes_c], r, p
                            )
                            ch.levels = tree.level[nodes_c]
                        budget_used += cost
                        mem += cost
                    self._far_chunks.append(ch)
            lev = tree.level[fn]
            cnt = np.bincount(lev)
            for L, c in enumerate(cnt):
                if c:
                    stats.interactions_by_level[L] = int(c)

        # ---- near field: dense blocks per leaf -------------------------
        self._near_blocks: list[_NearBlock] = []
        for leaf, tids in lists.near:
            s, e = int(tree.start[leaf]), int(tree.end[leaf])
            cnt = e - s
            if cnt == 0:
                continue
            step = max(1, _NEAR_BUDGET // cnt)
            src = tree.points[s:e]
            for lo in range(0, tids.size, step):
                blk = tids[lo : lo + step]
                if self.self_targets:
                    excl = np.where((blk >= s) & (blk < e), blk - s, -1)
                    n_excl = int(np.count_nonzero(excl >= 0))
                else:
                    excl = None
                    n_excl = 0
                stats.n_pp_pairs += blk.size * cnt - n_excl
                nb = _NearBlock(tids=blk, s=s, e=e, n_excluded=n_excl, excl=excl)
                mem += blk.nbytes + (excl.nbytes if excl is not None else 0)
                cost = blk.size * cnt * 8
                if grad_wanted:
                    cost += blk.size * cnt * 3 * 8
                if budget_used + cost <= self.memory_budget:
                    K, d, r2 = _near_kernel(tgt[blk], src, excl, tc.softening)
                    nb.K = K
                    if grad_wanted:
                        with np.errstate(divide="ignore"):
                            wg = 1.0 / (r2 * np.sqrt(r2))
                        wg[r2 == 0.0] = 0.0
                        if excl is not None:
                            rws = np.nonzero(excl >= 0)[0]
                            wg[rws, excl[rws]] = 0.0
                        nb.D3 = wg[..., None] * d
                    budget_used += cost
                    mem += cost
                self._near_blocks.append(nb)

        self._static_stats = stats
        self.memory_bytes = int(mem)
        self.n_far_precomputed = sum(1 for c in self._far_chunks if c.Rre is not None)
        self.n_far_spilled = len(self._far_chunks) - self.n_far_precomputed
        self.n_near_precomputed = sum(1 for b in self._near_blocks if b.K is not None)
        self.n_near_spilled = len(self._near_blocks) - self.n_near_precomputed

    # -- execution -----------------------------------------------------
    @property
    def n_targets(self) -> int:
        return int(self.tgt.shape[0])

    @property
    def n_units(self) -> int:
        """Independent work units (far chunks + near blocks) — the
        granularity the parallel executor schedules at."""
        return len(self._far_chunks) + len(self._near_blocks)

    def _clone_stats(self) -> TreecodeStats:
        s = self._static_stats
        return TreecodeStats(
            n_targets=s.n_targets,
            n_pc_interactions=s.n_pc_interactions,
            n_pp_pairs=s.n_pp_pairs,
            n_terms=s.n_terms,
            interactions_by_degree=dict(s.interactions_by_degree),
            interactions_by_level=dict(s.interactions_by_level),
        )

    def sort_charges(self, charges: np.ndarray) -> np.ndarray:
        """Validate a charge array and return it in Morton order.

        Accepts a single ``(n,)`` vector or an ``(n, k)`` batch of
        stacked charge vectors (one matvec per column).  An ``(n, 1)``
        batch is squeezed onto the single-vector path — every downstream
        kernel then runs exactly the historical 1-D code, which is what
        makes ``k=1`` batched execution bitwise-identical; entry points
        restore the column axis on their outputs.
        """
        charges = np.asarray(charges, dtype=np.float64)
        n = self.tc.tree.n_particles
        if charges.ndim not in (1, 2) or charges.shape[0] != n:
            raise ValueError(
                f"charges must have shape ({n},) or ({n}, k), got {charges.shape}"
            )
        if charges.ndim == 2:
            if charges.shape[1] == 0:
                raise ValueError("charge batch must have at least one column")
            if charges.shape[1] == 1:
                charges = charges[:, 0]
        return charges[self.tc.tree.perm]

    def form_coefficients(self, q_sorted: np.ndarray) -> dict:
        """Charge-dependent stage 1: multipole coefficients (and, when
        bounds are compiled, absolute cluster charges) per degree group,
        via segmented GEMVs over the frozen P2M rows.

        Passes the ``treecode.coeffs`` fault-injection site and NaN/Inf
        guard, exactly like the un-planned upward pass.
        """
        ctx: dict = {}
        with span("plan.p2m", groups=len(self._p2m_groups)):
            for g in self._p2m_groups:
                qg = q_sorted[g.pidx]
                if qg.ndim == 1:
                    C = np.add.reduceat(qg[:, None] * g.G, g.seg, axis=0)
                else:  # (rows, k) batch: one segmented transfer per group
                    C = np.add.reduceat(
                        qg[:, :, None] * g.G[:, None, :], g.seg, axis=0
                    )
                C = maybe_corrupt("treecode.coeffs", C)
                check_finite(
                    "treecode.coeffs", C, context="planned multipole coefficients"
                )
                A = (
                    np.add.reduceat(np.abs(qg), g.seg)
                    if self.accumulate_bounds
                    else None
                )
                ctx[g.p] = (C, A)
        return ctx

    def _far_unit(self, ctx, i, phi, grad, bound, stats):
        ch = self._far_chunks[i]
        C = _gather_coeffs(ctx, ch.sP, ch.rows, ncoef(ch.p))
        tree = self.tc.tree
        batched = C.ndim == 3
        if ch.Rre is not None:
            if batched:
                vals = np.einsum("tc,tkc->tk", ch.Rre, C.real) - np.einsum(
                    "tc,tkc->tk", ch.Rim, C.imag
                )
            else:
                vals = np.einsum("tc,tc->t", ch.Rre, C.real) - np.einsum(
                    "tc,tc->t", ch.Rim, C.imag
                )
            rel = None
        else:  # spilled: evaluate geometry on the fly (planned coeffs)
            rel = self.tgt[ch.tids] - tree.center_exp[ch.nodes]
            vals = _m2p_rows_any(C, rel, ch.p)
        scatter_add(phi, ch.tids, vals)
        if grad is not None:
            if ch.grad is not None:
                # w is folded into A/B/D at compile time; use raw C here
                A, B, D, st, ct, cp, sp = ch.grad
                d_r = np.real(np.einsum("tc,tc->t", A, C))
                d_th = np.real(np.einsum("tc,tc->t", B, C))
                d_ph = -np.imag(np.einsum("tc,tc->t", D, C))
                gv = _sph_to_cart(d_r, d_th, d_ph, st, ct, cp, sp)
            else:
                gv = m2p_grad_rows(C, rel, ch.p)
            scatter_add(grad, ch.tids, gv)
        if bound is not None:
            Anode = _gather_abs(ctx, ch.sP, ch.rows)
            if ch.bgeom is not None:
                b = Anode * (ch.bgeom[:, None] if batched else ch.bgeom)
                levels = ch.levels
            elif batched:
                r = np.sqrt(np.einsum("ij,ij->i", rel, rel))
                bg = theorem1_bound(1.0, tree.radius[ch.nodes], r, ch.p)
                b = Anode * bg[:, None]
                levels = tree.level[ch.nodes]
            else:
                r = np.sqrt(np.einsum("ij,ij->i", rel, rel))
                b = theorem1_bound(Anode, tree.radius[ch.nodes], r, ch.p)
                levels = tree.level[ch.nodes]
            scatter_add(bound, ch.tids, b)
            lsum = np.bincount(levels, weights=b.sum(axis=1) if batched else b)
            for L, s_ in enumerate(lsum):
                if s_:
                    stats.bound_by_level[L] = stats.bound_by_level.get(L, 0.0) + float(
                        s_
                    )

    def _near_unit(self, q_sorted, i, phi, grad):
        nb = self._near_blocks[i]
        qs = q_sorted[nb.s : nb.e]
        if nb.K is not None:
            phi[nb.tids] += nb.K @ qs
            if grad is not None:
                grad[nb.tids] += -np.einsum("tsi,s->ti", nb.D3, qs)
        else:  # spilled: dense block on the fly
            from ..direct import pairwise_potential
            from ..core.treecode import _near_gradient

            src = self.tc.tree.points[nb.s : nb.e]
            phi[nb.tids] += pairwise_potential(
                self.tgt[nb.tids], src, qs, exclude=nb.excl,
                softening=self.tc.softening,
            )
            if grad is not None:
                grad[nb.tids] += _near_gradient(
                    self.tgt[nb.tids], src, qs, nb.excl,
                    softening=self.tc.softening,
                )

    def execute_unit(self, ctx, q_sorted, i):
        """Evaluate one work unit in isolation; returns the potential
        contribution as ``(target_indices, values)``.  Used by the
        parallel executor, which schedules units across threads and
        merges in deterministic unit order."""
        nf = len(self._far_chunks)
        if i < nf:
            ch = self._far_chunks[i]
            C = _gather_coeffs(ctx, ch.sP, ch.rows, ncoef(ch.p))
            if ch.Rre is not None:
                if C.ndim == 3:
                    vals = np.einsum("tc,tkc->tk", ch.Rre, C.real) - np.einsum(
                        "tc,tkc->tk", ch.Rim, C.imag
                    )
                else:
                    vals = np.einsum("tc,tc->t", ch.Rre, C.real) - np.einsum(
                        "tc,tc->t", ch.Rim, C.imag
                    )
            else:
                rel = self.tgt[ch.tids] - self.tc.tree.center_exp[ch.nodes]
                vals = _m2p_rows_any(C, rel, ch.p)
            return ch.tids, vals
        nb = self._near_blocks[i - nf]
        qs = q_sorted[nb.s : nb.e]
        if nb.K is not None:
            return nb.tids, nb.K @ qs
        from ..direct import pairwise_potential

        vals = pairwise_potential(
            self.tgt[nb.tids],
            self.tc.tree.points[nb.s : nb.e],
            qs,
            exclude=nb.excl,
            softening=self.tc.softening,
        )
        return nb.tids, vals

    def execute_unit_direct(self, q_sorted, i):
        """Evaluate one work unit by exact per-pair summation.

        The supervisor's quarantine of last resort: no multipole
        machinery, no precomputed operators — each (cluster, target)
        pair of a far chunk is replaced by the exact contribution of
        the cluster's particles (within the Theorem-1 bound of the
        approximated value), and near blocks run the dense kernel from
        raw coordinates.  Returns ``(target_indices, values)``.
        """
        from ..direct import pairwise_potential

        tree = self.tc.tree
        nf = len(self._far_chunks)
        if i < nf:
            ch = self._far_chunks[i]
            vals = np.zeros((ch.tids.size,) + q_sorted.shape[1:], dtype=np.float64)
            for node in np.unique(ch.nodes):
                m = ch.nodes == node
                s, e = int(tree.start[node]), int(tree.end[node])
                # MAC-separated clusters never contain their targets,
                # so no exclusion is needed even for self-targets
                vals[m] = pairwise_potential(
                    self.tgt[ch.tids[m]],
                    tree.points[s:e],
                    q_sorted[s:e],
                    softening=self.tc.softening,
                )
            return ch.tids, vals
        nb = self._near_blocks[i - nf]
        vals = pairwise_potential(
            self.tgt[nb.tids],
            tree.points[nb.s : nb.e],
            q_sorted[nb.s : nb.e],
            exclude=nb.excl,
            softening=self.tc.softening,
        )
        return nb.tids, vals

    # -- memory shedding -----------------------------------------------
    #: 0 = full precision, 1 = float32 operators, 2 = dropped to spill
    _shed_stage = 0

    def _shed_stage1(self) -> int:
        """Halve operator memory: far rows and near kernels to float32
        (results degrade to ~1e-6 relative; bounds/stats unchanged)."""
        freed = 0
        for ch in self._far_chunks:
            if ch.Rre is not None and ch.Rre.dtype == np.float64:
                freed += (ch.Rre.nbytes + ch.Rim.nbytes) // 2
                ch.Rre = ch.Rre.astype(np.float32)
                ch.Rim = ch.Rim.astype(np.float32)
            if ch.grad is not None and ch.grad[0].dtype == np.complex128:
                A, B, D, st, ct, cp, sp = ch.grad
                freed += (A.nbytes + B.nbytes + D.nbytes) // 2
                ch.grad = (
                    A.astype(np.complex64),
                    B.astype(np.complex64),
                    D.astype(np.complex64),
                    st, ct, cp, sp,
                )
        for nb in self._near_blocks:
            if nb.K is not None and nb.K.dtype == np.float64:
                freed += nb.K.nbytes // 2
                nb.K = nb.K.astype(np.float32)
            if nb.D3 is not None and nb.D3.dtype == np.float64:
                freed += nb.D3.nbytes // 2
                nb.D3 = nb.D3.astype(np.float32)
        return freed

    def _shed_stage2(self) -> int:
        """Drop all precomputed operators to the spilled on-the-fly
        paths (exact float64 recompute — full accuracy returns, at
        un-planned evaluation speed)."""
        freed = 0
        for ch in self._far_chunks:
            if ch.Rre is not None:
                freed += ch.Rre.nbytes + ch.Rim.nbytes
                ch.Rre = ch.Rim = None
            if ch.grad is not None:
                A, B, D, *_ = ch.grad
                freed += A.nbytes + B.nbytes + D.nbytes
                ch.grad = None
        for nb in self._near_blocks:
            if nb.K is not None:
                freed += nb.K.nbytes
                nb.K = None
            if nb.D3 is not None:
                freed += nb.D3.nbytes
                nb.D3 = None
        return freed

    def shed_memory(self) -> int:
        """Release plan memory under RSS pressure; returns bytes freed.

        Stage 1 casts precomputed operators to float32; stage 2 drops
        them entirely, falling back to the (exact) spilled evaluation
        paths.  Returns 0 once nothing sheddable remains — the
        supervisor's cue to trip the memory breaker instead.
        """
        freed = 0
        while freed == 0 and self._shed_stage < 2:
            stage = self._shed_stage
            freed = self._shed_stage1() if stage == 0 else self._shed_stage2()
            self._shed_stage = stage + 1
        if freed:
            self.memory_bytes = int(self.memory_bytes - freed)
            self._refresh_spill_counts()
            if is_enabled():
                REGISTRY.counter("plan_sheds", "plan memory-shed stages run").inc()
                REGISTRY.gauge(
                    "plan_memory_bytes", "materialized bytes of the most recent plan"
                ).set(self.memory_bytes)
            journal.emit(
                "plan_shed",
                stage=int(self._shed_stage),
                freed_bytes=int(freed),
                memory_bytes=int(self.memory_bytes),
            )
        return freed

    def _refresh_spill_counts(self) -> None:
        self.n_far_precomputed = sum(
            1 for c in self._far_chunks if c.Rre is not None
        )
        self.n_far_spilled = len(self._far_chunks) - self.n_far_precomputed
        self.n_near_precomputed = sum(
            1 for b in self._near_blocks if b.K is not None
        )
        self.n_near_spilled = len(self._near_blocks) - self.n_near_precomputed

    def finalize(self, phi, grad=None, bound=None, stats=None):
        """Common epilogue: un-sort self-target results back to input
        order and run the output guards."""
        if self.self_targets:
            inv = self.tc.tree.perm
            out = np.empty_like(phi)
            out[inv] = phi
            phi = out
            if grad is not None:
                og = np.empty_like(grad)
                og[inv] = grad
                grad = og
            if bound is not None:
                ob = np.empty_like(bound)
                ob[inv] = bound
                bound = ob
        check_finite("treecode.potential", phi, context="planned potential")
        if bound is not None and stats is not None:
            check_bound_accounting("treecode.bounds", bound, stats.bound_by_level)
        return phi, grad, bound

    def execute(self, charges: np.ndarray) -> TreecodeResult:
        """Apply the frozen operators to a charge vector.

        Equivalent to ``tc.set_charges(charges)`` followed by
        ``tc.evaluate_lists(...)`` with the compiled configuration, but
        without touching any treecode state; agreement is to rounding
        (``<= 1e-12``).

        ``charges`` may be an ``(n, k)`` batch of stacked charge
        vectors; every kernel then contracts the whole batch at once
        (one GEMM per operator instead of ``k`` GEMVs), and the result's
        ``potential``/``error_bound`` gain a trailing batch axis with
        column ``j`` the evaluation of ``charges[:, j]``.  A ``k=1``
        batch runs the single-vector kernels bitwise-identically and
        only reshapes the outputs.  Gradients (``compute="both"``) are
        single-vector only.
        """
        charges = np.asarray(charges, dtype=np.float64)
        batch = charges.ndim == 2
        if batch and self.compute == "both":
            raise ValueError(
                "batched charges support compute='potential' plans only"
            )
        if batch and charges.shape[1] == 1:
            res = self.execute(charges[:, 0])
            return TreecodeResult(
                potential=res.potential[:, None],
                gradient=res.gradient,
                error_bound=(
                    None if res.error_bound is None else res.error_bound[:, None]
                ),
                stats=res.stats,
            )
        q_sorted = self.sort_charges(charges)
        obs_on = is_enabled()
        nt = self.n_targets
        shape = (nt, charges.shape[1]) if batch else (nt,)
        with span("plan.execute", targets=nt, units=self.n_units):
            sw = stopwatch("plan.eval").__enter__()
            phi = np.zeros(shape, dtype=np.float64)
            grad = (
                np.zeros((nt, 3), dtype=np.float64)
                if self.compute == "both"
                else None
            )
            bound = (
                np.zeros(shape, dtype=np.float64) if self.accumulate_bounds else None
            )
            stats = self._clone_stats()
            ctx = self.form_coefficients(q_sorted)
            with span("plan.far_field", chunks=len(self._far_chunks)):
                for i in range(len(self._far_chunks)):
                    self._far_unit(ctx, i, phi, grad, bound, stats)
            with span("plan.near_field", blocks=len(self._near_blocks)):
                for i in range(len(self._near_blocks)):
                    self._near_unit(q_sorted, i, phi, grad)
            sw.__exit__(None, None, None)
            stats.eval_time = sw.elapsed
            if obs_on:
                REGISTRY.counter("plan_executes", "compiled-plan applications").inc()
                record_eval_metrics(stats)
            phi, grad, bound = self.finalize(phi, grad, bound, stats)
        return TreecodeResult(
            potential=phi, gradient=grad, error_bound=bound, stats=stats
        )

    def describe(self) -> str:
        """One-line summary of the compiled structure."""
        return (
            f"CompiledPlan(targets={self.n_targets}, "
            f"far={self.n_far_precomputed}+{self.n_far_spilled} spilled, "
            f"near={self.n_near_precomputed}+{self.n_near_spilled} spilled, "
            f"{self.memory_bytes / 1e6:.1f} MB, "
            f"compile {self.compile_time * 1e3:.1f} ms)"
        )


def compile_plan(
    tc: Treecode,
    lists: InteractionLists | None,
    tgt: np.ndarray,
    self_targets: bool = False,
    compute: str = "potential",
    accumulate_bounds: bool = False,
    memory_budget: int = DEFAULT_MEMORY_BUDGET,
    mode: str = "target",
    rows_dtype=np.float64,
    n_units: int | None = None,
    tol: float | None = None,
    translation_backend: str = "auto",
    cache_dir=None,
) -> CompiledPlan:
    """Freeze a treecode into a compiled evaluation plan.

    ``mode="target"`` builds the target-major :class:`CompiledPlan` from
    precomputed interaction lists (per-pair far rows).
    ``mode="cluster"`` builds a
    :class:`~repro.perf.cluster.ClusterPlan` from a dual-tree traversal
    (box-box M2L into per-leaf local expansions) — ``lists`` is ignored
    and the targets must be the treecode's own points.

    With ``tol`` set, the compiler selects a per-interaction expansion
    degree — the minimal one whose Theorem-1 (or dual-MAC) bound keeps
    each target's aggregate error ledger at or below ``tol`` — and
    buckets interactions by degree so every kernel stays a GEMM.
    ``tol=None`` reproduces today's fixed-policy plans exactly.

    ``cache_dir`` (or the ``REPRO_PLAN_CACHE`` environment variable
    when it is ``None``; pass ``""`` to force-disable) enables the
    persistent plan store (:mod:`repro.perf.store`): if a plan with the
    same content digest — points, charges, policy, tolerance, backend,
    dtype, plan configuration, library version — exists on disk it is
    restored by zero-copy ``mmap`` instead of compiled; otherwise the
    freshly compiled plan is written back.  Corrupt or stale files
    fall back to a fresh compile.

    Equivalent to :meth:`repro.core.treecode.Treecode.compile_plan`.
    """
    from .store import cached_plan, plan_digest, resolve_cache_dir

    cache = resolve_cache_dir(cache_dir)
    if cache is not None:
        digest = plan_digest(
            tc,
            tgt,
            self_targets,
            compute,
            accumulate_bounds,
            memory_budget,
            mode,
            rows_dtype,
            n_units,
            tol,
            translation_backend,
        )
        return cached_plan(
            cache,
            digest,
            lambda: compile_plan(
                tc,
                lists,
                tgt,
                self_targets=self_targets,
                compute=compute,
                accumulate_bounds=accumulate_bounds,
                memory_budget=memory_budget,
                mode=mode,
                rows_dtype=rows_dtype,
                n_units=n_units,
                tol=tol,
                translation_backend=translation_backend,
                cache_dir="",
            ),
        )
    if mode == "cluster":
        from .cluster import ClusterPlan

        return ClusterPlan(
            tc,
            tgt,
            self_targets=self_targets,
            compute=compute,
            accumulate_bounds=accumulate_bounds,
            memory_budget=memory_budget,
            rows_dtype=rows_dtype,
            n_units=n_units,
            tol=tol,
            translation_backend=translation_backend,
        )
    if mode != "target":
        raise ValueError(f"mode must be 'target' or 'cluster', got {mode!r}")
    if lists is None:
        raise ValueError("mode='target' requires interaction lists")
    return CompiledPlan(
        tc,
        lists,
        tgt,
        self_targets=self_targets,
        compute=compute,
        accumulate_bounds=accumulate_bounds,
        memory_budget=memory_budget,
        rows_dtype=rows_dtype,
        tol=tol,
        translation_backend=translation_backend,
    )
