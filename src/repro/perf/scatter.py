"""Bincount-based scatter-add for interaction-list accumulation.

``np.add.at`` is the textbook way to accumulate duplicate-indexed
contributions (``phi[tids] += vals`` is wrong when ``tids`` repeats),
but it dispatches through the buffered-ufunc inner loop and runs an
order of magnitude slower than a histogram.  ``np.bincount`` with
``weights=`` performs the identical sum-by-index in one C pass over the
values, at the price of materializing a dense length-``n`` output — the
right trade whenever the index list is not tiny compared to the target
array, which is exactly the far-field chunk case (up to 200k pairs
scattering into the target vector).

Both paths add contributions in index order of ``vals``, so per-target
accumulation order — and therefore the floating-point result — matches
the ``np.add.at`` formulation.
"""

from __future__ import annotations

import numpy as np

__all__ = ["scatter_add"]

#: Below this fill ratio (index count / output length) the dense
#: histogram pass costs more than the buffered ufunc; fall back.
_SPARSE_RATIO = 1 / 8


def scatter_add(out: np.ndarray, idx: np.ndarray, vals: np.ndarray) -> np.ndarray:
    """``out[idx] += vals`` with correct duplicate handling.

    ``out`` is 1-D ``(n,)`` or 2-D ``(n, k)``; ``vals`` has shape
    ``(m,)`` or ``(m, k)`` to match.  Returns ``out`` (modified in
    place).
    """
    n = out.shape[0]
    vals = np.asarray(vals)
    if vals.shape[1:] != out.shape[1:]:
        raise ValueError(
            f"scatter_add payload shape {vals.shape} does not match output "
            f"shape {out.shape}: trailing dimensions must agree"
        )
    if idx.size == 0:
        return out
    if idx.size < n * _SPARSE_RATIO:
        np.add.at(out, idx, vals)
        return out
    if out.ndim == 1:
        out += np.bincount(idx, weights=vals, minlength=n)
    else:
        for c in range(out.shape[1]):
            out[:, c] += np.bincount(
                idx, weights=np.ascontiguousarray(vals[:, c]), minlength=n
            )
    return out
