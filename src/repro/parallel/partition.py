"""Work partitioning for the parallel treecode.

The paper's parallel formulation: "particles are sorted in a
proximity-preserving order (a Peano-Hilbert ordering) and force
computation for sets of ``w`` particles are aggregated into a single
thread [work unit]".  This module produces those w-blocks and computes
their per-block cost profiles from the treecode's interaction lists —
the inputs to both the real executors and the machine model.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from ..core.treecode import Treecode
from ..multipole.harmonics import term_count
from ..tree.hilbert import hilbert_order

__all__ = [
    "make_blocks",
    "BlockProfile",
    "profile_blocks",
    "ROTATION_CROSSOVER_P",
    "translation_cost",
    "resolve_backend",
]

#: Degree at which the rotation (O(p^3)) translation backend overtakes
#: the dense (O(p^4)) kernels under ``translation_backend="auto"``.
#: Calibrated with ``benchmarks/bench_kernels.py --mode m2l`` (the
#: rotation pipeline pays fixed per-direction rotation setup that only
#: amortizes once the dense contraction grows past ~this degree);
#: override with ``REPRO_M2L_CROSSOVER`` for ablations.
ROTATION_CROSSOVER_P = int(os.environ.get("REPRO_M2L_CROSSOVER", "7"))


def translation_cost(p, backend: str = "dense") -> np.ndarray:
    """Per-translation flop model used by the plan compilers' balancers.

    ``(p+1)^4`` for the dense kernels, ``(p+1)^3`` for the
    rotation-accelerated ones; ``backend="auto"`` applies the
    :data:`ROTATION_CROSSOVER_P` selection per degree.  Vectorized over
    ``p``.
    """
    p = np.asarray(p, dtype=np.float64)
    dense = (p + 1.0) ** 4
    if backend == "dense":
        return dense
    rot = (p + 1.0) ** 3
    if backend == "rotation":
        return rot
    if backend != "auto":
        raise ValueError(
            f"backend must be 'dense', 'rotation' or 'auto', got {backend!r}"
        )
    return np.where(p >= ROTATION_CROSSOVER_P, rot, dense)


def resolve_backend(backend: str, p: int) -> str:
    """Resolve a ``translation_backend`` knob for one degree group."""
    if backend == "auto":
        return "rotation" if p >= ROTATION_CROSSOVER_P else "dense"
    if backend not in ("dense", "rotation"):
        raise ValueError(
            f"backend must be 'dense', 'rotation' or 'auto', got {backend!r}"
        )
    return backend


def make_blocks(
    points: np.ndarray,
    w: int,
    ordering: str = "hilbert",
    seed: int = 0,
) -> list[np.ndarray]:
    """Split target indices into blocks of ``w`` spatially-close targets.

    Parameters
    ----------
    points:
        ``(n, 3)`` target positions.
    w:
        Aggregation factor (particles per work unit).
    ordering:
        ``"hilbert"`` (the paper's choice), ``"morton"``, ``"input"``
        (no reordering), or ``"random"`` — the latter three exist for
        the locality ablation.
    seed:
        Only used by ``"random"``.

    Returns
    -------
    List of index arrays, each of length ``w`` (last may be shorter).
    """
    points = np.asarray(points, dtype=np.float64)
    n = points.shape[0]
    if w < 1:
        raise ValueError(f"w must be >= 1, got {w}")
    if ordering == "hilbert":
        order = hilbert_order(points)
    elif ordering == "morton":
        from ..tree.morton import morton_key

        lo, hi = points.min(axis=0), points.max(axis=0)
        hi = np.where(hi > lo, hi, lo + 1.0)
        order = np.argsort(morton_key(points, lo, hi), kind="stable")
    elif ordering == "input":
        order = np.arange(n)
    elif ordering == "random":
        order = np.random.default_rng(seed).permutation(n)
    else:
        raise ValueError(f"unknown ordering {ordering!r}")
    return [order[i : i + w] for i in range(0, n, w)]


@dataclass
class BlockProfile:
    """Per-block cost profile extracted from the interaction lists.

    ``compute``: multipole terms + near-field pairs evaluated by the
    block (the serial work it represents).  ``fetch``: multipole terms
    of *distinct* clusters the block touches — the data volume a
    processor must have locally (or fetch remotely) to run the block.
    The unique (block, cluster) pairs are retained so the machine model
    can compute the *per-processor* unique data volume under a given
    block assignment: spatially compact blocks assigned to the same
    processor share most of their cluster data, which is exactly why the
    paper's Peano-Hilbert ordering reduces communication.
    """

    blocks: list
    compute_terms: np.ndarray
    compute_pairs: np.ndarray
    fetch_terms: np.ndarray
    #: unique (block, cluster) pairs and the term count of each cluster
    pair_blocks: np.ndarray = None
    pair_nodes: np.ndarray = None
    pair_terms: np.ndarray = None

    @property
    def n_blocks(self) -> int:
        return len(self.blocks)


def profile_blocks(
    tc: Treecode,
    blocks: list[np.ndarray],
    pair_degrees: np.ndarray | None = None,
) -> BlockProfile:
    """Measure each block's far-field terms, near-field pairs and the
    distinct-cluster fetch volume, from one traversal of the tree.

    Targets are the treecode's own source particles (the self-evaluation
    the paper times); block indices refer to the *original* particle
    ordering.

    ``pair_degrees`` (optional) supplies a per-interaction degree aligned
    with the traversal's far-pair emission order, as selected by a
    variable-order plan.  When given, both the compute terms and the
    fetch volume (term count of each distinct cluster at the *largest*
    degree any of the block's pairs requested of it) follow the actual
    bucketed degrees instead of the policy's per-node ``p_eval`` — so
    balanced work units reflect the true Σ terms cost.
    """
    tree = tc.tree
    n = tree.n_particles
    # Map original indices -> sorted (tree) positions.
    to_sorted = np.empty(n, dtype=np.int64)
    to_sorted[tree.perm] = np.arange(n)

    lists = tc.traverse(tree.points, self_targets=True)
    # block id per sorted target position
    block_of = np.empty(n, dtype=np.int64)
    for b, idx in enumerate(blocks):
        block_of[to_sorted[idx]] = b
    nb = len(blocks)

    if pair_degrees is None:
        pdeg = tc.p_eval[lists.far_nodes]
    else:
        pdeg = np.asarray(pair_degrees, dtype=np.int64)
        if pdeg.shape != lists.far_nodes.shape:
            raise ValueError(
                f"pair_degrees has shape {pdeg.shape}, expected one degree "
                f"per far pair {lists.far_nodes.shape}"
            )
    pair_terms = np.array(
        [term_count(int(p)) for p in pdeg], dtype=np.int64
    )
    pair_blocks = block_of[lists.far_targets]
    compute_terms = np.bincount(pair_blocks, weights=pair_terms, minlength=nb)

    compute_pairs = np.zeros(nb, dtype=np.float64)
    for leaf, tids in lists.near:
        s, e = int(tree.start[leaf]), int(tree.end[leaf])
        cnt = e - s
        np.add.at(compute_pairs, block_of[tids], cnt)
        # exclude self-pairs of targets living in this leaf
        own = tids[(tids >= s) & (tids < e)]
        np.add.at(compute_pairs, block_of[own], -1)

    # Fetch volume: distinct (block, node) pairs weighted by term count
    # (at the largest degree the block's pairs request of the node).
    if lists.far_nodes.size:
        key = pair_blocks * np.int64(tree.n_nodes) + lists.far_nodes
        uniq, inv = np.unique(key, return_inverse=True)
        ub = (uniq // tree.n_nodes).astype(np.int64)
        un = (uniq % tree.n_nodes).astype(np.int64)
        dmax = np.zeros(uniq.size, dtype=np.int64)
        np.maximum.at(dmax, inv, pdeg)
        uterms = np.array([term_count(int(p)) for p in dmax], dtype=np.int64)
        fetch_terms = np.bincount(ub, weights=uterms, minlength=nb)
    else:
        ub = np.empty(0, dtype=np.int64)
        un = np.empty(0, dtype=np.int64)
        uterms = np.empty(0, dtype=np.int64)
        fetch_terms = np.zeros(nb, dtype=np.float64)

    return BlockProfile(
        blocks=list(blocks),
        compute_terms=compute_terms,
        compute_pairs=compute_pairs,
        fetch_terms=fetch_terms,
        pair_blocks=ub,
        pair_nodes=un,
        pair_terms=uterms,
    )
