"""Shared-memory machine model for parallel-performance prediction.

The paper reports runtimes and speedups of a POSIX-threads treecode on a
32-processor SGI Origin 2000 (a ccNUMA machine).  This host has a single
core, so wall-clock scaling is not observable; instead we *model* the
machine and drive the model with the **measured per-block work profile**
of the actual traversal (:func:`repro.parallel.partition.profile_blocks`).
Speedup on the Origin is determined by exactly two algorithmic
quantities, both of which we measure rather than guess:

* load balance of the w-aggregated Hilbert-ordered blocks (compute time
  per processor = sum of its blocks' multipole terms and near-field
  pairs, weighted by per-operation costs), and
* the volume of multipole data each processor touches that is not local
  to it (remote-fetch cost on a ccNUMA machine).  The model charges a
  per-remote-term cost for the fraction ``(P-1)/P`` of distinct-cluster
  data that lands on other processors' memories under a uniform page
  placement, discounted by a cache-reuse factor.

This reproduces the paper's two observations: parallel efficiencies in
the 80-90 % band at P = 32, and the *new* (adaptive-degree) method
having slightly lower speedup than the original because "the new
algorithm fetches longer multipole series".
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .partition import BlockProfile

__all__ = ["MachineModel", "SimulationResult", "simulate", "schedule_blocks"]


@dataclass(frozen=True)
class MachineModel:
    """Cost coefficients of the modeled ccNUMA machine.

    Units are arbitrary "time per operation"; only ratios matter for
    speedups.  Defaults are chosen so one multipole term ≈ one
    near-field pair ≈ a handful of flops, a remote fetch costs a few
    times a local flop (Origin 2000 remote/local latency ratio ~3), and
    per-block scheduling overhead is small.
    """

    n_procs: int = 32
    t_term: float = 1.0  #: per multipole term evaluated
    t_pair: float = 0.8  #: per near-field particle pair
    t_fetch_remote: float = 3.5  #: per multipole term fetched remotely
    cache_reuse: float = 0.35  #: fraction of remote fetches served by cache
    t_block_overhead: float = 50.0  #: per-block scheduling cost
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_procs < 1:
            raise ValueError(f"n_procs must be >= 1, got {self.n_procs}")
        if not 0.0 <= self.cache_reuse <= 1.0:
            raise ValueError("cache_reuse must be in [0, 1]")


@dataclass
class SimulationResult:
    """Outcome of one machine-model simulation."""

    n_procs: int
    serial_time: float
    parallel_time: float
    proc_times: np.ndarray
    assignment: np.ndarray = field(repr=False)

    @property
    def speedup(self) -> float:
        return self.serial_time / self.parallel_time

    @property
    def efficiency(self) -> float:
        return self.speedup / self.n_procs

    @property
    def load_imbalance(self) -> float:
        """max/mean processor time — 1.0 is perfect balance."""
        mean = self.proc_times.mean()
        return float(self.proc_times.max() / mean) if mean > 0 else 1.0


def schedule_blocks(costs: np.ndarray, n_procs: int, strategy: str = "cyclic") -> np.ndarray:
    """Assign blocks to processors.

    ``"cyclic"`` — block-cyclic round robin over the proximity order
    (the paper's static threading of consecutive w-blocks);
    ``"lpt"`` — longest-processing-time greedy (dynamic scheduling /
    work-stealing idealization);
    ``"contiguous"`` — equal contiguous ranges of blocks.
    """
    nb = costs.shape[0]
    if strategy == "cyclic":
        return np.arange(nb) % n_procs
    if strategy == "contiguous":
        return np.minimum(np.arange(nb) * n_procs // max(nb, 1), n_procs - 1)
    if strategy == "lpt":
        order = np.argsort(costs)[::-1]
        loads = np.zeros(n_procs)
        assign = np.empty(nb, dtype=np.int64)
        for b in order:
            p = int(np.argmin(loads))
            assign[b] = p
            loads[p] += costs[b]
        return assign
    raise ValueError(f"unknown strategy {strategy!r}")


def simulate(
    profile: BlockProfile,
    model: MachineModel | None = None,
    strategy: str = "lpt",
) -> SimulationResult:
    """Predict the parallel runtime of a profiled treecode evaluation.

    ``serial_time`` charges compute only (one processor owns all data
    locally); each processor's parallel time adds the remote-fetch cost
    of its blocks' distinct-cluster data volume.
    """
    if model is None:
        model = MachineModel()
    compute = (
        model.t_term * profile.compute_terms
        + model.t_pair * profile.compute_pairs
        + model.t_block_overhead
    )
    serial = float(compute.sum())
    if model.n_procs == 1:
        return SimulationResult(
            n_procs=1,
            serial_time=serial,
            parallel_time=serial,
            proc_times=np.array([serial]),
            assignment=np.zeros(profile.n_blocks, dtype=np.int64),
        )

    remote_fraction = (model.n_procs - 1) / model.n_procs
    assign = schedule_blocks(compute, model.n_procs, strategy)
    proc_compute = np.bincount(assign, weights=compute, minlength=model.n_procs)

    # Remote-fetch volume per processor: each processor fetches each
    # distinct cluster it touches once per evaluation (caches and local
    # pages absorb repeats).  Blocks assigned to the same processor
    # share clusters, so compact (Hilbert-ordered, contiguously
    # assigned) blocks fetch far less than scattered ones — the paper's
    # rationale for the proximity-preserving ordering.
    if profile.pair_blocks is not None and profile.pair_blocks.size:
        proc_of_pair = assign[profile.pair_blocks]
        stride = np.int64(profile.pair_nodes.max()) + 1
        key = proc_of_pair * stride + profile.pair_nodes
        _, first = np.unique(key, return_index=True)
        uproc = proc_of_pair[first]
        proc_fetch_vol = np.bincount(
            uproc, weights=profile.pair_terms[first], minlength=model.n_procs
        )
    else:
        proc_fetch_vol = np.zeros(model.n_procs)
    proc_fetch = (
        model.t_fetch_remote
        * (1.0 - model.cache_reuse)
        * remote_fraction
        * proc_fetch_vol
    )
    proc_times = proc_compute + proc_fetch
    return SimulationResult(
        n_procs=model.n_procs,
        serial_time=serial,
        parallel_time=float(proc_times.max()),
        proc_times=proc_times,
        assignment=assign,
    )
