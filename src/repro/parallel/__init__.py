"""Parallel treecode: w-block partitioning, executors, machine model."""

from .executors import (
    ENV_WORKERS,
    ParallelResult,
    evaluate_parallel,
    evaluate_plan_parallel,
    original_points,
    resolve_workers,
)
from .machine import MachineModel, SimulationResult, schedule_blocks, simulate
from .partition import BlockProfile, make_blocks, profile_blocks

__all__ = [
    "make_blocks",
    "profile_blocks",
    "BlockProfile",
    "evaluate_parallel",
    "evaluate_plan_parallel",
    "resolve_workers",
    "ENV_WORKERS",
    "ParallelResult",
    "original_points",
    "MachineModel",
    "SimulationResult",
    "simulate",
    "schedule_blocks",
]
