"""Parallel treecode: w-block partitioning, executors, machine model."""

from .executors import (
    ParallelResult,
    evaluate_parallel,
    evaluate_plan_parallel,
    original_points,
)
from .machine import MachineModel, SimulationResult, schedule_blocks, simulate
from .partition import BlockProfile, make_blocks, profile_blocks

__all__ = [
    "make_blocks",
    "profile_blocks",
    "BlockProfile",
    "evaluate_parallel",
    "evaluate_plan_parallel",
    "ParallelResult",
    "original_points",
    "MachineModel",
    "SimulationResult",
    "simulate",
    "schedule_blocks",
]
