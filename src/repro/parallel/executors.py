"""Real parallel evaluation of the treecode (thread pool).

The traversal is embarrassingly parallel over targets — each particle's
tree walk is independent, which is "the concurrency available in
independent tree traversal of each particle" the paper's threaded
formulation exploits.  The executor splits the targets into
Hilbert-ordered w-blocks and evaluates the blocks concurrently against
the shared read-only tree and coefficient arrays.

Each target's contributions are accumulated in the same
(preorder-traversal) order regardless of which other targets share its
block, so the parallel result matches the serial result to floating-
point associativity (vector-reduction blocking inside ``einsum`` can
differ at the ULP level between batch shapes); the test suite asserts
agreement to 1e-12 relative tolerance.

Note on this host: heavy NumPy kernels release the GIL, so threads give
genuine concurrency on multi-core machines; on a single-core host the
executor is still exercised for correctness while
:mod:`repro.parallel.machine` provides the scaling numbers.

Fault tolerance (see :mod:`repro.robust`): each w-block runs under a
:class:`~repro.robust.RetryPolicy` — failed or deadline-exceeded
attempts are retried with decorrelated-jitter backoff, a block that
keeps failing degrades gracefully to a serial re-evaluation with fault
injection suppressed, and as a last resort to exact direct summation
over all sources.  Block outputs and the assembled potential are
NaN/Inf-guarded so corrupted numbers fail loudly instead of reaching
the caller.  All recovery actions increment registry counters
(``block_retries``, ``block_fallbacks``, ``guard_trips``).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from threading import Lock

import numpy as np

from ..core.treecode import Treecode, TreecodeStats, record_eval_metrics
from ..direct import pairwise_potential
from ..multipole.expansion import m2p_rows
from ..multipole.harmonics import term_count
from ..obs.metrics import REGISTRY
from ..obs.tracing import is_enabled, span, stopwatch
from ..perf.scatter import scatter_add
from ..robust.faults import maybe_corrupt, maybe_fault, suppress_faults
from ..robust.guards import check_finite
from ..robust.retry import RetryExhausted, RetryPolicy, retry_call
from .partition import make_blocks

__all__ = [
    "ParallelResult",
    "BlockEvaluationError",
    "evaluate_parallel",
    "evaluate_plan_parallel",
    "original_points",
]


class BlockEvaluationError(RuntimeError):
    """A w-block failed its retries and every fallback."""


@dataclass
class ParallelResult:
    """Potential plus timing of a parallel self-evaluation."""

    potential: np.ndarray
    wall_time: float
    n_threads: int
    n_blocks: int
    stats: TreecodeStats
    n_retries: int = 0  #: block attempts retried after a failure
    n_fallbacks: int = 0  #: blocks recovered via serial/direct fallback


def original_points(tc: Treecode) -> np.ndarray:
    """Particle positions in the caller's original ordering."""
    tree = tc.tree
    pts = np.empty_like(tree.points)
    pts[tree.perm] = tree.points
    return pts


def _evaluate_block(tc: Treecode, sorted_positions: np.ndarray):
    """Evaluate the potential at a subset of the (sorted) source
    particles with exact self-exclusion.

    Reimplements the self-targets path of ``Treecode.evaluate`` for an
    index subset; all shared state (tree, coefficients) is read-only, so
    many blocks can run concurrently.
    """
    tree = tc.tree
    sub = np.asarray(sorted_positions, dtype=np.int64)
    tgt = tree.points[sub]
    lists = tc.traverse(tgt, self_targets=False)

    phi = np.zeros(sub.size, dtype=np.float64)
    stats = TreecodeStats(n_targets=sub.size)

    fn, ft = lists.far_nodes, lists.far_targets
    if fn.size:
        pdeg = tc.p_eval[fn]
        order = np.argsort(pdeg, kind="stable")
        fn, ft, pdeg = fn[order], ft[order], pdeg[order]
        uniq, starts = np.unique(pdeg, return_index=True)
        bnds = list(starts) + [fn.size]
        for u, (lo, hi) in zip(uniq, zip(bnds[:-1], bnds[1:])):
            p = int(u)
            nodes = fn[lo:hi]
            tids = ft[lo:hi]
            rel = tgt[tids] - tree.center_exp[nodes]
            np.add.at(phi, tids, m2p_rows(tc.coeffs[nodes], rel, p))
            stats.n_pc_interactions += hi - lo
            stats.n_terms += (hi - lo) * term_count(p)

    for leaf, tids in lists.near:
        s, e = int(tree.start[leaf]), int(tree.end[leaf])
        glob = sub[tids]
        excl = np.where((glob >= s) & (glob < e), glob - s, -1)
        phi[tids] += pairwise_potential(
            tgt[tids],
            tree.points[s:e],
            tree.charges[s:e],
            exclude=excl,
            softening=tc.softening,
        )
        stats.n_pp_pairs += tids.size * (e - s) - int(np.count_nonzero(excl >= 0))
    return phi, stats


def _direct_block(tc: Treecode, sorted_positions: np.ndarray):
    """Last-resort fallback: exact direct summation for one block.

    Evaluates the block's targets against *all* sources with
    self-exclusion — no multipole machinery at all, so it survives
    corrupted expansion coefficients.  The cost accounting charges the
    full ``|block| * (n - 1)`` particle pairs, keeping the merged
    :class:`TreecodeStats` consistent with the work actually done.
    """
    tree = tc.tree
    sub = np.asarray(sorted_positions, dtype=np.int64)
    phi = pairwise_potential(
        tree.points[sub],
        tree.points,
        tree.charges,
        exclude=sub,
        softening=tc.softening,
    )
    stats = TreecodeStats(n_targets=sub.size)
    stats.n_pp_pairs = sub.size * (tree.n_particles - 1)
    return phi, stats


def _recover_block(tc: Treecode, pos: np.ndarray, exc: Exception):
    """Graceful degradation for a persistently failing block.

    First re-evaluates the block serially on the coordinating path with
    fault injection suppressed — the same arithmetic as a healthy
    worker, so the recovered result is identical; if even that fails
    (e.g. corrupted coefficients), falls back to exact direct summation.
    """
    with suppress_faults():
        try:
            with span("robust.fallback", kind="serial", targets=int(pos.size)):
                vals, s = _evaluate_block(tc, pos)
            check_finite("parallel.fallback", vals, context="serial re-evaluation")
            REGISTRY.counter(
                "block_fallbacks", "blocks recovered via graceful degradation"
            ).inc()
            return vals, s
        except Exception:
            with span("robust.fallback", kind="direct", targets=int(pos.size)):
                vals, s = _direct_block(tc, pos)
            check_finite("parallel.fallback", vals, context="direct summation")
            REGISTRY.counter(
                "block_fallbacks", "blocks recovered via graceful degradation"
            ).inc()
            REGISTRY.counter(
                "block_fallbacks_direct", "blocks recovered via direct summation"
            ).inc()
            return vals, s


def evaluate_parallel(
    tc: Treecode,
    n_threads: int = 4,
    w: int = 64,
    ordering: str = "hilbert",
    retry: RetryPolicy | None = None,
) -> ParallelResult:
    """Evaluate the potential at the treecode's own particles in parallel.

    Parameters
    ----------
    tc:
        A built :class:`~repro.core.treecode.Treecode`.
    n_threads:
        Worker threads.
    w:
        Aggregation factor: particles per work unit (the paper
        aggregates w consecutive Hilbert-ordered particles per thread
        task).
    ordering:
        Block ordering; see :func:`repro.parallel.partition.make_blocks`.
    retry:
        Per-block :class:`~repro.robust.RetryPolicy` (deadline, retry
        count, backoff).  The default policy retries three times with
        millisecond-scale jittered backoff and no deadline; a block that
        exhausts its retries degrades to a serial (then direct-sum)
        fallback instead of failing the whole evaluation.

    Returns
    -------
    :class:`ParallelResult` with the potential in the original particle
    order — equal to ``tc.evaluate().potential`` up to rounding.
    """
    if n_threads < 1:
        raise ValueError(f"n_threads must be >= 1, got {n_threads}")
    policy = RetryPolicy() if retry is None else retry
    tree = tc.tree
    n = tree.n_particles
    to_sorted = np.empty(n, dtype=np.int64)
    to_sorted[tree.perm] = np.arange(n)
    blocks = make_blocks(original_points(tc), w, ordering=ordering)

    phi_sorted = np.zeros(n, dtype=np.float64)
    stats = TreecodeStats()  # per-block n_targets accumulate to n via merge
    recovery = {"retries": 0, "fallbacks": 0}
    recovery_lock = Lock()

    def attempt_block(pos: np.ndarray):
        maybe_fault("parallel.block")  # injected error/hang sites
        vals, s = _evaluate_block(tc, pos)
        vals = maybe_corrupt("parallel.block", vals)
        check_finite("parallel.block", vals, context="worker block output")
        return vals, s

    def run_block(idx_original: np.ndarray) -> TreecodeStats:
        # per-worker task timing: the span carries the recording
        # thread's id, so the exported trace shows each worker's lane
        with span("parallel.block", targets=int(idx_original.size)) as sp:
            pos = to_sorted[idx_original]
            fellback = False
            try:
                (vals, s), attempts = retry_call(
                    lambda: attempt_block(pos),
                    policy,
                    site="parallel.block",
                    seed=int(pos[0]) if pos.size else 0,
                )
            except RetryExhausted as exc:
                attempts = policy.max_retries + 1
                fellback = True
                try:
                    vals, s = _recover_block(tc, pos, exc)
                except Exception as final:
                    raise BlockEvaluationError(
                        f"block of {pos.size} targets failed {attempts} attempts "
                        f"and all fallbacks: {final}"
                    ) from exc
            phi_sorted[pos] = vals
            with recovery_lock:
                recovery["retries"] += attempts - 1
                recovery["fallbacks"] += int(fellback)
        if is_enabled():
            REGISTRY.histogram(
                "parallel_block_seconds", "wall time per worker block"
            ).observe(sp.elapsed)
            record_eval_metrics(s)
        return s

    sw = stopwatch(
        "parallel.evaluate", threads=n_threads, blocks=len(blocks), ordering=ordering
    )
    with sw:
        if n_threads == 1:
            for blk in blocks:
                stats.merge(run_block(blk))
        else:
            with ThreadPoolExecutor(max_workers=n_threads) as pool:
                for s in pool.map(run_block, blocks):
                    stats.merge(s)
    wall = sw.elapsed

    phi = np.empty(n, dtype=np.float64)
    phi[tree.perm] = phi_sorted
    check_finite("parallel.potential", phi, context="assembled parallel potential")
    return ParallelResult(
        potential=phi,
        wall_time=wall,
        n_threads=n_threads,
        n_blocks=len(blocks),
        stats=stats,
        n_retries=recovery["retries"],
        n_fallbacks=recovery["fallbacks"],
    )


def evaluate_plan_parallel(
    plan,
    charges: np.ndarray,
    n_threads: int = 4,
    retry: RetryPolicy | None = None,
) -> ParallelResult:
    """Execute a :class:`~repro.perf.plan.CompiledPlan` with its work
    units (far-field chunks + near-field dense blocks) spread over a
    thread pool.

    Coefficient formation is serial (it is one segmented GEMV); the
    independent, read-only evaluation units then run concurrently and
    their ``(targets, values)`` contributions are merged on the
    coordinating thread in deterministic unit order, so the result is
    bitwise-reproducible across thread counts and equals
    ``plan.execute(charges).potential`` exactly.  Potential only —
    gradient/bound plans still execute, contributing just their
    potential parts.

    Fault tolerance matches :func:`evaluate_parallel`: each unit runs
    under the ``parallel.block`` injection site with a
    :class:`~repro.robust.RetryPolicy`, and a unit that exhausts its
    retries is recomputed serially with fault injection suppressed —
    identical arithmetic, so recovery does not perturb the result.
    """
    if n_threads < 1:
        raise ValueError(f"n_threads must be >= 1, got {n_threads}")
    policy = RetryPolicy() if retry is None else retry
    q_sorted = plan.sort_charges(charges)
    n_units = plan.n_units
    recovery = {"retries": 0, "fallbacks": 0}
    recovery_lock = Lock()

    sw = stopwatch("parallel.plan_execute", threads=n_threads, units=n_units)
    with sw:
        ctx = plan.form_coefficients(q_sorted)

        def attempt_unit(i: int):
            maybe_fault("parallel.block")  # injected error/hang sites
            tids, vals = plan.execute_unit(ctx, q_sorted, i)
            vals = maybe_corrupt("parallel.block", vals)
            check_finite("parallel.block", vals, context="plan unit output")
            return tids, vals

        def run_unit(i: int):
            with span("parallel.block", unit=i) as sp:
                fellback = False
                try:
                    (tids, vals), attempts = retry_call(
                        lambda: attempt_unit(i),
                        policy,
                        site="parallel.block",
                        seed=i,
                    )
                except RetryExhausted as exc:
                    attempts = policy.max_retries + 1
                    fellback = True
                    # same arithmetic, injection suppressed -> identical
                    with suppress_faults():
                        try:
                            with span("robust.fallback", kind="plan_unit", unit=i):
                                tids, vals = plan.execute_unit(ctx, q_sorted, i)
                            check_finite(
                                "parallel.fallback", vals, context="plan unit redo"
                            )
                            REGISTRY.counter(
                                "block_fallbacks",
                                "blocks recovered via graceful degradation",
                            ).inc()
                        except Exception as final:
                            raise BlockEvaluationError(
                                f"plan unit {i} failed {attempts} attempts and "
                                f"the suppressed-fault fallback: {final}"
                            ) from exc
                with recovery_lock:
                    recovery["retries"] += attempts - 1
                    recovery["fallbacks"] += int(fellback)
            if is_enabled():
                REGISTRY.histogram(
                    "parallel_block_seconds", "wall time per worker block"
                ).observe(sp.elapsed)
            return tids, vals

        phi = np.zeros(plan.n_targets, dtype=np.float64)
        if n_threads == 1:
            results = map(run_unit, range(n_units))
            for tids, vals in results:
                scatter_add(phi, tids, vals)
        else:
            with ThreadPoolExecutor(max_workers=n_threads) as pool:
                # pool.map preserves unit order -> deterministic merge
                for tids, vals in pool.map(run_unit, range(n_units)):
                    scatter_add(phi, tids, vals)
        phi, _, _ = plan.finalize(phi)
    wall = sw.elapsed

    stats = plan._clone_stats()
    stats.eval_time = wall
    if is_enabled():
        record_eval_metrics(stats)
    return ParallelResult(
        potential=phi,
        wall_time=wall,
        n_threads=n_threads,
        n_blocks=n_units,
        stats=stats,
        n_retries=recovery["retries"],
        n_fallbacks=recovery["fallbacks"],
    )
