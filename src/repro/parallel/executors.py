"""Real parallel evaluation of the treecode (thread pool).

The traversal is embarrassingly parallel over targets — each particle's
tree walk is independent, which is "the concurrency available in
independent tree traversal of each particle" the paper's threaded
formulation exploits.  The executor splits the targets into
Hilbert-ordered w-blocks and evaluates the blocks concurrently against
the shared read-only tree and coefficient arrays.

Each target's contributions are accumulated in the same
(preorder-traversal) order regardless of which other targets share its
block, so the parallel result matches the serial result to floating-
point associativity (vector-reduction blocking inside ``einsum`` can
differ at the ULP level between batch shapes); the test suite asserts
agreement to 1e-12 relative tolerance.

Note on this host: heavy NumPy kernels release the GIL, so threads give
genuine concurrency on multi-core machines; on a single-core host the
executor is still exercised for correctness while
:mod:`repro.parallel.machine` provides the scaling numbers.

Fault tolerance (see :mod:`repro.robust`): each w-block runs under a
:class:`~repro.robust.RetryPolicy` — failed or deadline-exceeded
attempts are retried with decorrelated-jitter backoff, a block that
keeps failing degrades gracefully to a serial re-evaluation with fault
injection suppressed, and as a last resort to exact direct summation
over all sources.  Block outputs and the assembled potential are
NaN/Inf-guarded so corrupted numbers fail loudly instead of reaching
the caller.  All recovery actions increment registry counters
(``block_retries``, ``block_fallbacks``, ``guard_trips``).
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor, as_completed
from dataclasses import dataclass, replace
from threading import Lock

import numpy as np

from ..core.treecode import Treecode, TreecodeStats, record_eval_metrics
from ..direct import pairwise_potential
from ..multipole.expansion import m2p_rows
from ..multipole.harmonics import term_count
from ..obs import journal
from ..obs.metrics import REGISTRY
from ..obs.tracing import get_tracer, is_enabled, span, stopwatch
from ..perf.scatter import scatter_add
from ..robust.faults import (
    InjectedFault,
    maybe_corrupt,
    maybe_fault,
    suppress_faults,
)
from ..robust.guards import check_finite
from ..robust.retry import RetryExhausted, RetryPolicy, retry_call
from ..robust.supervisor import (
    BackendDegraded,
    Supervisor,
    SupervisorConfig,
    complete_quarantined,
    create_segment,
    default_config,
    release_segment,
    run_supervised_plan_process,
)
from .partition import make_blocks

__all__ = [
    "ParallelResult",
    "BlockEvaluationError",
    "evaluate_parallel",
    "evaluate_plan_parallel",
    "original_points",
    "resolve_workers",
    "ENV_WORKERS",
]

#: Environment variable read by :func:`resolve_workers` — the single
#: worker-count knob for both the thread and process backends.
ENV_WORKERS = "REPRO_NUM_WORKERS"


def resolve_workers(requested: int | None = None, default: int = 4) -> int:
    """Resolve a worker count: explicit argument, else the
    ``REPRO_NUM_WORKERS`` environment variable, else ``default``.

    Every parallel entry point (thread pool, process pool, the CLI
    ``--workers`` flag) funnels through this so one setting controls
    them all.
    """
    if requested is not None:
        n = int(requested)
    else:
        env = os.environ.get(ENV_WORKERS, "").strip()
        n = int(env) if env else int(default)
    if n < 1:
        raise ValueError(f"worker count must be >= 1, got {n}")
    return n


class BlockEvaluationError(RuntimeError):
    """A w-block failed its retries and every fallback."""


def _resolve_supervision(supervise) -> Supervisor | None:
    """Normalize the ``supervise`` argument to a live supervisor.

    ``None`` defers to the environment (``REPRO_SUPERVISE`` via
    :func:`~repro.robust.supervisor.default_config`), ``False`` disables
    supervision outright, ``True`` enables it with the environment's
    config (or defaults), and a :class:`SupervisorConfig` /
    :class:`Supervisor` is used as given.
    """
    if supervise is None:
        cfg = default_config()
        return Supervisor(cfg) if cfg is not None else None
    if supervise is False:
        return None
    if supervise is True:
        return Supervisor(default_config() or SupervisorConfig())
    if isinstance(supervise, SupervisorConfig):
        return Supervisor(supervise)
    if isinstance(supervise, Supervisor):
        return supervise
    raise TypeError(
        f"supervise must be None, bool, SupervisorConfig or Supervisor, "
        f"got {type(supervise).__name__}"
    )


@dataclass
class ParallelResult:
    """Potential plus timing of a parallel self-evaluation."""

    potential: np.ndarray
    wall_time: float
    n_threads: int
    n_blocks: int
    stats: TreecodeStats
    n_retries: int = 0  #: block attempts retried after a failure
    n_fallbacks: int = 0  #: blocks recovered via serial/direct fallback
    n_quarantined: int = 0  #: poison units completed by the supervisor
    n_reaped: int = 0  #: hung/over-budget workers SIGKILLed
    n_degradations: int = 0  #: backend downgrades along the ladder
    backend: str = "thread"  #: backend the run was *requested* on


def original_points(tc: Treecode) -> np.ndarray:
    """Particle positions in the caller's original ordering."""
    tree = tc.tree
    pts = np.empty_like(tree.points)
    pts[tree.perm] = tree.points
    return pts


def _evaluate_block(tc: Treecode, sorted_positions: np.ndarray):
    """Evaluate the potential at a subset of the (sorted) source
    particles with exact self-exclusion.

    Reimplements the self-targets path of ``Treecode.evaluate`` for an
    index subset; all shared state (tree, coefficients) is read-only, so
    many blocks can run concurrently.
    """
    tree = tc.tree
    sub = np.asarray(sorted_positions, dtype=np.int64)
    tgt = tree.points[sub]
    lists = tc.traverse(tgt, self_targets=False)

    phi = np.zeros(sub.size, dtype=np.float64)
    stats = TreecodeStats(n_targets=sub.size)

    fn, ft = lists.far_nodes, lists.far_targets
    if fn.size:
        pdeg = tc.p_eval[fn]
        order = np.argsort(pdeg, kind="stable")
        fn, ft, pdeg = fn[order], ft[order], pdeg[order]
        uniq, starts = np.unique(pdeg, return_index=True)
        bnds = list(starts) + [fn.size]
        for u, (lo, hi) in zip(uniq, zip(bnds[:-1], bnds[1:])):
            p = int(u)
            nodes = fn[lo:hi]
            tids = ft[lo:hi]
            rel = tgt[tids] - tree.center_exp[nodes]
            np.add.at(phi, tids, m2p_rows(tc.coeffs[nodes], rel, p))
            stats.n_pc_interactions += hi - lo
            stats.n_terms += (hi - lo) * term_count(p)

    for leaf, tids in lists.near:
        s, e = int(tree.start[leaf]), int(tree.end[leaf])
        glob = sub[tids]
        excl = np.where((glob >= s) & (glob < e), glob - s, -1)
        phi[tids] += pairwise_potential(
            tgt[tids],
            tree.points[s:e],
            tree.charges[s:e],
            exclude=excl,
            softening=tc.softening,
        )
        stats.n_pp_pairs += tids.size * (e - s) - int(np.count_nonzero(excl >= 0))
    return phi, stats


def _direct_block(tc: Treecode, sorted_positions: np.ndarray):
    """Last-resort fallback: exact direct summation for one block.

    Evaluates the block's targets against *all* sources with
    self-exclusion — no multipole machinery at all, so it survives
    corrupted expansion coefficients.  The cost accounting charges the
    full ``|block| * (n - 1)`` particle pairs, keeping the merged
    :class:`TreecodeStats` consistent with the work actually done.
    """
    tree = tc.tree
    sub = np.asarray(sorted_positions, dtype=np.int64)
    phi = pairwise_potential(
        tree.points[sub],
        tree.points,
        tree.charges,
        exclude=sub,
        softening=tc.softening,
    )
    stats = TreecodeStats(n_targets=sub.size)
    stats.n_pp_pairs = sub.size * (tree.n_particles - 1)
    return phi, stats


def _recover_block(tc: Treecode, pos: np.ndarray, exc: Exception):
    """Graceful degradation for a persistently failing block.

    First re-evaluates the block serially on the coordinating path with
    fault injection suppressed — the same arithmetic as a healthy
    worker, so the recovered result is identical; if even that fails
    (e.g. corrupted coefficients), falls back to exact direct summation.
    """
    with suppress_faults():
        try:
            with span("robust.fallback", kind="serial", targets=int(pos.size)):
                vals, s = _evaluate_block(tc, pos)
            check_finite("parallel.fallback", vals, context="serial re-evaluation")
            REGISTRY.counter(
                "block_fallbacks", "blocks recovered via graceful degradation"
            ).inc()
            journal.emit(
                "fallback", site="parallel.block", kind="serial", targets=int(pos.size)
            )
            return vals, s
        except Exception:
            with span("robust.fallback", kind="direct", targets=int(pos.size)):
                vals, s = _direct_block(tc, pos)
            check_finite("parallel.fallback", vals, context="direct summation")
            REGISTRY.counter(
                "block_fallbacks", "blocks recovered via graceful degradation"
            ).inc()
            REGISTRY.counter(
                "block_fallbacks_direct", "blocks recovered via direct summation"
            ).inc()
            journal.emit(
                "fallback", site="parallel.block", kind="direct", targets=int(pos.size)
            )
            return vals, s


def evaluate_parallel(
    tc: Treecode,
    n_threads: int | None = None,
    w: int = 64,
    ordering: str = "hilbert",
    retry: RetryPolicy | None = None,
    supervise=None,
) -> ParallelResult:
    """Evaluate the potential at the treecode's own particles in parallel.

    Parameters
    ----------
    tc:
        A built :class:`~repro.core.treecode.Treecode`.
    n_threads:
        Worker threads; ``None`` defers to :func:`resolve_workers`
        (``REPRO_NUM_WORKERS``, else 4).
    w:
        Aggregation factor: particles per work unit (the paper
        aggregates w consecutive Hilbert-ordered particles per thread
        task).
    ordering:
        Block ordering; see :func:`repro.parallel.partition.make_blocks`.
    retry:
        Per-block :class:`~repro.robust.RetryPolicy` (deadline, retry
        count, backoff).  The default policy retries three times with
        millisecond-scale jittered backoff and no deadline; a block that
        exhausts its retries degrades to a serial (then direct-sum)
        fallback instead of failing the whole evaluation.
    supervise:
        Opt into supervision (``None`` = defer to ``REPRO_SUPERVISE``):
        per-block attempts get the supervisor's adaptive deadline, a
        block failing ``quarantine_after`` times counts as quarantined,
        and accumulated failures past ``max_unit_failures`` degrade the
        remaining blocks to the suppressed-serial path.

    Returns
    -------
    :class:`ParallelResult` with the potential in the original particle
    order — equal to ``tc.evaluate().potential`` up to rounding.
    """
    n_threads = resolve_workers(n_threads)
    policy = RetryPolicy() if retry is None else retry
    sup = _resolve_supervision(supervise)
    tree = tc.tree
    n = tree.n_particles
    to_sorted = np.empty(n, dtype=np.int64)
    to_sorted[tree.perm] = np.arange(n)
    blocks = make_blocks(original_points(tc), w, ordering=ordering)

    phi_sorted = np.zeros(n, dtype=np.float64)
    stats = TreecodeStats()  # per-block n_targets accumulate to n via merge
    recovery = {"retries": 0, "fallbacks": 0}
    recovery_lock = Lock()
    degraded = [False]  # once-only thread -> serial degradation marker

    def attempt_block(pos: np.ndarray):
        maybe_fault("parallel.block")  # injected error/hang sites
        vals, s = _evaluate_block(tc, pos)
        vals = maybe_corrupt("parallel.block", vals)
        check_finite("parallel.block", vals, context="worker block output")
        return vals, s

    def run_block(task) -> TreecodeStats:
        bid, idx_original = task
        # per-worker task timing: the span carries the recording
        # thread's id, so the exported trace shows each worker's lane.
        # Supervised runs need the duration as *control data* (it feeds
        # the adaptive deadline), so they use the always-timing
        # stopwatch — a plain span's elapsed is 0.0 with tracing off.
        make_span = span if sup is None else stopwatch
        with make_span("parallel.block", targets=int(idx_original.size)) as sp:
            pos = to_sorted[idx_original]
            fellback = False
            pol = policy
            if sup is not None and pol.deadline is None:
                pol = replace(policy, deadline=sup.deadline())
            if sup is not None and sup.tripped:
                # breaker open: skip the parallel attempt entirely and
                # run the suppressed-serial recovery path directly
                vals, s = _recover_block(tc, pos, BackendDegraded(
                    "thread", sup.trip_reason or "breaker"
                ))
                attempts = 1
                fellback = True
            else:
                try:
                    (vals, s), attempts = retry_call(
                        lambda: attempt_block(pos),
                        pol,
                        site="parallel.block",
                        seed=int(pos[0]) if pos.size else 0,
                    )
                    if sup is not None:
                        sup.record_duration(sp.elapsed)
                except RetryExhausted as exc:
                    attempts = policy.max_retries + 1
                    fellback = True
                    try:
                        vals, s = _recover_block(tc, pos, exc)
                    except Exception as final:
                        raise BlockEvaluationError(
                            f"block of {pos.size} targets failed {attempts} "
                            f"attempts and all fallbacks: {final}"
                        ) from exc
                    if sup is not None:
                        if sup.record_failure(bid):
                            sup.on_quarantine(bid, "serial")
                        with recovery_lock:
                            if (
                                sup.total_failures()
                                >= sup.cfg.max_unit_failures
                                and not sup.tripped
                            ):
                                sup.trip("unit_failures")
                            if sup.tripped and not degraded[0]:
                                degraded[0] = True
                                sup.on_degrade(
                                    "thread",
                                    "serial",
                                    sup.trip_reason or "breaker",
                                    len(blocks) - bid - 1,
                                )
            phi_sorted[pos] = vals
            with recovery_lock:
                recovery["retries"] += attempts - 1
                recovery["fallbacks"] += int(fellback)
        if is_enabled():
            REGISTRY.histogram(
                "parallel_block_seconds", "wall time per worker block"
            ).observe(sp.elapsed)
            record_eval_metrics(s)
        return s

    sw = stopwatch(
        "parallel.evaluate", threads=n_threads, blocks=len(blocks), ordering=ordering
    )
    with sw:
        if n_threads == 1:
            for task in enumerate(blocks):
                stats.merge(run_block(task))
        else:
            with ThreadPoolExecutor(max_workers=n_threads) as pool:
                for s in pool.map(run_block, enumerate(blocks)):
                    stats.merge(s)
    wall = sw.elapsed

    phi = np.empty(n, dtype=np.float64)
    phi[tree.perm] = phi_sorted
    check_finite("parallel.potential", phi, context="assembled parallel potential")
    return ParallelResult(
        potential=phi,
        wall_time=wall,
        n_threads=n_threads,
        n_blocks=len(blocks),
        stats=stats,
        n_retries=recovery["retries"],
        n_fallbacks=recovery["fallbacks"],
        n_quarantined=sup.n_quarantines if sup else 0,
        n_reaped=sup.n_reaps if sup else 0,
        n_degradations=sup.n_degradations if sup else 0,
        backend="thread",
    )


def _plan_unit_redo(plan, ctx, q_sorted, i: int, exc: Exception, attempts: int):
    """Suppressed-fault serial redo of one plan unit on the coordinating
    process — the same arithmetic as a healthy worker, so the recovered
    contribution is identical."""
    with suppress_faults():
        try:
            with span("robust.fallback", kind="plan_unit", unit=i):
                tids, vals = plan.execute_unit(ctx, q_sorted, i)
            check_finite("parallel.fallback", vals, context="plan unit redo")
            REGISTRY.counter(
                "block_fallbacks", "blocks recovered via graceful degradation"
            ).inc()
            journal.emit("fallback", site="parallel.block", kind="plan_unit", unit=i)
            return tids, vals
        except Exception as final:
            raise BlockEvaluationError(
                f"plan unit {i} failed {attempts} attempts and "
                f"the suppressed-fault fallback: {final}"
            ) from exc


#: Pre-fork state inherited by process-pool workers (copy-on-write):
#: the plan object plus shared-memory views of the charge vector and
#: coefficient operands.  Set by :func:`_execute_plan_units_process`
#: immediately before the pool forks, cleared after.
_PROC_STATE: dict = {}


def _plan_process_unit(i: int):
    """Worker-side evaluation of one plan unit (process backend).

    Runs in a forked worker: the plan and operands come from the
    inherited :data:`_PROC_STATE` (zero-copy — shared memory for the
    numeric operands, copy-on-write for the plan's frozen index
    arrays).  The ``parallel.kill`` site simulates a hard worker crash
    (``os._exit``), surfacing to the parent as a broken pool; the
    ``parallel.block`` site and retry policy behave exactly as in the
    thread backend.

    Telemetry: when observability was enabled at fork time, the worker
    runs its own tracer/metrics registry per unit — cleared at unit
    start (dropping state inherited from the parent or a previous
    unit), snapshotted at unit end — and ships the snapshot back inside
    the result payload.  The parent merges every snapshot, so spans
    land in the exported trace under this worker's true pid and
    counters/histograms recorded here (retries, injected faults, block
    timings) sum into the parent registry exactly as the thread
    backend's would.  A unit that fails all its retries loses its
    snapshot (only the exception travels back); the parent's serial
    redo re-records that unit's recovery on the parent side.
    """
    st = _PROC_STATE
    plan, ctx, q_sorted, policy = st["plan"], st["ctx"], st["q"], st["policy"]
    try:
        maybe_fault("parallel.kill")
    except InjectedFault:
        os._exit(3)  # simulated hard crash: no cleanup, no exception
    obs_on = is_enabled()
    if obs_on:
        get_tracer().clear()
        REGISTRY.reset()

    def attempt():
        maybe_fault("parallel.block")
        tids, vals = plan.execute_unit(ctx, q_sorted, i)
        vals = maybe_corrupt("parallel.block", vals)
        check_finite("parallel.block", vals, context="plan unit output")
        return tids, vals

    with span("parallel.block", unit=i) as sp:
        try:
            (tids, vals), attempts = retry_call(
                attempt, policy, site="parallel.block", seed=i
            )
        except RetryExhausted as exc:
            # multi-arg exception constructors (RetryExhausted, the chained
            # InjectedFault) do not survive pickling back to the parent —
            # flatten to a plain RuntimeError the pool can transport
            raise RuntimeError(str(exc)) from None
    telemetry = None
    if obs_on:
        REGISTRY.histogram(
            "parallel_block_seconds", "wall time per worker block"
        ).observe(sp.elapsed)
        telemetry = {"spans": get_tracer().snapshot(), "metrics": REGISTRY.to_dict()}
    return tids, vals, attempts, telemetry


def _merge_worker_telemetry(telemetry: dict | None) -> None:
    """Fold one worker snapshot into the parent tracer/registry.

    Spans keep their worker pid (multi-process flame graph in
    Perfetto); counters sum, gauges take the worker's last write,
    histograms merge bucket-wise — so a process-backed run reports the
    same deterministic counters as a serial run of the same plan.
    """
    if telemetry is None:
        return
    get_tracer().ingest(telemetry["spans"])
    REGISTRY.merge_snapshot(telemetry["metrics"])
    REGISTRY.counter(
        "worker_snapshots_merged", "worker telemetry snapshots merged by the parent"
    ).inc()


def _execute_plan_units_process(plan, ctx, q_sorted, n_workers, policy, recovery):
    """Spread plan units over a forked process pool; returns the merged
    (Morton-sorted) potential.

    The charge vector and per-degree coefficient operands are placed in
    ``multiprocessing.shared_memory`` segments before the fork, so
    workers read them zero-copy; the plan's frozen geometry travels by
    copy-on-write page sharing.  Results are merged on the parent in
    deterministic unit order (bitwise-identical to the serial and thread
    paths).  Recovery ladder per unit: in-worker retries → suppressed
    serial redo on the parent; a worker death (e.g. the ``block_kill``
    fault) breaks the pool and every unfinished unit is redone serially.
    """
    import multiprocessing as mp
    from concurrent.futures import ProcessPoolExecutor
    from concurrent.futures.process import BrokenProcessPool

    global _PROC_STATE
    segments = []

    def share(arr: np.ndarray) -> np.ndarray:
        # tracked named segments: unlinked here in the finally, and by
        # the supervisor module's atexit/SIGTERM hooks if this frame
        # never gets to run (a SIGINT'd run leaves no /dev/shm residue)
        shm = create_segment(arr.nbytes)
        view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
        view[...] = arr
        segments.append(shm)
        return view

    n_units = plan.n_units
    results: dict[int, tuple] = {}
    try:
        q_shared = share(q_sorted)
        ctx_shared = {
            p: (share(C), share(A) if A is not None else None)
            for p, (C, A) in ctx.items()
        }
        _PROC_STATE = {
            "plan": plan,
            "ctx": ctx_shared,
            "q": q_shared,
            "policy": policy,
        }
        mpctx = mp.get_context("fork")
        broken = False
        with ProcessPoolExecutor(max_workers=n_workers, mp_context=mpctx) as pool:
            futures = {i: pool.submit(_plan_process_unit, i) for i in range(n_units)}
            for i, fut in futures.items():
                if broken:
                    break
                try:
                    tids, vals, attempts, telemetry = fut.result()
                    results[i] = (tids, vals)
                    recovery["retries"] += attempts - 1
                    _merge_worker_telemetry(telemetry)
                except BrokenProcessPool:
                    broken = True
                except Exception as exc:
                    # in-worker retries exhausted (or its output failed
                    # the guards): redo serially, injection suppressed
                    attempts = policy.max_retries + 1
                    results[i] = _plan_unit_redo(
                        plan, ctx, q_sorted, i, exc, attempts
                    )[:2]
                    recovery["retries"] += policy.max_retries
                    recovery["fallbacks"] += 1
        if broken:
            # a worker died mid-run: serially complete every unit whose
            # result never arrived
            REGISTRY.counter(
                "pool_breakages", "process pools broken by worker death"
            ).inc()
            journal.emit(
                "pool_breakage",
                backend="process",
                units_lost=n_units - len(results),
            )
            for i in range(n_units):
                if i not in results:
                    exc = BrokenProcessPool("worker died mid-run")
                    results[i] = _plan_unit_redo(plan, ctx, q_sorted, i, exc, 1)[:2]
                    recovery["fallbacks"] += 1
    finally:
        _PROC_STATE = {}
        for shm in segments:
            release_segment(shm)

    phi = np.zeros((plan.n_targets,) + q_sorted.shape[1:], dtype=np.float64)
    for i in range(n_units):  # deterministic merge order
        tids, vals = results[i]
        scatter_add(phi, tids, vals)
    return phi


def _execute_plan_units_thread(
    plan, ctx, q_sorted, n_workers, policy, recovery, sup, results
):
    """Supervised thread-backend stage of the degradation ladder.

    Completes every unit not already in ``results``.  Attempts run
    under a per-attempt deadline (the policy's, or the supervisor's
    adaptive one), so a hung kernel is abandoned rather than waited on;
    a unit that exhausts its retries strikes toward quarantine and is
    otherwise redone with faults suppressed.  Accumulated unit failures
    past ``max_unit_failures`` trip the breaker: the stage raises
    :class:`BackendDegraded`, keeping completed results, and the caller
    drops to the serial rung.
    """
    pending = [i for i in range(plan.n_units) if i not in results]
    lock = Lock()

    def run_unit(i: int):
        pol = policy
        if pol.deadline is None:
            pol = replace(policy, deadline=sup.deadline())

        def attempt():
            maybe_fault("parallel.block")
            tids, vals = plan.execute_unit(ctx, q_sorted, i)
            vals = maybe_corrupt("parallel.block", vals)
            check_finite("parallel.block", vals, context="plan unit output")
            return tids, vals

        # stopwatch, not span: the elapsed time feeds the supervisor's
        # adaptive deadline, and a plain span reads 0.0 with tracing off
        with stopwatch("parallel.block", unit=i) as sp:
            out = retry_call(attempt, pol, site="parallel.block", seed=i)
        sup.record_duration(sp.elapsed)
        if is_enabled():
            REGISTRY.histogram(
                "parallel_block_seconds", "wall time per worker block"
            ).observe(sp.elapsed)
        return out

    def on_failure(i: int, exc: Exception) -> None:
        with lock:
            recovery["retries"] += policy.max_retries
            if sup.record_failure(i):
                results[i] = complete_quarantined(plan, ctx, q_sorted, i, sup)
                recovery["fallbacks"] += 1
            else:
                results[i] = _plan_unit_redo(
                    plan, ctx, q_sorted, i, exc, policy.max_retries + 1
                )
                recovery["fallbacks"] += 1
            if sup.total_failures() >= sup.cfg.max_unit_failures:
                sup.trip("unit_failures")

    if n_workers == 1:
        for i in pending:
            if sup.tripped:
                break
            try:
                (tids, vals), attempts = run_unit(i)
                results[i] = (tids, vals)
                recovery["retries"] += attempts - 1
            except Exception as exc:
                on_failure(i, exc)
    else:
        with ThreadPoolExecutor(max_workers=n_workers) as pool:
            futs = {pool.submit(run_unit, i): i for i in pending}
            for fut in as_completed(futs):
                if fut.cancelled():
                    continue
                i = futs[fut]
                try:
                    (tids, vals), attempts = fut.result()
                    if i not in results:
                        results[i] = (tids, vals)
                        with lock:
                            recovery["retries"] += attempts - 1
                except Exception as exc:
                    on_failure(i, exc)
                if sup.tripped:
                    # in-flight units finish (their attempt deadlines
                    # bound the wait); queued ones cancel and fall to
                    # the next rung
                    pool.shutdown(wait=False, cancel_futures=True)
                    break
    if sup.tripped:
        raise BackendDegraded("thread", sup.trip_reason or "breaker")


def _execute_plan_units_serial_suppressed(plan, ctx, q_sorted, recovery, results):
    """Ladder floor: complete remaining units serially on the parent
    with fault injection suppressed (identical arithmetic)."""
    for i in range(plan.n_units):
        if i in results:
            continue
        results[i] = _plan_unit_redo(
            plan, ctx, q_sorted, i, RuntimeError("backend degraded to serial"), 1
        )
        recovery["fallbacks"] += 1


def _execute_plan_units_supervised(
    plan, ctx, q_sorted, n_workers, policy, recovery, sup
):
    """Supervised process-backend execution with the full degradation
    ladder: supervised worker fleet → supervised thread pool → serial
    suppressed.  Completed units carry across rungs, so a degradation
    only re-plans the remainder.  Returns the merged (Morton-sorted)
    potential — bitwise-identical to serial regardless of which rungs
    ran (quarantined units that needed direct summation excepted, and
    those stay within the Theorem-1 ledger).
    """
    segments = []

    def share(arr: np.ndarray) -> np.ndarray:
        shm = create_segment(arr.nbytes)
        view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
        view[...] = arr
        segments.append(shm)
        return view

    n_units = plan.n_units
    results: dict[int, tuple] = {}
    try:
        q_shared = share(q_sorted)
        ctx_shared = {
            p: (share(C), share(A) if A is not None else None)
            for p, (C, A) in ctx.items()
        }
        try:
            run_supervised_plan_process(
                plan,
                ctx_shared,
                q_shared,
                ctx,
                q_sorted,
                n_workers,
                policy,
                sup,
                results,
                recovery,
                _merge_worker_telemetry,
            )
        except BackendDegraded as deg:
            sup.on_degrade(
                "process", "thread", deg.reason, n_units - len(results)
            )
            try:
                _execute_plan_units_thread(
                    plan, ctx, q_sorted, n_workers, policy, recovery, sup, results
                )
            except BackendDegraded as deg2:
                sup.on_degrade(
                    "thread", "serial", deg2.reason, n_units - len(results)
                )
                _execute_plan_units_serial_suppressed(
                    plan, ctx, q_sorted, recovery, results
                )
    finally:
        for shm in segments:
            release_segment(shm)

    phi = np.zeros((plan.n_targets,) + q_sorted.shape[1:], dtype=np.float64)
    for i in range(n_units):  # deterministic merge order
        tids, vals = results[i]
        scatter_add(phi, tids, vals)
    return phi


def evaluate_plan_parallel(
    plan,
    charges: np.ndarray,
    n_threads: int | None = None,
    retry: RetryPolicy | None = None,
    backend: str = "thread",
    supervise=None,
) -> ParallelResult:
    """Execute a compiled plan (:class:`~repro.perf.plan.CompiledPlan`
    or :class:`~repro.perf.cluster.ClusterPlan`) with its work units
    spread over a worker pool.

    Coefficient formation is serial (it is one segmented GEMV); the
    independent, read-only evaluation units then run concurrently and
    their ``(targets, values)`` contributions are merged on the
    coordinating thread in deterministic unit order, so the result is
    bitwise-reproducible across worker counts and backends and equals
    ``plan.execute(charges).potential`` exactly.  Potential only —
    gradient/bound plans still execute, contributing just their
    potential parts.  ``charges`` may be an ``(n, k)`` batch of stacked
    charge vectors (see :meth:`~repro.perf.plan.CompiledPlan.execute`);
    the potential is then ``(n, k)``, every kernel runs once over the
    whole batch, and ``k=1`` remains bitwise-identical to the plain
    vector path.

    ``backend="thread"`` (default) uses a thread pool — NumPy kernels
    release the GIL, so threads overlap on multi-core hosts with zero
    serialization cost.  ``backend="process"`` forks a process pool:
    the charge vector and coefficient operands go into
    ``multiprocessing.shared_memory`` (read zero-copy by every worker),
    the plan's frozen geometry is inherited copy-on-write, and only the
    per-unit result vectors travel back.  Worker counts come from
    ``n_threads`` via :func:`resolve_workers` (``REPRO_NUM_WORKERS``
    env var, else 4) for both backends.

    Fault tolerance matches :func:`evaluate_parallel`: each unit runs
    under the ``parallel.block`` injection site with a
    :class:`~repro.robust.RetryPolicy`, and a unit that exhausts its
    retries is recomputed serially with fault injection suppressed —
    identical arithmetic, so recovery does not perturb the result.  The
    process backend adds the ``parallel.kill`` site (``block_kill``
    mode): a killed worker breaks the pool and every unit without a
    result is recomputed serially on the parent.

    ``supervise`` opts into the supervision layer
    (:mod:`repro.robust.supervisor`): ``None`` defers to the
    ``REPRO_SUPERVISE`` environment (the CLI ``--supervise`` flag),
    ``True``/``False`` force it on/off, and a
    :class:`~repro.robust.supervisor.SupervisorConfig` customizes
    thresholds.  Supervised process runs get worker heartbeats, hang and
    RSS watchdogs, poison-unit quarantine, and the ``process -> thread
    -> serial`` degradation ladder; supervised thread runs get adaptive
    per-attempt deadlines, quarantine, and the ``thread -> serial``
    rung.  Supervision preserves the deterministic unit-order merge —
    results stay bitwise-identical to serial unless a quarantined unit
    had to fall all the way to exact direct summation.
    """
    if backend not in ("thread", "process"):
        raise ValueError(f"backend must be 'thread' or 'process', got {backend!r}")
    charges = np.asarray(charges, dtype=np.float64)
    if charges.ndim == 2 and charges.shape[1] == 1:
        # single-column batches run the 1-D path (bitwise-identical to a
        # plain vector) and regain the column axis on the way out
        res = evaluate_plan_parallel(
            plan,
            charges[:, 0],
            n_threads=n_threads,
            retry=retry,
            backend=backend,
            supervise=supervise,
        )
        res.potential = res.potential[:, None]
        return res
    n_threads = resolve_workers(n_threads)
    policy = RetryPolicy() if retry is None else retry
    sup = _resolve_supervision(supervise)
    q_sorted = plan.sort_charges(charges)
    n_units = plan.n_units
    recovery = {"retries": 0, "fallbacks": 0}
    recovery_lock = Lock()

    sw = stopwatch(
        "parallel.plan_execute", threads=n_threads, units=n_units, backend=backend
    )
    with sw:
        ctx = plan.form_coefficients(q_sorted)

        if backend == "process":
            if sup is not None:
                phi = _execute_plan_units_supervised(
                    plan, ctx, q_sorted, n_threads, policy, recovery, sup
                )
            else:
                phi = _execute_plan_units_process(
                    plan, ctx, q_sorted, n_threads, policy, recovery
                )
            phi, _, _ = plan.finalize(phi)
        elif sup is not None:
            results: dict[int, tuple] = {}
            try:
                _execute_plan_units_thread(
                    plan, ctx, q_sorted, n_threads, policy, recovery, sup, results
                )
            except BackendDegraded as deg:
                sup.on_degrade(
                    "thread", "serial", deg.reason, n_units - len(results)
                )
                _execute_plan_units_serial_suppressed(
                    plan, ctx, q_sorted, recovery, results
                )
            phi = np.zeros((plan.n_targets,) + q_sorted.shape[1:], dtype=np.float64)
            for i in range(n_units):  # deterministic merge order
                tids, vals = results[i]
                scatter_add(phi, tids, vals)
            phi, _, _ = plan.finalize(phi)
        else:

            def attempt_unit(i: int):
                maybe_fault("parallel.block")  # injected error/hang sites
                tids, vals = plan.execute_unit(ctx, q_sorted, i)
                vals = maybe_corrupt("parallel.block", vals)
                check_finite("parallel.block", vals, context="plan unit output")
                return tids, vals

            def run_unit(i: int):
                with span("parallel.block", unit=i) as sp:
                    fellback = False
                    try:
                        (tids, vals), attempts = retry_call(
                            lambda: attempt_unit(i),
                            policy,
                            site="parallel.block",
                            seed=i,
                        )
                    except RetryExhausted as exc:
                        attempts = policy.max_retries + 1
                        fellback = True
                        # same arithmetic, injection suppressed -> identical
                        tids, vals = _plan_unit_redo(
                            plan, ctx, q_sorted, i, exc, attempts
                        )
                    with recovery_lock:
                        recovery["retries"] += attempts - 1
                        recovery["fallbacks"] += int(fellback)
                if is_enabled():
                    REGISTRY.histogram(
                        "parallel_block_seconds", "wall time per worker block"
                    ).observe(sp.elapsed)
                return tids, vals

            phi = np.zeros((plan.n_targets,) + q_sorted.shape[1:], dtype=np.float64)
            if n_threads == 1:
                results = map(run_unit, range(n_units))
                for tids, vals in results:
                    scatter_add(phi, tids, vals)
            else:
                with ThreadPoolExecutor(max_workers=n_threads) as pool:
                    # pool.map preserves unit order -> deterministic merge
                    for tids, vals in pool.map(run_unit, range(n_units)):
                        scatter_add(phi, tids, vals)
            phi, _, _ = plan.finalize(phi)
    wall = sw.elapsed

    stats = plan._clone_stats()
    stats.eval_time = wall
    if is_enabled():
        record_eval_metrics(stats)
    return ParallelResult(
        potential=phi,
        wall_time=wall,
        n_threads=n_threads,
        n_blocks=n_units,
        stats=stats,
        n_retries=recovery["retries"],
        n_fallbacks=recovery["fallbacks"],
        n_quarantined=sup.n_quarantines if sup else 0,
        n_reaped=sup.n_reaps if sup else 0,
        n_degradations=sup.n_degradations if sup else 0,
        backend=backend,
    )
