r"""Treecode-accelerated single-layer boundary operator.

Discretization follows the paper: the surface is triangulated, "a fixed
number of Gauss-points are located inside each element and inserted into
the hierarchical domain representation", and the potential is collocated
at the element vertices.  The density is piecewise linear (nodal), so
the operator is

.. math::

    (A \sigma)_i = \sum_e \sum_{g \in e} \frac{w_g}{4\pi\,|v_i - x_g|}
                    \sum_{c=1}^{3} N_c(g)\, \sigma_{e_c}

The treecode is built **once** over the Gauss points: the octree, the
degree schedule (from the quadrature weights — "all parameters for the
degree of an interaction are available at the time of tree
construction") and the vertex interaction lists are geometry-only, so
every GMRES matvec pays only for re-forming the expansions with the new
charges and re-evaluating the cached lists.
"""

from __future__ import annotations

import numpy as np

from ..core.degree import DegreePolicy, FixedDegree
from ..core.treecode import Treecode, TreecodeStats
from ..obs.metrics import REGISTRY
from ..obs.tracing import is_enabled, span
from ..tree.octree import build_octree
from .mesh import TriangleMesh
from .quadrature import mesh_quadrature, triangle_rule

__all__ = ["SingleLayerOperator", "OperatorGeometry"]

_FOUR_PI = 4.0 * np.pi


class OperatorGeometry:
    """Geometry shared across several operators on the same mesh.

    Table-3-style sweeps build many :class:`SingleLayerOperator`\\ s over
    one mesh, differing only in degree policy; the quadrature, the
    octree and the per-``alpha`` vertex interaction lists depend on none
    of that, so they are computed once here and handed to each operator.
    The octree's charge aggregates are per-operator state —
    :class:`~repro.core.treecode.Treecode` re-derives them from its own
    charges when reusing a tree — so sharing is safe even though the
    operators interleave ``set_charges`` calls.
    """

    def __init__(self, mesh: TriangleMesh, n_gauss: int = 6) -> None:
        mesh.validate()
        self.mesh = mesh
        self.n_gauss = n_gauss
        self.points, self.weights, self.element = mesh_quadrature(mesh, n_gauss)
        bary, _ = triangle_rule(n_gauss)
        self.gp_nodes = mesh.triangles[self.element]  # (G, 3)
        self.gp_shape = np.tile(bary, (mesh.n_triangles, 1))  # (G, 3)
        self._tree = None
        self._tree_leaf_size = None
        self._lists: dict[float, object] = {}

    def tree_for(self, leaf_size: int):
        """The shared octree (built with the quadrature weights as
        structure charges, exactly as a standalone operator would)."""
        if self._tree is None or self._tree_leaf_size != leaf_size:
            self._tree = build_octree(self.points, self.weights, leaf_size=leaf_size)
            self._tree_leaf_size = leaf_size
            self._lists = {}
        return self._tree

    def lists_for(self, treecode: Treecode, alpha: float):
        """Vertex interaction lists, cached per MAC parameter (the
        traversal reads only tree structure and ``alpha``, never charges
        or degrees)."""
        if alpha not in self._lists:
            with span("treecode.traverse", targets=int(self.mesh.n_vertices)):
                self._lists[alpha] = treecode.traverse(
                    self.mesh.vertices, self_targets=False
                )
        return self._lists[alpha]


class SingleLayerOperator:
    """Single-layer potential operator ``V`` with a treecode matvec.

    Parameters
    ----------
    mesh:
        The boundary mesh (collocation at its vertices).
    n_gauss:
        Gauss points per element (the paper uses 6).
    degree_policy, alpha, leaf_size:
        Treecode configuration (see :class:`~repro.core.treecode.Treecode`).
    use_plan:
        Compile the geometry into a
        :class:`~repro.perf.plan.CompiledPlan` lazily at the *second*
        matvec, so iterative solves (GMRES) amortize the compile while
        one-shot applications pay nothing.  ``False`` keeps the seed
        ``set_charges`` + ``evaluate_lists`` path on every application.
    plan_budget:
        Memory budget (bytes) for the plan's precomputed operators;
        ``None`` uses :data:`~repro.perf.plan.DEFAULT_MEMORY_BUDGET`.
    tol:
        Target far-field accuracy for the compiled plan (variable-order
        mode, see :meth:`~repro.core.treecode.Treecode.compile_plan`).
        Per-interaction degrees are selected so each collocation
        vertex's Theorem-1 ledger stays at or below ``tol``.  The
        selection is anchored at the quadrature weights (the structure
        charges available "at the time of tree construction"), so the
        guarantee applies to densities with ``|sigma| <= 4 pi`` and
        scales linearly beyond.  Requires ``use_plan``; ignored until
        the plan compiles at the second matvec.
    plan_cache:
        Persistent plan-cache directory (see
        :meth:`~repro.core.treecode.Treecode.compile_plan`).  ``None``
        consults the ``REPRO_PLAN_CACHE`` environment variable; ``""``
        disables caching.  A warm cache turns the second-matvec compile
        into a zero-copy ``mmap`` load.
    geometry:
        A shared :class:`OperatorGeometry` for the same mesh/``n_gauss``,
        reusing its quadrature, octree and interaction lists.

    Attributes
    ----------
    stats:
        Accumulated :class:`~repro.core.treecode.TreecodeStats` over all
        matvec applications (terms evaluated, interaction counts).
    n_matvecs:
        Number of operator applications so far.
    """

    def __init__(
        self,
        mesh: TriangleMesh,
        n_gauss: int = 6,
        degree_policy: DegreePolicy | None = None,
        alpha: float = 0.5,
        leaf_size: int = 32,
        use_plan: bool = True,
        plan_budget: int | None = None,
        tol: float | None = None,
        plan_cache: str | None = None,
        geometry: OperatorGeometry | None = None,
    ) -> None:
        if tol is not None and not use_plan:
            raise ValueError(
                "tol (variable-order plans) requires use_plan=True"
            )
        if geometry is not None:
            if geometry.mesh is not mesh or geometry.n_gauss != n_gauss:
                raise ValueError(
                    "shared OperatorGeometry does not match this mesh/n_gauss"
                )
            self.points, self.weights = geometry.points, geometry.weights
            self.element = geometry.element
            self.gp_nodes, self.gp_shape = geometry.gp_nodes, geometry.gp_shape
            shared_tree = geometry.tree_for(leaf_size)
        else:
            mesh.validate()
            self.points, self.weights, self.element = mesh_quadrature(mesh, n_gauss)
            bary, _ = triangle_rule(n_gauss)
            # Per Gauss point: the 3 nodes of its element and shape values.
            self.gp_nodes = mesh.triangles[self.element]  # (G, 3)
            self.gp_shape = np.tile(bary, (mesh.n_triangles, 1))  # (G, 3)
            shared_tree = None
        self.mesh = mesh
        self.n_gauss = n_gauss

        policy = degree_policy if degree_policy is not None else FixedDegree(4)
        self.treecode = Treecode(
            self.points,
            self.weights,  # structure/degree charges: the quadrature weights
            degree_policy=policy,
            alpha=alpha,
            leaf_size=leaf_size,
            tree=shared_tree,
        )
        # Geometry-only interaction lists for the collocation targets.
        if geometry is not None:
            self._lists = geometry.lists_for(self.treecode, alpha)
        else:
            with span("treecode.traverse", targets=int(mesh.n_vertices)):
                self._lists = self.treecode.traverse(mesh.vertices, self_targets=False)
        self.use_plan = bool(use_plan)
        self.plan_budget = plan_budget
        self.tol = None if tol is None else float(tol)
        self.plan_cache = plan_cache
        self._plan = None
        self.stats = TreecodeStats()
        self.n_matvecs = 0

    @property
    def shape(self) -> tuple[int, int]:
        n = self.mesh.n_vertices
        return (n, n)

    def charges_for(self, sigma: np.ndarray) -> np.ndarray:
        """Gauss-point charges for a nodal density ``sigma``.

        ``sigma`` may be a ``(V, k)`` batch of stacked densities; the
        result is then a ``(G, k)`` charge batch, column ``j`` exactly
        the single-density charges for ``sigma[:, j]``.
        """
        sigma = np.asarray(sigma, dtype=np.float64)
        V = self.mesh.n_vertices
        if sigma.ndim not in (1, 2) or sigma.shape[0] != V:
            raise ValueError(
                f"sigma must have shape ({V},) or ({V}, k), got {sigma.shape}"
            )
        if sigma.ndim == 1:
            dens = np.einsum("gc,gc->g", self.gp_shape, sigma[self.gp_nodes])
            return self.weights * dens / _FOUR_PI
        dens = np.einsum("gc,gck->gk", self.gp_shape, sigma[self.gp_nodes])
        return self.weights[:, None] * dens / _FOUR_PI

    def matvec(self, sigma: np.ndarray) -> np.ndarray:
        """Apply the operator: potential at the vertices for density sigma.

        With ``use_plan`` (default), the second application compiles the
        frozen geometry into a plan; that and every later matvec is then
        pure linear algebra over the precomputed operators.

        ``sigma`` may be a ``(V, k)`` batch of stacked densities; the
        result is then ``(V, k)``.  A ``k > 1`` batch compiles the plan
        immediately (a batch *is* repeated application, so the lazy
        second-matvec policy would only delay the win) and executes all
        columns in one batched pass; single columns keep today's
        behavior bitwise.
        """
        with span("bem.matvec", matvec=self.n_matvecs):
            q = self.charges_for(sigma)
            batch = q.ndim == 2
            if self.use_plan and self._plan is None and (
                self.n_matvecs >= 1 or (batch and q.shape[1] > 1)
            ):
                self._plan = self.treecode.compile_plan(
                    targets=self.mesh.vertices,
                    lists=self._lists,
                    memory_budget=self.plan_budget,
                    tol=self.tol,
                    cache_dir=self.plan_cache,
                )
            if self._plan is not None:
                res = self._plan.execute(q)
                potential = res.potential
                self.stats.merge(res.stats)
            elif batch:
                # the seed evaluate_lists path has no batched kernel:
                # plan-less batches run column-by-column
                potential = np.empty(
                    (self.mesh.n_vertices, q.shape[1]), dtype=np.float64
                )
                for j in range(q.shape[1]):
                    self.treecode.set_charges(q[:, j])
                    res = self.treecode.evaluate_lists(
                        self._lists, self.mesh.vertices, self_targets=False
                    )
                    potential[:, j] = res.potential
                    self.stats.merge(res.stats)
            else:
                self.treecode.set_charges(q)
                res = self.treecode.evaluate_lists(
                    self._lists, self.mesh.vertices, self_targets=False
                )
                potential = res.potential
                self.stats.merge(res.stats)
        if is_enabled():
            REGISTRY.counter("bem_matvecs", "boundary-operator applications").inc()
        self.n_matvecs += 1
        return potential

    __call__ = matvec

    def near_diagonal(self) -> np.ndarray:
        """Cheap estimate of the collocation matrix diagonal.

        ``A_ii`` is dominated by the elements incident to vertex ``i``
        (the near-singular ``1/r`` contributions), so summing only those
        Gauss points gives a good Jacobi preconditioner at O(G) cost —
        it captures the local-mesh-size variation that makes first-kind
        systems on graded meshes ill-scaled.
        """
        V = self.mesh.n_vertices
        diag = np.zeros(V, dtype=np.float64)
        verts = self.mesh.vertices
        for c in range(3):
            nodes = self.gp_nodes[:, c]  # vertex each Gauss point maps to
            r = np.linalg.norm(verts[nodes] - self.points, axis=1)
            contrib = self.weights * self.gp_shape[:, c] / (_FOUR_PI * r)
            np.add.at(diag, nodes, contrib)
        return diag

    def dense_matrix(self) -> np.ndarray:
        """Exact dense collocation matrix (reference; O(V·G) memory per
        row block — intended for small meshes and tests)."""
        V = self.mesh.n_vertices
        G = self.points.shape[0]
        A = np.zeros((V, V), dtype=np.float64)
        verts = self.mesh.vertices
        chunk = max(1, 4_000_000 // max(G, 1))
        base = self.weights / _FOUR_PI
        for lo in range(0, V, chunk):
            hi = min(lo + chunk, V)
            d = verts[lo:hi, None, :] - self.points[None, :, :]
            r = np.sqrt(np.einsum("vgi,vgi->vg", d, d))
            K = base / r  # (v, G); Gauss points are strictly interior -> r > 0
            # scatter G columns into the 3 nodes of each Gauss point's element
            for c in range(3):
                cols = self.gp_nodes[:, c]
                contrib = K * self.gp_shape[:, c]
                np.add.at(A[lo:hi], (slice(None), cols), contrib)
        return A

    def exact_potential(self, sigma: np.ndarray) -> np.ndarray:
        """Direct (no treecode) application — the accuracy reference."""
        from ..direct import direct_potential

        q = self.charges_for(sigma)
        return direct_potential(self.points, q, targets=self.mesh.vertices)
