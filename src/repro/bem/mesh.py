"""Triangle surface meshes for the boundary-element experiments."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["TriangleMesh", "merge_meshes", "weld_vertices"]


@dataclass
class TriangleMesh:
    """An indexed triangle mesh.

    Attributes
    ----------
    vertices:
        ``(v, 3)`` float coordinates (the collocation nodes of the BEM).
    triangles:
        ``(t, 3)`` integer vertex indices (the boundary elements).
    """

    vertices: np.ndarray
    triangles: np.ndarray

    def __post_init__(self) -> None:
        self.vertices = np.ascontiguousarray(self.vertices, dtype=np.float64)
        self.triangles = np.ascontiguousarray(self.triangles, dtype=np.int64)
        if self.vertices.ndim != 2 or self.vertices.shape[1] != 3:
            raise ValueError(f"vertices must be (v, 3), got {self.vertices.shape}")
        if self.triangles.ndim != 2 or self.triangles.shape[1] != 3:
            raise ValueError(f"triangles must be (t, 3), got {self.triangles.shape}")
        if self.triangles.size and (
            self.triangles.min() < 0 or self.triangles.max() >= len(self.vertices)
        ):
            raise ValueError("triangle indices out of range")

    @property
    def n_vertices(self) -> int:
        return self.vertices.shape[0]

    @property
    def n_triangles(self) -> int:
        return self.triangles.shape[0]

    def corners(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The three ``(t, 3)`` corner-coordinate arrays."""
        return (
            self.vertices[self.triangles[:, 0]],
            self.vertices[self.triangles[:, 1]],
            self.vertices[self.triangles[:, 2]],
        )

    def areas(self) -> np.ndarray:
        """Triangle areas, ``(t,)``."""
        a, b, c = self.corners()
        return 0.5 * np.linalg.norm(np.cross(b - a, c - a), axis=1)

    def normals(self) -> np.ndarray:
        """Unit normals, ``(t, 3)`` (orientation as indexed)."""
        a, b, c = self.corners()
        n = np.cross(b - a, c - a)
        norm = np.linalg.norm(n, axis=1, keepdims=True)
        return n / np.maximum(norm, 1e-300)

    def centroids(self) -> np.ndarray:
        a, b, c = self.corners()
        return (a + b + c) / 3.0

    def total_area(self) -> float:
        return float(self.areas().sum())

    def validate(self) -> None:
        """Assert no degenerate (zero-area) triangles and finite data."""
        assert np.all(np.isfinite(self.vertices)), "non-finite vertex"
        assert np.all(self.areas() > 0), "degenerate triangle"


def merge_meshes(meshes: list[TriangleMesh]) -> TriangleMesh:
    """Concatenate meshes (no welding of coincident boundary vertices)."""
    if not meshes:
        raise ValueError("need at least one mesh")
    verts = []
    tris = []
    off = 0
    for m in meshes:
        verts.append(m.vertices)
        tris.append(m.triangles + off)
        off += m.n_vertices
    return TriangleMesh(np.concatenate(verts), np.concatenate(tris))


def weld_vertices(mesh: TriangleMesh, tol: float = 1e-9) -> TriangleMesh:
    """Merge vertices closer than ``tol`` (quantized-grid dedup) and drop
    degenerate triangles; used after stitching parametric patches."""
    keys = np.round(mesh.vertices / tol).astype(np.int64)
    _, first, inverse = np.unique(keys, axis=0, return_index=True, return_inverse=True)
    new_verts = mesh.vertices[first]
    new_tris = inverse[mesh.triangles]
    ok = (
        (new_tris[:, 0] != new_tris[:, 1])
        & (new_tris[:, 1] != new_tris[:, 2])
        & (new_tris[:, 0] != new_tris[:, 2])
    )
    return TriangleMesh(new_verts, new_tris[ok])
