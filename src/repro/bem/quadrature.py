"""Gaussian quadrature on triangles.

The paper places "a fixed number of Gauss-points ... inside each
element"; the experiments use 6 points per element.  Rules are given in
barycentric coordinates with weights summing to 1 (so physical weights
are ``w * area``).  Orders follow Dunavant/Strang-Fix; every rule uses
strictly interior points, which the collocation BEM relies on (no Gauss
point coincides with a vertex).
"""

from __future__ import annotations

import numpy as np

from .mesh import TriangleMesh

__all__ = ["triangle_rule", "mesh_quadrature", "RULES"]


def _sym(points: list[tuple[float, float, float]], weights: list[float]):
    return np.asarray(points, dtype=np.float64), np.asarray(weights, dtype=np.float64)


def _rule_1():
    return _sym([(1 / 3, 1 / 3, 1 / 3)], [1.0])


def _rule_3():
    # degree-2 exact; midedge-opposite interior points
    return _sym(
        [(2 / 3, 1 / 6, 1 / 6), (1 / 6, 2 / 3, 1 / 6), (1 / 6, 1 / 6, 2 / 3)],
        [1 / 3, 1 / 3, 1 / 3],
    )


def _rule_4():
    # degree-3 exact (has a negative weight; kept for the ablation)
    a = 0.6
    b = 0.2
    return _sym(
        [(1 / 3, 1 / 3, 1 / 3), (a, b, b), (b, a, b), (b, b, a)],
        [-27 / 48, 25 / 48, 25 / 48, 25 / 48],
    )


def _rule_6():
    # degree-4 exact (Dunavant); the paper's 6-point rule
    a1 = 0.816847572980459
    b1 = 0.091576213509771
    a2 = 0.108103018168070
    b2 = 0.445948490915965
    w1 = 0.109951743655322
    w2 = 0.223381589678011
    return _sym(
        [
            (a1, b1, b1), (b1, a1, b1), (b1, b1, a1),
            (a2, b2, b2), (b2, a2, b2), (b2, b2, a2),
        ],
        [w1, w1, w1, w2, w2, w2],
    )


def _rule_7():
    # degree-5 exact (Radon/Dunavant)
    a1 = 0.797426985353087
    b1 = 0.101286507323456
    a2 = 0.059715871789770
    b2 = 0.470142064105115
    w0 = 0.225
    w1 = 0.125939180544827
    w2 = 0.132394152788506
    return _sym(
        [
            (1 / 3, 1 / 3, 1 / 3),
            (a1, b1, b1), (b1, a1, b1), (b1, b1, a1),
            (a2, b2, b2), (b2, a2, b2), (b2, b2, a2),
        ],
        [w0, w1, w1, w1, w2, w2, w2],
    )


RULES = {1: _rule_1, 3: _rule_3, 4: _rule_4, 6: _rule_6, 7: _rule_7}


def triangle_rule(n_points: int) -> tuple[np.ndarray, np.ndarray]:
    """Barycentric points ``(k, 3)`` and weights ``(k,)`` summing to 1."""
    try:
        return RULES[n_points]()
    except KeyError:
        raise ValueError(
            f"no {n_points}-point rule; available: {sorted(RULES)}"
        ) from None


def mesh_quadrature(
    mesh: TriangleMesh, n_points: int = 6
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Quadrature points for every element of a mesh.

    Returns
    -------
    ``(points, weights, element)`` where ``points`` is
    ``(t * k, 3)`` physical coordinates, ``weights`` is ``(t * k,)``
    (barycentric weight × element area) and ``element`` maps each
    quadrature point to its triangle index.
    """
    bary, w = triangle_rule(n_points)
    a, b, c = mesh.corners()  # (t, 3) each
    # (t, k, 3): bary combination of corners
    pts = (
        bary[None, :, 0, None] * a[:, None, :]
        + bary[None, :, 1, None] * b[:, None, :]
        + bary[None, :, 2, None] * c[:, None, :]
    )
    areas = mesh.areas()
    wts = w[None, :] * areas[:, None]
    elem = np.repeat(np.arange(mesh.n_triangles), len(w))
    return pts.reshape(-1, 3), wts.reshape(-1), elem
