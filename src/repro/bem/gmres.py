"""GMRES with restarts, implemented from scratch.

The paper solves the dense boundary-integral systems with "a GMRES
iterative solver ... with a restart of 10", computing the matrix-vector
product with the treecode.  This is a textbook Arnoldi/Givens
implementation (Saad & Schultz 1986) that takes any callable operator,
so the same solver runs against the treecode matvec and the dense
reference operator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..obs.metrics import REGISTRY
from ..obs.tracing import is_enabled, span
from ..robust.faults import maybe_corrupt

__all__ = ["gmres", "GMRESResult"]


def _observe_residual(rel: float) -> None:
    """Publish one inner iteration's residual to the metrics registry:
    a gauge (latest value) plus a decade-bucketed histogram, so the
    residual trajectory of a solve is visible in the exposition."""
    REGISTRY.counter("gmres_iterations", "GMRES inner iterations (matvecs)").inc()
    REGISTRY.gauge("gmres_residual", "latest GMRES relative residual").set(rel)
    REGISTRY.histogram(
        "gmres_residual_hist",
        "distribution of per-iteration relative residuals",
        base=10.0,
    ).observe(rel)


@dataclass
class GMRESResult:
    """Solution and convergence history of a GMRES run."""

    x: np.ndarray
    converged: bool
    n_iterations: int  #: total inner iterations (matvecs, excluding restarts)
    n_restarts: int
    residual_norm: float
    history: list = field(default_factory=list)  #: relative residual per iteration
    breakdown: bool = False  #: non-finite arithmetic detected; x is the last finite iterate
    stagnated: bool = False  #: stopped early after non-improving restart cycles


def gmres(
    matvec,
    b: np.ndarray,
    x0: np.ndarray | None = None,
    restart: int = 10,
    tol: float = 1e-8,
    maxiter: int = 1000,
    callback=None,
    stagnation_cycles: int = 3,
    stagnation_factor: float = 0.999,
) -> GMRESResult:
    """Solve ``A x = b`` for a linear operator given as a callable.

    Parameters
    ----------
    matvec:
        Callable ``v -> A @ v``.
    b:
        Right-hand side.
    x0:
        Initial guess (zero by default).
    restart:
        Krylov dimension per cycle (the paper uses 10).
    tol:
        Relative residual target ``||b - A x|| <= tol * ||b||``.
    maxiter:
        Cap on total inner iterations.
    callback:
        Optional ``callback(relative_residual)`` per inner iteration.
    stagnation_cycles:
        Stop early (``stagnated=True``) after this many consecutive
        restart cycles whose true residual improved by less than a
        factor of ``stagnation_factor``; 0 disables the check.
    stagnation_factor:
        Per-cycle improvement threshold for the stagnation test.

    A non-finite residual or Krylov vector (operator breakdown) stops
    the solve immediately with ``breakdown=True`` and the last finite
    iterate, instead of poisoning every later iteration with NaN.

    Returns
    -------
    :class:`GMRESResult`
    """
    b = np.asarray(b, dtype=np.float64)
    n = b.shape[0]
    if restart < 1:
        raise ValueError(f"restart must be >= 1, got {restart}")
    x = np.zeros(n) if x0 is None else np.asarray(x0, dtype=np.float64).copy()
    bnorm = np.linalg.norm(b)
    if bnorm == 0.0:
        return GMRESResult(
            x=np.zeros(n), converged=True, n_iterations=0, n_restarts=0,
            residual_norm=0.0, history=[0.0],
        )

    history: list[float] = []
    total_iters = 0
    n_restarts = 0
    obs_on = is_enabled()
    prev_cycle_rel: float | None = None
    stagnant_cycles = 0

    def _breakdown(x_good, beta_val):
        REGISTRY.counter(
            "gmres_breakdowns", "GMRES solves stopped on non-finite arithmetic"
        ).inc()
        return GMRESResult(
            x=x_good, converged=False, n_iterations=total_iters,
            n_restarts=n_restarts, residual_norm=float(beta_val),
            history=history, breakdown=True,
        )

    while total_iters < maxiter:
        with span("gmres.matvec", kind="residual"):
            r = b - maybe_corrupt("gmres.matvec", np.asarray(matvec(x)))
        beta = np.linalg.norm(r)
        rel = beta / bnorm
        if not history:
            history.append(float(rel))
        if not np.isfinite(beta):
            return _breakdown(x, beta)
        if rel <= tol:
            return GMRESResult(
                x=x, converged=True, n_iterations=total_iters,
                n_restarts=n_restarts, residual_norm=float(beta), history=history,
            )
        if prev_cycle_rel is not None and stagnation_cycles > 0:
            if rel > stagnation_factor * prev_cycle_rel:
                stagnant_cycles += 1
            else:
                stagnant_cycles = 0
            if stagnant_cycles >= stagnation_cycles:
                REGISTRY.counter(
                    "gmres_stagnations",
                    "GMRES solves stopped early on restart-cycle stagnation",
                ).inc()
                return GMRESResult(
                    x=x, converged=False, n_iterations=total_iters,
                    n_restarts=n_restarts, residual_norm=float(beta),
                    history=history, stagnated=True,
                )
        prev_cycle_rel = float(rel)

        m = min(restart, maxiter - total_iters)
        with span("gmres.cycle", restart=n_restarts, start_iter=total_iters):
            V = np.zeros((m + 1, n))
            H = np.zeros((m + 1, m))
            cs = np.zeros(m)
            sn = np.zeros(m)
            g = np.zeros(m + 1)
            V[0] = r / beta
            g[0] = beta
            k_done = 0

            for k in range(m):
                # copy: a matvec may return its input (e.g. the identity),
                # and Gram-Schmidt below modifies w in place
                with span("gmres.matvec", iteration=total_iters):
                    w = np.array(matvec(V[k]), dtype=np.float64, copy=True)
                w = maybe_corrupt("gmres.matvec", w)
                if not np.all(np.isfinite(w)):
                    return _breakdown(x, beta)
                # modified Gram-Schmidt
                for j in range(k + 1):
                    H[j, k] = np.dot(w, V[j])
                    w -= H[j, k] * V[j]
                H[k + 1, k] = np.linalg.norm(w)
                if H[k + 1, k] > 1e-14 * beta:
                    V[k + 1] = w / H[k + 1, k]
                # apply previous Givens rotations to the new column
                for j in range(k):
                    t = cs[j] * H[j, k] + sn[j] * H[j + 1, k]
                    H[j + 1, k] = -sn[j] * H[j, k] + cs[j] * H[j + 1, k]
                    H[j, k] = t
                # new rotation to annihilate H[k+1, k]
                denom = np.hypot(H[k, k], H[k + 1, k])
                if denom == 0.0:
                    cs[k], sn[k] = 1.0, 0.0
                else:
                    cs[k] = H[k, k] / denom
                    sn[k] = H[k + 1, k] / denom
                H[k, k] = cs[k] * H[k, k] + sn[k] * H[k + 1, k]
                H[k + 1, k] = 0.0
                g[k + 1] = -sn[k] * g[k]
                g[k] = cs[k] * g[k]

                total_iters += 1
                k_done = k + 1
                rel = abs(g[k + 1]) / bnorm
                history.append(float(rel))
                if obs_on:
                    _observe_residual(float(rel))
                if callback is not None:
                    callback(float(rel))
                if rel <= tol:
                    break

            # solve the small triangular system and update x
            y = np.zeros(k_done)
            for i in range(k_done - 1, -1, -1):
                y[i] = (g[i] - H[i, i + 1 : k_done] @ y[i + 1 : k_done]) / H[i, i]
            x = x + V[:k_done].T @ y
            n_restarts += 1

        if rel <= tol:
            with span("gmres.matvec", kind="residual"):
                r = b - matvec(x)
            return GMRESResult(
                x=x, converged=True, n_iterations=total_iters,
                n_restarts=n_restarts, residual_norm=float(np.linalg.norm(r)),
                history=history,
            )

    with span("gmres.matvec", kind="residual"):
        r = b - matvec(x)
    return GMRESResult(
        x=x, converged=False, n_iterations=total_iters, n_restarts=n_restarts,
        residual_norm=float(np.linalg.norm(r)), history=history,
    )
