"""High-level BEM solves: Dirichlet problems and capacitance.

Combines the single-layer operator (treecode matvec) with the GMRES
solver, exactly as the paper's boundary-element experiments do: "this
process forms a single matrix-vector product that is required at each
step of GMRES" with "a restart of 10".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .gmres import GMRESResult, gmres
from .mesh import TriangleMesh
from .operator import SingleLayerOperator

__all__ = ["BEMSolution", "solve_dirichlet", "capacitance", "nodal_integral"]


@dataclass
class BEMSolution:
    """Density solution of a first-kind boundary integral equation."""

    sigma: np.ndarray
    gmres: GMRESResult
    operator: SingleLayerOperator
    #: recovery actions taken by the robust solve path (None = plain GMRES)
    recovery: list | None = None


def solve_dirichlet(
    mesh: TriangleMesh,
    boundary_values: np.ndarray | float,
    operator: SingleLayerOperator | None = None,
    restart: int = 10,
    tol: float = 1e-6,
    maxiter: int = 400,
    precondition: str = "none",
    robust: bool = False,
    **operator_kwargs,
) -> BEMSolution:
    """Solve ``V sigma = g`` for the surface charge density.

    Parameters
    ----------
    mesh:
        Boundary mesh.
    boundary_values:
        Prescribed potential at the vertices (scalar = constant).
    operator:
        Prebuilt operator to reuse; otherwise one is constructed with
        ``operator_kwargs``.
    restart, tol, maxiter:
        GMRES parameters (paper: restart 10).
    precondition:
        ``"none"`` (default, the paper's setup) solves the raw system;
        ``"jacobi"`` left-preconditions with the near-field diagonal
        estimate, useful on strongly graded meshes.
    robust:
        Route the solve through
        :func:`repro.robust.solve_with_recovery`: on GMRES breakdown or
        stagnation the restart parameter escalates and small systems
        fall back to a dense direct solve; the actions taken are
        recorded in :attr:`BEMSolution.recovery`.  A healthy solve is
        unchanged.
    """
    op = operator if operator is not None else SingleLayerOperator(mesh, **operator_kwargs)
    g = np.broadcast_to(
        np.asarray(boundary_values, dtype=np.float64), (mesh.n_vertices,)
    ).copy()
    if precondition == "jacobi":
        d = op.near_diagonal()
        dinv = 1.0 / np.where(d > 0, d, 1.0)
        matvec_eff, g_eff = (lambda v: dinv * op.matvec(v)), dinv * g
    elif precondition == "none":
        matvec_eff, g_eff = op.matvec, g
    else:
        raise ValueError(f"unknown precondition {precondition!r}")
    if robust:
        from ..robust.guards import solve_with_recovery

        rec = solve_with_recovery(
            matvec_eff, g_eff, restart=restart, tol=tol, maxiter=maxiter
        )
        return BEMSolution(
            sigma=rec.result.x, gmres=rec.result, operator=op, recovery=rec.actions
        )
    res = gmres(matvec_eff, g_eff, restart=restart, tol=tol, maxiter=maxiter)
    return BEMSolution(sigma=res.x, gmres=res, operator=op)


def nodal_integral(mesh: TriangleMesh, sigma: np.ndarray) -> float:
    """Integrate a piecewise-linear nodal field over the surface:
    ``sum_e area_e / 3 * (sigma_a + sigma_b + sigma_c)``."""
    sigma = np.asarray(sigma, dtype=np.float64)
    if sigma.shape != (mesh.n_vertices,):
        raise ValueError(
            f"sigma must have shape ({mesh.n_vertices},), got {sigma.shape}"
        )
    areas = mesh.areas()
    corner_sum = sigma[mesh.triangles].sum(axis=1)
    return float((areas * corner_sum).sum() / 3.0)


def capacitance(
    mesh: TriangleMesh,
    operator: SingleLayerOperator | None = None,
    tol: float = 1e-6,
    **operator_kwargs,
) -> tuple[float, BEMSolution]:
    """Electrostatic capacitance ``C = Q / Phi`` of a conductor.

    Solves ``V sigma = 1`` and integrates the density; with the
    ``1/(4 pi r)`` kernel, a sphere of radius ``a`` has ``C = 4 pi a``
    (so the icosphere test has an analytic answer).
    """
    sol = solve_dirichlet(mesh, 1.0, operator=operator, tol=tol, **operator_kwargs)
    return nodal_integral(mesh, sol.sigma), sol
