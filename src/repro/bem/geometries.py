"""Synthetic surface geometries for the BEM experiments.

The paper's industrial instances (an airplane propeller and two gripper
discretizations) are not available; these parametric stand-ins
reproduce the *distribution class* that matters for the treecode — thin
triangulated surfaces where "a bulk of the volume is empty and the nodes
are concentrated on the surface" — at controllable resolution:

* :func:`icosphere` — analytic reference case (known capacitance);
* :func:`propeller` — hub cylinder plus twisted tapered blades;
* :func:`gripper` — palm block plus parallel fingers.

All generators return welded :class:`~repro.bem.mesh.TriangleMesh`
objects whose size scales with the resolution arguments.
"""

from __future__ import annotations

import numpy as np

from .mesh import TriangleMesh, merge_meshes, weld_vertices

__all__ = ["icosphere", "parametric_patch", "box", "cylinder", "propeller", "gripper"]


def icosphere(subdivisions: int = 3, radius: float = 1.0, center=(0.0, 0.0, 0.0)) -> TriangleMesh:
    """Unit icosahedron subdivided ``subdivisions`` times and projected
    to a sphere.  Face count is ``20 * 4**subdivisions``."""
    if subdivisions < 0:
        raise ValueError("subdivisions must be >= 0")
    t = (1.0 + np.sqrt(5.0)) / 2.0
    verts = np.array(
        [
            [-1, t, 0], [1, t, 0], [-1, -t, 0], [1, -t, 0],
            [0, -1, t], [0, 1, t], [0, -1, -t], [0, 1, -t],
            [t, 0, -1], [t, 0, 1], [-t, 0, -1], [-t, 0, 1],
        ],
        dtype=np.float64,
    )
    verts /= np.linalg.norm(verts, axis=1, keepdims=True)
    faces = np.array(
        [
            [0, 11, 5], [0, 5, 1], [0, 1, 7], [0, 7, 10], [0, 10, 11],
            [1, 5, 9], [5, 11, 4], [11, 10, 2], [10, 7, 6], [7, 1, 8],
            [3, 9, 4], [3, 4, 2], [3, 2, 6], [3, 6, 8], [3, 8, 9],
            [4, 9, 5], [2, 4, 11], [6, 2, 10], [8, 6, 7], [9, 8, 1],
        ],
        dtype=np.int64,
    )
    for _ in range(subdivisions):
        verts_l = list(verts)
        midpoint: dict[tuple[int, int], int] = {}

        def mid(i: int, j: int) -> int:
            key = (min(i, j), max(i, j))
            if key not in midpoint:
                m = verts_l[i] + verts_l[j]
                m = m / np.linalg.norm(m)
                midpoint[key] = len(verts_l)
                verts_l.append(m)
            return midpoint[key]

        new_faces = []
        for a, b, c in faces:
            ab, bc, ca = mid(a, b), mid(b, c), mid(c, a)
            new_faces += [[a, ab, ca], [b, bc, ab], [c, ca, bc], [ab, bc, ca]]
        verts = np.asarray(verts_l)
        faces = np.asarray(new_faces, dtype=np.int64)
    return TriangleMesh(verts * radius + np.asarray(center, dtype=np.float64), faces)


def parametric_patch(f, nu: int, nv: int) -> TriangleMesh:
    """Triangulate the image of ``f(u, v)`` over the unit square.

    ``f`` maps broadcastable ``u, v in [0, 1]`` arrays to ``(..., 3)``
    points; the grid has ``nu x nv`` cells (two triangles each).
    """
    if nu < 1 or nv < 1:
        raise ValueError("nu and nv must be >= 1")
    u = np.linspace(0.0, 1.0, nu + 1)
    v = np.linspace(0.0, 1.0, nv + 1)
    uu, vv = np.meshgrid(u, v, indexing="ij")
    pts = np.asarray(f(uu, vv), dtype=np.float64).reshape(-1, 3)
    idx = np.arange((nu + 1) * (nv + 1)).reshape(nu + 1, nv + 1)
    a = idx[:-1, :-1].ravel()
    b = idx[1:, :-1].ravel()
    c = idx[1:, 1:].ravel()
    d = idx[:-1, 1:].ravel()
    tris = np.concatenate(
        [np.stack([a, b, c], axis=1), np.stack([a, c, d], axis=1)], axis=0
    )
    return TriangleMesh(pts, tris)


def box(size=(1.0, 1.0, 1.0), center=(0.0, 0.0, 0.0), resolution: int = 4) -> TriangleMesh:
    """Axis-aligned box surface with ``resolution²`` cells per face."""
    sx, sy, sz = (float(s) / 2 for s in size)
    cx, cy, cz = center
    patches = []

    def face(origin, eu, ev):
        o = np.asarray(origin, dtype=np.float64)
        eu = np.asarray(eu, dtype=np.float64)
        ev = np.asarray(ev, dtype=np.float64)
        return parametric_patch(
            lambda u, v: o + u[..., None] * eu + v[..., None] * ev,
            resolution,
            resolution,
        )

    patches.append(face([cx - sx, cy - sy, cz - sz], [2 * sx, 0, 0], [0, 2 * sy, 0]))
    patches.append(face([cx - sx, cy - sy, cz + sz], [0, 2 * sy, 0], [2 * sx, 0, 0]))
    patches.append(face([cx - sx, cy - sy, cz - sz], [0, 0, 2 * sz], [2 * sx, 0, 0]))
    patches.append(face([cx - sx, cy + sy, cz - sz], [2 * sx, 0, 0], [0, 0, 2 * sz]))
    patches.append(face([cx - sx, cy - sy, cz - sz], [0, 2 * sy, 0], [0, 0, 2 * sz]))
    patches.append(face([cx + sx, cy - sy, cz - sz], [0, 0, 2 * sz], [0, 2 * sy, 0]))
    return weld_vertices(merge_meshes(patches))


def cylinder(
    radius: float = 1.0,
    height: float = 1.0,
    n_around: int = 24,
    n_along: int = 8,
    center=(0.0, 0.0, 0.0),
    axis: str = "z",
    caps: bool = True,
) -> TriangleMesh:
    """Closed circular cylinder aligned with a coordinate axis."""
    if axis not in ("x", "y", "z"):
        raise ValueError(f"axis must be x/y/z, got {axis!r}")

    def side(u, v):
        ang = 2 * np.pi * u
        x = radius * np.cos(ang)
        y = radius * np.sin(ang)
        z = height * (v - 0.5)
        return np.stack([x, y, z], axis=-1)

    patches = [parametric_patch(side, n_around, n_along)]
    if caps:
        for zsign in (-1.0, 1.0):

            def cap(u, v, zs=zsign):
                ang = 2 * np.pi * u
                r = radius * v
                return np.stack(
                    [r * np.cos(ang), r * np.sin(ang), np.full_like(r, zs * height / 2)],
                    axis=-1,
                )

            patches.append(parametric_patch(cap, n_around, max(2, n_along // 2)))
    m = weld_vertices(merge_meshes(patches))
    pts = m.vertices
    if axis == "x":
        pts = pts[:, [2, 0, 1]]
    elif axis == "y":
        pts = pts[:, [1, 2, 0]]
    return TriangleMesh(pts + np.asarray(center, dtype=np.float64), m.triangles)


def propeller(
    n_blades: int = 3,
    blade_res: int = 12,
    hub_res: int = 12,
    blade_length: float = 1.0,
    blade_chord: float = 0.25,
    twist: float = 0.9,
) -> TriangleMesh:
    """A propeller: cylindrical hub plus twisted, tapered blades.

    Each blade is a parametric sheet spanning radially from the hub with
    linear taper and a twist of ``twist`` radians root-to-tip, slightly
    cambered so the surface is genuinely three-dimensional.  The node
    cloud is thin and highly non-uniform — the property that makes the
    paper's propeller instance a hard case for treecodes.
    """
    if n_blades < 1:
        raise ValueError("n_blades must be >= 1")
    hub_r = 0.18
    hub = cylinder(
        radius=hub_r, height=0.35, n_around=hub_res, n_along=max(3, hub_res // 3)
    )
    parts = [hub]
    for k in range(n_blades):
        phase = 2 * np.pi * k / n_blades

        def blade(u, v, ph=phase):
            # u: radial [root, tip]; v: around the closed elliptical
            # cross-section.  The blade is a thin solid, not an open
            # sheet (open sheets make the first-kind equation
            # edge-singular), with a rounded tip and a section thickness
            # comparable to the panel size (thinner sections put
            # opposite panels closer than one element, which the 6-point
            # quadrature cannot resolve and GMRES then stagnates).
            # roots start just off the hub surface: interpenetrating
            # panels (blade inside hub) degrade the conditioning of the
            # collocation system
            r = hub_r * 1.05 + u * blade_length
            taper = (1.0 - 0.6 * u) * np.sqrt(np.maximum(0.0, 1.0 - u**10))
            ang = ph + twist * u
            gamma = twist * u  # pitch of the section
            c1 = 0.5 * blade_chord * taper * np.cos(2 * np.pi * v)
            c2 = 0.5 * 0.6 * blade_chord * taper * np.sin(2 * np.pi * v)
            ca, sa = np.cos(ang), np.sin(ang)
            cg, sg = np.cos(gamma), np.sin(gamma)
            # frame: radial e_r, chordwise e_c (pitched), normal e_n
            x = r * ca + c1 * (-sa * cg) + c2 * (sa * sg)
            y = r * sa + c1 * (ca * cg) + c2 * (-ca * sg)
            z = c1 * sg + c2 * cg
            return np.stack([x, y, z], axis=-1)

        parts.append(parametric_patch(blade, blade_res * 2, blade_res))
    return weld_vertices(merge_meshes(parts))


def gripper(
    n_fingers: int = 3,
    resolution: int = 6,
    finger_length: float = 0.8,
    finger_sep: float = 0.35,
) -> TriangleMesh:
    """An industrial gripper: palm block plus parallel fingers.

    The fingers create long thin, closely-spaced surfaces — the
    clustered, surface-concentrated node distribution of the paper's
    gripper instances.
    """
    if n_fingers < 1:
        raise ValueError("n_fingers must be >= 1")
    width = finger_sep * (n_fingers - 1) + 0.3
    palm = box(size=(width + 0.2, 0.4, 0.3), center=(0.0, 0.0, 0.0), resolution=resolution)
    parts = [palm]
    x0 = -finger_sep * (n_fingers - 1) / 2
    for k in range(n_fingers):
        parts.append(
            box(
                size=(0.12, 0.12, finger_length),
                center=(x0 + k * finger_sep, 0.0, 0.15 + finger_length / 2),
                resolution=max(2, resolution // 2),
            )
        )
    return weld_vertices(merge_meshes(parts))
