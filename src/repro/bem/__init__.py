"""Boundary-element substrate: meshes, quadrature, operator, GMRES."""

from .geometries import box, cylinder, gripper, icosphere, parametric_patch, propeller
from .gmres import GMRESResult, gmres
from .mesh import TriangleMesh, merge_meshes, weld_vertices
from .operator import OperatorGeometry, SingleLayerOperator
from .quadrature import mesh_quadrature, triangle_rule
from .solver import BEMSolution, capacitance, nodal_integral, solve_dirichlet

__all__ = [
    "TriangleMesh",
    "merge_meshes",
    "weld_vertices",
    "icosphere",
    "parametric_patch",
    "box",
    "cylinder",
    "propeller",
    "gripper",
    "triangle_rule",
    "mesh_quadrature",
    "gmres",
    "GMRESResult",
    "SingleLayerOperator",
    "OperatorGeometry",
    "solve_dirichlet",
    "capacitance",
    "nodal_integral",
    "BEMSolution",
]
