"""repro — adaptive-degree multipole treecodes with analyzed error bounds.

A from-scratch reproduction of Sarin, Grama & Sameh, *Analyzing the
Error Bounds of Multipole-Based Treecodes* (SC 1998): a Barnes-Hut
treecode whose per-cluster multipole degree is chosen from the
cluster's absolute charge so that every interaction carries the same
error (Theorem 3), giving O(log n) aggregate error at marginal extra
cost, plus the parallel formulation and the boundary-element (BEM)
application the paper evaluates.

Quickstart
----------
>>> import numpy as np
>>> from repro import Treecode, AdaptiveChargeDegree, direct_potential
>>> rng = np.random.default_rng(0)
>>> pts, q = rng.random((2000, 3)), rng.random(2000)
>>> tc = Treecode(pts, q, degree_policy=AdaptiveChargeDegree(p0=4, alpha=0.5))
>>> res = tc.evaluate()
>>> err = np.linalg.norm(res.potential - direct_potential(pts, q))
"""

from .core import (
    AdaptiveChargeDegree,
    DegreePolicy,
    DegreeSelectionError,
    FixedDegree,
    LevelDegree,
    ToleranceDegree,
    Treecode,
    TreecodeResult,
    TreecodeStats,
    VariableDegree,
)
from .direct import direct_gradient, direct_potential
from .robust import (
    Checkpoint,
    FaultInjector,
    InjectedFault,
    NumericalCorruptionError,
    RetryPolicy,
    parse_fault_spec,
    set_injector,
)
from .simulation import LeapfrogIntegrator, SimulationState
from .tree import Octree, build_octree, hilbert_order

__version__ = "1.0.0"

__all__ = [
    "Treecode",
    "TreecodeResult",
    "TreecodeStats",
    "DegreePolicy",
    "FixedDegree",
    "AdaptiveChargeDegree",
    "LevelDegree",
    "ToleranceDegree",
    "VariableDegree",
    "DegreeSelectionError",
    "LeapfrogIntegrator",
    "SimulationState",
    "direct_potential",
    "direct_gradient",
    "Octree",
    "build_octree",
    "hilbert_order",
    "Checkpoint",
    "FaultInjector",
    "InjectedFault",
    "NumericalCorruptionError",
    "RetryPolicy",
    "parse_fault_spec",
    "set_injector",
    "__version__",
]
