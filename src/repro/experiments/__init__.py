"""Experiment harness: one module per paper table/figure plus ablations.

Every experiment is a plain function returning structured rows, shared
by the CLI (``python -m repro <experiment>``) and the benchmark suite
(``pytest benchmarks/``).  See DESIGN.md for the experiment index.
"""

from .ablations import (
    run_alpha_sweep,
    run_cost_ratio,
    run_fmm_extension,
    run_leaf_sweep,
    run_ordering_study,
)
from .fig2 import Fig2Data, run_fig2
from .table1 import Table1Row, run_case, run_table1, run_variable_order_case
from .table2 import Table2Row, run_table2
from .table3 import Table3Row, run_table3, run_table3_geometry

__all__ = [
    "run_table1",
    "run_variable_order_case",
    "run_case",
    "Table1Row",
    "run_fig2",
    "Fig2Data",
    "run_table2",
    "Table2Row",
    "run_table3",
    "run_table3_geometry",
    "Table3Row",
    "run_cost_ratio",
    "run_alpha_sweep",
    "run_leaf_sweep",
    "run_ordering_study",
    "run_fmm_extension",
]
