"""Ablation experiments A1-A4 and the Theorem-5 cost-ratio study (E6).

These probe the design choices the paper's analysis depends on:

* **E6 / cost ratio** — measured terms(new)/terms(orig) vs the
  Theorem-5 prediction, across n.
* **A1 / α sweep** — error and cost of both methods as the MAC
  parameter varies (the degree schedule depends on α through the bound).
* **A2 / leaf size** — near-field vs far-field cost trade-off (the
  paper: leaves of 32-64 particles are used for cache performance).
* **A3 / ordering** — load balance of w-blocks under Hilbert vs Morton
  vs random ordering (why the parallel formulation sorts by
  Peano-Hilbert).
* **A4 / FMM extension** — Theorem-3 degrees inside the FMM.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.metrics import relative_l2_error
from ..core.bounds import theorem5_cost_ratio
from ..core.degree import AdaptiveChargeDegree, FixedDegree
from ..core.treecode import Treecode
from ..data.distributions import make_distribution, unit_charges
from ..direct import direct_potential
from ..fmm import UniformFMM, level_degrees
from ..parallel import MachineModel, make_blocks, profile_blocks, simulate
from ..robust.checkpoint import Checkpoint, cached_step
from ..tree.octree import build_octree

__all__ = [
    "run_cost_ratio",
    "run_alpha_sweep",
    "run_leaf_sweep",
    "run_ordering_study",
    "run_fmm_extension",
]


def run_cost_ratio(
    sizes=None,
    p0: int = 4,
    alpha: float = 0.4,
    seed: int = 0,
    checkpoint: Checkpoint | None = None,
):
    """E6: measured vs predicted (Theorem 5) term-count ratio."""
    sizes = [1000, 4000, 16000] if sizes is None else sizes
    rows = []
    for n in sizes:

        def compute(n=n) -> list:
            pts = make_distribution("uniform", n, seed=seed + n)
            q = unit_charges(n, seed=seed + n + 1, signed=True)
            terms = {}
            height = None
            # the octree and the traversal depend on neither the degree
            # policy nor the charges, so both methods share them
            tree = build_octree(pts, q)
            lists = None
            for name, policy in (
                ("orig", FixedDegree(p0)),
                ("new", AdaptiveChargeDegree(p0=p0, alpha=alpha)),
            ):
                tc = Treecode(pts, q, degree_policy=policy, alpha=alpha, tree=tree)
                if lists is None:
                    lists = tc.traverse(tree.points, self_targets=True)
                res = tc.evaluate_lists(lists, tree.points, self_targets=True)
                terms[name] = res.stats.n_terms
                height = tc.height
            measured = terms["new"] / terms["orig"]
            predicted = theorem5_cost_ratio(p0, alpha, height)
            return [n, height, terms["orig"], terms["new"], measured, predicted]

        rows.append(cached_step(checkpoint, f"n:{n}", compute))
    headers = ["n", "height", "terms(orig)", "terms(new)", "ratio(measured)", "ratio(Thm5)"]
    return headers, rows


def run_alpha_sweep(
    alphas=None,
    n: int = 6000,
    p0: int = 4,
    seed: int = 0,
    checkpoint: Checkpoint | None = None,
):
    """A1: error/terms vs MAC parameter for both methods."""
    alphas = [0.3, 0.4, 0.5, 0.6, 0.7] if alphas is None else alphas
    pts = make_distribution("uniform", n, seed=seed + 1)
    q = unit_charges(n, seed=seed + 2, signed=True)
    ref = direct_potential(pts, q)
    # one octree serves every sweep point (it does not depend on alpha
    # or the degree policy); each alpha shares one traversal between the
    # two methods (the MAC reads only tree geometry and alpha)
    tree = build_octree(pts, q)
    rows = []
    for a in alphas:

        def compute(a=a) -> list:
            row = [a]
            lists = None
            for policy in (FixedDegree(p0), AdaptiveChargeDegree(p0=p0, alpha=a)):
                tc = Treecode(pts, q, degree_policy=policy, alpha=a, tree=tree)
                if lists is None:
                    lists = tc.traverse(tree.points, self_targets=True)
                res = tc.evaluate_lists(lists, tree.points, self_targets=True)
                row += [relative_l2_error(res.potential, ref), res.stats.n_terms]
            return row

        rows.append(cached_step(checkpoint, f"alpha:{a}", compute))
    headers = ["alpha", "err(orig)", "terms(orig)", "err(new)", "terms(new)"]
    return headers, rows


def run_leaf_sweep(
    leaf_sizes=None, n: int = 6000, p0: int = 4, alpha: float = 0.4, seed: int = 0
):
    """A2: far/near cost split vs leaf capacity."""
    leaf_sizes = [4, 8, 16, 32, 64] if leaf_sizes is None else leaf_sizes
    pts = make_distribution("uniform", n, seed=seed + 1)
    q = unit_charges(n, seed=seed + 2, signed=True)
    rows = []
    for m in leaf_sizes:
        tc = Treecode(pts, q, degree_policy=FixedDegree(p0), alpha=alpha, leaf_size=m)
        res = tc.evaluate()
        s = res.stats
        total = s.n_terms + s.n_pp_pairs
        rows.append([m, tc.height, s.n_terms, s.n_pp_pairs, s.n_pp_pairs / total])
    headers = ["leaf", "height", "far terms", "near pairs", "near fraction"]
    return headers, rows


def run_ordering_study(
    n: int = 8000, w: int = 64, n_procs: int = 32, alpha: float = 0.4, seed: int = 0
):
    """A3: locality of w-blocks under different orderings.

    The paper sorts particles into Peano-Hilbert order before
    aggregating; the payoff is *data locality* — each processor's blocks
    touch a small, shared set of clusters (cache/communication volume),
    while scattered orderings make every processor touch most of the
    tree.  Reported per ordering: the summed per-block distinct-cluster
    volume, the per-processor unique data volume under a contiguous
    static assignment, and the modeled speedup.
    """
    pts = make_distribution("uniform", n, seed=seed + 1)
    q = unit_charges(n, seed=seed + 2, signed=True)
    tc = Treecode(pts, q, degree_policy=FixedDegree(4), alpha=alpha)
    rows = []
    for ordering in ("hilbert", "morton", "input", "random"):
        blocks = make_blocks(pts, w, ordering=ordering)
        prof = profile_blocks(tc, blocks)
        sim = simulate(prof, MachineModel(n_procs=n_procs), strategy="contiguous")
        # per-processor unique cluster-data volume under the assignment
        assign = sim.assignment
        proc_of_pair = assign[prof.pair_blocks]
        stride = np.int64(prof.pair_nodes.max()) + 1
        key = proc_of_pair * stride + prof.pair_nodes
        _, first = np.unique(key, return_index=True)
        per_proc_vol = float(prof.pair_terms[first].sum()) / n_procs
        rows.append(
            [
                ordering,
                float(prof.fetch_terms.sum()),
                per_proc_vol,
                sim.speedup,
                sim.load_imbalance,
            ]
        )
    headers = ["ordering", "block fetch vol", "data/proc", "speedup", "imbalance"]
    return headers, rows


def run_fmm_extension(n: int = 4000, level: int = 3, p0: int = 4, seed: int = 0):
    """A4: fixed-degree FMM vs Theorem-3 per-level schedule."""
    pts = make_distribution("uniform", n, seed=seed + 1)
    q = unit_charges(n, seed=seed + 2, signed=True)
    ref = direct_potential(pts, q)
    rows = []
    for name, degs in (
        ("fixed", p0),
        ("adaptive(c=1)", level_degrees(p0, level + 1, c=1.0)),
        ("adaptive(c=2)", level_degrees(p0, level + 1, c=2.0)),
    ):
        fmm = UniformFMM(pts, q, level=level, degrees=degs)
        phi = fmm.evaluate()
        rows.append(
            [
                name,
                str(degs),
                relative_l2_error(phi, ref),
                fmm.stats.n_terms_m2l,
            ]
        )
    headers = ["schedule", "degrees(root..leaf)", "err", "M2L terms"]
    return headers, rows
