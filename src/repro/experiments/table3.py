"""Experiment E5 — Table 3: BEM single-iteration errors and costs.

The paper solves dense boundary-integral systems on propeller and
gripper surface meshes: one GMRES(10) iteration is a treecode
matrix-vector product, and "errors are computed with respect to a 9
degree polynomial" because the exact computation is too slow.  This
experiment reproduces the table structure: for each geometry, the
original method at degrees p0..p0+3 and the improved method anchored at
p0, reporting matvec error vs the degree-9 reference, multipole terms,
and wall time; a GMRES(10) solve of the improved operator demonstrates
convergence.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

import numpy as np

from ..analysis.metrics import relative_l2_error
from ..obs.tracing import stopwatch
from ..bem.geometries import gripper, propeller
from ..bem.mesh import TriangleMesh
from ..bem.operator import OperatorGeometry, SingleLayerOperator
from ..bem.solver import solve_dirichlet
from ..core.degree import AdaptiveChargeDegree, FixedDegree
from ..robust.checkpoint import Checkpoint, cached_step

__all__ = ["Table3Row", "run_table3", "run_table3_geometry"]

REFERENCE_DEGREE = 9


@dataclass
class Table3Row:
    geometry: str
    algorithm: str  #: "original" or "improved"
    degree: str  #: fixed degree, or "p0*" for the improved method
    error: float  #: matvec relative error vs the degree-9 reference
    terms: int
    time: float  #: matvec wall time (s)
    gmres_iters: int | None = None  #: filled for the solve row

    HEADERS = ["geometry", "algorithm", "degree", "error", "terms", "time(s)"]

    def as_list(self):
        return [self.geometry, self.algorithm, self.degree, self.error, self.terms, self.time]


def run_table3_geometry(
    name: str,
    mesh: TriangleMesh,
    p0: int = 4,
    alpha: float = 0.5,
    n_gauss: int = 6,
    degrees: list[int] | None = None,
    seed: int = 0,
    geometry: OperatorGeometry | None = None,
    tol: float | None = None,
) -> list[Table3Row]:
    """One geometry block of Table 3.

    With ``tol`` set, a final row runs the target-accuracy operator
    (variable-order compiled plan, see
    :class:`~repro.bem.operator.SingleLayerOperator`): the matvec is
    timed on the second application, after the plan has compiled.
    """
    degrees = list(range(p0, p0 + 4)) if degrees is None else degrees
    rng = np.random.default_rng(seed)
    x = rng.uniform(0.5, 1.5, mesh.n_vertices)

    # one shared geometry (quadrature + octree + interaction lists) for
    # every operator in this block — they differ only in degree policy
    if geometry is None:
        geometry = OperatorGeometry(mesh, n_gauss=n_gauss)
    ref_op = SingleLayerOperator(
        mesh,
        n_gauss=n_gauss,
        degree_policy=FixedDegree(REFERENCE_DEGREE),
        alpha=alpha,
        geometry=geometry,
    )
    v_ref = ref_op.matvec(x)

    rows = []
    for p in degrees:
        op = SingleLayerOperator(
            mesh,
            n_gauss=n_gauss,
            degree_policy=FixedDegree(p),
            alpha=alpha,
            geometry=geometry,
        )
        with stopwatch("table3.matvec", geometry=name, degree=str(p)) as sw:
            v = op.matvec(x)
        dt = sw.elapsed
        rows.append(
            Table3Row(
                geometry=name,
                algorithm="original",
                degree=str(p),
                error=relative_l2_error(v, v_ref),
                terms=int(op.stats.n_terms),
                time=dt,
            )
        )
    op = SingleLayerOperator(
        mesh,
        n_gauss=n_gauss,
        degree_policy=AdaptiveChargeDegree(p0=p0, alpha=alpha),
        alpha=alpha,
        geometry=geometry,
    )
    with stopwatch("table3.matvec", geometry=name, degree=f"{p0}*") as sw:
        v = op.matvec(x)
    dt = sw.elapsed
    rows.append(
        Table3Row(
            geometry=name,
            algorithm="improved",
            degree=f"{p0}*",
            error=relative_l2_error(v, v_ref),
            terms=int(op.stats.n_terms),
            time=dt,
        )
    )
    if tol is not None:
        op = SingleLayerOperator(
            mesh,
            n_gauss=n_gauss,
            degree_policy=FixedDegree(p0),
            alpha=alpha,
            tol=tol,
            geometry=geometry,
        )
        op.matvec(x)  # first application: seed path, no plan yet
        op.matvec(x)  # second application compiles the variable-order plan
        terms_before = int(op.stats.n_terms)
        with stopwatch(
            "table3.matvec", geometry=name, degree=f"tol={tol:g}"
        ) as sw:
            v = op.matvec(x)
        rows.append(
            Table3Row(
                geometry=name,
                algorithm="target-tol",
                degree=f"tol={tol:g}",
                error=relative_l2_error(v, v_ref),
                terms=int(op.stats.n_terms) - terms_before,
                time=sw.elapsed,
            )
        )
    return rows


def run_table3(
    p0: int = 4,
    alpha: float = 0.5,
    n_gauss: int = 6,
    propeller_res: int = 10,
    gripper_res: int = 5,
    seed: int = 0,
    checkpoint: Checkpoint | None = None,
    tol: float | None = None,
) -> tuple[list[Table3Row], dict]:
    """Both geometry blocks plus a GMRES(10) convergence demonstration.

    Returns the rows and a dict with per-geometry GMRES iteration counts
    of the improved method.  With a :class:`~repro.robust.Checkpoint`,
    each completed geometry block is persisted atomically and an
    interrupted sweep resumes instead of restarting — resumed rows are
    byte-identical to what the interrupted run produced.  The GMRES
    demonstration runs through the robust solve path (restart
    escalation + dense fallback on stagnation).
    """
    meshes = {
        "propeller": propeller(blade_res=propeller_res, hub_res=propeller_res),
        "gripper": gripper(resolution=gripper_res),
    }
    rows: list[Table3Row] = []
    gmres_info = {}
    for name, mesh in meshes.items():

        def compute(name=name, mesh=mesh) -> dict:
            geometry = OperatorGeometry(mesh, n_gauss=n_gauss)
            geo_rows = run_table3_geometry(
                name,
                mesh,
                p0=p0,
                alpha=alpha,
                n_gauss=n_gauss,
                seed=seed,
                geometry=geometry,
                tol=tol,
            )
            sol = solve_dirichlet(
                mesh,
                1.0,
                operator=SingleLayerOperator(
                    mesh,
                    n_gauss=n_gauss,
                    degree_policy=AdaptiveChargeDegree(p0=p0, alpha=alpha),
                    alpha=alpha,
                    geometry=geometry,
                ),
                restart=10,
                tol=1e-6,
                robust=True,
            )
            return {
                "rows": [asdict(r) for r in geo_rows],
                "gmres": {
                    "converged": sol.gmres.converged,
                    "iterations": sol.gmres.n_iterations,
                    "nodes": mesh.n_vertices,
                    "elements": mesh.n_triangles,
                    "recovery": list(sol.recovery or []),
                },
            }

        step = f"geometry:{name}" if tol is None else f"geometry:{name}:tol={tol:g}"
        payload = cached_step(checkpoint, step, compute)
        rows += [Table3Row(**d) for d in payload["rows"]]
        gmres_info[name] = payload["gmres"]
    return rows, gmres_info
