"""Experiment E4 — Table 2: parallel runtimes and speedups.

The paper times a single treecode iteration on a 32-processor SGI
Origin 2000 for two instances, uniform40k and non-uniform46k, for both
methods.  Here the measured serial evaluation is combined with the
machine model of :mod:`repro.parallel.machine` (driven by the measured
per-block work profile) to produce speedups; the real thread-pool
executor is also run to verify parallel/serial agreement and, on
multi-core hosts, real wall-clock scaling.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.degree import AdaptiveChargeDegree, FixedDegree
from ..core.treecode import Treecode
from ..data.distributions import make_distribution, unit_charges
from ..obs.tracing import stopwatch
from ..parallel import (
    MachineModel,
    evaluate_parallel,
    evaluate_plan_parallel,
    make_blocks,
    profile_blocks,
    resolve_workers,
    simulate,
)

__all__ = ["Table2Row", "run_table2"]


@dataclass
class Table2Row:
    problem: str
    method: str
    serial_time: float  #: measured single-thread wall time (s)
    sim_speedup_cyclic: float  #: machine model, static block-cyclic schedule
    sim_speedup_lpt: float  #: machine model, dynamic (LPT) schedule
    sim_efficiency: float  #: LPT efficiency at n_procs
    fetch_terms: float  #: total distinct-cluster multipole terms fetched
    parallel_matches_serial: bool

    HEADERS = [
        "problem",
        "method",
        "serial(s)",
        "speedup(cyclic)",
        "speedup(LPT)",
        "efficiency",
        "fetch terms",
        "par==ser",
    ]

    def as_list(self):
        return [
            self.problem,
            self.method,
            self.serial_time,
            self.sim_speedup_cyclic,
            self.sim_speedup_lpt,
            self.sim_efficiency,
            self.fetch_terms,
            self.parallel_matches_serial,
        ]


def run_table2(
    problems: list[tuple[str, str, int]] | None = None,
    n_procs: int = 32,
    w: int = 64,
    p0: int = 4,
    alpha: float = 0.4,
    n_threads: int | None = None,
    seed: int = 0,
    backend: str = "thread",
) -> list[Table2Row]:
    """Run both methods on each problem; default instances mirror the
    paper's uniform40k / non-uniform46k (scaled by the caller).

    ``n_threads=None`` resolves through
    :func:`~repro.parallel.resolve_workers` (``--workers`` /
    ``REPRO_NUM_WORKERS``, else 2 here).

    ``backend`` selects how the verification evaluation runs:
    ``"thread"`` (default) uses the block-based thread executor;
    ``"serial"`` and ``"process"`` compile an evaluation plan and run
    it through :func:`~repro.parallel.evaluate_plan_parallel` on one
    in-process worker or a forked process pool respectively.  The plan
    backends record identical deterministic work counters (the plan's
    frozen interaction accounting), so a profiled ``process`` run can
    be compared counter-for-counter against a ``serial`` one.
    """
    if backend not in ("serial", "thread", "process"):
        raise ValueError(
            f"backend must be 'serial', 'thread' or 'process', got {backend!r}"
        )
    n_threads = resolve_workers(n_threads, default=2)
    if problems is None:
        problems = [
            ("uniform10k", "uniform", 10000),
            ("non-uniform12k", "gaussian", 12000),
        ]
    rows = []
    model = MachineModel(n_procs=n_procs)
    for label, dist, n in problems:
        pts = make_distribution(dist, n, seed=seed + n)
        q = unit_charges(n, seed=seed + n + 1, signed=True)
        blocks = make_blocks(pts, w)
        for method, policy in (
            ("original", FixedDegree(p0)),
            ("new", AdaptiveChargeDegree(p0=p0, alpha=alpha)),
        ):
            tc = Treecode(pts, q, degree_policy=policy, alpha=alpha)
            with stopwatch("table2.serial", problem=label, method=method) as sw:
                serial = tc.evaluate()
            serial_time = sw.elapsed

            if backend == "thread":
                par = evaluate_parallel(tc, n_threads=n_threads, w=w)
                tol = {"rtol": 1e-12, "atol": 1e-14}
            else:
                plan = tc.compile_plan()
                par = evaluate_plan_parallel(
                    plan,
                    q,
                    n_threads=1 if backend == "serial" else n_threads,
                    backend="thread" if backend == "serial" else "process",
                )
                # plan arithmetic regroups sums; agreement is to rounding
                tol = {"rtol": 1e-9, "atol": 1e-12}
            matches = bool(
                np.allclose(par.potential, serial.potential, **tol)
            )

            prof = profile_blocks(tc, blocks)
            sim_c = simulate(prof, model, strategy="cyclic")
            sim_l = simulate(prof, model, strategy="lpt")
            rows.append(
                Table2Row(
                    problem=label,
                    method=method,
                    serial_time=serial_time,
                    sim_speedup_cyclic=sim_c.speedup,
                    sim_speedup_lpt=sim_l.speedup,
                    sim_efficiency=sim_l.efficiency,
                    fetch_terms=float(prof.fetch_terms.sum()),
                    parallel_matches_serial=matches,
                )
            )
    return rows
