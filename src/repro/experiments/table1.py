"""Experiment E1/E2 — Table 1: error and term counts, original vs improved.

For each problem size and distribution the original (fixed-degree) and
improved (adaptive-degree, Theorem 3) Barnes-Hut methods are run at the
same ``p0`` and MAC parameter; we report the paper's metrics — the
relative 2-norm simulation error and the number of multipole terms
evaluated — plus the accumulated Theorem-1 error bound, whose growth
(≈ n^(2/3) for the original method, ≈ log n for the improved one) is
the analytical shape Table 1 and Figure 2 demonstrate.

Charges are random ±1 (the paper's motivating protein-simulation regime:
uniform |charge| density, mixed signs).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.metrics import relative_l2_error
from ..core.degree import AdaptiveChargeDegree, FixedDegree
from ..core.treecode import Treecode
from ..data.distributions import make_distribution, unit_charges
from ..direct import direct_potential

__all__ = [
    "Table1Row",
    "run_table1",
    "run_variable_order_case",
    "DEFAULT_STRUCTURED_N",
    "DEFAULT_UNSTRUCTURED",
]

DEFAULT_STRUCTURED_N = [2000, 4000, 8000, 16000]
DEFAULT_UNSTRUCTURED = [("gaussian", 8000), ("overlapping_gaussians", 12000)]


@dataclass
class Table1Row:
    distribution: str
    n: int
    err_orig: float
    err_new: float
    bound_orig: float
    bound_new: float
    terms_orig: int
    terms_new: int
    degrees_new: tuple

    def as_list(self):
        return [
            self.distribution,
            self.n,
            self.err_orig,
            self.err_new,
            self.bound_orig,
            self.bound_new,
            self.terms_orig,
            self.terms_new,
            f"{self.degrees_new[0]}..{self.degrees_new[1]}",
        ]

    HEADERS = [
        "dist",
        "n",
        "err(orig)",
        "err(new)",
        "bound(orig)",
        "bound(new)",
        "terms(orig)",
        "terms(new)",
        "p(new)",
    ]


def run_case(
    distribution: str, n: int, p0: int = 4, alpha: float = 0.4, seed: int | None = None
) -> Table1Row:
    """Run one Table-1 row: both methods on the same instance."""
    seed = n if seed is None else seed
    pts = make_distribution(distribution, n, seed=seed)
    q = unit_charges(n, seed=seed + 1, signed=True)
    ref = direct_potential(pts, q)

    out = {}
    for name, policy in (
        ("orig", FixedDegree(p0)),
        ("new", AdaptiveChargeDegree(p0=p0, alpha=alpha)),
    ):
        tc = Treecode(pts, q, degree_policy=policy, alpha=alpha)
        res = tc.evaluate(accumulate_bounds=True)
        out[name] = (
            relative_l2_error(res.potential, ref),
            float(np.linalg.norm(res.error_bound) / np.linalg.norm(ref)),
            int(res.stats.n_terms),
            (int(tc.p_eval.min()), int(tc.p_eval.max())),
        )
    return Table1Row(
        distribution=distribution,
        n=n,
        err_orig=out["orig"][0],
        err_new=out["new"][0],
        bound_orig=out["orig"][1],
        bound_new=out["new"][1],
        terms_orig=out["orig"][2],
        terms_new=out["new"][2],
        degrees_new=out["new"][3],
    )


def run_variable_order_case(
    distribution: str,
    n: int,
    tol: float,
    alpha: float = 0.4,
    seed: int | None = None,
    mode: str = "target",
    translation_backend: str = "auto",
) -> dict:
    """Target-accuracy variable-order plan on one Table-1 instance.

    Compiles a plan with per-interaction degree selection for ``tol``
    (see :meth:`~repro.core.treecode.Treecode.compile_plan`) and checks
    the containment chain the compiler guarantees: measured max error
    <= a-posteriori Theorem-1 ledger <= ``tol``.  Returns a summary dict
    (max error, ledger maxima, selected degree range, terms evaluated).
    Target-major mode is the default — it matches Table 1's
    particle-cluster MAC semantics; pass ``mode="cluster"`` to exercise
    the dual-MAC plan on the same instance.  ``translation_backend``
    selects the cluster plan's M2L kernels (dense / rotation / auto);
    the containment chain must hold under either backend.
    """
    seed = n if seed is None else seed
    pts = make_distribution(distribution, n, seed=seed)
    q = unit_charges(n, seed=seed + 1, signed=True)
    ref = direct_potential(pts, q)
    tc = Treecode(pts, q, degree_policy=FixedDegree(4), alpha=alpha)
    plan = tc.compile_plan(
        mode=mode,
        tol=tol,
        accumulate_bounds=True,
        translation_backend=translation_backend,
    )
    res = plan.execute(q)
    max_err = float(np.abs(res.potential - ref).max())
    max_ledger = float(res.error_bound.max())
    return {
        "distribution": distribution,
        "n": n,
        "tol": float(tol),
        "mode": mode,
        "translation_backend": translation_backend,
        "max_err": max_err,
        "max_ledger": max_ledger,
        "predicted_ledger": float(plan.predicted_ledger_max),
        "p_min": int(plan.pair_degrees.min()) if plan.pair_degrees.size else 0,
        "p_max": int(plan.pair_degrees.max()) if plan.pair_degrees.size else 0,
        "terms": int(res.stats.n_terms),
        "contained": bool(max_err <= max_ledger <= tol),
    }


def run_table1(
    structured_n: list[int] | None = None,
    unstructured: list[tuple[str, int]] | None = None,
    p0: int = 4,
    alpha: float = 0.4,
    seed: int | None = None,
) -> list[Table1Row]:
    """Full Table 1: structured (uniform) rows then unstructured rows.

    ``seed`` offsets every per-instance seed (default: the instance size
    ``n``, the historical convention), keeping rows distinct but the
    whole table reproducible end to end from one ``--seed``.
    """
    structured_n = DEFAULT_STRUCTURED_N if structured_n is None else structured_n
    unstructured = DEFAULT_UNSTRUCTURED if unstructured is None else unstructured

    def inst_seed(n: int) -> int | None:
        return None if seed is None else seed + n

    rows = [
        run_case("uniform", n, p0=p0, alpha=alpha, seed=inst_seed(n))
        for n in structured_n
    ]
    rows += [
        run_case(dist, n, p0=p0, alpha=alpha, seed=inst_seed(n))
        for dist, n in unstructured
    ]
    return rows
