"""Experiment E3 — Figure 2: error and cost vs n, both methods.

The graphical companion of Table 1: four series over n —
error(original), error(new), terms(original), terms(new) — plus the
accumulated error bounds whose divergence is the paper's theoretical
message ("the growth in error is much faster in the original method").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .table1 import run_case

__all__ = ["Fig2Data", "run_fig2"]


@dataclass
class Fig2Data:
    """The four series of Figure 2 (plus bound series)."""

    n: list = field(default_factory=list)
    err_orig: list = field(default_factory=list)
    err_new: list = field(default_factory=list)
    bound_orig: list = field(default_factory=list)
    bound_new: list = field(default_factory=list)
    terms_orig: list = field(default_factory=list)
    terms_new: list = field(default_factory=list)

    def series(self) -> dict:
        return {
            "error(original)": (self.n, self.err_orig),
            "error(new)": (self.n, self.err_new),
            "bound(original)": (self.n, self.bound_orig),
            "bound(new)": (self.n, self.bound_new),
            "terms(original)": (self.n, self.terms_orig),
            "terms(new)": (self.n, self.terms_new),
        }


def run_fig2(
    sizes: list[int] | None = None,
    distribution: str = "uniform",
    p0: int = 4,
    alpha: float = 0.4,
    seed: int | None = None,
) -> Fig2Data:
    sizes = [1000, 2000, 4000, 8000, 16000] if sizes is None else sizes
    data = Fig2Data()
    for n in sizes:
        row = run_case(
            distribution, n, p0=p0, alpha=alpha,
            seed=None if seed is None else seed + n,
        )
        data.n.append(n)
        data.err_orig.append(row.err_orig)
        data.err_new.append(row.err_new)
        data.bound_orig.append(row.bound_orig)
        data.bound_new.append(row.bound_new)
        data.terms_orig.append(row.terms_orig)
        data.terms_new.append(row.terms_new)
    return data
