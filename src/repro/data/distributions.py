"""Particle distribution generators for the paper's experiments.

The paper evaluates on "problem instances [that] range from uniform to
highly irregular distributions in three dimensions":

* ``uniform`` — "a random distribution of points distributed equally
  across the domain" (the structured instances of Table 1);
* ``gaussian`` — "generated using a Gaussian density function";
* ``overlapping_gaussians`` — "overlapped Gaussian distributions
  (multiple Gaussians superimposed)";

plus two extras used by examples and ablations: a hollow ``sphere_shell``
(the surface-concentrated distribution class of the BEM experiments) and
the astrophysical ``plummer`` model (the paper's motivating application
domain).

All generators take a seeded ``numpy.random.Generator`` (or an int seed)
so every experiment is exactly reproducible.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "uniform_cube",
    "lattice",
    "gaussian_blob",
    "overlapping_gaussians",
    "sphere_shell",
    "plummer",
    "unit_charges",
    "uniform_charges",
    "make_distribution",
    "DISTRIBUTIONS",
]


def _rng(seed) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def uniform_cube(n: int, seed=0, edge: float = 1.0) -> np.ndarray:
    """``n`` points uniformly random in the cube ``[0, edge]^3``."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return _rng(seed).random((n, 3)) * edge


def lattice(n: int, seed=0, edge: float = 1.0, jitter: float = 0.0) -> np.ndarray:
    """~``n`` points on a regular grid (the literal "structured" case).

    The grid has ``ceil(n^(1/3))`` points per side, truncated to exactly
    ``n``; optional ``jitter`` (fraction of the cell size) perturbs each
    point, which breaks octree-degeneracy artifacts while keeping the
    distribution structured.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if jitter < 0:
        raise ValueError(f"jitter must be >= 0, got {jitter}")
    k = int(np.ceil(n ** (1.0 / 3.0)))
    axes = (np.arange(k) + 0.5) / k
    pts = np.stack(np.meshgrid(axes, axes, axes, indexing="ij"), axis=-1).reshape(-1, 3)
    pts = pts[:n] * edge
    if jitter > 0:
        pts = pts + _rng(seed).uniform(-0.5, 0.5, pts.shape) * (jitter * edge / k)
    return pts


def gaussian_blob(n: int, seed=0, sigma: float = 0.15, center=(0.5, 0.5, 0.5)) -> np.ndarray:
    """``n`` points from an isotropic Gaussian (an irregular instance)."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return _rng(seed).normal(loc=center, scale=sigma, size=(n, 3))


def overlapping_gaussians(
    n: int,
    seed=0,
    n_blobs: int = 4,
    sigma: float = 0.08,
    edge: float = 1.0,
) -> np.ndarray:
    """Multiple superimposed Gaussians — the paper's most irregular class.

    Blob centers are drawn uniformly in the central region of the cube;
    points are split as evenly as possible between blobs.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if n_blobs < 1:
        raise ValueError(f"n_blobs must be >= 1, got {n_blobs}")
    rng = _rng(seed)
    centers = rng.random((n_blobs, 3)) * (0.6 * edge) + 0.2 * edge
    counts = np.full(n_blobs, n // n_blobs)
    counts[: n % n_blobs] += 1
    parts = [
        rng.normal(loc=c, scale=sigma, size=(k, 3)) for c, k in zip(centers, counts)
    ]
    pts = np.concatenate(parts, axis=0)
    return pts[rng.permutation(n)]


def sphere_shell(n: int, seed=0, radius: float = 0.5, thickness: float = 0.02) -> np.ndarray:
    """Points near the surface of a sphere — mimics BEM node clouds
    (bulk of the volume empty, particles on a 2-D manifold)."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    rng = _rng(seed)
    v = rng.normal(size=(n, 3))
    v /= np.linalg.norm(v, axis=1, keepdims=True)
    r = radius + rng.normal(scale=thickness, size=(n, 1))
    return 0.5 + v * r


def plummer(n: int, seed=0, scale: float = 0.1) -> np.ndarray:
    """Plummer model — the standard astrophysical cluster profile.

    Radius sampled by inverting the cumulative mass profile
    ``M(r) = (1 + (a/r)^2)^{-3/2}``; direction isotropic.  Radii are
    capped at 10 scale lengths to keep the octree depth bounded.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    rng = _rng(seed)
    m = rng.random(n) * 0.99 + 0.005
    r = scale / np.sqrt(m ** (-2.0 / 3.0) - 1.0)
    r = np.minimum(r, 10.0 * scale)
    v = rng.normal(size=(n, 3))
    v /= np.linalg.norm(v, axis=1, keepdims=True)
    return 0.5 + v * r[:, None]


def unit_charges(n: int, seed=0, signed: bool = False) -> np.ndarray:
    """Unit-magnitude charges; random ±1 signs when ``signed``.

    Uniform charge density with all-positive charges is the regime where
    the paper notes fixed-degree error "grows linearly with the
    magnitude of charge in the system" (protein-simulation analogy).
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if not signed:
        return np.ones(n)
    return _rng(seed).choice([-1.0, 1.0], size=n)


def uniform_charges(n: int, seed=0, lo: float = 0.5, hi: float = 1.5) -> np.ndarray:
    """Charges uniform in ``[lo, hi]`` — uniform density with variation."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return _rng(seed).uniform(lo, hi, size=n)


DISTRIBUTIONS = {
    "uniform": uniform_cube,
    "lattice": lattice,
    "gaussian": gaussian_blob,
    "overlapping_gaussians": overlapping_gaussians,
    "sphere_shell": sphere_shell,
    "plummer": plummer,
}


def make_distribution(name: str, n: int, seed=0, **kwargs) -> np.ndarray:
    """Dispatch by name; see :data:`DISTRIBUTIONS` for choices."""
    try:
        gen = DISTRIBUTIONS[name]
    except KeyError:
        raise ValueError(
            f"unknown distribution {name!r}; choices: {sorted(DISTRIBUTIONS)}"
        ) from None
    return gen(n, seed=seed, **kwargs)
