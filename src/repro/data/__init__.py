"""Workload generators (particle distributions and charge models)."""

from .distributions import (
    DISTRIBUTIONS,
    lattice,
    gaussian_blob,
    make_distribution,
    overlapping_gaussians,
    plummer,
    sphere_shell,
    uniform_charges,
    uniform_cube,
    unit_charges,
)

__all__ = [
    "DISTRIBUTIONS",
    "make_distribution",
    "uniform_cube",
    "lattice",
    "gaussian_blob",
    "overlapping_gaussians",
    "sphere_shell",
    "plummer",
    "unit_charges",
    "uniform_charges",
]
