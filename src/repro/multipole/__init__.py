"""Spherical-harmonic multipole machinery for the Laplace kernel."""

from .expansion import l2p, m2p, m2p_rows, p2l, p2m
from .gradient import l2p_grad, m2p_grad, m2p_grad_rows
from .harmonics import cart_to_sph, coef_index, ncoef, sph_harmonics, term_count
from .translations import l2l, m2l, m2m

__all__ = [
    "p2m",
    "m2p",
    "m2p_rows",
    "p2l",
    "l2p",
    "m2m",
    "m2l",
    "l2l",
    "m2p_grad",
    "m2p_grad_rows",
    "l2p_grad",
    "ncoef",
    "coef_index",
    "term_count",
    "sph_harmonics",
    "cart_to_sph",
]
