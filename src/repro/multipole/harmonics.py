r"""Greengard-normalized spherical harmonics and coefficient packing.

Convention (Greengard & Rokhlin, *J. Comp. Phys.* 73, 1987):

.. math::

    Y_n^m(\theta, \varphi) = \sqrt{\frac{(n-|m|)!}{(n+|m|)!}}
        \; P_n^{|m|}(\cos\theta) \; e^{i m \varphi}

with the associated Legendre functions of :mod:`repro.multipole.legendre`
(no Condon-Shortley phase).  Because all charges are real, every
expansion satisfies the conjugate symmetry ``C_n^{-m} = conj(C_n^m)``,
so we only store ``m >= 0``.

Packed layout
-------------
Coefficients for degree ``p`` are stored as a complex array of length
``ncoef(p) = (p+1)(p+2)/2`` with ``idx(n, m) = n(n+1)/2 + m``.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from .legendre import legendre_table

__all__ = [
    "ncoef",
    "coef_index",
    "degree_of_index",
    "norm_table",
    "cart_to_sph",
    "sph_harmonics",
    "term_count",
    "power_table",
]


def power_table(x: np.ndarray, p: int) -> np.ndarray:
    """Powers ``x^0 .. x^p`` along a new trailing axis.

    Built with ``multiply.accumulate`` — one multiplication per entry,
    far cheaper than ``x[..., None] ** arange(p+1)`` which evaluates a
    transcendental ``pow`` per element.
    """
    x = np.asarray(x, dtype=np.float64)
    out = np.empty(x.shape + (p + 1,), dtype=np.float64)
    out[..., 0] = 1.0
    if p >= 1:
        out[..., 1:] = x[..., None]
        np.multiply.accumulate(out[..., 1:], axis=-1, out=out[..., 1:])
    return out


def ncoef(p: int) -> int:
    """Number of packed (m >= 0) coefficients of a degree-``p`` expansion."""
    if p < 0:
        raise ValueError(f"degree must be >= 0, got {p}")
    return (p + 1) * (p + 2) // 2


def coef_index(n: int, m: int) -> int:
    """Packed index of coefficient ``(n, m)`` with ``0 <= m <= n``."""
    if not 0 <= m <= n:
        raise ValueError(f"need 0 <= m <= n, got (n={n}, m={m})")
    return n * (n + 1) // 2 + m


@lru_cache(maxsize=None)
def _nm_arrays(p: int) -> tuple[np.ndarray, np.ndarray]:
    """Arrays of (n, m) per packed index for degree ``p``."""
    ns = np.concatenate([np.full(n + 1, n, dtype=np.int64) for n in range(p + 1)])
    ms = np.concatenate([np.arange(n + 1, dtype=np.int64) for n in range(p + 1)])
    return ns, ms


def degree_of_index(p: int) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(n, m)`` arrays indexed by packed coefficient index."""
    return _nm_arrays(p)


@lru_cache(maxsize=None)
def norm_table(p: int) -> np.ndarray:
    """Packed array of normalizations ``sqrt((n-m)!/(n+m)!)``.

    Computed by the stable product form
    ``sqrt((n-m)!/(n+m)!) = prod_{k=n-m+1}^{n+m} k^{-1/2}``.
    """
    out = np.empty(ncoef(p), dtype=np.float64)
    for n in range(p + 1):
        val = 1.0
        out[coef_index(n, 0)] = 1.0
        for m in range(1, n + 1):
            # ratio (n-m)!/(n+m)! = previous ratio / ((n+m)(n-m+1))
            val /= (n + m) * (n - m + 1)
            out[coef_index(n, m)] = np.sqrt(val)
    return out


def cart_to_sph(xyz: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Convert Cartesian offsets to spherical ``(r, cosθ, φ)``.

    ``cosθ`` is returned instead of ``θ`` because every consumer feeds
    it straight into the Legendre recurrences.  At the origin
    ``cosθ = 1`` and ``φ = 0`` by convention.
    """
    xyz = np.asarray(xyz, dtype=np.float64)
    r = np.sqrt(np.einsum("...i,...i->...", xyz, xyz))
    safe = np.maximum(r, 1e-300)
    ct = np.clip(xyz[..., 2] / safe, -1.0, 1.0)
    phi = np.arctan2(xyz[..., 1], xyz[..., 0])
    return r, ct, phi


def sph_harmonics(costheta: np.ndarray, phi: np.ndarray, p: int) -> np.ndarray:
    """Packed spherical harmonics ``Y_n^m`` for ``m >= 0``.

    Parameters
    ----------
    costheta, phi:
        Broadcast-compatible arrays of angles.
    p:
        Maximum degree.

    Returns
    -------
    Complex array of shape ``broadcast.shape + (ncoef(p),)``.
    """
    costheta = np.asarray(costheta, dtype=np.float64)
    phi = np.asarray(phi, dtype=np.float64)
    costheta, phi = np.broadcast_arrays(costheta, phi)
    P = legendre_table(costheta, p)  # (..., p+1, p+1)
    ns, ms = _nm_arrays(p)
    norms = norm_table(p)
    # exp(i m phi) for m = 0..p, shape (..., p+1)
    e = np.exp(1j * phi[..., None] * np.arange(p + 1))
    Y = P[..., ns, ms] * norms * e[..., ms]
    return Y


def term_count(p: int) -> int:
    """Number of multipole terms of a degree-``p`` expansion, ``(p+1)^2``.

    This is the metric the paper reports ("number of multipole terms
    evaluated"): a full expansion of degree ``p`` has ``(p+1)^2`` terms
    counting all ``-n <= m <= n``.
    """
    if p < 0:
        raise ValueError(f"degree must be >= 0, got {p}")
    return (p + 1) * (p + 1)
