r"""Rotation operators for O(p^3) translations (rotate-translate-rotate).

The dense M2M/M2L/L2L operators in :mod:`repro.multipole.translations`
contract a full ``(n, m) x (j, k)`` grid — O((p+1)^4) flops per
translation.  The classic remedy (used by rotation-based FMMs and the
p-adaptive treecode of Cui & Yang) is to rotate each expansion so the
translation vector becomes the +z axis, apply the *axial* operator —
which conserves the order ``m`` and therefore costs O((p+1)^3) — and
rotate the result back.

This module provides the rotation half of that pipeline:

* :func:`wigner_d` — Wigner (small) d-matrices ``d^n_{m'm}(beta)`` for
  all degrees ``n <= p`` at once, evaluated with the Jacobi-polynomial
  three-term recurrence (forward-stable; no factorial differences), and
  vectorized over a batch of angles.
* :func:`build_rotation_operators` — per-direction coefficient rotation
  operators in the repo's packed ``m >= 0`` layout.  Rotations preserve
  the conjugate symmetry ``C_n^{-m} = conj(C_n^m)``, so a rotated packed
  row only needs the pair of small matrices ``(P_n, Q_n)`` per degree:
  ``C'_n = C_n @ P_n^T + conj(C_n) @ Q_n^T``.
* :func:`rotate_packed` — batched application (forward or inverse).
* :class:`RotationCache` — operators deduplicated by *quantized* unit
  direction.  On near-uniform octrees the interaction directions repeat
  massively (the 189-ish well-separated offsets), so the cache stays
  tiny; quantizing at ``2^-46`` merges directions that differ only by
  floating-point rounding of box centers while perturbing the operator
  by O(p * 2^-46) ~ 1e-12 at the highest supported degree — inside the
  rotation backend's 1e-12 agreement contract with the dense kernels.

Conventions
-----------
With the repo's Greengard-normalized harmonics (no Condon-Shortley
phase; see :mod:`repro.multipole.harmonics`) the coefficient transform
under the frame rotation that maps the unit direction ``u = (theta,
phi)`` onto ``+z`` is

.. math::

    C'_n{}^m = \sum_{m'} A^n_{m,m'} \, C_n{}^{m'}, \qquad
    A^n_{m,m'} = \epsilon_m \epsilon_{m'} e^{i m' \varphi}
                 d^n_{m'm}(\theta)

with ``epsilon_m = (-1)^m`` for ``m >= 0`` and ``1`` for ``m < 0`` (the
phase relating the repo convention to the Condon-Shortley one).  The
same matrix ``A`` transforms multipole *and* local expansions, and it
is unitary, so the inverse rotation is the conjugate transpose.  The
construction is validated against a brute-force least-squares rotation
operator in the test suite.
"""

from __future__ import annotations

import math

import numpy as np

from .harmonics import ncoef

__all__ = [
    "DIR_QUANT_BITS",
    "wigner_d",
    "RotationOperators",
    "build_rotation_operators",
    "rotate_packed",
    "direction_keys",
    "canonical_directions",
    "RotationCache",
]

#: quantization granularity (bits) for direction deduplication
DIR_QUANT_BITS = 46
_QUANT = float(1 << DIR_QUANT_BITS)


def direction_keys(u: np.ndarray) -> np.ndarray:
    """Quantized integer keys (``(B, 3)`` int64) for unit directions.

    Directions within ``~2^-46`` of each other collapse to one key, so
    box-center offsets that are geometrically identical but differ in
    the last float bits share a rotation operator.
    """
    u = np.atleast_2d(np.asarray(u, dtype=np.float64))
    return np.round(u * _QUANT).astype(np.int64)


def canonical_directions(keys: np.ndarray) -> np.ndarray:
    """Representative unit directions for quantized keys (deterministic)."""
    v = np.atleast_2d(np.asarray(keys, dtype=np.int64)).astype(np.float64)
    v /= _QUANT
    nrm = np.maximum(np.sqrt((v * v).sum(axis=1)), 1e-300)
    return v / nrm[:, None]


def wigner_d(beta: np.ndarray, p: int) -> list[np.ndarray]:
    """Wigner d-matrices ``d^n_{m'm}(beta)`` for all ``n <= p``.

    Parameters
    ----------
    beta:
        ``(D,)`` rotation angles about the y axis.
    p:
        Maximum degree.

    Returns
    -------
    List over ``n`` of arrays shaped ``(D, 2n+1, 2n+1)`` indexed
    ``[dir, m' + n, m + n]``.

    Notes
    -----
    Uses the Jacobi-polynomial representation restricted to the
    canonical sector ``m' >= |m|``::

        d^n_{m'm} = N_s (cos b/2)^{m'+m} (-sin b/2)^{m'-m}
                    P_s^{(m'-m, m'+m)}(cos beta),   s = n - m',
        N_s = sqrt( s! (s+a+b)! / ((s+a)! (s+b)!) )

    with the remaining sectors filled by the exact symmetries
    ``d_{m,m'} = (-1)^{m'-m} d_{m',m}``, ``d_{-m,-m'} = d_{m',m}``.
    The Jacobi three-term recurrence in ``s`` is evaluated for all
    ``(m', m)`` pairs and all angles simultaneously, and the
    normalization ``N_s`` is carried as a running product — no factorial
    ratios ever materialize, keeping the construction stable to the
    repo's degree cap (p = 42).
    """
    beta = np.atleast_1d(np.asarray(beta, dtype=np.float64))
    D = beta.shape[0]
    x = np.cos(beta)
    ch = np.cos(0.5 * beta)
    sh = np.sin(0.5 * beta)

    # canonical (m', m) pairs: 0 <= m' <= p, -m' <= m <= m'
    mp_a = np.concatenate(
        [np.full(2 * mp + 1, mp, dtype=np.int64) for mp in range(p + 1)]
    )
    m_a = np.concatenate(
        [np.arange(-mp, mp + 1, dtype=np.int64) for mp in range(p + 1)]
    )
    a = mp_a - m_a  # >= 0
    b = mp_a + m_a  # >= 0
    sigma = np.where(a % 2 == 0, 1.0, -1.0)  # (-1)^(m'-m)

    sizes = [(2 * n + 1) ** 2 for n in range(p + 1)]
    base = np.zeros(p + 2, dtype=np.int64)
    np.cumsum(sizes, out=base[1:])
    flat = np.zeros((D, int(base[-1])), dtype=np.float64)

    # angular prefactor (npairs, D): cos^b * (-sin)^a
    ang = np.power(ch[None, :], b[:, None]) * np.power(-sh[None, :], a[:, None])

    # N at s=0: sqrt((a+b)! / (a! b!))
    lg = np.vectorize(math.lgamma)
    N = np.exp(0.5 * (lg(a + b + 1.0) - lg(a + 1.0) - lg(b + 1.0)))

    def scatter(s: int, vals: np.ndarray) -> None:
        act = np.nonzero(mp_a + s <= p)[0]
        if act.size == 0:
            return
        n = mp_a[act] + s
        tn = 2 * n + 1
        v = vals[act].T  # (D, nact)
        sv = (sigma[act][:, None] * vals[act]).T
        o = base[n]
        flat[:, o + (mp_a[act] + n) * tn + (m_a[act] + n)] = v
        flat[:, o + (m_a[act] + n) * tn + (mp_a[act] + n)] = sv
        flat[:, o + (n - mp_a[act]) * tn + (n - m_a[act])] = sv
        flat[:, o + (n - m_a[act]) * tn + (n - mp_a[act])] = v

    Pm1 = np.ones((a.size, D), dtype=np.float64)  # P_0
    scatter(0, N[:, None] * ang)
    Pm2 = None
    af = a.astype(np.float64)
    bf = b.astype(np.float64)
    for s in range(1, p + 1):
        if s == 1:
            Pcur = 0.5 * (af - bf)[:, None] + 0.5 * (af + bf + 2.0)[:, None] * x[None, :]
        else:
            t = 2.0 * s + af + bf
            c1 = 2.0 * s * (s + af + bf) * (t - 2.0)
            c2 = (t - 1.0) * (af * af - bf * bf)
            c3 = (t - 2.0) * (t - 1.0) * t
            c4 = 2.0 * (s + af - 1.0) * (s + bf - 1.0) * t
            Pcur = (
                (c2[:, None] + c3[:, None] * x[None, :]) * Pm1 - c4[:, None] * Pm2
            ) / c1[:, None]
        N = N * np.sqrt(s * (s + af + bf) / ((s + af) * (s + bf)))
        scatter(s, N[:, None] * ang * Pcur)
        Pm2, Pm1 = Pm1, Pcur

    return [
        flat[:, base[n] : base[n + 1]].reshape(D, 2 * n + 1, 2 * n + 1)
        for n in range(p + 1)
    ]


class RotationOperators:
    """Packed-layout rotation operator for one unit direction (degrees 0..p).

    ``P[n]``/``Q[n]`` apply the forward rotation (direction -> +z) to a
    packed degree-``n`` block, ``Pi[n]``/``Qi[n]`` the inverse; see
    :func:`rotate_packed`.  A complex64 clone is materialized lazily for
    the reduced-precision cluster path.
    """

    __slots__ = ("p", "P", "Q", "Pi", "Qi", "nbytes", "_c64")

    def __init__(self, p, P, Q, Pi, Qi, nbytes=None):
        self.p = p
        self.P = P
        self.Q = Q
        self.Pi = Pi
        self.Qi = Qi
        if nbytes is None:
            nbytes = int(sum(m.nbytes for mats in (P, Q, Pi, Qi) for m in mats))
        self.nbytes = nbytes
        self._c64 = None

    def as_dtype(self, dtype) -> "RotationOperators":
        if np.dtype(dtype) != np.complex64:
            return self
        if self._c64 is None:
            self._c64 = RotationOperators(
                self.p,
                [m.astype(np.complex64) for m in self.P],
                [m.astype(np.complex64) for m in self.Q],
                [m.astype(np.complex64) for m in self.Pi],
                [m.astype(np.complex64) for m in self.Qi],
            )
        return self._c64


def build_rotation_operators(dirs: np.ndarray, p: int) -> list[RotationOperators]:
    """Rotation operators (forward + inverse) for a batch of unit directions.

    The returned operator rotates packed coefficients from the lab frame
    into the frame whose +z axis is ``dirs[i]``; the Wigner-d evaluation
    is shared across the whole batch.
    """
    dirs = np.atleast_2d(np.asarray(dirs, dtype=np.float64))
    D = dirs.shape[0]
    ct = np.clip(dirs[:, 2], -1.0, 1.0)
    beta = np.arccos(ct)
    phi = np.arctan2(dirs[:, 1], dirs[:, 0])
    dmats = wigner_d(beta, p)

    # per-degree batched A, then split into per-direction contiguous blocks
    P_all: list[np.ndarray] = []
    Q_all: list[np.ndarray] = []
    Pi_all: list[np.ndarray] = []
    Qi_all: list[np.ndarray] = []
    for n in range(p + 1):
        marr = np.arange(-n, n + 1)
        eps = np.where(marr >= 0, np.where(marr % 2 == 0, 1.0, -1.0), 1.0)
        phase = np.exp(1j * phi[:, None] * marr[None, :])  # e^{i m' phi}
        # A[dir, m, m'] = eps_m eps_{m'} e^{i m' phi} d^n_{m' m}
        A = (
            np.transpose(dmats[n], (0, 2, 1)).astype(np.complex128)
            * eps[None, :, None]
            * (eps[None, None, :] * phase[:, None, :])
        )
        Ai = np.conj(np.transpose(A, (0, 2, 1)))
        P = np.ascontiguousarray(A[:, n:, n:])
        Q = np.zeros((D, n + 1, n + 1), dtype=np.complex128)
        if n > 0:
            Q[:, :, 1:] = A[:, n:, n - 1 :: -1]
        Pi = np.ascontiguousarray(Ai[:, n:, n:])
        Qi = np.zeros((D, n + 1, n + 1), dtype=np.complex128)
        if n > 0:
            Qi[:, :, 1:] = Ai[:, n:, n - 1 :: -1]
        P_all.append(P)
        Q_all.append(Q)
        Pi_all.append(Pi)
        Qi_all.append(Qi)

    # per-direction slices of the C-contiguous batch arrays are
    # themselves contiguous views; sharing them (no copy) keeps the
    # build O(batch) instead of O(batch * degrees) in Python overhead,
    # and the per-operator byte count is degree-determined so it is
    # priced once for the whole batch
    rng = range(p + 1)
    nbytes = int(sum(P_all[n][0].nbytes + Q_all[n][0].nbytes for n in rng)) * 2
    return [
        RotationOperators(
            p,
            [P_all[n][d] for n in rng],
            [Q_all[n][d] for n in rng],
            [Pi_all[n][d] for n in rng],
            [Qi_all[n][d] for n in rng],
            nbytes=nbytes,
        )
        for d in range(D)
    ]


def rotate_packed(
    C: np.ndarray, ops: RotationOperators, p: int | None = None, inverse: bool = False
) -> np.ndarray:
    """Apply a rotation operator to packed coefficient rows.

    Parameters
    ----------
    C:
        ``(B, ncoef(p))`` packed coefficients (complex).
    ops:
        Operator from :func:`build_rotation_operators` with ``ops.p >= p``.
    p:
        Degree of ``C`` (defaults to ``ops.p``); lower degrees reuse the
        leading blocks of a higher-degree operator.
    inverse:
        Apply the inverse (conjugate-transpose) rotation.

    Returns
    -------
    ``(B, ncoef(p))`` rotated coefficients, same dtype as ``C``.
    """
    C = np.atleast_2d(C)
    if p is None:
        p = ops.p
    if p > ops.p:
        raise ValueError(f"operator built for p={ops.p}, asked p={p}")
    o = ops.as_dtype(C.dtype)
    Pl, Ql = (o.Pi, o.Qi) if inverse else (o.P, o.Q)
    out = np.empty((C.shape[0], ncoef(p)), dtype=C.dtype)
    out[:, 0] = C[:, 0]
    Cc = np.conj(C)
    for n in range(1, p + 1):
        lo = n * (n + 1) // 2
        hi = lo + n + 1
        out[:, lo:hi] = C[:, lo:hi] @ Pl[n].T + Cc[:, lo:hi] @ Ql[n].T
    return out


class RotationCache:
    """Rotation operators deduplicated by quantized unit direction.

    ``ids_for(dirs, p)`` maps a batch of unit directions to stable
    integer ids, building any missing operators in one vectorized pass;
    ``get(id)`` returns the operator.  An id's operator is rebuilt (at
    the same id) when a later request needs a higher degree, so plans
    with mixed degree groups share one cache.
    """

    def __init__(self) -> None:
        self._ids: dict[bytes, int] = {}
        self._ops: list[RotationOperators | None] = []
        self._dirs: list[np.ndarray] = []
        self.built = 0  #: total operator builds (dedup telemetry)
        self.requested = 0  #: total directions requested

    def __len__(self) -> int:
        return len(self._ops)

    @property
    def nbytes(self) -> int:
        return sum(o.nbytes for o in self._ops if o is not None)

    @property
    def max_p(self) -> int:
        return max((o.p for o in self._ops if o is not None), default=-1)

    def ids_for(self, dirs: np.ndarray, p: int) -> np.ndarray:
        """Ids of (and build, if needed) operators for unit directions."""
        dirs = np.atleast_2d(np.asarray(dirs, dtype=np.float64))
        keys = direction_keys(dirs)
        self.requested += dirs.shape[0]
        ids = np.empty(dirs.shape[0], dtype=np.int64)
        need: list[int] = []
        for i in range(keys.shape[0]):
            kb = keys[i].tobytes()
            kid = self._ids.get(kb)
            if kid is None:
                kid = len(self._ops)
                self._ids[kb] = kid
                self._ops.append(None)
                self._dirs.append(canonical_directions(keys[i : i + 1])[0])
                need.append(kid)
            elif self._ops[kid] is not None and self._ops[kid].p < p:
                need.append(kid)
            ids[i] = kid
        if need:
            need = sorted(set(need))
            batch = np.array([self._dirs[k] for k in need], dtype=np.float64)
            built = build_rotation_operators(batch, p)
            for k, op in zip(need, built):
                self._ops[k] = op
            self.built += len(need)
        return ids

    def get(self, kid: int) -> RotationOperators:
        op = self._ops[kid]
        if op is None:  # pragma: no cover - ids_for always builds
            raise KeyError(f"rotation operator {kid} never built")
        return op
