r"""Multipole and local expansions for the 3-D Laplace kernel ``1/r``.

A degree-``p`` *multipole* expansion about a center ``c`` of charges
``q_i`` at positions ``s_i`` (with ``rho_i = |s_i - c| < a``) is

.. math::

    M_n^m = \sum_i q_i \rho_i^n \, \overline{Y_n^m(\alpha_i, \beta_i)},
    \qquad
    \Phi(x) = \sum_{n=0}^{p} \sum_{m=-n}^{n}
        \frac{M_n^m}{r^{n+1}} Y_n^m(\theta, \varphi)

valid for ``r = |x - c| > a`` (Theorem 1 of the paper, due to Greengard
and Rokhlin).  A *local* expansion about ``c`` stores coefficients
``L_n^m`` with ``Phi(c + y) = sum L_n^m rho_y^n Y_n^m(theta_y, phi_y)``.

Because charges are real, ``C_n^{-m} = conj(C_n^m)`` for both kinds of
expansion, and only ``m >= 0`` coefficients are stored (packed layout of
:mod:`repro.multipole.harmonics`).

All routines are vectorized over sources and targets; evaluation of one
expansion at many targets is a single dense matrix-vector product.
"""

from __future__ import annotations

import numpy as np

from .harmonics import (
    cart_to_sph,
    coef_index,
    degree_of_index,
    ncoef,
    power_table,
    sph_harmonics,
)

__all__ = [
    "p2m",
    "p2m_terms",
    "m2p",
    "m2p_rows",
    "p2l",
    "l2p",
    "m_weights",
    "m_weights_cache_stats",
    "truncate",
    "extend",
]


#: Cap on distinct degrees held by the :func:`m_weights` cache.
#: Variable-order plans touch dozens of degrees per compile; fixed-size
#: FIFO eviction keeps the cache bounded without an LRU bookkeeping
#: cost on the hit path.
_M_WEIGHTS_CACHE_MAX = 64

_m_weights_cache: dict[int, np.ndarray] = {}
_m_weights_hits = 0
_m_weights_misses = 0


def m_weights(p: int) -> np.ndarray:
    """Real-part weights per packed index: 1 for ``m = 0``, 2 for ``m > 0``.

    Using conjugate symmetry, the full-``m`` sum collapses to
    ``sum_m C_n^m F_n^m = C_n^0 F_n^0 + 2 Re sum_{m>0} C_n^m F_n^m``.

    Cached per degree (and returned read-only): the evaluator calls this
    once per far-field chunk, and rebuilding the index grids dominated
    the cost for small chunks.  The cache is bounded
    (:data:`_M_WEIGHTS_CACHE_MAX` degrees, FIFO eviction) so
    variable-order plans sweeping many degrees cannot grow it without
    limit; hit/miss totals surface in the metrics registry when tracing
    is enabled (``m_weights_cache_hits`` / ``m_weights_cache_misses``).
    """
    global _m_weights_hits, _m_weights_misses
    p = int(p)
    w = _m_weights_cache.get(p)
    if w is not None:
        _m_weights_hits += 1
        return w
    _m_weights_misses += 1
    _, ms = degree_of_index(p)
    w = np.where(ms == 0, 1.0, 2.0)
    w.setflags(write=False)
    if len(_m_weights_cache) >= _M_WEIGHTS_CACHE_MAX:
        _m_weights_cache.pop(next(iter(_m_weights_cache)))
    _m_weights_cache[p] = w
    _record_m_weights_metrics()
    return w


def _record_m_weights_metrics() -> None:
    """Publish cache totals to the metrics registry (tracing only).

    Deferred import: :mod:`repro.obs` pulls in tracing machinery this
    leaf module must not depend on at import time.  Counters are synced
    on misses only — the hit path stays a dict lookup.
    """
    from ..obs.tracing import is_enabled

    if not is_enabled():
        return
    from ..obs.metrics import REGISTRY

    h = REGISTRY.counter(
        "m_weights_cache_hits", "m_weights degree-cache hits"
    )
    if _m_weights_hits > h.value:
        h.inc(_m_weights_hits - h.value)
    m = REGISTRY.counter(
        "m_weights_cache_misses", "m_weights degree-cache misses"
    )
    if _m_weights_misses > m.value:
        m.inc(_m_weights_misses - m.value)


def m_weights_cache_stats() -> dict:
    """Current :func:`m_weights` cache totals (for tests and profiles)."""
    return {
        "hits": _m_weights_hits,
        "misses": _m_weights_misses,
        "size": len(_m_weights_cache),
        "max_size": _M_WEIGHTS_CACHE_MAX,
    }


def p2m(rel_pos: np.ndarray, q: np.ndarray, p: int) -> np.ndarray:
    """Form multipole coefficients from point charges.

    Parameters
    ----------
    rel_pos:
        ``(n, 3)`` positions relative to the expansion center.
    q:
        ``(n,)`` charges.
    p:
        Expansion degree.

    Returns
    -------
    Packed complex coefficient array of length ``ncoef(p)``.
    """
    rel_pos = np.asarray(rel_pos, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    rho, ct, phi = cart_to_sph(rel_pos)
    Y = sph_harmonics(ct, phi, p)  # (n, ncoef)
    ns, _ = degree_of_index(p)
    rpow = power_table(rho, p)[:, ns]  # (n, ncoef)
    return np.einsum("i,ic,ic->c", q, rpow, np.conj(Y))


def p2m_terms(rel_pos: np.ndarray, q: np.ndarray, p: int) -> np.ndarray:
    """Per-particle multipole contributions (before summing).

    Row ``i`` is ``q_i rho_i^n conj(Y_n^m)`` — summing rows of a cluster
    gives its :func:`p2m` coefficients.  Used to form expansions for
    many clusters at once with segmented reductions.
    """
    rel_pos = np.asarray(rel_pos, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    rho, ct, phi = cart_to_sph(rel_pos)
    Y = sph_harmonics(ct, phi, p)
    ns, _ = degree_of_index(p)
    rpow = power_table(rho, p)[:, ns]
    return q[:, None] * rpow * np.conj(Y)


def m2p(coeffs: np.ndarray, rel_targets: np.ndarray, p: int) -> np.ndarray:
    """Evaluate a multipole expansion at targets (relative to its center).

    Targets must be outside the sphere enclosing the sources for the
    series to converge; this is the caller's (MAC's) responsibility.

    Returns the real potential, shape ``(t,)``.
    """
    rel_targets = np.asarray(rel_targets, dtype=np.float64)
    r, ct, phi = cart_to_sph(rel_targets)
    Y = sph_harmonics(ct, phi, p)  # (t, ncoef)
    ns, _ = degree_of_index(p)
    rinv = 1.0 / r
    rpow = rinv[:, None] * power_table(rinv, p)[:, ns]
    w = m_weights(p)
    return np.real((Y * rpow) @ (w * np.asarray(coeffs)[: ncoef(p)]))


def m2p_rows(coeff_rows: np.ndarray, rel_targets: np.ndarray, p: int) -> np.ndarray:
    """Evaluate a *different* multipole expansion per target.

    This is the hot path of the treecode: the traversal produces a flat
    list of (cluster, target) interaction pairs, and after grouping by
    degree each pair carries its own coefficient row.

    Parameters
    ----------
    coeff_rows:
        ``(t, >= ncoef(p))`` packed coefficients, row ``i`` belonging to
        target ``i`` (typically a gather ``coeff_matrix[node_ids]``).
    rel_targets:
        ``(t, 3)`` target positions relative to each pair's expansion
        center.
    p:
        Evaluation degree (rows are truncated to ``ncoef(p)``).

    Returns
    -------
    ``(t,)`` real potentials.
    """
    rel_targets = np.asarray(rel_targets, dtype=np.float64)
    r, ct, phi = cart_to_sph(rel_targets)
    Y = sph_harmonics(ct, phi, p)  # (t, ncoef)
    ns, _ = degree_of_index(p)
    rinv = 1.0 / r
    rpow = rinv[:, None] * power_table(rinv, p)[:, ns]
    w = m_weights(p)
    C = np.asarray(coeff_rows)[:, : ncoef(p)]
    return np.einsum("tc,tc,tc->t", Y.real, rpow, C.real * w) - np.einsum(
        "tc,tc,tc->t", Y.imag, rpow, C.imag * w
    )


def p2l(rel_pos: np.ndarray, q: np.ndarray, p: int) -> np.ndarray:
    """Form a local expansion directly from distant point charges.

    For a charge at ``u`` (relative to the local center, ``|u|`` larger
    than the evaluation radius), ``L_n^m = q conj(Y_n^m(u)) / |u|^{n+1}``.
    """
    rel_pos = np.asarray(rel_pos, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    rho, ct, phi = cart_to_sph(rel_pos)
    Y = sph_harmonics(ct, phi, p)
    ns, _ = degree_of_index(p)
    rinv = 1.0 / rho
    rpow = rinv[:, None] * power_table(rinv, p)[:, ns]
    return np.einsum("i,ic,ic->c", q, rpow, np.conj(Y))


def l2p(coeffs: np.ndarray, rel_targets: np.ndarray, p: int) -> np.ndarray:
    """Evaluate a local expansion at targets (relative to its center)."""
    rel_targets = np.asarray(rel_targets, dtype=np.float64)
    rho, ct, phi = cart_to_sph(rel_targets)
    Y = sph_harmonics(ct, phi, p)
    ns, _ = degree_of_index(p)
    rpow = power_table(rho, p)[:, ns]
    w = m_weights(p)
    return np.real((Y * rpow) @ (w * np.asarray(coeffs)[: ncoef(p)]))


def truncate(coeffs: np.ndarray, p_from: int, p_to: int) -> np.ndarray:
    """Truncate packed coefficients from degree ``p_from`` down to ``p_to``."""
    if p_to > p_from:
        raise ValueError(f"cannot truncate degree {p_from} up to {p_to}")
    return np.asarray(coeffs)[..., : ncoef(p_to)]


def extend(coeffs: np.ndarray, p_from: int, p_to: int) -> np.ndarray:
    """Zero-pad packed coefficients from degree ``p_from`` up to ``p_to``."""
    if p_to < p_from:
        raise ValueError(f"cannot extend degree {p_from} down to {p_to}")
    coeffs = np.asarray(coeffs)
    out = np.zeros(coeffs.shape[:-1] + (ncoef(p_to),), dtype=np.complex128)
    out[..., : ncoef(p_from)] = coeffs
    return out
