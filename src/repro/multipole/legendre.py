r"""Associated Legendre functions, vectorized over evaluation points.

The functions here use the convention *without* the Condon-Shortley
phase:

.. math::

    P_m^m(x)   &= (2m-1)!!\,(1-x^2)^{m/2} \\
    P_{m+1}^m(x) &= (2m+1)\,x\,P_m^m(x) \\
    (n-m)\,P_n^m(x) &= (2n-1)\,x\,P_{n-1}^m(x) - (n+m-1)\,P_{n-2}^m(x)

so all values are non-negative for ``x in [0, 1]``.  The spherical
harmonics in :mod:`repro.multipole.harmonics` build on this convention;
consistency between P2M / M2P / translations is verified by tests that
compare the full pipeline against direct summation.
"""

from __future__ import annotations

import numpy as np

__all__ = ["legendre_table", "legendre_theta_derivative_table"]


def legendre_table(x: np.ndarray, pmax: int) -> np.ndarray:
    """Evaluate ``P_n^m(x)`` for all ``0 <= m <= n <= pmax``.

    Parameters
    ----------
    x:
        Array of evaluation points (any shape), values in ``[-1, 1]``.
    pmax:
        Maximum degree.

    Returns
    -------
    Array of shape ``x.shape + (pmax+1, pmax+1)`` where entry
    ``[..., n, m]`` is ``P_n^m(x)`` (zero for ``m > n``).
    """
    x = np.asarray(x, dtype=np.float64)
    if pmax < 0:
        raise ValueError(f"pmax must be >= 0, got {pmax}")
    out = np.zeros(x.shape + (pmax + 1, pmax + 1), dtype=np.float64)
    s = np.sqrt(np.maximum(0.0, 1.0 - x * x))  # sin(theta) >= 0

    # Diagonal: P_m^m = (2m-1)!! s^m.
    pmm = np.ones_like(x)
    out[..., 0, 0] = pmm
    for m in range(1, pmax + 1):
        pmm = pmm * (2 * m - 1) * s
        out[..., m, m] = pmm

    # First off-diagonal: P_{m+1}^m = (2m+1) x P_m^m.
    for m in range(0, pmax):
        out[..., m + 1, m] = (2 * m + 1) * x * out[..., m, m]

    # Upward recurrence in n for fixed m.
    for m in range(0, pmax + 1):
        for n in range(m + 2, pmax + 1):
            out[..., n, m] = (
                (2 * n - 1) * x * out[..., n - 1, m] - (n + m - 1) * out[..., n - 2, m]
            ) / (n - m)
    return out


def legendre_theta_derivative_table(costheta: np.ndarray, pmax: int) -> tuple[np.ndarray, np.ndarray]:
    """Evaluate ``P_n^m(cos θ)`` and ``dP_n^m(cos θ)/dθ`` for all n, m.

    Uses the identity
    ``sinθ · dP_n^m/dθ = n x P_n^m - (n+m) P_{n-1}^m`` where
    ``x = cosθ``; division by ``sinθ`` is guarded with a small floor,
    appropriate for force evaluation away from exact poles (callers that
    need exact pole values should perturb θ).

    Returns
    -------
    ``(P, dP)`` each of shape ``x.shape + (pmax+1, pmax+1)``.
    """
    x = np.asarray(costheta, dtype=np.float64)
    P = legendre_table(x, pmax)
    dP = np.zeros_like(P)
    s = np.sqrt(np.maximum(0.0, 1.0 - x * x))
    s_safe = np.maximum(s, 1e-150)

    for n in range(0, pmax + 1):
        for m in range(0, n + 1):
            prev = P[..., n - 1, m] if n - 1 >= m else np.zeros_like(x)
            # dP/dθ = -sinθ dP/dx ;  (1-x²) dP/dx = n x P_n^m - (n+m) P_{n-1}^m
            dP[..., n, m] = (n * x * P[..., n, m] - (n + m) * prev) / s_safe

    # At the poles sinθ = 0: dP/dθ vanishes for every m except m = 1
    # (limit exists but requires a separate expansion); the floor keeps
    # the arithmetic finite, and the m=1 terms there are handled by the
    # evaluation routines combining dP with sinθ-weighted factors.
    pole = s < 1e-14
    if np.any(pole):
        for n in range(0, pmax + 1):
            for m in range(0, n + 1):
                if m != 1:
                    dP[..., n, m] = np.where(pole, 0.0, dP[..., n, m])
        # Analytic pole limit for m = 1:  dP_n^1/dθ(0) = n(n+1)/2 at θ=0,
        # multiplied by (-1)^(n+1)... use the series limit via x = ±1:
        # dP_n^1/dθ |_{x=1} = n(n+1)/2 ; |_{x=-1} = (-1)^n n(n+1)/2.
        xpole = np.where(x > 0, 1.0, -1.0)
        for n in range(1, pmax + 1):
            lim = n * (n + 1) / 2.0 * np.where(xpole > 0, 1.0, (-1.0) ** n)
            dP[..., n, 1] = np.where(pole, lim, dP[..., n, 1])
    return P, dP
