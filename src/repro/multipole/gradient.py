r"""Analytic gradients of truncated multipole expansions.

Used for force evaluation (``F = -q ∇Φ``) in the n-body examples.  The
gradient is assembled in spherical components

.. math::

    \nabla\Phi = \partial_r\Phi\,\hat e_r
        + \frac1r \partial_\theta\Phi\,\hat e_\theta
        + \frac{1}{r\sin\theta} \partial_\varphi\Phi\,\hat e_\varphi

with the θ-derivatives of the associated Legendre functions from
:mod:`repro.multipole.legendre`.  The azimuthal term is guarded with a
``sinθ`` floor; exactly on the polar axis the ``m >= 1`` contributions
vanish like ``sin^m θ`` so the guarded form remains accurate to the
floor's precision (evaluation points are generic in all callers).
"""

from __future__ import annotations

import numpy as np

from .expansion import m_weights
from .harmonics import cart_to_sph, degree_of_index, norm_table, power_table
from .legendre import legendre_theta_derivative_table

__all__ = ["m2p_grad", "m2p_grad_rows", "l2p_grad"]

_SIN_FLOOR = 1e-12


def _angular_tables(ct: np.ndarray, phi: np.ndarray, p: int):
    """Shared packed tables: ``Y``, ``dY/dθ`` (without radial factors)."""
    ns, ms = degree_of_index(p)
    norms = norm_table(p)
    P, dP = legendre_theta_derivative_table(ct, p)
    e = np.exp(1j * phi[..., None] * np.arange(p + 1))
    Y = P[..., ns, ms] * norms * e[..., ms]
    dY = dP[..., ns, ms] * norms * e[..., ms]
    return Y, dY, ns, ms


def _sph_to_cart(dr, dth, dph_over_sin, st, ct, cp, sp):
    """Combine spherical gradient components into Cartesian vectors."""
    gx = dr * st * cp + dth * ct * cp - dph_over_sin * sp
    gy = dr * st * sp + dth * ct * sp + dph_over_sin * cp
    gz = dr * ct - dth * st
    return np.stack([gx, gy, gz], axis=-1)


def m2p_grad(coeffs: np.ndarray, rel_targets: np.ndarray, p: int) -> np.ndarray:
    """Gradient of a multipole expansion at targets relative to its center.

    Returns ``(t, 3)`` array of ``∇Φ`` (the caller applies ``F = -q ∇Φ``).
    """
    rel_targets = np.asarray(rel_targets, dtype=np.float64)
    r, ct, phi = cart_to_sph(rel_targets)
    Y, dY, ns, ms = _angular_tables(ct, phi, p)
    w = m_weights(p)
    c = w * np.asarray(coeffs)

    rinv = 1.0 / r
    rpow = rinv[:, None] ** (ns[None, :] + 1)  # r^-(n+1)

    # dPhi/dr = sum -(n+1) r^-(n+2) Re(M Y)
    d_r = np.real((Y * rpow * (-(ns + 1))) @ c) * rinv
    # (1/r) dPhi/dtheta
    d_th = np.real((dY * rpow) @ c) * rinv
    # (1/(r sin)) dPhi/dphi ; dY/dphi = i m Y
    st = np.sqrt(np.maximum(0.0, 1.0 - ct * ct))
    st_safe = np.maximum(st, _SIN_FLOOR)
    d_ph = -np.imag((Y * rpow * ms) @ c) * rinv / st_safe
    # note: Re(i m M Y) = -m Im(M Y).

    cp, sp = np.cos(phi), np.sin(phi)
    return _sph_to_cart(d_r, d_th, d_ph, st, ct, cp, sp)


def m2p_grad_rows(coeff_rows: np.ndarray, rel_targets: np.ndarray, p: int) -> np.ndarray:
    """Per-pair gradient evaluation (row ``i`` of ``coeff_rows`` belongs
    to target ``i``); the gradient analogue of
    :func:`repro.multipole.expansion.m2p_rows`."""
    from .harmonics import ncoef

    rel_targets = np.asarray(rel_targets, dtype=np.float64)
    r, ct, phi = cart_to_sph(rel_targets)
    Y, dY, ns, ms = _angular_tables(ct, phi, p)
    w = m_weights(p)
    C = np.asarray(coeff_rows)[:, : ncoef(p)] * w

    rinv = 1.0 / r
    rpow = rinv[:, None] * power_table(rinv, p)[:, ns]

    d_r = np.real(np.einsum("tc,tc->t", Y * rpow * (-(ns + 1)), C)) * rinv
    d_th = np.real(np.einsum("tc,tc->t", dY * rpow, C)) * rinv
    st = np.sqrt(np.maximum(0.0, 1.0 - ct * ct))
    st_safe = np.maximum(st, _SIN_FLOOR)
    d_ph = -np.imag(np.einsum("tc,tc->t", Y * rpow * ms, C)) * rinv / st_safe

    cp, sp = np.cos(phi), np.sin(phi)
    return _sph_to_cart(d_r, d_th, d_ph, st, ct, cp, sp)


def l2p_grad(coeffs: np.ndarray, rel_targets: np.ndarray, p: int) -> np.ndarray:
    """Gradient of a local expansion at targets relative to its center."""
    rel_targets = np.asarray(rel_targets, dtype=np.float64)
    r, ct, phi = cart_to_sph(rel_targets)
    Y, dY, ns, ms = _angular_tables(ct, phi, p)
    w = m_weights(p)
    c = w * np.asarray(coeffs)

    r_safe = np.maximum(r, 1e-300)
    rpow = power_table(r_safe, p)[:, ns]  # r^n

    # dPhi/dr = sum n r^{n-1} Re(L Y)
    d_r = np.real((Y * rpow * ns) @ c) / r_safe
    d_th = np.real((dY * rpow) @ c) / r_safe
    st = np.sqrt(np.maximum(0.0, 1.0 - ct * ct))
    st_safe = np.maximum(st, _SIN_FLOOR)
    d_ph = -np.imag((Y * rpow * ms) @ c) / (r_safe * st_safe)

    cp, sp = np.cos(phi), np.sin(phi)
    return _sph_to_cart(d_r, d_th, d_ph, st, ct, cp, sp)
