"""Translation operators: M2M, M2L, L2L (batched, vectorized).

The operators are expressed as 2-D "triangular convolutions" over the
``(n, m)`` index grid after rescaling coefficients by
``i^{±|m|} sqrt((n-m)!(n+m)!)^{±1}`` — the classic
Greengard/Epton-Dembart trick.  With the conventions of
:mod:`repro.multipole.harmonics` (validated numerically against direct
summation in the test suite), the addition theorems are:

* **M2M** — with ``R_n^m(v) = rho^n conj(Y_n^m)`` (the "charge basis",
  so that ``M_n^m = sum_i q_i R_n^m(s_i)``):

  ``R_n^m(s + t) = sum_{j,k} W(n,m,j,k) R_j^k(s) R_{n-j}^{m-k}(t)``,
  ``W = i^{|m|-|k|-|m-k|} sq(n,m) / (sq(j,k) sq(n-j,m-k))``,
  ``sq(n,m) = sqrt((n-m)!(n+m)!)``.

* **M2L** — for a multipole at displacement ``d`` from the local center:

  ``L_j^k = i^{-|k|}/sq(j,k) * sum_{n,m} [(-1)^n i^{-|m|}/sq(n,m) M_n^m]
  * [i^{|m-k|} sq(j+n, m-k) Y_{j+n}^{m-k}(d) / |d|^{j+n+1}]``.

* **L2L** — shifting a local expansion by ``t`` (old center to new):

  ``L'_j^k = i^{-|k|}/sq(j,k) * sum_{nu,mu}
  [i^{-|mu|}/sq(nu,mu) E_nu^mu(t)] * [i^{|m|} sq(n,m) L_n^m]`` with
  ``n = j+nu, m = k+mu`` and ``E_n^m(v) = rho^n Y_n^m``.

All i-power exponents are even (``|m|``, ``|k|`` and ``|m-k|`` share the
parity of ``m - k + k``), so every operator is real-linear despite the
complex intermediates.

Batching: every function accepts ``(B, ncoef)`` coefficient arrays and
``(B, 3)`` shift vectors and processes all ``B`` translations in one
vectorized pass — this is how the octree upward pass translates all
children of a level at once.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from .harmonics import cart_to_sph, ncoef, sph_harmonics

__all__ = [
    "m2m",
    "m2l",
    "m2l_geometry",
    "m2l_from_geometry",
    "m2l_operator",
    "l2l",
    "to_full_grid",
    "from_full_grid",
]


@lru_cache(maxsize=None)
def _sq_grid(p: int) -> np.ndarray:
    """Grid of ``sqrt((n-m)!(n+m)!)`` with shape ``(p+1, 2p+1)``.

    The m-axis index ``mm`` corresponds to ``m = mm - p``; entries with
    ``|m| > n`` are set to 1 (they multiply zeros).
    """
    out = np.ones((p + 1, 2 * p + 1), dtype=np.float64)
    fact = [1.0]
    for k in range(1, 2 * p + 1):
        fact.append(fact[-1] * k)
    for n in range(p + 1):
        for m in range(-n, n + 1):
            out[n, m + p] = np.sqrt(fact[n - abs(m)] * fact[n + abs(m)])
    return out


@lru_cache(maxsize=None)
def _iphase_grid(p: int, sign: int) -> np.ndarray:
    """Grid of ``i^{sign*|m|}`` with shape ``(p+1, 2p+1)``."""
    m = np.abs(np.arange(-p, p + 1))
    row = (1j) ** ((sign * m) % 4)
    return np.broadcast_to(row, (p + 1, 2 * p + 1)).copy()


@lru_cache(maxsize=None)
def _valid_mask(p: int) -> np.ndarray:
    """Boolean grid marking valid ``|m| <= n`` entries."""
    n = np.arange(p + 1)[:, None]
    m = np.abs(np.arange(-p, p + 1))[None, :]
    return m <= n


def to_full_grid(packed: np.ndarray, p: int) -> np.ndarray:
    """Expand packed ``m >= 0`` coefficients to the full ``(n, m)`` grid.

    Input shape ``(..., ncoef(p))``; output ``(..., p+1, 2p+1)`` with the
    m-axis offset by ``p`` and negative-m entries filled by conjugate
    symmetry.
    """
    packed = np.asarray(packed)
    lead = packed.shape[:-1]
    out = np.zeros(lead + (p + 1, 2 * p + 1), dtype=np.complex128)
    idx = 0
    for n in range(p + 1):
        for m in range(n + 1):
            out[..., n, p + m] = packed[..., idx]
            if m > 0:
                out[..., n, p - m] = np.conj(packed[..., idx])
            idx += 1
    return out


def from_full_grid(full: np.ndarray, p: int) -> np.ndarray:
    """Pack the ``m >= 0`` entries of a full grid (inverse of :func:`to_full_grid`)."""
    full = np.asarray(full)
    lead = full.shape[:-2]
    out = np.empty(lead + (ncoef(p),), dtype=np.complex128)
    idx = 0
    for n in range(p + 1):
        for m in range(n + 1):
            out[..., idx] = full[..., n, p + m]
            idx += 1
    return out


def _regular_grid(shifts: np.ndarray, p: int, conj: bool) -> np.ndarray:
    """Full grid of ``rho^n Y_n^m(angles)`` (``conj=False``) or
    ``rho^n conj(Y_n^m)`` = ``R_n^m`` (``conj=True``) for each shift.

    Shape ``(B, p+1, 2p+1)``.
    """
    shifts = np.atleast_2d(np.asarray(shifts, dtype=np.float64))
    rho, ct, phi = cart_to_sph(shifts)
    Y = sph_harmonics(ct, phi, p)  # (B, ncoef)
    if conj:
        Y = np.conj(Y)
    full = to_full_grid(Y, p)
    npow = rho[:, None] ** np.arange(p + 1)[None, :]
    return full * npow[:, :, None]


def _singular_grid(shifts: np.ndarray, p: int) -> np.ndarray:
    """Full grid of ``Y_n^m(angles) / rho^{n+1}`` for each shift."""
    shifts = np.atleast_2d(np.asarray(shifts, dtype=np.float64))
    rho, ct, phi = cart_to_sph(shifts)
    Y = sph_harmonics(ct, phi, p)
    full = to_full_grid(Y, p)
    npow = (1.0 / rho)[:, None] ** (np.arange(p + 1)[None, :] + 1)
    return full * npow[:, :, None]


def m2m(coeffs: np.ndarray, shifts: np.ndarray, p: int) -> np.ndarray:
    """Translate multipole expansions to new centers.

    Parameters
    ----------
    coeffs:
        ``(B, ncoef(p))`` packed child coefficients (or ``(ncoef,)``).
    shifts:
        ``(B, 3)`` vectors *from the new (parent) center to the old
        (child) center*, i.e. ``child_center - parent_center``.
    p:
        Expansion degree (exact: parent coefficients up to degree ``p``
        depend only on child coefficients up to ``p``).

    Returns
    -------
    ``(B, ncoef(p))`` packed parent contributions (sum over children to
    assemble a parent expansion).
    """
    coeffs = np.atleast_2d(np.asarray(coeffs, dtype=np.complex128))
    shifts = np.atleast_2d(np.asarray(shifts, dtype=np.float64))
    B = coeffs.shape[0]
    sq = _sq_grid(p)
    mask = _valid_mask(p)

    Mfull = to_full_grid(coeffs, p)
    mtil = Mfull * (_iphase_grid(p, -1) / sq) * mask
    R = _regular_grid(shifts, p, conj=True)
    btil = R * (_iphase_grid(p, -1) / sq) * mask

    out = np.zeros_like(Mfull)
    W = 2 * p + 1
    for j in range(p + 1):
        for k in range(-j, j + 1):
            b = btil[:, j, k + p]
            o_lo = max(0, k)
            o_hi = W + min(0, k)
            out[:, j : p + 1, o_lo:o_hi] += (
                b[:, None, None] * mtil[:, 0 : p + 1 - j, o_lo - k : o_hi - k]
            )
    out *= _iphase_grid(p, +1) * sq
    out *= mask
    return from_full_grid(out, p)


def m2l_geometry(d: np.ndarray, p_src: int, p_loc: int | None = None) -> np.ndarray:
    """Geometry factor of :func:`m2l` for displacements ``d``.

    The M2L translation splits into a charge-dependent part (the
    rescaled multipole grid) and a geometry-only part — the scaled
    singular grid ``shat`` of the displacement, which is what a compiled
    plan can freeze or batch.  Returns shape
    ``(B, p_src + p_loc + 1, 2 (p_src + p_loc) + 1)``.
    """
    if p_loc is None:
        p_loc = p_src
    ptot = p_src + p_loc
    S = _singular_grid(d, ptot)
    return S * (_iphase_grid(ptot, +1) * _sq_grid(ptot)) * _valid_mask(ptot)


def m2l_from_geometry(
    coeffs: np.ndarray, shat: np.ndarray, p_src: int, p_loc: int | None = None
) -> np.ndarray:
    """Apply precomputed M2L geometry (from :func:`m2l_geometry`) to
    multipole coefficients; ``m2l(C, d, ...)`` equals
    ``m2l_from_geometry(C, m2l_geometry(d, ...), ...)`` exactly."""
    if p_loc is None:
        p_loc = p_src
    coeffs = np.atleast_2d(np.asarray(coeffs, dtype=np.complex128))
    B = coeffs.shape[0]
    ps, pl = p_src, p_loc
    ptot = ps + pl

    sq_s = _sq_grid(ps)
    mask_s = _valid_mask(ps)
    Mfull = to_full_grid(coeffs, ps)
    signs = (-1.0) ** np.arange(ps + 1)
    mhat = Mfull * (_iphase_grid(ps, -1) / sq_s) * signs[None, :, None] * mask_s

    Lhat = np.zeros((B, pl + 1, 2 * pl + 1), dtype=np.complex128)
    C = ptot  # mu-axis offset of shat
    for n in range(ps + 1):
        for m in range(-n, n + 1):
            a = mhat[:, n, m + ps]
            # mu = m - k for k in [-pl, pl] -> slice reversed along mu.
            sl = shat[:, n : n + pl + 1, m - pl + C : m + pl + C + 1][:, :, ::-1]
            Lhat += a[:, None, None] * sl
    sq_l = _sq_grid(pl)
    Lfull = Lhat * (_iphase_grid(pl, -1) / sq_l)
    Lfull *= _valid_mask(pl)
    return from_full_grid(Lfull, pl)


def m2l(coeffs: np.ndarray, d: np.ndarray, p_src: int, p_loc: int | None = None) -> np.ndarray:
    """Convert multipole expansions into local expansions.

    Parameters
    ----------
    coeffs:
        ``(B, ncoef(p_src))`` packed multipole coefficients.
    d:
        ``(B, 3)`` vectors *from the local center to the multipole
        center*.  ``|d|`` must exceed both expansion radii.
    p_src, p_loc:
        Source and local degrees (``p_loc`` defaults to ``p_src``).

    Returns
    -------
    ``(B, ncoef(p_loc))`` packed local coefficients.
    """
    if p_loc is None:
        p_loc = p_src
    d = np.atleast_2d(np.asarray(d, dtype=np.float64))
    shat = m2l_geometry(d, p_src, p_loc)
    return m2l_from_geometry(coeffs, shat, p_src, p_loc)


def m2l_operator(d: np.ndarray, p_src: int, p_loc: int | None = None):
    """Probe the (real-linear) M2L operator for one displacement.

    M2L is real-linear but not complex-linear (conjugate symmetry of the
    packed layout enters), so the operator for a fixed displacement is
    the matrix pair ``(Tr, Ti)`` obtained by probing with ``[I; iI]``;
    applying it to a batch of coefficient rows ``M`` is
    ``M.real @ Tr + M.imag @ Ti`` — two GEMMs.  This is the shared
    batching primitive of the uniform-FMM plan and the compiled-plan
    tests.
    """
    if p_loc is None:
        p_loc = p_src
    eye = np.eye(ncoef(p_src), dtype=np.complex128)
    d = np.atleast_2d(np.asarray(d, dtype=np.float64))
    shat = m2l_geometry(d, p_src, p_loc)
    shat_b = np.broadcast_to(shat, (eye.shape[0],) + shat.shape[1:])
    Tr = m2l_from_geometry(eye, shat_b, p_src, p_loc)
    Ti = m2l_from_geometry(1j * eye, shat_b, p_src, p_loc)
    return Tr, Ti


def l2l(coeffs: np.ndarray, shifts: np.ndarray, p: int) -> np.ndarray:
    """Re-center local expansions.

    Parameters
    ----------
    coeffs:
        ``(B, ncoef(p))`` packed local coefficients about the old center.
    shifts:
        ``(B, 3)`` vectors *from the old center to the new center*.
    p:
        Degree (exact operation).

    Returns
    -------
    ``(B, ncoef(p))`` packed local coefficients about the new centers.
    """
    coeffs = np.atleast_2d(np.asarray(coeffs, dtype=np.complex128))
    shifts = np.atleast_2d(np.asarray(shifts, dtype=np.float64))
    B = coeffs.shape[0]
    sq = _sq_grid(p)
    mask = _valid_mask(p)

    Lfull = to_full_grid(coeffs, p)
    a = Lfull * (_iphase_grid(p, +1) * sq) * mask
    E = _regular_grid(shifts, p, conj=False)
    c = E * (_iphase_grid(p, -1) / sq) * mask

    out = np.zeros_like(Lfull)
    W = 2 * p + 1
    for nu in range(p + 1):
        for mu in range(-nu, nu + 1):
            cv = c[:, nu, mu + p]
            o_lo = max(0, -mu)
            o_hi = W - max(0, mu)
            out[:, 0 : p + 1 - nu, o_lo:o_hi] += (
                cv[:, None, None] * a[:, nu : p + 1, o_lo + mu : o_hi + mu]
            )
    out *= _iphase_grid(p, -1) / sq
    out *= mask
    return from_full_grid(out, p)
