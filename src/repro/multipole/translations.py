"""Translation operators: M2M, M2L, L2L (batched, vectorized).

The operators are expressed as 2-D "triangular convolutions" over the
``(n, m)`` index grid after rescaling coefficients by
``i^{±|m|} sqrt((n-m)!(n+m)!)^{±1}`` — the classic
Greengard/Epton-Dembart trick.  With the conventions of
:mod:`repro.multipole.harmonics` (validated numerically against direct
summation in the test suite), the addition theorems are:

* **M2M** — with ``R_n^m(v) = rho^n conj(Y_n^m)`` (the "charge basis",
  so that ``M_n^m = sum_i q_i R_n^m(s_i)``):

  ``R_n^m(s + t) = sum_{j,k} W(n,m,j,k) R_j^k(s) R_{n-j}^{m-k}(t)``,
  ``W = i^{|m|-|k|-|m-k|} sq(n,m) / (sq(j,k) sq(n-j,m-k))``,
  ``sq(n,m) = sqrt((n-m)!(n+m)!)``.

* **M2L** — for a multipole at displacement ``d`` from the local center:

  ``L_j^k = i^{-|k|}/sq(j,k) * sum_{n,m} [(-1)^n i^{-|m|}/sq(n,m) M_n^m]
  * [i^{|m-k|} sq(j+n, m-k) Y_{j+n}^{m-k}(d) / |d|^{j+n+1}]``.

* **L2L** — shifting a local expansion by ``t`` (old center to new):

  ``L'_j^k = i^{-|k|}/sq(j,k) * sum_{nu,mu}
  [i^{-|mu|}/sq(nu,mu) E_nu^mu(t)] * [i^{|m|} sq(n,m) L_n^m]`` with
  ``n = j+nu, m = k+mu`` and ``E_n^m(v) = rho^n Y_n^m``.

All i-power exponents are even (``|m|``, ``|k|`` and ``|m-k|`` share the
parity of ``m - k + k``), so every operator is real-linear despite the
complex intermediates.

Batching: every function accepts ``(B, ncoef)`` coefficient arrays and
``(B, 3)`` shift vectors and processes all ``B`` translations in one
vectorized pass — this is how the octree upward pass translates all
children of a level at once.
"""

from __future__ import annotations

import numpy as np

from .harmonics import cart_to_sph, degree_of_index, ncoef, power_table, sph_harmonics
from .rotations import RotationCache, rotate_packed

__all__ = [
    "m2m",
    "m2l",
    "m2l_geometry",
    "m2l_from_geometry",
    "m2l_operator",
    "l2l",
    "axial_m2m",
    "axial_m2l",
    "axial_l2l",
    "m2m_rotated",
    "m2l_rotated",
    "l2l_rotated",
    "to_full_grid",
    "from_full_grid",
    "translation_cache_stats",
]


#: Cap on entries held by the shared grid/operator cache below.  The
#: keys span degrees up to 2*42 (the M2L geometry grid uses the summed
#: degree) across several grid kinds plus the axial operator tables, so
#: the cap is larger than the 64 used for ``m_weights`` — but still a
#: hard bound, with FIFO eviction like PR 7's ``m_weights`` cache.
_TRANSLATION_CACHE_MAX = 256

_translation_cache: dict[tuple, object] = {}
_translation_hits = 0
_translation_misses = 0


def _cached(key: tuple, build):
    """Bounded FIFO memo shared by the grid and axial-operator helpers.

    Replaces the former unbounded ``lru_cache(maxsize=None)`` decorators:
    variable-order plans sweep many degrees per compile and must not grow
    the cache without limit.  Hit/miss totals surface in the metrics
    registry when tracing is enabled (``translation_cache_hits`` /
    ``translation_cache_misses``); the hit path stays a dict lookup.
    """
    global _translation_hits, _translation_misses
    val = _translation_cache.get(key)
    if val is not None:
        _translation_hits += 1
        return val
    _translation_misses += 1
    val = build()
    if len(_translation_cache) >= _TRANSLATION_CACHE_MAX:
        _translation_cache.pop(next(iter(_translation_cache)))
    _translation_cache[key] = val
    _record_translation_metrics()
    return val


def _record_translation_metrics() -> None:
    """Publish cache totals to the metrics registry (tracing only).

    Deferred import, synced on misses only — same contract as
    ``expansion._record_m_weights_metrics``.
    """
    from ..obs.tracing import is_enabled

    if not is_enabled():
        return
    from ..obs.metrics import REGISTRY

    h = REGISTRY.counter(
        "translation_cache_hits", "translation grid/operator cache hits"
    )
    if _translation_hits > h.value:
        h.inc(_translation_hits - h.value)
    m = REGISTRY.counter(
        "translation_cache_misses", "translation grid/operator cache misses"
    )
    if _translation_misses > m.value:
        m.inc(_translation_misses - m.value)


def translation_cache_stats() -> dict:
    """Current grid/operator cache totals (for tests and profiles)."""
    return {
        "hits": _translation_hits,
        "misses": _translation_misses,
        "size": len(_translation_cache),
        "max_size": _TRANSLATION_CACHE_MAX,
    }


def _sq_grid(p: int) -> np.ndarray:
    """Grid of ``sqrt((n-m)!(n+m)!)`` with shape ``(p+1, 2p+1)``.

    The m-axis index ``mm`` corresponds to ``m = mm - p``; entries with
    ``|m| > n`` are set to 1 (they multiply zeros).
    """
    return _cached(("sq", p), lambda: _build_sq_grid(p))


def _build_sq_grid(p: int) -> np.ndarray:
    out = np.ones((p + 1, 2 * p + 1), dtype=np.float64)
    fact = [1.0]
    for k in range(1, 2 * p + 1):
        fact.append(fact[-1] * k)
    for n in range(p + 1):
        for m in range(-n, n + 1):
            out[n, m + p] = np.sqrt(fact[n - abs(m)] * fact[n + abs(m)])
    return out


def _iphase_grid(p: int, sign: int) -> np.ndarray:
    """Grid of ``i^{sign*|m|}`` with shape ``(p+1, 2p+1)``."""

    def build() -> np.ndarray:
        m = np.abs(np.arange(-p, p + 1))
        row = (1j) ** ((sign * m) % 4)
        return np.broadcast_to(row, (p + 1, 2 * p + 1)).copy()

    return _cached(("iphase", p, sign), build)


def _valid_mask(p: int) -> np.ndarray:
    """Boolean grid marking valid ``|m| <= n`` entries."""

    def build() -> np.ndarray:
        n = np.arange(p + 1)[:, None]
        m = np.abs(np.arange(-p, p + 1))[None, :]
        return m <= n

    return _cached(("mask", p), build)


def to_full_grid(packed: np.ndarray, p: int) -> np.ndarray:
    """Expand packed ``m >= 0`` coefficients to the full ``(n, m)`` grid.

    Input shape ``(..., ncoef(p))``; output ``(..., p+1, 2p+1)`` with the
    m-axis offset by ``p`` and negative-m entries filled by conjugate
    symmetry.
    """
    packed = np.asarray(packed)
    lead = packed.shape[:-1]
    out = np.zeros(lead + (p + 1, 2 * p + 1), dtype=np.complex128)
    idx = 0
    for n in range(p + 1):
        for m in range(n + 1):
            out[..., n, p + m] = packed[..., idx]
            if m > 0:
                out[..., n, p - m] = np.conj(packed[..., idx])
            idx += 1
    return out


def from_full_grid(full: np.ndarray, p: int) -> np.ndarray:
    """Pack the ``m >= 0`` entries of a full grid (inverse of :func:`to_full_grid`)."""
    full = np.asarray(full)
    lead = full.shape[:-2]
    out = np.empty(lead + (ncoef(p),), dtype=np.complex128)
    idx = 0
    for n in range(p + 1):
        for m in range(n + 1):
            out[..., idx] = full[..., n, p + m]
            idx += 1
    return out


def _regular_grid(shifts: np.ndarray, p: int, conj: bool) -> np.ndarray:
    """Full grid of ``rho^n Y_n^m(angles)`` (``conj=False``) or
    ``rho^n conj(Y_n^m)`` = ``R_n^m`` (``conj=True``) for each shift.

    Shape ``(B, p+1, 2p+1)``.
    """
    shifts = np.atleast_2d(np.asarray(shifts, dtype=np.float64))
    rho, ct, phi = cart_to_sph(shifts)
    Y = sph_harmonics(ct, phi, p)  # (B, ncoef)
    if conj:
        Y = np.conj(Y)
    full = to_full_grid(Y, p)
    npow = rho[:, None] ** np.arange(p + 1)[None, :]
    return full * npow[:, :, None]


def _singular_grid(shifts: np.ndarray, p: int) -> np.ndarray:
    """Full grid of ``Y_n^m(angles) / rho^{n+1}`` for each shift."""
    shifts = np.atleast_2d(np.asarray(shifts, dtype=np.float64))
    rho, ct, phi = cart_to_sph(shifts)
    Y = sph_harmonics(ct, phi, p)
    full = to_full_grid(Y, p)
    npow = (1.0 / rho)[:, None] ** (np.arange(p + 1)[None, :] + 1)
    return full * npow[:, :, None]


def m2m(coeffs: np.ndarray, shifts: np.ndarray, p: int) -> np.ndarray:
    """Translate multipole expansions to new centers.

    Parameters
    ----------
    coeffs:
        ``(B, ncoef(p))`` packed child coefficients (or ``(ncoef,)``).
    shifts:
        ``(B, 3)`` vectors *from the new (parent) center to the old
        (child) center*, i.e. ``child_center - parent_center``.
    p:
        Expansion degree (exact: parent coefficients up to degree ``p``
        depend only on child coefficients up to ``p``).

    Returns
    -------
    ``(B, ncoef(p))`` packed parent contributions (sum over children to
    assemble a parent expansion).
    """
    coeffs = np.atleast_2d(np.asarray(coeffs, dtype=np.complex128))
    shifts = np.atleast_2d(np.asarray(shifts, dtype=np.float64))
    B = coeffs.shape[0]
    sq = _sq_grid(p)
    mask = _valid_mask(p)

    Mfull = to_full_grid(coeffs, p)
    mtil = Mfull * (_iphase_grid(p, -1) / sq) * mask
    R = _regular_grid(shifts, p, conj=True)
    btil = R * (_iphase_grid(p, -1) / sq) * mask

    out = np.zeros_like(Mfull)
    W = 2 * p + 1
    for j in range(p + 1):
        for k in range(-j, j + 1):
            b = btil[:, j, k + p]
            o_lo = max(0, k)
            o_hi = W + min(0, k)
            out[:, j : p + 1, o_lo:o_hi] += (
                b[:, None, None] * mtil[:, 0 : p + 1 - j, o_lo - k : o_hi - k]
            )
    out *= _iphase_grid(p, +1) * sq
    out *= mask
    return from_full_grid(out, p)


def m2l_geometry(d: np.ndarray, p_src: int, p_loc: int | None = None) -> np.ndarray:
    """Geometry factor of :func:`m2l` for displacements ``d``.

    The M2L translation splits into a charge-dependent part (the
    rescaled multipole grid) and a geometry-only part — the scaled
    singular grid ``shat`` of the displacement, which is what a compiled
    plan can freeze or batch.  Returns shape
    ``(B, p_src + p_loc + 1, 2 (p_src + p_loc) + 1)``.
    """
    if p_loc is None:
        p_loc = p_src
    ptot = p_src + p_loc
    S = _singular_grid(d, ptot)
    return S * (_iphase_grid(ptot, +1) * _sq_grid(ptot)) * _valid_mask(ptot)


def m2l_from_geometry(
    coeffs: np.ndarray, shat: np.ndarray, p_src: int, p_loc: int | None = None
) -> np.ndarray:
    """Apply precomputed M2L geometry (from :func:`m2l_geometry`) to
    multipole coefficients; ``m2l(C, d, ...)`` equals
    ``m2l_from_geometry(C, m2l_geometry(d, ...), ...)`` exactly."""
    if p_loc is None:
        p_loc = p_src
    coeffs = np.atleast_2d(np.asarray(coeffs, dtype=np.complex128))
    B = coeffs.shape[0]
    ps, pl = p_src, p_loc
    ptot = ps + pl

    sq_s = _sq_grid(ps)
    mask_s = _valid_mask(ps)
    Mfull = to_full_grid(coeffs, ps)
    signs = (-1.0) ** np.arange(ps + 1)
    mhat = Mfull * (_iphase_grid(ps, -1) / sq_s) * signs[None, :, None] * mask_s

    Lhat = np.zeros((B, pl + 1, 2 * pl + 1), dtype=np.complex128)
    C = ptot  # mu-axis offset of shat
    for n in range(ps + 1):
        for m in range(-n, n + 1):
            a = mhat[:, n, m + ps]
            # mu = m - k for k in [-pl, pl] -> slice reversed along mu.
            sl = shat[:, n : n + pl + 1, m - pl + C : m + pl + C + 1][:, :, ::-1]
            Lhat += a[:, None, None] * sl
    sq_l = _sq_grid(pl)
    Lfull = Lhat * (_iphase_grid(pl, -1) / sq_l)
    Lfull *= _valid_mask(pl)
    return from_full_grid(Lfull, pl)


def m2l(coeffs: np.ndarray, d: np.ndarray, p_src: int, p_loc: int | None = None) -> np.ndarray:
    """Convert multipole expansions into local expansions.

    Parameters
    ----------
    coeffs:
        ``(B, ncoef(p_src))`` packed multipole coefficients.
    d:
        ``(B, 3)`` vectors *from the local center to the multipole
        center*.  ``|d|`` must exceed both expansion radii.
    p_src, p_loc:
        Source and local degrees (``p_loc`` defaults to ``p_src``).

    Returns
    -------
    ``(B, ncoef(p_loc))`` packed local coefficients.
    """
    if p_loc is None:
        p_loc = p_src
    d = np.atleast_2d(np.asarray(d, dtype=np.float64))
    shat = m2l_geometry(d, p_src, p_loc)
    return m2l_from_geometry(coeffs, shat, p_src, p_loc)


def m2l_operator(d: np.ndarray, p_src: int, p_loc: int | None = None):
    """Probe the (real-linear) M2L operator for one displacement.

    M2L is real-linear but not complex-linear (conjugate symmetry of the
    packed layout enters), so the operator for a fixed displacement is
    the matrix pair ``(Tr, Ti)`` obtained by probing with ``[I; iI]``;
    applying it to a batch of coefficient rows ``M`` is
    ``M.real @ Tr + M.imag @ Ti`` — two GEMMs.  This is the shared
    batching primitive of the uniform-FMM plan and the compiled-plan
    tests.
    """
    if p_loc is None:
        p_loc = p_src
    eye = np.eye(ncoef(p_src), dtype=np.complex128)
    d = np.atleast_2d(np.asarray(d, dtype=np.float64))
    shat = m2l_geometry(d, p_src, p_loc)
    shat_b = np.broadcast_to(shat, (eye.shape[0],) + shat.shape[1:])
    Tr = m2l_from_geometry(eye, shat_b, p_src, p_loc)
    Ti = m2l_from_geometry(1j * eye, shat_b, p_src, p_loc)
    return Tr, Ti


def l2l(coeffs: np.ndarray, shifts: np.ndarray, p: int) -> np.ndarray:
    """Re-center local expansions.

    Parameters
    ----------
    coeffs:
        ``(B, ncoef(p))`` packed local coefficients about the old center.
    shifts:
        ``(B, 3)`` vectors *from the old center to the new center*.
    p:
        Degree (exact operation).

    Returns
    -------
    ``(B, ncoef(p))`` packed local coefficients about the new centers.
    """
    coeffs = np.atleast_2d(np.asarray(coeffs, dtype=np.complex128))
    shifts = np.atleast_2d(np.asarray(shifts, dtype=np.float64))
    B = coeffs.shape[0]
    sq = _sq_grid(p)
    mask = _valid_mask(p)

    Lfull = to_full_grid(coeffs, p)
    a = Lfull * (_iphase_grid(p, +1) * sq) * mask
    E = _regular_grid(shifts, p, conj=False)
    c = E * (_iphase_grid(p, -1) / sq) * mask

    out = np.zeros_like(Lfull)
    W = 2 * p + 1
    for nu in range(p + 1):
        for mu in range(-nu, nu + 1):
            cv = c[:, nu, mu + p]
            o_lo = max(0, -mu)
            o_hi = W - max(0, mu)
            out[:, 0 : p + 1 - nu, o_lo:o_hi] += (
                cv[:, None, None] * a[:, nu : p + 1, o_lo + mu : o_hi + mu]
            )
    out *= _iphase_grid(p, -1) / sq
    out *= mask
    return from_full_grid(out, p)


# ---------------------------------------------------------------------------
# Axial (z-aligned) translations and their rotation-accelerated wrappers.
#
# When the translation vector is ``rho * z`` the addition theorems above
# collapse: Y_n^m(z) = delta_{m0}, so every operator conserves the order
# ``m`` and becomes a small real triangular matrix per ``m`` — O((p+1)^3)
# flops in total instead of O((p+1)^4).  Specializing the docstring
# formulas to the axial case (all i-powers cancel; sq = sqrt((n-m)!(n+m)!)):
#
#   M2M:  M'_n^m = sum_{j=|m|}^{n}  sq(n,m) / (sq(j,m) (n-j)!) rho^{n-j} M_j^m
#   M2L:  L_j^k  = sum_{n=|k|}^{p}  (-1)^{n+k} (j+n)! / (sq(j,k) sq(n,k))
#                                   rho^{-(j+n+1)} M_n^k
#   L2L:  L'_j^k = sum_{n=j}^{p}    sq(n,k) / (sq(j,k) (n-j)!) rho^{n-j} L_n^k
#
# The rho powers are factored out as per-row diagonal scalings so the
# remaining matrices are geometry-independent and cached per degree.
# ---------------------------------------------------------------------------


def _axial_cols(p: int, k: int) -> np.ndarray:
    """Packed indices of the order-``k`` column: ``idx(n, k)`` for n=k..p."""
    n = np.arange(k, p + 1, dtype=np.int64)
    return n * (n + 1) // 2 + k


def _axial_m2l_mats(p_src: int, p_loc: int, dtype=np.float64) -> list:
    """Per-order M2L matrices ``G_k[j-k, n-k]`` plus packed column indices."""

    def build() -> list:
        ptot = p_src + p_loc
        fact = np.cumprod(
            np.concatenate([[1.0], np.arange(1, ptot + 1, dtype=np.float64)])
        )
        out = []
        for k in range(min(p_src, p_loc) + 1):
            j = np.arange(k, p_loc + 1, dtype=np.int64)
            n = np.arange(k, p_src + 1, dtype=np.int64)
            sq_j = np.sqrt(fact[j - k] * fact[j + k])
            sq_n = np.sqrt(fact[n - k] * fact[n + k])
            sign = np.where((n + k) % 2 == 0, 1.0, -1.0)
            G = (sign[None, :] * fact[j[:, None] + n[None, :]]) / (
                sq_j[:, None] * sq_n[None, :]
            )
            out.append(
                (
                    np.ascontiguousarray(G.astype(dtype).T),
                    _axial_cols(p_src, k),
                    _axial_cols(p_loc, k),
                )
            )
        return out

    return _cached(("axial_m2l", p_src, p_loc, np.dtype(dtype).str), build)


def _axial_shift_mats(p: int, kind: str, dtype=np.float64) -> list:
    """Per-order M2M (``kind='m2m'``) or L2L (``kind='l2l'``) matrices.

    Both share the entry ``sq(n,m) / (sq(j,m) (n-j)!)``; M2M sums over
    sources ``j <= n`` (lower triangular in the output degree), L2L over
    sources ``n >= j`` (upper triangular).
    """

    def build() -> list:
        fact = np.cumprod(
            np.concatenate([[1.0], np.arange(1, 2 * p + 1, dtype=np.float64)])
        )
        out = []
        for m in range(p + 1):
            n = np.arange(m, p + 1, dtype=np.int64)
            sq = np.sqrt(fact[n - m] * fact[n + m])
            if kind == "m2m":
                # G[n-m, j-m] for j <= n
                diff = n[:, None] - n[None, :]
                G = np.where(
                    diff >= 0,
                    sq[:, None] / (sq[None, :] * fact[np.maximum(diff, 0)]),
                    0.0,
                )
            else:
                # G[j-m, n-m] for n >= j
                diff = n[None, :] - n[:, None]
                G = np.where(
                    diff >= 0,
                    sq[None, :] / (sq[:, None] * fact[np.maximum(diff, 0)]),
                    0.0,
                )
            out.append((np.ascontiguousarray(G.astype(dtype).T), _axial_cols(p, m)))
        return out

    return _cached((f"axial_{kind}", p, np.dtype(dtype).str), build)


def _real_dtype(c: np.ndarray):
    return np.float32 if c.dtype == np.complex64 else np.float64


def axial_m2l(
    coeffs: np.ndarray, rho: np.ndarray, p_src: int, p_loc: int | None = None
) -> np.ndarray:
    """M2L specialized to displacements ``d = rho * z`` (``rho > 0``).

    ``coeffs`` is ``(B, ncoef(p_src))``, ``rho`` broadcastable to
    ``(B,)``; returns ``(B, ncoef(p_loc))`` in the dtype of ``coeffs``.
    """
    pl = p_src if p_loc is None else p_loc
    coeffs = np.atleast_2d(coeffs)
    rdt = _real_dtype(coeffs)
    rho = np.broadcast_to(np.asarray(rho, dtype=np.float64), (coeffs.shape[0],))
    pw = power_table(1.0 / rho, max(p_src + 1, pl)).astype(rdt, copy=False)
    ns_s = degree_of_index(p_src)[0]
    ns_l = degree_of_index(pl)[0]
    Ct = coeffs * pw[:, ns_s + 1]  # rho^{-(n+1)}
    out = np.zeros((coeffs.shape[0], ncoef(pl)), dtype=coeffs.dtype)
    for GT, cols_s, cols_l in _axial_m2l_mats(p_src, pl, rdt):
        out[:, cols_l] = Ct[:, cols_s] @ GT
    out *= pw[:, ns_l]  # rho^{-j}
    return out


def axial_m2m(coeffs: np.ndarray, rho: np.ndarray, p: int) -> np.ndarray:
    """M2M specialized to shifts ``t = rho * z`` (``rho > 0``)."""
    coeffs = np.atleast_2d(coeffs)
    rdt = _real_dtype(coeffs)
    rho = np.broadcast_to(np.asarray(rho, dtype=np.float64), (coeffs.shape[0],))
    pw = power_table(rho, p).astype(rdt, copy=False)
    pwi = power_table(1.0 / rho, p).astype(rdt, copy=False)
    ns = degree_of_index(p)[0]
    Ct = coeffs * pwi[:, ns]  # rho^{-j}
    out = np.empty_like(coeffs)
    for GT, cols in _axial_shift_mats(p, "m2m", rdt):
        out[:, cols] = Ct[:, cols] @ GT
    out *= pw[:, ns]  # rho^{n}
    return out


def axial_l2l(coeffs: np.ndarray, rho: np.ndarray, p: int) -> np.ndarray:
    """L2L specialized to shifts ``t = rho * z`` (``rho > 0``)."""
    coeffs = np.atleast_2d(coeffs)
    rdt = _real_dtype(coeffs)
    rho = np.broadcast_to(np.asarray(rho, dtype=np.float64), (coeffs.shape[0],))
    pw = power_table(rho, p).astype(rdt, copy=False)
    pwi = power_table(1.0 / rho, p).astype(rdt, copy=False)
    ns = degree_of_index(p)[0]
    Ct = coeffs * pw[:, ns]  # rho^{n}
    out = np.empty_like(coeffs)
    for GT, cols in _axial_shift_mats(p, "l2l", rdt):
        out[:, cols] = Ct[:, cols] @ GT
    out *= pwi[:, ns]  # rho^{-j}
    return out


def _rotated_apply(coeffs, shifts, p_src, p_loc, axial, cache):
    """Shared rotate -> axial -> unrotate driver for the wrappers below.

    Groups rows by quantized shift direction so each distinct direction
    pays for its rotation operator once; zero shifts are the identity.
    """
    coeffs = np.atleast_2d(np.asarray(coeffs, dtype=np.complex128))
    shifts = np.atleast_2d(np.asarray(shifts, dtype=np.float64))
    if shifts.shape[0] == 1 and coeffs.shape[0] > 1:
        shifts = np.broadcast_to(shifts, (coeffs.shape[0], 3))
    rho = np.sqrt(np.einsum("ij,ij->i", shifts, shifts))
    out = np.empty((coeffs.shape[0], ncoef(p_loc)), dtype=np.complex128)
    live = rho > 0.0
    if not live.all():
        # zero shift: M2M/L2L are the identity (M2L never sees rho=0)
        nc = min(ncoef(p_loc), coeffs.shape[1])
        out[~live, :] = 0.0
        out[~live, :nc] = coeffs[~live, :nc]
    idx_live = np.nonzero(live)[0]
    if idx_live.size == 0:
        return out
    u = shifts[idx_live] / rho[idx_live, None]
    if cache is None:
        cache = RotationCache()
    ids = cache.ids_for(u, max(p_src, p_loc))
    order = np.argsort(ids, kind="stable")
    ids_sorted = ids[order]
    bounds = np.flatnonzero(np.diff(ids_sorted)) + 1
    starts = np.concatenate([[0], bounds])
    stops = np.concatenate([bounds, [ids_sorted.size]])
    for lo, hi in zip(starts, stops):
        rows = idx_live[order[lo:hi]]
        ops = cache.get(int(ids_sorted[lo]))
        Cr = rotate_packed(coeffs[rows], ops, p_src)
        La = axial(Cr, rho[rows])
        out[rows] = rotate_packed(La, ops, p_loc, inverse=True)
    return out


def m2l_rotated(
    coeffs: np.ndarray,
    d: np.ndarray,
    p_src: int,
    p_loc: int | None = None,
    cache: RotationCache | None = None,
) -> np.ndarray:
    """Drop-in :func:`m2l` via rotate-translate-rotate (O((p+1)^3)).

    Agrees with the dense path to ~1e-12 at the repo's degree cap; pass
    a shared :class:`~repro.multipole.rotations.RotationCache` to reuse
    operators across calls.
    """
    pl = p_src if p_loc is None else p_loc
    return _rotated_apply(
        coeffs, d, p_src, pl, lambda C, r: axial_m2l(C, r, p_src, pl), cache
    )


def m2m_rotated(
    coeffs: np.ndarray,
    shifts: np.ndarray,
    p: int,
    cache: RotationCache | None = None,
) -> np.ndarray:
    """Drop-in :func:`m2m` via rotate-translate-rotate (O((p+1)^3))."""
    return _rotated_apply(
        coeffs, shifts, p, p, lambda C, r: axial_m2m(C, r, p), cache
    )


def l2l_rotated(
    coeffs: np.ndarray,
    shifts: np.ndarray,
    p: int,
    cache: RotationCache | None = None,
) -> np.ndarray:
    """Drop-in :func:`l2l` via rotate-translate-rotate (O((p+1)^3))."""
    return _rotated_apply(
        coeffs, shifts, p, p, lambda C, r: axial_l2l(C, r, p), cache
    )
